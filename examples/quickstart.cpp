//===- quickstart.cpp - Minimal library walkthrough -----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: build a constraint system by hand, preprocess it
/// with offline variable substitution, solve it with the paper's LCD+HCD
/// algorithm, and ask points-to and alias queries.
///
/// Models this C fragment:
/// \code
///   int x, y;
///   int *p = &x, *q = &y;
///   int **pp = cond ? &p : &q;
///   int *r = *pp;
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"

#include <cstdio>

using namespace ag;

int main() {
  // --- 1. Describe the program as nodes and inclusion constraints.
  ConstraintSystem CS;
  NodeId X = CS.addNode("x");
  NodeId Y = CS.addNode("y");
  NodeId P = CS.addNode("p");
  NodeId Q = CS.addNode("q");
  NodeId PP = CS.addNode("pp");
  NodeId R = CS.addNode("r");

  CS.addAddressOf(P, X);  // p = &x
  CS.addAddressOf(Q, Y);  // q = &y
  CS.addAddressOf(PP, P); // pp = &p  (one branch)
  CS.addAddressOf(PP, Q); // pp = &q  (other branch)
  CS.addLoad(R, PP);      // r = *pp

  std::printf("constraints: %zu\n", CS.constraints().size());

  // --- 2. Preprocess with offline variable substitution (the paper runs
  // this on every input; it typically removes 60-77%% of constraints).
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  std::printf("after OVS:   %zu (merged %llu variables)\n",
              Ovs.Reduced.constraints().size(),
              static_cast<unsigned long long>(Ovs.NumMerged));

  // --- 3. Solve with LCD+HCD, the paper's headline algorithm.
  SolverStats Stats;
  PointsToSolution Solution = solve(Ovs.Reduced, SolverKind::LCDHCD,
                                    PtsRepr::Bitmap, &Stats,
                                    SolverOptions(), &Ovs.Rep);

  // --- 4. Query the solution.
  auto dump = [&](const char *Name, NodeId V) {
    std::printf("pts(%s) = {", Name);
    bool First = true;
    for (NodeId O : Solution.pointsToVector(V)) {
      std::printf("%s%s", First ? "" : ", ", CS.nameOf(O).c_str());
      First = false;
    }
    std::printf("}\n");
  };
  dump("p", P);
  dump("q", Q);
  dump("pp", PP);
  dump("r", R);

  std::printf("mayAlias(r, p) = %s\n",
              Solution.mayAlias(R, P) ? "yes" : "no");
  std::printf("mayAlias(p, q) = %s\n",
              Solution.mayAlias(P, Q) ? "yes" : "no");

  std::printf("\nsolver behaviour:\n%s",
              Stats.toString("  ").c_str());

  // Sanity for CI-style use of the example.
  bool Ok = Solution.pointsToObj(R, X) && Solution.pointsToObj(R, Y) &&
            !Solution.mayAlias(P, Q);
  std::printf("\nquickstart %s\n", Ok ? "OK" : "FAILED");
  return Ok ? 0 : 1;
}
