//===- callgraph.cpp - Indirect call resolution ---------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic pointer-analysis client: build the program call graph,
/// resolving function-pointer calls from the points-to solution. Each
/// variable whose points-to set contains function objects is a potential
/// indirect-call site; its callees are exactly those functions.
///
/// Usage: callgraph [file.c]
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace ag;

namespace {

const char *DemoProgram = R"(
// An event-dispatch table: the bread-and-butter indirect-call pattern.
int log_slot;

int *handle_read(int *buf) { return buf; }
int *handle_write(int *buf) { log_slot = 1; return buf; }
int *handle_close(int *buf) { return &log_slot; }

int *dispatch_table[4];
int *fallback;

void install() {
  dispatch_table[0] = handle_read;
  dispatch_table[1] = handle_write;
  fallback = handle_close;
}

int *dispatch(int which, int *payload) {
  int *handler;
  handler = dispatch_table[which];
  if (!handler)
    handler = fallback;
  return handler(payload);
}
)";

} // namespace

int main(int Argc, char **Argv) {
  std::string Source = DemoProgram;
  const char *Label = "built-in demo program";
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    Label = Argv[1];
  }
  std::printf("== call-graph construction for %s\n", Label);

  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Source, Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  OvsResult Ovs = runOfflineVariableSubstitution(Gen.CS);
  PointsToSolution Solution =
      solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
            SolverOptions(), &Ovs.Rep);

  // Invert the function map for object -> name lookups.
  std::map<NodeId, std::string> FunctionNames;
  for (const auto &[Name, Obj] : Gen.Functions)
    FunctionNames[Obj] = Name;

  // Every named variable (skipping frontend temporaries) that may point to
  // a function is a potential indirect-call site.
  std::printf("\n-- function-pointer targets\n");
  unsigned Sites = 0;
  for (const auto &[Name, Node] : Gen.Variables) {
    if (Name.find("tmp.") != std::string::npos)
      continue;
    std::set<std::string> Callees;
    for (NodeId O : Solution.pointsToVector(Node)) {
      auto It = FunctionNames.find(O);
      if (It != FunctionNames.end())
        Callees.insert(It->second);
    }
    if (Callees.empty())
      continue;
    ++Sites;
    std::printf("  %-20s may call:", Name.c_str());
    for (const std::string &C : Callees)
      std::printf(" %s", C.c_str());
    std::printf("\n");
  }
  if (Sites == 0)
    std::printf("  (no function pointers in this program)\n");

  // Also report, per function, the return-value points-to set: a cheap
  // whole-program summary clients like inliners use.
  std::printf("\n-- function return summaries\n");
  for (const auto &[Name, Obj] : Gen.Functions) {
    NodeId Ret = Obj + ConstraintSystem::FunctionReturnOffset;
    const SparseBitVector &Pts = Solution.pointsTo(Ret);
    if (Pts.empty())
      continue;
    std::printf("  %s() returns pointers to:", Name.c_str());
    for (NodeId O : Solution.pointsToVector(Ret))
      std::printf(" %s", Gen.CS.nameOf(O).c_str());
    std::printf("\n");
  }
  return 0;
}
