//===- solver_race.cpp - All nine algorithms head to head -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every algorithm the paper evaluates on one synthetic benchmark and
/// prints a miniature version of Table 3: solve time, plus the Section-5.3
/// behaviour metrics (nodes collapsed / searched, propagations), verifying
/// along the way that all solutions agree.
///
/// Usage: solver_race [scale]   (default 0.25; 1.0 ~ paper/8 sizing)
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace ag;

int main(int Argc, char **Argv) {
  double Scale = Argc > 1 ? std::atof(Argv[1]) : 0.25;
  BenchmarkSpec Spec = paperSuites(Scale).at(0); // The Emacs-shaped suite.

  std::printf("== generating '%s' workload (scale %.2f)\n",
              Spec.Name.c_str(), Scale);
  ConstraintSystem Raw = generateBenchmark(Spec);
  OvsResult Ovs = runOfflineVariableSubstitution(Raw);
  const ConstraintSystem &CS = Ovs.Reduced;
  std::printf("   %u nodes, %zu constraints (%zu before OVS)\n\n",
              CS.numNodes(), CS.constraints().size(),
              Raw.constraints().size());

  // The HCD offline pass is shared and timed separately, as in Table 3.
  auto T0 = std::chrono::steady_clock::now();
  HcdResult Hcd = runHcdOffline(CS);
  auto T1 = std::chrono::steady_clock::now();
  double HcdOfflineMs =
      std::chrono::duration<double, std::milli>(T1 - T0).count();
  std::printf("HCD offline analysis: %.2f ms (%llu pre-merged, %zu lazy "
              "tuples)\n\n",
              HcdOfflineMs,
              static_cast<unsigned long long>(Hcd.NumPreMerged),
              Hcd.Lazy.size());

  std::printf("%-9s %10s %12s %12s %14s %9s\n", "algorithm", "time(ms)",
              "collapsed", "searched", "propagations", "agrees");

  PointsToSolution Reference;
  bool HaveReference = false;
  for (SolverKind Kind : AllSolverKinds) {
    SolverStats Stats;
    auto Start = std::chrono::steady_clock::now();
    PointsToSolution S =
        solve(CS, Kind, PtsRepr::Bitmap, &Stats, SolverOptions(),
              &Ovs.Rep, usesHcd(Kind) ? &Hcd : nullptr);
    auto End = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(End - Start)
                    .count();
    bool Agrees = true;
    if (!HaveReference) {
      Reference = std::move(S);
      HaveReference = true;
    } else {
      Agrees = S == Reference;
    }
    std::printf("%-9s %10.2f %12llu %12llu %14llu %9s\n",
                solverKindName(Kind), Ms,
                static_cast<unsigned long long>(Stats.NodesCollapsed),
                static_cast<unsigned long long>(Stats.NodesSearched),
                static_cast<unsigned long long>(Stats.Propagations),
                Agrees ? "yes" : "NO");
    if (!Agrees)
      return 1;
  }
  std::printf("\nall algorithms computed identical solutions\n");
  return 0;
}
