//===- alias_checker.cpp - May-alias analysis of mini-C source ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end use of the frontend: parse a mini-C file (or a built-in demo
/// program), generate inclusion constraints, solve, and print the points-to
/// set of every named pointer variable plus a may-alias matrix.
///
/// Usage: alias_checker [file.c]
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ag;

namespace {

const char *DemoProgram = R"(
// A small allocator/consumer program with aliasing worth asking about.
struct node { struct node *next; int *payload; };

struct node *freelist;
int shared_counter;
int private_counter;

struct node *grab() {
  struct node *n;
  if (freelist) {
    n = freelist;
    freelist = n->next;
  } else {
    n = malloc(16);
  }
  return n;
}

void release(struct node *n) {
  n->next = freelist;
  freelist = n;
}

void produce() {
  struct node *a;
  struct node *b;
  a = grab();
  b = grab();
  a->payload = &shared_counter;
  b->payload = &private_counter;
  release(a);
  release(b);
}

int *consume() {
  struct node *n;
  n = grab();
  return n->payload;
}
)";

} // namespace

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    std::printf("== analyzing %s\n", Argv[1]);
  } else {
    Source = DemoProgram;
    std::printf("== analyzing built-in demo program\n");
  }

  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Source, Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("constraints: %zu over %u nodes\n",
              Gen.CS.constraints().size(), Gen.CS.numNodes());

  OvsResult Ovs = runOfflineVariableSubstitution(Gen.CS);
  SolverStats Stats;
  PointsToSolution Solution = solve(Ovs.Reduced, SolverKind::LCDHCD,
                                    PtsRepr::Bitmap, &Stats,
                                    SolverOptions(), &Ovs.Rep);

  // Print the points-to sets of the user-visible variables that point at
  // anything.
  std::printf("\n-- points-to sets (non-empty, named variables)\n");
  std::vector<std::pair<std::string, NodeId>> Interesting;
  for (const auto &[Name, Node] : Gen.Variables) {
    if (Name.find("tmp.") != std::string::npos)
      continue;
    if (Solution.pointsTo(Node).empty())
      continue;
    Interesting.emplace_back(Name, Node);
  }
  for (const auto &[Name, Node] : Interesting) {
    std::printf("  %-22s -> {", Name.c_str());
    bool First = true;
    for (NodeId O : Solution.pointsToVector(Node)) {
      std::printf("%s%s", First ? "" : ", ", Gen.CS.nameOf(O).c_str());
      First = false;
    }
    std::printf("}\n");
  }

  std::printf("\n-- may-alias matrix\n      ");
  for (size_t I = 0; I != Interesting.size(); ++I)
    std::printf(" %zu", I);
  std::printf("\n");
  for (size_t I = 0; I != Interesting.size(); ++I) {
    std::printf("  [%zu] %-22s", I, Interesting[I].first.c_str());
    for (size_t J = 0; J != Interesting.size(); ++J)
      std::printf("%s",
                  Solution.mayAlias(Interesting[I].second,
                                    Interesting[J].second)
                      ? " A"
                      : " .");
    std::printf("\n");
  }

  std::printf("\n-- solver stats\n%s", Stats.toString("  ").c_str());
  return 0;
}
