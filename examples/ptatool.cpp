//===- ptatool.cpp - Constraint-file driver -------------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver around the constraint-file workflow, mirroring how
/// the paper's pipeline separated constraint generation (CIL) from solving:
///
///   ptatool gen <out-dir> [scale] [--delta-frac <f>]
///                                        write the six suite files; with
///                                        --delta-frac also write
///                                        <suite>.base.cons/<suite>.delta.cons
///   ptatool gen-c <file.c> <out.cons>    constraints from mini-C source
///   ptatool solve <file.cons> [algo]     solve and print summary stats
///   ptatool query <file.cons> <v> <w>    may-alias query by node name
///   ptatool snapshot <file.cons> <out.snap> [algo]
///                                        solve and persist the solution
///   ptatool serve <file.snap>            line-protocol query REPL on stdin
///   ptatool resolve <file.snap> <delta.cons>
///                                        warm-start re-solve with a delta
///
/// solve, snapshot and resolve accept resource-budget flags (--timeout,
/// --max-mem-mb, --max-steps, --no-fallback), plus --threads <n> to run
/// the parallel wavefront solver (LCD / LCD+HCD over bitmaps; budgets
/// still apply — workers poll the governor cooperatively), and report how
/// the run concluded through their exit code:
///   0  precise solve within budget
///   1  error (bad input, unreadable file)
///   2  usage
///   3  budget tripped; the Steensgaard fallback solution was used
///   4  budget tripped with --no-fallback; partial (unsound) state printed
/// snapshot writes its output for exit codes 0 and 3 (a fallback snapshot
/// still serves queries soundly, but cannot seed `resolve`) and writes
/// nothing on 4. serve exits 0 on EOF or `quit`, 1 if the snapshot cannot
/// be loaded.
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"
#include "serve/IncrementalSolver.h"
#include "serve/QueryEngine.h"
#include "serve/Snapshot.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <atomic>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ag;

namespace {

// Exit codes (documented in the file header and DESIGN.md).
constexpr int ExitPrecise = 0;
constexpr int ExitError = 1;
constexpr int ExitUsage = 2;
constexpr int ExitFallback = 3;
constexpr int ExitPartial = 4;

int usage() {
  std::fprintf(stderr,
               "usage: ptatool gen <out-dir> [scale] [--delta-frac <f>]\n"
               "       ptatool gen-c <file.c> <out.cons>\n"
               "       ptatool solve <file.cons> [HT|PKH|BLQ|LCD|HCD|"
               "HT+HCD|PKH+HCD|BLQ+HCD|LCD+HCD|Naive]\n"
               "               [--timeout <seconds>] [--max-mem-mb <mb>]\n"
               "               [--max-steps <n>] [--no-fallback]\n"
               "               [--threads <n>] [--trace-out=<file>]\n"
               "               [--metrics-out=<file>] "
               "[--metrics-interval-ms=<n>]\n"
               "       ptatool query <file.cons> <name1> <name2>\n"
               "       ptatool snapshot <file.cons> <out.snap> [algo] "
               "[budget flags]\n"
               "       ptatool serve <file.snap>\n"
               "       ptatool resolve <file.snap> <delta.cons> "
               "[budget flags]\n"
               "solve/snapshot/resolve exit codes: 0 precise, 1 error, "
               "2 usage, 3 fallback, 4 partial\n");
  return ExitUsage;
}

/// Strictly parses a positive, finite double; rejects trailing junk.
bool parsePositiveDouble(const char *Text, double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (!std::isfinite(V) || V <= 0)
    return false;
  Out = V;
  return true;
}

/// Strictly parses a positive decimal integer; rejects trailing junk.
bool parsePositiveU64(const char *Text, uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (V == 0 || Text[0] == '-')
    return false;
  Out = V;
  return true;
}

bool parseKind(const std::string &Name, SolverKind &Out) {
  for (SolverKind K : AllSolverKinds)
    if (Name == solverKindName(K)) {
      Out = K;
      return true;
    }
  if (Name == "Naive") {
    Out = SolverKind::Naive;
    return true;
  }
  return false;
}

bool loadSystem(const std::string &Path, ConstraintSystem &CS) {
  std::string Error;
  if (!ConstraintSystem::readFromFile(Path, CS, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  return true;
}

int cmdGen(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Dir = Argv[2];
  double Scale = 0.25;
  double DeltaFrac = 0.0;
  bool SawScale = false;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--delta-frac") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --delta-frac expects a value\n");
        return usage();
      }
      const char *Value = Argv[++I];
      if (!parsePositiveDouble(Value, DeltaFrac) || DeltaFrac >= 1.0) {
        std::fprintf(stderr,
                     "error: delta fraction '%s' must be in (0, 1)\n",
                     Value);
        return ExitError;
      }
    } else if (!SawScale) {
      SawScale = true;
      // Validate strictly: atof's silent 0.0 on garbage used to produce
      // degenerate (or, with absurd scales, effectively unbounded) suites.
      constexpr double MaxScale = 64.0;
      if (!parsePositiveDouble(Argv[I], Scale) || Scale > MaxScale) {
        std::fprintf(stderr,
                     "error: scale '%s' must be a finite number in (0, %g]\n",
                     Argv[I], MaxScale);
        return ExitError;
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    ConstraintSystem CS = generateBenchmark(Spec);
    std::string Path = Dir + "/" + Spec.Name + ".cons";
    if (!CS.writeToFile(Path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 1;
    }
    std::printf("wrote %-40s (%zu constraints, %u nodes)\n", Path.c_str(),
                CS.constraints().size(), CS.numNodes());
    if (DeltaFrac > 0.0) {
      // Deterministic base/delta partition for incremental benchmarking;
      // the delta file carries the full node table plus only the
      // held-out constraints (the shape `ptatool resolve` consumes).
      DeltaSplit Split = splitDelta(CS, DeltaFrac, Spec.Seed);
      ConstraintSystem DeltaCS = CS.cloneNodeTable();
      for (const Constraint &C : Split.Delta)
        DeltaCS.add(C);
      std::string BasePath = Dir + "/" + Spec.Name + ".base.cons";
      std::string DeltaPath = Dir + "/" + Spec.Name + ".delta.cons";
      if (!Split.Base.writeToFile(BasePath) ||
          !DeltaCS.writeToFile(DeltaPath)) {
        std::fprintf(stderr, "error: cannot write delta split for '%s'\n",
                     Spec.Name.c_str());
        return 1;
      }
      std::printf("wrote %-40s (%zu constraints)\n", BasePath.c_str(),
                  Split.Base.constraints().size());
      std::printf("wrote %-40s (%zu constraints)\n", DeltaPath.c_str(),
                  DeltaCS.constraints().size());
    }
  }
  return 0;
}

int cmdGenC(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  std::ifstream In(Argv[2]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[2]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Buf.str(), Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Gen.CS.writeToFile(Argv[3])) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu constraints, %u nodes)\n", Argv[3],
              Gen.CS.constraints().size(), Gen.CS.numNodes());
  return 0;
}

/// The algorithm/budget/thread arguments shared by solve, snapshot and
/// resolve.
struct SolveFlags {
  SolverKind Kind = SolverKind::LCDHCD;
  SolveBudget Budget;
  SolverOptions Opts;
  /// Observability outputs (empty = channel stays off).
  std::string TraceOut;
  std::string MetricsOut;
  uint64_t MetricsIntervalMs = 0;
};

/// Enables the requested observability channels for the duration of a
/// command and writes the output files on destruction. Arms the flight
/// recorder's dump-on-trip while any output was requested, and runs an
/// optional sampler thread that republishes memory peaks into the trace
/// every MetricsIntervalMs (the final publish at scope exit keeps the
/// metrics JSON itself interval-independent, hence run-to-run identical).
class ObsSession {
public:
  explicit ObsSession(const SolveFlags &F)
      : TraceOut(F.TraceOut), MetricsOut(F.MetricsOut) {
    if (!TraceOut.empty()) {
      obs::TraceRecorder::instance().clear();
      obs::setTraceEnabled(true);
    }
    if (!MetricsOut.empty()) {
      obs::MetricsRegistry::instance().reset();
      obs::setMetricsEnabled(true);
    }
    if (!TraceOut.empty() || !MetricsOut.empty())
      obs::FlightRecorder::instance().setDumpOnTrip(true);
    if (F.MetricsIntervalMs > 0 && !TraceOut.empty())
      Sampler = std::thread([this, Interval = F.MetricsIntervalMs] {
        std::unique_lock<std::mutex> Lock(Mu);
        while (!Done.load(std::memory_order_relaxed)) {
          Cv.wait_for(Lock, std::chrono::milliseconds(Interval));
          if (Done.load(std::memory_order_relaxed))
            break;
          obs::publishMemPeaks();
        }
      });
  }

  ~ObsSession() {
    if (Sampler.joinable()) {
      Done.store(true, std::memory_order_relaxed);
      Cv.notify_all();
      Sampler.join();
    }
    obs::publishMemPeaks();
    if (!TraceOut.empty()) {
      obs::setTraceEnabled(false);
      if (Status St = obs::TraceRecorder::instance().writeJson(TraceOut);
          !St.ok())
        std::fprintf(stderr, "warning: %s\n", St.toString().c_str());
      else
        std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                     TraceOut.c_str(),
                     obs::TraceRecorder::instance().eventCount());
    }
    if (!MetricsOut.empty()) {
      obs::setMetricsEnabled(false);
      std::ofstream Os(MetricsOut, std::ios::binary | std::ios::trunc);
      std::string Json = obs::MetricsRegistry::instance().renderJson();
      Os.write(Json.data(), std::streamsize(Json.size()));
      if (!Os)
        std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                     MetricsOut.c_str());
      else
        std::fprintf(stderr, "wrote metrics to %s\n", MetricsOut.c_str());
    }
    obs::FlightRecorder::instance().setDumpOnTrip(false);
  }

private:
  std::string TraceOut;
  std::string MetricsOut;
  std::thread Sampler;
  std::mutex Mu;
  std::condition_variable Cv;
  std::atomic<bool> Done{false};
};

/// Parses the optional [algo] positional plus the budget flags starting at
/// Argv[Start]. When \p AllowKind is false (resolve: warm start always
/// replays the LCD family the snapshot was built for) any positional is
/// rejected. Returns ExitPrecise on success, otherwise the exit code to
/// return from the command.
int parseSolveFlags(int Argc, char **Argv, int Start, bool AllowKind,
                    SolveFlags &F) {
  bool SawKind = false;
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Observability flags accept --flag=value and --flag value forms.
    {
      std::string Name = Arg, Value;
      bool HasValue = false;
      if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
        Name = Arg.substr(0, Eq);
        Value = Arg.substr(Eq + 1);
        HasValue = true;
      }
      if (Name == "--trace-out" || Name == "--metrics-out" ||
          Name == "--metrics-interval-ms") {
        if (!HasValue) {
          if (I + 1 >= Argc) {
            std::fprintf(stderr, "error: %s expects a value\n", Name.c_str());
            return usage();
          }
          Value = Argv[++I];
        }
        if (Value.empty()) {
          std::fprintf(stderr, "error: %s expects a value\n", Name.c_str());
          return usage();
        }
        if (Name == "--trace-out") {
          F.TraceOut = Value;
        } else if (Name == "--metrics-out") {
          F.MetricsOut = Value;
        } else if (!parsePositiveU64(Value.c_str(), F.MetricsIntervalMs)) {
          std::fprintf(stderr, "error: bad value '%s' for %s\n",
                       Value.c_str(), Name.c_str());
          return usage();
        }
        continue;
      }
    }
    if (Arg == "--no-fallback") {
      F.Budget.AllowFallback = false;
    } else if (Arg == "--timeout" || Arg == "--max-mem-mb" ||
               Arg == "--max-steps" || Arg == "--threads") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Arg.c_str());
        return usage();
      }
      const char *Value = Argv[++I];
      bool Valid = false;
      if (Arg == "--timeout") {
        Valid = parsePositiveDouble(Value, F.Budget.TimeoutSeconds);
      } else if (Arg == "--max-mem-mb") {
        uint64_t Mb = 0;
        Valid = parsePositiveU64(Value, Mb) &&
                Mb <= (UINT64_MAX >> 20); // No overflow converting to bytes.
        F.Budget.MaxMemoryBytes = Mb << 20;
      } else if (Arg == "--max-steps") {
        Valid = parsePositiveU64(Value, F.Budget.MaxPropagations);
      } else { // --threads
        // Parallel wavefront solving applies to LCD / LCD+HCD (the default
        // algorithm) over bitmap sets; other kinds quietly run sequential.
        // Budgets compose: workers poll the governor cooperatively, so
        // --timeout and friends still trip (at shard granularity).
        uint64_t N = 0;
        constexpr uint64_t MaxThreads = 256;
        Valid = parsePositiveU64(Value, N) && N <= MaxThreads;
        F.Opts.Threads = static_cast<unsigned>(N);
      }
      if (!Valid) {
        std::fprintf(stderr, "error: bad value '%s' for %s\n", Value,
                     Arg.c_str());
        return usage();
      }
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage();
    } else if (AllowKind && !SawKind) {
      SawKind = true;
      if (!parseKind(Arg, F.Kind)) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", Arg.c_str());
        return ExitError;
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }
  return ExitPrecise;
}

int cmdSolve(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 3, /*AllowKind=*/true, F))
    return Rc;
  SolverKind Kind = F.Kind;
  SolveBudget Budget = F.Budget;
  SolverOptions Opts = F.Opts;
  ObsSession Obs(F);

  auto T0 = std::chrono::steady_clock::now();
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  SolveResult R = solveGoverned(Ovs.Reduced, Kind, Budget, PtsRepr::Bitmap,
                                &Stats, Opts, &Ovs.Rep);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  const PointsToSolution &Sol = R.Solution;
  std::printf("%s on %s: %.3f s (incl. OVS), outcome %s\n",
              solverKindName(Kind), Argv[2], Seconds,
              solveOutcomeName(R.Outcome));
  if (!R.St.ok())
    std::printf("  budget: %s\n", R.St.toString().c_str());
  if (R.Outcome == SolveOutcome::Partial)
    std::printf("  WARNING: partial solution — sets may be incomplete\n");
  std::printf("  nodes %u, constraints %zu (%zu after OVS)\n",
              CS.numNodes(), CS.constraints().size(),
              Ovs.Reduced.constraints().size());
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(Sol.totalPointsToSize()),
              static_cast<unsigned long long>(Sol.hash()));
  std::printf("%s", Stats.toString("  ").c_str());
  if (R.Outcome == SolveOutcome::Fallback)
    return ExitFallback;
  if (R.Outcome == SolveOutcome::Partial)
    return ExitPartial;
  return ExitPrecise;
}

int cmdQuery(int Argc, char **Argv) {
  if (Argc < 5)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return 1;
  NodeId A = InvalidNode, B = InvalidNode;
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    if (CS.nameOf(V) == Argv[3])
      A = V;
    if (CS.nameOf(V) == Argv[4])
      B = V;
  }
  if (A == InvalidNode || B == InvalidNode) {
    std::fprintf(stderr, "error: unknown node name '%s'\n",
                 A == InvalidNode ? Argv[3] : Argv[4]);
    return 1;
  }
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  PointsToSolution Sol = solve(Ovs.Reduced, SolverKind::LCDHCD,
                               PtsRepr::Bitmap, nullptr, SolverOptions(),
                               &Ovs.Rep);
  std::printf("mayAlias(%s, %s) = %s\n", Argv[3], Argv[4],
              Sol.mayAlias(A, B) ? "yes" : "no");
  std::printf("|pts(%s)| = %zu, |pts(%s)| = %zu\n", Argv[3],
              Sol.pointsTo(A).count(), Argv[4], Sol.pointsTo(B).count());
  return 0;
}

int cmdSnapshot(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 4, /*AllowKind=*/true, F))
    return Rc;
  ObsSession Obs(F);

  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  SolveResult R = solveGoverned(Ovs.Reduced, F.Kind, F.Budget,
                                PtsRepr::Bitmap, &Stats, F.Opts, &Ovs.Rep);
  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  if (R.Outcome == SolveOutcome::Partial) {
    // Partial state is unsound; persisting it would let `serve` answer
    // queries wrong and `resolve` warm-start from a non-fixpoint.
    std::fprintf(stderr,
                 "warning: budget tripped with --no-fallback; partial "
                 "solution NOT written (%s)\n",
                 R.St.toString().c_str());
    return ExitPartial;
  }

  Snapshot Snap;
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  Snap.Solution = std::move(R.Solution);
  Snap.Kind = F.Kind;
  Snap.Repr = PtsRepr::Bitmap;
  Snap.Outcome = R.Outcome;
  Snap.Sound = true;
  if (Status St = writeSnapshotFile(Snap, Argv[3]); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return ExitError;
  }
  std::printf("wrote %s: %s/%s, %u nodes, total |pts| %llu\n", Argv[3],
              solverKindName(F.Kind), solveOutcomeName(R.Outcome),
              Snap.CS.numNodes(),
              static_cast<unsigned long long>(
                  Snap.Solution.totalPointsToSize()));
  if (R.Outcome == SolveOutcome::Fallback) {
    std::printf("  budget: %s\n", R.St.toString().c_str());
    return ExitFallback;
  }
  return ExitPrecise;
}

/// Resolves a REPL node reference: a decimal id, or a node name from the
/// snapshot's node table. Returns false (with a message on stdout, so the
/// client sees it in-protocol) if the reference does not name a node.
bool resolveNodeRef(const std::string &Tok, const ConstraintSystem &CS,
                    const std::unordered_map<std::string, NodeId> &Names,
                    NodeId &Out) {
  if (!Tok.empty() && Tok.find_first_not_of("0123456789") == std::string::npos) {
    uint64_t Id = 0;
    errno = 0;
    Id = std::strtoull(Tok.c_str(), nullptr, 10);
    if (errno != ERANGE && Id < CS.numNodes()) {
      Out = static_cast<NodeId>(Id);
      return true;
    }
  } else if (auto It = Names.find(Tok); It != Names.end()) {
    Out = It->second;
    return true;
  }
  std::printf("error: unknown node '%s'\n", Tok.c_str());
  return false;
}

void printIdList(const char *What, const std::string &Ref,
                 const QueryEngine::IdList &List) {
  std::printf("%s(%s):", What, Ref.c_str());
  for (NodeId V : *List)
    std::printf(" %u", V);
  std::printf("\n");
}

int cmdServe(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  // A serving process always collects metrics (the `stats` command reads
  // them) and keeps the flight ring; full tracing stays off.
  obs::setMetricsEnabled(true);
  Snapshot Snap;
  if (Status St = readSnapshotFile(Argv[2], Snap); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return ExitError;
  }

  // Name -> id map for the REPL (first occurrence wins; interior slots
  // have generated names like "a[1]" and resolve too).
  std::unordered_map<std::string, NodeId> Names;
  for (NodeId V = 0; V != Snap.CS.numNodes(); ++V) {
    const std::string &Name = Snap.CS.nameOf(V);
    if (!Name.empty())
      Names.emplace(Name, V);
  }

  QueryEngine Engine(std::move(Snap));
  const ConstraintSystem &CS = Engine.snapshot().CS;
  std::printf("serving %u nodes, %zu constraints (type 'help')\n",
              Engine.numNodes(), CS.constraints().size());

  std::string Line;
  while (std::getline(std::cin, Line)) {
    std::istringstream Iss(Line);
    std::string Cmd;
    if (!(Iss >> Cmd))
      continue; // Blank line.
    std::vector<std::string> Args;
    for (std::string Tok; Iss >> Tok;)
      Args.push_back(Tok);

    if (Cmd == "quit")
      return ExitPrecise;
    if (Cmd == "help") {
      std::printf("commands: pts <v> | alias <p> <q> | aliasbatch <p> <q> "
                  "[<p> <q>]... | pointedby <o> | callees <v> | callgraph | "
                  "stats | trace | help | quit\n"
                  "node refs are decimal ids or node names\n");
      continue;
    }
    if (Cmd == "stats") {
      CacheStats S = Engine.cacheStats();
      std::printf("stats: hits %llu misses %llu evictions %llu entries "
                  "%llu\n",
                  static_cast<unsigned long long>(S.Hits),
                  static_cast<unsigned long long>(S.Misses),
                  static_cast<unsigned long long>(S.Evictions),
                  static_cast<unsigned long long>(S.Entries));
      std::printf("%s", obs::MetricsRegistry::instance().renderText().c_str());
      continue;
    }
    if (Cmd == "trace") {
      obs::FlightRecorder &FR = obs::FlightRecorder::instance();
      std::printf("flight recorder: %llu events total\n",
                  static_cast<unsigned long long>(FR.totalRecorded()));
      std::printf("%s", FR.dumpText().c_str());
      continue;
    }
    if (Cmd == "callgraph") {
      const auto &Edges = Engine.callGraph();
      std::printf("callgraph: %zu edges\n", Edges.size());
      for (const auto &[Base, Callee] : Edges)
        std::printf("edge %u %u\n", Base, Callee);
      continue;
    }
    if (Cmd == "pts" || Cmd == "pointedby" || Cmd == "callees") {
      if (Args.size() != 1) {
        std::printf("error: %s expects one node\n", Cmd.c_str());
        continue;
      }
      NodeId V = InvalidNode;
      if (!resolveNodeRef(Args[0], CS, Names, V))
        continue;
      if (Cmd == "pts")
        printIdList("pts", Args[0], Engine.pointsTo(V));
      else if (Cmd == "pointedby")
        printIdList("pointedby", Args[0], Engine.pointedBy(V));
      else
        printIdList("callees", Args[0], Engine.callees(V));
      continue;
    }
    if (Cmd == "alias") {
      if (Args.size() != 2) {
        std::printf("error: alias expects two nodes\n");
        continue;
      }
      NodeId P = InvalidNode, Q = InvalidNode;
      if (!resolveNodeRef(Args[0], CS, Names, P) ||
          !resolveNodeRef(Args[1], CS, Names, Q))
        continue;
      std::printf("alias(%s,%s) = %s\n", Args[0].c_str(), Args[1].c_str(),
                  Engine.alias(P, Q) ? "yes" : "no");
      continue;
    }
    if (Cmd == "aliasbatch") {
      if (Args.empty() || Args.size() % 2 != 0) {
        std::printf("error: aliasbatch expects an even number of nodes\n");
        continue;
      }
      std::vector<std::pair<NodeId, NodeId>> Pairs;
      bool Ok = true;
      for (size_t I = 0; I < Args.size(); I += 2) {
        NodeId P = InvalidNode, Q = InvalidNode;
        if (!resolveNodeRef(Args[I], CS, Names, P) ||
            !resolveNodeRef(Args[I + 1], CS, Names, Q)) {
          Ok = false;
          break;
        }
        Pairs.emplace_back(P, Q);
      }
      if (!Ok)
        continue;
      std::vector<bool> Verdicts = Engine.aliasBatch(Pairs);
      std::printf("aliasbatch:");
      for (bool B : Verdicts)
        std::printf(" %s", B ? "yes" : "no");
      std::printf("\n");
      continue;
    }
    std::printf("error: unknown command '%s' (type 'help')\n", Cmd.c_str());
  }
  return ExitPrecise; // EOF.
}

int cmdResolve(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  Snapshot Snap;
  if (Status St = readSnapshotFile(Argv[2], Snap); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return ExitError;
  }
  ConstraintSystem DeltaCS;
  if (!loadSystem(Argv[3], DeltaCS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 4, /*AllowKind=*/false, F))
    return Rc;
  ObsSession Obs(F);

  IncrementalSolver Inc(std::move(Snap));
  if (!Inc.valid().ok()) {
    std::fprintf(stderr, "error: %s\n", Inc.valid().toString().c_str());
    return ExitError;
  }
  auto T0 = std::chrono::steady_clock::now();
  WarmStartResult R = Inc.resolveSystem(DeltaCS, F.Budget, F.Opts);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  std::printf("warm re-solve of %s + %s: %.3f s, outcome %s\n", Argv[2],
              Argv[3], Seconds, solveOutcomeName(R.Outcome));
  if (!R.St.ok())
    std::printf("  budget: %s\n", R.St.toString().c_str());
  if (R.Outcome == SolveOutcome::Partial)
    std::printf("  WARNING: partial solution — sets may be incomplete\n");
  std::printf("  new constraints %u, seeded nodes %u\n", R.NewConstraints,
              R.SeededNodes);
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(
                  R.Solution.totalPointsToSize()),
              static_cast<unsigned long long>(R.Solution.hash()));
  std::printf("%s", R.Stats.toString("  ").c_str());
  if (R.Outcome == SolveOutcome::Fallback)
    return ExitFallback;
  if (R.Outcome == SolveOutcome::Partial)
    return ExitPartial;
  return ExitPrecise;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "gen") == 0)
    return cmdGen(Argc, Argv);
  if (std::strcmp(Argv[1], "gen-c") == 0)
    return cmdGenC(Argc, Argv);
  if (std::strcmp(Argv[1], "solve") == 0)
    return cmdSolve(Argc, Argv);
  if (std::strcmp(Argv[1], "query") == 0)
    return cmdQuery(Argc, Argv);
  if (std::strcmp(Argv[1], "snapshot") == 0)
    return cmdSnapshot(Argc, Argv);
  if (std::strcmp(Argv[1], "serve") == 0)
    return cmdServe(Argc, Argv);
  if (std::strcmp(Argv[1], "resolve") == 0)
    return cmdResolve(Argc, Argv);
  return usage();
}
