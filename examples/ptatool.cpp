//===- ptatool.cpp - Constraint-file driver -------------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver around the constraint-file workflow, mirroring how
/// the paper's pipeline separated constraint generation (CIL) from solving:
///
///   ptatool gen <out-dir> [scale]        write the six suite files
///   ptatool gen-c <file.c> <out.cons>    constraints from mini-C source
///   ptatool solve <file.cons> [algo]     solve and print summary stats
///   ptatool query <file.cons> <v> <w>    may-alias query by node name
///
/// solve accepts resource-budget flags (--timeout, --max-mem-mb,
/// --max-steps, --no-fallback), plus --threads <n> to run the parallel
/// wavefront solver (LCD / LCD+HCD over bitmaps; budgets still apply —
/// workers poll the governor cooperatively), and reports how the run
/// concluded through its exit code:
///   0  precise solve within budget
///   1  error (bad input, unreadable file)
///   2  usage
///   3  budget tripped; the Steensgaard fallback solution was printed
///   4  budget tripped with --no-fallback; partial (unsound) state printed
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ag;

namespace {

// Exit codes (documented in the file header and DESIGN.md).
constexpr int ExitPrecise = 0;
constexpr int ExitError = 1;
constexpr int ExitUsage = 2;
constexpr int ExitFallback = 3;
constexpr int ExitPartial = 4;

int usage() {
  std::fprintf(stderr,
               "usage: ptatool gen <out-dir> [scale]\n"
               "       ptatool gen-c <file.c> <out.cons>\n"
               "       ptatool solve <file.cons> [HT|PKH|BLQ|LCD|HCD|"
               "HT+HCD|PKH+HCD|BLQ+HCD|LCD+HCD|Naive]\n"
               "               [--timeout <seconds>] [--max-mem-mb <mb>]\n"
               "               [--max-steps <n>] [--no-fallback]\n"
               "               [--threads <n>]\n"
               "       ptatool query <file.cons> <name1> <name2>\n"
               "solve exit codes: 0 precise, 1 error, 2 usage, "
               "3 fallback, 4 partial\n");
  return ExitUsage;
}

/// Strictly parses a positive, finite double; rejects trailing junk.
bool parsePositiveDouble(const char *Text, double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (!std::isfinite(V) || V <= 0)
    return false;
  Out = V;
  return true;
}

/// Strictly parses a positive decimal integer; rejects trailing junk.
bool parsePositiveU64(const char *Text, uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (V == 0 || Text[0] == '-')
    return false;
  Out = V;
  return true;
}

bool parseKind(const std::string &Name, SolverKind &Out) {
  for (SolverKind K : AllSolverKinds)
    if (Name == solverKindName(K)) {
      Out = K;
      return true;
    }
  if (Name == "Naive") {
    Out = SolverKind::Naive;
    return true;
  }
  return false;
}

bool loadSystem(const std::string &Path, ConstraintSystem &CS) {
  std::string Error;
  if (!ConstraintSystem::readFromFile(Path, CS, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  return true;
}

int cmdGen(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Dir = Argv[2];
  double Scale = 0.25;
  if (Argc > 3) {
    // Validate strictly: atof's silent 0.0 on garbage used to produce
    // degenerate (or, with absurd scales, effectively unbounded) suites.
    constexpr double MaxScale = 64.0;
    if (!parsePositiveDouble(Argv[3], Scale) || Scale > MaxScale) {
      std::fprintf(stderr,
                   "error: scale '%s' must be a finite number in (0, %g]\n",
                   Argv[3], MaxScale);
      return ExitError;
    }
  }
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    ConstraintSystem CS = generateBenchmark(Spec);
    std::string Path = Dir + "/" + Spec.Name + ".cons";
    if (!CS.writeToFile(Path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 1;
    }
    std::printf("wrote %-40s (%zu constraints, %u nodes)\n", Path.c_str(),
                CS.constraints().size(), CS.numNodes());
  }
  return 0;
}

int cmdGenC(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  std::ifstream In(Argv[2]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[2]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Buf.str(), Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Gen.CS.writeToFile(Argv[3])) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu constraints, %u nodes)\n", Argv[3],
              Gen.CS.constraints().size(), Gen.CS.numNodes());
  return 0;
}

int cmdSolve(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;
  SolverKind Kind = SolverKind::LCDHCD;
  SolveBudget Budget;
  SolverOptions Opts;
  int NextPositional = 3;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--no-fallback") {
      Budget.AllowFallback = false;
    } else if (Arg == "--timeout" || Arg == "--max-mem-mb" ||
               Arg == "--max-steps" || Arg == "--threads") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Arg.c_str());
        return usage();
      }
      const char *Value = Argv[++I];
      bool Valid = false;
      if (Arg == "--timeout") {
        Valid = parsePositiveDouble(Value, Budget.TimeoutSeconds);
      } else if (Arg == "--max-mem-mb") {
        uint64_t Mb = 0;
        Valid = parsePositiveU64(Value, Mb) &&
                Mb <= (UINT64_MAX >> 20); // No overflow converting to bytes.
        Budget.MaxMemoryBytes = Mb << 20;
      } else if (Arg == "--max-steps") {
        Valid = parsePositiveU64(Value, Budget.MaxPropagations);
      } else { // --threads
        // Parallel wavefront solving applies to LCD / LCD+HCD (the default
        // algorithm) over bitmap sets; other kinds quietly run sequential.
        // Budgets compose: workers poll the governor cooperatively, so
        // --timeout and friends still trip (at shard granularity).
        uint64_t N = 0;
        constexpr uint64_t MaxThreads = 256;
        Valid = parsePositiveU64(Value, N) && N <= MaxThreads;
        Opts.Threads = static_cast<unsigned>(N);
      }
      if (!Valid) {
        std::fprintf(stderr, "error: bad value '%s' for %s\n", Value,
                     Arg.c_str());
        return usage();
      }
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage();
    } else if (NextPositional == 3) {
      NextPositional = 4;
      if (!parseKind(Arg, Kind)) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", Arg.c_str());
        return ExitError;
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }

  auto T0 = std::chrono::steady_clock::now();
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  SolveResult R = solveGoverned(Ovs.Reduced, Kind, Budget, PtsRepr::Bitmap,
                                &Stats, Opts, &Ovs.Rep);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  const PointsToSolution &Sol = R.Solution;
  std::printf("%s on %s: %.3f s (incl. OVS), outcome %s\n",
              solverKindName(Kind), Argv[2], Seconds,
              solveOutcomeName(R.Outcome));
  if (!R.St.ok())
    std::printf("  budget: %s\n", R.St.toString().c_str());
  if (R.Outcome == SolveOutcome::Partial)
    std::printf("  WARNING: partial solution — sets may be incomplete\n");
  std::printf("  nodes %u, constraints %zu (%zu after OVS)\n",
              CS.numNodes(), CS.constraints().size(),
              Ovs.Reduced.constraints().size());
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(Sol.totalPointsToSize()),
              static_cast<unsigned long long>(Sol.hash()));
  std::printf("%s", Stats.toString("  ").c_str());
  if (R.Outcome == SolveOutcome::Fallback)
    return ExitFallback;
  if (R.Outcome == SolveOutcome::Partial)
    return ExitPartial;
  return ExitPrecise;
}

int cmdQuery(int Argc, char **Argv) {
  if (Argc < 5)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return 1;
  NodeId A = InvalidNode, B = InvalidNode;
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    if (CS.nameOf(V) == Argv[3])
      A = V;
    if (CS.nameOf(V) == Argv[4])
      B = V;
  }
  if (A == InvalidNode || B == InvalidNode) {
    std::fprintf(stderr, "error: unknown node name '%s'\n",
                 A == InvalidNode ? Argv[3] : Argv[4]);
    return 1;
  }
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  PointsToSolution Sol = solve(Ovs.Reduced, SolverKind::LCDHCD,
                               PtsRepr::Bitmap, nullptr, SolverOptions(),
                               &Ovs.Rep);
  std::printf("mayAlias(%s, %s) = %s\n", Argv[3], Argv[4],
              Sol.mayAlias(A, B) ? "yes" : "no");
  std::printf("|pts(%s)| = %zu, |pts(%s)| = %zu\n", Argv[3],
              Sol.pointsTo(A).count(), Argv[4], Sol.pointsTo(B).count());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "gen") == 0)
    return cmdGen(Argc, Argv);
  if (std::strcmp(Argv[1], "gen-c") == 0)
    return cmdGenC(Argc, Argv);
  if (std::strcmp(Argv[1], "solve") == 0)
    return cmdSolve(Argc, Argv);
  if (std::strcmp(Argv[1], "query") == 0)
    return cmdQuery(Argc, Argv);
  return usage();
}
