//===- ptatool.cpp - Constraint-file driver -------------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver around the constraint-file workflow, mirroring how
/// the paper's pipeline separated constraint generation (CIL) from solving:
///
///   ptatool gen <out-dir> [scale]        write the six suite files
///   ptatool gen-c <file.c> <out.cons>    constraints from mini-C source
///   ptatool solve <file.cons> [algo]     solve and print summary stats
///   ptatool query <file.cons> <v> <w>    may-alias query by node name
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ag;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ptatool gen <out-dir> [scale]\n"
               "       ptatool gen-c <file.c> <out.cons>\n"
               "       ptatool solve <file.cons> [HT|PKH|BLQ|LCD|HCD|"
               "HT+HCD|PKH+HCD|BLQ+HCD|LCD+HCD|Naive]\n"
               "       ptatool query <file.cons> <name1> <name2>\n");
  return 2;
}

bool parseKind(const std::string &Name, SolverKind &Out) {
  for (SolverKind K : AllSolverKinds)
    if (Name == solverKindName(K)) {
      Out = K;
      return true;
    }
  if (Name == "Naive") {
    Out = SolverKind::Naive;
    return true;
  }
  return false;
}

bool loadSystem(const std::string &Path, ConstraintSystem &CS) {
  std::string Error;
  if (!ConstraintSystem::readFromFile(Path, CS, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  return true;
}

int cmdGen(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Dir = Argv[2];
  double Scale = Argc > 3 ? std::atof(Argv[3]) : 0.25;
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    ConstraintSystem CS = generateBenchmark(Spec);
    std::string Path = Dir + "/" + Spec.Name + ".cons";
    if (!CS.writeToFile(Path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 1;
    }
    std::printf("wrote %-40s (%zu constraints, %u nodes)\n", Path.c_str(),
                CS.constraints().size(), CS.numNodes());
  }
  return 0;
}

int cmdGenC(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  std::ifstream In(Argv[2]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[2]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Buf.str(), Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Gen.CS.writeToFile(Argv[3])) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu constraints, %u nodes)\n", Argv[3],
              Gen.CS.constraints().size(), Gen.CS.numNodes());
  return 0;
}

int cmdSolve(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return 1;
  SolverKind Kind = SolverKind::LCDHCD;
  if (Argc > 3 && !parseKind(Argv[3], Kind)) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n", Argv[3]);
    return 1;
  }

  auto T0 = std::chrono::steady_clock::now();
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  PointsToSolution Sol = solve(Ovs.Reduced, Kind, PtsRepr::Bitmap, &Stats,
                               SolverOptions(), &Ovs.Rep);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  std::printf("%s on %s: %.3f s (incl. OVS)\n", solverKindName(Kind),
              Argv[2], Seconds);
  std::printf("  nodes %u, constraints %zu (%zu after OVS)\n",
              CS.numNodes(), CS.constraints().size(),
              Ovs.Reduced.constraints().size());
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(Sol.totalPointsToSize()),
              static_cast<unsigned long long>(Sol.hash()));
  std::printf("%s", Stats.toString("  ").c_str());
  return 0;
}

int cmdQuery(int Argc, char **Argv) {
  if (Argc < 5)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return 1;
  NodeId A = InvalidNode, B = InvalidNode;
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    if (CS.nameOf(V) == Argv[3])
      A = V;
    if (CS.nameOf(V) == Argv[4])
      B = V;
  }
  if (A == InvalidNode || B == InvalidNode) {
    std::fprintf(stderr, "error: unknown node name '%s'\n",
                 A == InvalidNode ? Argv[3] : Argv[4]);
    return 1;
  }
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  PointsToSolution Sol = solve(Ovs.Reduced, SolverKind::LCDHCD,
                               PtsRepr::Bitmap, nullptr, SolverOptions(),
                               &Ovs.Rep);
  std::printf("mayAlias(%s, %s) = %s\n", Argv[3], Argv[4],
              Sol.mayAlias(A, B) ? "yes" : "no");
  std::printf("|pts(%s)| = %zu, |pts(%s)| = %zu\n", Argv[3],
              Sol.pointsTo(A).count(), Argv[4], Sol.pointsTo(B).count());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "gen") == 0)
    return cmdGen(Argc, Argv);
  if (std::strcmp(Argv[1], "gen-c") == 0)
    return cmdGenC(Argc, Argv);
  if (std::strcmp(Argv[1], "solve") == 0)
    return cmdSolve(Argc, Argv);
  if (std::strcmp(Argv[1], "query") == 0)
    return cmdQuery(Argc, Argv);
  return usage();
}
