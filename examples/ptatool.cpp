//===- ptatool.cpp - Constraint-file driver -------------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line driver around the constraint-file workflow, mirroring how
/// the paper's pipeline separated constraint generation (CIL) from solving:
///
///   ptatool gen <out-dir> [scale] [--delta-frac <f>]
///                                        write the six suite files; with
///                                        --delta-frac also write
///                                        <suite>.base.cons/<suite>.delta.cons
///   ptatool gen-c <file.c> <out.cons>    constraints from mini-C source
///   ptatool solve <file.cons> [algo]     solve and print summary stats
///   ptatool query <file.cons> ...        one demand-driven query, no full
///                                        solve: <a> <b> (may-alias),
///                                        --pts <v>, or --pointed-by <o>
///   ptatool snapshot <file.cons> <out.snap> [algo]
///                                        solve and persist the solution
///   ptatool serve <file.snap|dir|file.cons>
///                                        line-protocol query REPL on stdin;
///                                        a .cons input serves demand-first
///                                        with no solve up front
///   ptatool resolve <file.snap> <delta.cons>
///                                        warm-start re-solve with a delta
///   ptatool check <file.cons|file.snap> [algo]
///                                        solve (or load) and certify the
///                                        solution is a fixed point; --all
///                                        cross-checks every solver kind
///
/// solve, snapshot and resolve accept resource-budget flags (--timeout,
/// --max-mem-mb, --max-steps, --no-fallback), plus --threads <n> to run
/// the parallel wavefront solver (LCD / LCD+HCD over bitmaps; budgets
/// still apply — workers poll the governor cooperatively) and
/// --stall-timeout <s> to arm the stall watchdog on parallel solves, and
/// report how the run concluded through their exit code:
///   0  precise solve within budget
///   1  error (bad input, unreadable file)
///   2  usage
///   3  budget tripped; the Steensgaard fallback solution was used
///   4  budget tripped with --no-fallback; partial (unsound) state printed
///   5  stall watchdog tripped (the fallback/partial rules above still
///      decide what was printed; the exit code reports the stall)
/// snapshot writes its output for exit codes 0 and 3 (a fallback snapshot
/// still serves queries soundly, but cannot seed `resolve`) and writes
/// nothing on 4. When snapshot's output path is an existing directory it
/// writes a new crash-safe generation (gen-N.snap, --keep <n> retained)
/// and serve recovers the newest valid generation from such a directory.
/// serve exits 0 on EOF or `quit`, 1 if the snapshot cannot be loaded;
/// its REPL is hardened (bounded lines, structured errors) and takes
/// --max-queue/--deadline-ms for load-shedding plus the budget flags
/// above as the per-`resolve` budget (retried with backoff, see
/// --attempts/--backoff). --inject-fault <site>:<n> arms a FaultInjector
/// site for crash/fault drills on any command.
///
//===----------------------------------------------------------------------===//

#include "adt/ElementArena.h"
#include "adt/FaultInjector.h"
#include "adt/InternTable.h"
#include "check/Differential.h"
#include "check/SolutionChecker.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "demand/DemandTier.h"
#include "frontend/ConstraintGen.h"
#include "obs/EventLog.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsHttp.h"
#include "obs/MetricsRegistry.h"
#include "obs/OpenMetrics.h"
#include "obs/QuantileWindow.h"
#include "obs/TraceRecorder.h"
#include "serve/IncrementalSolver.h"
#include "serve/QueryEngine.h"
#include "serve/Server.h"
#include "serve/ServeSession.h"
#include "serve/Snapshot.h"
#include "serve/SnapshotStore.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <atomic>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ag;

namespace {

// Exit codes (documented in the file header and DESIGN.md).
constexpr int ExitPrecise = 0;
constexpr int ExitError = 1;
constexpr int ExitUsage = 2;
constexpr int ExitFallback = 3;
constexpr int ExitPartial = 4;
constexpr int ExitStalled = 5;

/// Maps a governed outcome to the exit code. A stall watchdog trip
/// dominates: the caller learns the solve hung (and was converted into a
/// governed cancellation) even though fallback/partial output rules
/// already ran.
int outcomeExit(SolveOutcome Outcome, const Status &St) {
  if (St.code() == StatusCode::Stalled)
    return ExitStalled;
  if (Outcome == SolveOutcome::Fallback)
    return ExitFallback;
  if (Outcome == SolveOutcome::Partial)
    return ExitPartial;
  return ExitPrecise;
}

int usage() {
  std::fprintf(stderr,
               "usage: ptatool gen <out-dir> [scale] [--delta-frac <f>]\n"
               "       ptatool gen-c <file.c> <out.cons>\n"
               "       ptatool solve <file.cons> [HT|PKH|BLQ|LCD|HCD|"
               "HT+HCD|PKH+HCD|BLQ+HCD|LCD+HCD|Naive]\n"
               "               [--timeout <seconds>] [--max-mem-mb <mb>]\n"
               "               [--max-steps <n>] [--no-fallback] [--stats]\n"
               "               [--threads <n>] [--trace-out=<file>]\n"
               "               [--metrics-out=<file>] "
               "[--metrics-interval-ms=<n>]\n"
               "       ptatool query <file.cons> <a> <b> | --pts <v> | "
               "--pointed-by <o>\n"
               "               [algo] [budget flags]   (demand-driven; no "
               "full solve)\n"
               "       ptatool snapshot <file.cons> <out.snap|dir> [algo] "
               "[budget flags] [--keep <n>]\n"
               "       ptatool serve <file.snap|dir> [--max-queue <n>] "
               "[--deadline-ms <n>]\n"
               "               [--attempts <n>] [--backoff <f>] "
               "[budget flags]\n"
               "               [--events-out=<file>] [--metrics-port <n>] "
               "[--slow-ms <n>]\n"
               "               [--port <n> | --unix-socket <path>] "
               "[--max-conns <n>]\n"
               "               [--idle-timeout-ms <n>]\n"
               "               (--metrics-port/--port 0 picks an ephemeral "
               "port; the bound\n"
               "                endpoint is printed to stderr; without "
               "--port/--unix-socket\n"
               "                the REPL reads stdin)\n"
               "       ptatool resolve <file.snap> <delta.cons> "
               "[budget flags]\n"
               "       ptatool check <file.cons|file.snap> [algo] [--all] "
               "[--bdd] [--threads <n>]\n"
               "budget flags: --timeout <s> --max-mem-mb <mb> --max-steps "
               "<n> --no-fallback\n"
               "              --threads <n> --stall-timeout <s> "
               "--inject-fault <site>:<n>\n"
               "solve/snapshot/resolve exit codes: 0 precise, 1 error, "
               "2 usage, 3 fallback, 4 partial, 5 stalled\n"
               "query exit codes: 0 demand/precise, 1 error, 2 usage, "
               "3 escalated to fallback,\n"
               "                  4 budget tripped with --no-fallback, "
               "5 stalled\n");
  return ExitUsage;
}

/// Strictly parses a positive, finite double; rejects trailing junk.
bool parsePositiveDouble(const char *Text, double &Out) {
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (!std::isfinite(V) || V <= 0)
    return false;
  Out = V;
  return true;
}

/// Strictly parses a positive decimal integer; rejects trailing junk.
bool parsePositiveU64(const char *Text, uint64_t &Out) {
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0' || errno == ERANGE)
    return false;
  if (V == 0 || Text[0] == '-')
    return false;
  Out = V;
  return true;
}

bool parseKind(const std::string &Name, SolverKind &Out) {
  for (SolverKind K : AllSolverKinds)
    if (Name == solverKindName(K)) {
      Out = K;
      return true;
    }
  if (Name == "Naive") {
    Out = SolverKind::Naive;
    return true;
  }
  return false;
}

bool loadSystem(const std::string &Path, ConstraintSystem &CS) {
  std::string Error;
  if (!ConstraintSystem::readFromFile(Path, CS, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  return true;
}

int cmdGen(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Dir = Argv[2];
  double Scale = 0.25;
  double DeltaFrac = 0.0;
  bool SawScale = false;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--delta-frac") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --delta-frac expects a value\n");
        return usage();
      }
      const char *Value = Argv[++I];
      if (!parsePositiveDouble(Value, DeltaFrac) || DeltaFrac >= 1.0) {
        std::fprintf(stderr,
                     "error: delta fraction '%s' must be in (0, 1)\n",
                     Value);
        return ExitError;
      }
    } else if (!SawScale) {
      SawScale = true;
      // Validate strictly: atof's silent 0.0 on garbage used to produce
      // degenerate (or, with absurd scales, effectively unbounded) suites.
      constexpr double MaxScale = 64.0;
      if (!parsePositiveDouble(Argv[I], Scale) || Scale > MaxScale) {
        std::fprintf(stderr,
                     "error: scale '%s' must be a finite number in (0, %g]\n",
                     Argv[I], MaxScale);
        return ExitError;
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }
  for (const BenchmarkSpec &Spec : paperSuites(Scale)) {
    ConstraintSystem CS = generateBenchmark(Spec);
    std::string Path = Dir + "/" + Spec.Name + ".cons";
    if (!CS.writeToFile(Path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
      return 1;
    }
    std::printf("wrote %-40s (%zu constraints, %u nodes)\n", Path.c_str(),
                CS.constraints().size(), CS.numNodes());
    if (DeltaFrac > 0.0) {
      // Deterministic base/delta partition for incremental benchmarking;
      // the delta file carries the full node table plus only the
      // held-out constraints (the shape `ptatool resolve` consumes).
      DeltaSplit Split = splitDelta(CS, DeltaFrac, Spec.Seed);
      ConstraintSystem DeltaCS = CS.cloneNodeTable();
      for (const Constraint &C : Split.Delta)
        DeltaCS.add(C);
      std::string BasePath = Dir + "/" + Spec.Name + ".base.cons";
      std::string DeltaPath = Dir + "/" + Spec.Name + ".delta.cons";
      if (!Split.Base.writeToFile(BasePath) ||
          !DeltaCS.writeToFile(DeltaPath)) {
        std::fprintf(stderr, "error: cannot write delta split for '%s'\n",
                     Spec.Name.c_str());
        return 1;
      }
      std::printf("wrote %-40s (%zu constraints)\n", BasePath.c_str(),
                  Split.Base.constraints().size());
      std::printf("wrote %-40s (%zu constraints)\n", DeltaPath.c_str(),
                  DeltaCS.constraints().size());
    }
  }
  return 0;
}

int cmdGenC(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  std::ifstream In(Argv[2]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[2]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  GeneratedConstraints Gen;
  std::string Error;
  if (!generateConstraintsFromSource(Buf.str(), Gen, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!Gen.CS.writeToFile(Argv[3])) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Argv[3]);
    return 1;
  }
  std::printf("wrote %s (%zu constraints, %u nodes)\n", Argv[3],
              Gen.CS.constraints().size(), Gen.CS.numNodes());
  return 0;
}

/// The algorithm/budget/thread arguments shared by solve, snapshot and
/// resolve.
struct SolveFlags {
  SolverKind Kind = SolverKind::LCDHCD;
  SolveBudget Budget;
  SolverOptions Opts;
  /// Observability outputs (empty = channel stays off).
  std::string TraceOut;
  std::string MetricsOut;
  uint64_t MetricsIntervalMs = 0;
  /// snapshot --keep: generations retained when writing to a directory.
  uint64_t KeepGenerations = 3;
  /// serve --max-queue / --deadline-ms: admission queue bound (0 =
  /// synchronous) and per-request deadline.
  uint64_t MaxQueue = 0;
  uint64_t DeadlineMs = 0;
  /// serve --attempts / --backoff: resolve retry schedule.
  uint64_t ResolveAttempts = 3;
  double ResolveBackoff = 4.0;
  /// serve --events-out: wide-event JSON-lines sink (empty = off).
  std::string EventsOut;
  /// serve --metrics-port: OpenMetrics HTTP endpoint on 127.0.0.1; 0
  /// binds an ephemeral port. Off until the flag appears.
  uint64_t MetricsPort = 0;
  bool MetricsPortSet = false;
  /// serve --slow-ms: slow-query latency threshold in milliseconds (0
  /// keeps only the governor-trip/deadline triggers).
  double SlowMs = 0;
  /// serve --port / --unix-socket: networked front-end instead of the
  /// stdin REPL. Port 0 binds an ephemeral port (printed to stderr).
  uint64_t ServePort = 0;
  bool ServePortSet = false;
  std::string ServeUnixSocket;
  /// serve --max-conns / --idle-timeout-ms: connection cap and idle reap
  /// for the networked front-end.
  uint64_t MaxConns = 64;
  uint64_t IdleTimeoutMs = 0;
  /// solve --stats: print the memory-kernel summary (arena footprint,
  /// interning hit rate, physical/routed set sharing).
  bool MemStats = false;
};

/// Parses "<site>:<countdown>" and arms the named FaultInjector site.
/// Countdown 0 fires on the first check.
bool armInjectedFault(const std::string &Spec) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0)
    return false;
  FaultSite Site;
  if (!parseFaultSite(Spec.substr(0, Colon), Site))
    return false;
  const std::string Count = Spec.substr(Colon + 1);
  if (Count.empty() ||
      Count.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  uint64_t N = std::strtoull(Count.c_str(), nullptr, 10);
  if (errno == ERANGE)
    return false;
  FaultInjector::instance().armAfter(Site, N);
  return true;
}

/// Enables the requested observability channels for the duration of a
/// command and writes the output files on destruction. Arms the flight
/// recorder's dump-on-trip while any output was requested, and runs an
/// optional sampler thread that republishes memory peaks into the trace
/// every MetricsIntervalMs (the final publish at scope exit keeps the
/// metrics JSON itself interval-independent, hence run-to-run identical).
class ObsSession {
public:
  explicit ObsSession(const SolveFlags &F)
      : TraceOut(F.TraceOut), MetricsOut(F.MetricsOut) {
    if (!TraceOut.empty()) {
      obs::TraceRecorder::instance().clear();
      obs::setTraceEnabled(true);
    }
    if (!MetricsOut.empty()) {
      obs::MetricsRegistry::instance().reset();
      obs::setMetricsEnabled(true);
    }
    if (!TraceOut.empty() || !MetricsOut.empty())
      obs::FlightRecorder::instance().setDumpOnTrip(true);
    if (F.MetricsIntervalMs > 0 && !TraceOut.empty())
      Sampler = std::thread([this, Interval = F.MetricsIntervalMs] {
        std::unique_lock<std::mutex> Lock(Mu);
        while (!Done.load(std::memory_order_relaxed)) {
          Cv.wait_for(Lock, std::chrono::milliseconds(Interval));
          if (Done.load(std::memory_order_relaxed))
            break;
          obs::publishMemPeaks();
        }
      });
  }

  ~ObsSession() {
    if (Sampler.joinable()) {
      Done.store(true, std::memory_order_relaxed);
      Cv.notify_all();
      Sampler.join();
    }
    obs::publishMemPeaks();
    if (!TraceOut.empty()) {
      obs::setTraceEnabled(false);
      if (Status St = obs::TraceRecorder::instance().writeJson(TraceOut);
          !St.ok())
        std::fprintf(stderr, "warning: %s\n", St.toString().c_str());
      else
        std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                     TraceOut.c_str(),
                     obs::TraceRecorder::instance().eventCount());
    }
    if (!MetricsOut.empty()) {
      obs::LatencyTracker::instance().publishGauges();
      obs::setMetricsEnabled(false);
      std::ofstream Os(MetricsOut, std::ios::binary | std::ios::trunc);
      std::string Json = obs::MetricsRegistry::instance().renderJson();
      Os.write(Json.data(), std::streamsize(Json.size()));
      if (!Os)
        std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                     MetricsOut.c_str());
      else
        std::fprintf(stderr, "wrote metrics to %s\n", MetricsOut.c_str());
    }
    obs::FlightRecorder::instance().setDumpOnTrip(false);
  }

private:
  std::string TraceOut;
  std::string MetricsOut;
  std::thread Sampler;
  std::mutex Mu;
  std::condition_variable Cv;
  std::atomic<bool> Done{false};
};

/// Parses the optional [algo] positional plus the budget flags starting at
/// Argv[Start]. When \p AllowKind is false (resolve: warm start always
/// replays the LCD family the snapshot was built for) any positional is
/// rejected. Returns ExitPrecise on success, otherwise the exit code to
/// return from the command.
int parseSolveFlags(int Argc, char **Argv, int Start, bool AllowKind,
                    SolveFlags &F) {
  bool SawKind = false;
  for (int I = Start; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Observability flags accept --flag=value and --flag value forms.
    {
      std::string Name = Arg, Value;
      bool HasValue = false;
      if (size_t Eq = Arg.find('='); Eq != std::string::npos) {
        Name = Arg.substr(0, Eq);
        Value = Arg.substr(Eq + 1);
        HasValue = true;
      }
      if (Name == "--trace-out" || Name == "--metrics-out" ||
          Name == "--metrics-interval-ms" || Name == "--events-out" ||
          Name == "--unix-socket") {
        if (!HasValue) {
          if (I + 1 >= Argc) {
            std::fprintf(stderr, "error: %s expects a value\n", Name.c_str());
            return usage();
          }
          Value = Argv[++I];
        }
        if (Value.empty()) {
          std::fprintf(stderr, "error: %s expects a value\n", Name.c_str());
          return usage();
        }
        if (Name == "--trace-out") {
          F.TraceOut = Value;
        } else if (Name == "--metrics-out") {
          F.MetricsOut = Value;
        } else if (Name == "--events-out") {
          F.EventsOut = Value;
        } else if (Name == "--unix-socket") {
          F.ServeUnixSocket = Value;
        } else if (!parsePositiveU64(Value.c_str(), F.MetricsIntervalMs)) {
          std::fprintf(stderr, "error: bad value '%s' for %s\n",
                       Value.c_str(), Name.c_str());
          return usage();
        }
        continue;
      }
    }
    if (Arg == "--no-fallback") {
      F.Budget.AllowFallback = false;
    } else if (Arg == "--stats") {
      F.MemStats = true;
    } else if (Arg == "--timeout" || Arg == "--max-mem-mb" ||
               Arg == "--max-steps" || Arg == "--threads" ||
               Arg == "--stall-timeout" || Arg == "--inject-fault" ||
               Arg == "--keep" || Arg == "--max-queue" ||
               Arg == "--deadline-ms" || Arg == "--attempts" ||
               Arg == "--backoff" || Arg == "--metrics-port" ||
               Arg == "--slow-ms" || Arg == "--port" ||
               Arg == "--max-conns" || Arg == "--idle-timeout-ms") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Arg.c_str());
        return usage();
      }
      const char *Value = Argv[++I];
      bool Valid = false;
      if (Arg == "--timeout") {
        Valid = parsePositiveDouble(Value, F.Budget.TimeoutSeconds);
      } else if (Arg == "--max-mem-mb") {
        uint64_t Mb = 0;
        Valid = parsePositiveU64(Value, Mb) &&
                Mb <= (UINT64_MAX >> 20); // No overflow converting to bytes.
        F.Budget.MaxMemoryBytes = Mb << 20;
      } else if (Arg == "--max-steps") {
        Valid = parsePositiveU64(Value, F.Budget.MaxPropagations);
      } else if (Arg == "--stall-timeout") {
        Valid = parsePositiveDouble(Value, F.Opts.StallTimeoutSeconds);
      } else if (Arg == "--inject-fault") {
        Valid = armInjectedFault(Value);
      } else if (Arg == "--keep") {
        Valid = parsePositiveU64(Value, F.KeepGenerations);
      } else if (Arg == "--max-queue") {
        Valid = parsePositiveU64(Value, F.MaxQueue);
      } else if (Arg == "--deadline-ms") {
        Valid = parsePositiveU64(Value, F.DeadlineMs);
      } else if (Arg == "--attempts") {
        Valid = parsePositiveU64(Value, F.ResolveAttempts) &&
                F.ResolveAttempts <= 16;
      } else if (Arg == "--backoff") {
        Valid = parsePositiveDouble(Value, F.ResolveBackoff) &&
                F.ResolveBackoff >= 1.0;
      } else if (Arg == "--metrics-port" || Arg == "--port") {
        // 0 is meaningful here (ephemeral port), so parse it directly
        // instead of through parsePositiveU64.
        errno = 0;
        char *End = nullptr;
        unsigned long long Port = std::strtoull(Value, &End, 10);
        Valid = End != Value && *End == '\0' && errno != ERANGE &&
                Value[0] != '-' && Port <= 65535;
        if (Arg == "--metrics-port") {
          F.MetricsPort = Port;
          F.MetricsPortSet = true;
        } else {
          F.ServePort = Port;
          F.ServePortSet = true;
        }
      } else if (Arg == "--max-conns") {
        Valid = parsePositiveU64(Value, F.MaxConns);
      } else if (Arg == "--idle-timeout-ms") {
        Valid = parsePositiveU64(Value, F.IdleTimeoutMs);
      } else if (Arg == "--slow-ms") {
        Valid = parsePositiveDouble(Value, F.SlowMs);
      } else { // --threads
        // Parallel wavefront solving applies to LCD / LCD+HCD (the default
        // algorithm) over bitmap sets; other kinds quietly run sequential.
        // Budgets compose: workers poll the governor cooperatively, so
        // --timeout and friends still trip (at shard granularity).
        uint64_t N = 0;
        constexpr uint64_t MaxThreads = 256;
        Valid = parsePositiveU64(Value, N) && N <= MaxThreads;
        F.Opts.Threads = static_cast<unsigned>(N);
      }
      if (!Valid) {
        std::fprintf(stderr, "error: bad value '%s' for %s\n", Value,
                     Arg.c_str());
        return usage();
      }
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage();
    } else if (AllowKind && !SawKind) {
      SawKind = true;
      if (!parseKind(Arg, F.Kind)) {
        std::fprintf(stderr, "error: unknown algorithm '%s'\n", Arg.c_str());
        return ExitError;
      }
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }
  return ExitPrecise;
}

int cmdSolve(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 3, /*AllowKind=*/true, F))
    return Rc;
  SolverKind Kind = F.Kind;
  SolveBudget Budget = F.Budget;
  SolverOptions Opts = F.Opts;
  ObsSession Obs(F);

  auto T0 = std::chrono::steady_clock::now();
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  SolveResult R = solveGoverned(Ovs.Reduced, Kind, Budget, PtsRepr::Bitmap,
                                &Stats, Opts, &Ovs.Rep);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();

  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  const PointsToSolution &Sol = R.Solution;
  std::printf("%s on %s: %.3f s (incl. OVS), outcome %s\n",
              solverKindName(Kind), Argv[2], Seconds,
              solveOutcomeName(R.Outcome));
  if (!R.St.ok())
    std::printf("  budget: %s\n", R.St.toString().c_str());
  if (R.Outcome == SolveOutcome::Partial)
    std::printf("  WARNING: partial solution — sets may be incomplete\n");
  std::printf("  nodes %u, constraints %zu (%zu after OVS)\n",
              CS.numNodes(), CS.constraints().size(),
              Ovs.Reduced.constraints().size());
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(Sol.totalPointsToSize()),
              static_cast<unsigned long long>(Sol.hash()));
  std::printf("%s", Stats.toString("  ").c_str());
  if (F.MemStats) {
    ArenaStats &AS = ArenaStats::instance();
    InternStats &IS = InternStats::instance();
    uint64_t Interned = IS.hits() + IS.misses();
    PointsToSolution::SharingSummary Sh = Sol.sharingSummary();
    std::printf("  mem: arena peak %llu KiB in %llu slabs\n",
                static_cast<unsigned long long>(AS.peakReservedBytes() >>
                                                10),
                static_cast<unsigned long long>(AS.peakSlabs()));
    std::printf("  mem: interned %llu/%llu set extractions (%.1f%% hits, "
                "%llu KiB deduped)\n",
                static_cast<unsigned long long>(IS.hits()),
                static_cast<unsigned long long>(Interned),
                Interned ? 100.0 * double(IS.hits()) / double(Interned)
                         : 0.0,
                static_cast<unsigned long long>(IS.dedupedBytes() >> 10));
    std::printf("  mem: %llu physical sets serve %llu reps (%llu KiB "
                "held, %llu KiB if unshared)\n",
                static_cast<unsigned long long>(Sh.PhysicalSets),
                static_cast<unsigned long long>(Sh.Reps),
                static_cast<unsigned long long>(Sh.PhysicalBytes >> 10),
                static_cast<unsigned long long>(Sh.RoutedBytes >> 10));
  }
  return outcomeExit(R.Outcome, R.St);
}

/// `ptatool query`: answer one query through the demand tier — no full
/// solve up front. Deduction runs under the budget flags (as the
/// per-query budget); a trip escalates to one governed exhaustive solve
/// under the same budget with the Steensgaard fallback allowed, so the
/// answer stays sound and the exit code reports how it was reached:
/// 0 demand/precise, 3 escalated to fallback, 4 budget tripped with
/// --no-fallback (no sound answer; nothing printed), 5 stalled.
int cmdQuery(int Argc, char **Argv) {
  if (Argc < 5)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;

  enum class Mode { Alias, Pts, PointedBy };
  Mode M = Mode::Alias;
  std::string RefA = Argv[3], RefB;
  if (RefA == "--pts") {
    M = Mode::Pts;
    RefA = Argv[4];
  } else if (RefA == "--pointed-by") {
    M = Mode::PointedBy;
    RefA = Argv[4];
  } else {
    RefB = Argv[4];
  }

  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 5, /*AllowKind=*/true, F))
    return Rc;
  ObsSession Obs(F);

  auto Resolve = [&CS](const std::string &Tok, NodeId &Out) {
    if (!Tok.empty() &&
        Tok.find_first_not_of("0123456789") == std::string::npos) {
      errno = 0;
      uint64_t Raw = std::strtoull(Tok.c_str(), nullptr, 10);
      if (errno != ERANGE && Raw < CS.numNodes()) {
        Out = static_cast<NodeId>(Raw);
        return true;
      }
    }
    for (NodeId V = 0; V != CS.numNodes(); ++V)
      if (CS.nameOf(V) == Tok) {
        Out = V;
        return true;
      }
    std::fprintf(stderr, "error: unknown node '%s'\n", Tok.c_str());
    return false;
  };
  NodeId A = InvalidNode, B = InvalidNode;
  if (!Resolve(RefA, A))
    return ExitError;
  if (M == Mode::Alias && !Resolve(RefB, B))
    return ExitError;

  DemandTier::Options TO;
  TO.QueryBudget = F.Budget;
  // The escalation runs under the same ceilings with fallback allowed:
  // the budget stays a real bound on total work, and a tripped
  // escalation still lands the sound Steensgaard answer (exit 3).
  TO.EscalationBudget = F.Budget;
  TO.EscalationBudget.AllowFallback = true;
  TO.EscalationKind = F.Kind;
  TO.EscalationOpts = F.Opts;
  TO.AllowEscalation = F.Budget.AllowFallback;
  DemandTier Tier(std::move(CS), TO);

  Status St;
  if (M == Mode::Alias) {
    bool Verdict = false;
    St = Tier.alias(A, B, Verdict);
    if (St.ok())
      std::printf("alias(%s, %s) = %s\n", RefA.c_str(), RefB.c_str(),
                  Verdict ? "yes" : "no");
  } else {
    DemandTier::IdList List;
    St = M == Mode::Pts ? Tier.pointsTo(A, List) : Tier.pointedBy(A, List);
    if (St.ok()) {
      std::printf("%s(%s):", M == Mode::Pts ? "pts" : "pointedby",
                  RefA.c_str());
      for (NodeId V : *List)
        std::printf(" %u", V);
      std::printf("\n|%s| = %zu\n", M == Mode::Pts ? "pts" : "pointedby",
                  List->size());
    }
  }
  if (!St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    if (St.code() == StatusCode::Stalled)
      return ExitStalled;
    return St.isBudgetTrip() ? ExitPartial : ExitError;
  }
  std::printf("answered by: %s (memo %llu classes)\n",
              Tier.escalated() ? "escalated exhaustive solve" : "demand",
              static_cast<unsigned long long>(Tier.memoCompleteCount()));
  return Tier.escalated() &&
                 Tier.escalationOutcome() == SolveOutcome::Fallback
             ? ExitFallback
             : ExitPrecise;
}

int cmdSnapshot(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  ConstraintSystem CS;
  if (!loadSystem(Argv[2], CS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 4, /*AllowKind=*/true, F))
    return Rc;
  ObsSession Obs(F);

  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolverStats Stats;
  SolveResult R = solveGoverned(Ovs.Reduced, F.Kind, F.Budget,
                                PtsRepr::Bitmap, &Stats, F.Opts, &Ovs.Rep);
  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  if (R.Outcome == SolveOutcome::Partial) {
    // Partial state is unsound; persisting it would let `serve` answer
    // queries wrong and `resolve` warm-start from a non-fixpoint.
    std::fprintf(stderr,
                 "warning: budget tripped with --no-fallback; partial "
                 "solution NOT written (%s)\n",
                 R.St.toString().c_str());
    return outcomeExit(SolveOutcome::Partial, R.St);
  }

  Snapshot Snap;
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  Snap.Solution = std::move(R.Solution);
  Snap.Kind = F.Kind;
  Snap.Repr = PtsRepr::Bitmap;
  Snap.Outcome = R.Outcome;
  Snap.Sound = true;
  if (SnapshotStore::isDirectory(Argv[3])) {
    // Directory target: write a new crash-safe generation and prune old
    // ones, so a crash mid-write can never lose the last durable snapshot.
    SnapshotStore::Options SOpts;
    SOpts.KeepGenerations = static_cast<unsigned>(F.KeepGenerations);
    SnapshotStore Store(Argv[3], SOpts);
    uint64_t Gen = 0;
    if (Status St = Store.write(Snap, &Gen); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return ExitError;
    }
    std::printf("wrote %s/gen-%llu.snap: %s/%s, %u nodes, total |pts| "
                "%llu\n",
                Argv[3], static_cast<unsigned long long>(Gen),
                solverKindName(F.Kind), solveOutcomeName(R.Outcome),
                Snap.CS.numNodes(),
                static_cast<unsigned long long>(
                    Snap.Solution.totalPointsToSize()));
  } else {
    if (Status St = writeSnapshotFile(Snap, Argv[3]); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return ExitError;
    }
    std::printf("wrote %s: %s/%s, %u nodes, total |pts| %llu\n", Argv[3],
                solverKindName(F.Kind), solveOutcomeName(R.Outcome),
                Snap.CS.numNodes(),
                static_cast<unsigned long long>(
                    Snap.Solution.totalPointsToSize()));
  }
  if (R.Outcome == SolveOutcome::Fallback)
    std::printf("  budget: %s\n", R.St.toString().c_str());
  return outcomeExit(R.Outcome, R.St);
}

/// The networked serve path's drain plumbing: SIGTERM/SIGINT ask the
/// active server for a graceful stop (async-signal-safe: the handler does
/// one atomic load and one self-pipe write).
std::atomic<Server *> ActiveServer{nullptr};

extern "C" void serveDrainHandler(int) {
  if (Server *S = ActiveServer.load(std::memory_order_acquire))
    S->requestStop();
}

/// Runs \p Session behind the concurrent TCP/unix-socket front-end until
/// SIGTERM/SIGINT (or a server start failure). Prints the bound endpoint
/// to stderr ("serving on ...") so scripts and loadgen can find an
/// ephemeral port.
int runNetworkedServe(ServeSession &Session, const SolveFlags &F) {
  ServerOptions SrvOpts;
  SrvOpts.Port = static_cast<uint16_t>(F.ServePort);
  SrvOpts.UnixSocketPath = F.ServeUnixSocket;
  SrvOpts.MaxConns = static_cast<size_t>(F.MaxConns);
  SrvOpts.IdleTimeoutSeconds = static_cast<double>(F.IdleTimeoutMs) / 1000.0;
  SrvOpts.QueueCapacity = static_cast<size_t>(F.MaxQueue);
  SrvOpts.DeadlineSeconds = static_cast<double>(F.DeadlineMs) / 1000.0;
  Server Srv(Session, SrvOpts);
  if (Status St = Srv.start(); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return ExitError;
  }
  ActiveServer.store(&Srv, std::memory_order_release);
  struct sigaction SA = {};
  SA.sa_handler = serveDrainHandler;
  sigemptyset(&SA.sa_mask);
  struct sigaction OldTerm, OldInt;
  ::sigaction(SIGTERM, &SA, &OldTerm);
  ::sigaction(SIGINT, &SA, &OldInt);
  std::fprintf(stderr, "serving on %s\n", Srv.endpoint().c_str());
  Srv.wait();
  ::sigaction(SIGTERM, &OldTerm, nullptr);
  ::sigaction(SIGINT, &OldInt, nullptr);
  ActiveServer.store(nullptr, std::memory_order_release);
  ServerCounters SC = Srv.counters();
  std::fprintf(stderr,
               "drained: %llu connections served, %llu rejected, %llu "
               "idle-closed\n",
               static_cast<unsigned long long>(SC.Accepted),
               static_cast<unsigned long long>(SC.Rejected),
               static_cast<unsigned long long>(SC.IdleClosed));
  return ExitPrecise;
}

int cmdServe(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 3, /*AllowKind=*/false, F))
    return Rc;
  if (F.ServePortSet && !F.ServeUnixSocket.empty()) {
    std::fprintf(stderr,
                 "error: --port and --unix-socket are mutually exclusive\n");
    return usage();
  }
  const bool Networked = F.ServePortSet || !F.ServeUnixSocket.empty();
  // A serving process always collects metrics (the `stats` command reads
  // them) and keeps the flight ring; full tracing stays off.
  obs::setMetricsEnabled(true);

  Snapshot Snap;
  bool DemandMode = false;
  ConstraintSystem DemandCS;
  if (SnapshotStore::isDirectory(Argv[2])) {
    // Directory target: recover the newest durable generation, skipping
    // torn or corrupt files from interrupted writes.
    SnapshotStore Store(Argv[2]);
    SnapshotStore::RecoveryInfo Info;
    if (Status St = Store.recover(Snap, &Info); !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return ExitError;
    }
    std::fprintf(stderr,
                 "recovered generation %llu (%u corrupt skipped, %u temp "
                 "files removed)\n",
                 static_cast<unsigned long long>(Info.Generation),
                 Info.CorruptSkipped, Info.TempsRemoved);
  } else if (Status St = readSnapshotFile(Argv[2], Snap); !St.ok()) {
    // Not a snapshot: sniff a constraint file and serve it demand-first
    // (no solve up front; queries deduce what they need).
    std::string ConsError;
    if (ConstraintSystem::readFromFile(Argv[2], DemandCS, ConsError)) {
      DemandMode = true;
    } else {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return ExitError;
    }
  }

  ServeOptions SO;
  // Networked mode moves admission control into the Server (its global
  // queue and per-connection deadlines carry the same semantics); the
  // session itself must then run synchronously.
  SO.QueueCapacity = Networked ? 0 : static_cast<size_t>(F.MaxQueue);
  SO.DeadlineSeconds =
      Networked ? 0 : static_cast<double>(F.DeadlineMs) / 1000.0;
  SO.ResolveBudget = F.Budget;
  SO.ResolveOpts = F.Opts;
  SO.ResolveAttempts = static_cast<unsigned>(F.ResolveAttempts);
  SO.ResolveBackoff = F.ResolveBackoff;
  SO.SlowMillis = F.SlowMs;
  SO.SlowOut = &std::cerr;

  // Wide-event sink: owns the output file; kept alive past the session so
  // close() can drain what the last requests published.
  std::shared_ptr<obs::EventLog> Events;
  if (!F.EventsOut.empty()) {
    Status Err;
    Events = obs::EventLog::open(F.EventsOut, obs::EventLog::Options(), Err);
    if (!Events) {
      std::fprintf(stderr, "error: %s\n", Err.toString().c_str());
      return ExitError;
    }
    SO.Events = Events;
  }

  // OpenMetrics endpoint: loopback-only, renders the registry on demand
  // (latency gauges are refreshed per scrape, so p99 is live).
  obs::MetricsHttpServer Metrics([] {
    obs::LatencyTracker::instance().publishGauges();
    return obs::renderOpenMetrics(obs::MetricsRegistry::instance());
  });
  if (F.MetricsPortSet) {
    if (Status St = Metrics.start(static_cast<uint16_t>(F.MetricsPort));
        !St.ok()) {
      std::fprintf(stderr, "error: %s\n", St.toString().c_str());
      return ExitError;
    }
    std::fprintf(stderr, "serving metrics on http://127.0.0.1:%u/metrics\n",
                 Metrics.port());
  }

  int Rc;
  if (DemandMode) {
    SO.QueryBudget = F.Budget;
    ServeSession Session(std::move(DemandCS), SO);
    Rc = Networked ? runNetworkedServe(Session, F)
                   : Session.run(std::cin, std::cout);
  } else {
    ServeSession Session(std::move(Snap), SO);
    Rc = Networked ? runNetworkedServe(Session, F)
                   : Session.run(std::cin, std::cout);
  }
  Metrics.stop();
  if (Events)
    Events->close();
  return Rc;
}

/// `ptatool check`: certify that a solution is a fixed point of its
/// constraint system. For a .snap input the persisted solution is checked
/// as-is; for a .cons input the system is solved first (default LCD+HCD,
/// or the named algorithm). --all solves with every kind and
/// cross-compares solution hashes — any disagreement or failed
/// certification exits 1.
int cmdCheck(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  const std::string Path = Argv[2];
  SolverKind Kind = SolverKind::LCDHCD;
  PtsRepr Repr = PtsRepr::Bitmap;
  unsigned Threads = 0;
  bool All = false;
  bool SawKind = false;
  for (int I = 3; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--all") {
      All = true;
    } else if (Arg == "--bdd") {
      Repr = PtsRepr::Bdd;
    } else if (Arg == "--threads") {
      uint64_t N = 0;
      if (I + 1 >= Argc || !parsePositiveU64(Argv[I + 1], N) || N > 256) {
        std::fprintf(stderr, "error: --threads expects a value\n");
        return usage();
      }
      Threads = static_cast<unsigned>(N);
      ++I;
    } else if (!SawKind && parseKind(Arg, Kind)) {
      SawKind = true;
    } else {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", Arg.c_str());
      return usage();
    }
  }

  // Snapshot input: check the persisted solution against the persisted
  // system (sniffed by magic, so either file kind can be handed in).
  {
    std::ifstream In(Path, std::ios::binary);
    char Magic[8] = {};
    if (In.read(Magic, sizeof(Magic)) &&
        std::memcmp(Magic, "AGPTSNAP", 8) == 0) {
      Snapshot Snap;
      if (Status St = readSnapshotFile(Path, Snap); !St.ok()) {
        std::fprintf(stderr, "error: %s\n", St.toString().c_str());
        return ExitError;
      }
      if (Snap.Outcome == SolveOutcome::Partial) {
        std::printf("check %s: not a fixed point (partial snapshot)\n",
                    Path.c_str());
        return ExitError;
      }
      CheckReport R = checkSolution(Snap.CS, Snap.Solution);
      std::printf("check %s (%s/%s): %s\n", Path.c_str(),
                  solverKindName(Snap.Kind), solveOutcomeName(Snap.Outcome),
                  R.summary(Snap.CS).c_str());
      return R.ok() ? ExitPrecise : ExitError;
    }
  }

  ConstraintSystem CS;
  if (!loadSystem(Path, CS))
    return ExitError;

  std::vector<SolverKind> Kinds;
  if (All)
    Kinds.assign(std::begin(AllSolverKinds), std::end(AllSolverKinds));
  else
    Kinds.push_back(Kind);

  bool AllOk = true;
  uint64_t FirstHash = 0;
  SolverKind FirstKind = Kinds.front();
  PointsToSolution FirstSol;
  for (size_t I = 0; I != Kinds.size(); ++I) {
    PointsToSolution Sol = solveFnFor(Kinds[I], Repr, Threads)(CS);
    CheckReport R = checkSolution(CS, Sol);
    uint64_t Hash = Sol.hash();
    std::printf("check %s with %s (threads %u): %s, hash %016llx\n",
                Path.c_str(), solverKindName(Kinds[I]), Threads,
                R.summary(CS).c_str(),
                static_cast<unsigned long long>(Hash));
    if (!R.ok())
      AllOk = false;
    if (I == 0) {
      FirstHash = Hash;
      FirstSol = std::move(Sol);
    } else if (Hash != FirstHash) {
      AllOk = false;
      std::printf("MISMATCH: %s disagrees with %s: %s\n",
                  solverKindName(Kinds[I]), solverKindName(FirstKind),
                  diffSolutions(FirstSol, Sol).toString().c_str());
    }
  }
  if (All && AllOk)
    std::printf("all %zu solver kinds agree (hash %016llx)\n", Kinds.size(),
                static_cast<unsigned long long>(FirstHash));
  return AllOk ? ExitPrecise : ExitError;
}

int cmdResolve(int Argc, char **Argv) {
  if (Argc < 4)
    return usage();
  Snapshot Snap;
  if (Status St = readSnapshotFile(Argv[2], Snap); !St.ok()) {
    std::fprintf(stderr, "error: %s\n", St.toString().c_str());
    return ExitError;
  }
  ConstraintSystem DeltaCS;
  if (!loadSystem(Argv[3], DeltaCS))
    return ExitError;
  SolveFlags F;
  if (int Rc = parseSolveFlags(Argc, Argv, 4, /*AllowKind=*/false, F))
    return Rc;
  ObsSession Obs(F);

  IncrementalSolver Inc(std::move(Snap));
  if (!Inc.valid().ok()) {
    std::fprintf(stderr, "error: %s\n", Inc.valid().toString().c_str());
    return ExitError;
  }
  auto T0 = std::chrono::steady_clock::now();
  WarmStartResult R = Inc.resolveSystem(DeltaCS, F.Budget, F.Opts);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (R.Outcome == SolveOutcome::Failed) {
    std::fprintf(stderr, "error: %s\n", R.St.toString().c_str());
    return ExitError;
  }
  std::printf("warm re-solve of %s + %s: %.3f s, outcome %s\n", Argv[2],
              Argv[3], Seconds, solveOutcomeName(R.Outcome));
  if (!R.St.ok())
    std::printf("  budget: %s\n", R.St.toString().c_str());
  if (R.Outcome == SolveOutcome::Partial)
    std::printf("  WARNING: partial solution — sets may be incomplete\n");
  std::printf("  new constraints %u, seeded nodes %u\n", R.NewConstraints,
              R.SeededNodes);
  std::printf("  total |pts| %llu, solution hash %016llx\n",
              static_cast<unsigned long long>(
                  R.Solution.totalPointsToSize()),
              static_cast<unsigned long long>(R.Solution.hash()));
  std::printf("%s", R.Stats.toString("  ").c_str());
  return outcomeExit(R.Outcome, R.St);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "gen") == 0)
    return cmdGen(Argc, Argv);
  if (std::strcmp(Argv[1], "gen-c") == 0)
    return cmdGenC(Argc, Argv);
  if (std::strcmp(Argv[1], "solve") == 0)
    return cmdSolve(Argc, Argv);
  if (std::strcmp(Argv[1], "query") == 0)
    return cmdQuery(Argc, Argv);
  if (std::strcmp(Argv[1], "snapshot") == 0)
    return cmdSnapshot(Argc, Argv);
  if (std::strcmp(Argv[1], "serve") == 0)
    return cmdServe(Argc, Argv);
  if (std::strcmp(Argv[1], "resolve") == 0)
    return cmdResolve(Argc, Argv);
  if (std::strcmp(Argv[1], "check") == 0)
    return cmdCheck(Argc, Argv);
  return usage();
}
