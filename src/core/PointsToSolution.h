//===- PointsToSolution.h - Final analysis result ---------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result every solver produces: for each node, the set of memory
/// objects it may point to. Points-to sets are stored per representative
/// (cycle collapsing makes many nodes share one set); set elements are
/// always *original* object ids — collapsing merges the variable role of
/// nodes, never their identity as pointed-to locations.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_POINTSTOSOLUTION_H
#define AG_CORE_POINTSTOSOLUTION_H

#include "adt/SparseBitVector.h"
#include "constraints/Constraint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ag {

/// A complete points-to solution over a constraint system's nodes.
class PointsToSolution {
public:
  PointsToSolution() = default;

  /// Creates a solution for \p NumNodes nodes, initially all empty with
  /// every node its own representative.
  explicit PointsToSolution(uint32_t NumNodes)
      : Rep(NumNodes), Sets(NumNodes) {
    for (uint32_t I = 0; I != NumNodes; ++I)
      Rep[I] = I;
  }

  uint32_t numNodes() const { return static_cast<uint32_t>(Rep.size()); }

  /// Declares that \p V shares its points-to set with \p Representative.
  /// \p Representative must map to itself.
  void setRep(NodeId V, NodeId Representative) {
    assert(Rep[Representative] == Representative && "rep must be canonical");
    Rep[V] = Representative;
  }

  /// Representative whose set entry backs \p V.
  NodeId repOf(NodeId V) const { return Rep[V]; }

  /// Mutable set of a representative (used by solvers during extraction).
  SparseBitVector &mutableSet(NodeId Representative) {
    assert(Rep[Representative] == Representative && "rep must be canonical");
    return Sets[Representative];
  }

  /// The points-to set of \p V.
  const SparseBitVector &pointsTo(NodeId V) const { return Sets[Rep[V]]; }

  /// True if \p V may point to \p Obj.
  bool pointsToObj(NodeId V, NodeId Obj) const {
    return pointsTo(V).test(Obj);
  }

  /// May-alias query: do the two points-to sets intersect?
  bool mayAlias(NodeId A, NodeId B) const {
    return pointsTo(A).intersects(pointsTo(B));
  }

  /// The points-to set of \p V as a sorted vector (convenience for tests
  /// and clients).
  std::vector<NodeId> pointsToVector(NodeId V) const {
    std::vector<NodeId> Out;
    for (uint32_t O : pointsTo(V))
      Out.push_back(O);
    return Out;
  }

  /// Structural equality: every node has the same points-to set. This is
  /// the cross-solver invariant the test suite leans on.
  bool operator==(const PointsToSolution &RHS) const {
    if (numNodes() != RHS.numNodes())
      return false;
    for (uint32_t V = 0; V != numNodes(); ++V)
      if (!(pointsTo(V) == RHS.pointsTo(V)))
        return false;
    return true;
  }
  bool operator!=(const PointsToSolution &RHS) const {
    return !(*this == RHS);
  }

  /// Sum over all nodes of |pts(node)| (each node counted, shared sets
  /// counted repeatedly) — a standard precision/size metric.
  uint64_t totalPointsToSize() const {
    uint64_t Total = 0;
    for (uint32_t V = 0; V != numNodes(); ++V)
      Total += pointsTo(V).count();
    return Total;
  }

  /// Deterministic text dump: one line per node, `<id>: <obj> <obj> ...`
  /// with nodes in id order and set elements ascending (SparseBitVector
  /// iterates sorted). Because lines depend only on the per-node routed
  /// sets — not on representative structure — every solver kind and
  /// thread count producing the same solution dumps identical bytes; the
  /// snapshot layer leans on this stability.
  std::string dumpText() const {
    std::string Out;
    for (uint32_t V = 0; V != numNodes(); ++V) {
      Out += std::to_string(V);
      Out += ':';
      for (uint32_t O : pointsTo(V)) {
        Out += ' ';
        Out += std::to_string(O);
      }
      Out += '\n';
    }
    return Out;
  }

  /// FNV hash of the whole solution, for quick regression comparisons.
  uint64_t hash() const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t V = 0; V != numNodes(); ++V)
      for (uint32_t O : pointsTo(V)) {
        H ^= (uint64_t(V) << 32) | O;
        H *= 0x100000001b3ull;
      }
    return H;
  }

private:
  std::vector<NodeId> Rep;
  std::vector<SparseBitVector> Sets;
};

} // namespace ag

#endif // AG_CORE_POINTSTOSOLUTION_H
