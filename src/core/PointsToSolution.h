//===- PointsToSolution.h - Final analysis result ---------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result every solver produces: for each node, the set of memory
/// objects it may point to. Points-to sets are stored per representative
/// (cycle collapsing makes many nodes share one set); set elements are
/// always *original* object ids — collapsing merges the variable role of
/// nodes, never their identity as pointed-to locations.
///
/// Storage is hash-cons friendly: each representative holds a shared
/// copy-on-write handle, so distinct representatives with identical sets
/// (pervasive after cycle collapses) can reference one physical
/// SparseBitVector. A null handle means the empty set. Reads never
/// detach; mutableSet() detaches (clones) any handle with other owners,
/// so aliasing is invisible to clients (DESIGN.md §13).
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_POINTSTOSOLUTION_H
#define AG_CORE_POINTSTOSOLUTION_H

#include "adt/InternTable.h"
#include "adt/SparseBitVector.h"
#include "constraints/Constraint.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ag {

/// A complete points-to solution over a constraint system's nodes.
class PointsToSolution {
public:
  PointsToSolution() = default;

  /// Creates a solution for \p NumNodes nodes, initially all empty with
  /// every node its own representative.
  explicit PointsToSolution(uint32_t NumNodes)
      : Rep(NumNodes), Sets(NumNodes) {
    for (uint32_t I = 0; I != NumNodes; ++I)
      Rep[I] = I;
  }

  uint32_t numNodes() const { return static_cast<uint32_t>(Rep.size()); }

  /// Declares that \p V shares its points-to set with \p Representative.
  /// \p Representative must map to itself.
  void setRep(NodeId V, NodeId Representative) {
    assert(Rep[Representative] == Representative && "rep must be canonical");
    Rep[V] = Representative;
  }

  /// Representative whose set entry backs \p V.
  NodeId repOf(NodeId V) const { return Rep[V]; }

  /// Mutable set of a representative (used by solvers during extraction).
  /// Copy-on-write: if the handle is shared with another representative
  /// (or another solution copy), it detaches onto a private clone first,
  /// so writers never observe — or cause — aliasing.
  SparseBitVector &mutableSet(NodeId Representative) {
    assert(Rep[Representative] == Representative && "rep must be canonical");
    SetHandle &H = Sets[Representative];
    if (!H)
      H = std::make_shared<SparseBitVector>();
    else if (H.use_count() > 1)
      H = std::make_shared<SparseBitVector>(*H);
    return *H;
  }

  /// The points-to set of \p V.
  const SparseBitVector &pointsTo(NodeId V) const {
    const SetHandle &H = Sets[Rep[V]];
    return H ? *H : emptySet();
  }

  /// The shared handle backing representative(\p V)'s set; null for the
  /// empty set. Physical identity (handle pointer equality) is what the
  /// serve layer keys canonical cache ids on.
  const std::shared_ptr<SparseBitVector> &sharedSet(NodeId V) const {
    return Sets[Rep[V]];
  }

  /// Installs \p S as representative \p Representative's set, sharing
  /// storage with every other holder of the handle. Passing a null (or
  /// empty-set) handle is allowed and means the empty set.
  void setSharedSet(NodeId Representative,
                    std::shared_ptr<SparseBitVector> S) {
    assert(Rep[Representative] == Representative && "rep must be canonical");
    Sets[Representative] = std::move(S);
  }

  /// Hash-conses the stored sets in representative-id order: after this,
  /// any two representatives with equal sets share one physical set.
  /// Returns {hits, misses} for observability. Used by solvers that
  /// build their solution via mutableSet() and by fallback paths;
  /// SolverContext::extractSolution interns on the fly instead (the
  /// duplicates must never exist for the peak to shrink).
  std::pair<uint64_t, uint64_t> internShared() {
    SetInterner In;
    for (uint32_t V = 0; V != numNodes(); ++V) {
      if (Rep[V] != V)
        continue;
      SetHandle &H = Sets[V];
      if (!H || H->empty())
        continue;
      H = In.internShared(H);
    }
    In.publish();
    return {In.hits(), In.misses()};
  }

  /// True if \p V may point to \p Obj.
  bool pointsToObj(NodeId V, NodeId Obj) const {
    return pointsTo(V).test(Obj);
  }

  /// May-alias query: do the two points-to sets intersect?
  bool mayAlias(NodeId A, NodeId B) const {
    return pointsTo(A).intersects(pointsTo(B));
  }

  /// The points-to set of \p V as a sorted vector (convenience for tests
  /// and clients).
  std::vector<NodeId> pointsToVector(NodeId V) const {
    std::vector<NodeId> Out;
    for (uint32_t O : pointsTo(V))
      Out.push_back(O);
    return Out;
  }

  /// Structural equality: every node has the same points-to set. This is
  /// the cross-solver invariant the test suite leans on.
  bool operator==(const PointsToSolution &RHS) const {
    if (numNodes() != RHS.numNodes())
      return false;
    for (uint32_t V = 0; V != numNodes(); ++V)
      if (!(pointsTo(V) == RHS.pointsTo(V)))
        return false;
    return true;
  }
  bool operator!=(const PointsToSolution &RHS) const {
    return !(*this == RHS);
  }

  /// Sum over all nodes of |pts(node)| (each node counted, shared sets
  /// counted repeatedly) — a standard precision/size metric.
  uint64_t totalPointsToSize() const {
    uint64_t Total = 0;
    for (uint32_t V = 0; V != numNodes(); ++V)
      Total += pointsTo(V).count();
    return Total;
  }

  /// Deterministic text dump: one line per node, `<id>: <obj> <obj> ...`
  /// with nodes in id order and set elements ascending (SparseBitVector
  /// iterates sorted). Because lines depend only on the per-node routed
  /// sets — not on representative structure — every solver kind and
  /// thread count producing the same solution dumps identical bytes; the
  /// snapshot layer leans on this stability.
  std::string dumpText() const {
    std::string Out;
    for (uint32_t V = 0; V != numNodes(); ++V) {
      Out += std::to_string(V);
      Out += ':';
      for (uint32_t O : pointsTo(V)) {
        Out += ' ';
        Out += std::to_string(O);
      }
      Out += '\n';
    }
    return Out;
  }

  /// FNV hash of the whole solution, for quick regression comparisons.
  uint64_t hash() const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t V = 0; V != numNodes(); ++V)
      for (uint32_t O : pointsTo(V)) {
        H ^= (uint64_t(V) << 32) | O;
        H *= 0x100000001b3ull;
      }
    return H;
  }

  /// Number of distinct physical sets across representatives (empty sets
  /// excluded) and the bytes they occupy — the sharing summary printed
  /// by `ptatool solve --stats`.
  struct SharingSummary {
    uint64_t Reps = 0;          ///< Representatives with non-empty sets.
    uint64_t PhysicalSets = 0;  ///< Distinct physical sets among them.
    uint64_t PhysicalBytes = 0; ///< Bytes of those distinct sets.
    uint64_t RoutedBytes = 0;   ///< Bytes if every rep held a private copy.
  };
  SharingSummary sharingSummary() const {
    SharingSummary S;
    std::unordered_set<const SparseBitVector *> Seen;
    for (uint32_t V = 0; V != numNodes(); ++V) {
      if (Rep[V] != V || !Sets[V] || Sets[V]->empty())
        continue;
      ++S.Reps;
      S.RoutedBytes += Sets[V]->memoryBytes();
      const SparseBitVector *P = Sets[V].get();
      if (Seen.insert(P).second) {
        ++S.PhysicalSets;
        S.PhysicalBytes += P->memoryBytes();
      }
    }
    return S;
  }

private:
  using SetHandle = std::shared_ptr<SparseBitVector>;

  static const SparseBitVector &emptySet() {
    static const SparseBitVector E;
    return E;
  }

  std::vector<NodeId> Rep;
  std::vector<SetHandle> Sets;
};

} // namespace ag

#endif // AG_CORE_POINTSTOSOLUTION_H
