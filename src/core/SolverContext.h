//===- SolverContext.h - Shared online constraint graph ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online constraint graph shared by the explicit-closure solvers
/// (Naive, PKH, LCD, HCD, HT): per-node points-to sets (policy-typed),
/// copy-edge bitmaps, indexed complex constraints, a union-find of node
/// representatives for cycle collapsing, and an online Nuutila-variant SCC
/// ("cycles are detected using Nuutila et al.'s variant of Tarjan's
/// algorithm, and collapsed using a union-find data structure").
///
/// Conventions:
///  * Per-node arrays are indexed by original node id but only meaningful
///    for representatives; merge() moves a loser's state into the survivor.
///  * Edge bitmaps may hold stale (merged-away) target ids; iteration maps
///    each target through find() and skips self references.
///  * Points-to set *elements* are always original object ids — merging
///    never rewrites set contents; dereference resolution maps an element
///    through offsetTarget() and then find().
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_SOLVERCONTEXT_H
#define AG_CORE_SOLVERCONTEXT_H

#include "adt/SparseBitVector.h"
#include "adt/Statistics.h"
#include "adt/UnionFind.h"
#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"
#include "core/PtsSet.h"
#include "core/SolveBudget.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <vector>

namespace ag {

/// Shared state and operations for the explicit-transitive-closure solvers.
template <typename PtsPolicy> class SolverContext {
public:
  using PtsSet = typename PtsPolicy::Set;
  using PtsCtx = typename PtsPolicy::Context;

  /// One indexed complex constraint: for loads, `Other = *(n+Offset)`'s
  /// destination; for stores, the source stored through *(n+Offset).
  struct Deref {
    NodeId Other;
    uint32_t Offset;

    bool operator<(const Deref &RHS) const {
      return Other != RHS.Other ? Other < RHS.Other : Offset < RHS.Offset;
    }
    bool operator==(const Deref &RHS) const {
      return Other == RHS.Other && Offset == RHS.Offset;
    }
  };

  /// A batch of complex constraints sharing one resolution frontier:
  /// Resolved holds the points-to elements already pushed through this
  /// batch's lists. Merging nodes concatenates groups in O(1) — each
  /// keeps its own frontier, so nothing is ever re-resolved; groups are
  /// consolidated back to one after the next resolveComplex pass.
  struct DerefGroup {
    std::vector<Deref> Loads;
    std::vector<Deref> Stores;
    PtsSet Resolved;

    bool empty() const { return Loads.empty() && Stores.empty(); }
  };

  /// Builds the initial graph from \p CS. If \p SeedReps is given (from
  /// OVS and/or HCD's offline pass), nodes are pre-merged so that runtime
  /// edges to merged-away nodes are routed to their representatives.
  /// \p ReverseEdges stores each copy edge b -> a at node a instead of b,
  /// turning Succs into predecessor sets — the orientation the HT solver's
  /// reachability queries need. Only HT uses this.
  SolverContext(const ConstraintSystem &CS, SolverStats &Stats,
                const std::vector<NodeId> *SeedReps = nullptr,
                bool ReverseEdges = false)
      : CS(CS), Stats(Stats), Ctx(CS.numNodes()) {
    const uint32_t N = CS.numNodes();
    Reps.grow(N);
    Pts.resize(N);
    HcdSeen.resize(N);
    Succs.resize(N);
    Derefs.resize(N);
    HcdTargets.resize(N);
    VisitEpoch.assign(N, 0);
    DfsNum.assign(N, 0);
    OnStackEpoch.assign(N, 0);

    if (SeedReps) {
      assert(SeedReps->size() == N && "seed rep table size mismatch");
      for (NodeId V = 0; V != N; ++V)
        if ((*SeedReps)[V] != V)
          Reps.uniteInto((*SeedReps)[V], V);
    }

    for (const Constraint &C : CS.constraints()) {
      switch (C.Kind) {
      case ConstraintKind::AddressOf:
        Pts[find(C.Dst)].insert(Ctx, C.Src);
        break;
      case ConstraintKind::Copy:
        if (ReverseEdges)
          addEdge(C.Dst, C.Src);
        else
          addEdge(C.Src, C.Dst);
        break;
      case ConstraintKind::Load:
        firstGroup(find(C.Src)).Loads.push_back(Deref{C.Dst, C.Offset});
        break;
      case ConstraintKind::Store:
        firstGroup(find(C.Dst)).Stores.push_back(Deref{C.Src, C.Offset});
        break;
      }
    }
  }

  /// Representative of \p V.
  NodeId find(NodeId V) { return Reps.find(V); }

  /// Representative of \p V without path compression. The parallel solver
  /// uses this from worker threads during propagation phases, where the
  /// protocol guarantees no merge is in flight: plain find()'s compression
  /// writes would race between readers.
  NodeId findReadOnly(NodeId V) const { return Reps.findNoCompress(V); }

  /// True if \p V is currently a representative.
  bool isRep(NodeId V) const { return Reps.isRepresentative(V); }

  /// Adds the copy edge find(From) -> find(To).
  /// \returns true if the edge is new (self edges report false).
  bool addEdge(NodeId From, NodeId To) {
    From = find(From);
    To = find(To);
    if (From == To)
      return false;
    if (!Succs[From].set(To))
      return false;
    ++Stats.EdgesAdded;
    if (Governor)
      Governor->onEdgeAdded();
    return true;
  }

  /// Propagates pts(find(From)) into pts(find(To)).
  /// \returns true if the destination changed. Counts a propagation.
  bool propagate(NodeId From, NodeId To) {
    From = find(From);
    To = find(To);
    ++Stats.Propagations;
    if (Governor)
      Governor->onPropagation();
    if (From == To)
      return false;
    bool Changed = Pts[To].unionWith(Ctx, Pts[From]);
    Stats.ChangedPropagations += Changed;
    return Changed;
  }

  /// Cancellation point for solver loops: delegates to the governor when
  /// one is installed, otherwise free.
  void governorStep() {
    if (Governor)
      Governor->onStep();
  }

  /// Merges the cycle members \p A and \p B (equal points-to sets in the
  /// final solution). \returns the surviving representative.
  NodeId merge(NodeId A, NodeId B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    NodeId Survivor = Reps.unite(A, B);
    NodeId Loser = Survivor == A ? B : A;
    Pts[Survivor].unionWith(Ctx, Pts[Loser]);
    Pts[Loser].clearAndFree(Ctx);
    HcdSeen[Survivor].intersectWith(Ctx, HcdSeen[Loser]);
    HcdSeen[Loser].clearAndFree(Ctx);
    Succs[Survivor].unionWith(Succs[Loser]);
    Succs[Loser].clear();
    // Deref groups concatenate wholesale; each keeps its own resolution
    // frontier so no work is repeated.
    appendAndClear(Derefs[Survivor], Derefs[Loser]);
    appendAndClear(HcdTargets[Survivor], HcdTargets[Loser]);
    ++Stats.NodesCollapsed;
    // A merge can strictly grow the survivor's points-to set (the union of
    // the cycle members' sets), so the survivor must be rescheduled or the
    // growth never propagates onward. Solvers drain this log after every
    // collapse pass.
    MergeLog.push_back(Survivor);
    return Survivor;
  }

  /// Invokes \p Fn with the (current) representative of every merge
  /// survivor since the last drain, then clears the log. Worklist solvers
  /// must requeue these nodes after any cycle-collapse pass.
  template <typename Fn> void drainMergeLog(Fn Notify) {
    for (NodeId V : MergeLog)
      Notify(find(V));
    MergeLog.clear();
  }

  /// Resolves the complex constraints indexed at representative \p N: for
  /// every element v of pts(N), adds the edges implied by N's load and
  /// store constraints. \p Push is invoked with the representative of every
  /// node that gained an outgoing edge (Figure 1's worklist insertions).
  template <typename PushFn> void resolveComplex(NodeId N, PushFn Push) {
    resolveComplex(N, Push, [](NodeId, NodeId) {});
  }

  /// As above, additionally reporting every inserted edge (from, to) to
  /// \p OnEdge — used by solvers that maintain per-insertion structures
  /// (Pearce et al. 2003's dynamic topological order). \p OnEdge must not
  /// mutate the graph.
  template <typename PushFn, typename EdgeFn>
  void resolveComplex(NodeId N, PushFn Push, EdgeFn OnEdge) {
    std::vector<DerefGroup> &Groups = Derefs[N];
    if (Groups.empty())
      return;
    for (DerefGroup &G : Groups) {
      if (G.empty())
        continue;
      // Difference resolution: only elements this group hasn't seen.
      // (With UseDiffResolution off, Resolved stays empty and the full
      // set re-scans on every visit — the Figure-1 literal behaviour.)
      uint64_t FrontierSize = 0;
      Pts[N].forEachDiff(Ctx, G.Resolved, [&](NodeId V) {
        ++FrontierSize;
        for (const Deref &D : G.Loads) {
          NodeId T = CS.offsetTarget(V, D.Offset);
          if (T != InvalidNode && addEdge(T, D.Other)) {
            Push(find(T));
            OnEdge(find(T), find(D.Other));
          }
        }
        for (const Deref &D : G.Stores) {
          NodeId T = CS.offsetTarget(V, D.Offset);
          if (T != InvalidNode && addEdge(D.Other, T)) {
            Push(find(D.Other));
            OnEdge(find(D.Other), find(T));
          }
        }
      });
      Stats.DiffElementsResolved += FrontierSize;
      obs::observe(obs::Hist::PtsDiffSize, FrontierSize);
    }
    // Every group is now resolved against the full current set:
    // consolidate back to one group with a shared frontier.
    if (Groups.size() > 1) {
      DerefGroup &First = Groups[0];
      for (size_t I = 1; I != Groups.size(); ++I) {
        appendAndClear(First.Loads, Groups[I].Loads);
        appendAndClear(First.Stores, Groups[I].Stores);
        Groups[I].Resolved.clearAndFree(Ctx);
      }
      Groups.resize(1);
      dedupDerefs(First.Loads);
      dedupDerefs(First.Stores);
    }
    if (UseDiffResolution)
      Groups[0].Resolved.unionWith(Ctx, Pts[N]);
  }

  /// HCD's online rule: if representative \p N carries lazy tuples (n, a),
  /// preemptively collapse every member of pts(N) with a — no traversal
  /// needed. \p Push receives each collapse survivor. \returns find(N),
  /// which may have changed if N itself was collapsed.
  template <typename PushFn> NodeId applyHcd(NodeId N, PushFn Push) {
    if (HcdTargets[N].empty())
      return N;
    // Copy: merging appends the loser's targets to the survivor's list.
    std::vector<NodeId> Targets = HcdTargets[N];
    // Only members not collapsed on a previous visit need work.
    std::vector<NodeId> Members;
    Pts[N].forEachDiff(Ctx, HcdSeen[N],
                       [&](NodeId V) { Members.push_back(V); });
    if (Members.empty())
      return N;
    HcdSeen[N].unionWith(Ctx, Pts[N]);
    for (NodeId T : Targets) {
      NodeId A = find(T);
      bool Merged = false;
      for (NodeId V : Members) {
        NodeId R = find(V);
        if (R == A)
          continue;
        A = merge(A, R);
        Merged = true;
        ++Stats.HcdCollapses;
      }
      // Requeue the survivor only when something collapsed into it —
      // unconditional pushes livelock once the survivor inherits a lazy
      // tuple that names itself.
      if (Merged)
        Push(A);
    }
    return find(N);
  }

  /// Runs cycle detection over the subgraph reachable from \p Root,
  /// collapsing every non-trivial SCC found (Nuutila-variant Tarjan).
  /// \returns the number of merges performed.
  uint32_t detectAndCollapseFrom(NodeId Root) {
    ++CurrentEpoch;
    NextDfsNum = 0;
    ++Stats.CycleDetectAttempts;
    obs::TraceSpan Span("tarjan", "solver");
    return tarjanFrom(find(Root));
  }

  /// Whole-graph sweep: detects and collapses every cycle currently in the
  /// constraint graph (PKH's periodic sweep). \returns merges performed.
  uint32_t detectAndCollapseAll() {
    ++CurrentEpoch;
    NextDfsNum = 0;
    ++Stats.CycleDetectAttempts;
    obs::TraceSpan Span("tarjan", "solver");
    uint32_t Merges = 0;
    for (NodeId V = 0; V != CS.numNodes(); ++V) {
      NodeId R = find(V);
      if (VisitEpoch[R] != CurrentEpoch)
        Merges += tarjanFrom(R);
    }
    return Merges;
  }

  /// Extracts the final solution (per-node representative + bitmap sets).
  PointsToSolution extractSolution() {
    const uint32_t N = CS.numNodes();
    PointsToSolution Out(N);
    // Pass 1: canonical representatives. PointsToSolution requires reps to
    // be self-mapped, which union-find guarantees.
    for (NodeId V = 0; V != N; ++V) {
      NodeId R = find(V);
      if (R != V)
        Out.setRep(V, R);
      else
        Pts[R].toBitmap(Ctx, Out.mutableSet(R));
    }
    return Out;
  }

  const ConstraintSystem &CS;
  SolverStats &Stats;
  PtsCtx Ctx;
  UnionFind Reps;
  /// See SolverOptions::DifferenceResolution.
  bool UseDiffResolution = true;
  /// Resource governor, or null when un-governed (see SolverOptions).
  SolveGovernor *Governor = nullptr;

  std::vector<PtsSet> Pts;
  /// Per node: elements already collapsed by the HCD online rule.
  std::vector<PtsSet> HcdSeen;
  std::vector<SparseBitVector> Succs;
  /// Per node: complex-constraint batches with resolution frontiers.
  std::vector<std::vector<DerefGroup>> Derefs;
  /// HCD online table: when processing node n, collapse every member of
  /// pts(n) with each target (usually zero or one entry).
  std::vector<std::vector<NodeId>> HcdTargets;

private:
  template <typename T>
  static void appendAndClear(std::vector<T> &Into, std::vector<T> &From) {
    Into.insert(Into.end(), std::make_move_iterator(From.begin()),
                std::make_move_iterator(From.end()));
    From.clear();
    From.shrink_to_fit();
  }

  DerefGroup &firstGroup(NodeId N) {
    if (Derefs[N].empty())
      Derefs[N].emplace_back();
    return Derefs[N].front();
  }

  /// Canonicalizes a deref list: route destinations through their current
  /// representatives and drop duplicates (merging concatenates lists from
  /// many members that often share constraints).
  void dedupDerefs(std::vector<Deref> &List) {
    if (List.size() < 2)
      return;
    for (Deref &D : List)
      D.Other = find(D.Other);
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }

  /// Iterative Tarjan from \p Root over the representative graph; collapses
  /// completed non-trivial SCCs immediately (their members are finished, so
  /// the rest of the search only sees the survivor through find()).
  uint32_t tarjanFrom(NodeId Root) {
    struct Frame {
      NodeId Node;
      SparseBitVector::iterator EdgeIt;
      SparseBitVector::iterator EdgeEnd;
    };
    uint32_t Merges = 0;
    std::vector<Frame> Dfs;
    std::vector<NodeId> SccStack;

    auto push = [&](NodeId V) {
      VisitEpoch[V] = CurrentEpoch;
      DfsNum[V] = NextDfsNum++;
      LowLink[V] = DfsNum[V];
      OnStackEpoch[V] = CurrentEpoch;
      SccStack.push_back(V);
      Dfs.push_back(Frame{V, Succs[V].begin(), Succs[V].end()});
      ++Stats.NodesSearched;
      // Cancellation point: a whole-graph sweep can dominate a round, so
      // the deadline must be observable from inside the DFS. Safe here —
      // no merge is in flight when a node is first pushed.
      governorStep();
    };
    if (LowLink.size() < VisitEpoch.size())
      LowLink.resize(VisitEpoch.size());

    push(Root);
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      NodeId U = F.Node;
      if (F.EdgeIt != F.EdgeEnd) {
        NodeId W = find(*F.EdgeIt);
        ++F.EdgeIt;
        if (W == U)
          continue;
        if (VisitEpoch[W] != CurrentEpoch) {
          push(W);
        } else if (OnStackEpoch[W] == CurrentEpoch &&
                   DfsNum[W] < LowLink[U]) {
          LowLink[U] = DfsNum[W];
        }
        continue;
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        NodeId Parent = Dfs.back().Node;
        if (LowLink[U] < LowLink[Parent])
          LowLink[Parent] = LowLink[U];
      }
      if (LowLink[U] == DfsNum[U]) {
        // U roots an SCC: pop members; collapse if non-trivial. Members
        // above U on the stack merge into U's class; U itself is the
        // initial survivor.
        NodeId Survivor = U;
        uint64_t Members = 1;
        for (;;) {
          NodeId W = SccStack.back();
          SccStack.pop_back();
          OnStackEpoch[W] = 0;
          if (W == U)
            break;
          Survivor = merge(Survivor, W);
          ++Merges;
          ++Members;
        }
        if (Members > 1)
          obs::observe(obs::Hist::CycleSize, Members);
        // The survivor keeps a valid visited stamp so later edges into the
        // collapsed SCC are treated as done.
        VisitEpoch[Survivor] = CurrentEpoch;
        OnStackEpoch[Survivor] = 0;
      }
    }
    return Merges;
  }

  std::vector<NodeId> MergeLog;
  std::vector<uint32_t> VisitEpoch;
  std::vector<uint32_t> DfsNum;
  std::vector<uint32_t> LowLink;
  std::vector<uint32_t> OnStackEpoch;
  uint32_t CurrentEpoch = 0;
  uint32_t NextDfsNum = 0;
};

} // namespace ag

#endif // AG_CORE_SOLVERCONTEXT_H
