//===- SolverContext.h - Shared online constraint graph ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online constraint graph shared by the explicit-closure solvers
/// (Naive, PKH, LCD, HCD, HT): per-node points-to sets (policy-typed),
/// copy-edge bitmaps, indexed complex constraints, a union-find of node
/// representatives for cycle collapsing, and an online Nuutila-variant SCC
/// ("cycles are detected using Nuutila et al.'s variant of Tarjan's
/// algorithm, and collapsed using a union-find data structure").
///
/// Conventions:
///  * Per-node arrays are indexed by original node id but only meaningful
///    for representatives; merge() moves a loser's state into the survivor.
///  * Edge bitmaps may hold stale (merged-away) target ids; iteration maps
///    each target through find() and skips self references.
///  * Points-to set *elements* are always original object ids — merging
///    never rewrites set contents; dereference resolution maps an element
///    through offsetTarget() and then find().
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_SOLVERCONTEXT_H
#define AG_CORE_SOLVERCONTEXT_H

#include "adt/ElementArena.h"
#include "adt/InternTable.h"
#include "adt/SparseBitVector.h"
#include "adt/Statistics.h"
#include "adt/UnionFind.h"
#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"
#include "core/PtsSet.h"
#include "core/SolveBudget.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace ag {

/// Shared state and operations for the explicit-transitive-closure solvers.
template <typename PtsPolicy> class SolverContext {
public:
  using PtsSet = typename PtsPolicy::Set;
  using PtsCtx = typename PtsPolicy::Context;

  /// One indexed complex constraint: for loads, `Other = *(n+Offset)`'s
  /// destination; for stores, the source stored through *(n+Offset).
  struct Deref {
    NodeId Other;
    uint32_t Offset;

    bool operator<(const Deref &RHS) const {
      return Other != RHS.Other ? Other < RHS.Other : Offset < RHS.Offset;
    }
    bool operator==(const Deref &RHS) const {
      return Other == RHS.Other && Offset == RHS.Offset;
    }
  };

  /// A batch of complex constraints sharing one resolution frontier:
  /// Resolved holds the points-to elements already pushed through this
  /// batch's lists. Merging nodes concatenates groups in O(1) — each
  /// keeps its own frontier, so nothing is ever re-resolved; groups are
  /// consolidated back to one after the next resolveComplex pass.
  struct DerefGroup {
    std::vector<Deref> Loads;
    std::vector<Deref> Stores;
    PtsSet Resolved;

    bool empty() const { return Loads.empty() && Stores.empty(); }
  };

  /// Builds the initial graph from \p CS. If \p SeedReps is given (from
  /// OVS and/or HCD's offline pass), nodes are pre-merged so that runtime
  /// edges to merged-away nodes are routed to their representatives.
  /// \p ReverseEdges stores each copy edge b -> a at node a instead of b,
  /// turning Succs into predecessor sets — the orientation the HT solver's
  /// reachability queries need. Only HT uses this.
  /// \p ArenaShards (a power of two) is the number of element arenas the
  /// per-node sets are distributed over by node id. Sequential solvers
  /// keep the default 1; the parallel solver passes its stripe count so
  /// concurrent workers allocate from different arenas. Sharding is only
  /// a contention optimization — every arena is itself thread-safe, so
  /// sets whose elements migrate between stripes (merges) stay sound.
  SolverContext(const ConstraintSystem &CS, SolverStats &Stats,
                const std::vector<NodeId> *SeedReps = nullptr,
                bool ReverseEdges = false, uint32_t ArenaShards = 1)
      : CS(CS), Stats(Stats), Ctx(CS.numNodes()) {
    const uint32_t N = CS.numNodes();
    Reps.grow(N);
    Pts.resize(N);
    Delta.resize(N);
    HcdSeen.resize(N);
    Succs.resize(N);
    Derefs.resize(N);
    HcdTargets.resize(N);
    FullDelta.assign(N, 0);
    VisitEpoch.assign(N, 0);
    DfsNum.assign(N, 0);
    OnStackEpoch.assign(N, 0);

    assert(ArenaShards != 0 && (ArenaShards & (ArenaShards - 1)) == 0 &&
           "arena shard count must be a power of two");
    ArenaShardMask = ArenaShards - 1;
    Arenas.reserve(ArenaShards);
    for (uint32_t I = 0; I != ArenaShards; ++I)
      Arenas.push_back(
          std::make_unique<ElementArena>(SparseBitVector::elementBytes()));
    // Bind every per-node set before any bit is inserted. The binding is
    // fixed for the solve's lifetime; unwind order is safe because the
    // arenas are declared before the set vectors below.
    for (NodeId V = 0; V != N; ++V) {
      ElementArena *A = Arenas[V & ArenaShardMask].get();
      Pts[V].bindArena(A);
      Delta[V].bindArena(A);
      HcdSeen[V].bindArena(A);
      Succs[V].setArena(A);
    }

    if (SeedReps) {
      assert(SeedReps->size() == N && "seed rep table size mismatch");
      for (NodeId V = 0; V != N; ++V)
        if ((*SeedReps)[V] != V)
          Reps.uniteInto((*SeedReps)[V], V);
    }

    for (const Constraint &C : CS.constraints()) {
      switch (C.Kind) {
      case ConstraintKind::AddressOf:
        Pts[find(C.Dst)].insert(Ctx, C.Src);
        break;
      case ConstraintKind::Copy:
        if (ReverseEdges)
          addEdge(C.Dst, C.Src);
        else
          addEdge(C.Src, C.Dst);
        break;
      case ConstraintKind::Load:
        firstGroup(find(C.Src)).Loads.push_back(Deref{C.Dst, C.Offset});
        break;
      case ConstraintKind::Store:
        firstGroup(find(C.Dst)).Stores.push_back(Deref{C.Src, C.Offset});
        break;
      }
    }
  }

  /// Representative of \p V.
  NodeId find(NodeId V) { return Reps.find(V); }

  /// Representative of \p V without path compression. The parallel solver
  /// uses this from worker threads during propagation phases, where the
  /// protocol guarantees no merge is in flight: plain find()'s compression
  /// writes would race between readers.
  NodeId findReadOnly(NodeId V) const { return Reps.findNoCompress(V); }

  /// True if \p V is currently a representative.
  bool isRep(NodeId V) const { return Reps.isRepresentative(V); }

  /// Adds the copy edge find(From) -> find(To).
  /// \returns true if the edge is new (self edges report false).
  bool addEdge(NodeId From, NodeId To) {
    return addEdgeReps(find(From), find(To));
  }

  /// addEdge() for operands the caller already routed through find().
  /// Complex-constraint resolution proposes edges once per (element,
  /// deref) pair with mostly-duplicate results, so the per-attempt
  /// find() calls are hoisted out of this path.
  bool addEdgeReps(NodeId From, NodeId To) {
    if (From == To)
      return false;
    if (!Succs[From].set(To))
      return false;
    ++Stats.EdgesAdded;
    if (Governor)
      Governor->onEdgeAdded();
    return true;
  }

  /// Propagates pts(find(From)) into pts(find(To)).
  /// \returns true if the destination changed. Counts a propagation.
  bool propagate(NodeId From, NodeId To) {
    From = find(From);
    To = find(To);
    ++Stats.Propagations;
    if (Governor)
      Governor->onPropagation();
    if (From == To)
      return false;
    bool Changed = Pts[To].unionWith(Ctx, Pts[From]);
    Stats.ChangedPropagations += Changed;
    return Changed;
  }

  /// Difference propagation: unions only the bits that arrived at
  /// \p From since its last completed edge sweep (its pending delta)
  /// into pts(\p To), appending whatever is genuinely new at \p To to
  /// \p To's own pending delta in the same merge pass. Both operands
  /// must already be representatives. Requires UseDeltaPropagation:
  /// every mutation of a points-to set must flow through a delta-aware
  /// kernel or the pending-delta invariant breaks.
  bool propagateDelta(NodeId From, NodeId To) {
    ++Stats.Propagations;
    if (Governor)
      Governor->onPropagation();
    bool Changed = wantsDelta(To)
                       ? Pts[To].unionWithDelta(Ctx, Delta[From], Delta[To])
                       : Pts[To].unionWith(Ctx, Delta[From]);
    Stats.ChangedPropagations += Changed;
    return Changed;
  }

  /// Edge-birth propagation: a newly inserted edge must carry the full
  /// source set once (delta propagation only carries what arrives
  /// later). Both operands must already be representatives.
  bool propagateFull(NodeId From, NodeId To) {
    if (From == To)
      return false;
    ++Stats.Propagations;
    if (Governor)
      Governor->onPropagation();
    bool Changed = wantsDelta(To)
                       ? Pts[To].unionWithDelta(Ctx, Pts[From], Delta[To])
                       : Pts[To].unionWith(Ctx, Pts[From]);
    Stats.ChangedPropagations += Changed;
    return Changed;
  }

  /// Whether arrivals at \p To must be recorded into Delta[To]. Not
  /// when the whole set is already pending (the flag covers every bit),
  /// and not when \p To's pop would do nothing with a frontier — no
  /// outgoing edges, no complex constraints, no lazy HCD tuples. The
  /// skip stays sound as the node gains any of those later: a newborn
  /// edge carries the full set at birth, and deref groups / HCD tuples
  /// only arrive via a merge, which re-pends the whole set.
  bool wantsDelta(NodeId To) const {
    return !FullDelta[To] && (!Succs[To].empty() || !Derefs[To].empty() ||
                              !HcdTargets[To].empty());
  }

  /// Marks the whole of pts(\p V) pending, so \p V's next edge sweep
  /// propagates everything (initial worklist seeding, warm-start seeds,
  /// cycle merges). A flag, not a copy: materializing pts(V) into
  /// Delta[V] would duplicate the biggest sets in the graph — merge
  /// survivors are hubs — and the full-set duplicates dominated peak
  /// bitmap bytes. \p V must be a representative.
  void seedDelta(NodeId V) { FullDelta[V] = 1; }

  /// The pending frontier of \p N: the whole set when flagged full,
  /// otherwise the accumulated arrival delta.
  const PtsSet &pendingFrontier(NodeId N) const {
    return FullDelta[N] ? Pts[N] : Delta[N];
  }

  /// Clears \p N's pending state after a clean (un-restarted) sweep:
  /// every successor and complex constraint has seen the frontier.
  void clearPending(NodeId N) {
    Delta[N].clearAndFree(Ctx);
    FullDelta[N] = 0;
  }

  /// Rewrites \p N's successor bitmap in place, routing every target
  /// through find() and dropping self references. Cycle collapses leave
  /// stale (merged-away) ids behind; several raw ids can map to one
  /// representative, and every sweep and every Tarjan search pays a
  /// find() plus a duplicate-propagation walk per stale id until they
  /// are squeezed out. Callers invoke this when a sweep observes a high
  /// stale density. Must not run while an iteration of Succs[N] is in
  /// flight.
  void compactSuccs(NodeId N) {
    SuccScratch.clear();
    for (uint32_t Raw : Succs[N]) {
      NodeId R = find(Raw);
      if (R != N)
        SuccScratch.set(R);
    }
    Succs[N] = SuccScratch;
  }

  /// Cancellation point for solver loops: delegates to the governor when
  /// one is installed, otherwise free.
  void governorStep() {
    if (Governor)
      Governor->onStep();
  }

  /// Merges the cycle members \p A and \p B (equal points-to sets in the
  /// final solution). \returns the surviving representative.
  NodeId merge(NodeId A, NodeId B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    NodeId Survivor = Reps.unite(A, B);
    NodeId Loser = Survivor == A ? B : A;
    Pts[Survivor].unionWith(Ctx, Pts[Loser]);
    Pts[Loser].clearAndFree(Ctx);
    if (UseDeltaPropagation) {
      // The survivor inherits the loser's edges (and vice versa), and
      // none of those edges has seen the merged set: re-pend everything.
      // The accumulated deltas are subsets of the pending whole — free
      // them (hub survivors collect the largest arrival deltas).
      FullDelta[Survivor] = 1;
      Delta[Survivor].clearAndFree(Ctx);
      Delta[Loser].clearAndFree(Ctx);
      FullDelta[Loser] = 0;
    }
    HcdSeen[Survivor].intersectWith(Ctx, HcdSeen[Loser]);
    HcdSeen[Loser].clearAndFree(Ctx);
    Succs[Survivor].unionWith(Succs[Loser]);
    Succs[Loser].clear();
    // Deref groups concatenate wholesale; each keeps its own resolution
    // frontier so no work is repeated.
    appendAndClear(Derefs[Survivor], Derefs[Loser]);
    appendAndClear(HcdTargets[Survivor], HcdTargets[Loser]);
    ++Stats.NodesCollapsed;
    // A merge can strictly grow the survivor's points-to set (the union of
    // the cycle members' sets), so the survivor must be rescheduled or the
    // growth never propagates onward. Solvers drain this log after every
    // collapse pass.
    MergeLog.push_back(Survivor);
    return Survivor;
  }

  /// Invokes \p Fn with the (current) representative of every merge
  /// survivor since the last drain, then clears the log. Worklist solvers
  /// must requeue these nodes after any cycle-collapse pass.
  template <typename Fn> void drainMergeLog(Fn Notify) {
    for (NodeId V : MergeLog)
      Notify(find(V));
    MergeLog.clear();
  }

  /// Resolves the complex constraints indexed at representative \p N: for
  /// every element v of pts(N), adds the edges implied by N's load and
  /// store constraints. \p Push is invoked with the representative of every
  /// node that gained an outgoing edge (Figure 1's worklist insertions).
  template <typename PushFn> void resolveComplex(NodeId N, PushFn Push) {
    resolveComplex(N, Push, [](NodeId, NodeId) {});
  }

  /// As above, additionally reporting every inserted edge (from, to) to
  /// \p OnEdge — used by solvers that maintain per-insertion structures
  /// (Pearce et al. 2003's dynamic topological order). \p OnEdge must not
  /// mutate the graph.
  template <typename PushFn, typename EdgeFn>
  void resolveComplex(NodeId N, PushFn Push, EdgeFn OnEdge) {
    resolveComplexFrom(N, Pts[N], Push, OnEdge);
  }

  /// resolveComplex() with an explicit candidate set: only elements of
  /// \p Candidates can enter the resolution frontier. Solvers that keep
  /// the difference-propagation invariant (every bit of pts(N) is in
  /// Delta[N] until resolved) pass Delta[N], so the frontier merge walks
  /// the (small) pending delta instead of the whole points-to set. The
  /// per-group Resolved frontier still deduplicates exactly, so passing
  /// a candidate set that over-approximates the unresolved bits is
  /// always safe — Pts[N] itself recovers the plain behaviour.
  template <typename PushFn, typename EdgeFn>
  void resolveComplexFrom(NodeId N, const PtsSet &Candidates, PushFn Push,
                          EdgeFn OnEdge) {
    std::vector<DerefGroup> &Groups = Derefs[N];
    if (Groups.empty())
      return;
    for (DerefGroup &G : Groups) {
      if (G.empty())
        continue;
      // Difference resolution: only elements this group hasn't seen.
      // (With UseDiffResolution off, Resolved stays empty and the full
      // set re-scans on every visit — the Figure-1 literal behaviour.)
      //
      // Nothing in this walk merges nodes, so representatives are
      // stable for its duration: find() each deref destination once
      // here instead of once per (element, deref) attempt — the
      // attempts are mostly duplicates, and the finds dominated the
      // profile.
      ScratchLoads.clear();
      ScratchStores.clear();
      for (const Deref &D : G.Loads)
        ScratchLoads.push_back(Deref{find(D.Other), D.Offset});
      for (const Deref &D : G.Stores)
        ScratchStores.push_back(Deref{find(D.Other), D.Offset});
      uint64_t FrontierSize = 0;
      auto Visit = [&](NodeId V) {
        ++FrontierSize;
        for (const Deref &D : ScratchLoads) {
          NodeId T = CS.offsetTarget(V, D.Offset);
          if (T == InvalidNode)
            continue;
          T = find(T);
          if (addEdgeReps(T, D.Other)) {
            Push(T);
            OnEdge(T, D.Other);
          }
        }
        for (const Deref &D : ScratchStores) {
          NodeId T = CS.offsetTarget(V, D.Offset);
          if (T == InvalidNode)
            continue;
          T = find(T);
          if (addEdgeReps(D.Other, T)) {
            Push(D.Other);
            OnEdge(D.Other, T);
          }
        }
      };
      if (UseDiffResolution) {
        // Fused kernel: emit the unseen elements and absorb them into
        // the frontier in one merge walk (the visitor touches Succs and
        // the worklist, never either operand).
        G.Resolved.unionWithVisitNew(Ctx, Candidates, Visit);
      } else {
        // Ablation mode re-scans the full set every visit (Figure-1
        // literal), candidate narrowing included.
        Pts[N].forEachDiff(Ctx, G.Resolved, Visit);
      }
      Stats.DiffElementsResolved += FrontierSize;
      obs::observe(obs::Hist::PtsDiffSize, FrontierSize);
    }
    // Every group is now resolved against the full current set:
    // consolidate back to one group with a shared frontier.
    if (Groups.size() > 1) {
      DerefGroup &First = Groups[0];
      for (size_t I = 1; I != Groups.size(); ++I) {
        appendAndClear(First.Loads, Groups[I].Loads);
        appendAndClear(First.Stores, Groups[I].Stores);
        Groups[I].Resolved.clearAndFree(Ctx);
      }
      Groups.resize(1);
      dedupDerefs(First.Loads);
      dedupDerefs(First.Stores);
    }
  }

  /// HCD's online rule: if representative \p N carries lazy tuples (n, a),
  /// preemptively collapse every member of pts(N) with a — no traversal
  /// needed. \p Push receives each collapse survivor. \returns find(N),
  /// which may have changed if N itself was collapsed.
  template <typename PushFn> NodeId applyHcd(NodeId N, PushFn Push) {
    if (HcdTargets[N].empty())
      return N;
    // Copy: merging appends the loser's targets to the survivor's list.
    std::vector<NodeId> Targets = HcdTargets[N];
    // Only members not collapsed on a previous visit need work. Fused
    // kernel: collect them and absorb them into HcdSeen in one merge
    // walk (if nothing is new, the union is a no-op, preserving the old
    // early-return behaviour exactly). Under difference propagation the
    // pending delta bounds the members HcdSeen hasn't absorbed — every
    // bit of pts(N) stays in Delta[N] until N's pop completes, and this
    // runs at the start of the pop — so the merge walks the small delta
    // instead of the whole set.
    std::vector<NodeId> Members;
    const PtsSet &HcdCandidates =
        UseDeltaPropagation ? pendingFrontier(N) : Pts[N];
    HcdSeen[N].unionWithVisitNew(Ctx, HcdCandidates,
                                 [&](NodeId V) { Members.push_back(V); });
    if (Members.empty())
      return N;
    for (NodeId T : Targets) {
      NodeId A = find(T);
      bool Merged = false;
      for (NodeId V : Members) {
        NodeId R = find(V);
        if (R == A)
          continue;
        A = merge(A, R);
        Merged = true;
        ++Stats.HcdCollapses;
      }
      // Requeue the survivor only when something collapsed into it —
      // unconditional pushes livelock once the survivor inherits a lazy
      // tuple that names itself.
      if (Merged)
        Push(A);
    }
    return find(N);
  }

  /// Runs cycle detection over the subgraph reachable from \p Root,
  /// collapsing every non-trivial SCC found (Nuutila-variant Tarjan).
  /// \returns the number of merges performed.
  uint32_t detectAndCollapseFrom(NodeId Root) {
    ++CurrentEpoch;
    NextDfsNum = 0;
    ++Stats.CycleDetectAttempts;
    obs::TraceSpan Span("tarjan", "solver");
    return tarjanFrom(find(Root));
  }

  /// Whole-graph sweep: detects and collapses every cycle currently in the
  /// constraint graph (PKH's periodic sweep). \returns merges performed.
  uint32_t detectAndCollapseAll() {
    ++CurrentEpoch;
    NextDfsNum = 0;
    ++Stats.CycleDetectAttempts;
    obs::TraceSpan Span("tarjan", "solver");
    uint32_t Merges = 0;
    for (NodeId V = 0; V != CS.numNodes(); ++V) {
      NodeId R = find(V);
      if (VisitEpoch[R] != CurrentEpoch)
        Merges += tarjanFrom(R);
    }
    return Merges;
  }

  /// Extracts the final solution (per-node representative + hash-consed
  /// bitmap sets). Sets are interned on the fly: a representative whose
  /// set equals an earlier representative's shares that physical set,
  /// and its transient copy is released immediately — so the extraction
  /// peak holds the solver's sets plus the *distinct* solution sets, not
  /// one private copy per representative.
  PointsToSolution extractSolution() {
    const uint32_t N = CS.numNodes();
    PointsToSolution Out(N);
    SetInterner Interner;
    SparseBitVector Scratch; // Heap-backed; canonical sets outlive the
                             // solver's arenas.
    for (NodeId V = 0; V != N; ++V) {
      NodeId R = find(V);
      if (R != V) {
        Out.setRep(V, R);
        continue;
      }
      Pts[R].toBitmap(Ctx, Scratch);
      if (!Scratch.empty())
        Out.setSharedSet(R, Interner.intern(std::move(Scratch)));
    }
    Interner.publish();
    obs::count(obs::Counter::SolverInternedHits, Interner.hits());
    obs::count(obs::Counter::SolverInternedMisses, Interner.misses());
    return Out;
  }

  const ConstraintSystem &CS;
  SolverStats &Stats;
  PtsCtx Ctx;
  UnionFind Reps;
  /// See SolverOptions::DifferenceResolution.
  bool UseDiffResolution = true;
  /// Difference propagation: the owning solver propagates per-node
  /// deltas instead of full sets, and this context maintains the
  /// pending-delta invariant across merges. Opt-in per solver — only
  /// LCD's edge loop uses it; enabling it without routing every
  /// propagation through propagateDelta/propagateFull loses updates.
  bool UseDeltaPropagation = false;
  /// Resource governor, or null when un-governed (see SolverOptions).
  SolveGovernor *Governor = nullptr;

  /// Per-shard element arenas backing Pts/HcdSeen/Succs (node V binds to
  /// shard V & ArenaShardMask). Declared before every set vector so that
  /// destruction — including governor-trip unwinds — returns all
  /// elements to live arenas before the slabs are released.
  std::vector<std::unique_ptr<ElementArena>> Arenas;
  uint32_t ArenaShardMask = 0;

  std::vector<PtsSet> Pts;
  /// Per node: bits that arrived at pts(node) since its last completed
  /// edge sweep (difference propagation, Pearce et al. 2003). Only
  /// maintained when UseDeltaPropagation is set.
  std::vector<PtsSet> Delta;
  /// Per node: "the whole of pts(node) is pending" — set by seeding and
  /// cycle merges instead of copying the full set into Delta (see
  /// seedDelta). Cleared together with Delta on a clean sweep.
  std::vector<uint8_t> FullDelta;
  /// Per node: elements already collapsed by the HCD online rule.
  std::vector<PtsSet> HcdSeen;
  std::vector<SparseBitVector> Succs;
  /// Per node: complex-constraint batches with resolution frontiers.
  std::vector<std::vector<DerefGroup>> Derefs;
  /// HCD online table: when processing node n, collapse every member of
  /// pts(n) with each target (usually zero or one entry).
  std::vector<std::vector<NodeId>> HcdTargets;

private:
  template <typename T>
  static void appendAndClear(std::vector<T> &Into, std::vector<T> &From) {
    Into.insert(Into.end(), std::make_move_iterator(From.begin()),
                std::make_move_iterator(From.end()));
    From.clear();
    From.shrink_to_fit();
  }

  DerefGroup &firstGroup(NodeId N) {
    if (Derefs[N].empty())
      Derefs[N].emplace_back();
    return Derefs[N].front();
  }

  /// Canonicalizes a deref list: route destinations through their current
  /// representatives and drop duplicates (merging concatenates lists from
  /// many members that often share constraints).
  void dedupDerefs(std::vector<Deref> &List) {
    if (List.size() < 2)
      return;
    for (Deref &D : List)
      D.Other = find(D.Other);
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }

  /// Iterative Tarjan from \p Root over the representative graph; collapses
  /// completed non-trivial SCCs immediately (their members are finished, so
  /// the rest of the search only sees the survivor through find()).
  uint32_t tarjanFrom(NodeId Root) {
    struct Frame {
      NodeId Node;
      SparseBitVector::iterator EdgeIt;
      SparseBitVector::iterator EdgeEnd;
    };
    uint32_t Merges = 0;
    std::vector<Frame> Dfs;
    std::vector<NodeId> SccStack;

    auto push = [&](NodeId V) {
      VisitEpoch[V] = CurrentEpoch;
      DfsNum[V] = NextDfsNum++;
      LowLink[V] = DfsNum[V];
      OnStackEpoch[V] = CurrentEpoch;
      SccStack.push_back(V);
      Dfs.push_back(Frame{V, Succs[V].begin(), Succs[V].end()});
      ++Stats.NodesSearched;
      // Cancellation point: a whole-graph sweep can dominate a round, so
      // the deadline must be observable from inside the DFS. Safe here —
      // no merge is in flight when a node is first pushed.
      governorStep();
    };
    if (LowLink.size() < VisitEpoch.size())
      LowLink.resize(VisitEpoch.size());

    push(Root);
    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      NodeId U = F.Node;
      if (F.EdgeIt != F.EdgeEnd) {
        NodeId W = find(*F.EdgeIt);
        ++F.EdgeIt;
        if (W == U)
          continue;
        if (VisitEpoch[W] != CurrentEpoch) {
          push(W);
        } else if (OnStackEpoch[W] == CurrentEpoch &&
                   DfsNum[W] < LowLink[U]) {
          LowLink[U] = DfsNum[W];
        }
        continue;
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        NodeId Parent = Dfs.back().Node;
        if (LowLink[U] < LowLink[Parent])
          LowLink[Parent] = LowLink[U];
      }
      if (LowLink[U] == DfsNum[U]) {
        // U roots an SCC: pop members; collapse if non-trivial. Members
        // above U on the stack merge into U's class; U itself is the
        // initial survivor.
        NodeId Survivor = U;
        uint64_t Members = 1;
        for (;;) {
          NodeId W = SccStack.back();
          SccStack.pop_back();
          OnStackEpoch[W] = 0;
          if (W == U)
            break;
          Survivor = merge(Survivor, W);
          ++Merges;
          ++Members;
        }
        if (Members > 1)
          obs::observe(obs::Hist::CycleSize, Members);
        // The survivor keeps a valid visited stamp so later edges into the
        // collapsed SCC are treated as done.
        VisitEpoch[Survivor] = CurrentEpoch;
        OnStackEpoch[Survivor] = 0;
      }
    }
    return Merges;
  }

  /// Scratch for resolveComplex's rep-hoisted deref lists (member to
  /// avoid per-group allocation; resolveComplex is not reentrant).
  std::vector<Deref> ScratchLoads, ScratchStores;
  /// Heap-backed scratch for compactSuccs (the rebuilt set is copied
  /// back into the node's arena-bound bitmap on assignment).
  SparseBitVector SuccScratch;

  std::vector<NodeId> MergeLog;
  std::vector<uint32_t> VisitEpoch;
  std::vector<uint32_t> DfsNum;
  std::vector<uint32_t> LowLink;
  std::vector<uint32_t> OnStackEpoch;
  uint32_t CurrentEpoch = 0;
  uint32_t NextDfsNum = 0;
};

} // namespace ag

#endif // AG_CORE_SOLVERCONTEXT_H
