//===- HcdOffline.cpp - Hybrid Cycle Detection offline analysis -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "core/HcdOffline.h"

#include "adt/Scc.h"
#include "obs/TraceRecorder.h"

#include <cassert>

using namespace ag;

HcdResult ag::runHcdOffline(const ConstraintSystem &CS) {
  obs::PhaseSpan Span("hcd_offline", "offline");
  const uint32_t N = CS.numNodes();
  // Offline node space: [0, N) are VAR nodes, [N, 2N) are REF nodes.
  std::vector<std::vector<uint32_t>> Succs(2 * size_t(N));
  for (const Constraint &C : CS.constraints()) {
    switch (C.Kind) {
    case ConstraintKind::AddressOf:
      break; // Base constraints are ignored.
    case ConstraintKind::Copy: // a = b: VAR(b) -> VAR(a)
      Succs[C.Src].push_back(C.Dst);
      break;
    case ConstraintKind::Load: // a = *b: REF(b) -> VAR(a)
      if (C.Offset == 0)
        Succs[N + size_t(C.Src)].push_back(C.Dst);
      break;
    case ConstraintKind::Store: // *a = b: VAR(b) -> REF(a)
      if (C.Offset == 0)
        Succs[C.Src].push_back(N + C.Dst);
      break;
    }
  }

  SccResult Scc = computeSccs(2 * N, Succs);

  HcdResult Result;
  Result.PreMerge.resize(N);
  for (NodeId V = 0; V != N; ++V)
    Result.PreMerge[V] = V;

  for (const std::vector<uint32_t> &Members : Scc.Members) {
    if (Members.size() < 2)
      continue;
    // Split members into VAR and REF nodes.
    NodeId FirstVar = InvalidNode;
    bool HasRef = false;
    for (uint32_t M : Members) {
      if (M < N) {
        if (FirstVar == InvalidNode)
          FirstVar = M;
      } else {
        HasRef = true;
      }
    }
    // "Because there are no constraints of the form *p = *q, no ref node
    // can have a reflexive edge and any non-trivial SCC containing a ref
    // node must also contain a non-ref node."
    assert(FirstVar != InvalidNode && "ref-only SCC cannot exist");

    if (!HasRef) {
      // Pure variable cycle: collapse offline.
      for (uint32_t M : Members)
        if (M != FirstVar) {
          Result.PreMerge[M] = FirstVar;
          ++Result.NumPreMerged;
        }
      continue;
    }
    ++Result.NumRefSccs;
    for (uint32_t M : Members)
      if (M >= N)
        Result.Lazy.emplace_back(M - N, FirstVar);
  }
  return Result;
}

std::vector<NodeId> ag::composeReps(const std::vector<NodeId> &Inner,
                                    const std::vector<NodeId> &Outer) {
  assert(Inner.size() == Outer.size() && "rep table size mismatch");
  std::vector<NodeId> Out(Inner.size());
  for (size_t V = 0; V != Inner.size(); ++V)
    Out[V] = Outer[Inner[V]];
  return Out;
}
