//===- PtsSet.h - Points-to set representation policies ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates two representations for points-to sets: the GCC
/// sparse bitmap and a per-variable BDD ("we give each variable its own BDD
/// to store its individual points-to set"), noting that switching is "a
/// simple modification". Here the switch is a policy type: solvers are
/// templates over a policy providing a Context (shared state — empty for
/// bitmaps, the BDD manager for BDDs) and a Set with the operations the
/// solvers need.
///
/// Policy interface:
///   struct Policy {
///     struct Context { explicit Context(uint32_t NumNodes); };
///     class Set {
///       bool insert(Context &, NodeId);        // true if newly added
///       bool unionWith(Context &, const Set &); // true if changed
///       bool equals(const Context &, const Set &) const;
///       bool contains(const Context &, NodeId) const;
///       bool empty() const;
///       size_t size(const Context &) const;
///       template <typename F> void forEach(const Context &, F) const;
///       void toBitmap(const Context &, SparseBitVector &) const;
///       void clearAndFree(Context &);           // release storage
///       size_t memoryBytes() const;             // owned bytes (bitmaps)
///     };
///   };
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_PTSSET_H
#define AG_CORE_PTSSET_H

#include "adt/ElementArena.h"
#include "adt/SparseBitVector.h"
#include "bdd/BddDomain.h"
#include "constraints/Constraint.h"

#include <memory>

namespace ag {

/// Result of a fused union across either policy: did the destination
/// change, and was it exactly equal to the source before the union.
struct SetUnionStatus {
  bool Changed;
  bool WasEqual;
};

/// Sparse-bitmap points-to sets (the GCC 4.1.1 representation).
struct BitmapPtsPolicy {
  struct Context {
    explicit Context(uint32_t /*NumNodes*/) {}
  };

  class Set {
  public:
    bool insert(Context &, NodeId N) { return Bits.set(N); }
    bool unionWith(Context &, const Set &RHS) {
      return Bits.unionWith(RHS.Bits);
    }

    /// Fused union + pre-union equality probe in one merge pass (the
    /// LCD edge loop wants both).
    SetUnionStatus unionWithStatus(Context &, const Set &RHS) {
      SparseBitVector::UnionResult R = Bits.unionWithStatus(RHS.Bits);
      return {R.Changed, R.WasEqual};
    }

    /// Fused union that visits every newly added element in ascending
    /// order during the same pass (difference propagation's
    /// forEachDiff + absorb as one walk). \p Fn must not mutate either
    /// operand. \returns true if this changed.
    template <typename F>
    bool unionWithVisitNew(Context &, const Set &RHS, F Fn) {
      return Bits.unionWithVisitNew(
          RHS.Bits, [&](uint32_t N) { Fn(static_cast<NodeId>(N)); });
    }

    /// Fused union that ORs the newly added bits into \p Delta during
    /// the same merge pass (difference propagation's producer side:
    /// \p Delta accumulates what arrived here since it was last
    /// drained). Word-level only — no per-bit iteration.
    bool unionWithDelta(Context &, const Set &RHS, Set &Delta) {
      return Bits.unionWithDelta(RHS.Bits, Delta.Bits);
    }

    /// Routes this set's element allocation through \p A (must precede
    /// any insertion; see SparseBitVector::setArena).
    void bindArena(ElementArena *A) { Bits.setArena(A); }
    bool intersectWith(Context &, const Set &RHS) {
      return Bits.intersectWith(RHS.Bits);
    }
    bool equals(const Context &, const Set &RHS) const {
      return Bits == RHS.Bits;
    }
    bool contains(const Context &, NodeId N) const { return Bits.test(N); }
    bool empty() const { return Bits.empty(); }
    size_t size(const Context &) const { return Bits.count(); }

    template <typename F> void forEach(const Context &, F Fn) const {
      for (uint32_t N : Bits)
        Fn(static_cast<NodeId>(N));
    }

    /// Visits the elements of this set that are not in \p Exclude.
    /// Allocation-free: a dual-cursor merge walk over the two element
    /// lists (no temporary difference vector is built).
    template <typename F>
    void forEachDiff(const Context &, const Set &Exclude, F Fn) const {
      Bits.forEachDiff(Exclude.Bits,
                       [&](uint32_t N) { Fn(static_cast<NodeId>(N)); });
    }

    void toBitmap(const Context &, SparseBitVector &Out) const {
      Out = Bits;
    }
    void clearAndFree(Context &) { Bits.clear(); }
    size_t memoryBytes() const { return Bits.memoryBytes(); }

    /// Bitmap-specific accessor for fast paths.
    const SparseBitVector &bits() const { return Bits; }

  private:
    SparseBitVector Bits;
  };
};

/// Per-variable BDD points-to sets sharing one manager ("unlike BLQ, which
/// stores the entire points-to solution in a single BDD, we give each
/// variable its own BDD").
struct BddPtsPolicy {
  struct Context {
    explicit Context(uint32_t NumNodes)
        : Mgr(std::make_unique<BddManager>(1u << 12)),
          Doms(std::make_unique<BddDomains>(*Mgr,
                                            std::vector<uint64_t>{
                                                std::max(NumNodes, 2u)})) {}

    /// One shared manager and a single object domain.
    std::unique_ptr<BddManager> Mgr;
    std::unique_ptr<BddDomains> Doms;
    static constexpr unsigned ObjDom = 0;
  };

  class Set {
  public:
    bool insert(Context &Ctx, NodeId N) {
      ensure(Ctx);
      Bdd Elem = Ctx.Doms->element(Context::ObjDom, N);
      Bdd New = Ctx.Mgr->bddOr(Val, Elem);
      bool Changed = New.ref() != Val.ref();
      Val = std::move(New);
      return Changed;
    }

    bool unionWith(Context &Ctx, const Set &RHS) {
      if (RHS.Val.manager() == nullptr)
        return false;
      ensure(Ctx);
      Bdd New = Ctx.Mgr->bddOr(Val, RHS.Val);
      bool Changed = New.ref() != Val.ref();
      Val = std::move(New);
      return Changed;
    }

    /// Hash consing makes the equality half O(1), so the "fused" form
    /// is just the two calls — it exists so solver templates can use one
    /// spelling for both policies.
    SetUnionStatus unionWithStatus(Context &Ctx, const Set &RHS) {
      bool Eq = equals(Ctx, RHS);
      bool Changed = unionWith(Ctx, RHS);
      return {Changed, Eq};
    }

    /// Union + visit of the newly added elements. BDD diff is already a
    /// single hash-consed operation, so this is diff-visit then union.
    /// \p Fn must not mutate either operand.
    template <typename F>
    bool unionWithVisitNew(Context &Ctx, const Set &RHS, F Fn) {
      RHS.forEachDiff(Ctx, *this, Fn);
      return unionWith(Ctx, RHS);
    }

    /// Union recording the growth into \p Delta. The BDD delta is the
    /// whole source set on any change — over-approximate but sound:
    /// difference propagation may re-propagate known elements, it just
    /// must never miss a new one. (An exact diff would cost a bddDiff
    /// per changed union, which the hash-consed or already dominates.)
    bool unionWithDelta(Context &Ctx, const Set &RHS, Set &Delta) {
      bool Changed = unionWith(Ctx, RHS);
      if (Changed)
        Delta.unionWith(Ctx, RHS);
      return Changed;
    }

    /// Arena binding is meaningless for BDD sets (storage lives in the
    /// shared node table); accepted so templated solver code compiles.
    void bindArena(ElementArena *) {}

    bool intersectWith(Context &Ctx, const Set &RHS) {
      if (empty())
        return false;
      if (RHS.Val.manager() == nullptr) {
        bool Changed = !Val.isFalse();
        Val = Ctx.Mgr->falseBdd();
        return Changed;
      }
      Bdd New = Ctx.Mgr->bddAnd(Val, RHS.Val);
      bool Changed = New.ref() != Val.ref();
      Val = std::move(New);
      return Changed;
    }

    /// Hash consing makes this O(1) — an interesting interaction with
    /// LCD's equality heuristic.
    bool equals(const Context &, const Set &RHS) const {
      BddNodeRef A = Val.manager() ? Val.ref() : BddFalse;
      BddNodeRef B = RHS.Val.manager() ? RHS.Val.ref() : BddFalse;
      return A == B;
    }

    bool contains(const Context &Ctx, NodeId N) const {
      if (Val.manager() == nullptr)
        return false;
      // Walk the element's bits down the BDD.
      const std::vector<uint32_t> &Levels =
          Ctx.Doms->levels(Context::ObjDom);
      uint32_t NumBits = static_cast<uint32_t>(Levels.size());
      BddNodeRef Cur = Val.ref();
      for (uint32_t J = 0; J != NumBits && Cur > BddTrue; ++J) {
        if (Ctx.Mgr->level(Cur) != Levels[J])
          continue; // Unconstrained bit.
        bool Bit = (N >> (NumBits - 1 - J)) & 1;
        Cur = Bit ? Ctx.Mgr->high(Cur) : Ctx.Mgr->low(Cur);
      }
      return Cur != BddFalse;
    }

    bool empty() const {
      return Val.manager() == nullptr || Val.isFalse();
    }

    size_t size(const Context &Ctx) const {
      if (empty())
        return 0;
      return Ctx.Doms->countElements(Val, Context::ObjDom);
    }

    template <typename F> void forEach(const Context &Ctx, F Fn) const {
      if (empty())
        return;
      // This is the bdd_allsat path the paper calls out as the main cost
      // of the BDD representation.
      Ctx.Doms->forEachElement(Val, Context::ObjDom, [&](uint64_t V) {
        Fn(static_cast<NodeId>(V));
      });
    }

    /// Visits the elements of this set that are not in \p Exclude.
    template <typename F>
    void forEachDiff(Context &Ctx, const Set &Exclude, F Fn) const {
      if (empty())
        return;
      if (Exclude.Val.manager() == nullptr) {
        forEach(Ctx, Fn);
        return;
      }
      Bdd Diff = Ctx.Mgr->bddDiff(Val, Exclude.Val);
      if (Diff.isFalse())
        return;
      Ctx.Doms->forEachElement(Diff, Context::ObjDom, [&](uint64_t V) {
        Fn(static_cast<NodeId>(V));
      });
    }

    void toBitmap(const Context &Ctx, SparseBitVector &Out) const {
      Out.clear();
      forEach(Ctx, [&](NodeId N) { Out.set(N); });
    }

    void clearAndFree(Context &) { Val = Bdd(); }

    /// Storage is shared in the manager's node table; attribute nothing
    /// per set (the table is tracked via MemCategory::BddTable).
    size_t memoryBytes() const { return 0; }

  private:
    void ensure(Context &Ctx) {
      if (Val.manager() == nullptr)
        Val = Ctx.Mgr->falseBdd();
    }

    Bdd Val;
  };
};

} // namespace ag

#endif // AG_CORE_PTSSET_H
