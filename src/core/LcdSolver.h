//===- LcdSolver.h - Lazy Cycle Detection solver ----------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Lazy Cycle Detection algorithm (Figure 2), optionally
/// combined with Hybrid Cycle Detection (the LCD+HCD headline algorithm).
/// Before propagating across an edge n -> z, if pts(n) == pts(z) and the
/// edge hasn't triggered a search before, a DFS rooted at z detects and
/// collapses cycles. The worklist is LRF-prioritized and divided into
/// current/next halves, as described in Section 5.1.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_LCDSOLVER_H
#define AG_CORE_LCDSOLVER_H

#include "adt/Worklist.h"
#include "core/HcdOffline.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

#include <unordered_set>

namespace ag {

/// Lazy Cycle Detection (optionally +HCD), templated over the points-to
/// set representation.
template <typename PtsPolicy> class LcdSolver {
public:
  /// \p Hcd, when non-null, enables the hybrid online collapsing rule
  /// (LCD+HCD). \p SeedReps pre-merges nodes (OVS and/or HCD offline).
  LcdSolver(const ConstraintSystem &CS, SolverStats &Stats,
            const SolverOptions &Opts, const HcdResult *Hcd = nullptr,
            const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps), Opts(Opts), W(Opts.Worklist) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.Governor = Opts.Governor;
    if (Hcd)
      for (const auto &[N, Target] : Hcd->Lazy)
        G.HcdTargets[G.find(N)].push_back(Target);
    // The R set ends up holding one entry per triggered edge — the same
    // order of magnitude as the copy-edge count. Reserving up front keeps
    // the hot loop's insertions from rehashing the table O(log n) times
    // (complex-constraint resolution roughly doubles the initial edges).
    if (Opts.LcdEdgeOnce)
      Triggered.reserve(2 * CS.countKind(ConstraintKind::Copy) + 16);
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    W.grow(N);
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        W.push(V);
    return run();
  }

  /// Resumes from externally installed state: only \p Seeds (routed
  /// through find()) enter the initial worklist, instead of every node
  /// with a non-empty points-to set. The warm-start path installs a prior
  /// fixpoint into context() and seeds exactly the delta-touched nodes;
  /// monotonicity makes the result the least fixpoint of the full system
  /// as long as every node whose inputs changed is seeded.
  PointsToSolution solveFrom(const std::vector<NodeId> &Seeds) {
    W.grow(G.CS.numNodes());
    for (NodeId V : Seeds)
      W.push(G.find(V));
    return run();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  /// The Figure-2 worklist loop, from whatever W currently holds.
  PointsToSolution run() {
    auto Push = [this](NodeId V) { W.push(V); };
    while (!W.empty()) {
      NodeId Node = G.find(W.pop());
      ++G.Stats.WorklistPops;
      if ((G.Stats.WorklistPops & 1023) == 0) {
        obs::observe(obs::Hist::WorklistDepth, W.size());
        if (obs::traceEnabled())
          obs::TraceRecorder::instance().counter("worklist_depth", W.size());
      }
      G.governorStep();

      // HCD first (Figure 5's check of the lazy table L).
      Node = G.applyHcd(Node, Push);

      // Resolve the complex constraints indexed at this node.
      G.resolveComplex(Node, Push);

      // Propagate along outgoing edges, lazily sniffing for cycles.
      bool Restart = false;
      for (uint32_t Raw : G.Succs[Node]) {
        NodeId Z = G.find(Raw);
        if (Z == Node)
          continue;
        // The lazy trigger: identical points-to sets suggest a cycle —
        // but never retrigger on the same edge (rule R in Figure 2). The
        // R-set test runs first: it is a hash probe, while set equality
        // costs a full scan exactly when the sets are equal (the common
        // case at convergence).
        if (!alreadyTriggered(Node, Z) && !G.Pts[Node].empty() &&
            G.Pts[Z].equals(G.Ctx, G.Pts[Node]) &&
            markTriggered(Node, Z)) {
          if (obs::traceEnabled())
            obs::TraceRecorder::instance().instant("lcd_trigger", "solver",
                                                   "root", Z);
          uint32_t Merges = G.detectAndCollapseFrom(Z);
          if (obs::traceEnabled())
            obs::TraceRecorder::instance().instant("lcd_collapse", "solver",
                                                   "merges", Merges);
          if (Merges > 0) {
            // Re-queue every merge survivor (their points-to sets grew).
            // The edge iterator only becomes unsafe when Node itself was
            // involved: merged away, or the survivor whose edge set was
            // rewritten — then requeue Node and restart.
            NodeId NewRep = G.find(Node);
            bool NodeTouched = NewRep != Node;
            G.drainMergeLog([&](NodeId S) {
              W.push(S);
              NodeTouched |= S == NewRep;
            });
            if (NodeTouched) {
              W.push(NewRep);
              Restart = true;
              break;
            }
          }
        }
        if (G.propagate(Node, Z))
          W.push(Z);
      }
      if (Restart)
        continue;
    }
    return G.extractSolution();
  }

  /// The R set, split into a cheap pre-test and the insertion. With
  /// LcdEdgeOnce disabled (ablation), edges always (re)trigger.
  bool alreadyTriggered(NodeId From, NodeId To) {
    if (!Opts.LcdEdgeOnce)
      return false;
    ++G.Stats.LcdTriggerProbes;
    return Triggered.count((uint64_t(From) << 32) | To) != 0;
  }
  bool markTriggered(NodeId From, NodeId To) {
    if (!Opts.LcdEdgeOnce)
      return true;
    Triggered.insert((uint64_t(From) << 32) | To);
    return true;
  }

  SolverContext<PtsPolicy> G;
  SolverOptions Opts;
  Worklist W;
  std::unordered_set<uint64_t> Triggered;
};

} // namespace ag

#endif // AG_CORE_LCDSOLVER_H
