//===- LcdSolver.h - Lazy Cycle Detection solver ----------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Lazy Cycle Detection algorithm (Figure 2), optionally
/// combined with Hybrid Cycle Detection (the LCD+HCD headline algorithm).
/// Before propagating across an edge n -> z, if pts(n) == pts(z) and the
/// edge hasn't triggered a search before, a DFS rooted at z detects and
/// collapses cycles. The worklist is LRF-prioritized and divided into
/// current/next halves, as described in Section 5.1.
///
/// The edge loop uses difference propagation (Pearce et al. 2003): each
/// pop pushes only the bits that arrived at the node since its last
/// completed sweep, not the full set — the fixpoint's tail is dominated
/// by re-unions that change nothing, and deltas make those near-free.
/// New edges (complex-constraint resolution) and cycle merges carry the
/// full set once at birth; monotonicity gives the same unique least
/// fixpoint either way.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_LCDSOLVER_H
#define AG_CORE_LCDSOLVER_H

#include "adt/Worklist.h"
#include "core/HcdOffline.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

#include <unordered_set>

namespace ag {

/// Lazy Cycle Detection (optionally +HCD), templated over the points-to
/// set representation.
template <typename PtsPolicy> class LcdSolver {
public:
  /// \p Hcd, when non-null, enables the hybrid online collapsing rule
  /// (LCD+HCD). \p SeedReps pre-merges nodes (OVS and/or HCD offline).
  LcdSolver(const ConstraintSystem &CS, SolverStats &Stats,
            const SolverOptions &Opts, const HcdResult *Hcd = nullptr,
            const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps), Opts(Opts), W(Opts.Worklist) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.UseDeltaPropagation = true;
    G.Governor = Opts.Governor;
    if (Hcd)
      for (const auto &[N, Target] : Hcd->Lazy)
        G.HcdTargets[G.find(N)].push_back(Target);
    // The R set ends up holding one entry per triggered edge — the same
    // order of magnitude as the copy-edge count. Reserving up front keeps
    // the hot loop's insertions from rehashing the table O(log n) times
    // (complex-constraint resolution roughly doubles the initial edges).
    if (Opts.LcdEdgeOnce)
      Triggered.reserve(2 * CS.countKind(ConstraintKind::Copy) + 16);
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    W.grow(N);
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty()) {
        G.seedDelta(V);
        W.push(V);
      }
    return run();
  }

  /// Resumes from externally installed state: only \p Seeds (routed
  /// through find()) enter the initial worklist, instead of every node
  /// with a non-empty points-to set. The warm-start path installs a prior
  /// fixpoint into context() and seeds exactly the delta-touched nodes;
  /// monotonicity makes the result the least fixpoint of the full system
  /// as long as every node whose inputs changed is seeded.
  PointsToSolution solveFrom(const std::vector<NodeId> &Seeds) {
    W.grow(G.CS.numNodes());
    for (NodeId V : Seeds) {
      NodeId R = G.find(V);
      G.seedDelta(R);
      W.push(R);
    }
    return run();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  /// The Figure-2 worklist loop, from whatever W currently holds.
  PointsToSolution run() {
    auto Push = [this](NodeId V) { W.push(V); };
    // New edges found while walking a points-to set must not propagate
    // mid-walk (the union target can alias the walked set); collect
    // them and carry the full source set after the walk completes.
    std::vector<std::pair<NodeId, NodeId>> NewEdges;
    while (!W.empty()) {
      NodeId Node = G.find(W.pop());
      ++G.Stats.WorklistPops;
      if ((G.Stats.WorklistPops & 1023) == 0) {
        obs::observe(obs::Hist::WorklistDepth, W.size());
        if (obs::traceEnabled())
          obs::TraceRecorder::instance().counter("worklist_depth", W.size());
      }
      G.governorStep();

      // HCD first (Figure 5's check of the lazy table L).
      Node = G.applyHcd(Node, Push);

      // Resolve the complex constraints indexed at this node, with the
      // pending delta as the candidate frontier — the delta invariant
      // guarantees every unresolved bit is still in Delta[Node], so the
      // frontier merge walks the small delta instead of the whole set.
      // A brand-new edge has seen none of its source's set, so it gets
      // one full (birth) propagation; from then on deltas suffice.
      // Birth propagation retires Figure 1's push-the-source insertion
      // (requeueing the source only served to carry its set across the
      // new edge, which just happened), except when the destination is
      // Node itself: those bits arrive after this resolve pass ran, so
      // loop until Node stops growing — they must be resolved before
      // the delta they landed in is swept and cleared below.
      for (bool NodeGrew = true; NodeGrew;) {
        NodeGrew = false;
        NewEdges.clear();
        G.resolveComplexFrom(
            Node, G.pendingFrontier(Node), [](NodeId) {},
            [&](NodeId F, NodeId T) { NewEdges.push_back({F, T}); });
        for (auto [F, T] : NewEdges) {
          if (!G.propagateFull(F, T))
            continue;
          if (T == Node)
            NodeGrew = true;
          else
            W.push(T);
        }
      }
      // Propagate this node's pending delta along outgoing edges,
      // lazily sniffing for cycles.
      bool Restart = false;
      bool NodeEmpty = G.Pts[Node].empty();
      bool FullPending = G.FullDelta[Node] && !NodeEmpty;
      bool HaveDelta = FullPending || !G.Delta[Node].empty();
      uint32_t SweptTargets = 0, StaleTargets = 0;
      for (uint32_t Raw : G.Succs[Node]) {
        NodeId Z = G.find(Raw);
        ++SweptTargets;
        if (Z != Raw)
          ++StaleTargets;
        if (Z == Node)
          continue;
        bool Changed = HaveDelta && (FullPending ? G.propagateFull(Node, Z)
                                                 : G.propagateDelta(Node, Z));
        if (Changed)
          W.push(Z);
        // The lazy trigger: identical points-to sets suggest a cycle —
        // but never retrigger on the same edge (rule R in Figure 2).
        // An unchanged destination is equal after the union iff it was
        // equal before, so probing equality post-union on the !Changed
        // path is exactly Figure 2's pre-propagation pts(n) == pts(z)
        // check. The R set is probed *before* the equality test: a hash
        // find is a handful of ns, while equality on sets that really
        // are equal (the common steady state on converged edges) walks
        // every word — and an edge that triggered once stays equal and
        // would pay that walk on every subsequent sweep. Same triggers
        // fire either way; only the probe cost moves.
        if (!Changed && !NodeEmpty &&
            !alreadyTriggered(Node, Z) &&
            G.Pts[Node].equals(G.Ctx, G.Pts[Z]) && markTriggered(Node, Z)) {
          if (obs::traceEnabled())
            obs::TraceRecorder::instance().instant("lcd_trigger", "solver",
                                                   "root", Z);
          uint32_t Merges = G.detectAndCollapseFrom(Z);
          if (obs::traceEnabled())
            obs::TraceRecorder::instance().instant("lcd_collapse", "solver",
                                                   "merges", Merges);
          if (Merges > 0) {
            // Re-queue every merge survivor (their points-to sets grew).
            // The edge iterator only becomes unsafe when Node itself was
            // involved: merged away, or the survivor whose edge set was
            // rewritten — then requeue Node and restart.
            NodeId NewRep = G.find(Node);
            bool NodeTouched = NewRep != Node;
            G.drainMergeLog([&](NodeId S) {
              W.push(S);
              NodeTouched |= S == NewRep;
            });
            if (NodeTouched) {
              W.push(NewRep);
              Restart = true;
              break;
            }
          }
        }
      }
      if (Restart)
        continue;
      // Clean sweep: every successor has absorbed this node's pending
      // frontier. (On Restart the node re-queues with its delta and
      // full-pending flag intact, so no arrival is ever dropped.)
      G.clearPending(Node);
      // Cycle collapses leave merged-away target ids behind; once a
      // quarter of this node's targets are stale, every future sweep
      // (and Tarjan search) is paying find() plus a duplicate no-op
      // union per stale id — rewrite the edge bitmap through find()
      // once instead.
      if (StaleTargets * 4 >= SweptTargets && SweptTargets >= 8)
        G.compactSuccs(Node);
    }
    return G.extractSolution();
  }

  /// The R set, split into a cheap pre-test and the insertion. With
  /// LcdEdgeOnce disabled (ablation), edges always (re)trigger.
  bool alreadyTriggered(NodeId From, NodeId To) {
    if (!Opts.LcdEdgeOnce)
      return false;
    ++G.Stats.LcdTriggerProbes;
    return Triggered.count((uint64_t(From) << 32) | To) != 0;
  }
  bool markTriggered(NodeId From, NodeId To) {
    if (!Opts.LcdEdgeOnce)
      return true;
    Triggered.insert((uint64_t(From) << 32) | To);
    return true;
  }

  SolverContext<PtsPolicy> G;
  SolverOptions Opts;
  Worklist W;
  std::unordered_set<uint64_t> Triggered;
};

} // namespace ag

#endif // AG_CORE_LCDSOLVER_H
