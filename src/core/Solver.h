//===- Solver.h - Common solver API -----------------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The umbrella API for the nine solvers the paper evaluates: the three
/// prior state-of-the-art algorithms (HT, PKH, BLQ), the paper's two new
/// ones (LCD, HCD), and the four HCD-enhanced combinations, plus the naive
/// Figure-1 oracle. See solvers/Solve.h for the entry point.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_SOLVER_H
#define AG_CORE_SOLVER_H

#include "adt/Worklist.h"

#include <cstdint>
#include <string>

namespace ag {

class SolveGovernor;

/// The algorithms evaluated in the paper (Table 3).
enum class SolverKind {
  Naive,  ///< Figure 1: dynamic transitive closure, no cycle detection.
  HT,     ///< Heintze-Tardieu: pre-transitive graph + reachability queries.
  PKH,    ///< Pearce-Kelly-Hankin: explicit closure + periodic SCC sweeps.
  BLQ,    ///< Berndl-Lhotak-Qian: whole-solution BDD relations.
  LCD,    ///< Lazy Cycle Detection (this paper).
  HCD,    ///< Hybrid Cycle Detection standalone (this paper, Figure 5).
  HTHCD,  ///< HT + HCD.
  PKHHCD, ///< PKH + HCD.
  BLQHCD, ///< BLQ + HCD.
  LCDHCD, ///< LCD + HCD: the paper's headline algorithm.
};

/// Returns the paper's name for \p Kind ("HT", "LCD+HCD", ...).
const char *solverKindName(SolverKind Kind);

/// All evaluated kinds, in the paper's table order.
inline constexpr SolverKind AllSolverKinds[] = {
    SolverKind::HT,     SolverKind::PKH,    SolverKind::BLQ,
    SolverKind::LCD,    SolverKind::HCD,    SolverKind::HTHCD,
    SolverKind::PKHHCD, SolverKind::BLQHCD, SolverKind::LCDHCD,
};

/// True if \p Kind runs the HCD offline pass and online collapsing.
inline bool usesHcd(SolverKind Kind) {
  return Kind == SolverKind::HCD || Kind == SolverKind::HTHCD ||
         Kind == SolverKind::PKHHCD || Kind == SolverKind::BLQHCD ||
         Kind == SolverKind::LCDHCD;
}

/// True if \p Kind names one of the implemented algorithms. Entry points
/// use this to reject out-of-range values (e.g. from casts of external
/// input) as a structured error instead of undefined dispatch.
inline bool isValidSolverKind(SolverKind Kind) {
  switch (Kind) {
  case SolverKind::Naive:
  case SolverKind::HT:
  case SolverKind::PKH:
  case SolverKind::BLQ:
  case SolverKind::LCD:
  case SolverKind::HCD:
  case SolverKind::HTHCD:
  case SolverKind::PKHHCD:
  case SolverKind::BLQHCD:
  case SolverKind::LCDHCD:
    return true;
  }
  return false;
}

/// Points-to set representation (Tables 3/4 vs 5/6). BLQ ignores this: its
/// whole-solution relation is always one BDD.
enum class PtsRepr {
  Bitmap, ///< GCC-style sparse bitmaps.
  Bdd,    ///< One BDD per variable, shared manager.
};

/// Tuning knobs; the defaults reproduce the paper's configuration.
struct SolverOptions {
  /// Worklist scheduling for the worklist solvers (paper: LRF + divided).
  WorklistPolicy Worklist = WorklistPolicy::DividedLrf;

  /// LCD's "never trigger cycle detection on the same edge twice" rule.
  /// Disabling it is an ablation only — expect large slowdowns.
  bool LcdEdgeOnce = true;

  /// Initial BDD node-table capacity for BLQ ("we allocate an initial pool
  /// of memory for the BDDs ... independent of benchmark size").
  uint32_t BlqInitialCapacity = 1u << 22;

  /// Difference resolution of complex constraints (shared engineering in
  /// SolverContext). Off re-scans the full points-to set on every visit,
  /// as the paper's pseudo-code literally does — an ablation that shows
  /// why real implementations track frontiers.
  bool DifferenceResolution = true;

  /// Resource governor enforcing a SolveBudget, or null for an un-governed
  /// run (the default; costs one pointer test per counted operation).
  /// Not owned; must outlive the solve. solveGoverned() installs this.
  SolveGovernor *Governor = nullptr;

  /// Worker-thread count for the parallel wavefront solver. 0 (default)
  /// keeps the sequential solvers. Any value >= 1 routes LCD and LCD+HCD
  /// solves over bitmap sets through ParallelLcdSolver with that many
  /// workers (1 still exercises the full sharded machinery on one worker
  /// thread); other kinds and the BDD representation ignore this — the
  /// BDD manager's hash-consed node table is inherently single-threaded.
  unsigned Threads = 0;

  /// Stall watchdog for the parallel solver: if > 0, a monitor thread
  /// samples worker heartbeats and converts a round in which no worker
  /// makes progress for this many seconds into a governed cancellation
  /// (StatusCode::Stalled) with a FlightRecorder dump, instead of an
  /// indefinite hang. 0 (default) disables the watchdog. Sequential
  /// solvers ignore this — a stalled single thread cannot be observed
  /// from within itself.
  double StallTimeoutSeconds = 0;
};

} // namespace ag

#endif // AG_CORE_SOLVER_H
