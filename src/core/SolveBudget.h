//===- SolveBudget.h - Resource budgets for solver runs ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver governor: a SolveBudget describes the resources one solve may
/// consume (wall-clock deadline, tracked-memory cap, propagation and edge
/// ceilings, a cooperative cancellation token), and a SolveGovernor enforces
/// it from inside the solver hot loops. Andersen-style closure is cubic in
/// the worst case, so a production service must bound every solve: when a
/// budget trips, the governor throws BudgetExceededError, the solver unwinds
/// cleanly, and solveGoverned() degrades to the unification-based
/// Steensgaard analysis (a cheap, sound over-approximation) or reports the
/// partial state with an explicit "unsound" flag.
///
/// Enforcement model: ceilings on propagations/edges are exact (checked on
/// every counted operation — one integer compare). Deadline, memory cap,
/// cancellation, and injected faults are checked at *cancellation points*:
/// once every SolveBudget::CheckIntervalOps counted operations, so the
/// steady-state overhead is one pointer test plus one increment per
/// operation and a clock read only every interval.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_SOLVEBUDGET_H
#define AG_CORE_SOLVEBUDGET_H

#include "adt/FaultInjector.h"
#include "adt/MemTracker.h"
#include "adt/Status.h"
#include "obs/Obs.h"
#include "obs/RequestContext.h"

#include <atomic>
#include <chrono>
#include <memory>

namespace ag {

class PointsToSolution;

/// Cooperative cancellation handle. Copies share one flag; the default-
/// constructed token has no flag and can never be cancelled (no allocation
/// on the un-governed path).
class CancelToken {
public:
  CancelToken() = default;

  /// Creates a token that can actually be cancelled.
  static CancelToken create() {
    CancelToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  /// Requests cancellation; the solve unwinds at its next check point.
  /// No-op on a default-constructed token.
  void requestCancel() const {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }

  bool cancelRequested() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// Resource limits for one solve. Zero means "unlimited" for every numeric
/// field, so the default budget never trips.
struct SolveBudget {
  /// Wall-clock limit in seconds, measured from governor construction
  /// (i.e. solve start). <= 0 disables the deadline.
  double TimeoutSeconds = 0;

  /// Cap on MemTracker's joint live bytes (process-wide tracked memory,
  /// the same quantity peakBytesJoint() records). 0 disables.
  uint64_t MaxMemoryBytes = 0;

  /// Ceiling on points-to propagations (the paper's dominant operation —
  /// the natural "step" budget). 0 disables.
  uint64_t MaxPropagations = 0;

  /// Ceiling on copy edges added to the online constraint graph. 0
  /// disables. (BLQ keeps edges as one BDD relation and does not count
  /// individual insertions; bound it by time/steps/memory instead.)
  uint64_t MaxEdges = 0;

  /// Cooperative cancellation; default token never fires.
  CancelToken Cancel;

  /// Degrade to Steensgaard when the precise solve trips. When false, the
  /// caller instead receives the partial (unsound) state.
  bool AllowFallback = true;

  /// Counted operations between full checks (deadline/memory/cancel).
  /// Lower values tighten reaction latency at the cost of clock reads.
  uint32_t CheckIntervalOps = 1024;

  /// True if nothing is limited and no cancellation is possible, i.e. the
  /// governor could never trip.
  bool unlimited() const {
    return TimeoutSeconds <= 0 && MaxMemoryBytes == 0 &&
           MaxPropagations == 0 && MaxEdges == 0 &&
           !Cancel.cancelRequested();
  }
};

/// Thrown by the governor when a budget trips. Solvers are exception-safe:
/// the throw happens only at counted operations and cancellation points,
/// never mid-mutation of a data structure. The dispatch layer attaches the
/// partial solution (best effort) before the error reaches solveGoverned.
class BudgetExceededError {
public:
  explicit BudgetExceededError(Status St) : St(std::move(St)) {}

  const Status &status() const { return St; }

  /// Best-effort snapshot of the interrupted solve (may stay null).
  const std::shared_ptr<PointsToSolution> &partial() const {
    return Partial;
  }
  void setPartial(std::shared_ptr<PointsToSolution> P) {
    Partial = std::move(P);
  }

private:
  Status St;
  std::shared_ptr<PointsToSolution> Partial;
};

/// Enforces one SolveBudget over one solve. Solvers hold a pointer to the
/// governor (null when un-governed) and report counted operations; the
/// governor throws BudgetExceededError the moment a limit is exceeded.
class SolveGovernor {
public:
  explicit SolveGovernor(const SolveBudget &Budget) : Budget(Budget) {
    if (Budget.TimeoutSeconds > 0) {
      HasDeadline = true;
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(Budget.TimeoutSeconds));
    }
    // Check immediately on the first counted operation, so an already-
    // expired deadline or pre-cancelled token trips before real work.
    OpsUntilCheck = 0;
  }

  /// Charge publication: whatever this governor counted is folded into the
  /// active request's telemetry (serve path; no-op elsewhere). Running in
  /// the destructor covers every exit — normal completion, budget-trip
  /// unwind, and escalation — without touching the solver hot loops.
  ~SolveGovernor() {
    obs::noteGovernorCharges(Propagations, Edges);
  }
  SolveGovernor(const SolveGovernor &) = delete;
  SolveGovernor &operator=(const SolveGovernor &) = delete;

  /// A generic cancellation point (worklist pops, DFS visits, BDD rounds).
  /// Contributes to the periodic deadline/memory/cancel check.
  void onStep() { tick(); }

  /// Counts one points-to propagation against the step ceiling.
  void onPropagation() {
    if (++Propagations > Budget.MaxPropagations &&
        Budget.MaxPropagations != 0)
      trip(Status::stepLimit("propagation budget of " +
                             std::to_string(Budget.MaxPropagations) +
                             " exceeded"));
    tick();
  }

  /// Counts one copy-edge insertion against the edge ceiling.
  void onEdgeAdded() {
    if (++Edges > Budget.MaxEdges && Budget.MaxEdges != 0)
      trip(Status::stepLimit("edge budget of " +
                             std::to_string(Budget.MaxEdges) + " exceeded"));
    tick();
  }

  /// Thread-safe, non-throwing budget preview for parallel worker threads.
  /// \p Props and \p Edges are the solve's running totals (all workers
  /// combined, including operations already charged via chargeBatch).
  /// Returns the would-be trip status, or OK. Workers observe a non-OK
  /// result by cooperatively stopping at their next shard boundary; the
  /// coordinator then re-derives and throws the error on its own thread
  /// via chargeBatch/checkpoint, so the exception never crosses threads.
  /// Reads only immutable budget state, the atomic cancel flag, the clock,
  /// and MemTracker's atomics — safe from any thread. Injected faults are
  /// deliberately not consumed here (they are one-shot and belong to the
  /// coordinator's checkpoint).
  Status checkParallel(uint64_t Props, uint64_t Edges) const {
    if (Budget.MaxPropagations != 0 && Props > Budget.MaxPropagations)
      return Status::stepLimit("propagation budget of " +
                               std::to_string(Budget.MaxPropagations) +
                               " exceeded");
    if (Budget.MaxEdges != 0 && Edges > Budget.MaxEdges)
      return Status::stepLimit("edge budget of " +
                               std::to_string(Budget.MaxEdges) +
                               " exceeded");
    if (Budget.Cancel.cancelRequested())
      return Status::cancelled("cancellation requested");
    if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
      return Status::deadlineExceeded(
          "wall-clock budget of " +
          std::to_string(Budget.TimeoutSeconds) + " s exceeded");
    if (Budget.MaxMemoryBytes != 0 &&
        MemTracker::instance().currentBytesTotal() > Budget.MaxMemoryBytes)
      return Status::memoryLimit(
          "tracked memory exceeds cap of " +
          std::to_string(Budget.MaxMemoryBytes) + " bytes");
    return Status::okStatus();
  }

  /// Coordinator-thread entry point for parallel solves: folds one round's
  /// operation counts (summed over all workers) into the governor's totals,
  /// enforces the ceilings, and runs a full checkpoint. Throws
  /// BudgetExceededError on the calling (single) thread when any limit is
  /// exceeded — the parallel equivalent of onPropagation/onEdgeAdded.
  void chargeBatch(uint64_t NewProps, uint64_t NewEdges) {
    Propagations += NewProps;
    Edges += NewEdges;
    if (Budget.MaxPropagations != 0 &&
        Propagations > Budget.MaxPropagations)
      trip(Status::stepLimit("propagation budget of " +
                             std::to_string(Budget.MaxPropagations) +
                             " exceeded"));
    if (Budget.MaxEdges != 0 && Edges > Budget.MaxEdges)
      trip(Status::stepLimit("edge budget of " +
                             std::to_string(Budget.MaxEdges) + " exceeded"));
    checkpoint();
  }

  /// Forces a full budget check right now (deadline, memory, cancellation,
  /// injected faults). Solvers call this at coarse boundaries (per solver
  /// round) in addition to the periodic checks.
  void checkpoint() {
    OpsUntilCheck = Budget.CheckIntervalOps;

    // The latched-fault check must not be gated on anyArmed(): a one-shot
    // countdown fault disarms its site when it fires, leaving the latch
    // set with nothing armed. (Still cheap: one relaxed load when clear.)
    FaultInjector &Inj = FaultInjector::instance();
    if (Inj.consumePendingAllocationFault())
      trip(Status::memoryLimit("injected allocation failure"));
    if (Inj.anyArmed() && Inj.shouldFail(FaultSite::GovernorCheck))
      trip(Status::faultInjected("governor check fault armed"));
    if (Budget.Cancel.cancelRequested())
      trip(Status::cancelled("cancellation requested"));
    if (HasDeadline && std::chrono::steady_clock::now() >= Deadline)
      trip(Status::deadlineExceeded(
          "wall-clock budget of " +
          std::to_string(Budget.TimeoutSeconds) + " s exceeded"));
    if (Budget.MaxMemoryBytes != 0 &&
        MemTracker::instance().currentBytesTotal() > Budget.MaxMemoryBytes)
      trip(Status::memoryLimit(
          "tracked memory exceeds cap of " +
          std::to_string(Budget.MaxMemoryBytes) + " bytes"));
  }

  uint64_t propagations() const { return Propagations; }
  uint64_t edgesAdded() const { return Edges; }
  const SolveBudget &budget() const { return Budget; }

  /// The status of the first trip, Ok if the budget never tripped.
  const Status &tripStatus() const { return TripSt; }

private:
  void tick() {
    if (OpsUntilCheck == 0)
      checkpoint();
    else
      --OpsUntilCheck;
  }

  [[noreturn]] void trip(Status St) {
    if (TripSt.ok())
      TripSt = St;
    obs::onGovernorTrip(St);
    throw BudgetExceededError(std::move(St));
  }

  SolveBudget Budget;
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;
  uint64_t Propagations = 0;
  uint64_t Edges = 0;
  uint32_t OpsUntilCheck = 0;
  Status TripSt;
};

} // namespace ag

#endif // AG_CORE_SOLVEBUDGET_H
