//===- HcdSolver.h - Standalone Hybrid Cycle Detection solver ---*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's standalone HCD algorithm (Figure 5): the basic dynamic
/// transitive closure worklist of Figure 1, except that popping a node n
/// with a lazy tuple (n, a) preemptively collapses every member of pts(n)
/// with a. No graph traversal is ever performed — cycle knowledge comes
/// entirely from the offline analysis.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_HCDSOLVER_H
#define AG_CORE_HCDSOLVER_H

#include "adt/Worklist.h"
#include "core/HcdOffline.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

namespace ag {

/// Standalone Hybrid Cycle Detection, templated over the points-to set
/// representation.
template <typename PtsPolicy> class HcdSolver {
public:
  HcdSolver(const ConstraintSystem &CS, SolverStats &Stats,
            const SolverOptions &Opts, const HcdResult &Hcd,
            const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps), W(Opts.Worklist) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.Governor = Opts.Governor;
    for (const auto &[N, Target] : Hcd.Lazy)
      G.HcdTargets[G.find(N)].push_back(Target);
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    W.grow(N);
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        W.push(V);

    auto Push = [this](NodeId V) { W.push(V); };
    while (!W.empty()) {
      NodeId Node = G.find(W.pop());
      ++G.Stats.WorklistPops;
      G.governorStep();

      Node = G.applyHcd(Node, Push);
      G.resolveComplex(Node, Push);

      // Plain propagation — no cycle detection, no traversal (Figure 5).
      for (uint32_t Raw : G.Succs[Node]) {
        NodeId Z = G.find(Raw);
        if (Z == Node)
          continue;
        if (G.propagate(Node, Z))
          W.push(Z);
      }
    }
    return G.extractSolution();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  SolverContext<PtsPolicy> G;
  Worklist W;
};

} // namespace ag

#endif // AG_CORE_HCDSOLVER_H
