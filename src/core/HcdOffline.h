//===- HcdOffline.h - Hybrid Cycle Detection offline analysis ---*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline half of Hybrid Cycle Detection (Section 4.2): build an
/// offline constraint graph with a VAR node per variable plus a REF node
/// per dereferenced variable, with edges
///
///     a = b   =>  VAR(b) -> VAR(a)
///     a = *b  =>  REF(b) -> VAR(a)
///     *a = b  =>  VAR(b) -> REF(a)
///
/// (base constraints are ignored), then find SCCs with Tarjan's linear-time
/// algorithm. SCCs of only VAR nodes are collapsed immediately; for each
/// SCC containing REF nodes, one non-REF member b is chosen and a tuple
/// (a, b) is recorded for every REF member *a — telling the online solver
/// that everything in pts(a) can be preemptively collapsed with b, without
/// any graph traversal.
///
/// Dereferences with non-zero call offsets are conservatively excluded from
/// the offline graph (HCD then simply finds fewer cycles; soundness and
/// precision are unaffected).
///
//===----------------------------------------------------------------------===//

#ifndef AG_CORE_HCDOFFLINE_H
#define AG_CORE_HCDOFFLINE_H

#include "constraints/ConstraintSystem.h"

#include <vector>

namespace ag {

/// Result of the HCD offline pass.
struct HcdResult {
  /// Representative map for variables in VAR-only SCCs: PreMerge[v] == r
  /// means v is collapsed into r before solving starts. Identity elsewhere.
  std::vector<NodeId> PreMerge;

  /// The online table L as (n, target) pairs: when the solver processes
  /// node n, every v in pts(n) may be collapsed with target. At most one
  /// entry per n (stored sparse).
  std::vector<std::pair<NodeId, NodeId>> Lazy;

  /// Variables merged away offline (size of the "ant's" up-front win).
  uint64_t NumPreMerged = 0;
  /// Number of SCCs that contained at least one REF node.
  uint64_t NumRefSccs = 0;
};

/// Runs the HCD offline analysis over \p CS.
HcdResult runHcdOffline(const ConstraintSystem &CS);

/// Composes two representative maps: first apply \p Inner, then \p Outer
/// (both identity-defaulted). Used to stack OVS and HCD pre-merges.
std::vector<NodeId> composeReps(const std::vector<NodeId> &Inner,
                                const std::vector<NodeId> &Outer);

} // namespace ag

#endif // AG_CORE_HCDOFFLINE_H
