//===- WorkloadGen.cpp - Synthetic constraint-system generator ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "workload/WorkloadGen.h"

#include "adt/Rng.h"

#include <algorithm>
#include <cassert>

using namespace ag;

ConstraintSystem ag::generateRandom(const RandomSpec &Spec) {
  Rng R(Spec.Seed);
  ConstraintSystem CS;

  std::vector<NodeId> Vars, Objs, Funs;
  for (uint32_t I = 0; I != Spec.NumVars; ++I)
    Vars.push_back(CS.addNode("v" + std::to_string(I)));
  for (uint32_t I = 0; I != Spec.NumObjs; ++I)
    Objs.push_back(CS.addNode("o" + std::to_string(I)));
  for (uint32_t I = 0; I != Spec.NumFuns; ++I)
    Funs.push_back(
        CS.addFunction("f" + std::to_string(I), 1 + I % 3));

  if (Vars.empty() || Objs.empty())
    return CS;

  auto anyVar = [&] { return Vars[R.nextBelow(Vars.size())]; };
  auto anyObj = [&] {
    // Objects can themselves be pointers; mix vars and objs as sources of
    // copies etc. but address-of targets are objects/functions.
    uint64_t Pick = R.nextBelow(Objs.size() + Funs.size());
    return Pick < Objs.size() ? Objs[Pick] : Funs[Pick - Objs.size()];
  };
  auto anyNode = [&]() -> NodeId {
    uint64_t Pick = R.nextBelow(Vars.size() + Objs.size());
    return Pick < Vars.size() ? Vars[Pick] : Objs[Pick - Vars.size()];
  };
  // Guarantee a dereferenced variable a non-empty points-to set.
  auto saturate = [&](NodeId Base) {
    if (Spec.SaturateDerefs)
      CS.addAddressOf(Base, anyObj());
  };

  for (uint32_t I = 0; I != Spec.NumAddressOf; ++I)
    CS.addAddressOf(anyNode(), anyObj());
  for (uint32_t I = 0; I != Spec.NumCopies; ++I)
    CS.addCopy(anyNode(), anyNode());
  for (uint32_t I = 0; I != Spec.NumLoads; ++I) {
    NodeId Base = anyNode();
    saturate(Base);
    CS.addLoad(anyNode(), Base);
  }
  for (uint32_t I = 0; I != Spec.NumStores; ++I) {
    NodeId Base = anyNode();
    saturate(Base);
    CS.addStore(Base, anyNode());
  }

  // Explicit copy cycles (collapse fodder).
  for (uint32_t I = 0; I != Spec.NumCycles; ++I) {
    uint32_t Len =
        2 + static_cast<uint32_t>(R.nextBelow(
                std::max<uint32_t>(Spec.MaxCycleLen, 2) - 1));
    std::vector<NodeId> Ring;
    for (uint32_t J = 0; J != Len; ++J)
      Ring.push_back(anyNode());
    for (uint32_t J = 0; J != Len; ++J)
      CS.addCopy(Ring[(J + 1) % Len], Ring[J]);
  }

  // Indirect calls through function pointers: fp = &f; then parameter
  // stores and return loads at offsets.
  for (uint32_t I = 0; I != Spec.NumIndirectCalls && !Funs.empty(); ++I) {
    NodeId Fp = anyVar();
    NodeId F = Funs[R.nextBelow(Funs.size())];
    CS.addAddressOf(Fp, F);
    uint32_t NumParams = CS.sizeOf(F) - ConstraintSystem::FunctionParamOffset;
    for (uint32_t P = 0; P != NumParams; ++P)
      if (R.nextBool(0.7))
        CS.addStore(Fp, anyNode(),
                    ConstraintSystem::FunctionParamOffset + P);
    if (R.nextBool(0.7))
      CS.addLoad(anyVar(), Fp, ConstraintSystem::FunctionReturnOffset);
  }
  return CS;
}

ConstraintSystem ag::generateBenchmark(const BenchmarkSpec &Spec) {
  Rng R(Spec.Seed);
  ConstraintSystem CS;

  // --- Global address-taken objects (and a few global pointer vars).
  std::vector<NodeId> Globals;
  for (uint32_t I = 0; I != Spec.NumGlobals; ++I)
    Globals.push_back(CS.addNode(Spec.Name + ".g" + std::to_string(I)));

  // --- Functions: object + locals + heap sites.
  struct Function {
    NodeId Obj;
    uint32_t NumParams;
    std::vector<NodeId> Locals;
    std::vector<NodeId> HeapSites;
  };
  std::vector<Function> Funs;
  Funs.reserve(Spec.NumFunctions);
  for (uint32_t I = 0; I != Spec.NumFunctions; ++I) {
    Function F;
    F.NumParams = 1 + static_cast<uint32_t>(R.nextBelow(4));
    F.Obj = CS.addFunction(Spec.Name + ".f" + std::to_string(I),
                           F.NumParams);
    for (uint32_t V = 0; V != Spec.VarsPerFunction; ++V)
      F.Locals.push_back(CS.addNode());
    for (uint32_t H = 0; H != Spec.HeapSitesPerFunction; ++H)
      F.HeapSites.push_back(CS.addNode());
    Funs.push_back(std::move(F));
  }
  if (Funs.empty())
    return CS;

  auto anyGlobal = [&] { return Globals[R.nextBelow(Globals.size())]; };

  // --- Per-function bodies.
  for (Function &F : Funs) {
    auto local = [&] { return F.Locals[R.nextBelow(F.Locals.size())]; };
    // Contiguous target pools: the global runs this function's pointers
    // mostly point into (see BenchmarkSpec::TargetPoolsPerFunction).
    std::vector<uint32_t> PoolStarts;
    for (uint32_t I = 0; I != std::max(1u, Spec.TargetPoolsPerFunction);
         ++I)
      PoolStarts.push_back(
          static_cast<uint32_t>(R.nextBelow(Globals.size())));
    auto pooledGlobal = [&] {
      uint32_t Start = PoolStarts[R.nextBelow(PoolStarts.size())];
      uint32_t Width = std::max(1u, Spec.TargetPoolWidth);
      return Globals[(Start + R.nextBelow(Width)) % Globals.size()];
    };
    auto localOrParam = [&]() -> NodeId {
      uint64_t Pick = R.nextBelow(F.Locals.size() + F.NumParams);
      if (Pick < F.Locals.size())
        return F.Locals[Pick];
      return F.Obj + ConstraintSystem::FunctionParamOffset +
             static_cast<uint32_t>(Pick - F.Locals.size());
    };

    // Address-of: locals point at globals, heap sites, other locals.
    uint32_t NumAddr = static_cast<uint32_t>(
        Spec.AddressFan * F.Locals.size() + R.nextBelow(2));
    for (uint32_t I = 0; I != NumAddr; ++I) {
      double Kind = R.nextDouble();
      NodeId Target;
      if (Kind < 0.45)
        Target = pooledGlobal();
      else if (Kind < 0.7 && !F.HeapSites.empty())
        Target = F.HeapSites[R.nextBelow(F.HeapSites.size())];
      else
        Target = local();
      CS.addAddressOf(localOrParam(), Target);
    }

    // Copies: mostly within the function, some through globals.
    uint32_t NumCopy = static_cast<uint32_t>(
        Spec.CopyPerVar * F.Locals.size());
    for (uint32_t I = 0; I != NumCopy; ++I) {
      if (R.nextBool(0.12))
        CS.addCopy(localOrParam(), anyGlobal());
      else if (R.nextBool(0.12))
        CS.addCopy(anyGlobal(), localOrParam());
      else
        CS.addCopy(localOrParam(), localOrParam());
    }

    // Loads and stores.
    uint32_t NumDeref = static_cast<uint32_t>(
        Spec.LoadStorePerVar * F.Locals.size());
    for (uint32_t I = 0; I != NumDeref; ++I) {
      NodeId Base = localOrParam();
      // Keep dereferenced pointers non-empty (see RandomSpec note).
      CS.addAddressOf(Base, pooledGlobal());
      if (R.nextBool(0.5))
        CS.addLoad(localOrParam(), Base);
      else
        CS.addStore(Base, localOrParam());
    }

    // Compiler-temporary chains: v -> t1 -> ... -> tk -> w. Single-use
    // temporaries like these dominate CIL output and are what OVS merges.
    uint32_t NumChains = static_cast<uint32_t>(
        Spec.TempChainsPerVar * F.Locals.size());
    for (uint32_t I = 0; I != NumChains; ++I) {
      NodeId Prev = localOrParam();
      uint32_t Len = 1 + static_cast<uint32_t>(
                             R.nextBelow(Spec.TempChainLength));
      for (uint32_t J = 0; J != Len; ++J) {
        NodeId T = CS.addNode();
        CS.addCopy(T, Prev);
        Prev = T;
      }
      CS.addCopy(localOrParam(), Prev);
    }

    // Online cycles: a ring of copies closed through a dereference, so
    // the cycle appears only after the complex constraints resolve.
    uint32_t NumOnlineCycles = static_cast<uint32_t>(
        Spec.OnlineCyclesPerFunction + R.nextDouble());
    for (uint32_t I = 0; I != NumOnlineCycles; ++I) {
      NodeId Base = localOrParam();
      CS.addAddressOf(Base, pooledGlobal());
      uint32_t Len = 1 + static_cast<uint32_t>(R.nextBelow(
                             std::max(1u, Spec.OnlineCycleLength)));
      NodeId First = localOrParam();
      NodeId Prev = First;
      for (uint32_t J = 0; J != Len; ++J) {
        NodeId Next = local();
        CS.addCopy(Next, Prev);
        Prev = Next;
      }
      // Close the ring through *Base: store the tail, load the head.
      CS.addStore(Base, Prev);
      CS.addLoad(First, Base);
    }

    // Copy cycles within the function (online collapse fodder).
    uint32_t NumCycleVars = static_cast<uint32_t>(
        Spec.CycleFraction * F.Locals.size());
    if (NumCycleVars >= 2) {
      std::vector<NodeId> Ring;
      for (uint32_t I = 0; I != NumCycleVars; ++I)
        Ring.push_back(local());
      for (uint32_t I = 0; I != NumCycleVars; ++I)
        CS.addCopy(Ring[(I + 1) % NumCycleVars], Ring[I]);
    }
  }

  // --- Calls.
  for (Function &F : Funs) {
    auto localOrParam = [&]() -> NodeId {
      uint64_t Pick = R.nextBelow(F.Locals.size() + F.NumParams);
      if (Pick < F.Locals.size())
        return F.Locals[Pick];
      return F.Obj + ConstraintSystem::FunctionParamOffset +
             static_cast<uint32_t>(Pick - F.Locals.size());
    };
    size_t CallerIdx = static_cast<size_t>(&F - Funs.data());
    for (uint32_t CallNo = 0; CallNo != Spec.CallsPerFunction; ++CallNo) {
      // Call-graph locality: most calls target nearby functions (real
      // call graphs are modular), which also keeps the edge relations
      // BDD-compressible for BLQ, as real inputs are.
      size_t CalleeIdx;
      if (R.nextBool(0.8)) {
        int64_t Delta = static_cast<int64_t>(R.nextBelow(17)) - 8;
        int64_t Raw = static_cast<int64_t>(CallerIdx) + Delta;
        CalleeIdx = static_cast<size_t>(
            std::clamp<int64_t>(Raw, 0, Funs.size() - 1));
      } else {
        CalleeIdx = R.nextBelow(Funs.size());
      }
      const Function &Callee = Funs[CalleeIdx];
      if (R.nextDouble() < Spec.IndirectCallFraction) {
        // fp = &callee; args through *(fp+off); ret from *(fp+1).
        NodeId Fp = localOrParam();
        CS.addAddressOf(Fp, Callee.Obj);
        for (uint32_t P = 0; P != Callee.NumParams; ++P)
          CS.addStore(Fp, localOrParam(),
                      ConstraintSystem::FunctionParamOffset + P);
        CS.addLoad(localOrParam(), Fp,
                   ConstraintSystem::FunctionReturnOffset);
      } else {
        // Direct call: plain copies into parameter slots, out of return.
        for (uint32_t P = 0; P != Callee.NumParams; ++P)
          CS.addCopy(Callee.Obj + ConstraintSystem::FunctionParamOffset + P,
                     localOrParam());
        CS.addCopy(localOrParam(),
                   Callee.Obj + ConstraintSystem::FunctionReturnOffset);
      }
    }
    // Returns: the function's return slot gets a local.
    CS.addCopy(F.Obj + ConstraintSystem::FunctionReturnOffset,
               localOrParam());
  }
  return CS;
}

std::vector<BenchmarkSpec> ag::paperSuites(double Scale) {
  // Function counts are tuned so the generated reduced-constraint counts
  // sit roughly at paper_counts/8 at Scale=1, preserving the suite-to-
  // suite proportions of Table 2. Wine gets a larger AddressFan: the paper
  // highlights its order-of-magnitude larger final graph and average
  // points-to set size as the reason it solves far slower than Linux.
  auto scaled = [&](uint32_t N) {
    return std::max<uint32_t>(2, static_cast<uint32_t>(N * Scale));
  };
  std::vector<BenchmarkSpec> Suites;

  BenchmarkSpec Emacs;
  Emacs.Name = "emacs";
  Emacs.Seed = 101;
  Emacs.NumFunctions = scaled(110);
  Emacs.NumGlobals = scaled(260);
  Emacs.IndirectCallFraction = 0.06;
  Emacs.AddressFan = 0.35;
  Suites.push_back(Emacs);

  BenchmarkSpec Ghostscript;
  Ghostscript.Name = "ghostscript";
  Ghostscript.Seed = 102;
  Ghostscript.NumFunctions = scaled(330);
  Ghostscript.NumGlobals = scaled(700);
  Ghostscript.IndirectCallFraction = 0.12;
  Ghostscript.LoadStorePerVar = 1.1;
  Ghostscript.AddressFan = 0.45;
  Suites.push_back(Ghostscript);

  BenchmarkSpec Gimp;
  Gimp.Name = "gimp";
  Gimp.Seed = 103;
  Gimp.NumFunctions = scaled(470);
  Gimp.NumGlobals = scaled(900);
  Gimp.IndirectCallFraction = 0.1;
  Gimp.LoadStorePerVar = 1.0;
  Gimp.AddressFan = 0.5;
  Suites.push_back(Gimp);

  BenchmarkSpec Insight;
  Insight.Name = "insight";
  Insight.Seed = 104;
  Insight.NumFunctions = scaled(420);
  Insight.NumGlobals = scaled(800);
  Insight.IndirectCallFraction = 0.11;
  Insight.LoadStorePerVar = 1.1;
  Insight.AddressFan = 0.55;
  Suites.push_back(Insight);

  BenchmarkSpec Wine;
  Wine.Name = "wine";
  Wine.Seed = 105;
  Wine.NumFunctions = scaled(800);
  Wine.NumGlobals = scaled(1500);
  Wine.IndirectCallFraction = 0.12;
  Wine.LoadStorePerVar = 1.0;
  Wine.AddressFan = 1.6; // The big-points-to-sets benchmark.
  Wine.TargetPoolWidth = 48;
  Wine.TargetPoolsPerFunction = 5;
  Wine.CycleFraction = 0.09;
  Suites.push_back(Wine);

  BenchmarkSpec Linux;
  Linux.Name = "linux";
  Linux.Seed = 106;
  Linux.NumFunctions = scaled(1000);
  Linux.NumGlobals = scaled(1800);
  Linux.IndirectCallFraction = 0.14;
  Linux.LoadStorePerVar = 1.2;
  Linux.AddressFan = 0.45;
  Linux.CycleFraction = 0.08;
  Suites.push_back(Linux);

  return Suites;
}

DeltaSplit ag::splitDelta(const ConstraintSystem &Full, double DeltaFrac,
                          uint64_t Seed) {
  if (DeltaFrac < 0.0)
    DeltaFrac = 0.0;
  if (DeltaFrac > 1.0)
    DeltaFrac = 1.0;
  // Integer threshold against a fixed-point fraction: floating-point
  // distribution code differs between standard libraries, raw engine
  // draws do not.
  constexpr uint64_t Denom = 1u << 20;
  uint64_t Threshold = uint64_t(DeltaFrac * double(Denom));
  // Any positive fraction must be able to select: round sub-resolution
  // fractions up to one grid step (the empty-delta guard below still
  // backstops small systems).
  if (DeltaFrac > 0.0 && Threshold == 0)
    Threshold = 1;

  DeltaSplit Out;
  Out.Base = Full.cloneNodeTable();
  Rng R(Seed);
  for (const Constraint &C : Full.constraints()) {
    if (R.nextBelow(Denom) < Threshold)
      Out.Delta.push_back(C);
    else
      Out.Base.add(C);
  }
  // A requested-but-empty delta defeats the point of the split; hold out
  // the final constraint so incremental paths always have work.
  if (Threshold > 0 && Out.Delta.empty() && !Full.constraints().empty()) {
    Out.Delta.push_back(Full.constraints().back());
    ConstraintSystem Rebuilt = Full.cloneNodeTable();
    for (size_t I = 0; I + 1 < Full.constraints().size(); ++I)
      Rebuilt.add(Full.constraints()[I]);
    Out.Base = std::move(Rebuilt);
  }
  return Out;
}
