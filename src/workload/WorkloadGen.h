//===- WorkloadGen.h - Synthetic constraint-system generator ----*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators of constraint systems. Two flavors:
///
///  * generateRandom — small unstructured systems for property-based
///    testing (every solver must produce the naive oracle's solution).
///  * generateBenchmark — structured program-shaped systems reproducing
///    the paper's six benchmark suites at configurable scale: function
///    objects with parameters, direct and indirect calls, address-taken
///    pools, pointer chains, copy cycles, and load/store traffic tuned to
///    approximate each benchmark's base/simple/complex constraint mix
///    (Table 2).
///
/// Substitutes for: CIL-generated constraint files from Emacs, Ghostscript,
/// Gimp, Insight, Wine and the Linux kernel, which require the original
/// source trees and a C frontend toolchain. Solver behaviour is driven by
/// constraint-graph shape, which these generators control.
///
//===----------------------------------------------------------------------===//

#ifndef AG_WORKLOAD_WORKLOADGEN_H
#define AG_WORKLOAD_WORKLOADGEN_H

#include "constraints/ConstraintSystem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ag {

/// Parameters for the unstructured random generator.
struct RandomSpec {
  uint64_t Seed = 1;
  uint32_t NumVars = 64;      ///< Plain variables.
  uint32_t NumObjs = 16;      ///< Address-taken objects.
  uint32_t NumFuns = 2;       ///< Function objects (for offset derefs).
  uint32_t NumAddressOf = 40;
  uint32_t NumCopies = 80;
  uint32_t NumLoads = 20;
  uint32_t NumStores = 20;
  uint32_t NumCycles = 3;     ///< Explicit copy cycles.
  uint32_t MaxCycleLen = 5;
  uint32_t NumIndirectCalls = 4;
  /// Guarantee every dereferenced variable a non-empty points-to set —
  /// keeps HCD's preemptive collapsing precision-exact (see DESIGN.md).
  bool SaturateDerefs = true;
};

/// Generates an unstructured random system.
ConstraintSystem generateRandom(const RandomSpec &Spec);

/// Parameters for the program-shaped benchmark generator.
struct BenchmarkSpec {
  std::string Name = "bench";
  uint64_t Seed = 42;
  uint32_t NumFunctions = 200;
  uint32_t VarsPerFunction = 24; ///< Local pointer variables.
  uint32_t NumGlobals = 150;     ///< Global address-taken objects.
  uint32_t HeapSitesPerFunction = 2;
  uint32_t CallsPerFunction = 4;
  double IndirectCallFraction = 0.1;
  double LoadStorePerVar = 0.8; ///< Dereference density.
  double CopyPerVar = 1.6;      ///< Assignment density.
  double CycleFraction = 0.06;  ///< Vars participating in copy cycles.
  /// Average points-to fan: how many address-of constraints each pointer
  /// variable receives. Wine's large sets come from a high fan.
  double AddressFan = 0.5;
  /// CIL-style compiler temporaries: per local variable, this many chains
  /// of fresh single-use temps are threaded through assignments. These are
  /// exactly what offline variable substitution removes (the paper's 60-77%
  /// constraint reduction comes from such temporaries).
  double TempChainsPerVar = 0.7;
  uint32_t TempChainLength = 2;
  /// Address-of targets are drawn from a few contiguous global runs per
  /// function rather than uniformly: real programs' points-to sets are
  /// highly correlated (neighbouring declarations, shared tables), which
  /// is also what makes them BDD-compressible (Berndl et al. depend on
  /// this regularity).
  uint32_t TargetPoolsPerFunction = 3;
  uint32_t TargetPoolWidth = 12;
  /// Cycles that only materialize *online*: variable rings closed through
  /// a pointer dereference (store + load on the same base), invisible to
  /// plain copy-edge analysis. These are what online cycle detection —
  /// the paper's entire subject — exists for; offline copy cycles are
  /// already collapsed by OVS before any solver runs.
  double OnlineCyclesPerFunction = 1.5;
  uint32_t OnlineCycleLength = 3;
};

/// Generates a program-shaped benchmark system.
ConstraintSystem generateBenchmark(const BenchmarkSpec &Spec);

/// The six suites of the paper (Table 2), at a given scale factor.
/// Scale 1.0 approximates the paper's reduced-constraint counts divided by
/// about 8 — sized so the full 9-algorithm matrix finishes in minutes on a
/// laptop. The relative proportions between the suites follow the paper.
std::vector<BenchmarkSpec> paperSuites(double Scale = 1.0);

/// A base/delta partition of a constraint system, for incremental
/// (warm-start) benchmarking: the base is solved and snapshotted, the
/// delta replayed as the "new code" constraint stream.
struct DeltaSplit {
  /// Full node table plus the retained constraints, original order.
  ConstraintSystem Base;
  /// The held-out constraints, original order.
  std::vector<Constraint> Delta;
};

/// Deterministically holds out about \p DeltaFrac of \p Full's
/// constraints (per-constraint coin flips from \p Seed; same inputs give
/// the same split on every platform). \p DeltaFrac is clamped to [0, 1];
/// a positive fraction yields a non-empty delta whenever \p Full has any
/// constraints.
DeltaSplit splitDelta(const ConstraintSystem &Full, double DeltaFrac,
                      uint64_t Seed);

} // namespace ag

#endif // AG_WORKLOAD_WORKLOADGEN_H
