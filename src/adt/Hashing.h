//===- Hashing.h - Hash primitives for caches and snapshots -----*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, dependency-free hash primitives shared by the serving layer:
/// FNV-1a over byte ranges (the snapshot checksum — stable across builds
/// and platforms, unlike std::hash), a splitmix64 finalizer for scattering
/// structured integer keys (cache keys are packed node-id pairs whose low
/// bits are highly correlated), and a combiner for composite keys.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_HASHING_H
#define AG_ADT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace ag {

/// FNV-1a offset basis (the conventional 64-bit seed).
inline constexpr uint64_t Fnv1aBasis = 0xcbf29ce484222325ull;

/// Streams \p Len bytes at \p Data into an FNV-1a state \p H.
/// Deterministic across platforms; used for snapshot checksums.
inline uint64_t fnv1a(const void *Data, size_t Len,
                      uint64_t H = Fnv1aBasis) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// splitmix64 finalizer: a fast, well-scattering bijection on uint64_t.
/// Packed keys (two 23-bit node ids share one word) hash terribly through
/// identity; this spreads them across cache shards and buckets.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Combines two hashes (order-sensitive).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return mix64(Seed ^ (Value + 0x9e3779b97f4a7c15ull + (Seed << 6) +
                       (Seed >> 2)));
}

/// std-compatible hasher for pre-packed uint64_t keys.
struct Mix64Hash {
  size_t operator()(uint64_t X) const {
    return static_cast<size_t>(mix64(X));
  }
};

} // namespace ag

#endif // AG_ADT_HASHING_H
