//===- MemTracker.h - Byte-level memory accounting --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global byte counters used to reproduce the paper's memory-consumption
/// tables (Tables 4 and 6). Each data structure that dominates memory usage
/// (sparse bitmaps, BDD node tables, graph edge storage) reports allocations
/// against one of a small number of categories. Counters are plain atomics,
/// so there are no static constructors.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_MEMTRACKER_H
#define AG_ADT_MEMTRACKER_H

#include "adt/FaultInjector.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ag {

/// Categories of tracked allocations.
enum class MemCategory : unsigned {
  Bitmap,   ///< SparseBitVector elements (points-to sets and graph edges).
  BddTable, ///< BDD node table and operation caches.
  Other,    ///< Everything else explicitly tracked.
};

constexpr unsigned NumMemCategories = 3;

/// Tracks current and peak bytes per category.
///
/// The tracker is a process-wide singleton; analyses call \c reset() before
/// a run and read \c peakBytes() afterwards to report peak consumption the
/// way the paper reports megabytes per benchmark.
class MemTracker {
public:
  /// Returns the process-wide tracker.
  static MemTracker &instance() {
    static MemTracker Tracker;
    return Tracker;
  }

  /// Records an allocation of \p Bytes in category \p Cat.
  void allocate(MemCategory Cat, size_t Bytes) {
    unsigned I = static_cast<unsigned>(Cat);
    uint64_t Now = Current[I].fetch_add(Bytes, std::memory_order_relaxed) +
                   Bytes;
    // Racy max update is fine: benches are single-threaded, matching the
    // paper's single-threaded executables.
    uint64_t Prev = Peak[I].load(std::memory_order_relaxed);
    while (Now > Prev &&
           !Peak[I].compare_exchange_weak(Prev, Now,
                                          std::memory_order_relaxed)) {
    }
    // Joint accounting: the true high-water mark across categories, which
    // the solver governor's memory cap checks against.
    uint64_t NowTotal =
        CurrentTotal.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    uint64_t PrevTotal = PeakJoint.load(std::memory_order_relaxed);
    while (NowTotal > PrevTotal &&
           !PeakJoint.compare_exchange_weak(PrevTotal, NowTotal,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Records a deallocation of \p Bytes in category \p Cat.
  void release(MemCategory Cat, size_t Bytes) {
    Current[static_cast<unsigned>(Cat)].fetch_sub(Bytes,
                                                  std::memory_order_relaxed);
    CurrentTotal.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  /// Returns live bytes in category \p Cat.
  uint64_t currentBytes(MemCategory Cat) const {
    return Current[static_cast<unsigned>(Cat)].load(
        std::memory_order_relaxed);
  }

  /// Returns peak bytes in category \p Cat since the last reset.
  uint64_t peakBytes(MemCategory Cat) const {
    return Peak[static_cast<unsigned>(Cat)].load(std::memory_order_relaxed);
  }

  /// Returns live bytes summed over all categories (O(1): maintained as
  /// its own counter).
  uint64_t currentBytesTotal() const {
    return CurrentTotal.load(std::memory_order_relaxed);
  }

  /// Returns peak bytes summed over all categories. Note this sums per-
  /// category peaks, a slight over-approximation of the true joint peak —
  /// use peakBytesJoint() when the real high-water mark matters (budget
  /// enforcement).
  uint64_t peakBytesTotal() const {
    uint64_t Sum = 0;
    for (unsigned I = 0; I != NumMemCategories; ++I)
      Sum += Peak[I].load(std::memory_order_relaxed);
    return Sum;
  }

  /// Returns the true joint high-water mark since the last reset: the peak
  /// of the instantaneous sum over categories, not the sum of per-category
  /// peaks. Per-category peaks reached at different times do not inflate
  /// this value.
  uint64_t peakBytesJoint() const {
    return PeakJoint.load(std::memory_order_relaxed);
  }

  /// Resets peak counters to the current live values. Live counters are not
  /// touched: allocations outlive resets.
  void resetPeaks() {
    for (unsigned I = 0; I != NumMemCategories; ++I)
      Peak[I].store(Current[I].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    PeakJoint.store(CurrentTotal.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

private:
  MemTracker() = default;

  std::atomic<uint64_t> Current[NumMemCategories] = {};
  std::atomic<uint64_t> Peak[NumMemCategories] = {};
  std::atomic<uint64_t> CurrentTotal{0};
  std::atomic<uint64_t> PeakJoint{0};
};

/// Convenience wrappers so call sites stay short. Allocation is also a
/// fault-injection pressure point: an armed Allocation fault latches here
/// and surfaces at the governor's next budget check.
inline void memAllocate(MemCategory Cat, size_t Bytes) {
  MemTracker::instance().allocate(Cat, Bytes);
  FaultInjector::instance().hitAllocation();
}
inline void memRelease(MemCategory Cat, size_t Bytes) {
  MemTracker::instance().release(Cat, Bytes);
}

} // namespace ag

#endif // AG_ADT_MEMTRACKER_H
