//===- LruCache.h - Sharded LRU result cache --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded, mutex-per-shard LRU cache for query results. The serving
/// layer keys entries on canonical union-find representatives, so all
/// variables collapsed into one equivalence class share a single cache
/// slot; sharding keeps concurrent REPL/batch queries from serializing
/// on one lock.
///
/// Capacity 0 disables the cache entirely (every lookup misses, nothing
/// is stored) — the benchmark uses this to measure uncached throughput
/// through the identical code path.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_LRUCACHE_H
#define AG_ADT_LRUCACHE_H

#include "Hashing.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ag {

/// Aggregate counters across all shards. Eventually consistent: each
/// shard's counters are read under its own lock, so a concurrent mix of
/// hits and misses may be observed mid-update, but totals never go back
/// in time for a single-threaded observer.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
};

/// LRU cache split into \p NumShards independent shards, each guarded by
/// its own mutex. Keys are distributed by mix64(hash) so packed node-id
/// keys with correlated low bits still spread evenly.
template <typename K, typename V, typename Hash = Mix64Hash>
class ShardedLruCache {
public:
  /// \p Capacity is the total entry budget, divided evenly among shards
  /// (each shard gets at least one slot unless the total is zero).
  explicit ShardedLruCache(size_t Capacity, size_t NumShards = 8)
      : Shards(NumShards == 0 ? 1 : NumShards) {
    size_t N = Shards.size();
    size_t Per = Capacity == 0 ? 0 : (Capacity + N - 1) / N;
    for (auto &S : Shards)
      S.Capacity = Per;
  }

  ShardedLruCache(const ShardedLruCache &) = delete;
  ShardedLruCache &operator=(const ShardedLruCache &) = delete;

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<V> get(const K &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      ++S.Misses;
      return std::nullopt;
    }
    ++S.Hits;
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    return It->second->second;
  }

  /// Inserts or refreshes \p Key -> \p Value, evicting the least
  /// recently used entry when the shard is full. No-op at capacity 0.
  void put(const K &Key, V Value) {
    Shard &S = shardFor(Key);
    if (S.Capacity == 0)
      return;
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      It->second->second = std::move(Value);
      S.Order.splice(S.Order.begin(), S.Order, It->second);
      return;
    }
    if (S.Map.size() >= S.Capacity) {
      auto &Victim = S.Order.back();
      S.Map.erase(Victim.first);
      S.Order.pop_back();
      ++S.Evictions;
    }
    S.Order.emplace_front(Key, std::move(Value));
    S.Map.emplace(Key, S.Order.begin());
  }

  /// Drops every entry in every shard (stats are preserved).
  void clear() {
    for (auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Map.clear();
      S.Order.clear();
    }
  }

  CacheStats stats() const {
    CacheStats St;
    for (auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      St.Hits += S.Hits;
      St.Misses += S.Misses;
      St.Evictions += S.Evictions;
      St.Entries += S.Map.size();
    }
    return St;
  }

  size_t size() const {
    size_t N = 0;
    for (auto &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      N += S.Map.size();
    }
    return N;
  }

private:
  struct Shard {
    mutable std::mutex Mu;
    size_t Capacity = 0;
    // Front = most recently used. Map values point into Order.
    std::list<std::pair<K, V>> Order;
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator,
                       Hash>
        Map;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(const K &Key) {
    return Shards[mix64(Hash{}(Key)) % Shards.size()];
  }

  std::vector<Shard> Shards;
};

} // namespace ag

#endif // AG_ADT_LRUCACHE_H
