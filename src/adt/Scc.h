//===- Scc.h - Strongly-connected components of static graphs ---*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative Tarjan SCC over a fixed adjacency-list graph. Used by the
/// offline analyses (OVS and HCD's offline pass), which run Tarjan's
/// linear-time algorithm over the offline constraint graph. The online
/// solvers use their own Nuutila-variant SCC that understands node
/// representatives (see core/SolverContext.h).
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_SCC_H
#define AG_ADT_SCC_H

#include <cstdint>
#include <vector>

namespace ag {

/// SCC decomposition result.
struct SccResult {
  /// Maps each node to its component id.
  std::vector<uint32_t> Comp;
  /// Component members, indexed by component id. Components are numbered
  /// in Tarjan emission order, which is a *reverse* topological order of
  /// the condensation: if an edge crosses from comp(U) to comp(V), then
  /// comp(V) < comp(U).
  std::vector<std::vector<uint32_t>> Members;
};

/// Computes the strongly-connected components of the graph with nodes
/// [0, NumNodes) and successor lists \p Succs.
inline SccResult computeSccs(uint32_t NumNodes,
                             const std::vector<std::vector<uint32_t>> &Succs) {
  constexpr uint32_t Unvisited = ~0u;
  SccResult Result;
  Result.Comp.assign(NumNodes, Unvisited);

  std::vector<uint32_t> Index(NumNodes, Unvisited);
  std::vector<uint32_t> LowLink(NumNodes, 0);
  std::vector<bool> OnStack(NumNodes, false);
  std::vector<uint32_t> SccStack;
  uint32_t NextIndex = 0;

  // Explicit DFS frames: (node, next child position).
  struct Frame {
    uint32_t Node;
    uint32_t Child;
  };
  std::vector<Frame> Dfs;

  for (uint32_t Root = 0; Root != NumNodes; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Dfs.push_back(Frame{Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    SccStack.push_back(Root);
    OnStack[Root] = true;

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      uint32_t U = F.Node;
      if (F.Child < Succs[U].size()) {
        uint32_t V = Succs[U][F.Child++];
        if (Index[V] == Unvisited) {
          Index[V] = LowLink[V] = NextIndex++;
          SccStack.push_back(V);
          OnStack[V] = true;
          Dfs.push_back(Frame{V, 0});
        } else if (OnStack[V] && Index[V] < LowLink[U]) {
          LowLink[U] = Index[V];
        }
        continue;
      }
      // U is finished: pop the frame and maybe emit a component.
      Dfs.pop_back();
      if (!Dfs.empty()) {
        uint32_t Parent = Dfs.back().Node;
        if (LowLink[U] < LowLink[Parent])
          LowLink[Parent] = LowLink[U];
      }
      if (LowLink[U] == Index[U]) {
        uint32_t CompId = static_cast<uint32_t>(Result.Members.size());
        Result.Members.emplace_back();
        for (;;) {
          uint32_t W = SccStack.back();
          SccStack.pop_back();
          OnStack[W] = false;
          Result.Comp[W] = CompId;
          Result.Members[CompId].push_back(W);
          if (W == U)
            break;
        }
      }
    }
  }
  return Result;
}

} // namespace ag

#endif // AG_ADT_SCC_H
