//===- ShardedWorklist.h - Per-worker worklists with MPSC inboxes -*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist structure behind the parallel wavefront solver: node ids are
/// hash-sharded across workers (shard = id % numShards), and each shard owns
/// a current/next pair in the style of the paper's divided worklist. During
/// a round, a worker consumes its own immutable `current` list; work it
/// discovers goes to `next` when the target node belongs to its own shard
/// (no synchronization: the owner is the only writer of its next list and of
/// the dedup flags of its nodes) or into the target shard's MPSC inbox when
/// it does not (mutex-protected append; producers never touch dedup state).
///
/// Between rounds, the single-threaded coordinator calls beginRound(): every
/// queued id from every next list and inbox is canonicalized through the
/// caller's representative map (cycle collapse may have changed shard
/// ownership), deduplicated with an epoch stamp, redistributed to the owning
/// shard, and sorted — so each round processes a deterministic, duplicate-
/// free wavefront regardless of the interleaving that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_SHARDEDWORKLIST_H
#define AG_ADT_SHARDEDWORKLIST_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ag {

/// Sharded divided worklist over dense node ids.
class ShardedWorklist {
public:
  ShardedWorklist(unsigned NumShards, uint32_t NumNodes)
      : Shards(NumShards ? NumShards : 1), InNext(NumNodes, 0),
        Stamp(NumNodes, 0) {}

  unsigned numShards() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// Owning shard of \p Id (stable for a given id; representatives that
  /// change under cycle collapse are re-homed by beginRound).
  unsigned shardOf(uint32_t Id) const {
    return Id % static_cast<uint32_t>(Shards.size());
  }

  /// Owner-only push during a round: \p Shard must own \p Id. Deduplicated
  /// against this shard's pending next list.
  void pushLocal(unsigned Shard, uint32_t Id) {
    assert(shardOf(Id) == Shard && "pushLocal to non-owning shard");
    if (InNext[Id])
      return;
    InNext[Id] = 1;
    Shards[Shard].Next.push_back(Id);
  }

  /// Any-thread push: appends to the owning shard's inbox. Duplicates are
  /// allowed here and removed by beginRound.
  void pushRemote(uint32_t Id) {
    Shard &S = Shards[shardOf(Id)];
    std::lock_guard<std::mutex> Lock(S.InboxMutex);
    S.Inbox.push_back(Id);
  }

  /// Single-threaded (between rounds): canonicalizes every queued id
  /// through \p Canon, deduplicates, redistributes to the owner shard of
  /// the representative, and sorts each shard's current list.
  /// \returns the total number of nodes queued for the round.
  template <typename CanonFn> size_t beginRound(CanonFn Canon) {
    ++Round;
    size_t Total = 0;
    for (Shard &S : Shards)
      S.Current.clear();
    auto Collect = [&](uint32_t Id) {
      uint32_t R = Canon(Id);
      if (Stamp[R] == Round)
        return;
      Stamp[R] = Round;
      Shards[shardOf(R)].Current.push_back(R);
      ++Total;
    };
    for (Shard &S : Shards) {
      for (uint32_t Id : S.Next)
        InNext[Id] = 0;
      for (uint32_t Id : S.Next)
        Collect(Id);
      S.Next.clear();
      // The coordinator runs strictly after the workers' barrier, but take
      // the lock anyway: it is free of contention here and keeps the
      // accesses obviously well-ordered.
      std::lock_guard<std::mutex> Lock(S.InboxMutex);
      for (uint32_t Id : S.Inbox)
        Collect(Id);
      S.Inbox.clear();
    }
    for (Shard &S : Shards)
      std::sort(S.Current.begin(), S.Current.end());
    return Total;
  }

  /// The round's immutable work for \p Shard (valid until next beginRound).
  const std::vector<uint32_t> &current(unsigned Shard) const {
    return Shards[Shard].Current;
  }

private:
  /// Padded to a cache line so one shard's next-list growth does not
  /// false-share with a neighbour's inbox mutex.
  struct alignas(64) Shard {
    std::vector<uint32_t> Current;
    std::vector<uint32_t> Next;
    std::vector<uint32_t> Inbox;
    std::mutex InboxMutex;
  };

  std::vector<Shard> Shards;
  /// Dedup flags for next lists; entry Id is only ever written by the
  /// owning shard's worker (during rounds) or the coordinator (between).
  std::vector<uint8_t> InNext;
  /// Epoch stamps for beginRound's cross-shard dedup.
  std::vector<uint32_t> Stamp;
  uint32_t Round = 0;
};

} // namespace ag

#endif // AG_ADT_SHARDEDWORKLIST_H
