//===- Worklist.h - Solver worklist strategies ------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worklists for the constraint solvers. The paper's LCD and HCD solvers use
/// the LRF ("Least Recently Fired") priority of Pearce et al. combined with
/// the divided current/next worklist of Nielson et al.: items are selected
/// from `current`, pushed onto `next`, and the two are swapped when `current`
/// drains. Plain FIFO and a single (undivided) LRF list are provided for the
/// ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_WORKLIST_H
#define AG_ADT_WORKLIST_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace ag {

/// Which scheduling policy a Worklist uses.
enum class WorklistPolicy {
  Fifo,       ///< Plain FIFO queue.
  Lrf,        ///< Single priority list ordered by least-recently-fired.
  DividedLrf, ///< Current/next division, each round LRF-ordered (paper).
};

/// Deduplicating worklist over dense node ids.
///
/// A node is held at most once; pushing an enqueued node is a no-op. Popping
/// records the "fired" timestamp used by the LRF policies.
class Worklist {
public:
  explicit Worklist(WorklistPolicy Policy = WorklistPolicy::DividedLrf)
      : Policy(Policy) {}

  /// Makes ids [0, N) usable.
  void grow(uint32_t N) {
    if (N > InList.size()) {
      InList.resize(N, false);
      LastFired.resize(N, 0);
    }
  }

  bool empty() const { return Current.empty() && Next.empty(); }

  /// Nodes currently enqueued across both divisions.
  size_t size() const { return Current.size() + Next.size(); }

  /// Enqueues \p Id unless it is already enqueued.
  void push(uint32_t Id) {
    assert(Id < InList.size() && "worklist id out of range");
    if (InList[Id])
      return;
    InList[Id] = true;
    if (Policy == WorklistPolicy::Fifo)
      Current.push_back(Id);
    else
      Next.push_back(Id);
  }

  /// Dequeues the next node per the policy. Requires !empty().
  uint32_t pop() {
    assert(!empty() && "pop from empty worklist");
    switch (Policy) {
    case WorklistPolicy::Fifo:
      break;
    case WorklistPolicy::Lrf:
      // Single list: always merge Next in and re-sort by LastFired.
      if (!Next.empty()) {
        Current.insert(Current.end(), Next.begin(), Next.end());
        Next.clear();
        sortCurrentByLrf();
      }
      break;
    case WorklistPolicy::DividedLrf:
      // Only refill from Next when Current drains.
      if (Current.empty()) {
        Current.swap(Next);
        sortCurrentByLrf();
      }
      break;
    }
    uint32_t Id = Current.front();
    Current.pop_front();
    InList[Id] = false;
    LastFired[Id] = ++Clock;
    return Id;
  }

private:
  void sortCurrentByLrf() {
    std::sort(Current.begin(), Current.end(),
              [this](uint32_t A, uint32_t B) {
                if (LastFired[A] != LastFired[B])
                  return LastFired[A] < LastFired[B];
                return A < B; // Deterministic tie-break.
              });
  }

  WorklistPolicy Policy;
  std::deque<uint32_t> Current;
  std::deque<uint32_t> Next;
  std::vector<bool> InList;
  std::vector<uint64_t> LastFired;
  uint64_t Clock = 0;
};

} // namespace ag

#endif // AG_ADT_WORKLIST_H
