//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch fixed-size thread pool built for bulk-synchronous solver
/// rounds: the coordinator repeatedly calls runOnWorkers(Fn), every worker
/// executes Fn(workerIndex) exactly once, and the call returns when all
/// workers have finished (a full barrier). Workers are spawned once at
/// construction and parked on a condition variable between rounds, so the
/// per-round cost is two lock/notify handshakes rather than thread churn.
///
/// Memory ordering: the mutex protecting Generation/Remaining makes every
/// write a worker performed during round k happen-before the coordinator's
/// return from runOnWorkers, and everything the coordinator did before the
/// call happen-before the workers' execution of Fn. Solver code can
/// therefore treat the epochs between rounds as single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_THREADPOOL_H
#define AG_ADT_THREADPOOL_H

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ag {

/// Fixed pool of \c size() workers executing one task per barrier round.
class ThreadPool {
public:
  /// Spawns \p NumWorkers threads (at least one). The pool never resizes.
  explicit ThreadPool(unsigned NumWorkers) {
    if (NumWorkers == 0)
      NumWorkers = 1;
    Workers.reserve(NumWorkers);
    for (unsigned I = 0; I != NumWorkers; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    WakeCv.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs \p Fn(workerIndex) on every worker and blocks until all have
  /// returned. \p Fn must not throw (a throwing task terminates the
  /// process, as with any unhandled exception on a std::thread) and must
  /// not call back into the pool.
  void runOnWorkers(const std::function<void(unsigned)> &Fn) {
    std::unique_lock<std::mutex> Lock(M);
    assert(Remaining == 0 && "round already in flight");
    Task = &Fn;
    Remaining = size();
    ++Generation;
    WakeCv.notify_all();
    DoneCv.wait(Lock, [this] { return Remaining == 0; });
    Task = nullptr;
  }

private:
  void workerLoop(unsigned Index) {
    uint64_t SeenGeneration = 0;
    for (;;) {
      const std::function<void(unsigned)> *Fn = nullptr;
      {
        std::unique_lock<std::mutex> Lock(M);
        WakeCv.wait(Lock, [&] {
          return Stop || Generation != SeenGeneration;
        });
        if (Stop)
          return;
        SeenGeneration = Generation;
        Fn = Task;
      }
      (*Fn)(Index);
      {
        std::lock_guard<std::mutex> Lock(M);
        if (--Remaining == 0)
          DoneCv.notify_all();
      }
    }
  }

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WakeCv;
  std::condition_variable DoneCv;
  const std::function<void(unsigned)> *Task = nullptr;
  uint64_t Generation = 0;
  unsigned Remaining = 0;
  bool Stop = false;
};

} // namespace ag

#endif // AG_ADT_THREADPOOL_H
