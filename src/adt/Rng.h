//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic RNG (xoshiro256**, seeded via SplitMix64)
/// used by the synthetic workload generator and the property-based tests.
/// Determinism matters: the benchmark suites must be identical across runs
/// and machines so results are comparable.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_RNG_H
#define AG_ADT_RNG_H

#include <cassert>
#include <cstdint>

namespace ag {

/// xoshiro256** PRNG with SplitMix64 seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ull;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). Requires Bound > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Debiased via rejection on the top of the range.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive. Requires Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ag

#endif // AG_ADT_RNG_H
