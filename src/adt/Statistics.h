//===- Statistics.h - Solver behaviour counters -----------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the three quantities Section 5.3 of the paper uses to
/// explain relative solver performance — nodes collapsed, nodes searched
/// during DFS, and points-to propagations — plus supporting counts added
/// by the parallel (PR 2) and serve (PR 3) layers. Each solver owns one
/// SolverStats and increments it inline.
///
/// Every consumer — mergeFrom, toString, and the observability layer's
/// MetricsRegistry::absorb — iterates the single forEachField enumerator,
/// so adding a counter in one place updates all of them: a field can no
/// longer be silently dropped from merging the way hand-written per-field
/// code allows.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_STATISTICS_H
#define AG_ADT_STATISTICS_H

#include <cassert>
#include <cstdint>
#include <string>

namespace ag {

/// Behaviour counters for one solver run.
struct SolverStats {
  /// Nodes merged away by cycle collapsing (a k-node SCC counts k-1).
  uint64_t NodesCollapsed = 0;
  /// Nodes visited by depth-first searches of the constraint graph
  /// (cycle detection and HT reachability queries). Pure overhead.
  uint64_t NodesSearched = 0;
  /// Points-to set propagations across constraint edges, i.e. evaluations
  /// of pts(dst) |= pts(src). The paper's most expensive operation.
  uint64_t Propagations = 0;
  /// Propagations that actually changed the destination set.
  uint64_t ChangedPropagations = 0;
  /// Cycle-detection attempts triggered (LCD) or sweeps performed (PKH).
  uint64_t CycleDetectAttempts = 0;
  /// Copy edges added to the online constraint graph (incl. from complex
  /// constraint resolution).
  uint64_t EdgesAdded = 0;
  /// Nodes popped off the worklist.
  uint64_t WorklistPops = 0;
  /// HCD preemptive collapses performed online.
  uint64_t HcdCollapses = 0;
  /// LCD R-set probes: hash lookups asking "has this edge triggered a
  /// cycle search before". Since the fused union+equality kernel made
  /// the equality probe free, the R set is only consulted for edges
  /// whose sets compared equal (not once per edge visit), so this
  /// counts equality-passing edge visits. Scheduling-variant.
  uint64_t LcdTriggerProbes = 0;
  /// Wavefront rounds executed by the parallel solver (0 for sequential).
  uint64_t ParallelRounds = 0;
  /// Collapse epochs completed by the parallel solver. Trails
  /// ParallelRounds when a budget trip aborts an epoch mid-flight.
  uint64_t ParallelEpochs = 0;
  /// Points-to elements pushed through complex-constraint resolution
  /// frontiers (the difference-propagation work the MDE deduplication
  /// line of work targets — re-resolution shows up here).
  uint64_t DiffElementsResolved = 0;
  /// Warm-start re-solves: nodes seeded into the initial worklist (the
  /// delta-touched set).
  uint64_t WarmSeededNodes = 0;
  /// Warm-start re-solves: delta constraints that were genuinely new.
  uint64_t WarmNewConstraints = 0;

  /// Number of counters; keep in sync with forEachField (asserted by
  /// mergeFrom).
  static constexpr size_t NumFields = 14;

  /// Invokes \p F with ("stable_name", field reference) for every counter,
  /// in declaration order. The single source of truth for merging,
  /// rendering and metrics absorption.
  template <typename Fn> void forEachField(Fn F) {
    F("nodes_collapsed", NodesCollapsed);
    F("nodes_searched", NodesSearched);
    F("propagations", Propagations);
    F("changed_propagations", ChangedPropagations);
    F("cycle_detect_attempts", CycleDetectAttempts);
    F("edges_added", EdgesAdded);
    F("worklist_pops", WorklistPops);
    F("hcd_collapses", HcdCollapses);
    F("lcd_trigger_probes", LcdTriggerProbes);
    F("parallel_rounds", ParallelRounds);
    F("parallel_epochs", ParallelEpochs);
    F("diff_elements_resolved", DiffElementsResolved);
    F("warm_seeded_nodes", WarmSeededNodes);
    F("warm_new_constraints", WarmNewConstraints);
  }

  /// Const enumeration: \p F receives ("stable_name", value).
  template <typename Fn> void forEachField(Fn F) const {
    const_cast<SolverStats *>(this)->forEachField(
        [&](const char *Name, uint64_t &V) {
          F(Name, static_cast<uint64_t>(V));
        });
  }

  /// Accumulates \p RHS into this (used to fold per-worker counters into
  /// the run's totals at epoch boundaries, and warm-start stats into
  /// session totals).
  void mergeFrom(const SolverStats &RHS) {
    uint64_t Vals[NumFields];
    size_t I = 0;
    RHS.forEachField([&](const char *, uint64_t V) {
      assert(I < NumFields && "forEachField out of sync with NumFields");
      Vals[I++] = V;
    });
    assert(I == NumFields && "forEachField out of sync with NumFields");
    I = 0;
    forEachField([&](const char *, uint64_t &V) { V += Vals[I++]; });
  }

  /// Renders one counter per line, prefixed by \p Prefix.
  std::string toString(const std::string &Prefix = "") const {
    std::string Out;
    forEachField([&](const char *Name, uint64_t V) {
      Out += Prefix;
      Out += Name;
      Out += ": ";
      Out += std::to_string(V);
      Out += '\n';
    });
    return Out;
  }
};

} // namespace ag

#endif // AG_ADT_STATISTICS_H
