//===- Statistics.h - Solver behaviour counters -----------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the three quantities Section 5.3 of the paper uses to
/// explain relative solver performance — nodes collapsed, nodes searched
/// during DFS, and points-to propagations — plus a few supporting counts.
/// Each solver owns one SolverStats and increments it inline.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_STATISTICS_H
#define AG_ADT_STATISTICS_H

#include <cstdint>
#include <string>

namespace ag {

/// Behaviour counters for one solver run.
struct SolverStats {
  /// Nodes merged away by cycle collapsing (a k-node SCC counts k-1).
  uint64_t NodesCollapsed = 0;
  /// Nodes visited by depth-first searches of the constraint graph
  /// (cycle detection and HT reachability queries). Pure overhead.
  uint64_t NodesSearched = 0;
  /// Points-to set propagations across constraint edges, i.e. evaluations
  /// of pts(dst) |= pts(src). The paper's most expensive operation.
  uint64_t Propagations = 0;
  /// Propagations that actually changed the destination set.
  uint64_t ChangedPropagations = 0;
  /// Cycle-detection attempts triggered (LCD) or sweeps performed (PKH).
  uint64_t CycleDetectAttempts = 0;
  /// Copy edges added to the online constraint graph (incl. from complex
  /// constraint resolution).
  uint64_t EdgesAdded = 0;
  /// Nodes popped off the worklist.
  uint64_t WorklistPops = 0;
  /// HCD preemptive collapses performed online.
  uint64_t HcdCollapses = 0;
  /// LCD R-set probes: hash lookups asking "has this edge triggered a
  /// cycle search before" (the cheap pre-test guarding set equality).
  uint64_t LcdTriggerProbes = 0;
  /// Wavefront rounds executed by the parallel solver (0 for sequential).
  uint64_t ParallelRounds = 0;

  /// Accumulates \p RHS into this (used to fold per-worker counters into
  /// the run's totals at epoch boundaries).
  void mergeFrom(const SolverStats &RHS) {
    NodesCollapsed += RHS.NodesCollapsed;
    NodesSearched += RHS.NodesSearched;
    Propagations += RHS.Propagations;
    ChangedPropagations += RHS.ChangedPropagations;
    CycleDetectAttempts += RHS.CycleDetectAttempts;
    EdgesAdded += RHS.EdgesAdded;
    WorklistPops += RHS.WorklistPops;
    HcdCollapses += RHS.HcdCollapses;
    LcdTriggerProbes += RHS.LcdTriggerProbes;
    ParallelRounds += RHS.ParallelRounds;
  }

  /// Renders one counter per line, prefixed by \p Prefix.
  std::string toString(const std::string &Prefix = "") const {
    std::string Out;
    auto Row = [&](const char *Name, uint64_t V) {
      Out += Prefix;
      Out += Name;
      Out += ": ";
      Out += std::to_string(V);
      Out += '\n';
    };
    Row("nodes_collapsed", NodesCollapsed);
    Row("nodes_searched", NodesSearched);
    Row("propagations", Propagations);
    Row("changed_propagations", ChangedPropagations);
    Row("cycle_detect_attempts", CycleDetectAttempts);
    Row("edges_added", EdgesAdded);
    Row("worklist_pops", WorklistPops);
    Row("hcd_collapses", HcdCollapses);
    Row("lcd_trigger_probes", LcdTriggerProbes);
    Row("parallel_rounds", ParallelRounds);
    return Out;
  }
};

} // namespace ag

#endif // AG_ADT_STATISTICS_H
