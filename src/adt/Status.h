//===- Status.h - Structured error reporting --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small structured-error type for library-path failures. Anything that
/// can be reached from file or command-line input (constraint-file parsing,
/// solver selection, resource budgets) reports failures as an ag::Status
/// instead of asserting, so release builds reject bad input cleanly rather
/// than exhibiting undefined behaviour. Asserts remain for programmer
/// errors that no external input can trigger.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_STATUS_H
#define AG_ADT_STATUS_H

#include <cstdint>
#include <string>
#include <utility>

namespace ag {

/// Machine-readable failure categories.
enum class StatusCode : uint8_t {
  Ok,               ///< No error.
  InvalidArgument,  ///< Caller-supplied value out of the accepted domain.
  ParseError,       ///< Malformed textual input (.cons files, mini-C).
  IoError,          ///< File could not be read or written.
  DeadlineExceeded, ///< SolveBudget wall-clock limit tripped.
  MemoryLimit,      ///< SolveBudget peak-memory cap tripped.
  StepLimit,        ///< SolveBudget propagation/edge ceiling tripped.
  Cancelled,        ///< Cooperative cancellation was requested.
  FaultInjected,    ///< A test-armed FaultInjector site fired.
  Stalled,          ///< A stall watchdog detected a hung worker/round.
  Internal,         ///< Invariant violation surfaced as an error.
};

/// Returns a stable name for \p Code ("ok", "deadline_exceeded", ...).
inline const char *statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid_argument";
  case StatusCode::ParseError:
    return "parse_error";
  case StatusCode::IoError:
    return "io_error";
  case StatusCode::DeadlineExceeded:
    return "deadline_exceeded";
  case StatusCode::MemoryLimit:
    return "memory_limit";
  case StatusCode::StepLimit:
    return "step_limit";
  case StatusCode::Cancelled:
    return "cancelled";
  case StatusCode::FaultInjected:
    return "fault_injected";
  case StatusCode::Stalled:
    return "stalled";
  case StatusCode::Internal:
    return "internal";
  }
  return "unknown";
}

/// An error code plus a human-readable message. Cheap to return by value;
/// the OK status carries no allocation.
class Status {
public:
  /// Default-constructs the OK status.
  Status() = default;

  Status(StatusCode Code, std::string Message)
      : Code(Code), Msg(std::move(Message)) {}

  static Status okStatus() { return Status(); }
  static Status invalidArgument(std::string Msg) {
    return Status(StatusCode::InvalidArgument, std::move(Msg));
  }
  static Status parseError(std::string Msg) {
    return Status(StatusCode::ParseError, std::move(Msg));
  }
  static Status ioError(std::string Msg) {
    return Status(StatusCode::IoError, std::move(Msg));
  }
  static Status deadlineExceeded(std::string Msg) {
    return Status(StatusCode::DeadlineExceeded, std::move(Msg));
  }
  static Status memoryLimit(std::string Msg) {
    return Status(StatusCode::MemoryLimit, std::move(Msg));
  }
  static Status stepLimit(std::string Msg) {
    return Status(StatusCode::StepLimit, std::move(Msg));
  }
  static Status cancelled(std::string Msg) {
    return Status(StatusCode::Cancelled, std::move(Msg));
  }
  static Status faultInjected(std::string Msg) {
    return Status(StatusCode::FaultInjected, std::move(Msg));
  }
  static Status stalled(std::string Msg) {
    return Status(StatusCode::Stalled, std::move(Msg));
  }
  static Status internal(std::string Msg) {
    return Status(StatusCode::Internal, std::move(Msg));
  }

  bool ok() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// True if this is a resource-budget trip (the degradable failures).
  bool isBudgetTrip() const {
    return Code == StatusCode::DeadlineExceeded ||
           Code == StatusCode::MemoryLimit ||
           Code == StatusCode::StepLimit ||
           Code == StatusCode::Cancelled ||
           Code == StatusCode::FaultInjected ||
           Code == StatusCode::Stalled;
  }

  /// "code: message" rendering for diagnostics.
  std::string toString() const {
    if (ok())
      return "ok";
    std::string Out = statusCodeName(Code);
    if (!Msg.empty()) {
      Out += ": ";
      Out += Msg;
    }
    return Out;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Msg;
};

} // namespace ag

#endif // AG_ADT_STATUS_H
