//===- SparseBitVector.cpp - GCC-style sparse bitmap ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"

using namespace ag;

void SparseBitVector::clear() {
  Element *E = Head;
  while (E) {
    Element *Next = E->Next;
    freeElement(E);
    E = Next;
  }
  Head = Curr = nullptr;
  assert(NumElements == 0 && "element accounting out of sync");
}

void SparseBitVector::copyFrom(const SparseBitVector &RHS) {
  assert(!Head && "copyFrom requires an empty destination");
  Element *Prev = nullptr;
  for (Element *E = RHS.Head; E; E = E->Next) {
    Element *New = allocateElement(E->Index, nullptr);
    New->Words[0] = E->Words[0];
    New->Words[1] = E->Words[1];
    if (Prev)
      Prev->Next = New;
    else
      Head = New;
    Prev = New;
  }
  Curr = Head;
}

SparseBitVector::Element *
SparseBitVector::findLowerBound(uint32_t ElementIndex) const {
  // Start from the cursor if it doesn't overshoot, else from the head.
  Element *E = (Curr && Curr->Index <= ElementIndex) ? Curr : Head;
  if (!E || E->Index > ElementIndex)
    return nullptr;
  while (E->Next && E->Next->Index <= ElementIndex)
    E = E->Next;
  Curr = E;
  return E;
}

size_t SparseBitVector::count() const {
  size_t Total = 0;
  for (const Element *E = Head; E; E = E->Next)
    Total += E->count();
  return Total;
}

bool SparseBitVector::test(uint32_t Idx) const {
  Element *E = findLowerBound(Idx / BitsPerElement);
  if (!E || E->Index != Idx / BitsPerElement)
    return false;
  return E->test(Idx % BitsPerElement);
}

bool SparseBitVector::set(uint32_t Idx) {
  uint32_t ElementIndex = Idx / BitsPerElement;
  Element *E = findLowerBound(ElementIndex);
  if (E && E->Index == ElementIndex) {
    if (E->test(Idx % BitsPerElement))
      return false;
    E->set(Idx % BitsPerElement);
    return true;
  }
  // Insert a fresh element after E (or at the head).
  Element *New;
  if (E) {
    New = allocateElement(ElementIndex, E->Next);
    E->Next = New;
  } else {
    New = allocateElement(ElementIndex, Head);
    Head = New;
  }
  New->set(Idx % BitsPerElement);
  Curr = New;
  return true;
}

bool SparseBitVector::reset(uint32_t Idx) {
  uint32_t ElementIndex = Idx / BitsPerElement;
  Element *E = findLowerBound(ElementIndex);
  if (!E || E->Index != ElementIndex || !E->test(Idx % BitsPerElement))
    return false;
  E->reset(Idx % BitsPerElement);
  if (E->empty()) {
    // Unlink E; we only have a singly-linked list, so re-find the
    // predecessor from the head.
    if (Head == E) {
      Head = E->Next;
    } else {
      Element *Prev = Head;
      while (Prev->Next != E)
        Prev = Prev->Next;
      Prev->Next = E->Next;
    }
    Curr = Head;
    freeElement(E);
  }
  return true;
}

bool SparseBitVector::unionWith(const SparseBitVector &RHS) {
  if (this == &RHS || !RHS.Head)
    return false;
  if (!Head) { // Empty destination: bulk copy, no merge bookkeeping.
    copyFrom(RHS);
    return true;
  }
  bool Changed = false;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  while (R) {
    if (L && L->Index == R->Index) {
      // Branch-light: compute the incoming-new words, OR both words
      // unconditionally, and fold change detection into one test. The
      // common difference-propagation probe (dst ⊇ src, nothing new)
      // takes no data-dependent branches inside the element.
      uint64_t New0 = R->Words[0] & ~L->Words[0];
      uint64_t New1 = R->Words[1] & ~L->Words[1];
      L->Words[0] |= R->Words[0];
      L->Words[1] |= R->Words[1];
      Changed |= (New0 | New1) != 0;
      Prev = L;
      L = L->Next;
      R = R->Next;
    } else if (!L || L->Index > R->Index) {
      Element *New = allocateElement(R->Index, L);
      New->Words[0] = R->Words[0];
      New->Words[1] = R->Words[1];
      if (Prev)
        Prev->Next = New;
      else
        Head = New;
      Prev = New;
      R = R->Next;
      Changed = true;
    } else { // L->Index < R->Index
      Prev = L;
      L = L->Next;
    }
  }
  Curr = Head;
  return Changed;
}

bool SparseBitVector::intersectWith(const SparseBitVector &RHS) {
  bool Changed = false;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  while (L) {
    if (R && L->Index == R->Index) {
      uint64_t Old0 = L->Words[0], Old1 = L->Words[1];
      L->Words[0] &= R->Words[0];
      L->Words[1] &= R->Words[1];
      Changed |= (L->Words[0] != Old0) | (L->Words[1] != Old1);
      if (L->empty()) {
        Element *Dead = L;
        L = L->Next;
        if (Prev)
          Prev->Next = L;
        else
          Head = L;
        freeElement(Dead);
      } else {
        Prev = L;
        L = L->Next;
      }
      R = R->Next;
    } else if (!R || L->Index < R->Index) {
      // L has no counterpart: drop it.
      Element *Dead = L;
      L = L->Next;
      if (Prev)
        Prev->Next = L;
      else
        Head = L;
      freeElement(Dead);
      Changed = true;
    } else { // R->Index < L->Index
      R = R->Next;
    }
  }
  Curr = Head;
  return Changed;
}

bool SparseBitVector::subtract(const SparseBitVector &RHS) {
  bool Changed = false;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  while (L && R) {
    if (L->Index == R->Index) {
      uint64_t Old0 = L->Words[0], Old1 = L->Words[1];
      L->Words[0] &= ~R->Words[0];
      L->Words[1] &= ~R->Words[1];
      Changed |= (L->Words[0] != Old0) | (L->Words[1] != Old1);
      R = R->Next;
      if (L->empty()) {
        Element *Dead = L;
        L = L->Next;
        if (Prev)
          Prev->Next = L;
        else
          Head = L;
        freeElement(Dead);
      } else {
        Prev = L;
        L = L->Next;
      }
    } else if (L->Index < R->Index) {
      Prev = L;
      L = L->Next;
    } else {
      R = R->Next;
    }
  }
  Curr = Head;
  return Changed;
}

bool SparseBitVector::unionWithMinus(const SparseBitVector &RHS,
                                     const SparseBitVector &Excluded) {
  bool Changed = false;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  const Element *X = Excluded.Head;
  while (R) {
    // Advance the exclusion cursor up to R's index.
    while (X && X->Index < R->Index)
      X = X->Next;
    uint64_t W0 = R->Words[0], W1 = R->Words[1];
    if (X && X->Index == R->Index) {
      W0 &= ~X->Words[0];
      W1 &= ~X->Words[1];
    }
    if (W0 == 0 && W1 == 0) {
      R = R->Next;
      continue;
    }
    while (L && L->Index < R->Index) {
      Prev = L;
      L = L->Next;
    }
    if (L && L->Index == R->Index) {
      uint64_t Old0 = L->Words[0], Old1 = L->Words[1];
      L->Words[0] |= W0;
      L->Words[1] |= W1;
      Changed |= (L->Words[0] != Old0) | (L->Words[1] != Old1);
      Prev = L;
      L = L->Next;
    } else {
      Element *New = allocateElement(R->Index, L);
      New->Words[0] = W0;
      New->Words[1] = W1;
      if (Prev)
        Prev->Next = New;
      else
        Head = New;
      Prev = New;
      Changed = true;
    }
    R = R->Next;
  }
  Curr = Head;
  return Changed;
}

SparseBitVector::UnionResult
SparseBitVector::unionWithStatus(const SparseBitVector &RHS) {
  if (this == &RHS)
    return {false, true};
  bool Changed = false;
  bool Equal = true;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  while (R) {
    if (L && L->Index == R->Index) {
      uint64_t New0 = R->Words[0] & ~L->Words[0];
      uint64_t New1 = R->Words[1] & ~L->Words[1];
      Equal &= (L->Words[0] == R->Words[0]) & (L->Words[1] == R->Words[1]);
      L->Words[0] |= R->Words[0];
      L->Words[1] |= R->Words[1];
      Changed |= (New0 | New1) != 0;
      Prev = L;
      L = L->Next;
      R = R->Next;
    } else if (!L || L->Index > R->Index) {
      Element *New = allocateElement(R->Index, L);
      New->Words[0] = R->Words[0];
      New->Words[1] = R->Words[1];
      if (Prev)
        Prev->Next = New;
      else
        Head = New;
      Prev = New;
      R = R->Next;
      Changed = true;
      Equal = false;
    } else { // L->Index < R->Index: an element RHS lacks.
      Equal = false;
      Prev = L;
      L = L->Next;
    }
  }
  if (L) // Leftover destination elements RHS lacks.
    Equal = false;
  Curr = Head;
  return {Changed, Equal};
}

bool SparseBitVector::unionWithDelta(const SparseBitVector &RHS,
                                     SparseBitVector &Delta) {
  assert(&Delta != this && &Delta != &RHS &&
         "delta accumulator must be a distinct vector");
  if (this == &RHS || !RHS.Head)
    return false;
  bool Changed = false;
  Element *Prev = nullptr;
  Element *L = Head;
  const Element *R = RHS.Head;
  // Insertion cursor into Delta: new indices arrive in ascending order
  // within one merge, so the cursor never rewinds.
  Element *DPrev = nullptr;
  Element *DCur = Delta.Head;
  auto recordDelta = [&](uint32_t Index, uint64_t New0, uint64_t New1) {
    while (DCur && DCur->Index < Index) {
      DPrev = DCur;
      DCur = DCur->Next;
    }
    if (DCur && DCur->Index == Index) {
      DCur->Words[0] |= New0;
      DCur->Words[1] |= New1;
    } else {
      Element *E = Delta.allocateElement(Index, DCur);
      E->Words[0] = New0;
      E->Words[1] = New1;
      if (DPrev)
        DPrev->Next = E;
      else
        Delta.Head = E;
      DPrev = E;
    }
  };
  while (R) {
    if (L && L->Index == R->Index) {
      uint64_t New0 = R->Words[0] & ~L->Words[0];
      uint64_t New1 = R->Words[1] & ~L->Words[1];
      if (New0 | New1) {
        L->Words[0] |= New0;
        L->Words[1] |= New1;
        Changed = true;
        recordDelta(L->Index, New0, New1);
      }
      Prev = L;
      L = L->Next;
      R = R->Next;
    } else if (!L || L->Index > R->Index) {
      Element *New = allocateElement(R->Index, L);
      New->Words[0] = R->Words[0];
      New->Words[1] = R->Words[1];
      if (Prev)
        Prev->Next = New;
      else
        Head = New;
      Prev = New;
      Changed = true;
      recordDelta(New->Index, New->Words[0], New->Words[1]);
      R = R->Next;
    } else { // L->Index < R->Index
      Prev = L;
      L = L->Next;
    }
  }
  Curr = Head;
  Delta.Curr = Delta.Head;
  return Changed;
}

bool SparseBitVector::intersects(const SparseBitVector &RHS) const {
  const Element *L = Head;
  const Element *R = RHS.Head;
  while (L && R) {
    if (L->Index == R->Index) {
      if ((L->Words[0] & R->Words[0]) || (L->Words[1] & R->Words[1]))
        return true;
      L = L->Next;
      R = R->Next;
    } else if (L->Index < R->Index) {
      L = L->Next;
    } else {
      R = R->Next;
    }
  }
  return false;
}

bool SparseBitVector::contains(const SparseBitVector &RHS) const {
  const Element *L = Head;
  const Element *R = RHS.Head;
  while (R) {
    while (L && L->Index < R->Index)
      L = L->Next;
    if (!L || L->Index != R->Index)
      return false;
    if ((R->Words[0] & ~L->Words[0]) || (R->Words[1] & ~L->Words[1]))
      return false;
    R = R->Next;
  }
  return true;
}

bool SparseBitVector::operator==(const SparseBitVector &RHS) const {
  if (NumElements != RHS.NumElements) // O(1) reject before the walk.
    return false;
  const Element *L = Head;
  const Element *R = RHS.Head;
  while (L && R) {
    if (L->Index != R->Index || L->Words[0] != R->Words[0] ||
        L->Words[1] != R->Words[1])
      return false;
    L = L->Next;
    R = R->Next;
  }
  return L == R; // Both must be exhausted.
}

uint64_t SparseBitVector::contentHash() const {
  uint64_t H = 14695981039346656037ULL; // FNV-1a offset basis.
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  for (const Element *E = Head; E; E = E->Next) {
    Mix(E->Index);
    Mix(E->Words[0]);
    Mix(E->Words[1]);
  }
  return H;
}

uint32_t SparseBitVector::findFirst() const {
  assert(Head && "findFirst on empty vector");
  const Element *E = Head;
  if (E->Words[0])
    return E->Index * BitsPerElement +
           static_cast<uint32_t>(std::countr_zero(E->Words[0]));
  return E->Index * BitsPerElement + WordBits +
         static_cast<uint32_t>(std::countr_zero(E->Words[1]));
}
