//===- InternTable.h - Hash-consed shared points-to sets --------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalizes points-to sets so that content-equal sets share one
/// physical SparseBitVector. After cycle collapses, whole families of
/// representatives end up with identical solutions; storing one copy
/// behind shared handles cuts extracted-solution memory and lets the
/// serve layer key caches and snapshot encodings by canonical identity.
///
/// The interner hashes with FNV-1a over the element (Index, Words)
/// stream (SparseBitVector::contentHash) and verifies candidates with
/// full equality, so hash collisions only cost a compare. Interned sets
/// are immutable by convention: mutation goes through PointsToSolution's
/// copy-on-write handle, which detaches (clones) any set whose handle is
/// shared (DESIGN.md §13).
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_INTERNTABLE_H
#define AG_ADT_INTERNTABLE_H

#include "adt/SparseBitVector.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ag {

/// Process-wide interning tallies, surfaced by `ptatool solve --stats`
/// and the bench harness's "memory" section. The per-run values also
/// feed the solver.interned_hits / solver.interned_misses counters.
class InternStats {
public:
  static InternStats &instance() {
    static InternStats S;
    return S;
  }

  void record(uint64_t NewHits, uint64_t NewMisses, uint64_t NewBytes) {
    Hits.fetch_add(NewHits, std::memory_order_relaxed);
    Misses.fetch_add(NewMisses, std::memory_order_relaxed);
    DedupedBytes.fetch_add(NewBytes, std::memory_order_relaxed);
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t dedupedBytes() const {
    return DedupedBytes.load(std::memory_order_relaxed);
  }

  void reset() {
    Hits.store(0, std::memory_order_relaxed);
    Misses.store(0, std::memory_order_relaxed);
    DedupedBytes.store(0, std::memory_order_relaxed);
  }

private:
  InternStats() = default;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> DedupedBytes{0};
};

/// Hash-conses SparseBitVectors: equal contents yield the same
/// shared_ptr. One interner serves one extraction/dedup pass; it is not
/// thread-safe (extraction is single-threaded even for parallel solves).
class SetInterner {
public:
  /// Interns \p S. On a miss, S is moved into a fresh canonical set and
  /// the handle returned; on a hit, S is cleared (its storage released)
  /// and the existing canonical handle returned. Either way S is empty
  /// afterwards, so callers can reuse one scratch vector — keeping the
  /// transient footprint of a hit to a single set instead of letting
  /// duplicates accumulate until a post-hoc dedup pass.
  std::shared_ptr<SparseBitVector> intern(SparseBitVector &&S) {
    // Canonical sets outlive the solve that produced them, so they must
    // not carry elements owned by a solver arena (the move constructor
    // transfers the arena binding along with the elements).
    assert(S.arena() == nullptr && "interned sets must be heap-backed");
    uint64_t H = S.contentHash();
    auto &Bucket = Buckets[H];
    for (const auto &Canon : Bucket)
      if (*Canon == S) {
        ++HitCount;
        DedupedByteCount += S.memoryBytes();
        S.clear();
        return Canon;
      }
    ++MissCount;
    auto Canon = std::make_shared<SparseBitVector>(std::move(S));
    Bucket.push_back(Canon);
    return Canon;
  }

  /// Interns an existing shared handle without copying on a miss.
  std::shared_ptr<SparseBitVector>
  internShared(const std::shared_ptr<SparseBitVector> &S) {
    uint64_t H = S->contentHash();
    auto &Bucket = Buckets[H];
    for (const auto &Canon : Bucket)
      if (Canon == S || *Canon == *S) {
        if (Canon != S) {
          ++HitCount;
          DedupedByteCount += S->memoryBytes();
        }
        return Canon;
      }
    ++MissCount;
    Bucket.push_back(S);
    return S;
  }

  uint64_t hits() const { return HitCount; }
  uint64_t misses() const { return MissCount; }
  uint64_t dedupedBytes() const { return DedupedByteCount; }

  /// Flushes this interner's tallies into the process-wide totals.
  void publish() const {
    InternStats::instance().record(HitCount, MissCount, DedupedByteCount);
  }

private:
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<SparseBitVector>>>
      Buckets;
  uint64_t HitCount = 0;
  uint64_t MissCount = 0;
  uint64_t DedupedByteCount = 0;
};

} // namespace ag

#endif // AG_ADT_INTERNTABLE_H
