//===- SparseBitVector.h - GCC-style sparse bitmap --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse bit vector modeled on the sparse bitmap implementation the paper
/// takes from GCC 4.1.1: a sorted singly-linked list of 128-bit elements with
/// a cached cursor for amortized-constant sequential access. This is the
/// representation used for both points-to sets and constraint-graph edge
/// sets in all non-BDD solvers.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_SPARSEBITVECTOR_H
#define AG_ADT_SPARSEBITVECTOR_H

#include "adt/ElementArena.h"
#include "adt/MemTracker.h"

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>

namespace ag {

/// Sorted-list-of-elements sparse bit set over uint32_t indices.
///
/// Elements cover 128 bits each (two 64-bit words), mirroring GCC's
/// BITMAP_ELEMENT_ALL_BITS on 64-bit hosts. All bulk operations (union,
/// intersection, difference, comparison) are linear merges over the two
/// element lists.
class SparseBitVector {
  static constexpr uint32_t WordBits = 64;
  static constexpr uint32_t WordsPerElement = 2;
  static constexpr uint32_t BitsPerElement = WordBits * WordsPerElement;

  struct Element {
    Element *Next;
    uint32_t Index; ///< Bit range covered: [Index*128, Index*128+128).
    uint64_t Words[WordsPerElement];

    bool empty() const { return Words[0] == 0 && Words[1] == 0; }

    bool test(uint32_t BitInElement) const {
      return (Words[BitInElement / WordBits] >>
              (BitInElement % WordBits)) &
             1;
    }

    void set(uint32_t BitInElement) {
      Words[BitInElement / WordBits] |= uint64_t(1)
                                        << (BitInElement % WordBits);
    }

    void reset(uint32_t BitInElement) {
      Words[BitInElement / WordBits] &=
          ~(uint64_t(1) << (BitInElement % WordBits));
    }

    unsigned count() const {
      return std::popcount(Words[0]) + std::popcount(Words[1]);
    }
  };

public:
  SparseBitVector() = default;

  SparseBitVector(const SparseBitVector &RHS) { copyFrom(RHS); }

  SparseBitVector(SparseBitVector &&RHS) noexcept
      : Arena(RHS.Arena), Head(RHS.Head), Curr(RHS.Curr),
        NumElements(RHS.NumElements) {
    RHS.Head = RHS.Curr = nullptr;
    RHS.NumElements = 0;
  }

  SparseBitVector &operator=(const SparseBitVector &RHS) {
    if (this != &RHS) {
      clear();
      copyFrom(RHS);
    }
    return *this;
  }

  SparseBitVector &operator=(SparseBitVector &&RHS) noexcept {
    if (this != &RHS) {
      clear();
      if (Arena == RHS.Arena) {
        Head = RHS.Head;
        Curr = RHS.Curr;
        NumElements = RHS.NumElements;
        RHS.Head = RHS.Curr = nullptr;
        RHS.NumElements = 0;
      } else {
        // Elements must stay in the arena that allocated them, so a
        // cross-arena move degrades to copy + clear.
        copyFrom(RHS);
        RHS.clear();
      }
    }
    return *this;
  }

  ~SparseBitVector() { clear(); }

  /// Binds this vector to \p A: every element it allocates or frees from
  /// now on goes through that arena. Must be called before any bit is
  /// set; the binding is fixed for the vector's lifetime (moves between
  /// same-arena vectors transfer elements, cross-arena moves copy).
  void setArena(ElementArena *A) {
    assert(!Head && "arena binding must precede allocation");
    assert(!A || A->blockBytes() >= sizeof(Element));
    Arena = A;
  }

  /// The arena this vector allocates from (nullptr = global heap).
  ElementArena *arena() const { return Arena; }

  /// Bytes per list element — the block size arenas must serve.
  static constexpr size_t elementBytes() { return sizeof(Element); }

  /// Removes all bits.
  void clear();

  /// Returns true if no bit is set.
  bool empty() const { return Head == nullptr; }

  /// Returns the number of set bits.
  size_t count() const;

  /// Returns true if bit \p Idx is set.
  bool test(uint32_t Idx) const;

  /// Sets bit \p Idx. \returns true if the bit was newly set.
  bool set(uint32_t Idx);

  /// Clears bit \p Idx. \returns true if the bit was previously set.
  bool reset(uint32_t Idx);

  /// Sets this to the union with \p RHS. \returns true if this changed.
  bool unionWith(const SparseBitVector &RHS);

  /// Result of a fused union: whether the destination changed, and
  /// whether it was exactly equal to the source *before* the union (in
  /// which case the union was necessarily a no-op).
  struct UnionResult {
    bool Changed;
    bool WasEqual;
  };

  /// Fused `this |= RHS` + `this == RHS` probe in a single merge pass.
  /// The lazy-cycle-detection edge loop needs both answers for every
  /// copy edge; doing them separately walks both element lists twice.
  UnionResult unionWithStatus(const SparseBitVector &RHS);

  /// Fused `this |= RHS` that ORs every newly set bit into \p Delta in
  /// the same merge pass — the producer side of difference propagation:
  /// \p Delta accumulates exactly the bits that arrived in this set
  /// since it was last drained. Word-level only (no per-bit visiting);
  /// \p Delta insertions ride a forward cursor, so a single call costs
  /// O(|RHS| + |Delta|) element steps. \p Delta must be a distinct
  /// vector from both operands. \returns true if this changed.
  bool unionWithDelta(const SparseBitVector &RHS, SparseBitVector &Delta);

  /// Fused `this |= RHS` that invokes \p Fn once for every bit that was
  /// in RHS but not previously in this, in increasing order, during the
  /// same merge pass (difference propagation's forEachDiff + absorb in
  /// one walk). \p Fn must not mutate this vector or \p RHS.
  /// \returns true if this changed.
  template <typename F>
  bool unionWithVisitNew(const SparseBitVector &RHS, F Fn) {
    if (this == &RHS || !RHS.Head)
      return false;
    bool Changed = false;
    Element *Prev = nullptr;
    Element *L = Head;
    const Element *R = RHS.Head;
    while (R) {
      if (L && L->Index == R->Index) {
        uint64_t New0 = R->Words[0] & ~L->Words[0];
        uint64_t New1 = R->Words[1] & ~L->Words[1];
        L->Words[0] |= R->Words[0];
        L->Words[1] |= R->Words[1];
        Changed |= (New0 | New1) != 0;
        visitWords(L->Index, New0, New1, Fn);
        Prev = L;
        L = L->Next;
        R = R->Next;
      } else if (!L || L->Index > R->Index) {
        Element *New = allocateElement(R->Index, L);
        New->Words[0] = R->Words[0];
        New->Words[1] = R->Words[1];
        if (Prev)
          Prev->Next = New;
        else
          Head = New;
        Prev = New;
        Changed = true;
        visitWords(New->Index, New->Words[0], New->Words[1], Fn);
        R = R->Next;
      } else { // L->Index < R->Index
        Prev = L;
        L = L->Next;
      }
    }
    Curr = Head;
    return Changed;
  }

  /// Sets this to the intersection with \p RHS. \returns true if changed.
  bool intersectWith(const SparseBitVector &RHS);

  /// Removes every bit set in \p RHS. \returns true if this changed.
  bool subtract(const SparseBitVector &RHS);

  /// Computes `this |= RHS - Excluded` in one pass.
  /// \returns true if this changed.
  bool unionWithMinus(const SparseBitVector &RHS,
                      const SparseBitVector &Excluded);

  /// Returns true if this and \p RHS share any set bit.
  bool intersects(const SparseBitVector &RHS) const;

  /// Returns true if every bit of \p RHS is set in this.
  bool contains(const SparseBitVector &RHS) const;

  bool operator==(const SparseBitVector &RHS) const;
  bool operator!=(const SparseBitVector &RHS) const {
    return !(*this == RHS);
  }

  /// Returns the lowest set bit. Requires !empty().
  uint32_t findFirst() const;

  /// FNV-1a over the element (Index, Words) stream — the interning key
  /// for hash-consed shared points-to sets. Content-determined: equal
  /// sets hash equal regardless of allocation history or arena.
  uint64_t contentHash() const;

  /// Invokes \p Fn with every bit set in this but not in \p Exclude, in
  /// increasing order. A dual-cursor merge walk over the two element
  /// lists: no temporary vector is materialized (difference propagation
  /// runs this on every complex-constraint resolution step).
  template <typename F>
  void forEachDiff(const SparseBitVector &Exclude, F Fn) const {
    const Element *X = Exclude.Head;
    for (const Element *E = Head; E; E = E->Next) {
      while (X && X->Index < E->Index)
        X = X->Next;
      uint64_t W0 = E->Words[0];
      uint64_t W1 = E->Words[1];
      if (X && X->Index == E->Index) {
        W0 &= ~X->Words[0];
        W1 &= ~X->Words[1];
      }
      uint32_t Base = E->Index * BitsPerElement;
      while (W0) {
        Fn(Base + static_cast<uint32_t>(std::countr_zero(W0)));
        W0 &= W0 - 1;
      }
      while (W1) {
        Fn(Base + WordBits + static_cast<uint32_t>(std::countr_zero(W1)));
        W1 &= W1 - 1;
      }
    }
  }

  /// Heap bytes owned by this vector (for the memory tables).
  size_t memoryBytes() const { return NumElements * sizeof(Element); }

  /// Forward iterator over set bit indices in increasing order.
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    iterator() = default;

    explicit iterator(const Element *E) : Elem(E) {
      if (Elem) {
        Bits = Elem->Words[0];
        advanceToBit();
      }
    }

    uint32_t operator*() const {
      assert(Elem && "dereferencing end iterator");
      return Elem->Index * BitsPerElement + WordIdx * WordBits +
             static_cast<uint32_t>(std::countr_zero(Bits));
    }

    iterator &operator++() {
      Bits &= Bits - 1; // Clear lowest set bit.
      advanceToBit();
      return *this;
    }

    iterator operator++(int) {
      iterator Tmp = *this;
      ++*this;
      return Tmp;
    }

    bool operator==(const iterator &RHS) const {
      return Elem == RHS.Elem && WordIdx == RHS.WordIdx &&
             Bits == RHS.Bits;
    }
    bool operator!=(const iterator &RHS) const { return !(*this == RHS); }

  private:
    /// Skips empty words/elements until Bits holds the next set bit.
    void advanceToBit() {
      while (Elem && Bits == 0) {
        if (++WordIdx >= WordsPerElement) {
          Elem = Elem->Next;
          WordIdx = 0;
          if (!Elem)
            break;
        }
        Bits = Elem->Words[WordIdx];
      }
      if (!Elem) {
        WordIdx = 0;
        Bits = 0;
      }
    }

    const Element *Elem = nullptr;
    uint32_t WordIdx = 0;
    uint64_t Bits = 0;
  };

  iterator begin() const { return iterator(Head); }
  iterator end() const { return iterator(); }

private:
  void copyFrom(const SparseBitVector &RHS);

  /// Emits Fn(bit) for every set bit of the (W0, W1) pair at \p Index.
  template <typename F>
  static void visitWords(uint32_t Index, uint64_t W0, uint64_t W1, F &Fn) {
    uint32_t Base = Index * BitsPerElement;
    while (W0) {
      Fn(Base + static_cast<uint32_t>(std::countr_zero(W0)));
      W0 &= W0 - 1;
    }
    while (W1) {
      Fn(Base + WordBits + static_cast<uint32_t>(std::countr_zero(W1)));
      W1 &= W1 - 1;
    }
  }

  // Element is trivially constructible/destructible, so arena blocks and
  // raw operator-new storage need no placement lifetime management.
  // MemTracker keeps charging per element (MemCategory::Bitmap) so the
  // memory governor and mem.peak_bitmap_bytes keep their exact meaning;
  // slab reservations are tracked separately by ArenaStats.
  Element *allocateElement(uint32_t Index, Element *Next) {
    // Charge the tracker only once the raw allocation has succeeded: a
    // throwing allocation must not leave bytes charged that no element
    // destructor will ever release (the governor would see phantom
    // memory for the rest of the process).
    Element *E = static_cast<Element *>(
        Arena ? Arena->allocate() : ::operator new(sizeof(Element)));
    memAllocate(MemCategory::Bitmap, sizeof(Element));
    E->Next = Next;
    E->Index = Index;
    E->Words[0] = E->Words[1] = 0;
    ++NumElements;
    return E;
  }

  void freeElement(Element *E) {
    memRelease(MemCategory::Bitmap, sizeof(Element));
    if (Arena)
      Arena->deallocate(E);
    else
      ::operator delete(E);
    --NumElements;
  }

  /// Finds the element with the given index, or the last element with a
  /// smaller index (nullptr if none). Uses and updates the cursor cache.
  Element *findLowerBound(uint32_t ElementIndex) const;

  /// Allocation source for elements; nullptr = global heap. Fixed for
  /// the vector's lifetime once bound (see setArena).
  ElementArena *Arena = nullptr;
  Element *Head = nullptr;
  /// Cursor cache: last element visited by point queries, used to start
  /// searches near the previous access instead of at Head.
  mutable Element *Curr = nullptr;
  size_t NumElements = 0;
};

} // namespace ag

#endif // AG_ADT_SPARSEBITVECTOR_H
