//===- SparseBitVector.h - GCC-style sparse bitmap --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse bit vector modeled on the sparse bitmap implementation the paper
/// takes from GCC 4.1.1: a sorted singly-linked list of 128-bit elements with
/// a cached cursor for amortized-constant sequential access. This is the
/// representation used for both points-to sets and constraint-graph edge
/// sets in all non-BDD solvers.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_SPARSEBITVECTOR_H
#define AG_ADT_SPARSEBITVECTOR_H

#include "adt/MemTracker.h"

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>

namespace ag {

/// Sorted-list-of-elements sparse bit set over uint32_t indices.
///
/// Elements cover 128 bits each (two 64-bit words), mirroring GCC's
/// BITMAP_ELEMENT_ALL_BITS on 64-bit hosts. All bulk operations (union,
/// intersection, difference, comparison) are linear merges over the two
/// element lists.
class SparseBitVector {
  static constexpr uint32_t WordBits = 64;
  static constexpr uint32_t WordsPerElement = 2;
  static constexpr uint32_t BitsPerElement = WordBits * WordsPerElement;

  struct Element {
    Element *Next;
    uint32_t Index; ///< Bit range covered: [Index*128, Index*128+128).
    uint64_t Words[WordsPerElement];

    bool empty() const { return Words[0] == 0 && Words[1] == 0; }

    bool test(uint32_t BitInElement) const {
      return (Words[BitInElement / WordBits] >>
              (BitInElement % WordBits)) &
             1;
    }

    void set(uint32_t BitInElement) {
      Words[BitInElement / WordBits] |= uint64_t(1)
                                        << (BitInElement % WordBits);
    }

    void reset(uint32_t BitInElement) {
      Words[BitInElement / WordBits] &=
          ~(uint64_t(1) << (BitInElement % WordBits));
    }

    unsigned count() const {
      return std::popcount(Words[0]) + std::popcount(Words[1]);
    }
  };

public:
  SparseBitVector() = default;

  SparseBitVector(const SparseBitVector &RHS) { copyFrom(RHS); }

  SparseBitVector(SparseBitVector &&RHS) noexcept
      : Head(RHS.Head), Curr(RHS.Curr),
        NumElements(RHS.NumElements) {
    RHS.Head = RHS.Curr = nullptr;
    RHS.NumElements = 0;
  }

  SparseBitVector &operator=(const SparseBitVector &RHS) {
    if (this != &RHS) {
      clear();
      copyFrom(RHS);
    }
    return *this;
  }

  SparseBitVector &operator=(SparseBitVector &&RHS) noexcept {
    if (this != &RHS) {
      clear();
      Head = RHS.Head;

      Curr = RHS.Curr;
      NumElements = RHS.NumElements;
      RHS.Head = RHS.Curr = nullptr;
      RHS.NumElements = 0;
    }
    return *this;
  }

  ~SparseBitVector() { clear(); }

  /// Removes all bits.
  void clear();

  /// Returns true if no bit is set.
  bool empty() const { return Head == nullptr; }

  /// Returns the number of set bits.
  size_t count() const;

  /// Returns true if bit \p Idx is set.
  bool test(uint32_t Idx) const;

  /// Sets bit \p Idx. \returns true if the bit was newly set.
  bool set(uint32_t Idx);

  /// Clears bit \p Idx. \returns true if the bit was previously set.
  bool reset(uint32_t Idx);

  /// Sets this to the union with \p RHS. \returns true if this changed.
  bool unionWith(const SparseBitVector &RHS);

  /// Sets this to the intersection with \p RHS. \returns true if changed.
  bool intersectWith(const SparseBitVector &RHS);

  /// Removes every bit set in \p RHS. \returns true if this changed.
  bool subtract(const SparseBitVector &RHS);

  /// Computes `this |= RHS - Excluded` in one pass.
  /// \returns true if this changed.
  bool unionWithMinus(const SparseBitVector &RHS,
                      const SparseBitVector &Excluded);

  /// Returns true if this and \p RHS share any set bit.
  bool intersects(const SparseBitVector &RHS) const;

  /// Returns true if every bit of \p RHS is set in this.
  bool contains(const SparseBitVector &RHS) const;

  bool operator==(const SparseBitVector &RHS) const;
  bool operator!=(const SparseBitVector &RHS) const {
    return !(*this == RHS);
  }

  /// Returns the lowest set bit. Requires !empty().
  uint32_t findFirst() const;

  /// Invokes \p Fn with every bit set in this but not in \p Exclude, in
  /// increasing order. A dual-cursor merge walk over the two element
  /// lists: no temporary vector is materialized (difference propagation
  /// runs this on every complex-constraint resolution step).
  template <typename F>
  void forEachDiff(const SparseBitVector &Exclude, F Fn) const {
    const Element *X = Exclude.Head;
    for (const Element *E = Head; E; E = E->Next) {
      while (X && X->Index < E->Index)
        X = X->Next;
      uint64_t W0 = E->Words[0];
      uint64_t W1 = E->Words[1];
      if (X && X->Index == E->Index) {
        W0 &= ~X->Words[0];
        W1 &= ~X->Words[1];
      }
      uint32_t Base = E->Index * BitsPerElement;
      while (W0) {
        Fn(Base + static_cast<uint32_t>(std::countr_zero(W0)));
        W0 &= W0 - 1;
      }
      while (W1) {
        Fn(Base + WordBits + static_cast<uint32_t>(std::countr_zero(W1)));
        W1 &= W1 - 1;
      }
    }
  }

  /// Heap bytes owned by this vector (for the memory tables).
  size_t memoryBytes() const { return NumElements * sizeof(Element); }

  /// Forward iterator over set bit indices in increasing order.
  class iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    iterator() = default;

    explicit iterator(const Element *E) : Elem(E) {
      if (Elem) {
        Bits = Elem->Words[0];
        advanceToBit();
      }
    }

    uint32_t operator*() const {
      assert(Elem && "dereferencing end iterator");
      return Elem->Index * BitsPerElement + WordIdx * WordBits +
             static_cast<uint32_t>(std::countr_zero(Bits));
    }

    iterator &operator++() {
      Bits &= Bits - 1; // Clear lowest set bit.
      advanceToBit();
      return *this;
    }

    iterator operator++(int) {
      iterator Tmp = *this;
      ++*this;
      return Tmp;
    }

    bool operator==(const iterator &RHS) const {
      return Elem == RHS.Elem && WordIdx == RHS.WordIdx &&
             Bits == RHS.Bits;
    }
    bool operator!=(const iterator &RHS) const { return !(*this == RHS); }

  private:
    /// Skips empty words/elements until Bits holds the next set bit.
    void advanceToBit() {
      while (Elem && Bits == 0) {
        if (++WordIdx >= WordsPerElement) {
          Elem = Elem->Next;
          WordIdx = 0;
          if (!Elem)
            break;
        }
        Bits = Elem->Words[WordIdx];
      }
      if (!Elem) {
        WordIdx = 0;
        Bits = 0;
      }
    }

    const Element *Elem = nullptr;
    uint32_t WordIdx = 0;
    uint64_t Bits = 0;
  };

  iterator begin() const { return iterator(Head); }
  iterator end() const { return iterator(); }

private:
  void copyFrom(const SparseBitVector &RHS);

  Element *allocateElement(uint32_t Index, Element *Next) {
    memAllocate(MemCategory::Bitmap, sizeof(Element));
    Element *E = new Element;
    E->Next = Next;
    E->Index = Index;
    E->Words[0] = E->Words[1] = 0;
    ++NumElements;
    return E;
  }

  void freeElement(Element *E) {
    memRelease(MemCategory::Bitmap, sizeof(Element));
    delete E;
    --NumElements;
  }

  /// Finds the element with the given index, or the last element with a
  /// smaller index (nullptr if none). Uses and updates the cursor cache.
  Element *findLowerBound(uint32_t ElementIndex) const;

  Element *Head = nullptr;
  /// Cursor cache: last element visited by point queries, used to start
  /// searches near the previous access instead of at Head.
  mutable Element *Curr = nullptr;
  size_t NumElements = 0;
};

} // namespace ag

#endif // AG_ADT_SPARSEBITVECTOR_H
