//===- UnionFind.h - Union-find with rank and path compression --*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disjoint-set forest used to collapse constraint-graph cycles. The paper
/// collapses strongly-connected components "using a union-find data structure
/// with both union-by-rank and path compression heuristics"; this is that
/// structure. Solvers frequently need to merge *into a chosen survivor*
/// (whose points-to set already absorbed the others), so \c uniteInto is
/// provided alongside rank-directed \c unite.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_UNIONFIND_H
#define AG_ADT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace ag {

/// Disjoint-set forest over dense uint32_t ids.
class UnionFind {
public:
  UnionFind() = default;

  /// Creates a forest of \p N singleton sets.
  explicit UnionFind(uint32_t N) { grow(N); }

  /// Extends the forest so ids [0, N) are valid.
  void grow(uint32_t N) {
    uint32_t Old = static_cast<uint32_t>(Parent.size());
    if (N <= Old)
      return;
    Parent.resize(N);
    Rank.resize(N, 0);
    std::iota(Parent.begin() + Old, Parent.end(), Old);
  }

  /// Number of ids in the forest.
  uint32_t size() const { return static_cast<uint32_t>(Parent.size()); }

  /// Finds the representative of \p X with path compression.
  uint32_t find(uint32_t X) const {
    assert(X < Parent.size() && "id out of range");
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    // Path compression: point everything on the path at the root.
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Finds the representative of \p X without path compression. The only
  /// find that is safe for concurrent readers: it never writes Parent, so
  /// parallel solver phases (which guarantee no unite() is in flight) may
  /// call it from many threads at once.
  uint32_t findNoCompress(uint32_t X) const {
    assert(X < Parent.size() && "id out of range");
    while (Parent[X] != X)
      X = Parent[X];
    return X;
  }

  /// Returns true if \p X is its own representative.
  bool isRepresentative(uint32_t X) const { return Parent[X] == X; }

  /// Unites the sets of \p A and \p B by rank.
  /// \returns the representative of the merged set.
  uint32_t unite(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return A;
  }

  /// Unites so that \p Survivor's representative remains the representative.
  /// Needed when the caller already merged auxiliary per-node state into
  /// \p Survivor. \returns that representative.
  uint32_t uniteInto(uint32_t Survivor, uint32_t Loser) {
    Survivor = find(Survivor);
    Loser = find(Loser);
    if (Survivor == Loser)
      return Survivor;
    Parent[Loser] = Survivor;
    if (Rank[Survivor] <= Rank[Loser])
      Rank[Survivor] = Rank[Loser] + 1;
    return Survivor;
  }

private:
  mutable std::vector<uint32_t> Parent;
  std::vector<uint32_t> Rank;
};

} // namespace ag

#endif // AG_ADT_UNIONFIND_H
