//===- FaultInjector.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide fault-injection harness the robustness tests use to force
/// budget trips and allocation-pressure failures at controlled moments.
/// Sites are instrumented in the solver governor (every cancellation point)
/// and in the tracked-allocation path (memAllocate). Tests arm a site with
/// a deterministic hit countdown, or probabilistically via the repo's Rng
/// so sequences are reproducible across runs and machines.
///
/// When no site is armed the per-hit cost is one relaxed atomic load, so
/// production paths pay essentially nothing.
///
/// Allocation faults never throw from inside an allocation (unwinding there
/// could leave a data structure half-linked); they *latch*, and the solver
/// governor converts the latched fault into a clean budget trip at its next
/// cancellation point.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_FAULTINJECTOR_H
#define AG_ADT_FAULTINJECTOR_H

#include "adt/Rng.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace ag {

/// Instrumented failure points.
enum class FaultSite : unsigned {
  GovernorCheck,  ///< The solver governor's periodic budget check.
  Allocation,     ///< Tracked allocation (memAllocate) pressure point.
  SnapshotWrite,  ///< Snapshot payload write (fires mid-write: torn file).
  SnapshotFsync,  ///< Snapshot fsync (data written but not durable).
  SnapshotRename, ///< Atomic publish rename (durable temp, unpublished).
  ServeRequest,   ///< Serve REPL request entry (per-request failure).
  WorkerStall,    ///< Parallel-solver worker hangs (stops heartbeating).
};

constexpr unsigned NumFaultSites = 7;

/// Returns a stable lower_snake name for \p Site (used by ptatool's
/// --inject-fault flag and in diagnostics).
inline const char *faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::GovernorCheck:
    return "governor_check";
  case FaultSite::Allocation:
    return "allocation";
  case FaultSite::SnapshotWrite:
    return "snapshot_write";
  case FaultSite::SnapshotFsync:
    return "snapshot_fsync";
  case FaultSite::SnapshotRename:
    return "snapshot_rename";
  case FaultSite::ServeRequest:
    return "serve_request";
  case FaultSite::WorkerStall:
    return "worker_stall";
  }
  return "?";
}

/// Parses a fault-site name produced by faultSiteName. \returns false if
/// \p Name matches no site.
inline bool parseFaultSite(const std::string &Name, FaultSite &Out) {
  for (unsigned I = 0; I != NumFaultSites; ++I) {
    FaultSite Site = static_cast<FaultSite>(I);
    if (Name == faultSiteName(Site)) {
      Out = Site;
      return true;
    }
  }
  return false;
}

/// Deterministic fault-injection registry (singleton, like MemTracker).
class FaultInjector {
public:
  static FaultInjector &instance() {
    static FaultInjector Inj;
    return Inj;
  }

  /// Arms \p Site to fire exactly once, on the (\p Countdown + 1)-th hit
  /// after arming (0 fires on the next hit).
  void armAfter(FaultSite Site, uint64_t Countdown) {
    SiteState &S = Sites[index(Site)];
    S.Probability = 0;
    S.Countdown.store(Countdown, std::memory_order_relaxed);
    setArmed(Site, true);
  }

  /// Arms \p Site to fire independently on each hit with probability
  /// \p Probability, using a deterministic Rng stream seeded by \p Seed.
  void armRandom(FaultSite Site, double Probability, uint64_t Seed) {
    SiteState &S = Sites[index(Site)];
    S.Gen = Rng(Seed);
    S.Probability = Probability;
    setArmed(Site, true);
  }

  /// Disarms \p Site and clears any latched (pending) fault.
  void disarm(FaultSite Site) {
    setArmed(Site, false);
    Sites[index(Site)].Probability = 0;
    PendingAllocFault.store(false, std::memory_order_relaxed);
  }

  void disarmAll() {
    for (unsigned I = 0; I != NumFaultSites; ++I)
      disarm(static_cast<FaultSite>(I));
  }

  /// True if any site is armed (fast pre-test for instrumented paths).
  bool anyArmed() const {
    return ArmedMask.load(std::memory_order_relaxed) != 0;
  }

  /// Reports a hit at \p Site. \returns true when the fault fires.
  bool shouldFail(FaultSite Site) {
    if (!anyArmed())
      return false;
    return shouldFailSlow(Site);
  }

  /// Allocation-path hook: latches a pending fault instead of failing in
  /// place (see file comment). Called by memAllocate.
  void hitAllocation() {
    if (!anyArmed())
      return;
    if (shouldFailSlow(FaultSite::Allocation))
      PendingAllocFault.store(true, std::memory_order_relaxed);
  }

  /// Consumes a latched allocation fault. \returns true if one was pending.
  bool consumePendingAllocationFault() {
    if (!PendingAllocFault.load(std::memory_order_relaxed))
      return false;
    return PendingAllocFault.exchange(false, std::memory_order_relaxed);
  }

  /// Total hits observed at \p Site since process start (armed or not —
  /// counted only while armed, to keep the disarmed path free).
  uint64_t hits(FaultSite Site) const {
    return Sites[index(Site)].Hits.load(std::memory_order_relaxed);
  }

private:
  FaultInjector() = default;

  static unsigned index(FaultSite Site) {
    return static_cast<unsigned>(Site);
  }

  void setArmed(FaultSite Site, bool Armed) {
    unsigned Bit = 1u << index(Site);
    if (Armed)
      ArmedMask.fetch_or(Bit, std::memory_order_relaxed);
    else
      ArmedMask.fetch_and(~Bit, std::memory_order_relaxed);
  }

  bool shouldFailSlow(FaultSite Site) {
    unsigned Bit = 1u << index(Site);
    if (!(ArmedMask.load(std::memory_order_relaxed) & Bit))
      return false;
    SiteState &S = Sites[index(Site)];
    S.Hits.fetch_add(1, std::memory_order_relaxed);
    if (S.Probability > 0)
      return S.Gen.nextBool(S.Probability);
    // Countdown mode: fire exactly once when the counter hits zero.
    uint64_t C = S.Countdown.load(std::memory_order_relaxed);
    if (C > 0) {
      S.Countdown.store(C - 1, std::memory_order_relaxed);
      return false;
    }
    setArmed(Site, false);
    return true;
  }

  struct SiteState {
    std::atomic<uint64_t> Countdown{0};
    std::atomic<uint64_t> Hits{0};
    double Probability = 0;
    Rng Gen;
  };

  SiteState Sites[NumFaultSites];
  std::atomic<unsigned> ArmedMask{0};
  std::atomic<bool> PendingAllocFault{false};
};

} // namespace ag

#endif // AG_ADT_FAULTINJECTOR_H
