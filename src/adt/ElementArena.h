//===- ElementArena.h - Slab allocator for bitmap elements ------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-block slab allocator servicing SparseBitVector element
/// allocation. The paper's solvers spend nearly all of their memory
/// traffic on 32-byte bitmap elements; routing them through per-solve
/// arenas replaces one malloc/free pair per element with a pointer pop
/// off an intrusive free list, and keeps elements of one solve packed
/// into contiguous slabs (the linear merge kernels walk them in list
/// order, so locality matters).
///
/// Ownership model (DESIGN.md §13): a solver context owns its arenas and
/// declares them *before* every set vector, so unwind destruction frees
/// all elements back into live arenas before the slabs go away. A
/// SparseBitVector binds to at most one arena for its whole lifetime;
/// every element it ever allocates or frees goes through that arena.
///
/// Thread safety: each arena is internally thread-safe behind a tiny
/// spinlock. Correctness therefore never depends on lock alignment with
/// the parallel solver's stripe locks — sets (and the elements inside
/// them) may migrate between nodes across merges without violating any
/// arena invariant. The parallel solver still shards arenas by node
/// stripe purely to keep the spinlocks uncontended.
///
//===----------------------------------------------------------------------===//

#ifndef AG_ADT_ELEMENTARENA_H
#define AG_ADT_ELEMENTARENA_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ag {

/// Process-wide arena accounting, published into the mem.arena_* gauges
/// at phase boundaries. Updated once per slab (not per element), so the
/// hot allocation path touches no globals.
class ArenaStats {
public:
  static ArenaStats &instance() {
    static ArenaStats S;
    return S;
  }

  void onSlabAllocated(size_t Bytes) {
    bumpPeak(CurrentReserved, PeakReserved, Bytes);
    bumpPeak(CurrentSlabs, PeakSlabs, 1);
  }

  void onSlabsReleased(size_t Bytes, uint64_t Slabs) {
    CurrentReserved.fetch_sub(Bytes, std::memory_order_relaxed);
    CurrentSlabs.fetch_sub(Slabs, std::memory_order_relaxed);
  }

  uint64_t currentReservedBytes() const {
    return CurrentReserved.load(std::memory_order_relaxed);
  }
  uint64_t peakReservedBytes() const {
    return PeakReserved.load(std::memory_order_relaxed);
  }
  uint64_t peakSlabs() const {
    return PeakSlabs.load(std::memory_order_relaxed);
  }

  /// Resets peaks to the current live values (per-run bench windows).
  void resetPeaks() {
    PeakReserved.store(CurrentReserved.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    PeakSlabs.store(CurrentSlabs.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }

private:
  ArenaStats() = default;

  static void bumpPeak(std::atomic<uint64_t> &Cur, std::atomic<uint64_t> &Peak,
                       uint64_t Add) {
    uint64_t Now = Cur.fetch_add(Add, std::memory_order_relaxed) + Add;
    uint64_t Prev = Peak.load(std::memory_order_relaxed);
    while (Now > Prev &&
           !Peak.compare_exchange_weak(Prev, Now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> CurrentReserved{0};
  std::atomic<uint64_t> PeakReserved{0};
  std::atomic<uint64_t> CurrentSlabs{0};
  std::atomic<uint64_t> PeakSlabs{0};
};

/// Chunked-slab fixed-block allocator with an intrusive free list.
/// Blocks are \c blockBytes() each; slab sizes grow geometrically so
/// small solves reserve little and large solves amortize slab overhead.
class ElementArena {
public:
  explicit ElementArena(size_t BlockBytes)
      : BlockBytes(BlockBytes < sizeof(void *) ? sizeof(void *) : BlockBytes) {
    assert(BlockBytes % alignof(std::max_align_t) == 0 &&
           "element blocks must preserve natural alignment");
  }

  ElementArena(const ElementArena &) = delete;
  ElementArena &operator=(const ElementArena &) = delete;

  ~ElementArena() {
    size_t Total = 0;
    for (const Slab &S : Slabs) {
      Total += S.Bytes;
      ::operator delete(S.Base);
    }
    if (!Slabs.empty())
      ArenaStats::instance().onSlabsReleased(Total, Slabs.size());
  }

  /// Pops a block off the free list, carving a fresh slab when dry.
  void *allocate() {
    Lock.lock();
    FreeBlock *B = FreeList;
    if (!B) {
      refill();
      B = FreeList;
    }
    FreeList = B->Next;
    ++LiveBlocks;
    Lock.unlock();
    return B;
  }

  /// Returns \p P (obtained from allocate()) to the free list.
  void deallocate(void *P) {
    Lock.lock();
    FreeBlock *B = static_cast<FreeBlock *>(P);
    B->Next = FreeList;
    FreeList = B;
    --LiveBlocks;
    Lock.unlock();
  }

  size_t blockBytes() const { return BlockBytes; }

  /// Total slab bytes currently reserved from the system.
  size_t reservedBytes() const {
    size_t Total = 0;
    for (const Slab &S : Slabs)
      Total += S.Bytes;
    return Total;
  }

  /// Blocks handed out and not yet returned.
  uint64_t liveBlocks() const { return LiveBlocks; }

private:
  /// Acquire/release spinlock; uncontended in practice (sequential
  /// solvers own one arena, the parallel solver shards by node stripe).
  struct SpinLock {
    std::atomic_flag Flag = ATOMIC_FLAG_INIT;
    void lock() {
      while (Flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { Flag.clear(std::memory_order_release); }
  };

  struct FreeBlock {
    FreeBlock *Next;
  };

  struct Slab {
    void *Base;
    size_t Bytes;
  };

  /// Carves a new slab into free-list blocks (front of the list ends up
  /// at the slab's start, so a fresh slab is consumed front to back).
  void refill() {
    size_t Blocks = NextSlabBlocks;
    if (NextSlabBlocks < MaxSlabBlocks)
      NextSlabBlocks *= 2;
    size_t Bytes = Blocks * BlockBytes;
    char *Base = static_cast<char *>(::operator new(Bytes));
    Slabs.push_back(Slab{Base, Bytes});
    ArenaStats::instance().onSlabAllocated(Bytes);
    for (size_t I = Blocks; I != 0; --I) {
      FreeBlock *B = reinterpret_cast<FreeBlock *>(Base + (I - 1) * BlockBytes);
      B->Next = FreeList;
      FreeList = B;
    }
  }

  static constexpr size_t FirstSlabBlocks = 64;
  static constexpr size_t MaxSlabBlocks = 8192;

  const size_t BlockBytes;
  SpinLock Lock;
  FreeBlock *FreeList = nullptr;
  std::vector<Slab> Slabs;
  size_t NextSlabBlocks = FirstSlabBlocks;
  uint64_t LiveBlocks = 0;
};

} // namespace ag

#endif // AG_ADT_ELEMENTARENA_H
