//===- NaiveSolver.h - Figure 1 dynamic transitive closure ------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1: the basic worklist algorithm maintaining the
/// explicit dynamic transitive closure with no cycle detection at all.
/// Present as a readable specification and as the oracle the property
/// tests compare every optimized solver against. (The paper notes that
/// without cycle detection the larger benchmarks run out of memory — this
/// solver is for small and medium inputs.)
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_NAIVESOLVER_H
#define AG_SOLVERS_NAIVESOLVER_H

#include "adt/Worklist.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

namespace ag {

/// The Figure-1 baseline, templated over the points-to representation.
template <typename PtsPolicy> class NaiveSolver {
public:
  NaiveSolver(const ConstraintSystem &CS, SolverStats &Stats,
              const SolverOptions &Opts = SolverOptions(),
              const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps), W(Opts.Worklist) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.Governor = Opts.Governor;
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    W.grow(N);
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        W.push(V);

    auto Push = [this](NodeId V) { W.push(V); };
    while (!W.empty()) {
      NodeId Node = G.find(W.pop());
      ++G.Stats.WorklistPops;
      G.governorStep();
      G.resolveComplex(Node, Push);
      for (uint32_t Raw : G.Succs[Node]) {
        NodeId Z = G.find(Raw);
        if (Z == Node)
          continue;
        if (G.propagate(Node, Z))
          W.push(Z);
      }
    }
    return G.extractSolution();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  SolverContext<PtsPolicy> G;
  Worklist W;
};

} // namespace ag

#endif // AG_SOLVERS_NAIVESOLVER_H
