//===- BlqSolver.cpp - Berndl-Lhotak-Qian BDD solver ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/BlqSolver.h"

#include "core/SolveBudget.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <map>
#include <optional>

using namespace ag;

BlqSolver::BlqSolver(const ConstraintSystem &CS, SolverStats &Stats,
                     const SolverOptions &Opts, const HcdResult *Hcd,
                     const std::vector<NodeId> *SeedReps)
    : CS(CS), Stats(Stats), Gov(Opts.Governor) {
  Mgr = std::make_unique<BddManager>(Opts.BlqInitialCapacity);
  uint64_t N = std::max<uint64_t>(CS.numNodes(), 2);
  // Domain creation order fixes the interleaved level order D1, D3, D2 —
  // chosen so every rename and offset application preserves variable order.
  Doms = std::make_unique<BddDomains>(*Mgr, std::vector<uint64_t>{N, N, N});

  Rep.resize(CS.numNodes());
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    Rep[V] = V;
  if (SeedReps) {
    assert(SeedReps->size() == CS.numNodes());
    // Flatten to canonical targets.
    for (NodeId V = 0; V != CS.numNodes(); ++V) {
      NodeId R = (*SeedReps)[V];
      while ((*SeedReps)[R] != R)
        R = (*SeedReps)[R];
      Rep[V] = R;
    }
  }
  if (Hcd)
    HcdLazy = Hcd->Lazy;

  AddrTaken.assign(CS.numNodes(), false);
  for (const Constraint &C : CS.constraints()) {
    if (C.Kind != ConstraintKind::AddressOf)
      continue;
    for (uint32_t I = 0, E = CS.sizeOf(C.Src); I != E; ++I)
      AddrTaken[C.Src + I] = true;
  }
}

BlqSolver::~BlqSolver() = default;

NodeId BlqSolver::findRep(NodeId V) const { return Rep[V]; }

Bdd BlqSolver::offsetRelation(uint32_t Offset, unsigned FromDom,
                              unsigned ToDom) {
  if (Offset == 0) {
    // Identity over (FromDom, ToDom), corrected for pre-merged objects:
    // object o's variable role lives at findRep(o).
    // Exceptions are rare, so build identity minus exceptions plus the
    // corrected pairs.
    // Only nodes that can appear in a points-to set need correct rows;
    // restricting the exception list keeps the relation near-identity.
    std::vector<NodeId> Exceptions;
    for (NodeId V = 0; V != CS.numNodes(); ++V)
      if (AddrTaken[V] && findRep(V) != V)
        Exceptions.push_back(V);

    const std::vector<uint32_t> &FromLv = Doms->levels(FromDom);
    const std::vector<uint32_t> &ToLv = Doms->levels(ToDom);
    assert(FromLv.size() == ToLv.size());
    Bdd Ident = Mgr->trueBdd();
    for (size_t J = FromLv.size(); J-- != 0;) {
      Bdd A = Mgr->var(FromLv[J]);
      Bdd B = Mgr->var(ToLv[J]);
      Bdd Bicond = Mgr->bddIte(A, B, Mgr->bddNot(B));
      Ident = Mgr->bddAnd(Ident, Bicond);
    }
    if (Exceptions.empty())
      return Ident;
    Bdd Excl = Mgr->falseBdd();
    Bdd Pairs = Mgr->falseBdd();
    for (NodeId V : Exceptions) {
      Bdd From = Doms->element(FromDom, V);
      Excl = Mgr->bddOr(Excl, From);
      Pairs = Mgr->bddOr(
          Pairs, Mgr->bddAnd(From, Doms->element(ToDom, findRep(V))));
    }
    return Mgr->bddOr(Mgr->bddDiff(Ident, Excl), Pairs);
  }

  // Non-zero offsets: enumerate the objects wide enough to have this slot.
  Bdd Out = Mgr->falseBdd();
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    if (Gov)
      Gov->onStep();
    if (!AddrTaken[V])
      continue; // Can never appear in a points-to set.
    NodeId T = CS.offsetTarget(V, Offset);
    if (T == InvalidNode)
      continue;
    Out = Mgr->bddOr(Out, Mgr->bddAnd(Doms->element(FromDom, V),
                                      Doms->element(ToDom, findRep(T))));
  }
  return Out;
}

namespace {
/// Debug timing (AG_BLQ_DEBUG=1): prints per-phase milliseconds.
struct PhaseTimer {
  explicit PhaseTimer(const char *Name)
      : Name(Name), Enabled(std::getenv("AG_BLQ_DEBUG") != nullptr),
        Start(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (Enabled)
      std::fprintf(stderr, "[blq] %-18s %.2f ms\n", Name,
                   std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - Start)
                       .count());
  }
  const char *Name;
  bool Enabled;
  std::chrono::steady_clock::time_point Start;
};
} // namespace

PointsToSolution BlqSolver::solve() {
  // --- Build the initial relations.
  Bdd P = Mgr->falseBdd();   // Points-to (D1 var, D2 obj).
  Bdd C = Mgr->falseBdd();   // Copy edges (D1 dst, D3 src).
  std::map<uint32_t, size_t> GroupIndex;
  // Index-based lookup: Groups may reallocate while being filled.
  auto groupFor = [&](uint32_t Offset) -> OffsetGroup & {
    auto [It, New] = GroupIndex.try_emplace(Offset, Groups.size());
    if (New)
      Groups.push_back(
          OffsetGroup{Offset, Mgr->falseBdd(), Mgr->falseBdd()});
    return Groups[It->second];
  };

  // Phase timers are RAII so a governor throw cannot leak one.
  std::optional<PhaseTimer> T;
  T.emplace("build relations");
  for (const Constraint &Cn : CS.constraints()) {
    if (Gov)
      Gov->onStep();
    switch (Cn.Kind) {
    case ConstraintKind::AddressOf:
      P = Mgr->bddOr(P, Mgr->bddAnd(Doms->element(D1, findRep(Cn.Dst)),
                                    Doms->element(D2, Cn.Src)));
      break;
    case ConstraintKind::Copy:
      C = Mgr->bddOr(C, Mgr->bddAnd(Doms->element(D1, findRep(Cn.Dst)),
                                    Doms->element(D3, findRep(Cn.Src))));
      break;
    case ConstraintKind::Load: {
      OffsetGroup &G = groupFor(Cn.Offset);
      G.LoadRel = Mgr->bddOr(
          G.LoadRel, Mgr->bddAnd(Doms->element(D1, findRep(Cn.Dst)),
                                 Doms->element(D3, findRep(Cn.Src))));
      break;
    }
    case ConstraintKind::Store: {
      OffsetGroup &G = groupFor(Cn.Offset);
      G.StoreRel = Mgr->bddOr(
          G.StoreRel, Mgr->bddAnd(Doms->element(D1, findRep(Cn.Dst)),
                                  Doms->element(D3, findRep(Cn.Src))));
      break;
    }
    }
  }

  T.emplace("offset relations");
  // Pre-built per-offset object-slot relations.
  std::vector<Bdd> OffToD3, OffToD1;
  for (OffsetGroup &G : Groups) {
    OffToD3.push_back(offsetRelation(G.Offset, D2, D3));
    OffToD1.push_back(offsetRelation(G.Offset, D2, D1));
  }

  // Identity object->variable relations, shared by the HCD rule.
  Bdd IdD2D3 = offsetRelation(0, D2, D3);
  Bdd IdD2D1 = offsetRelation(0, D2, D1);

  T.emplace("solve iterations");
  BddVarSetId QD1 = Doms->varSet(D1);
  BddVarSetId QD2 = Doms->varSet(D2);
  BddVarSetId QD3 = Doms->varSet(D3);
  BddPairingId D1toD3 = Doms->pairing(D1, D3);

  // --- Semi-naive iteration with Berndl-style incrementalization.
  Bdd PprocEdges = Mgr->falseBdd(); // P tuples already used for edge gen.
  Bdd Cused = Mgr->falseBdd();      // C tuples already joined with full P.
  Bdd Pprop = Mgr->falseBdd();      // P tuples already propagated.
  // Incrementally maintained rename of P to (D3, D2): renaming only the
  // delta keeps the expensive replace() off the full relation.
  Bdd P3 = Mgr->falseBdd();
  Bdd P3src = Mgr->falseBdd(); // The P value P3 mirrors.
  auto refreshP3 = [&]() {
    if (P == P3src)
      return;
    Bdd Delta = Mgr->bddDiff(P, P3src);
    P3 = Mgr->bddOr(P3, Mgr->replace(Delta, D1toD3));
    P3src = P;
  };

  bool Debug = std::getenv("AG_BLQ_DEBUG") != nullptr;
  double TEdge = 0, TProp = 0, TInner = 0;
  auto tick = [] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  // Extraction of whatever P currently holds — the final answer on the
  // normal path, a partial snapshot when the governor aborts the loop.
  auto extract = [&](const Bdd &Rel) {
    PointsToSolution Out(CS.numNodes());
    for (NodeId V = 0; V != CS.numNodes(); ++V)
      if (findRep(V) != V)
        Out.setRep(V, findRep(V));
    Doms->forEachPair(Rel, D1, D2, [&](uint64_t Var, uint64_t Obj) {
      Out.mutableSet(static_cast<NodeId>(Var))
          .set(static_cast<uint32_t>(Obj));
    });
    Out.internShared();
    return Out;
  };
  try {
  for (;;) {
    ++Stats.WorklistPops; // Iteration counter stand-in.
    if (Gov)
      Gov->checkpoint();
    Bdd Pstart = P;
    Bdd Cstart = C;
    double TA = tick();

    // (a) Edge generation from new points-to tuples.
    Bdd Pnew = Mgr->bddDiff(P, PprocEdges);
    if (!Pnew.isFalse()) {
      Bdd Pnew3 = Mgr->replace(Pnew, D1toD3); // (D3 base, D2 obj)
      for (size_t I = 0; I != Groups.size(); ++I) {
        OffsetGroup &G = Groups[I];
        if (!G.LoadRel.isFalse()) {
          // J(D1 dst, D2 obj) for new pts of load bases.
          Bdd J = Mgr->relProd(G.LoadRel, Pnew3, QD3);
          if (!J.isFalse())
            C = Mgr->bddOr(C, Mgr->relProd(J, OffToD3[I], QD2));
        }
        if (!G.StoreRel.isFalse()) {
          // J2(D3 src, D2 obj) for new pts of store bases.
          Bdd J2 = Mgr->relProd(G.StoreRel, Pnew, QD1);
          if (!J2.isFalse())
            C = Mgr->bddOr(C, Mgr->relProd(J2, OffToD1[I], QD2));
        }
      }
      // HCD: inject the cycle-closing edges for lazy tuples whose source
      // variable gained points-to members.
      for (const auto &[NRaw, TRaw] : HcdLazy) {
        NodeId NRep = findRep(NRaw);
        NodeId T = findRep(TRaw);
        Bdd Row = Mgr->relProd(Pnew, Doms->element(D1, NRep), QD1);
        if (Row.isFalse())
          continue;
        ++Stats.HcdCollapses;
        // Members as variables in D3 / D1 (offset-0 relation routes
        // through representatives).
        Bdd MemD3 = Mgr->relProd(Row, IdD2D3, QD2);
        Bdd MemD1 = Mgr->relProd(Row, IdD2D1, QD2);
        Bdd EdgeIn = Mgr->bddAnd(Doms->element(D1, T), MemD3);
        Bdd EdgeOut = Mgr->bddAnd(MemD1, Doms->element(D3, T));
        C = Mgr->bddOr(C, Mgr->bddOr(EdgeIn, EdgeOut));
      }
      PprocEdges = P;
    }

    double TB = tick();
    TEdge += TB - TA;
    // (b) Propagate the full solution across new edges.
    Bdd Cnew = Mgr->bddDiff(C, Cused);
    if (!Cnew.isFalse()) {
      refreshP3();
      P = Mgr->bddOr(P, Mgr->relProd(Cnew, P3, QD3));
      Cused = C;
      ++Stats.Propagations;
      if (Gov)
        Gov->onPropagation();
    }

    double TC = tick();
    TProp += TC - TB;
    // (c) Propagate new tuples across all edges, to a local fixpoint.
    for (;;) {
      Bdd Pd = Mgr->bddDiff(P, Pprop);
      if (Pd.isFalse())
        break;
      Pprop = P;
      Bdd Pd3 = Mgr->replace(Pd, D1toD3);
      P = Mgr->bddOr(P, Mgr->relProd(C, Pd3, QD3));
      ++Stats.Propagations;
      if (Gov)
        Gov->onPropagation();
    }

    TInner += tick() - TC;
    if (P == Pstart && C == Cstart)
      break;
  }
  } catch (BudgetExceededError &E) {
    // Unwind cleanly with whatever the relation holds so far; the BDD
    // state is always consistent between operations.
    E.setPartial(std::make_shared<PointsToSolution>(extract(P)));
    throw;
  }
  if (Debug)
    std::fprintf(stderr,
                 "[blq] edge-gen %.1f ms, prop-new-edges %.1f ms, "
                 "prop-new-pts %.1f ms, gcs %u, cap %u\n",
                 TEdge, TProp, TInner, Mgr->gcCount(), Mgr->capacity());

  T.emplace("extraction");
  Stats.EdgesAdded = Doms->countPairs(C, D1, D3);

  // --- Extraction.
  PointsToSolution Out = extract(P);
  T.reset();
  return Out;
}
