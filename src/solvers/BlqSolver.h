//===- BlqSolver.h - Berndl-Lhotak-Qian BDD solver --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BLQ algorithm the paper evaluates: the whole points-to solution and
/// the whole copy-edge set are single BDD relations, and solving iterates
/// relational products until fixpoint, with Berndl et al.'s
/// incrementalization (only not-yet-processed tuples feed each step).
/// Unlike the original Java formulation, this version is field-insensitive
/// for C and resolves indirect calls via offset relations. BLQ performs no
/// cycle detection; with HCD enabled (BLQ+HCD) the lazy tuples inject the
/// cycle-closing edges preemptively.
///
/// Domains (interleaved bit order D1, D3, D2):
///   D1 — the pointer variable of a points-to tuple / edge destination
///   D3 — edge source (a second variable domain)
///   D2 — the pointed-to object
/// Relations: P(D1,D2) points-to; C(D1,D3) copy edges (dst, src).
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_BLQSOLVER_H
#define AG_SOLVERS_BLQSOLVER_H

#include "adt/Statistics.h"
#include "bdd/BddDomain.h"
#include "constraints/ConstraintSystem.h"
#include "core/HcdOffline.h"
#include "core/PointsToSolution.h"
#include "core/Solver.h"

#include <memory>
#include <vector>

namespace ag {

/// The BLQ baseline (and BLQ+HCD). Always BDD-backed, regardless of the
/// points-to representation chosen for the other solvers.
class BlqSolver {
public:
  BlqSolver(const ConstraintSystem &CS, SolverStats &Stats,
            const SolverOptions &Opts = SolverOptions(),
            const HcdResult *Hcd = nullptr,
            const std::vector<NodeId> *SeedReps = nullptr);
  ~BlqSolver();

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve();

private:
  static constexpr unsigned D1 = 0; ///< Pointer variable / edge dst.
  static constexpr unsigned D3 = 1; ///< Edge src (temporary var domain).
  static constexpr unsigned D2 = 2; ///< Pointed-to object.

  /// Builds the relation {(o, o+k)} over (\p FromDom, \p ToDom) for every
  /// object o where offset k is valid; k == 0 yields the full identity.
  Bdd offsetRelation(uint32_t Offset, unsigned FromDom, unsigned ToDom);

  const ConstraintSystem &CS;
  SolverStats &Stats;
  /// Resource governor, or null when un-governed (see SolverOptions).
  SolveGovernor *Gov = nullptr;
  std::unique_ptr<BddManager> Mgr;
  std::unique_ptr<BddDomains> Doms;

  /// Node representative map (identity unless seeded / HCD collapses).
  std::vector<NodeId> Rep;
  NodeId findRep(NodeId V) const;

  /// Nodes that can appear in points-to sets (spans of address-taken
  /// objects). Offset/identity relations only need rows for these.
  std::vector<bool> AddrTaken;

  /// Complex constraints grouped by offset, as (dst/base/src) relations.
  struct OffsetGroup {
    uint32_t Offset;
    Bdd LoadRel;  ///< (D1 = dst, D3 = base) for loads dst = *(base+k).
    Bdd StoreRel; ///< (D1 = base, D3 = src) for stores *(base+k) = src.
  };
  std::vector<OffsetGroup> Groups;

  std::vector<std::pair<NodeId, NodeId>> HcdLazy;
};

} // namespace ag

#endif // AG_SOLVERS_BLQSOLVER_H
