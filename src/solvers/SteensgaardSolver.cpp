//===- SteensgaardSolver.cpp - Unification-based pointer analysis ---------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/SteensgaardSolver.h"

#include "adt/UnionFind.h"

#include <cassert>
#include <utility>
#include <vector>

using namespace ag;

namespace {

/// The unification engine: classes with at most one pointee class each.
class Steensgaard {
public:
  Steensgaard(const ConstraintSystem &CS, SteensgaardStats &Stats)
      : CS(CS), Stats(Stats), Classes(CS.numNodes()),
        Pointee(CS.numNodes(), InvalidNode) {}

  PointsToSolution run() {
    // Unification cannot express per-offset slots: fold every sized
    // object's slots into one class so offset dereferences stay sound.
    for (NodeId V = 0; V != CS.numNodes(); ++V)
      for (uint32_t I = 1, E = CS.sizeOf(V); I < E; ++I)
        unify(V, V + I);

    // Sweep the constraints to a fixpoint. Each pass applies every rule
    // whose operands have materialized; unification is monotone, so the
    // number of passes is small.
    bool AnyChange = true;
    while (AnyChange) {
      AnyChange = false;
      ++Stats.Passes;
      for (const Constraint &C : CS.constraints())
        AnyChange |= apply(C);
    }

    return extract();
  }

private:
  NodeId find(NodeId V) { return Classes.find(V); }

  NodeId pointee(NodeId V) {
    NodeId P = Pointee[find(V)];
    return P == InvalidNode ? InvalidNode : find(P);
  }

  /// Sets (or unifies) \p C's pointee class to \p P.
  /// \returns true if anything changed.
  bool setPointee(NodeId C, NodeId P) {
    C = find(C);
    P = find(P);
    NodeId Cur = pointee(C);
    if (Cur == InvalidNode) {
      Pointee[C] = P;
      return true;
    }
    if (Cur == P)
      return false;
    return unify(Cur, P);
  }

  /// Unifies the classes of \p A and \p B, recursively unifying pointees
  /// (iteratively, to stay safe on cyclic type structures).
  /// \returns true if any merge happened.
  bool unify(NodeId A, NodeId B) {
    bool Changed = false;
    std::vector<std::pair<NodeId, NodeId>> Work = {{A, B}};
    while (!Work.empty()) {
      auto [X, Y] = Work.back();
      Work.pop_back();
      X = find(X);
      Y = find(Y);
      if (X == Y)
        continue;
      NodeId Px = Pointee[X] == InvalidNode ? InvalidNode : find(Pointee[X]);
      NodeId Py = Pointee[Y] == InvalidNode ? InvalidNode : find(Pointee[Y]);
      NodeId S = Classes.unite(X, Y);
      ++Stats.Unifications;
      Changed = true;
      if (Px != InvalidNode && Py != InvalidNode) {
        Pointee[S] = Px;
        Work.emplace_back(Px, Py);
      } else if (Px != InvalidNode || Py != InvalidNode) {
        Pointee[S] = Px != InvalidNode ? Px : Py;
      } else {
        Pointee[S] = InvalidNode;
      }
    }
    return Changed;
  }

  bool apply(const Constraint &C) {
    switch (C.Kind) {
    case ConstraintKind::AddressOf:
      // a = &b: b's class is in a's pointee class.
      return setPointee(C.Dst, C.Src);
    case ConstraintKind::Copy: {
      // a = b: pts(a) ⊇ pts(b); with unification, share the pointee.
      NodeId Pb = pointee(C.Src);
      if (Pb == InvalidNode)
        return false; // Nothing flows yet; later passes catch it.
      return setPointee(C.Dst, Pb);
    }
    case ConstraintKind::Load: {
      // a = *(b+k): pts(a) ⊇ pts(*b) (offsets pre-folded).
      NodeId Pb = pointee(C.Src);
      if (Pb == InvalidNode)
        return false;
      NodeId Pp = pointee(Pb);
      if (Pp == InvalidNode)
        return false;
      return setPointee(C.Dst, Pp);
    }
    case ConstraintKind::Store: {
      // *(a+k) = b: pts(*a) ⊇ pts(b).
      NodeId Pa = pointee(C.Dst);
      NodeId Pb = pointee(C.Src);
      if (Pa == InvalidNode || Pb == InvalidNode)
        return false;
      return setPointee(Pa, Pb);
    }
    }
    assert(false && "invalid constraint kind");
    return false;
  }

  PointsToSolution extract() {
    const uint32_t N = CS.numNodes();
    // Objects that can appear in points-to sets, bucketed by class.
    std::vector<std::vector<NodeId>> ClassObjects(N);
    std::vector<bool> AddrTaken(N, false);
    for (const Constraint &C : CS.constraints())
      if (C.Kind == ConstraintKind::AddressOf)
        for (uint32_t I = 0, E = CS.sizeOf(C.Src); I != E; ++I)
          AddrTaken[C.Src + I] = true;
    for (NodeId V = 0; V != N; ++V)
      if (AddrTaken[V])
        ClassObjects[find(V)].push_back(V);

    PointsToSolution Out(N);
    // One shared set per pointee class: first node with that pointee
    // becomes the solution representative.
    std::vector<NodeId> ClassRep(N, InvalidNode);
    for (NodeId V = 0; V != N; ++V) {
      NodeId P = pointee(V);
      if (P == InvalidNode)
        continue; // Empty set.
      if (ClassRep[P] == InvalidNode) {
        ClassRep[P] = V;
        SparseBitVector &Set = Out.mutableSet(V);
        for (NodeId O : ClassObjects[P])
          Set.set(O);
      } else {
        Out.setRep(V, ClassRep[P]);
      }
    }
    return Out;
  }

  const ConstraintSystem &CS;
  SteensgaardStats &Stats;
  UnionFind Classes;
  std::vector<NodeId> Pointee;
};

} // namespace

PointsToSolution ag::solveSteensgaard(const ConstraintSystem &CS,
                                      SteensgaardStats *Stats) {
  SteensgaardStats Local;
  Steensgaard S(CS, Stats ? *Stats : Local);
  return S.run();
}
