//===- PkhSolver.h - Pearce-Kelly-Hankin periodic-sweep solver --*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Pearce et al. algorithm the paper evaluates: an explicit-closure
/// worklist solver where, "rather than detect cycles at every edge
/// insertion, the entire constraint graph is periodically swept to detect
/// and collapse any cycles that have formed since the last sweep". The
/// sweep runs at the start of every worklist round; within a round, nodes
/// are processed with no cycle detection. Optionally combined with HCD
/// (PKH+HCD).
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_PKHSOLVER_H
#define AG_SOLVERS_PKHSOLVER_H

#include "core/HcdOffline.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

#include <vector>

namespace ag {

/// The PKH baseline (and PKH+HCD), templated over the points-to
/// representation.
template <typename PtsPolicy> class PkhSolver {
public:
  PkhSolver(const ConstraintSystem &CS, SolverStats &Stats,
            const SolverOptions &Opts = SolverOptions(),
            const HcdResult *Hcd = nullptr,
            const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.Governor = Opts.Governor;
    if (Hcd)
      for (const auto &[N, Target] : Hcd->Lazy)
        G.HcdTargets[G.find(N)].push_back(Target);
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    InRound.assign(N, 0);
    std::vector<NodeId> Current, Next;
    uint32_t Round = 0;

    auto Push = [&](NodeId V) {
      V = G.find(V);
      if (InRound[V] != Round + 1) {
        InRound[V] = Round + 1;
        Next.push_back(V);
      }
    };

    ++Round;
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        Push(V);
    Current.swap(Next);

    while (!Current.empty()) {
      // The periodic sweep: collapse everything that cycled since last
      // round. Survivors' points-to sets grew; requeue them.
      G.detectAndCollapseAll();
      G.drainMergeLog(Push);
      ++Round;
      for (NodeId Raw : Current) {
        NodeId Node = G.find(Raw);
        if (Processed.size() < N)
          Processed.resize(N, 0);
        if (Processed[Node] == Round)
          continue; // Merged with an already-processed node this round.
        Processed[Node] = Round;
        ++G.Stats.WorklistPops;
        G.governorStep();

        Node = G.applyHcd(Node, Push);
        G.resolveComplex(Node, Push);
        for (uint32_t RawSucc : G.Succs[Node]) {
          NodeId Z = G.find(RawSucc);
          if (Z == Node)
            continue;
          if (G.propagate(Node, Z))
            Push(Z);
        }
      }
      Current.clear();
      Current.swap(Next);
    }
    return G.extractSolution();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  SolverContext<PtsPolicy> G;
  std::vector<uint32_t> InRound;
  std::vector<uint32_t> Processed;
};

} // namespace ag

#endif // AG_SOLVERS_PKHSOLVER_H
