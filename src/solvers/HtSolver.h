//===- HtSolver.h - Heintze-Tardieu pre-transitive solver -------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Heintze-Tardieu algorithm the paper evaluates (field-insensitive):
/// the constraint graph is kept in pre-transitive form — only original and
/// complex-constraint-derived copy edges, no transitive edges — and
/// indirect constraints are resolved via cached reachability queries.
/// A query computes pts(n) = orig(n) ∪ ⋃ pts(pred) by DFS over predecessor
/// edges, detecting and collapsing cycles as a side-effect (Nuutila-variant
/// Tarjan). Caches are valid within one query epoch; each solver round
/// starts a fresh epoch because new edges may have invalidated results —
/// the "unavoidable redundant work" the paper describes. Optionally
/// combined with HCD (HT+HCD).
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_HTSOLVER_H
#define AG_SOLVERS_HTSOLVER_H

#include "core/HcdOffline.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

#include <vector>

namespace ag {

/// The HT baseline (and HT+HCD), templated over the points-to
/// representation.
///
/// Note on orientation: the shared context is built with ReverseEdges, so
/// G.Succs[u] holds u's *predecessors* (nodes whose points-to sets flow
/// into u), which is the direction the reachability queries walk.
template <typename PtsPolicy> class HtSolver {
  using Ctx = SolverContext<PtsPolicy>;
  using PtsSet = typename PtsPolicy::Set;

public:
  HtSolver(const ConstraintSystem &CS, SolverStats &Stats,
           const SolverOptions &Opts = SolverOptions(),
           const HcdResult *Hcd = nullptr,
           const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps, /*ReverseEdges=*/true) {
    G.Governor = Opts.Governor;
    if (Hcd)
      HcdLazy = Hcd->Lazy;
    const uint32_t N = CS.numNodes();
    CachePts.resize(N);
    CacheEpoch.assign(N, 0);
    VisitEpoch.assign(N, 0);
    DfsNum.assign(N, 0);
    LowLink.assign(N, 0);
    OnStackEpoch.assign(N, 0);
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++Epoch;
      // Resolve every complex constraint against fresh reachability
      // queries; new edges are found or the fixpoint is proven.
      for (const Constraint &C : G.CS.constraints()) {
        G.governorStep();
        if (C.Kind == ConstraintKind::Load) {
          NodeId Base = G.find(C.Src);
          query(Base);
          bool Local = false;
          CachePts[G.find(Base)].forEach(G.Ctx, [&](NodeId V) {
            NodeId T = G.CS.offsetTarget(V, C.Offset);
            // Predecessor edge: pts(v+k) flows into dst.
            if (T != InvalidNode && G.addEdge(C.Dst, T))
              Local = true;
          });
          Changed |= Local;
        } else if (C.Kind == ConstraintKind::Store) {
          NodeId Base = G.find(C.Dst);
          query(Base);
          bool Local = false;
          CachePts[G.find(Base)].forEach(G.Ctx, [&](NodeId V) {
            NodeId T = G.CS.offsetTarget(V, C.Offset);
            // Predecessor edge: pts(src) flows into v+k.
            if (T != InvalidNode && G.addEdge(T, C.Src))
              Local = true;
          });
          Changed |= Local;
        }
      }
      // HT+HCD: apply the lazy collapses between queries (never inside a
      // DFS, whose frames must stay valid).
      for (const auto &[Node, Target] : HcdLazy) {
        NodeId N = G.find(Node);
        query(N);
        N = G.find(N);
        std::vector<NodeId> Members;
        CachePts[N].forEach(G.Ctx, [&](NodeId V) { Members.push_back(V); });
        NodeId A = G.find(Target);
        for (NodeId V : Members) {
          NodeId R = G.find(V);
          if (R == A)
            continue;
          A = mergeWithCache(A, R);
          ++G.Stats.HcdCollapses;
          Changed = true;
        }
      }
    }
    // Final pass: compute the full closure for every node.
    ++Epoch;
    const uint32_t N = G.CS.numNodes();
    PointsToSolution Out(N);
    for (NodeId V = 0; V != N; ++V)
      query(G.find(V));
    for (NodeId V = 0; V != N; ++V) {
      NodeId R = G.find(V);
      if (R != V)
        Out.setRep(V, R);
      else
        CachePts[R].toBitmap(G.Ctx, Out.mutableSet(R));
    }
    Out.internShared();
    return Out;
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  /// Merges two nodes, keeping the cache coherent: if both caches are
  /// valid this epoch the survivor gets their union, otherwise the
  /// survivor's cache is invalidated (recomputed on next query).
  NodeId mergeWithCache(NodeId A, NodeId B) {
    A = G.find(A);
    B = G.find(B);
    if (A == B)
      return A;
    bool BothValid = CacheEpoch[A] == Epoch && CacheEpoch[B] == Epoch;
    NodeId Survivor = G.merge(A, B);
    NodeId Loser = Survivor == A ? B : A;
    if (BothValid) {
      CachePts[Survivor].unionWith(G.Ctx, CachePts[Loser]);
      CacheEpoch[Survivor] = Epoch;
    } else {
      CacheEpoch[Survivor] = 0;
    }
    CachePts[Loser].clearAndFree(G.Ctx);
    CacheEpoch[Loser] = 0;
    return Survivor;
  }

  /// Computes (and caches) pts of representative \p Root for this epoch:
  /// iterative Tarjan over predecessor edges, collapsing cycles found on
  /// the way (the side-effect cycle detection of HT).
  void query(NodeId Root) {
    Root = G.find(Root);
    if (CacheEpoch[Root] == Epoch)
      return;

    struct Frame {
      NodeId U;
      SparseBitVector::iterator It;
      SparseBitVector::iterator End;
      NodeId PendingChild;
    };
    std::vector<Frame> Dfs;
    std::vector<NodeId> SccStack;

    auto push = [&](NodeId U) {
      VisitEpoch[U] = Epoch;
      DfsNum[U] = NextDfsNum++;
      LowLink[U] = DfsNum[U];
      OnStackEpoch[U] = Epoch;
      SccStack.push_back(U);
      // Seed the partial result with the original (address-of) set.
      CachePts[U] = G.Pts[U];
      Dfs.push_back(
          Frame{U, G.Succs[U].begin(), G.Succs[U].end(), InvalidNode});
      ++G.Stats.NodesSearched;
      // Cancellation point: reachability queries can walk the whole graph.
      // Safe — the SCC stack and caches are reset per query, and no merge
      // is in flight at a push.
      G.governorStep();
    };
    push(Root);

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      NodeId U = F.U;
      if (F.PendingChild != InvalidNode) {
        // A child subtree finished; absorb its cache if its SCC completed
        // (otherwise it's in U's own SCC and merges later).
        NodeId C = G.find(F.PendingChild);
        F.PendingChild = InvalidNode;
        if (CacheEpoch[C] == Epoch && C != U) {
          ++G.Stats.Propagations;
          if (G.Governor)
            G.Governor->onPropagation();
          G.Stats.ChangedPropagations +=
              CachePts[U].unionWith(G.Ctx, CachePts[C]);
        }
      }
      if (F.It != F.End) {
        NodeId P = G.find(*F.It);
        ++F.It;
        if (P == U)
          continue;
        if (CacheEpoch[P] == Epoch) {
          ++G.Stats.Propagations;
          if (G.Governor)
            G.Governor->onPropagation();
          G.Stats.ChangedPropagations +=
              CachePts[U].unionWith(G.Ctx, CachePts[P]);
          continue;
        }
        if (VisitEpoch[P] == Epoch) {
          assert(OnStackEpoch[P] == Epoch &&
                 "finished node must have a valid cache");
          if (DfsNum[P] < LowLink[U])
            LowLink[U] = DfsNum[P];
          continue;
        }
        push(P);
        continue;
      }
      // U's edges exhausted: finish the frame.
      Dfs.pop_back();
      if (!Dfs.empty()) {
        Frame &Parent = Dfs.back();
        if (LowLink[U] < LowLink[Parent.U])
          LowLink[Parent.U] = LowLink[U];
        Parent.PendingChild = U;
      }
      if (LowLink[U] == DfsNum[U]) {
        // U roots an SCC: fold member caches into U's slot and collapse
        // the members (HT's side-effect cycle detection).
        for (;;) {
          NodeId W = SccStack.back();
          SccStack.pop_back();
          OnStackEpoch[W] = 0;
          if (W == U)
            break;
          CachePts[U].unionWith(G.Ctx, CachePts[W]);
          CachePts[W].clearAndFree(G.Ctx);
          G.merge(U, W);
        }
        // Relocate U's finished cache to the representative the
        // union-find elected.
        NodeId R = G.find(U);
        if (R != U) {
          CachePts[R] = std::move(CachePts[U]);
          CachePts[U] = PtsSet();
        }
        CacheEpoch[R] = Epoch;
        VisitEpoch[R] = Epoch;
        OnStackEpoch[R] = 0;
      }
    }
  }

  SolverContext<PtsPolicy> G;
  std::vector<std::pair<NodeId, NodeId>> HcdLazy;

  std::vector<PtsSet> CachePts;
  std::vector<uint32_t> CacheEpoch;
  std::vector<uint32_t> VisitEpoch;
  std::vector<uint32_t> DfsNum;
  std::vector<uint32_t> LowLink;
  std::vector<uint32_t> OnStackEpoch;
  uint32_t Epoch = 0;
  uint32_t NextDfsNum = 0;
};

} // namespace ag

#endif // AG_SOLVERS_HTSOLVER_H
