//===- ParallelLcdSolver.h - Multi-threaded wavefront LCD(+HCD) -*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel wavefront variant of the paper's LCD(+HCD) solver over sparse
/// bitmap points-to sets. Propagation — the paper's dominant cost — runs on
/// a fixed thread pool; the parts that mutate the union-find (cycle
/// collapse, HCD's preemptive merging) are funneled into single-threaded
/// "collapse epochs" between wavefront rounds, so the merge log and
/// representative structure stay exactly as coherent as in the sequential
/// solver and the computed solution is bit-for-bit identical at any thread
/// count (inclusion-based analysis has a unique least fixpoint; every
/// round-robin of this solver reaches it).
///
/// Protocol (full write-up in DESIGN.md):
///  * Nodes are hash-sharded across workers (shard = rep id % threads).
///    Each round, a worker consumes its shard's immutable `current` list;
///    newly activated nodes go to its own `next` list or, cross-shard, to
///    the owner's MPSC inbox (ShardedWorklist).
///  * Points-to sets are guarded by striped mutexes; a propagation locks
///    the source/target stripes in index order. Edge bitmaps are guarded
///    by a second stripe family; a worker snapshots a node's successors
///    under the edge lock, then propagates lock-by-lock. Lock order is
///    Pts-before-Edge never holds — the two families are never nested
///    except Pts->Edge inside complex resolution, and Edge locks are
///    always leaf locks held singly, so no cycle exists.
///  * No merge happens during a round, so representatives are frozen and
///    workers resolve them with a compression-free find (findReadOnly).
///  * LCD triggers (equal endpoint sets, edge not in the R set) and nodes
///    carrying HCD lazy tuples are recorded per-worker and handled in the
///    next collapse epoch: Tarjan + union-find + merge-log drain run
///    single-threaded, then merge survivors are requeued.
///  * The governor is observed cooperatively: workers poll a thread-safe,
///    non-throwing check and raise an abort flag; the coordinator charges
///    the round's counted operations between rounds and throws
///    BudgetExceededError from its own thread (budgets, fallback, and
///    partial extraction behave exactly as in the sequential solvers).
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_PARALLELLCDSOLVER_H
#define AG_SOLVERS_PARALLELLCDSOLVER_H

#include "adt/FaultInjector.h"
#include "adt/ShardedWorklist.h"
#include "adt/ThreadPool.h"
#include "core/HcdOffline.h"
#include "core/SolveBudget.h"
#include "core/Solver.h"
#include "core/SolverContext.h"
#include "obs/FlightRecorder.h"
#include "solvers/StallWatchdog.h"

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ag {

/// Parallel LCD(+HCD) over bitmap points-to sets. \c SolverOptions::Threads
/// selects the worker count (>= 1); the BDD representation is not supported
/// (the hash-consed node table is inherently single-threaded).
class ParallelLcdSolver {
  using Policy = BitmapPtsPolicy;
  using PtsSet = Policy::Set;

public:
  ParallelLcdSolver(const ConstraintSystem &CS, SolverStats &Stats,
                    const SolverOptions &Opts, const HcdResult *Hcd = nullptr,
                    const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps, /*ReverseEdges=*/false,
          /*ArenaShards=*/NumStripes),
        Opts(Opts), NumWorkers(Opts.Threads ? Opts.Threads : 1),
        Governor(Opts.Governor), Pool(NumWorkers),
        WL(NumWorkers, CS.numNodes()), Workers(NumWorkers) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    // G.Governor deliberately stays null for the parallel phases (it
    // throws, and exceptions must not cross worker threads); it is
    // installed only around the single-threaded collapse epochs.
    if (Hcd)
      for (const auto &[N, Target] : Hcd->Lazy)
        G.HcdTargets[G.find(N)].push_back(Target);
    if (Opts.LcdEdgeOnce)
      Triggered.reserve(2 * CS.countKind(ConstraintKind::Copy) + 16);
  }

  /// Runs to fixpoint and returns the solution (identical to the
  /// sequential LCD(+HCD) solver's at every thread count).
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        WL.pushRemote(V);
    return run();
  }

  /// Resumes from externally installed state: only \p Seeds (routed
  /// through find()) enter the initial worklist. See LcdSolver::solveFrom;
  /// the parallel rounds and collapse epochs are unchanged, so the result
  /// still matches the sequential warm re-solve at every thread count.
  PointsToSolution solveFrom(const std::vector<NodeId> &Seeds) {
    for (NodeId V : Seeds)
      WL.pushRemote(G.find(V));
    return run();
  }

  SolverContext<Policy> &context() { return G; }

private:
  /// The round loop, from whatever the sharded worklist currently holds.
  PointsToSolution run() {
    // Optional stall watchdog (SolverOptions::StallTimeoutSeconds): lives
    // for the whole solve; its monitor thread only observes heartbeat
    // counters while a round is active.
    std::unique_ptr<StallWatchdog> Dog;
    if (Opts.StallTimeoutSeconds > 0)
      Dog = std::make_unique<StallWatchdog>(
          NumWorkers, Opts.StallTimeoutSeconds,
          [this] { AbortFlag.store(true, std::memory_order_relaxed); });
    Watchdog = Dog.get();

    // Canonicalizing through find() here is single-threaded: compression
    // is safe between rounds.
    uint64_t Pending;
    while ((Pending = WL.beginRound(
                [this](uint32_t Id) { return G.find(Id); })) != 0) {
      ++G.Stats.ParallelRounds;
      obs::observe(obs::Hist::WorklistDepth, Pending);
      obs::flight("parallel_round", G.Stats.ParallelRounds, Pending);
      if (obs::traceEnabled())
        obs::TraceRecorder::instance().counter("parallel_pending", Pending);
      AbortFlag.store(false, std::memory_order_relaxed);
      if (Dog)
        Dog->roundBegin(G.Stats.ParallelRounds);
      {
        obs::TraceSpan Round("round", "parallel");
        Pool.runOnWorkers([this](unsigned W) { workerRound(W); });
      }
      if (Dog) {
        Dog->roundEnd();
        if (Dog->stalled()) {
          // Convert the hang into a governed cancellation on this (the
          // coordinator's) thread — the same unwinding path as a tripped
          // budget, so fallback/partial semantics apply unchanged.
          Status St = Status::stalled(
              "no worker heartbeat for " +
              std::to_string(Opts.StallTimeoutSeconds) + " s in round " +
              std::to_string(Dog->stalledRound()));
          obs::onGovernorTrip(St);
          Watchdog = nullptr;
          throw BudgetExceededError(std::move(St));
        }
      }
      // May throw BudgetExceededError (this thread only); the RAII span
      // keeps B/E balanced through the unwind.
      obs::TraceSpan Epoch("collapse_epoch", "parallel");
      collapseEpoch();
    }
    Watchdog = nullptr;
    return G.extractSolution();
  }

  /// Striped-lock count; a power of two comfortably above the worker
  /// count, so two random nodes rarely contend.
  static constexpr unsigned NumStripes = 64;

  struct alignas(64) WorkerState {
    /// Counters for the current round only; folded into the run totals at
    /// the next epoch (workers never touch the shared SolverStats).
    SolverStats RoundStats;
    /// Nodes seen this round that carry HCD lazy tuples (collapse work).
    std::vector<NodeId> DeferredHcd;
    /// LCD trigger candidates (from, to) observed this round.
    std::vector<std::pair<NodeId, NodeId>> LcdCandidates;
    /// Operation counts already flushed to the shared round totals.
    uint64_t FlushedProps = 0;
    uint64_t FlushedEdges = 0;
    /// Scratch buffers reused across nodes.
    std::vector<NodeId> Members;
    std::vector<uint32_t> Targets;
  };

  static uint64_t edgeKey(NodeId From, NodeId To) {
    return (uint64_t(From) << 32) | To;
  }

  unsigned stripe(NodeId V) const { return V & (NumStripes - 1); }

  /// Runs \p Body with the points-to stripes of \p A and \p B held,
  /// acquiring in stripe-index order (the single deadlock-avoidance rule
  /// for this family).
  template <typename Fn> void withPtsPair(NodeId A, NodeId B, Fn Body) {
    unsigned SA = stripe(A), SB = stripe(B);
    if (SA == SB) {
      std::lock_guard<std::mutex> L(PtsLocks[SA]);
      Body();
    } else {
      if (SA > SB)
        std::swap(SA, SB);
      std::scoped_lock L(PtsLocks[SA], PtsLocks[SB]);
      Body();
    }
  }

  void push(unsigned W, NodeId V) {
    if (WL.shardOf(V) == W)
      WL.pushLocal(W, V);
    else
      WL.pushRemote(V);
  }

  /// Thread-safe edge insertion under the target stripe's edge lock.
  bool addEdgeParallel(WorkerState &S, NodeId From, NodeId To) {
    From = G.findReadOnly(From);
    To = G.findReadOnly(To);
    if (From == To)
      return false;
    bool New;
    {
      std::lock_guard<std::mutex> L(EdgeLocks[stripe(From)]);
      New = G.Succs[From].set(To);
    }
    S.RoundStats.EdgesAdded += New;
    return New;
  }

  /// Parallel counterpart of SolverContext::resolveComplex for this
  /// node's (single, see collapseEpoch) deref group: the unseen frontier
  /// and the Resolved update are taken atomically under the node's
  /// points-to stripe, so elements arriving later stay unresolved until
  /// the node is requeued by whoever grew its set.
  void resolveComplexParallel(unsigned W, NodeId Node) {
    auto &Groups = G.Derefs[Node];
    if (Groups.empty())
      return;
    WorkerState &S = Workers[W];
    for (auto &Gr : Groups) {
      if (Gr.empty())
        continue;
      S.Members.clear();
      {
        std::lock_guard<std::mutex> L(PtsLocks[stripe(Node)]);
        if (G.UseDiffResolution) {
          // Fused kernel: collect the unseen frontier and absorb it into
          // Resolved in one merge walk (edges are still added outside
          // the lock, from the Members snapshot).
          Gr.Resolved.unionWithVisitNew(G.Ctx, G.Pts[Node], [&](NodeId V) {
            S.Members.push_back(V);
          });
        } else {
          G.Pts[Node].forEachDiff(G.Ctx, Gr.Resolved, [&](NodeId V) {
            S.Members.push_back(V);
          });
        }
      }
      for (NodeId V : S.Members) {
        for (const auto &D : Gr.Loads) {
          NodeId T = G.CS.offsetTarget(V, D.Offset);
          if (T != InvalidNode && addEdgeParallel(S, T, D.Other))
            push(W, G.findReadOnly(T));
        }
        for (const auto &D : Gr.Stores) {
          NodeId T = G.CS.offsetTarget(V, D.Offset);
          if (T != InvalidNode && addEdgeParallel(S, D.Other, T))
            push(W, G.findReadOnly(D.Other));
        }
      }
    }
  }

  void propagateAlongEdges(unsigned W, NodeId Node) {
    WorkerState &S = Workers[W];
    S.Targets.clear();
    {
      std::lock_guard<std::mutex> L(EdgeLocks[stripe(Node)]);
      for (uint32_t Raw : G.Succs[Node])
        S.Targets.push_back(Raw);
    }
    for (uint32_t Raw : S.Targets) {
      NodeId Z = G.findReadOnly(Raw);
      if (Z == Node)
        continue;
      bool Candidate = false;
      bool Changed = false;
      withPtsPair(Node, Z, [&] {
        const PtsSet &Src = G.Pts[Node];
        PtsSet &Dst = G.Pts[Z];
        // Fused union + equality on the same consistent snapshot: the
        // kernel reports the pre-union equality the lazy trigger wants.
        // The shared R set is read-only during rounds (inserts happen
        // in the epoch), so the probe is unsynchronized; like the
        // sequential solver it is only consulted for equality-passing
        // edges.
        SetUnionStatus U = Dst.unionWithStatus(G.Ctx, Src);
        Changed = U.Changed;
        Candidate =
            U.WasEqual && !Src.empty() && !alreadyTriggered(S, Node, Z);
      });
      ++S.RoundStats.Propagations;
      S.RoundStats.ChangedPropagations += Changed;
      if (Candidate)
        S.LcdCandidates.emplace_back(Node, Z);
      if (Changed)
        push(W, Z);
    }
  }

  bool alreadyTriggered(WorkerState &S, NodeId From, NodeId To) {
    if (!Opts.LcdEdgeOnce)
      return false;
    ++S.RoundStats.LcdTriggerProbes;
    return Triggered.count(edgeKey(From, To)) != 0;
  }

  /// Flushes this worker's not-yet-shared operation counts into the round
  /// totals the governor preview reads.
  void flushCounts(WorkerState &S) {
    uint64_t P = S.RoundStats.Propagations - S.FlushedProps;
    uint64_t E = S.RoundStats.EdgesAdded - S.FlushedEdges;
    if (P)
      RoundProps.fetch_add(P, std::memory_order_relaxed);
    if (E)
      RoundEdges.fetch_add(E, std::memory_order_relaxed);
    S.FlushedProps = S.RoundStats.Propagations;
    S.FlushedEdges = S.RoundStats.EdgesAdded;
  }

  /// One worker's share of a wavefront round: propagation and edge
  /// resolution only — no merging, no exceptions.
  void workerRound(unsigned W) {
    // Spans land on this worker's own track (trackId is thread-local), so
    // the trace renders one lane per pool thread.
    obs::TraceSpan Span("worker_round", "parallel");
    WorkerState &S = Workers[W];
    const std::vector<uint32_t> &Cur = WL.current(W);
    const uint32_t PollInterval =
        Governor ? std::max(1u, Governor->budget().CheckIntervalOps) : 0;
    // Poll on counted operations (propagations + edge inserts), not node
    // pops: one pop against a wide points-to set can perform thousands of
    // operations, and budgets should overshoot by O(Threads *
    // CheckIntervalOps) ops, not by whole rounds.
    uint64_t OpsAtLastPoll = 0;
    for (size_t I = 0; I != Cur.size(); ++I) {
      if (AbortFlag.load(std::memory_order_relaxed)) {
        // Requeue the unprocessed tail: if the coordinator's re-check
        // somehow does not throw, no scheduled work may be lost.
        for (size_t J = I; J != Cur.size(); ++J)
          WL.pushRemote(Cur[J]);
        break;
      }
      if (Watchdog)
        Watchdog->beat(W);
      // Test-armed stall: this worker stops heartbeating and parks until
      // the watchdog (or a governor poll on another worker) raises the
      // abort flag — a deterministic stand-in for a wedged thread that
      // still honours cooperative cancellation.
      if (FaultInjector::instance().shouldFail(FaultSite::WorkerStall)) {
        obs::flight("worker_stall_injected", W);
        while (!AbortFlag.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        for (size_t J = I; J != Cur.size(); ++J)
          WL.pushRemote(Cur[J]);
        break;
      }
      NodeId Node = Cur[I]; // Canonical since no merge is in flight.
      ++S.RoundStats.WorklistPops;
      if (!G.HcdTargets[Node].empty())
        S.DeferredHcd.push_back(Node);
      resolveComplexParallel(W, Node);
      propagateAlongEdges(W, Node);
      uint64_t OpsNow = S.RoundStats.Propagations + S.RoundStats.EdgesAdded;
      if (PollInterval && OpsNow - OpsAtLastPoll >= PollInterval) {
        OpsAtLastPoll = OpsNow;
        flushCounts(S);
        Status St = Governor->checkParallel(
            Governor->propagations() +
                RoundProps.load(std::memory_order_relaxed),
            Governor->edgesAdded() +
                RoundEdges.load(std::memory_order_relaxed));
        if (!St.ok())
          AbortFlag.store(true, std::memory_order_relaxed);
      }
    }
    flushCounts(S);
  }

  /// Stop-the-world phase between rounds: charge the governor, then run
  /// every deferred collapse (HCD preemptive merging, LCD cycle searches)
  /// single-threaded so union-find and the merge log stay sequential.
  void collapseEpoch() {
    uint64_t Props = 0, Edges = 0;
    for (WorkerState &S : Workers) {
      Props += S.RoundStats.Propagations;
      Edges += S.RoundStats.EdgesAdded;
      G.Stats.mergeFrom(S.RoundStats);
      S.RoundStats = SolverStats();
      S.FlushedProps = S.FlushedEdges = 0;
    }
    RoundProps.store(0, std::memory_order_relaxed);
    RoundEdges.store(0, std::memory_order_relaxed);
    if (Governor)
      Governor->chargeBatch(Props, Edges); // Throws on a tripped budget.

    // Install the governor for the epoch so long collapse phases remain
    // cancellable (Tarjan has internal cancellation points), mirroring
    // the sequential solver; parallel phases must never see it.
    G.Governor = Governor;
    auto Push = [this](NodeId V) { WL.pushRemote(V); };

    for (WorkerState &S : Workers) {
      for (NodeId N : S.DeferredHcd)
        G.applyHcd(G.find(N), Push);
      S.DeferredHcd.clear();
    }
    for (WorkerState &S : Workers) {
      for (auto [From, To] : S.LcdCandidates) {
        // The R set: never re-trigger on an edge that triggered before
        // (two workers' candidate lists may name the same edge).
        if (Opts.LcdEdgeOnce &&
            !Triggered.insert(edgeKey(From, To)).second)
          continue;
        G.detectAndCollapseFrom(To);
      }
      S.LcdCandidates.clear();
    }

    // Requeue merge survivors (their sets grew) and restore the one-group
    // invariant workers rely on: merging concatenates deref groups, which
    // must be consolidated before the next parallel round.
    EpochSurvivors.clear();
    G.drainMergeLog([&](NodeId S) {
      Push(S);
      EpochSurvivors.push_back(S);
    });
    for (NodeId S : EpochSurvivors)
      consolidateDerefsConservative(G.find(S));
    G.Governor = nullptr;
    // Counted only on completion: trails ParallelRounds when a budget trip
    // aborts the epoch mid-flight.
    ++G.Stats.ParallelEpochs;
  }

  /// Merges a node's deref groups into one. Unlike the sequential solver —
  /// which consolidates immediately after resolving every group against
  /// the full current set and may therefore keep the union of frontiers —
  /// the epoch runs *after* concurrent propagation may have grown the set,
  /// so the merged frontier must be the *intersection* of the group
  /// frontiers: an element is provably resolved only if every group's
  /// lists have seen it. Elements in some-but-not-all frontiers are
  /// re-resolved; addEdge's idempotence makes that harmless.
  void consolidateDerefsConservative(NodeId N) {
    auto &Groups = G.Derefs[N];
    if (Groups.size() < 2)
      return;
    auto &First = Groups[0];
    for (size_t I = 1; I != Groups.size(); ++I) {
      First.Loads.insert(First.Loads.end(), Groups[I].Loads.begin(),
                         Groups[I].Loads.end());
      First.Stores.insert(First.Stores.end(), Groups[I].Stores.begin(),
                          Groups[I].Stores.end());
      First.Resolved.intersectWith(G.Ctx, Groups[I].Resolved);
      Groups[I].Resolved.clearAndFree(G.Ctx);
    }
    Groups.resize(1);
    canonicalizeDerefs(First.Loads);
    canonicalizeDerefs(First.Stores);
  }

  /// Routes deref destinations through current representatives and drops
  /// duplicates (merged members frequently shared constraints).
  void canonicalizeDerefs(
      std::vector<SolverContext<Policy>::Deref> &List) {
    if (List.size() < 2)
      return;
    for (auto &D : List)
      D.Other = G.find(D.Other);
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }

  SolverContext<Policy> G;
  SolverOptions Opts;
  unsigned NumWorkers;
  /// The budget governor (null when un-governed). Only the coordinator
  /// thread lets it throw; workers use the non-throwing preview.
  SolveGovernor *Governor;
  ThreadPool Pool;
  ShardedWorklist WL;
  std::vector<WorkerState> Workers;
  /// LCD's R set. Written only in collapse epochs; read-only to workers.
  std::unordered_set<uint64_t> Triggered;
  std::array<std::mutex, NumStripes> PtsLocks;
  std::array<std::mutex, NumStripes> EdgeLocks;
  std::atomic<uint64_t> RoundProps{0};
  std::atomic<uint64_t> RoundEdges{0};
  std::atomic<bool> AbortFlag{false};
  std::vector<NodeId> EpochSurvivors;
  /// Owned by run()'s local unique_ptr; non-null only while a watchdog-
  /// enabled solve is inside its round loop.
  StallWatchdog *Watchdog = nullptr;
};

} // namespace ag

#endif // AG_SOLVERS_PARALLELLCDSOLVER_H
