//===- Solve.h - One-call solver entry point --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: run any of the paper's nine algorithms
/// (plus the naive oracle) over a constraint system and get the points-to
/// solution. Handles the HCD offline pass and representative seeding from
/// offline analyses.
///
/// Typical use:
/// \code
///   ConstraintSystem CS = ...;
///   OvsResult Ovs = runOfflineVariableSubstitution(CS);
///   SolverStats Stats;
///   PointsToSolution Sol = solve(Ovs.Reduced, SolverKind::LCDHCD,
///                                PtsRepr::Bitmap, &Stats, {}, &Ovs.Rep);
///   bool Aliases = Sol.mayAlias(P, Q);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_SOLVE_H
#define AG_SOLVERS_SOLVE_H

#include "constraints/ConstraintSystem.h"
#include "core/HcdOffline.h"
#include "core/PointsToSolution.h"
#include "core/Solver.h"
#include "core/SolveBudget.h"

#include "adt/Statistics.h"
#include "adt/Status.h"

namespace ag {

/// Solves \p CS with algorithm \p Kind using representation \p Repr.
///
/// \param StatsOut optional behaviour counters (Section 5.3 metrics).
/// \param Opts tuning knobs; defaults match the paper's configuration.
/// \param SeedReps optional pre-merge map (e.g. OvsResult::Rep) whose
///        representatives solvers must respect.
/// \param Hcd optional precomputed HCD offline result; when \p Kind uses
///        HCD and this is null, the offline pass runs internally (its time
///        is then included — pass it explicitly to time it separately, as
///        Table 3 reports it).
PointsToSolution solve(const ConstraintSystem &CS, SolverKind Kind,
                       PtsRepr Repr = PtsRepr::Bitmap,
                       SolverStats *StatsOut = nullptr,
                       const SolverOptions &Opts = SolverOptions(),
                       const std::vector<NodeId> *SeedReps = nullptr,
                       const HcdResult *Hcd = nullptr);

/// How a governed solve concluded.
enum class SolveOutcome {
  Precise,  ///< The requested algorithm ran to fixpoint within budget.
  Fallback, ///< Budget tripped; the Steensgaard over-approximation was
            ///< substituted (sound, less precise).
  Partial,  ///< Budget tripped with fallback disallowed: the solution is
            ///< the interrupted solver's state — UNFINISHED, treat as
            ///< unsound (sets may be missing members).
  Failed,   ///< Input rejected before solving (see SolveResult::St).
};

/// Returns a stable name for \p Outcome ("precise", "fallback", ...).
const char *solveOutcomeName(SolveOutcome Outcome);

/// Result of a budgeted solve.
struct SolveResult {
  PointsToSolution Solution;
  /// Ok for a precise run; the budget-trip reason for Fallback/Partial;
  /// the input error for Failed.
  Status St;
  SolveOutcome Outcome = SolveOutcome::Failed;
  /// True if Solution over-approximates the true points-to relation
  /// (Precise and Fallback). A Partial solution is explicitly NOT sound.
  bool Sound = false;

  bool usedFallback() const { return Outcome == SolveOutcome::Fallback; }
};

/// As solve(), but enforces \p Budget and degrades gracefully instead of
/// looping until done or OOM: when the budget trips, the precise solver
/// unwinds cleanly and the unification-based Steensgaard analysis (a
/// near-linear, sound over-approximation — with \p SeedReps folded in so
/// substituted variables keep their representatives' sets) is substituted.
/// With Budget.AllowFallback false, the interrupted solver's partial state
/// is returned instead, flagged unsound. Invalid input (unknown \p Kind,
/// mis-sized \p SeedReps) is reported as a Failed outcome, never as an
/// assert or undefined dispatch.
SolveResult solveGoverned(const ConstraintSystem &CS, SolverKind Kind,
                          const SolveBudget &Budget = SolveBudget(),
                          PtsRepr Repr = PtsRepr::Bitmap,
                          SolverStats *StatsOut = nullptr,
                          const SolverOptions &Opts = SolverOptions(),
                          const std::vector<NodeId> *SeedReps = nullptr,
                          const HcdResult *Hcd = nullptr);

/// The graceful-degradation analysis solveGoverned() substitutes when a
/// budget trips: Steensgaard's near-linear unification analysis with
/// \p SeedReps (the offline substitutions the aborted run was seeded
/// with) folded back in, keeping every node's set a sound superset of
/// the precise answer for the seeded system. Exposed so warm-start
/// re-solving can degrade through the identical path — a budget trip
/// during an incremental re-solve then yields exactly the solution a
/// tripped cold solve of the same system would.
PointsToSolution steensgaardFallback(const ConstraintSystem &CS,
                                     const std::vector<NodeId> *SeedReps
                                     = nullptr);

} // namespace ag

#endif // AG_SOLVERS_SOLVE_H
