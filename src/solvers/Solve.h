//===- Solve.h - One-call solver entry point --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's main entry point: run any of the paper's nine algorithms
/// (plus the naive oracle) over a constraint system and get the points-to
/// solution. Handles the HCD offline pass and representative seeding from
/// offline analyses.
///
/// Typical use:
/// \code
///   ConstraintSystem CS = ...;
///   OvsResult Ovs = runOfflineVariableSubstitution(CS);
///   SolverStats Stats;
///   PointsToSolution Sol = solve(Ovs.Reduced, SolverKind::LCDHCD,
///                                PtsRepr::Bitmap, &Stats, {}, &Ovs.Rep);
///   bool Aliases = Sol.mayAlias(P, Q);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_SOLVE_H
#define AG_SOLVERS_SOLVE_H

#include "constraints/ConstraintSystem.h"
#include "core/HcdOffline.h"
#include "core/PointsToSolution.h"
#include "core/Solver.h"

#include "adt/Statistics.h"

namespace ag {

/// Solves \p CS with algorithm \p Kind using representation \p Repr.
///
/// \param StatsOut optional behaviour counters (Section 5.3 metrics).
/// \param Opts tuning knobs; defaults match the paper's configuration.
/// \param SeedReps optional pre-merge map (e.g. OvsResult::Rep) whose
///        representatives solvers must respect.
/// \param Hcd optional precomputed HCD offline result; when \p Kind uses
///        HCD and this is null, the offline pass runs internally (its time
///        is then included — pass it explicitly to time it separately, as
///        Table 3 reports it).
PointsToSolution solve(const ConstraintSystem &CS, SolverKind Kind,
                       PtsRepr Repr = PtsRepr::Bitmap,
                       SolverStats *StatsOut = nullptr,
                       const SolverOptions &Opts = SolverOptions(),
                       const std::vector<NodeId> *SeedReps = nullptr,
                       const HcdResult *Hcd = nullptr);

} // namespace ag

#endif // AG_SOLVERS_SOLVE_H
