//===- StallWatchdog.h - Heartbeat monitor for parallel solves --*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A watchdog for the parallel wavefront solver: workers publish per-thread
/// heartbeat counters (one relaxed increment per worklist pop), and a
/// monitor thread samples them while a round is active. If no counter moves
/// for the configured timeout while the round is still running, the round
/// is declared stalled: the watchdog dumps a per-worker progress report and
/// the FlightRecorder ring to stderr, latches a stalled flag, and invokes
/// the abort callback (which raises the solver's cooperative abort flag).
/// The coordinator converts the latched flag into a governed cancellation —
/// BudgetExceededError with StatusCode::Stalled — after the round returns,
/// so a hang degrades exactly like a tripped budget (fallback or partial)
/// instead of waiting forever.
///
/// The conversion is cooperative: a worker that still observes the abort
/// flag (as every loop in ParallelLcdSolver does) unwinds cleanly; a thread
/// wedged in truly foreign code cannot be recovered, but the stderr dump
/// still captures what every worker was doing when the round died.
///
/// Workers beat once per node pop, so the timeout must comfortably exceed
/// the cost of processing one node; sub-second values are for tests.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_STALLWATCHDOG_H
#define AG_SOLVERS_STALLWATCHDOG_H

#include "obs/FlightRecorder.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ag {

/// Monitors worker heartbeats during parallel rounds (see file comment).
class StallWatchdog {
  using Clock = std::chrono::steady_clock;

public:
  /// Starts the monitor thread. \p OnStall runs on the monitor thread,
  /// exactly once per solve, after the diagnostics are written; it must be
  /// async-safe with respect to the workers (set an atomic flag).
  StallWatchdog(unsigned NumWorkers, double TimeoutSeconds,
                std::function<void()> OnStall)
      : Timeout(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(TimeoutSeconds))),
        OnStall(std::move(OnStall)), Beats(NumWorkers),
        LastSample(NumWorkers, 0) {
    Monitor = std::thread([this] { monitorLoop(); });
  }

  ~StallWatchdog() {
    {
      std::lock_guard<std::mutex> L(Mu);
      ShuttingDown = true;
    }
    CV.notify_all();
    Monitor.join();
  }

  StallWatchdog(const StallWatchdog &) = delete;
  StallWatchdog &operator=(const StallWatchdog &) = delete;

  /// Worker-side heartbeat; one relaxed increment.
  void beat(unsigned Worker) {
    Beats[Worker].Count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Coordinator: a parallel round is starting. Resets the progress clock
  /// so idle time between rounds never counts toward the timeout.
  void roundBegin(uint64_t RoundNumber) {
    std::lock_guard<std::mutex> L(Mu);
    Round = RoundNumber;
    RoundActive = true;
    LastChange = Clock::now();
    for (size_t W = 0; W != Beats.size(); ++W)
      LastSample[W] = Beats[W].Count.load(std::memory_order_relaxed);
  }

  /// Coordinator: the round's workers have all returned.
  void roundEnd() {
    std::lock_guard<std::mutex> L(Mu);
    RoundActive = false;
  }

  /// True once a stall was detected (latched for the rest of the solve).
  bool stalled() const {
    return StalledFlag.load(std::memory_order_acquire);
  }

  /// The round number the stall was detected in (valid when stalled()).
  uint64_t stalledRound() const {
    return StalledRound.load(std::memory_order_relaxed);
  }

private:
  void monitorLoop() {
    std::unique_lock<std::mutex> L(Mu);
    // Sample a few times per timeout window so detection latency stays
    // within ~1.25x the configured timeout.
    const auto Poll = std::max<Clock::duration>(
        Timeout / 4, std::chrono::milliseconds(1));
    for (;;) {
      CV.wait_for(L, Poll, [this] { return ShuttingDown; });
      if (ShuttingDown)
        return;
      if (!RoundActive || StalledFlag.load(std::memory_order_relaxed))
        continue;
      bool Progress = false;
      for (size_t W = 0; W != Beats.size(); ++W) {
        uint64_t Now = Beats[W].Count.load(std::memory_order_relaxed);
        if (Now != LastSample[W]) {
          LastSample[W] = Now;
          Progress = true;
        }
      }
      auto Now = Clock::now();
      if (Progress) {
        LastChange = Now;
        continue;
      }
      if (Now - LastChange < Timeout)
        continue;
      // Stall: no worker advanced for a full timeout inside a live round.
      StalledRound.store(Round, std::memory_order_relaxed);
      dumpDiagnostics(L);
      StalledFlag.store(true, std::memory_order_release);
      if (OnStall)
        OnStall();
    }
  }

  /// Writes the per-worker progress report and the flight ring to stderr.
  /// Called with Mu held; the lock protects LastSample/Round only — the
  /// recorder has its own locking.
  void dumpDiagnostics(std::unique_lock<std::mutex> &) {
    std::string Out = "=== stall watchdog: round " + std::to_string(Round) +
                      " made no progress ===\n";
    for (size_t W = 0; W != Beats.size(); ++W)
      Out += "  worker " + std::to_string(W) + ": " +
             std::to_string(
                 Beats[W].Count.load(std::memory_order_relaxed)) +
             " heartbeats\n";
    Out += "--- flight recorder ring ---\n";
    Out += obs::FlightRecorder::instance().dumpText();
    std::fputs(Out.c_str(), stderr);
    std::fflush(stderr);
    if (obs::flightEnabled())
      obs::FlightRecorder::instance().record("stall_detected", Round,
                                             Beats.size());
  }

  struct alignas(64) Beat {
    std::atomic<uint64_t> Count{0};
  };

  const Clock::duration Timeout;
  std::function<void()> OnStall;
  std::vector<Beat> Beats;

  mutable std::mutex Mu;
  std::condition_variable CV;
  std::vector<uint64_t> LastSample;
  Clock::time_point LastChange{};
  uint64_t Round = 0;
  bool RoundActive = false;
  bool ShuttingDown = false;

  std::atomic<bool> StalledFlag{false};
  std::atomic<uint64_t> StalledRound{0};
  std::thread Monitor;
};

} // namespace ag

#endif // AG_SOLVERS_STALLWATCHDOG_H
