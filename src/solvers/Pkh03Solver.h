//===- Pkh03Solver.h - Pearce et al.'s original 2003 algorithm --*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *first* Pearce-Kelly-Hankin algorithm (SCAM 2003), which the paper
/// discusses in Section 2: "the algorithm dynamically maintains a
/// topological ordering of the constraint graph. Only a newly-inserted
/// edge that violates the current ordering could possibly create a cycle,
/// so only in this case are cycle detection and topological re-ordering
/// performed. This algorithm proves to still have too much overhead" —
/// and Section 5.3 adds that the aggressive approaches are "an order of
/// magnitude slower than any of the algorithms evaluated in this paper".
///
/// Implemented so that claim can be reproduced (see bench_ablation): the
/// Pearce-Kelly dynamic topological order — forward/backward discovery of
/// the affected region on each violating insertion, reuse of the freed
/// order slots — plus immediate cycle collapse when the forward region
/// reaches the edge source.
///
/// The maintained order is best-effort across merges (losers' predecessor
/// entries are unified lazily); order imprecision only delays cycle
/// detection, never soundness — the underlying worklist fixpoint is the
/// Figure-1 algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_PKH03SOLVER_H
#define AG_SOLVERS_PKH03SOLVER_H

#include "adt/Worklist.h"
#include "core/Solver.h"
#include "core/SolverContext.h"

#include <algorithm>

namespace ag {

/// Pearce et al. 2003: explicit closure with per-insertion cycle
/// detection via dynamic topological ordering.
template <typename PtsPolicy> class Pkh03Solver {
public:
  Pkh03Solver(const ConstraintSystem &CS, SolverStats &Stats,
              const SolverOptions &Opts = SolverOptions(),
              const std::vector<NodeId> *SeedReps = nullptr)
      : G(CS, Stats, SeedReps), W(Opts.Worklist) {
    G.UseDiffResolution = Opts.DifferenceResolution;
    G.Governor = Opts.Governor;
  }

  /// Runs to fixpoint and returns the solution.
  PointsToSolution solve() {
    const uint32_t N = G.CS.numNodes();
    W.grow(N);
    Ord.resize(N);
    VisitEpoch.assign(N, 0);
    Preds.resize(N);

    // The initial graph may contain cycles; collapse them so a topological
    // numbering exists, then build predecessor sets.
    G.detectAndCollapseAll();
    G.drainMergeLog([this](NodeId V) { W.push(V); });
    for (NodeId V = 0; V != N; ++V) {
      NodeId U = G.find(V);
      if (U != V)
        continue;
      for (uint32_t Raw : G.Succs[U]) {
        NodeId T = G.find(Raw);
        if (T != U)
          Preds[T].set(U);
      }
    }
    assignInitialOrder();

    for (NodeId V = 0; V != N; ++V)
      if (G.find(V) == V && !G.Pts[V].empty())
        W.push(V);

    auto Push = [this](NodeId V) { W.push(V); };
    std::vector<std::pair<NodeId, NodeId>> NewEdges;
    while (!W.empty()) {
      NodeId Node = G.find(W.pop());
      ++G.Stats.WorklistPops;
      G.governorStep();

      // Resolve complex constraints, recording insertions; the ordering
      // maintenance runs afterwards so collapses never invalidate the
      // resolution's iterators.
      NewEdges.clear();
      G.resolveComplex(Node, Push, [&](NodeId F, NodeId T) {
        NewEdges.emplace_back(F, T);
      });
      for (auto [F, T] : NewEdges) {
        F = G.find(F);
        T = G.find(T);
        if (F == T)
          continue;
        Preds[T].set(F);
        maintainOrder(F, T);
      }
      Node = G.find(Node); // Collapses may have merged it.

      for (uint32_t Raw : G.Succs[Node]) {
        NodeId Z = G.find(Raw);
        if (Z == Node)
          continue;
        if (G.propagate(Node, Z))
          W.push(Z);
      }
    }
    return G.extractSolution();
  }

  SolverContext<PtsPolicy> &context() { return G; }

private:
  /// Reverse-postorder numbering of the representative graph.
  void assignInitialOrder() {
    const uint32_t N = G.CS.numNodes();
    ++Epoch;
    uint32_t Next = N;
    std::vector<std::pair<NodeId, SparseBitVector::iterator>> Stack;
    for (NodeId Root = 0; Root != N; ++Root) {
      NodeId R = G.find(Root);
      if (VisitEpoch[R] == Epoch)
        continue;
      VisitEpoch[R] = Epoch;
      Stack.emplace_back(R, G.Succs[R].begin());
      while (!Stack.empty()) {
        auto &[U, It] = Stack.back();
        if (It != G.Succs[U].end()) {
          NodeId V = G.find(*It);
          ++It;
          if (V != U && VisitEpoch[V] != Epoch) {
            VisitEpoch[V] = Epoch;
            Stack.emplace_back(V, G.Succs[V].begin());
          }
          continue;
        }
        Ord[U] = --Next;
        Stack.pop_back();
      }
    }
  }

  /// Pearce-Kelly maintenance for a new edge From -> To: nothing if the
  /// invariant Ord[From] < Ord[To] holds; otherwise discover the affected
  /// region, collapse if the edge closed a cycle, else reorder.
  void maintainOrder(NodeId From, NodeId To) {
    if (Ord[From] < Ord[To])
      return;
    ++G.Stats.CycleDetectAttempts;
#ifdef AG_PKH03_DEBUG
    std::fprintf(stderr, "violation %u(ord %u) -> %u(ord %u)\n", From,
                 Ord[From], To, Ord[To]);
#endif

    // Forward discovery from To, bounded above by Ord[From].
    uint32_t Bound = Ord[From];
    bool HitFrom = false;
    std::vector<NodeId> Fwd;
    ++Epoch;
    VisitEpoch[To] = Epoch;
    std::vector<NodeId> Stack = {To};
    while (!Stack.empty()) {
      NodeId U = Stack.back();
      Stack.pop_back();
      Fwd.push_back(U);
      ++G.Stats.NodesSearched;
      if (U == From) {
        HitFrom = true;
        continue;
      }
      for (uint32_t Raw : G.Succs[U]) {
        NodeId V = G.find(Raw);
        if (V == U || VisitEpoch[V] == Epoch || Ord[V] > Bound)
          continue;
        VisitEpoch[V] = Epoch;
        Stack.push_back(V);
      }
    }

#ifdef AG_PKH03_DEBUG
    std::fprintf(stderr, "  hitFrom=%d fwd=%zu\n", (int)HitFrom, Fwd.size());
#endif
    if (HitFrom) {
      // The edge closed a cycle: collapse it at once (this eagerness is
      // the algorithm's signature) and merge predecessor sets so future
      // backward searches stay accurate.
      if (G.detectAndCollapseFrom(To) > 0) {
        G.drainMergeLog([this](NodeId V) {
          W.push(V);
          repairPreds(V);
        });
      }
      return;
    }

    // Acyclic violation: backward discovery from From over predecessors,
    // bounded below by Ord[To].
    uint32_t Floor = Ord[To];
    std::vector<NodeId> Bwd;
    ++Epoch;
    VisitEpoch[From] = Epoch;
    Stack.push_back(From);
    while (!Stack.empty()) {
      NodeId U = Stack.back();
      Stack.pop_back();
      Bwd.push_back(U);
      ++G.Stats.NodesSearched;
      for (uint32_t Raw : Preds[U]) {
        NodeId V = G.find(Raw);
        if (V == U || VisitEpoch[V] == Epoch || Ord[V] < Floor)
          continue;
        VisitEpoch[V] = Epoch;
        Stack.push_back(V);
      }
    }

    // PK's merge step: reuse the freed order slots; backward nodes keep
    // their relative order and precede the forward nodes.
    std::vector<uint32_t> Slots;
    Slots.reserve(Fwd.size() + Bwd.size());
    for (NodeId V : Fwd)
      Slots.push_back(Ord[V]);
    for (NodeId V : Bwd)
      Slots.push_back(Ord[V]);
    std::sort(Slots.begin(), Slots.end());
    auto ByOrd = [this](NodeId A, NodeId B) { return Ord[A] < Ord[B]; };
    std::sort(Bwd.begin(), Bwd.end(), ByOrd);
    std::sort(Fwd.begin(), Fwd.end(), ByOrd);
    size_t SlotIdx = 0;
    for (NodeId V : Bwd)
      Ord[V] = Slots[SlotIdx++];
    for (NodeId V : Fwd)
      Ord[V] = Slots[SlotIdx++];
  }

  /// After a collapse, rebuild the survivor's predecessor set from its
  /// (merged) successor lists' perspective lazily: union is enough — the
  /// stale entries are find-mapped on use.
  void repairPreds(NodeId Survivor) {
    // Successors of the survivor list it as a predecessor already via the
    // merged bitmaps; here it suffices to fold nothing — predecessor sets
    // of *other* nodes still name the losers, which find() resolves. The
    // survivor's own Preds may live partly in the losers' slots; merge-on-
    // demand would need the loser ids, so conservatively refresh from the
    // graph when the set looks empty.
    if (!Preds[Survivor].empty())
      return;
    const uint32_t N = G.CS.numNodes();
    for (NodeId V = 0; V != N; ++V) {
      NodeId U = G.find(V);
      if (U == V && G.Succs[U].test(Survivor))
        Preds[Survivor].set(U);
    }
  }

  SolverContext<PtsPolicy> G;
  Worklist W;
  std::vector<uint32_t> Ord;
  std::vector<uint32_t> VisitEpoch;
  std::vector<SparseBitVector> Preds;
  uint32_t Epoch = 0;
};

} // namespace ag

#endif // AG_SOLVERS_PKH03SOLVER_H
