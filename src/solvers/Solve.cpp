//===- Solve.cpp - One-call solver entry point ----------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/Solve.h"

#include "core/HcdSolver.h"
#include "core/LcdSolver.h"
#include "solvers/BlqSolver.h"
#include "solvers/HtSolver.h"
#include "solvers/NaiveSolver.h"
#include "solvers/PkhSolver.h"

#include <cassert>

using namespace ag;

const char *ag::solverKindName(SolverKind Kind) {
  switch (Kind) {
  case SolverKind::Naive:
    return "Naive";
  case SolverKind::HT:
    return "HT";
  case SolverKind::PKH:
    return "PKH";
  case SolverKind::BLQ:
    return "BLQ";
  case SolverKind::LCD:
    return "LCD";
  case SolverKind::HCD:
    return "HCD";
  case SolverKind::HTHCD:
    return "HT+HCD";
  case SolverKind::PKHHCD:
    return "PKH+HCD";
  case SolverKind::BLQHCD:
    return "BLQ+HCD";
  case SolverKind::LCDHCD:
    return "LCD+HCD";
  }
  assert(false && "invalid solver kind");
  return "?";
}

namespace {

template <typename Policy>
PointsToSolution dispatch(const ConstraintSystem &CS, SolverKind Kind,
                          SolverStats &Stats, const SolverOptions &Opts,
                          const HcdResult *Hcd,
                          const std::vector<NodeId> *Seeds) {
  switch (Kind) {
  case SolverKind::Naive:
    return NaiveSolver<Policy>(CS, Stats, Opts, Seeds).solve();
  case SolverKind::HT:
    return HtSolver<Policy>(CS, Stats, Opts, nullptr, Seeds).solve();
  case SolverKind::HTHCD:
    return HtSolver<Policy>(CS, Stats, Opts, Hcd, Seeds).solve();
  case SolverKind::PKH:
    return PkhSolver<Policy>(CS, Stats, Opts, nullptr, Seeds).solve();
  case SolverKind::PKHHCD:
    return PkhSolver<Policy>(CS, Stats, Opts, Hcd, Seeds).solve();
  case SolverKind::LCD:
    return LcdSolver<Policy>(CS, Stats, Opts, nullptr, Seeds).solve();
  case SolverKind::LCDHCD:
    return LcdSolver<Policy>(CS, Stats, Opts, Hcd, Seeds).solve();
  case SolverKind::HCD:
    assert(Hcd && "standalone HCD requires the offline result");
    return HcdSolver<Policy>(CS, Stats, Opts, *Hcd, Seeds).solve();
  case SolverKind::BLQ:
  case SolverKind::BLQHCD:
    break; // Handled by the caller (not templated on Policy).
  }
  assert(false && "unreachable solver dispatch");
  return PointsToSolution(CS.numNodes());
}

} // namespace

PointsToSolution ag::solve(const ConstraintSystem &CS, SolverKind Kind,
                           PtsRepr Repr, SolverStats *StatsOut,
                           const SolverOptions &Opts,
                           const std::vector<NodeId> *SeedReps,
                           const HcdResult *Hcd) {
  SolverStats LocalStats;
  SolverStats &Stats = StatsOut ? *StatsOut : LocalStats;

  // Run (or adopt) the HCD offline analysis and fold its variable-only
  // SCCs into the seed representatives.
  HcdResult OwnedHcd;
  std::vector<NodeId> ComposedSeeds;
  const std::vector<NodeId> *Seeds = SeedReps;
  if (usesHcd(Kind)) {
    if (!Hcd) {
      OwnedHcd = runHcdOffline(CS);
      Hcd = &OwnedHcd;
    }
    Stats.NodesCollapsed += Hcd->NumPreMerged;
    if (SeedReps)
      ComposedSeeds = composeReps(*SeedReps, Hcd->PreMerge);
    else
      ComposedSeeds = Hcd->PreMerge;
    Seeds = &ComposedSeeds;
  }

  if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD)
    return BlqSolver(CS, Stats, Opts,
                     Kind == SolverKind::BLQHCD ? Hcd : nullptr, Seeds)
        .solve();

  if (Repr == PtsRepr::Bitmap)
    return dispatch<BitmapPtsPolicy>(CS, Kind, Stats, Opts, Hcd, Seeds);
  return dispatch<BddPtsPolicy>(CS, Kind, Stats, Opts, Hcd, Seeds);
}
