//===- Solve.cpp - One-call solver entry point ----------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/Solve.h"

#include "adt/UnionFind.h"
#include "core/HcdSolver.h"
#include "core/LcdSolver.h"
#include "solvers/BlqSolver.h"
#include "solvers/HtSolver.h"
#include "solvers/NaiveSolver.h"
#include "solvers/ParallelLcdSolver.h"
#include "solvers/PkhSolver.h"
#include "solvers/SteensgaardSolver.h"

#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <cassert>
#include <exception>

using namespace ag;

const char *ag::solverKindName(SolverKind Kind) {
  switch (Kind) {
  case SolverKind::Naive:
    return "Naive";
  case SolverKind::HT:
    return "HT";
  case SolverKind::PKH:
    return "PKH";
  case SolverKind::BLQ:
    return "BLQ";
  case SolverKind::LCD:
    return "LCD";
  case SolverKind::HCD:
    return "HCD";
  case SolverKind::HTHCD:
    return "HT+HCD";
  case SolverKind::PKHHCD:
    return "PKH+HCD";
  case SolverKind::BLQHCD:
    return "BLQ+HCD";
  case SolverKind::LCDHCD:
    return "LCD+HCD";
  }
  // Reachable from printing externally-supplied values; never UB.
  return "?";
}

const char *ag::solveOutcomeName(SolveOutcome Outcome) {
  switch (Outcome) {
  case SolveOutcome::Precise:
    return "precise";
  case SolveOutcome::Fallback:
    return "fallback";
  case SolveOutcome::Partial:
    return "partial";
  case SolveOutcome::Failed:
    return "failed";
  }
  return "?";
}

namespace {

/// Runs \p Solver to completion; if the governor aborts it, attaches the
/// solver's partial state to the in-flight error (best effort) so
/// solveGoverned can hand it to callers that disallow fallback.
template <typename SolverT> PointsToSolution runSolver(SolverT &&Solver) {
  try {
    return Solver.solve();
  } catch (BudgetExceededError &E) {
    if (!E.partial())
      E.setPartial(std::make_shared<PointsToSolution>(
          Solver.context().extractSolution()));
    throw;
  }
}

template <typename Policy>
PointsToSolution dispatch(const ConstraintSystem &CS, SolverKind Kind,
                          SolverStats &Stats, const SolverOptions &Opts,
                          const HcdResult *Hcd,
                          const std::vector<NodeId> *Seeds) {
  switch (Kind) {
  case SolverKind::Naive:
    return runSolver(NaiveSolver<Policy>(CS, Stats, Opts, Seeds));
  case SolverKind::HT:
    return runSolver(HtSolver<Policy>(CS, Stats, Opts, nullptr, Seeds));
  case SolverKind::HTHCD:
    return runSolver(HtSolver<Policy>(CS, Stats, Opts, Hcd, Seeds));
  case SolverKind::PKH:
    return runSolver(PkhSolver<Policy>(CS, Stats, Opts, nullptr, Seeds));
  case SolverKind::PKHHCD:
    return runSolver(PkhSolver<Policy>(CS, Stats, Opts, Hcd, Seeds));
  case SolverKind::LCD:
    return runSolver(LcdSolver<Policy>(CS, Stats, Opts, nullptr, Seeds));
  case SolverKind::LCDHCD:
    return runSolver(LcdSolver<Policy>(CS, Stats, Opts, Hcd, Seeds));
  case SolverKind::HCD: {
    // solve() supplies the offline result for every HCD kind; recompute
    // defensively rather than assert if a caller reaches here without it.
    HcdResult Own;
    if (!Hcd) {
      Own = runHcdOffline(CS);
      Hcd = &Own;
    }
    return runSolver(HcdSolver<Policy>(CS, Stats, Opts, *Hcd, Seeds));
  }
  case SolverKind::BLQ:
  case SolverKind::BLQHCD:
    break; // Handled by the caller (not templated on Policy).
  }
  // Invalid kinds are rejected at the entry points; returning the empty
  // solution here keeps release builds defined if one slips through.
  assert(false && "unreachable solver dispatch");
  return PointsToSolution(CS.numNodes());
}

/// Folds the stats accrued during one solve() into the MetricsRegistry on
/// scope exit — including budget-tripped unwinds, so a partial run's work
/// is still visible in the registry. Absorbs the *delta* against the entry
/// snapshot: callers may hand solve() a struct that already carries counts
/// from earlier runs (warm-start sessions merge into one struct).
class RunMetricsScope {
public:
  explicit RunMetricsScope(SolverStats &S)
      : S(S), Before(S), BaseExceptions(std::uncaught_exceptions()) {}
  ~RunMetricsScope() {
    if (!obs::metricsEnabled())
      return;
    uint64_t BeforeVals[SolverStats::NumFields];
    size_t I = 0;
    Before.forEachField(
        [&](const char *, uint64_t V) { BeforeVals[I++] = V; });
    SolverStats Delta;
    I = 0;
    uint64_t AfterVals[SolverStats::NumFields];
    size_t J = 0;
    S.forEachField([&](const char *, uint64_t V) { AfterVals[J++] = V; });
    Delta.forEachField(
        [&](const char *, uint64_t &V) { V = AfterVals[I] - BeforeVals[I]; ++I; });
    obs::MetricsRegistry &R = obs::MetricsRegistry::instance();
    R.absorb(Delta);
    if (std::uncaught_exceptions() == BaseExceptions)
      R.add(obs::Counter::SolverRuns);
  }

private:
  SolverStats &S;
  SolverStats Before;
  int BaseExceptions;
};

} // namespace

/// A seed-merged variable carries no constraints of its own, so
/// Steensgaard alone would give it an empty set; uniting each seed class
/// with the Steensgaard classes of its members and taking the union of
/// member sets keeps every node's set a superset of what any
/// inclusion-based solver would compute for the seeded system.
PointsToSolution ag::steensgaardFallback(const ConstraintSystem &CS,
                                         const std::vector<NodeId> *SeedReps) {
  obs::TraceSpan Span("steensgaard_fallback", "solve");
  obs::count(obs::Counter::SolverFallbacks);
  obs::flight("steensgaard_fallback");
  PointsToSolution Steens = solveSteensgaard(CS);
  if (!SeedReps)
    return Steens;

  const uint32_t N = CS.numNodes();
  UnionFind Classes;
  Classes.grow(N);
  for (NodeId V = 0; V != N; ++V) {
    Classes.unite(V, (*SeedReps)[V]);
    Classes.unite(V, Steens.repOf(V));
  }
  PointsToSolution Out(N);
  // Pass 1 (all nodes still self-mapped): union member sets per class.
  for (NodeId V = 0; V != N; ++V)
    Out.mutableSet(Classes.find(V)).unionWith(Steens.pointsTo(V));
  // Pass 2: point members at their class representative.
  for (NodeId V = 0; V != N; ++V) {
    NodeId R = Classes.find(V);
    if (R != V)
      Out.setRep(V, R);
  }
  Out.internShared();
  return Out;
}

PointsToSolution ag::solve(const ConstraintSystem &CS, SolverKind Kind,
                           PtsRepr Repr, SolverStats *StatsOut,
                           const SolverOptions &Opts,
                           const std::vector<NodeId> *SeedReps,
                           const HcdResult *Hcd) {
  SolverStats LocalStats;
  SolverStats &Stats = StatsOut ? *StatsOut : LocalStats;

  if (!isValidSolverKind(Kind)) {
    // Defined behaviour for out-of-range kinds; use solveGoverned to get
    // a structured error instead.
    assert(false && "invalid solver kind");
    return PointsToSolution(CS.numNodes());
  }

  // The solve span is named after the kind (solverKindName returns string
  // literals, which is what the recorder stores).
  obs::PhaseSpan Span(solverKindName(Kind), "solve");
  obs::flight("solve_begin", uint64_t(Kind), CS.numNodes());
  RunMetricsScope Metrics(Stats);

  // Run (or adopt) the HCD offline analysis and fold its variable-only
  // SCCs into the seed representatives.
  HcdResult OwnedHcd;
  std::vector<NodeId> ComposedSeeds;
  const std::vector<NodeId> *Seeds = SeedReps;
  if (usesHcd(Kind)) {
    if (!Hcd) {
      OwnedHcd = runHcdOffline(CS);
      Hcd = &OwnedHcd;
    }
    Stats.NodesCollapsed += Hcd->NumPreMerged;
    if (SeedReps)
      ComposedSeeds = composeReps(*SeedReps, Hcd->PreMerge);
    else
      ComposedSeeds = Hcd->PreMerge;
    Seeds = &ComposedSeeds;
  }

  if (Kind == SolverKind::BLQ || Kind == SolverKind::BLQHCD) {
    // BLQ attaches its own partial snapshot (from the BDD relation) before
    // rethrowing, so it bypasses the runSolver wrapper.
    BlqSolver Blq(CS, Stats, Opts, Kind == SolverKind::BLQHCD ? Hcd : nullptr,
                  Seeds);
    return Blq.solve();
  }

  // The parallel wavefront solver handles LCD and LCD+HCD over bitmaps
  // when a thread count is requested; everything else stays sequential
  // (see SolverOptions::Threads for why BDD sets are excluded).
  if (Opts.Threads > 0 && Repr == PtsRepr::Bitmap &&
      (Kind == SolverKind::LCD || Kind == SolverKind::LCDHCD))
    return runSolver(ParallelLcdSolver(
        CS, Stats, Opts, Kind == SolverKind::LCDHCD ? Hcd : nullptr,
        Seeds));

  if (Repr == PtsRepr::Bitmap)
    return dispatch<BitmapPtsPolicy>(CS, Kind, Stats, Opts, Hcd, Seeds);
  return dispatch<BddPtsPolicy>(CS, Kind, Stats, Opts, Hcd, Seeds);
}

SolveResult ag::solveGoverned(const ConstraintSystem &CS, SolverKind Kind,
                              const SolveBudget &Budget, PtsRepr Repr,
                              SolverStats *StatsOut,
                              const SolverOptions &Opts,
                              const std::vector<NodeId> *SeedReps,
                              const HcdResult *Hcd) {
  SolveResult R;
  if (!isValidSolverKind(Kind)) {
    R.St = Status::invalidArgument(
        "unknown solver kind " +
        std::to_string(static_cast<int>(Kind)));
    R.Solution = PointsToSolution(CS.numNodes());
    return R;
  }
  if (SeedReps && SeedReps->size() != CS.numNodes()) {
    R.St = Status::invalidArgument("seed representative table has " +
                                   std::to_string(SeedReps->size()) +
                                   " entries for " +
                                   std::to_string(CS.numNodes()) + " nodes");
    R.Solution = PointsToSolution(CS.numNodes());
    return R;
  }

  SolveGovernor Governor(Budget);
  SolverOptions GovernedOpts = Opts;
  GovernedOpts.Governor = &Governor;
  try {
    R.Solution =
        solve(CS, Kind, Repr, StatsOut, GovernedOpts, SeedReps, Hcd);
    R.Outcome = SolveOutcome::Precise;
    R.Sound = true;
    return R;
  } catch (BudgetExceededError &E) {
    R.St = E.status();
    if (Budget.AllowFallback) {
      R.Solution = steensgaardFallback(CS, SeedReps);
      R.Outcome = SolveOutcome::Fallback;
      R.Sound = true;
    } else {
      R.Solution = E.partial() ? std::move(*E.partial())
                               : PointsToSolution(CS.numNodes());
      R.Outcome = SolveOutcome::Partial;
      R.Sound = false;
    }
    return R;
  }
}
