//===- SteensgaardSolver.h - Unification-based pointer analysis -*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steensgaard's near-linear-time unification-based pointer analysis
/// (POPL 1996) — the fast-but-imprecise alternative the paper positions
/// inclusion-based analysis against: "While Steensgaard's analysis has
/// much greater imprecision than inclusion-based analysis … inclusion-
/// based pointer analysis is a better choice … if it can be made to run
/// in reasonable time". Implemented here so the precision gap the paper's
/// argument rests on can be measured (see bench_precision).
///
/// Model: every node belongs to an equivalence class (union-find); each
/// class has at most one pointee class. Assignments unify pointee classes
/// instead of propagating sets, so the result is a coarse superset of the
/// inclusion-based solution. Call-offset slots of a sized object are
/// pre-unified (unification cannot track offsets), which keeps offset
/// dereferences sound.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SOLVERS_STEENSGAARDSOLVER_H
#define AG_SOLVERS_STEENSGAARDSOLVER_H

#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"

namespace ag {

/// Statistics from a Steensgaard run.
struct SteensgaardStats {
  uint64_t Unifications = 0; ///< Class merges performed.
  uint64_t Passes = 0;       ///< Constraint sweeps until fixpoint.
};

/// Runs Steensgaard's analysis over \p CS.
///
/// The returned solution is object-level compatible with the inclusion-
/// based solvers' output (elements are original address-taken object
/// ids), and is always a superset of theirs — the property
/// tests/SteensgaardTest.cpp checks.
PointsToSolution solveSteensgaard(const ConstraintSystem &CS,
                                  SteensgaardStats *Stats = nullptr);

} // namespace ag

#endif // AG_SOLVERS_STEENSGAARDSOLVER_H
