//===- ServeSession.h - Hardened serving REPL -------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `ptatool serve` line-protocol session as a library, hardened for
/// production use and testable without a subprocess:
///
///  * Bounded line reading — a line longer than MaxLineBytes is consumed
///    (never buffered) and answered with a structured error; EOF mid-line
///    processes the partial line and ends the session cleanly; garbage
///    and unknown commands get structured errors and the session stays
///    alive. No input can assert, hang, or grow memory unboundedly.
///  * Overload control — with QueueCapacity > 0, a bounded admission
///    queue decouples the reading thread from a worker executing
///    requests. A full queue sheds load with `ERR overloaded`; a request
///    that waited past DeadlineSeconds is dropped with `ERR deadline`
///    before any work is done for it. Every admitted request gets exactly
///    one reply, in admission order.
///  * Warm-start resolve with retry-with-backoff — the `resolve` command
///    re-solves with the delta under the configured budget, retrying with
///    a geometrically growing budget (fallback disallowed) before the
///    final attempt is allowed to degrade to the Steensgaard fallback.
///    A precise result is adopted for serving *and* as the next
///    warm-start base; a fallback result is served (sound) while the
///    precise base is kept for future resolve attempts.
///  * Self-check — the `check` command certifies the currently served
///    solution against its constraint system (src/check/).
///  * The FaultInjector site ServeRequest fails individual requests with
///    a structured error, proving request failures never kill a session.
///
/// Command dispatch is stream-agnostic and re-entrant: any number of
/// threads (the TCP Server's worker pool, tests) may call handleLine
/// concurrently, each buffering its own reply. The served identity —
/// QueryEngine plus the name table — lives in an immutable ServeState
/// behind an RCU-style shared_ptr epoch: readers copy the pointer once
/// per request and finish on that state even if `resolve` swaps in
/// a successor mid-request; writers build the new state off-path under
/// MutateMu and publish it with one pointer swap, so readers never
/// observe a half-built engine and never wait on a re-solve in
/// progress (the swap itself is a nanosecond StateMu critical section).
///
/// Queue-mode output interleaving: replies are written atomically (one
/// lock per reply), reader-side errors (`ERR overloaded`, line-too-long)
/// may interleave *between* worker replies — clients match replies to
/// requests by content, as the existing tests do.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_SERVESESSION_H
#define AG_SERVE_SERVESESSION_H

#include "core/SolveBudget.h"
#include "demand/DemandTier.h"
#include "obs/EventLog.h"
#include "obs/RequestContext.h"
#include "serve/IncrementalSolver.h"
#include "serve/QueryEngine.h"
#include "serve/Snapshot.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ag {

/// Serving-session tuning. Defaults reproduce the original synchronous
/// REPL (no queue, no deadline) with bounded lines.
struct ServeOptions {
  /// Longest accepted request line; longer lines are drained and answered
  /// with an error (the session continues).
  size_t MaxLineBytes = 1 << 16;

  /// Admission-queue capacity. 0 runs synchronously on the caller's
  /// thread; > 0 starts one worker thread and sheds load when the queue
  /// is full.
  size_t QueueCapacity = 0;

  /// Per-request deadline (seconds spent waiting in the admission queue);
  /// expired requests are answered with `ERR deadline` instead of being
  /// executed. 0 disables. Only meaningful with QueueCapacity > 0.
  double DeadlineSeconds = 0;

  /// Base budget for one `resolve` attempt (scaled by ResolveBackoff on
  /// each retry). AllowFallback applies to the *final* attempt only;
  /// earlier attempts always disallow fallback so a retry can still
  /// reach the precise answer.
  SolveBudget ResolveBudget;

  /// Solver options (threads, stall watchdog) for `resolve`.
  SolverOptions ResolveOpts;

  /// Total resolve attempts (>= 1); attempts 1..N-1 retry precise with a
  /// growing budget, attempt N may degrade per ResolveBudget.
  unsigned ResolveAttempts = 3;

  /// Budget multiplier between attempts (> 1).
  double ResolveBackoff = 4.0;

  /// Demand mode only: per-query deduction budget (unlimited never
  /// escalates; a finite budget escalates to one exhaustive solve when a
  /// query's deduction trips it).
  SolveBudget QueryBudget;

  /// Demand mode only: solver kind for the escalation solve.
  SolverKind EscalationKind = SolverKind::LCDHCD;

  /// Wide-event sink: when set, every executed request (and every shed or
  /// deadline-dropped one in queue mode) publishes one "ag.events.v1"
  /// JSON line. Shared so the owner can outlive the session and flush.
  std::shared_ptr<obs::EventLog> Events;

  /// Slow-query threshold in milliseconds: a request slower than this is
  /// captured in the slow-query log (its wide event plus a FlightRecorder
  /// ring snapshot). Governor-tripped and deadline-dropped requests are
  /// captured regardless. <= 0 disables the latency trigger.
  double SlowMillis = 0;

  /// Slow-query log sink; null disables slow-query capture entirely
  /// (ptatool serve points this at stderr).
  std::ostream *SlowOut = nullptr;
};

/// Monotonic per-session counters (exposed via the `stats` command).
struct ServeCounters {
  uint64_t Requests = 0;        ///< Requests executed (any outcome).
  uint64_t Admitted = 0;        ///< Requests accepted into the queue.
  uint64_t Shed = 0;            ///< Requests rejected: queue full.
  uint64_t DeadlineDropped = 0; ///< Requests dropped: waited too long.
  uint64_t OversizedLines = 0;  ///< Lines over MaxLineBytes.
  uint64_t ResolveRetries = 0;  ///< Resolve attempts that tripped and retried.
  uint64_t InjectedFaults = 0;  ///< ServeRequest faults fired.
};

/// One serving session over a loaded snapshot (see file comment), or —
/// demand mode — over a raw constraint system with no solve up front:
/// queries answer through a DemandTier (memoized demand deduction,
/// escalation to one exhaustive solve on a budget trip), `resolve`
/// folds deltas into the tier, and whole-solution commands (`callgraph`,
/// `check`) force the escalation and materialize a QueryEngine over it
/// with the demand memo attached as its first tier.
class ServeSession {
public:
  explicit ServeSession(Snapshot Snap, ServeOptions Opts = ServeOptions());

  /// Demand mode: serve \p System without solving it first.
  explicit ServeSession(ConstraintSystem System,
                        ServeOptions Opts = ServeOptions());
  ~ServeSession();

  ServeSession(const ServeSession &) = delete;
  ServeSession &operator=(const ServeSession &) = delete;

  /// Runs the session until EOF or `quit`. Returns the process exit code
  /// (always 0 — load errors are rejected before a session exists, and
  /// no request can kill a running session).
  int run(std::istream &In, std::ostream &Out);

  /// Executes one request line (test entry; also the worker's core).
  /// Safe to call from any number of threads concurrently — the request
  /// runs on the serve state loaded at entry. \p ConnId tags the request's
  /// telemetry (wide events) with the originating connection; 0 = the
  /// stdin REPL / no connection.
  /// \returns false when the session should end (`quit`).
  bool handleLine(const std::string &Line, std::ostream &Out,
                  uint64_t ConnId = 0);

  /// The greeting line run() writes before serving; network front-ends
  /// send the same bytes per connection so a TCP client script and a
  /// stdin script produce identical transcripts.
  std::string bannerText() const;

  /// The session's tuning (front-ends need MaxLineBytes for their own
  /// bounded readers).
  const ServeOptions &options() const { return Opts; }

  /// How a front-end-owned request was dropped before dispatch.
  enum class DropKind {
    Overloaded, ///< Admission queue full.
    Deadline,   ///< Waited past the deadline.
    Shutdown,   ///< Admitted while the session/connection was closing.
  };

  /// Reader-side accounting for front-ends that own their own line reader
  /// and admission queue (the TCP Server): a request answered without
  /// being executed still counts and still publishes one wide event with
  /// the drop status, exactly like the built-in queue mode.
  void noteDroppedRequest(DropKind K, const std::string &Line,
                          const std::string &Reply, uint64_t WaitedNanos,
                          uint64_t ConnId = 0);
  /// Counts one admitted request (front-end queues).
  void noteAdmitted();
  /// Counts one over-long line consumed by a front-end reader.
  void noteOversizedLine();

  ServeCounters counters() const;

  /// The snapshot currently being served (changes after a successful
  /// `resolve`). Snapshot mode only — demand mode has no snapshot until
  /// a whole-solution command materializes one. The reference stays valid
  /// until the next successful `resolve` swaps the serve state.
  const Snapshot &servingSnapshot() const { return state()->Engine->snapshot(); }

  /// Demand mode's tier (null in snapshot mode).
  const DemandTier *demandTier() const { return Tier.get(); }

private:
  /// One immutable serving epoch: the engine (null in demand mode until a
  /// whole-solution command materializes it) plus the name table matching
  /// its constraint system. Published via State; never mutated after.
  struct ServeState {
    std::shared_ptr<QueryEngine> Engine;
    std::shared_ptr<const std::unordered_map<std::string, NodeId>> Names;
  };
  using StatePtr = std::shared_ptr<const ServeState>;

  StatePtr state() const {
    std::lock_guard<std::mutex> Lock(StateMu);
    return State;
  }
  void publishState(StatePtr St) {
    std::lock_guard<std::mutex> Lock(StateMu);
    State = std::move(St);
  }
  const ConstraintSystem &systemOf(const ServeState &St) const;
  static std::shared_ptr<const std::unordered_map<std::string, NodeId>>
  buildNames(const ConstraintSystem &CS);
  bool resolveNodeRef(const ServeState &St, const std::string &Tok,
                      std::ostream &Out, NodeId &Id) const;
  /// Demand mode: forces the tier's escalation, publishes a state with an
  /// Engine over the exhaustive solution (idempotent) and repoints \p St
  /// at it. Snapshot mode: no-op ok.
  Status materializeEngine(StatePtr &St);
  void cmdCheck(StatePtr &St, std::ostream &Out);
  void cmdResolve(const std::string &Path, std::ostream &Out);
  void cmdStats(const ServeState &St, std::ostream &Out, bool Json);
  int runQueued(std::istream &In, std::ostream &Out);

  /// Maps a REPL command to its latency/event class.
  static obs::CommandClass classifyCommand(const std::string &Cmd);
  /// The command dispatch proper (the old handleLine body); runs under an
  /// installed RequestScope with the reply buffered by the caller. \p St
  /// is the epoch the request executes on (check/callgraph may advance it
  /// to a freshly materialized one).
  bool dispatch(const std::string &Cmd, std::vector<std::string> &Args,
                std::ostream &Out, StatePtr &St);
  /// Closes out one executed request: latency quantiles, request/tier
  /// counters, the wide event, and slow-query capture.
  void finishRequest(obs::RequestScope &Scope, const std::string &Reply);
  /// Telemetry for requests answered without executing (queue shed,
  /// deadline drop): a wide event with \p StatusStr and, for deadline
  /// drops, a slow-query capture. \p WaitedNanos backdates the start so
  /// the event's micros reflect the time the client actually waited.
  void noteUnexecutedRequest(const std::string &Line, const char *StatusStr,
                             const std::string &Reply, uint64_t WaitedNanos,
                             bool CaptureSlow, uint64_t ConnId = 0);
  /// Appends one slow-query entry (wide event + flight ring snapshot).
  void writeSlowQuery(const std::string &EventLine);

  ServeOptions Opts;
  /// The current serving epoch (see ServeState). Swapped by cmdResolve /
  /// materializeEngine under MutateMu; readers copy the pointer under
  /// StateMu — a nanosecond critical section that never overlaps a
  /// mutation (writers build the new epoch off to the side and only
  /// take StateMu for the final pointer swap). A plain mutex instead of
  /// std::atomic<shared_ptr>: libstdc++'s _Sp_atomic trips TSan (its
  /// embedded spinlock is invisible to the race detector), and the
  /// epoch protocol must stay provably clean under TSan in CI.
  StatePtr State;
  mutable std::mutex StateMu;
  /// Demand mode's first tier (null in snapshot mode). Shared with every
  /// materialized Engine as its attached memo; internally thread-safe.
  std::shared_ptr<DemandTier> Tier;
  /// Warm-start base: always the newest *precise* snapshot (null when the
  /// session was started from a fallback snapshot). Guarded by MutateMu.
  std::unique_ptr<IncrementalSolver> Inc;
  /// Serializes state writers (`resolve`, demand materialization). Readers
  /// never take it.
  std::mutex MutateMu;

  struct AtomicCounters {
    std::atomic<uint64_t> Requests{0};
    std::atomic<uint64_t> Admitted{0};
    std::atomic<uint64_t> Shed{0};
    std::atomic<uint64_t> DeadlineDropped{0};
    std::atomic<uint64_t> OversizedLines{0};
    std::atomic<uint64_t> ResolveRetries{0};
    std::atomic<uint64_t> InjectedFaults{0};
  };
  mutable AtomicCounters C;
  /// Serializes slow-query entries (worker vs. reader-side drops).
  std::mutex SlowMu;
};

} // namespace ag

#endif // AG_SERVE_SERVESESSION_H
