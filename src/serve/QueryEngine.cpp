//===- QueryEngine.cpp - Cached points-to query serving -------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/QueryEngine.h"

#include "demand/DemandTier.h"
#include "obs/MetricsRegistry.h"
#include "obs/RequestContext.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ag;

QueryEngine::QueryEngine(Snapshot S, const Options &Opts)
    : Snap(std::move(S)),
      // Alias verdicts are one bool; give the list cache the lion's
      // share of the entry budget.
      ListCache(Opts.CacheCapacity / 2, Opts.CacheShards),
      AliasCache(Opts.CacheCapacity - Opts.CacheCapacity / 2,
                 Opts.CacheShards) {
  buildCanonIds();
}

void QueryEngine::buildCanonIds() {
  const uint32_t N = numNodes();
  CanonIds.resize(N);
  // Physical identity (the hash-consed set pointer) is the dedup key;
  // the nullptr bucket folds every empty-set rep onto one id. Two
  // passes because a class representative's id may exceed a member's.
  std::unordered_map<const SparseBitVector *, NodeId> FirstWithSet;
  for (NodeId V = 0; V != N; ++V) {
    if (Snap.Solution.repOf(V) != V)
      continue;
    auto It = FirstWithSet.emplace(Snap.Solution.sharedSet(V).get(), V);
    CanonIds[V] = It.first->second;
  }
  for (NodeId V = 0; V != N; ++V)
    if (Snap.Solution.repOf(V) != V)
      CanonIds[V] = CanonIds[Snap.Solution.repOf(V)];
}

QueryEngine::IdList QueryEngine::pointsTo(NodeId V) {
  assert(validNode(V) && "query for unknown node");
  obs::TraceSpan Span("query.points_to", "serve");
  obs::count(obs::Counter::ServeQueries);
  uint64_t Key = listKey(TagPts, canonId(V));
  if (auto Hit = ListCache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    return *Hit;
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);
  // Demand memo first: a certified class answers bit-equal to the
  // snapshot without touching the solution at all.
  if (DemandMemo) {
    IdList Memo;
    if (DemandMemo->tryMemoPointsTo(V, Memo)) {
      obs::noteTierProbe(obs::ReqTier::Memo, /*Hit=*/true);
      ListCache.put(Key, Memo);
      return Memo;
    }
  }
  obs::TierSpan Tier(obs::ReqTier::Snapshot);
  Tier.markHit();
  auto Result = std::make_shared<const std::vector<NodeId>>(
      Snap.Solution.pointsToVector(V));
  ListCache.put(Key, Result);
  return Result;
}

bool QueryEngine::alias(NodeId P, NodeId Q) {
  assert(validNode(P) && validNode(Q) && "query for unknown node");
  obs::TraceSpan Span("query.alias", "serve");
  obs::count(obs::Counter::ServeQueries);
  NodeId A = canonId(P), B = canonId(Q);
  if (A > B)
    std::swap(A, B);
  uint64_t Key = (uint64_t(A) << 32) | B;
  if (auto Hit = AliasCache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    return *Hit;
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);
  if (DemandMemo) {
    bool Memo;
    if (DemandMemo->tryMemoAlias(P, Q, Memo)) {
      obs::noteTierProbe(obs::ReqTier::Memo, /*Hit=*/true);
      AliasCache.put(Key, Memo);
      return Memo;
    }
  }
  obs::TierSpan Tier(obs::ReqTier::Snapshot);
  Tier.markHit();
  bool Result = Snap.Solution.mayAlias(P, Q);
  AliasCache.put(Key, Result);
  return Result;
}

std::vector<bool>
QueryEngine::aliasBatch(const std::vector<std::pair<NodeId, NodeId>> &Pairs) {
  obs::observe(obs::Hist::QueryBatch, Pairs.size());
  std::vector<bool> Out;
  Out.reserve(Pairs.size());
  for (const auto &[P, Q] : Pairs)
    Out.push_back(alias(P, Q));
  return Out;
}

void QueryEngine::buildReverseIndex(SolveGovernor *Gov) {
  const uint32_t N = numNodes();
  // Build into temporaries: a budget trip mid-scan must leave no
  // half-built index behind (the next query rebuilds from scratch).
  std::vector<std::vector<NodeId>> Reverse(N);
  std::vector<std::vector<NodeId>> Members(N);
  // Ascending scans keep every per-object rep list and per-rep member
  // list sorted without a sort pass.
  for (NodeId V = 0; V != N; ++V)
    Members[Snap.Solution.repOf(V)].push_back(V);
  for (NodeId R = 0; R != N; ++R) {
    if (Snap.Solution.repOf(R) != R)
      continue;
    if (Gov)
      Gov->onStep();
    for (uint32_t Obj : Snap.Solution.pointsTo(R)) {
      if (Gov)
        Gov->onStep();
      Reverse[Obj].push_back(R);
    }
  }
  ReverseIndex = std::move(Reverse);
  ClassMembers = std::move(Members);
  ReverseBuilt = true;
}

Status QueryEngine::pointedBy(NodeId Obj, IdList &Out, SolveGovernor *Gov) {
  assert(validNode(Obj) && "query for unknown node");
  obs::TraceSpan Span("query.pointed_by", "serve");
  obs::count(obs::Counter::ServeQueries);
  uint64_t Key = listKey(TagPointedBy, Obj);
  if (auto Hit = ListCache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    Out = *Hit;
    return Status::okStatus();
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);
  obs::TierSpan Tier(obs::ReqTier::Snapshot);
  Tier.markHit();
  std::vector<NodeId> Pointers;
  {
    std::lock_guard<std::mutex> Lock(ReverseMu);
    if (!ReverseBuilt) {
      try {
        buildReverseIndex(Gov);
      } catch (const BudgetExceededError &E) {
        return E.status();
      }
    }
    for (NodeId R : ReverseIndex[Obj])
      Pointers.insert(Pointers.end(), ClassMembers[R].begin(),
                      ClassMembers[R].end());
  }
  // Rep lists ascend and member lists ascend, but members of a later rep
  // may have smaller ids (the survivor of a merge can outrank members of
  // another class): one sort restores the global order clients expect.
  std::sort(Pointers.begin(), Pointers.end());
  auto Result =
      std::make_shared<const std::vector<NodeId>>(std::move(Pointers));
  ListCache.put(Key, Result);
  Out = std::move(Result);
  return Status::okStatus();
}

QueryEngine::IdList QueryEngine::callees(NodeId V) {
  assert(validNode(V) && "query for unknown node");
  obs::TraceSpan Span("query.callees", "serve");
  obs::count(obs::Counter::ServeQueries);
  uint64_t Key = listKey(TagCallees, canonId(V));
  if (auto Hit = ListCache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    return *Hit;
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);
  obs::TierSpan Tier(obs::ReqTier::Snapshot);
  Tier.markHit();
  std::vector<NodeId> Funs;
  for (uint32_t Obj : Snap.Solution.pointsTo(V))
    if (Snap.CS.isFunction(Obj))
      Funs.push_back(Obj);
  auto Result = std::make_shared<const std::vector<NodeId>>(std::move(Funs));
  ListCache.put(Key, Result);
  return Result;
}

void QueryEngine::buildCallGraph() {
  // Indirect calls compile to loads/stores at function slot offsets
  // (>= FunctionReturnOffset) through the function-pointer variable:
  // each such base variable is a call site; its callees are the
  // function objects in its points-to set.
  std::vector<NodeId> Bases;
  for (const Constraint &C : Snap.CS.constraints()) {
    if (C.Offset == 0)
      continue;
    if (C.Kind == ConstraintKind::Load)
      Bases.push_back(C.Src);
    else if (C.Kind == ConstraintKind::Store)
      Bases.push_back(C.Dst);
  }
  std::sort(Bases.begin(), Bases.end());
  Bases.erase(std::unique(Bases.begin(), Bases.end()), Bases.end());
  for (NodeId Base : Bases)
    for (uint32_t Obj : Snap.Solution.pointsTo(Base))
      if (Snap.CS.isFunction(Obj))
        CallEdges.emplace_back(Base, Obj);
  // Bases ascend and each set iterates ascending, so edges are already
  // sorted; distinct bases cannot produce duplicate pairs.
}

const std::vector<std::pair<NodeId, NodeId>> &QueryEngine::callGraph() {
  obs::TierSpan Tier(obs::ReqTier::Snapshot);
  Tier.markHit();
  std::call_once(CallGraphOnce, [this] { buildCallGraph(); });
  return CallEdges;
}

CacheStats QueryEngine::cacheStats() const {
  CacheStats L = ListCache.stats(), A = AliasCache.stats();
  L.Hits += A.Hits;
  L.Misses += A.Misses;
  L.Evictions += A.Evictions;
  L.Entries += A.Entries;
  return L;
}
