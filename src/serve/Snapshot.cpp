//===- Snapshot.cpp - Persisted solved analysis instances -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/Snapshot.h"

#include "serve/SnapshotStore.h"

#include "adt/Hashing.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <cstring>
#include <fstream>
#include <unordered_map>

using namespace ag;

namespace {

const char SnapshotMagic[8] = {'A', 'G', 'P', 'T', 'S', 'N', 'A', 'P'};
constexpr size_t HeaderBytes = 8 + 4 + 4 + 8 + 8;
/// Set-record marker: "this rep shares an earlier rep's set". Cannot
/// collide with a real count (counts are bounded by MaxNodes = 2^23).
constexpr uint32_t SetBackref = 0xFFFFFFFFu;

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(char(V & 0xff));
  Out.push_back(char((V >> 8) & 0xff));
  Out.push_back(char((V >> 16) & 0xff));
  Out.push_back(char((V >> 24) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian cursor over an input buffer. Every read
/// reports overruns instead of advancing past the end, so truncated
/// input surfaces as a clean ParseError at whichever field hit the wall.
class ByteReader {
public:
  ByteReader(const std::string &Bytes, size_t Offset)
      : Data(Bytes), Pos(Offset) {}

  size_t remaining() const { return Data.size() - Pos; }

  bool readU8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = uint8_t(Data[Pos++]);
    return true;
  }

  bool readU32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= uint32_t(uint8_t(Data[Pos++])) << (8 * I);
    return true;
  }

  bool readU64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= uint64_t(uint8_t(Data[Pos++])) << (8 * I);
    return true;
  }

  bool readBytes(std::string &Out, size_t Len) {
    if (remaining() < Len)
      return false;
    Out.assign(Data, Pos, Len);
    Pos += Len;
    return true;
  }

private:
  const std::string &Data;
  size_t Pos;
};

Status truncated(const char *Field) {
  return Status::parseError(std::string("truncated snapshot: ") + Field);
}

} // namespace

Status ag::writeSnapshotBytes(const Snapshot &Snap, std::string &Out) {
  const uint32_t N = Snap.CS.numNodes();
  if (Snap.Solution.numNodes() != N)
    return Status::invalidArgument(
        "snapshot solution covers " +
        std::to_string(Snap.Solution.numNodes()) + " nodes for a " +
        std::to_string(N) + "-node system");
  if (Snap.SeedReps.size() != N)
    return Status::invalidArgument(
        "snapshot seed map has " + std::to_string(Snap.SeedReps.size()) +
        " entries for " + std::to_string(N) + " nodes");
  for (NodeId V = 0; V != N; ++V) {
    if (Snap.SeedReps[V] >= N ||
        Snap.SeedReps[Snap.SeedReps[V]] != Snap.SeedReps[V])
      return Status::invalidArgument("snapshot seed map is not canonical");
    if (Snap.Solution.repOf(Snap.Solution.repOf(V)) != Snap.Solution.repOf(V))
      return Status::invalidArgument("snapshot rep table is not canonical");
  }

  std::string Payload;
  Payload.push_back(char(uint8_t(Snap.Kind)));
  Payload.push_back(char(uint8_t(Snap.Repr)));
  Payload.push_back(char(uint8_t(Snap.Outcome)));
  Payload.push_back(char(Snap.Sound ? 1 : 0));
  putU32(Payload, N);

  std::string Text = Snap.CS.serialize();
  putU64(Payload, Text.size());
  Payload += Text;

  for (NodeId V = 0; V != N; ++V)
    putU32(Payload, Snap.SeedReps[V]);
  for (NodeId V = 0; V != N; ++V)
    putU32(Payload, Snap.Solution.repOf(V));
  // Dedup is purely content-based (hash bucket + full equality check),
  // not identity-based, so solutions with equal but unshared sets still
  // serialize to the canonical backref form and write -> read -> write
  // is bit-identical.
  std::unordered_map<uint64_t, std::vector<NodeId>> InlineByHash;
  for (NodeId V = 0; V != N; ++V) {
    if (Snap.Solution.repOf(V) != V)
      continue;
    const SparseBitVector &Set = Snap.Solution.pointsTo(V);
    if (Set.empty()) {
      putU32(Payload, 0);
      continue;
    }
    NodeId Ref = InvalidNode;
    auto &Bucket = InlineByHash[Set.contentHash()];
    for (NodeId E : Bucket)
      if (Snap.Solution.pointsTo(E) == Set) {
        Ref = E;
        break;
      }
    if (Ref != InvalidNode) {
      putU32(Payload, SetBackref);
      putU32(Payload, Ref);
      continue;
    }
    Bucket.push_back(V);
    putU32(Payload, uint32_t(Set.count()));
    for (uint32_t O : Set)
      putU32(Payload, O);
  }

  Out.clear();
  Out.reserve(HeaderBytes + Payload.size());
  Out.append(SnapshotMagic, sizeof(SnapshotMagic));
  putU32(Out, SnapshotVersion);
  putU32(Out, 0); // flags, reserved
  putU64(Out, Payload.size());
  putU64(Out, fnv1a(Payload.data(), Payload.size()));
  Out += Payload;
  return Status::okStatus();
}

Status ag::readSnapshotBytes(const std::string &Bytes, Snapshot &Snap) {
  if (Bytes.size() < HeaderBytes)
    return truncated("header");
  if (std::memcmp(Bytes.data(), SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return Status::parseError("not a snapshot file (bad magic)");

  ByteReader Header(Bytes, sizeof(SnapshotMagic));
  uint32_t Version = 0, Flags = 0;
  uint64_t PayLen = 0, Checksum = 0;
  Header.readU32(Version);
  Header.readU32(Flags);
  Header.readU64(PayLen);
  Header.readU64(Checksum);
  if (Version != SnapshotVersion)
    return Status::parseError("unsupported snapshot version " +
                              std::to_string(Version) + " (expected " +
                              std::to_string(SnapshotVersion) + ")");
  if (Flags != 0)
    return Status::parseError("unknown snapshot flags");
  if (Bytes.size() - HeaderBytes != PayLen)
    return Status::parseError(
        "snapshot payload length mismatch: header says " +
        std::to_string(PayLen) + ", file has " +
        std::to_string(Bytes.size() - HeaderBytes));
  uint64_t Actual = fnv1a(Bytes.data() + HeaderBytes, PayLen);
  if (Actual != Checksum)
    return Status::parseError("snapshot checksum mismatch (corrupt file)");

  ByteReader R(Bytes, HeaderBytes);
  uint8_t Kind = 0, Repr = 0, Outcome = 0, Sound = 0;
  if (!R.readU8(Kind) || !R.readU8(Repr) || !R.readU8(Outcome) ||
      !R.readU8(Sound))
    return truncated("metadata");
  if (!isValidSolverKind(static_cast<SolverKind>(Kind)))
    return Status::parseError("snapshot names unknown solver kind " +
                              std::to_string(Kind));
  if (Repr > uint8_t(PtsRepr::Bdd))
    return Status::parseError("snapshot names unknown set representation");
  if (Outcome > uint8_t(SolveOutcome::Partial))
    return Status::parseError("snapshot names unknown solve outcome");
  if (Sound > 1)
    return Status::parseError("snapshot soundness flag out of range");

  uint32_t N = 0;
  if (!R.readU32(N))
    return truncated("node count");
  if (N > ConstraintSystem::MaxNodes)
    return Status::parseError("snapshot node count exceeds MaxNodes");

  uint64_t TextLen = 0;
  if (!R.readU64(TextLen))
    return truncated("constraint text length");
  if (TextLen > R.remaining())
    return truncated("constraint text");
  std::string Text;
  R.readBytes(Text, size_t(TextLen));

  Snapshot Out;
  if (Status St = ConstraintSystem::parseText(Text, Out.CS); !St.ok())
    return Status::parseError("snapshot constraint system: " +
                              St.message());
  if (Out.CS.numNodes() != N)
    return Status::parseError(
        "snapshot node count disagrees with embedded system (" +
        std::to_string(N) + " vs " + std::to_string(Out.CS.numNodes()) +
        ")");

  Out.SeedReps.resize(N);
  for (NodeId V = 0; V != N; ++V) {
    if (!R.readU32(Out.SeedReps[V]))
      return truncated("seed map");
    if (Out.SeedReps[V] >= N)
      return Status::parseError("snapshot seed map entry out of range");
  }
  for (NodeId V = 0; V != N; ++V)
    if (Out.SeedReps[Out.SeedReps[V]] != Out.SeedReps[V])
      return Status::parseError("snapshot seed map is not idempotent");

  std::vector<NodeId> Rep(N);
  for (NodeId V = 0; V != N; ++V) {
    if (!R.readU32(Rep[V]))
      return truncated("rep table");
    if (Rep[V] >= N)
      return Status::parseError("snapshot rep entry out of range");
  }
  for (NodeId V = 0; V != N; ++V)
    if (Rep[Rep[V]] != Rep[V])
      return Status::parseError("snapshot rep table is not idempotent");

  Out.Solution = PointsToSolution(N);
  // Sets first (reps still self-mapped in the fresh solution), then the
  // rep table — mirrors extractSolution's two-pass construction. Inline
  // reps are indexed by content hash so backrefs can be validated as
  // canonical (lowest earlier rep with equal content, itself inline).
  std::unordered_map<uint64_t, std::vector<NodeId>> InlineByHash;
  for (NodeId V = 0; V != N; ++V) {
    if (Rep[V] != V)
      continue;
    uint32_t Count = 0;
    if (!R.readU32(Count))
      return truncated("set size");
    if (Count == SetBackref) {
      uint32_t E = 0;
      if (!R.readU32(E))
        return truncated("set backref");
      if (E >= V || Rep[E] != E)
        return Status::parseError(
            "snapshot set backref does not name an earlier representative");
      std::shared_ptr<SparseBitVector> H = Out.Solution.sharedSet(E);
      if (!H || H->empty())
        return Status::parseError("snapshot set backref names an empty set");
      // Canonical form requires the ref to be the first inline rep with
      // this content — no ref chains, no skipping over an equal
      // predecessor (either would break write->read->write identity).
      bool Canonical = false;
      auto It = InlineByHash.find(H->contentHash());
      if (It != InlineByHash.end())
        for (NodeId C : It->second) {
          if (C == E) {
            Canonical = true;
            break;
          }
          if (Out.Solution.pointsTo(C) == *H)
            break; // An earlier inline rep has equal content.
        }
      if (!Canonical)
        return Status::parseError("snapshot set backref is not canonical");
      Out.Solution.setSharedSet(V, std::move(H));
      continue;
    }
    if (Count == 0)
      continue; // Empty set: no allocation, pointsTo() serves the
                // shared empty instance.
    if (Count > N)
      return Status::parseError("snapshot set larger than the id space");
    SparseBitVector &Set = Out.Solution.mutableSet(V);
    uint32_t Prev = 0;
    for (uint32_t I = 0; I != Count; ++I) {
      uint32_t O = 0;
      if (!R.readU32(O))
        return truncated("set elements");
      if (O >= N)
        return Status::parseError("snapshot set element out of range");
      if (I != 0 && O <= Prev)
        return Status::parseError("snapshot set elements not ascending");
      Prev = O;
      Set.set(O);
    }
    InlineByHash[Set.contentHash()].push_back(V);
  }
  for (NodeId V = 0; V != N; ++V)
    if (Rep[V] != V)
      Out.Solution.setRep(V, Rep[V]);

  if (R.remaining() != 0)
    return Status::parseError("snapshot has trailing bytes");

  Out.Kind = static_cast<SolverKind>(Kind);
  Out.Repr = static_cast<PtsRepr>(Repr);
  Out.Outcome = static_cast<SolveOutcome>(Outcome);
  Out.Sound = Sound != 0;
  Snap = std::move(Out);
  return Status::okStatus();
}

Status ag::writeSnapshotFile(const Snapshot &Snap, const std::string &Path) {
  std::string Bytes;
  if (Status St = writeSnapshotBytes(Snap, Bytes); !St.ok())
    return St;
  // Crash-safe even for flat files: a failed write leaves any existing
  // snapshot at Path untouched (see SnapshotStore.h).
  return writeFileDurable(Path, Bytes);
}

Status ag::readSnapshotFile(const std::string &Path, Snapshot &Snap) {
  obs::TraceSpan Span("snapshot_load", "serve");
  std::ifstream F(Path, std::ios::binary);
  if (!F)
    return Status::ioError("cannot open " + Path);
  std::string Bytes((std::istreambuf_iterator<char>(F)),
                    std::istreambuf_iterator<char>());
  if (F.bad())
    return Status::ioError("read error on " + Path);
  Status St = readSnapshotBytes(Bytes, Snap);
  if (St.ok()) {
    obs::count(obs::Counter::ServeSnapshotLoads);
    obs::flight("snapshot_load", Bytes.size());
  }
  return St;
}
