//===- SnapshotStore.h - Crash-safe generational snapshots ------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable, generational snapshot persistence. A SnapshotStore manages a
/// directory of numbered snapshot generations:
///
///   <dir>/gen-1.snap, <dir>/gen-2.snap, ...
///
/// Every write goes through the classic crash-safe sequence — write to a
/// temp file in the same directory, fsync the file, atomically rename it
/// over the final name, fsync the directory — so at no instant does the
/// store hold a partially written generation under a published name. A
/// crash at any point leaves either the old state or the new state, plus
/// at worst a stray `*.tmp` the next recovery scan removes.
///
/// Recovery walks generations newest-first, fully validating each file
/// (magic, version, FNV-1a checksum, canonical tables — see Snapshot.h)
/// and adopts the newest valid one; torn or corrupt files are skipped and
/// reported, never trusted. The FaultInjector sites SnapshotWrite,
/// SnapshotFsync and SnapshotRename simulate a crash at each stage of the
/// write sequence (torn data, unsynced data, unpublished temp), which is
/// what the crash-recovery tests drive: no sequence of injected crashes
/// may ever lose a previously durable generation.
///
/// The store keeps the newest \c Options::KeepGenerations generations and
/// prunes older ones after each successful write, bounding disk use while
/// retaining rollback targets when the newest file is later corrupted.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_SNAPSHOTSTORE_H
#define AG_SERVE_SNAPSHOTSTORE_H

#include "serve/Snapshot.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ag {

/// Writes \p Bytes to \p Path crash-safely: temp file (Path + ".tmp") +
/// fsync + atomic rename + directory fsync. The FaultInjector sites
/// SnapshotWrite / SnapshotFsync / SnapshotRename abort the sequence at
/// the matching stage (leaving a torn temp, an unsynced temp, or a
/// complete-but-unpublished temp) and report IoError, so tests can prove
/// a crash at any stage never clobbers the previously published file.
Status writeFileDurable(const std::string &Path, const std::string &Bytes);

/// Generational snapshot directory (see file comment).
class SnapshotStore {
public:
  struct Options {
    /// Generations retained after a successful write (>= 1).
    unsigned KeepGenerations = 3;
  };

  // Two overloads instead of a defaulted Options argument: a default
  // argument would need Options' member initializer before the enclosing
  // class is complete, which the language rejects.
  explicit SnapshotStore(std::string Dir) : Dir(std::move(Dir)) {}
  SnapshotStore(std::string Dir, Options Opts)
      : Dir(std::move(Dir)), Opts(Opts) {}

  const std::string &directory() const { return Dir; }

  /// Creates the store directory if it does not exist (single level).
  Status prepare() const;

  /// Persists \p Snap as the next generation (crash-safely) and prunes
  /// generations beyond KeepGenerations. On success \p GenOut (if non-null)
  /// receives the new generation number.
  Status write(const Snapshot &Snap, uint64_t *GenOut = nullptr);

  /// What recover() found along the way.
  struct RecoveryInfo {
    uint64_t Generation = 0;   ///< Generation adopted (valid on success).
    unsigned CorruptSkipped = 0; ///< Newer generations rejected as invalid.
    unsigned TempsRemoved = 0;   ///< Stray *.tmp files cleaned up.
  };

  /// Scans the directory, removes temp-file litter, and loads the newest
  /// fully valid generation into \p Snap. Fails with IoError when the
  /// directory holds no valid generation at all.
  Status recover(Snapshot &Snap, RecoveryInfo *Info = nullptr) const;

  /// Published generation numbers, ascending (invalid files included —
  /// this lists names, not validity).
  Status listGenerations(std::vector<uint64_t> &Out) const;

  /// True if \p Path names an existing directory (ptatool uses this to
  /// route snapshot paths to a store instead of a flat file).
  static bool isDirectory(const std::string &Path);

private:
  std::string generationPath(uint64_t Gen) const;

  std::string Dir;
  Options Opts;
};

} // namespace ag

#endif // AG_SERVE_SNAPSHOTSTORE_H
