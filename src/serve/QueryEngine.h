//===- QueryEngine.h - Cached points-to query serving -----------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serves the queries clients actually ask of a pointer analysis —
/// pointsTo, alias, pointedBy (reverse index), and the function-pointer
/// call graph — over a loaded Snapshot, fronted by sharded LRU result
/// caches.
///
/// Cache keying: every set-dependent key is the *canonical set id* of
/// the queried node — the lowest representative whose solution holds the
/// same physical (hash-consed) points-to set, precomputed at load time.
/// That subsumes the old rep-based keying: all members of a collapsed
/// equivalence class (cycle members, OVS-substituted temporaries,
/// HCD-merged variables) share one cache entry, and so do distinct
/// representatives whose sets were deduplicated onto one canonical set
/// by the solver's interning pass or the snapshot's backref encoding.
/// Keys are stable small integers, never raw set pointers — a pointer
/// key would go stale the moment a snapshot reload freed the set.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_QUERYENGINE_H
#define AG_SERVE_QUERYENGINE_H

#include "adt/LruCache.h"
#include "adt/Status.h"
#include "core/SolveBudget.h"
#include "serve/Snapshot.h"

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace ag {

class DemandTier;

/// Query front-end over one snapshot. Thread-compatible: concurrent
/// queries are safe (caches shard their locks; lazy indexes build under
/// once-flags); loading a new snapshot requires external exclusion.
class QueryEngine {
public:
  struct Options {
    /// Total cached results across both caches' budgets; 0 disables
    /// caching entirely (identical code path, every lookup misses) —
    /// the benchmark's uncached baseline.
    size_t CacheCapacity = size_t(1) << 16;
    size_t CacheShards = 8;
  };

  /// Shared sorted id list; results are shared with the cache so a hit
  /// costs no copy.
  using IdList = std::shared_ptr<const std::vector<NodeId>>;

  explicit QueryEngine(Snapshot Snap) : QueryEngine(std::move(Snap), Options()) {}
  QueryEngine(Snapshot Snap, const Options &Opts);

  const Snapshot &snapshot() const { return Snap; }
  uint32_t numNodes() const { return Snap.CS.numNodes(); }

  /// True if \p V names a node of the loaded system. All query methods
  /// require valid ids; the REPL validates before calling.
  bool validNode(NodeId V) const { return V < numNodes(); }

  /// Attaches the demand tier whose certified memo is consulted *before*
  /// the snapshot solution on pointsTo/alias. The tier only answers for
  /// classes it has certified complete (bit-equal to the exhaustive
  /// solution by construction) and stops answering once it has escalated,
  /// so attaching never changes a query's result — only where the bits
  /// come from. Call before sharing the engine across threads.
  void attachDemandMemo(std::shared_ptr<DemandTier> Tier) {
    DemandMemo = std::move(Tier);
  }

  /// Sorted points-to set of \p V.
  IdList pointsTo(NodeId V);

  /// May-alias: do pts(P) and pts(Q) intersect?
  bool alias(NodeId P, NodeId Q);

  /// One verdict per pair, in order (the batch API: one call, many
  /// cache probes, no per-query dispatch overhead).
  std::vector<bool>
  aliasBatch(const std::vector<std::pair<NodeId, NodeId>> &Pairs);

  /// Sorted list of nodes that may point to object \p Obj (the reverse
  /// index, built lazily on first use). The index build scans every
  /// representative's solution set; \p Gov (if given) is charged one step
  /// per representative and per set element, and a budget trip surfaces
  /// as a structured Status with no index committed — the next call
  /// retries the build from scratch under its own budget.
  Status pointedBy(NodeId Obj, IdList &Out, SolveGovernor *Gov = nullptr);

  /// Function objects \p V may target through an indirect call —
  /// pts(V) filtered to functions.
  IdList callees(NodeId V);

  /// The function-pointer call graph: one (base, callee) edge per
  /// variable dereferenced at a function slot offset and function
  /// object in its points-to set. Sorted, deduplicated, built lazily.
  const std::vector<std::pair<NodeId, NodeId>> &callGraph();

  /// Combined statistics of both result caches.
  CacheStats cacheStats() const;

private:
  /// List-result cache key: result kind tag in the top bits, canonical
  /// id below (ids fit 23 bits, see ConstraintSystem::MaxNodes).
  enum ListTag : uint64_t { TagPts = 0, TagPointedBy = 1, TagCallees = 2 };
  static uint64_t listKey(ListTag Tag, NodeId Id) {
    return (uint64_t(Tag) << 32) | Id;
  }

  /// Builds the reverse index into local temporaries, charging \p Gov,
  /// and commits only on success. Caller holds ReverseMu. Throws
  /// BudgetExceededError on a trip (nothing committed).
  void buildReverseIndex(SolveGovernor *Gov);
  void buildCallGraph();
  void buildCanonIds();

  /// The canonical set id of \p V: lowest node sharing V's physical
  /// points-to set (all empty-set nodes collapse onto one id).
  NodeId canonId(NodeId V) const { return CanonIds[V]; }

  Snapshot Snap;
  /// Per node: canonical set id (see canonId). Built at construction;
  /// immutable afterwards, so concurrent queries read it lock-free.
  std::vector<NodeId> CanonIds;
  ShardedLruCache<uint64_t, IdList> ListCache;
  ShardedLruCache<uint64_t, bool> AliasCache;

  /// First tier for pointsTo/alias when attached (see attachDemandMemo).
  std::shared_ptr<DemandTier> DemandMemo;

  /// Guards the lazy reverse-index build. A once-flag would latch a
  /// tripped (abandoned) build forever; a mutex + committed flag lets
  /// the next query retry under its own budget.
  std::mutex ReverseMu;
  bool ReverseBuilt = false;
  /// Per object-id: the representatives whose sets contain it
  /// (ascending). Expanded to class members per query.
  std::vector<std::vector<NodeId>> ReverseIndex;
  /// Per representative: its class members (ascending), including
  /// itself. Built with the reverse index.
  std::vector<std::vector<NodeId>> ClassMembers;

  std::once_flag CallGraphOnce;
  std::vector<std::pair<NodeId, NodeId>> CallEdges;
};

} // namespace ag

#endif // AG_SERVE_QUERYENGINE_H
