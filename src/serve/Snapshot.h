//===- Snapshot.h - Persisted solved analysis instances ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Snapshot persists everything needed to serve queries against — and
/// warm-start re-solves of — a solved constraint system: the system
/// itself, the offline seed merge map (HCD/OVS substitutions) the solve
/// was seeded with, and the PointsToSolution including the final
/// union-find representative table, so dereference queries resolve
/// through collapsed nodes.
///
/// Binary format (version 2, all integers little-endian):
///
///   header (32 bytes):
///     magic     8 bytes  "AGPTSNAP"
///     version   u32      2
///     flags     u32      0 (reserved)
///     paylen    u64      payload byte count
///     checksum  u64      FNV-1a over the payload bytes
///   payload:
///     kind      u8       SolverKind that produced the solution
///     repr      u8       PtsRepr it was solved with
///     outcome   u8       SolveOutcome (precise/fallback/partial)
///     sound     u8       0/1
///     numnodes  u32      N
///     cstext    u64 len + bytes   ConstraintSystem::serialize() text
///     seedrep   u32 * N  offline seed merge map (identity if none)
///     solrep    u32 * N  final representative of each node
///     sets      for each v with solrep[v] == v, in ascending v, either
///                 u32 count + count ascending u32 object ids  (inline)
///               or, when an earlier representative e holds an identical
///               non-empty set,
///                 u32 0xFFFFFFFF + u32 e                      (backref)
///
/// Version 2 added the backref encoding: points-to solutions are heavily
/// duplicated across representatives (hash-consing in the solvers makes
/// the sharing physical), so each distinct non-empty set is stored once
/// and later holders reference it. Backrefs are canonical-form: a rep is
/// a backref iff some earlier rep was written inline with equal content,
/// and it names the lowest such rep — never another backref, never an
/// empty set (those always inline as count 0). The reader reconstructs
/// the sharing (backref'd reps share one in-memory set).
///
/// The writer only ever emits canonical form — serialize() is
/// deterministic, rep tables are idempotent, set elements strictly
/// ascend, dedup is purely content-based — and the reader rejects
/// anything non-canonical, so write -> read -> write reproduces the
/// input bit for bit. Corrupt, truncated, or wrong-version input yields
/// a structured ag::Status (never a crash or partial out-parameter the
/// caller could misuse).
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_SNAPSHOT_H
#define AG_SERVE_SNAPSHOT_H

#include "adt/Status.h"
#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"
#include "core/Solver.h"
#include "solvers/Solve.h"

#include <string>
#include <vector>

namespace ag {

/// A solved analysis instance, as persisted.
struct Snapshot {
  ConstraintSystem CS;
  /// Offline seed merge map (OVS and/or HCD pre-merges) the solve was
  /// seeded with; identity when the system was solved unseeded. Size
  /// always equals CS.numNodes(). Warm-start budget fallbacks fold this
  /// map in, exactly as a tripped cold solve would.
  std::vector<NodeId> SeedReps;
  PointsToSolution Solution;
  SolverKind Kind = SolverKind::LCDHCD;
  PtsRepr Repr = PtsRepr::Bitmap;
  SolveOutcome Outcome = SolveOutcome::Precise;
  bool Sound = true;
};

/// Current on-disk format version.
inline constexpr uint32_t SnapshotVersion = 2;

/// Serializes \p Snap into \p Out (replacing its contents). Fails only
/// on inconsistent inputs (mis-sized tables, non-canonical reps).
Status writeSnapshotBytes(const Snapshot &Snap, std::string &Out);

/// Parses \p Bytes into \p Snap. On error \p Snap is untouched. Every
/// field is validated: magic, version, checksum, enum ranges, table
/// sizes, rep idempotence, set canonicality, node-count agreement with
/// the embedded constraint system.
Status readSnapshotBytes(const std::string &Bytes, Snapshot &Snap);

/// writeSnapshotBytes + atomic-enough file write (fails with IoError).
Status writeSnapshotFile(const Snapshot &Snap, const std::string &Path);

/// Reads \p Path fully and parses it with readSnapshotBytes guarantees.
Status readSnapshotFile(const std::string &Path, Snapshot &Snap);

} // namespace ag

#endif // AG_SERVE_SNAPSHOT_H
