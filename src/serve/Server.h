//===- Server.h - Concurrent line-protocol front-end ------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free poll(2)-based socket front-end that multiplexes N
/// concurrent line-protocol clients onto one shared ServeSession
/// (`ptatool serve --port` / `--unix-socket`). Design:
///
///  * One poll thread owns the listener, the self-pipe wakeup and every
///    connection's read side: it accepts (loopback-only TCP, like the
///    MetricsHttp endpoint, or an AF_UNIX stream socket), runs each
///    connection's bounded line reader (oversized lines are drained in
///    O(1) memory and answered with the same structured error the stdin
///    REPL produces), and admits complete lines into a bounded global
///    queue feeding a worker pool. All socket writes happen on workers:
///    the poll thread hands banners and error replies off as pre-rendered
///    reply tasks, so a client that stops reading can stall only its own
///    worker (until the write timeout), never accept/read/reap.
///  * Per-connection ordering: a connection has at most one line executing
///    at a time; further pipelined lines wait in its own bounded pending
///    deque and are promoted when the previous reply is on the wire, so a
///    client's transcript is byte-identical to the serial REPL's.
///  * Every executed request runs under the session's RequestScope with
///    the connection id stamped into its wide event; shedding (`ERR
///    overloaded`), queue-wait deadlines (`ERR deadline`) and the serve.*
///    metrics behave exactly as the REPL's queue mode, and connections
///    gain their own accepted/active/rejected/idle-closed telemetry.
///  * All clients share the session's RCU serve-state epoch: a `resolve`
///    on one connection builds the successor off-path and swaps it in
///    atomically while queries on other connections finish on the epoch
///    they started with (see ServeSession.h / DESIGN.md §16).
///  * requestStop() is async-signal-safe (one write to a self-pipe):
///    ptatool's SIGTERM handler calls it, the listener closes, admitted
///    requests drain to their clients, then connections close and wait()
///    returns — a graceful drain, never a mid-reply cut.
///
/// `quit` closes the issuing connection only; the server runs until
/// requestStop(). A client disconnecting mid-request never affects other
/// connections: the worker's reply send fails, the connection is reaped,
/// the session lives on.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_SERVER_H
#define AG_SERVE_SERVER_H

#include "adt/Status.h"
#include "serve/ServeSession.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ag {

/// Front-end tuning. The session's own ServeOptions still governs line
/// length, resolve budgets and telemetry sinks.
struct ServerOptions {
  /// TCP listen port on 127.0.0.1; 0 binds an ephemeral port (port()
  /// reports the actual one). Ignored when UnixSocketPath is set.
  uint16_t Port = 0;

  /// When non-empty, listen on this AF_UNIX stream socket instead of TCP.
  /// A stale path (crash leftover nothing answers on) is reclaimed; a
  /// path a live server still answers on is an "in use" startup error.
  /// The path is removed again on shutdown.
  std::string UnixSocketPath;

  /// Connection cap: an accept beyond it is answered with `ERR
  /// overloaded: too many connections` and closed immediately.
  size_t MaxConns = 64;

  /// Closes connections idle (no in-flight or pending request, no bytes
  /// read) for longer than this. 0 disables.
  double IdleTimeoutSeconds = 0;

  /// Worker threads executing requests.
  unsigned Workers = 4;

  /// Bound on the global admission queue and on each connection's pending
  /// deque; a full one sheds with `ERR overloaded: queue full`. 0 =
  /// unbounded (no shedding, no deadline drops).
  size_t QueueCapacity = 0;

  /// Per-request queue-wait deadline, as in ServeOptions::DeadlineSeconds.
  /// 0 disables. Only meaningful with QueueCapacity > 0.
  double DeadlineSeconds = 0;

  /// A reply send stalled longer than this (client not reading) drops the
  /// connection instead of wedging a worker.
  double WriteTimeoutSeconds = 10;
};

/// Monotonic connection counters (also mirrored into the serve.conns_*
/// metrics).
struct ServerCounters {
  uint64_t Accepted = 0;   ///< Connections accepted (banner sent).
  uint64_t Rejected = 0;   ///< Connections refused at MaxConns.
  uint64_t IdleClosed = 0; ///< Connections reaped by the idle timeout.
  uint64_t Active = 0;     ///< Currently open connections.
};

/// The concurrent front-end over one ServeSession (see file comment).
/// start() spawns the poll thread and workers; wait() blocks until
/// requestStop() (or stop(), which is requestStop + wait) has drained.
class Server {
public:
  /// \p Session must outlive the server. The session is used re-entrantly
  /// from the worker pool; its own queue mode must be off (the server is
  /// the queue).
  Server(ServeSession &Session, ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens, then spawns the poll thread and workers. The
  /// socket is accepting connections when this returns.
  Status start();

  /// The bound TCP port (0 for unix-socket servers).
  uint16_t port() const { return BoundPort; }

  /// Human-readable bound endpoint ("127.0.0.1:4711" / "unix:<path>").
  std::string endpoint() const;

  /// Begins a graceful drain: stop accepting, stop reading, finish
  /// admitted requests, close connections. Async-signal-safe (called from
  /// ptatool's SIGTERM handler); idempotent.
  void requestStop();

  /// Blocks until the drain completes and all threads joined. Idempotent.
  void wait();

  /// requestStop() + wait().
  void stop();

  ServerCounters counters() const;

private:
  struct Connection;
  struct Task {
    std::shared_ptr<Connection> Conn;
    /// A line to execute, or (IsReply) a pre-rendered reply to send.
    std::string Line;
    std::chrono::steady_clock::time_point Enqueued;
    bool IsReply = false;
  };

  Status listenTcp();
  Status listenUnix();
  void pollLoop();
  void workerLoop();
  void acceptPending();
  void readConnection(const std::shared_ptr<Connection> &Conn);
  void ingestBytes(const std::shared_ptr<Connection> &Conn, const char *Data,
                   size_t Len);
  /// Admits one complete line: global queue when the connection is free,
  /// its pending deque otherwise; sheds (with the reply handed to a
  /// worker via queueReply) when either is full.
  void admitLine(const std::shared_ptr<Connection> &Conn, std::string Line);
  /// Poll-thread reply path: enqueues a pre-rendered reply (banner,
  /// oversized-line error, shed/shutdown error) through the connection's
  /// ordinary pipeline so a worker sends it. The poll thread itself never
  /// writes to a client socket — a send can block on the write mutex held
  /// by a worker mid-flush or stall on a client that is not reading, and
  /// either would freeze accept/read/reap for every connection.
  void queueReply(const std::shared_ptr<Connection> &Conn, std::string Reply);
  /// Runs one line and appends the reply to \p Replies (the worker
  /// coalesces a batch of replies into a single send).
  void executeTask(Task &T, std::string &Replies);
  /// Worker epilogue: promote the connection's next pending line or mark
  /// it idle; flush shutdown replies for a quitting connection.
  void finishTask(const std::shared_ptr<Connection> &Conn);
  void closeConnection(const std::shared_ptr<Connection> &Conn,
                       const char *Reason);
  void reapConnections();
  /// Writes the whole buffer; on a stall past WriteTimeoutSeconds or a
  /// peer error marks the connection dead. Worker threads only (may block
  /// up to the write timeout) and never called under QMu; the poll thread
  /// uses queueReply instead.
  bool sendToConnection(const std::shared_ptr<Connection> &Conn,
                        const std::string &Data);
  void wakePoll();

  ServeSession &Session;
  ServerOptions Opts;

  int ListenFd = -1;
  uint16_t BoundPort = 0;
  int WakeFds[2] = {-1, -1};
  std::atomic<bool> StopFlag{false};
  bool Started = false;
  bool Joined = false;

  std::thread PollThread;
  std::vector<std::thread> WorkerThreads;

  /// Poll-thread-only: the live connections.
  std::vector<std::shared_ptr<Connection>> Conns;
  uint64_t NextConnId = 1;

  /// Global admission queue + every connection's pending/busy state.
  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Task> Queue;
  bool WorkersExit = false;
  unsigned BusyWorkers = 0;

  struct AtomicCounters {
    std::atomic<uint64_t> Accepted{0};
    std::atomic<uint64_t> Rejected{0};
    std::atomic<uint64_t> IdleClosed{0};
    std::atomic<uint64_t> Active{0};
  };
  mutable AtomicCounters C;
};

} // namespace ag

#endif // AG_SERVE_SERVER_H
