//===- SnapshotStore.cpp - Crash-safe generational snapshots --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/SnapshotStore.h"

#include "adt/FaultInjector.h"
#include "obs/FlightRecorder.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace ag;

namespace {

Status errnoStatus(const std::string &What) {
  return Status::ioError(What + ": " + std::strerror(errno));
}

/// write(2) the whole buffer, riding out partial writes and EINTR.
bool writeAll(int Fd, const char *Data, size_t Len) {
  size_t Done = 0;
  while (Done != Len) {
    ssize_t W = ::write(Fd, Data + Done, Len - Done);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += size_t(W);
  }
  return true;
}

/// fsync the directory containing \p Path so a rename within it is
/// durable. Best effort on filesystems that reject directory fsync.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? std::string(".")
                                               : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

/// Parses "gen-<digits>.snap"; returns false for anything else.
bool parseGenerationName(const std::string &Name, uint64_t &Gen) {
  const std::string Prefix = "gen-", Suffix = ".snap";
  if (Name.size() <= Prefix.size() + Suffix.size())
    return false;
  if (Name.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  if (Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) != 0)
    return false;
  std::string Digits =
      Name.substr(Prefix.size(), Name.size() - Prefix.size() - Suffix.size());
  if (Digits.empty() || Digits.size() > 19)
    return false;
  uint64_t V = 0;
  for (char C : Digits) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint64_t(C - '0');
  }
  Gen = V;
  return true;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

} // namespace

Status ag::writeFileDurable(const std::string &Path,
                            const std::string &Bytes) {
  FaultInjector &Inj = FaultInjector::instance();
  const std::string Tmp = Path + ".tmp";

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return errnoStatus("cannot create " + Tmp);

  // Kill-point: crash mid-write. Leave a deliberately torn temp file so
  // recovery must prove it never trusts one.
  if (Inj.shouldFail(FaultSite::SnapshotWrite)) {
    writeAll(Fd, Bytes.data(), Bytes.size() / 2);
    ::close(Fd);
    return Status::ioError("injected fault: torn write to " + Tmp);
  }

  if (!writeAll(Fd, Bytes.data(), Bytes.size())) {
    Status St = errnoStatus("short write to " + Tmp);
    ::close(Fd);
    return St;
  }

  // Kill-point: crash after the data hit the page cache but before it was
  // forced to stable storage — the temp is complete but not durable, and
  // must never have been published.
  if (Inj.shouldFail(FaultSite::SnapshotFsync)) {
    ::close(Fd);
    return Status::ioError("injected fault: lost fsync of " + Tmp);
  }

  if (::fsync(Fd) != 0) {
    Status St = errnoStatus("fsync of " + Tmp);
    ::close(Fd);
    return St;
  }
  if (::close(Fd) != 0)
    return errnoStatus("close of " + Tmp);

  // Kill-point: crash between durability and publication — a complete,
  // durable temp that was never renamed into place.
  if (Inj.shouldFail(FaultSite::SnapshotRename))
    return Status::ioError("injected fault: unpublished rename of " + Tmp);

  if (::rename(Tmp.c_str(), Path.c_str()) != 0)
    return errnoStatus("rename " + Tmp + " -> " + Path);
  fsyncParentDir(Path);
  return Status::okStatus();
}

Status SnapshotStore::prepare() const {
  if (::mkdir(Dir.c_str(), 0755) == 0)
    return Status::okStatus();
  if (errno == EEXIST) {
    if (isDirectory(Dir))
      return Status::okStatus();
    return Status::ioError(Dir + " exists and is not a directory");
  }
  return errnoStatus("cannot create " + Dir);
}

std::string SnapshotStore::generationPath(uint64_t Gen) const {
  return Dir + "/gen-" + std::to_string(Gen) + ".snap";
}

bool SnapshotStore::isDirectory(const std::string &Path) {
  struct stat SB;
  return ::stat(Path.c_str(), &SB) == 0 && S_ISDIR(SB.st_mode);
}

Status SnapshotStore::listGenerations(std::vector<uint64_t> &Out) const {
  Out.clear();
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return errnoStatus("cannot open " + Dir);
  while (struct dirent *E = ::readdir(D)) {
    uint64_t Gen;
    if (parseGenerationName(E->d_name, Gen))
      Out.push_back(Gen);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Status::okStatus();
}

Status SnapshotStore::write(const Snapshot &Snap, uint64_t *GenOut) {
  if (Opts.KeepGenerations == 0)
    return Status::invalidArgument("KeepGenerations must be >= 1");
  if (Status St = prepare(); !St.ok())
    return St;

  std::string Bytes;
  if (Status St = writeSnapshotBytes(Snap, Bytes); !St.ok())
    return St;

  std::vector<uint64_t> Gens;
  if (Status St = listGenerations(Gens); !St.ok())
    return St;
  uint64_t Gen = Gens.empty() ? 1 : Gens.back() + 1;

  if (Status St = writeFileDurable(generationPath(Gen), Bytes); !St.ok())
    return St;
  obs::flight("snapshot_store_write", Gen, Bytes.size());
  if (GenOut)
    *GenOut = Gen;

  // Prune beyond the retention window. Failures here are harmless (the
  // write above is already published); recovery tolerates extras.
  Gens.push_back(Gen);
  if (Gens.size() > Opts.KeepGenerations) {
    size_t Drop = Gens.size() - Opts.KeepGenerations;
    for (size_t I = 0; I != Drop; ++I)
      ::unlink(generationPath(Gens[I]).c_str());
  }
  return Status::okStatus();
}

Status SnapshotStore::recover(Snapshot &Snap, RecoveryInfo *Info) const {
  RecoveryInfo Local;

  // Remove temp-file litter from interrupted writes: a temp was never
  // published, so deleting it can never lose durable state.
  {
    DIR *D = ::opendir(Dir.c_str());
    if (!D)
      return errnoStatus("cannot open " + Dir);
    std::vector<std::string> Temps;
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (endsWith(Name, ".tmp"))
        Temps.push_back(Name);
    }
    ::closedir(D);
    for (const std::string &Name : Temps)
      if (::unlink((Dir + "/" + Name).c_str()) == 0)
        ++Local.TempsRemoved;
  }

  std::vector<uint64_t> Gens;
  if (Status St = listGenerations(Gens); !St.ok())
    return St;

  // Newest first: adopt the first generation that passes full validation.
  for (auto It = Gens.rbegin(); It != Gens.rend(); ++It) {
    Status St = readSnapshotFile(generationPath(*It), Snap);
    if (St.ok()) {
      Local.Generation = *It;
      obs::flight("snapshot_store_recover", *It, Local.CorruptSkipped);
      if (Info)
        *Info = Local;
      return Status::okStatus();
    }
    ++Local.CorruptSkipped;
  }
  if (Info)
    *Info = Local;
  return Status::ioError("no valid snapshot generation in " + Dir +
                         (Local.CorruptSkipped
                              ? " (" + std::to_string(Local.CorruptSkipped) +
                                    " corrupt)"
                              : ""));
}
