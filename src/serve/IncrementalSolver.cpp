//===- IncrementalSolver.cpp - Warm-start re-solving ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/IncrementalSolver.h"

#include "core/LcdSolver.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/RequestContext.h"
#include "obs/TraceRecorder.h"
#include "solvers/ParallelLcdSolver.h"

#include <algorithm>

using namespace ag;

IncrementalSolver::IncrementalSolver(Snapshot Snap) : Cur(std::move(Snap)) {
  if (Cur.Outcome != SolveOutcome::Precise)
    ValidSt = Status::invalidArgument(
        std::string("cannot warm-start from a ") +
        solveOutcomeName(Cur.Outcome) +
        " snapshot: only a precise fixpoint can be resumed");
  else if (Cur.Solution.numNodes() != Cur.CS.numNodes())
    ValidSt = Status::invalidArgument("snapshot solution size mismatch");
}

NodeId IncrementalSolver::addNode(std::string Name, uint32_t Size) {
  NodeId Id = Cur.CS.addNode(std::move(Name), Size);
  // New nodes are their own seed class; the solution table grows at the
  // next fold (resolve() sizes everything to the current node count).
  for (uint32_t I = 0; I != Size; ++I)
    Cur.SeedReps.push_back(Id + I);
  return Id;
}

/// Shared warm-start body over either solver: install the snapshot
/// fixpoint, rebuild derived edges, apply the delta, and resume from the
/// touched set. \p Applied must contain only constraints absent from the
/// base system (the caller deduplicated through FullCS).
template <typename SolverT>
void IncrementalSolver::warmSolve(WarmStartResult &R, SolverT &Solver,
                                  ConstraintSystem &FullCS,
                                  const std::vector<Constraint> &Applied,
                                  SolveGovernor &Gov, bool AllowFallback) {
  obs::PhaseSpan Span("warm_solve", "serve");
  obs::count(obs::Counter::ServeWarmStarts);
  obs::flight("warm_solve", Applied.size());
  auto &G = Solver.context();
  const uint32_t OldN = Cur.Solution.numNodes();

  // The parallel solver keeps the context governor null outside collapse
  // epochs; install it for the (single-threaded) rebuild and delta
  // phases so their edge insertions stay budget-accountable, then
  // restore before handing control to the solver's own protocol.
  SolveGovernor *SolverPhaseGovernor = G.Governor;
  G.Governor = &Gov;

  std::vector<NodeId> Touched;
  try {
    // 1. Install the prior fixpoint. The context was seeded with the
    // snapshot's representative table, so every old class's rep is
    // unchanged; constructor-inserted AddressOf facts are a subset of
    // the snapshot sets.
    for (NodeId V = 0; V != OldN; ++V) {
      if (Cur.Solution.repOf(V) != V)
        continue;
      NodeId Rep = G.find(V);
      for (uint32_t O : Cur.Solution.pointsTo(V))
        G.Pts[Rep].insert(G.Ctx, O);
    }

    // 2. Re-materialize every derived copy edge with one resolution pass
    // (fresh frontiers are empty, so each group resolves against its
    // node's full set). Push notifications are deliberately dropped:
    // propagation along a base-derived edge is a no-op at the fixpoint.
    const uint32_t N = FullCS.numNodes();
    for (NodeId V = 0; V != N; ++V)
      if (G.isRep(V) && !G.Derefs[V].empty())
        G.resolveComplex(V, [](NodeId) {});

    // 3. Apply the delta against the warm graph, recording exactly the
    // nodes whose state changed. New load/store constraints open fresh
    // deref groups with empty frontiers, so the re-solve resolves them
    // against the full set of their base node.
    for (const Constraint &C : Applied) {
      switch (C.Kind) {
      case ConstraintKind::AddressOf: {
        NodeId Rep = G.find(C.Dst);
        if (G.Pts[Rep].insert(G.Ctx, C.Src))
          Touched.push_back(Rep);
        break;
      }
      case ConstraintKind::Copy:
        if (G.addEdge(C.Src, C.Dst))
          Touched.push_back(G.find(C.Src));
        break;
      case ConstraintKind::Load: {
        NodeId Rep = G.find(C.Src);
        G.Derefs[Rep].emplace_back();
        G.Derefs[Rep].back().Loads.push_back({C.Dst, C.Offset});
        Touched.push_back(Rep);
        break;
      }
      case ConstraintKind::Store: {
        NodeId Rep = G.find(C.Dst);
        G.Derefs[Rep].emplace_back();
        G.Derefs[Rep].back().Stores.push_back({C.Src, C.Offset});
        Touched.push_back(Rep);
        break;
      }
      }
    }
    std::sort(Touched.begin(), Touched.end());
    Touched.erase(std::unique(Touched.begin(), Touched.end()),
                  Touched.end());
    R.SeededNodes = uint32_t(Touched.size());
    R.Stats.WarmSeededNodes += Touched.size();

    G.Governor = SolverPhaseGovernor;
    R.Solution = Solver.solveFrom(Touched);
    R.St = Status::okStatus();
    R.Outcome = SolveOutcome::Precise;
    R.Sound = true;
    // Fold: future deltas warm-start from this fixpoint.
    Cur.CS = std::move(FullCS);
    Cur.Solution = R.Solution;
  } catch (BudgetExceededError &E) {
    R.St = E.status();
    if (AllowFallback) {
      // The identical degradation a tripped cold solve takes: Steensgaard
      // over the full system with the *offline* seed map folded in.
      R.Solution = steensgaardFallback(FullCS, &Cur.SeedReps);
      R.Outcome = SolveOutcome::Fallback;
      R.Sound = true;
    } else {
      R.Solution = Solver.context().extractSolution();
      R.Outcome = SolveOutcome::Partial;
      R.Sound = false;
    }
    // Not folded: neither outcome is a least fixpoint to resume from.
  }
}

WarmStartResult
IncrementalSolver::resolve(const std::vector<Constraint> &Delta,
                           const SolveBudget &Budget,
                           const SolverOptions &Opts) {
  WarmStartResult R;
  if (!ValidSt.ok()) {
    R.St = ValidSt;
    R.Solution = PointsToSolution(Cur.CS.numNodes());
    return R;
  }
  const uint32_t N = Cur.CS.numNodes();
  for (const Constraint &C : Delta) {
    if (C.Dst >= N || C.Src >= N) {
      R.St = Status::invalidArgument(
          "delta constraint references unknown node (table has " +
          std::to_string(N) + " nodes)");
      R.Solution = PointsToSolution(N);
      return R;
    }
    if (C.Offset != 0 && C.Kind != ConstraintKind::Load &&
        C.Kind != ConstraintKind::Store) {
      R.St = Status::invalidArgument(
          "delta offset on a non-complex constraint");
      R.Solution = PointsToSolution(N);
      return R;
    }
    if (C.Offset > ConstraintSystem::MaxOffset) {
      R.St = Status::invalidArgument("delta offset out of range");
      R.Solution = PointsToSolution(N);
      return R;
    }
  }

  // Deduplicate against the base system; only genuinely new constraints
  // are applied to the warm graph.
  ConstraintSystem FullCS = Cur.CS;
  std::vector<Constraint> Applied;
  for (const Constraint &C : Delta) {
    size_t Before = FullCS.constraints().size();
    FullCS.add(C);
    if (FullCS.constraints().size() != Before)
      Applied.push_back(C);
  }

  if (Applied.empty() && N == Cur.Solution.numNodes()) {
    // Nothing to do; serve the held fixpoint.
    R.Solution = Cur.Solution;
    R.St = Status::okStatus();
    R.Outcome = SolveOutcome::Precise;
    R.Sound = true;
    return R;
  }
  R.NewConstraints = uint32_t(Applied.size());
  R.Stats.WarmNewConstraints += Applied.size();

  // Seed the union-find with the snapshot's full representative table,
  // extended by identity over nodes added since the base solve.
  std::vector<NodeId> Seeds(N);
  const uint32_t OldN = Cur.Solution.numNodes();
  for (NodeId V = 0; V != N; ++V)
    Seeds[V] = V < OldN ? Cur.Solution.repOf(V) : V;

  SolveGovernor Gov(Budget);
  SolverOptions GovernedOpts = Opts;
  GovernedOpts.Governor = &Gov;

  // The solver is built over the *base* system (Cur.CS): base AddressOf
  // and Copy facts are redundant with the installed fixpoint, and the
  // base load/store index is what the edge-rebuild pass resolves. The
  // delta is applied by hand inside warmSolve, which folds FullCS into
  // Cur.CS only after solveFrom returned.
  if (GovernedOpts.Threads > 0) {
    ParallelLcdSolver Solver(Cur.CS, R.Stats, GovernedOpts, nullptr,
                             &Seeds);
    warmSolve(R, Solver, FullCS, Applied, Gov, Budget.AllowFallback);
  } else {
    LcdSolver<BitmapPtsPolicy> Solver(Cur.CS, R.Stats, GovernedOpts,
                                      nullptr, &Seeds);
    warmSolve(R, Solver, FullCS, Applied, Gov, Budget.AllowFallback);
  }
  // Warm re-solves bypass ag::solve(), so fold this run's stats into the
  // registry here (R.Stats is fresh per call — no double counting).
  if (obs::metricsEnabled())
    obs::MetricsRegistry::instance().absorb(R.Stats);
  return R;
}

WarmStartResult
IncrementalSolver::resolveSystem(const ConstraintSystem &DeltaCS,
                                 const SolveBudget &Budget,
                                 const SolverOptions &Opts) {
  obs::TierSpan Tier(obs::ReqTier::WarmStart);
  WarmStartResult R;
  if (!ValidSt.ok()) {
    R.St = ValidSt;
    R.Solution = PointsToSolution(Cur.CS.numNodes());
    return R;
  }
  const uint32_t N = Cur.CS.numNodes();
  if (DeltaCS.numNodes() < N) {
    R.St = Status::invalidArgument(
        "delta system has fewer nodes than the snapshot (" +
        std::to_string(DeltaCS.numNodes()) + " < " + std::to_string(N) +
        ")");
    R.Solution = PointsToSolution(N);
    return R;
  }
  for (NodeId V = 0; V != N; ++V) {
    if (DeltaCS.sizeOf(V) != Cur.CS.sizeOf(V) ||
        DeltaCS.isFunction(V) != Cur.CS.isFunction(V)) {
      R.St = Status::invalidArgument(
          "delta node table diverges from the snapshot at node " +
          std::to_string(V) +
          " (deltas may only extend the id space, not remap it)");
      R.Solution = PointsToSolution(N);
      return R;
    }
  }
  // Adopt new nodes, walking head-to-head (a sized head implies its
  // interior slots, whose sizeOf reports 1).
  NodeId V = N;
  while (V < DeltaCS.numNodes()) {
    uint32_t Size = DeltaCS.sizeOf(V);
    if (DeltaCS.isFunction(V)) {
      if (Size < ConstraintSystem::FunctionParamOffset) {
        R.St = Status::invalidArgument(
            "delta declares a function node too small for its slots");
        R.Solution = PointsToSolution(Cur.CS.numNodes());
        return R;
      }
      Cur.CS.addFunction(DeltaCS.nameOf(V),
                         Size - ConstraintSystem::FunctionParamOffset);
    } else {
      Cur.CS.addNode(DeltaCS.nameOf(V), Size);
    }
    for (uint32_t I = 1; I < Size; ++I)
      Cur.CS.setName(V + I, DeltaCS.nameOf(V + I));
    for (uint32_t I = 0; I != Size; ++I)
      Cur.SeedReps.push_back(V + I);
    V += Size;
  }
  WarmStartResult RR = resolve(DeltaCS.constraints(), Budget, Opts);
  if (RR.St.ok())
    Tier.markHit();
  return RR;
}
