//===- IncrementalSolver.h - Warm-start re-solving --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warm-start incremental re-solving: load a precise snapshot, apply a
/// stream of *new* constraints, and resume difference propagation from
/// the prior fixpoint with only the delta-touched nodes on the worklist.
///
/// Soundness and exactness (full argument in DESIGN.md §10): inclusion
/// constraints are monotone, so adding constraints can only grow the
/// least fixpoint — prior points-to facts never need retraction. The
/// snapshot's representative table records (a) the offline seed merges
/// the base solve was given and (b) every online merge it performed;
/// online merges collapse only genuine cycles of the seeded base graph,
/// and added constraints cannot remove edges, so those cycles persist in
/// the delta'd system and pre-merging them is exact. Re-solving the full
/// system seeded with the snapshot's representative table therefore
/// reaches the same per-node solution as a cold solve of the full system
/// seeded with the base offline map — which is the cold baseline the
/// tests compare against.
///
/// The warm context is rebuilt without persisting the online copy-edge
/// graph: at a fixpoint, one resolveComplex pass over every node with
/// dereference constraints re-materializes every derived edge (each
/// group's resolution frontier is empty in a fresh context), and
/// propagation along a re-derived base edge is a no-op because the
/// snapshot sets already satisfy it — so only delta-touched nodes need
/// seeding.
///
/// Budget composition: the re-solve (including the edge-rebuild pass)
/// runs under a SolveGovernor; a trip degrades exactly like a cold
/// solve — Steensgaard fallback folded over the snapshot's *offline*
/// seed map (so a tripped warm solve and a tripped cold solve of the
/// same system produce identical solutions), or flagged-unsound partial
/// state when fallback is disallowed.
///
//===----------------------------------------------------------------------===//

#ifndef AG_SERVE_INCREMENTALSOLVER_H
#define AG_SERVE_INCREMENTALSOLVER_H

#include "adt/Statistics.h"
#include "serve/Snapshot.h"

#include <string>
#include <vector>

namespace ag {

/// Outcome of one warm-start re-solve.
struct WarmStartResult {
  PointsToSolution Solution;
  /// Ok for a precise run; the budget-trip reason for Fallback/Partial;
  /// the input error for Failed.
  Status St;
  SolveOutcome Outcome = SolveOutcome::Failed;
  bool Sound = false;
  SolverStats Stats;
  /// Delta constraints that were genuinely new (duplicates of base
  /// constraints are dropped, as ConstraintSystem::add always does).
  uint32_t NewConstraints = 0;
  /// Nodes seeded into the worklist (the touched set).
  uint32_t SeededNodes = 0;
};

/// Applies constraint deltas to a snapshotted solve and re-solves warm.
/// After a Precise re-solve the delta is folded into the held snapshot,
/// so repeated deltas compose; Fallback/Partial results are returned but
/// NOT folded (they are not fixpoints to warm-start from — retry with a
/// larger budget against the unchanged base).
class IncrementalSolver {
public:
  /// \p Snap must be a Precise snapshot: fallback solutions are sound
  /// supersets but not least fixpoints, and partial ones are unsound —
  /// resuming difference propagation from either would not converge to
  /// the delta'd system's solution. Call valid() after construction.
  explicit IncrementalSolver(Snapshot Snap);

  /// Ok, or why this snapshot cannot be warm-started.
  const Status &valid() const { return ValidSt; }

  /// The current system: base plus every folded delta and added node.
  const ConstraintSystem &system() const { return Cur.CS; }
  /// Solution of system() (base solution until a delta is folded).
  const PointsToSolution &solution() const { return Cur.Solution; }
  const Snapshot &snapshot() const { return Cur; }

  /// Extends the node table (new variables/objects referenced by an
  /// upcoming delta). Returns the first new id.
  NodeId addNode(std::string Name = "", uint32_t Size = 1);

  /// Applies \p Delta (constraints over the current node table) and
  /// re-solves warm. Opts.Threads selects the parallel wavefront solver
  /// exactly as in cold solves; the solution is identical at any thread
  /// count.
  WarmStartResult resolve(const std::vector<Constraint> &Delta,
                          const SolveBudget &Budget = SolveBudget(),
                          const SolverOptions &Opts = SolverOptions());

  /// As resolve(), taking the delta as a parsed constraint file whose
  /// node table must extend the current one (same sizes and function
  /// flags for existing ids; extra nodes are adopted). This
  /// is the `ptatool resolve` entry: base.cons solved and snapshotted,
  /// delta.cons carrying the new constraints.
  WarmStartResult resolveSystem(const ConstraintSystem &DeltaCS,
                                const SolveBudget &Budget = SolveBudget(),
                                const SolverOptions &Opts = SolverOptions());

private:
  template <typename SolverT>
  void warmSolve(WarmStartResult &R, SolverT &Solver,
                 ConstraintSystem &FullCS,
                 const std::vector<Constraint> &Applied, SolveGovernor &Gov,
                 bool AllowFallback);

  Snapshot Cur;
  Status ValidSt;
};

} // namespace ag

#endif // AG_SERVE_INCREMENTALSOLVER_H
