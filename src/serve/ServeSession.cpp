//===- ServeSession.cpp - Hardened serving REPL ---------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeSession.h"

#include "adt/FaultInjector.h"
#include "check/SolutionChecker.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/QuantileWindow.h"
#include "solvers/Solve.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

using namespace ag;

namespace {

enum class LineStatus { Ok, TooLong, Eof };

/// Reads one '\n'-terminated line of at most \p Max bytes. An overlong
/// line is consumed to its end (or EOF) without buffering it, so a
/// hostile client cannot grow memory. A final unterminated line is
/// delivered as a normal line; Eof is only returned with no bytes read.
LineStatus readLineBounded(std::istream &In, std::string &Line, size_t Max) {
  Line.clear();
  using Traits = std::istream::traits_type;
  int C;
  while ((C = In.get()) != Traits::eof()) {
    if (C == '\n')
      return LineStatus::Ok;
    if (Line.size() >= Max) {
      while ((C = In.get()) != Traits::eof() && C != '\n') {
      }
      return LineStatus::TooLong;
    }
    Line.push_back(static_cast<char>(C));
  }
  return Line.empty() ? LineStatus::Eof : LineStatus::Ok;
}

/// Scales one budget limit; unlimited (0) stays unlimited.
uint64_t scaleLimit(uint64_t Limit, double Factor) {
  if (Limit == 0)
    return 0;
  double Scaled = static_cast<double>(Limit) * Factor;
  if (Scaled >= 1.8e19)
    return UINT64_MAX;
  return static_cast<uint64_t>(Scaled);
}

} // namespace

ServeSession::ServeSession(Snapshot Snap, ServeOptions O) : Opts(O) {
  // Only a precise snapshot can seed warm-start re-solves; a session over
  // a fallback snapshot still serves queries but rejects `resolve`.
  if (Snap.Outcome == SolveOutcome::Precise) {
    auto I = std::make_unique<IncrementalSolver>(Snap);
    if (I->valid().ok())
      Inc = std::move(I);
  }
  auto St = std::make_shared<ServeState>();
  St->Engine = std::make_shared<QueryEngine>(std::move(Snap));
  St->Names = buildNames(St->Engine->snapshot().CS);
  publishState(std::move(St));
}

ServeSession::ServeSession(ConstraintSystem System, ServeOptions O) : Opts(O) {
  DemandTier::Options TO;
  TO.QueryBudget = O.QueryBudget;
  TO.EscalationKind = O.EscalationKind;
  TO.EscalationOpts = O.ResolveOpts;
  Tier = std::make_shared<DemandTier>(std::move(System), TO);
  auto St = std::make_shared<ServeState>();
  St->Names = buildNames(Tier->system());
  publishState(std::move(St));
}

ServeSession::~ServeSession() = default;

const ConstraintSystem &ServeSession::systemOf(const ServeState &St) const {
  return St.Engine ? St.Engine->snapshot().CS : Tier->system();
}

Status ServeSession::materializeEngine(StatePtr &St) {
  if (St->Engine)
    return Status::okStatus();
  std::lock_guard<std::mutex> Lock(MutateMu);
  // Another request may have materialized while we waited for the lock;
  // adopt its epoch instead of escalating twice. Cur stays live past the
  // check: every publish happens under MutateMu, so it is the current
  // epoch for the whole escalation below.
  StatePtr Cur = state();
  if (Cur->Engine) {
    St = std::move(Cur);
    return Status::okStatus();
  }
  if (Status S = Tier->escalateNow(); !S.ok())
    return S;
  Snapshot FS;
  FS.CS = Tier->system();
  FS.Solution = *Tier->escalationSolution();
  FS.Kind = Tier->escalationKind();
  FS.Repr = PtsRepr::Bitmap;
  FS.Outcome = Tier->escalationOutcome();
  FS.Sound = true;
  auto NS = std::make_shared<ServeState>();
  NS->Engine = std::make_shared<QueryEngine>(std::move(FS));
  // Certified demand classes keep answering pointsTo/alias ahead of the
  // snapshot solution.
  NS->Engine->attachDemandMemo(Tier);
  // Escalation never changes the node table, but the CALLER's epoch can
  // predate a demand resolve that did: pair the engine with the current
  // epoch's table so delta-added nodes stay resolvable by name.
  NS->Names = Cur->Names;
  publishState(NS);
  St = std::move(NS);
  return Status::okStatus();
}

ServeCounters ServeSession::counters() const {
  ServeCounters S;
  S.Requests = C.Requests.load(std::memory_order_relaxed);
  S.Admitted = C.Admitted.load(std::memory_order_relaxed);
  S.Shed = C.Shed.load(std::memory_order_relaxed);
  S.DeadlineDropped = C.DeadlineDropped.load(std::memory_order_relaxed);
  S.OversizedLines = C.OversizedLines.load(std::memory_order_relaxed);
  S.ResolveRetries = C.ResolveRetries.load(std::memory_order_relaxed);
  S.InjectedFaults = C.InjectedFaults.load(std::memory_order_relaxed);
  return S;
}

std::shared_ptr<const std::unordered_map<std::string, NodeId>>
ServeSession::buildNames(const ConstraintSystem &CS) {
  // First occurrence wins; interior slots have generated names like
  // "a[1]" and resolve too.
  auto Names = std::make_shared<std::unordered_map<std::string, NodeId>>();
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    const std::string &Name = CS.nameOf(V);
    if (!Name.empty())
      Names->emplace(Name, V);
  }
  return Names;
}

bool ServeSession::resolveNodeRef(const ServeState &St, const std::string &Tok,
                                  std::ostream &Out, NodeId &Id) const {
  const ConstraintSystem &CS = systemOf(St);
  if (!Tok.empty() &&
      Tok.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    uint64_t Raw = std::strtoull(Tok.c_str(), nullptr, 10);
    if (errno != ERANGE && Raw < CS.numNodes()) {
      Id = static_cast<NodeId>(Raw);
      return true;
    }
  } else if (auto It = St.Names->find(Tok); It != St.Names->end()) {
    Id = It->second;
    return true;
  }
  Out << "error: unknown node '" << Tok << "'\n";
  return false;
}

namespace {

void printIdList(std::ostream &Out, const char *What, const std::string &Ref,
                 const QueryEngine::IdList &List) {
  obs::noteResultSize(List->size());
  Out << What << "(" << Ref << "):";
  for (NodeId V : *List)
    Out << " " << V;
  Out << "\n";
}

} // namespace

void ServeSession::cmdCheck(StatePtr &St, std::ostream &Out) {
  if (Tier && !St->Engine) {
    // Certifying needs the whole solution: escalate and check that.
    if (Status S = materializeEngine(St); !S.ok()) {
      Out << "error: " << S.toString() << "\n";
      return;
    }
  }
  const Snapshot &Snap = St->Engine->snapshot();
  if (Snap.Outcome == SolveOutcome::Partial) {
    // A partial solution is not a fixed point by construction; say so
    // without burning a full closure pass.
    Out << "check: not a fixed point (partial snapshot)\n";
    return;
  }
  CheckReport R = checkSolution(Snap.CS, Snap.Solution);
  Out << "check: " << R.summary(Snap.CS) << "\n";
}

void ServeSession::cmdResolve(const std::string &Path, std::ostream &Out) {
  // The whole mutation runs under MutateMu: concurrent resolves serialize,
  // while readers keep answering on the epoch they loaded at entry.
  std::lock_guard<std::mutex> Lock(MutateMu);
  if (Tier) {
    // Demand mode: fold the delta into the tier (invalidates touched
    // memo entries) and return to the demand path — any materialized
    // snapshot no longer matches the system.
    ConstraintSystem DeltaCS;
    if (Status St = ConstraintSystem::loadFromFile(Path, DeltaCS); !St.ok()) {
      Out << "error: " << St.toString() << "\n";
      return;
    }
    size_t Before = Tier->system().constraints().size();
    if (Status St = Tier->resolveDelta(DeltaCS); !St.ok()) {
      Out << "error: " << St.toString() << "\n";
      return;
    }
    auto NS = std::make_shared<ServeState>();
    NS->Names = buildNames(Tier->system());
    publishState(NS);
    Out << "resolved: demand delta adopted, new constraints "
        << (Tier->system().constraints().size() - Before) << ", nodes "
        << Tier->numNodes() << ", memo retained "
        << Tier->memoCompleteCount() << " classes\n";
    return;
  }
  if (!Inc) {
    Out << "error: resolve requires a precise snapshot\n";
    return;
  }
  ConstraintSystem DeltaCS;
  if (Status St = ConstraintSystem::loadFromFile(Path, DeltaCS); !St.ok()) {
    Out << "error: " << St.toString() << "\n";
    return;
  }

  const unsigned Attempts = Opts.ResolveAttempts > 0 ? Opts.ResolveAttempts : 1;
  const double Backoff = Opts.ResolveBackoff > 1.0 ? Opts.ResolveBackoff : 1.0;
  WarmStartResult R;
  unsigned Attempt = 1;
  for (;; ++Attempt) {
    const bool Final = Attempt >= Attempts;
    double Factor = std::pow(Backoff, static_cast<double>(Attempt - 1));
    SolveBudget B = Opts.ResolveBudget;
    if (B.TimeoutSeconds > 0)
      B.TimeoutSeconds *= Factor;
    B.MaxPropagations = scaleLimit(B.MaxPropagations, Factor);
    B.MaxEdges = scaleLimit(B.MaxEdges, Factor);
    // Earlier attempts must not degrade: a fallback here would discard a
    // precise answer a bigger budget can still reach.
    B.AllowFallback = Final && Opts.ResolveBudget.AllowFallback;

    R = Inc->resolveSystem(DeltaCS, B, Opts.ResolveOpts);
    if (R.Outcome == SolveOutcome::Precise || R.Outcome == SolveOutcome::Failed)
      break;
    if (Final)
      break;
    C.ResolveRetries.fetch_add(1, std::memory_order_relaxed);
    obs::flight("serve_resolve_retry", Attempt);
  }

  switch (R.Outcome) {
  case SolveOutcome::Failed:
    Out << "error: " << R.St.toString() << "\n";
    return;
  case SolveOutcome::Precise: {
    // Adopt for serving; the IncrementalSolver already folded the delta
    // and stays the warm-start base for the next resolve. Readers on the
    // old epoch finish there; the swap is one release store.
    auto NS = std::make_shared<ServeState>();
    NS->Engine = std::make_shared<QueryEngine>(Inc->snapshot());
    NS->Names = buildNames(NS->Engine->snapshot().CS);
    publishState(NS);
    Out << "resolved: outcome precise, attempt " << Attempt << "/" << Attempts
        << ", new constraints " << R.NewConstraints << ", seeded "
        << R.SeededNodes << ", total |pts| "
        << Inc->solution().totalPointsToSize() << "\n";
    return;
  }
  case SolveOutcome::Fallback: {
    // Serve the sound fallback, but keep the precise base in Inc so a
    // later resolve (or a retry with a bigger budget) can still warm-start.
    // The full system is the warm-start base plus the delta: resolveSystem
    // already adopted the delta's new nodes, and re-adding the delta's
    // constraints dedups against the base exactly as the solve did.
    Snapshot FS;
    FS.CS = Inc->system();
    for (const Constraint &Con : DeltaCS.constraints())
      FS.CS.add(Con);
    FS.SeedReps = Inc->snapshot().SeedReps;
    FS.Solution = std::move(R.Solution);
    FS.Kind = Inc->snapshot().Kind;
    FS.Repr = Inc->snapshot().Repr;
    FS.Outcome = SolveOutcome::Fallback;
    FS.Sound = true;
    auto NS = std::make_shared<ServeState>();
    NS->Engine = std::make_shared<QueryEngine>(std::move(FS));
    NS->Names = buildNames(NS->Engine->snapshot().CS);
    publishState(NS);
    Out << "resolved: outcome fallback after " << Attempt << " attempts ("
        << R.St.toString() << "); serving sound fallback\n";
    return;
  }
  case SolveOutcome::Partial:
    Out << "resolved: outcome partial after " << Attempt << " attempts ("
        << R.St.toString() << "); solution not adopted\n";
    return;
  }
}

void ServeSession::cmdStats(const ServeState &St, std::ostream &Out,
                            bool Json) {
  // Quantile gauges are refreshed at observation points only (here, the
  // OpenMetrics endpoint, teardown), never per request.
  obs::LatencyTracker::instance().publishGauges();
  if (Json) {
    // The same deterministic document --metrics-out writes, so a live
    // session and an offline run are diffable.
    Out << obs::MetricsRegistry::instance().renderJson();
    return;
  }
  CacheStats S = St.Engine ? St.Engine->cacheStats() : Tier->cacheStats();
  Out << "stats: hits " << S.Hits << " misses " << S.Misses << " evictions "
      << S.Evictions << " entries " << S.Entries << "\n";
  if (Tier)
    Out << "demand: memo_complete " << Tier->memoCompleteCount()
        << " escalated " << (Tier->escalated() ? "yes" : "no") << "\n";
  ServeCounters SC = counters();
  Out << "serve: requests " << SC.Requests << " admitted " << SC.Admitted
      << " shed " << SC.Shed << " deadline " << SC.DeadlineDropped
      << " oversized " << SC.OversizedLines << " resolve_retries "
      << SC.ResolveRetries << " injected_faults " << SC.InjectedFaults
      << "\n";
  Out << obs::MetricsRegistry::instance().renderText();
}

obs::CommandClass ServeSession::classifyCommand(const std::string &Cmd) {
  if (Cmd == "pts" || Cmd == "pointedby" || Cmd == "callees" ||
      Cmd == "alias" || Cmd == "aliasbatch" || Cmd == "callgraph")
    return obs::CommandClass::Query;
  if (Cmd == "resolve")
    return obs::CommandClass::Mutate;
  return obs::CommandClass::Admin;
}

void ServeSession::writeSlowQuery(const std::string &EventLine) {
  obs::count(obs::Counter::ServeSlowQueries);
  obs::flight("serve_slow_query");
  if (!Opts.SlowOut)
    return;
  // The flight snapshot carries its own epoch_ms anchor line, so the
  // entry correlates with wide-event ts_ms fields by subtraction.
  std::string Dump = obs::FlightRecorder::instance().dumpText();
  std::lock_guard<std::mutex> Lock(SlowMu);
  *Opts.SlowOut << "slow-query: " << EventLine << "\n"
                << "flight snapshot:\n"
                << Dump;
  Opts.SlowOut->flush();
}

void ServeSession::finishRequest(obs::RequestScope &Scope,
                                 const std::string &Reply) {
  obs::RequestContext &Ctx = Scope.ctx();
  Ctx.ReplyBytes = Reply.size();
  if (Reply.compare(0, 6, "error:") == 0 || Reply.compare(0, 3, "ERR") == 0)
    Ctx.StatusStr = "error";
  uint64_t Micros = Scope.finish();
  obs::LatencyTracker::instance().record(Ctx.Class, Micros);
  obs::count(obs::Counter::ServeRequests);
  obs::observe(obs::Hist::ServeRequestMicros, Micros);
  static constexpr obs::Counter TierCounters[] = {
      obs::Counter::ServeTierLru,        obs::Counter::ServeTierMemo,
      obs::Counter::ServeTierDemand,     obs::Counter::ServeTierEscalation,
      obs::Counter::ServeTierSnapshot,   obs::Counter::ServeTierWarmStart,
  };
  for (unsigned I = 0; I != unsigned(obs::ReqTier::NumTiers); ++I)
    if (Ctx.TierEntered[I])
      obs::count(TierCounters[I]);

  bool Slow =
      (Opts.SlowMillis > 0 && Micros > uint64_t(Opts.SlowMillis * 1000.0)) ||
      Ctx.GovernorTrips > 0;
  if (!Opts.Events && !Slow)
    return;
  std::string EventLine = obs::renderWideEvent(Ctx);
  if (Opts.Events)
    Opts.Events->publish(std::string(EventLine));
  if (Slow)
    writeSlowQuery(EventLine);
}

void ServeSession::noteUnexecutedRequest(const std::string &Line,
                                         const char *StatusStr,
                                         const std::string &Reply,
                                         uint64_t WaitedNanos,
                                         bool CaptureSlow, uint64_t ConnId) {
  std::istringstream Iss(Line);
  std::string Cmd;
  if (!(Iss >> Cmd))
    return; // Blank lines are not requests even when dropped.
  obs::RequestScope Scope(Cmd.c_str(), classifyCommand(Cmd));
  obs::RequestContext &Ctx = Scope.ctx();
  Ctx.ConnId = ConnId;
  // Backdate admission so the event's micros show the client-visible wait.
  Ctx.StartNanos =
      Ctx.StartNanos > WaitedNanos ? Ctx.StartNanos - WaitedNanos : 0;
  Ctx.StatusStr = StatusStr;
  Ctx.ReplyBytes = Reply.size();
  uint64_t Micros = Scope.finish();
  // Dropped requests are exactly the tail latency an operator needs to
  // see, so they feed the quantiles like executed ones.
  obs::LatencyTracker::instance().record(Ctx.Class, Micros);
  if (!Opts.Events && !CaptureSlow)
    return;
  std::string EventLine = obs::renderWideEvent(Ctx);
  if (Opts.Events)
    Opts.Events->publish(std::string(EventLine));
  if (CaptureSlow)
    writeSlowQuery(EventLine);
}

void ServeSession::noteDroppedRequest(DropKind K, const std::string &Line,
                                      const std::string &Reply,
                                      uint64_t WaitedNanos, uint64_t ConnId) {
  const char *StatusStr = "overloaded";
  bool CaptureSlow = false;
  switch (K) {
  case DropKind::Overloaded:
    C.Shed.fetch_add(1, std::memory_order_relaxed);
    break;
  case DropKind::Deadline:
    C.DeadlineDropped.fetch_add(1, std::memory_order_relaxed);
    StatusStr = "deadline";
    // A deadline trip is always slow-query material: the wide event and
    // the flight snapshot share one trace id, so the drop correlates
    // across both logs.
    CaptureSlow = true;
    break;
  case DropKind::Shutdown:
    StatusStr = "shutdown";
    break;
  }
  noteUnexecutedRequest(Line, StatusStr, Reply, WaitedNanos, CaptureSlow,
                        ConnId);
}

void ServeSession::noteAdmitted() {
  C.Admitted.fetch_add(1, std::memory_order_relaxed);
}

void ServeSession::noteOversizedLine() {
  C.OversizedLines.fetch_add(1, std::memory_order_relaxed);
}

std::string ServeSession::bannerText() const {
  StatePtr St = state();
  const ConstraintSystem &CS = systemOf(*St);
  std::ostringstream Oss;
  Oss << "serving " << CS.numNodes() << " nodes, "
      << CS.constraints().size() << " constraints"
      << (Tier ? " (demand mode)" : "") << " (type 'help')\n";
  return Oss.str();
}

bool ServeSession::handleLine(const std::string &Line, std::ostream &Out,
                              uint64_t ConnId) {
  std::istringstream Iss(Line);
  std::string Cmd;
  if (!(Iss >> Cmd))
    return true; // Blank line: not a request, no telemetry.
  std::vector<std::string> Args;
  for (std::string Tok; Iss >> Tok;)
    Args.push_back(Tok);

  // Buffer the reply through one choke point so its size and error status
  // can be captured; dispatch never writes Out directly.
  obs::RequestScope Scope(Cmd.c_str(), classifyCommand(Cmd));
  Scope.ctx().ConnId = ConnId;
  // The request's epoch: loaded once, kept alive for the whole request
  // even if a concurrent resolve publishes a successor.
  StatePtr St = state();
  std::ostringstream Buf;
  bool Continue = dispatch(Cmd, Args, Buf, St);
  const std::string Reply = Buf.str();
  Out << Reply;
  finishRequest(Scope, Reply);
  return Continue;
}

bool ServeSession::dispatch(const std::string &Cmd,
                            std::vector<std::string> &Args,
                            std::ostream &Out, StatePtr &St) {
  C.Requests.fetch_add(1, std::memory_order_relaxed);
  if (FaultInjector::instance().shouldFail(FaultSite::ServeRequest)) {
    C.InjectedFaults.fetch_add(1, std::memory_order_relaxed);
    obs::flight("serve_request_fault");
    Out << "ERR internal: injected fault on request\n";
    return true; // A failed request never kills the session.
  }

  if (Cmd == "quit")
    return false;
  if (Cmd == "help") {
    Out << "commands: pts <v> | alias <p> <q> | aliasbatch <p> <q> "
           "[<p> <q>]... | pointedby <o> | callees <v> | callgraph | "
           "check | resolve <delta.cons> | stats | trace | sleep <ms> | "
           "help | quit\n"
           "node refs are decimal ids or node names\n";
    return true;
  }
  if (Cmd == "stats") {
    if (Args.size() == 1 && Args[0] == "json") {
      cmdStats(*St, Out, /*Json=*/true);
      return true;
    }
    if (!Args.empty()) {
      Out << "error: stats takes no argument or 'json'\n";
      return true;
    }
    cmdStats(*St, Out, /*Json=*/false);
    return true;
  }
  if (Cmd == "trace") {
    obs::FlightRecorder &FR = obs::FlightRecorder::instance();
    Out << "flight recorder: " << FR.totalRecorded() << " events total\n";
    Out << FR.dumpText();
    return true;
  }
  if (Cmd == "callgraph") {
    if (Tier && !St->Engine) {
      // The call graph reads every base's full set: whole-solution work.
      if (Status S = materializeEngine(St); !S.ok()) {
        Out << "error: " << S.toString() << "\n";
        return true;
      }
    }
    const auto &Edges = St->Engine->callGraph();
    obs::noteResultSize(Edges.size());
    Out << "callgraph: " << Edges.size() << " edges\n";
    for (const auto &[Base, Callee] : Edges)
      Out << "edge " << Base << " " << Callee << "\n";
    return true;
  }
  if (Cmd == "check") {
    cmdCheck(St, Out);
    return true;
  }
  if (Cmd == "resolve") {
    if (Args.size() != 1) {
      Out << "error: resolve expects one constraint file\n";
      return true;
    }
    cmdResolve(Args[0], Out);
    return true;
  }
  if (Cmd == "sleep") {
    // Test/ops aid: occupies the worker so queue overload is reproducible.
    uint64_t Ms = 0;
    if (Args.size() != 1 ||
        Args[0].find_first_not_of("0123456789") != std::string::npos ||
        Args[0].empty()) {
      Out << "error: sleep expects milliseconds\n";
      return true;
    }
    errno = 0;
    Ms = std::strtoull(Args[0].c_str(), nullptr, 10);
    if (errno == ERANGE || Ms > 10000) {
      Out << "error: sleep is capped at 10000 ms\n";
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
    Out << "slept " << Ms << " ms\n";
    return true;
  }
  if (Cmd == "pts" || Cmd == "pointedby" || Cmd == "callees") {
    if (Args.size() != 1) {
      Out << "error: " << Cmd << " expects one node\n";
      return true;
    }
    NodeId V = InvalidNode;
    if (!resolveNodeRef(*St, Args[0], Out, V))
      return true;
    if (Tier && !St->Engine) {
      // Demand path: deduce just what the query needs; a budget trip
      // escalates inside the tier, and only an unanswerable query (no
      // sound solution landed) reports an error.
      const ConstraintSystem &CS = systemOf(*St);
      QueryEngine::IdList List;
      Status S;
      if (Cmd == "pts") {
        S = Tier->pointsTo(V, List);
      } else if (Cmd == "pointedby") {
        S = Tier->pointedBy(V, List);
      } else {
        S = Tier->pointsTo(V, List);
        if (S.ok()) {
          std::vector<NodeId> Funs;
          for (NodeId Obj : *List)
            if (CS.isFunction(Obj))
              Funs.push_back(Obj);
          List = std::make_shared<const std::vector<NodeId>>(std::move(Funs));
        }
      }
      if (!S.ok()) {
        Out << "error: " << S.toString() << "\n";
        return true;
      }
      printIdList(Out, Cmd.c_str(), Args[0], List);
      return true;
    }
    if (Cmd == "pts")
      printIdList(Out, "pts", Args[0], St->Engine->pointsTo(V));
    else if (Cmd == "pointedby") {
      QueryEngine::IdList List;
      SolveGovernor Gov(Opts.QueryBudget);
      if (Status S = St->Engine->pointedBy(V, List, &Gov); !S.ok()) {
        Out << "error: " << S.toString() << "\n";
        return true;
      }
      printIdList(Out, "pointedby", Args[0], List);
    } else
      printIdList(Out, "callees", Args[0], St->Engine->callees(V));
    return true;
  }
  if (Cmd == "alias") {
    if (Args.size() != 2) {
      Out << "error: alias expects two nodes\n";
      return true;
    }
    NodeId P = InvalidNode, Q = InvalidNode;
    if (!resolveNodeRef(*St, Args[0], Out, P) ||
        !resolveNodeRef(*St, Args[1], Out, Q))
      return true;
    bool Verdict = false;
    if (Tier && !St->Engine) {
      if (Status S = Tier->alias(P, Q, Verdict); !S.ok()) {
        Out << "error: " << S.toString() << "\n";
        return true;
      }
    } else {
      Verdict = St->Engine->alias(P, Q);
    }
    obs::noteResultSize(1);
    Out << "alias(" << Args[0] << "," << Args[1] << ") = "
        << (Verdict ? "yes" : "no") << "\n";
    return true;
  }
  if (Cmd == "aliasbatch") {
    if (Args.empty() || Args.size() % 2 != 0) {
      Out << "error: aliasbatch expects an even number of nodes\n";
      return true;
    }
    std::vector<std::pair<NodeId, NodeId>> Pairs;
    for (size_t I = 0; I < Args.size(); I += 2) {
      NodeId P = InvalidNode, Q = InvalidNode;
      if (!resolveNodeRef(*St, Args[I], Out, P) ||
          !resolveNodeRef(*St, Args[I + 1], Out, Q))
        return true;
      Pairs.emplace_back(P, Q);
    }
    std::vector<bool> Verdicts;
    if (Tier && !St->Engine) {
      Verdicts.reserve(Pairs.size());
      for (const auto &[P, Q] : Pairs) {
        bool V = false;
        if (Status S = Tier->alias(P, Q, V); !S.ok()) {
          Out << "error: " << S.toString() << "\n";
          return true;
        }
        Verdicts.push_back(V);
      }
    } else {
      Verdicts = St->Engine->aliasBatch(Pairs);
    }
    obs::noteResultSize(Verdicts.size());
    Out << "aliasbatch:";
    for (bool B : Verdicts)
      Out << " " << (B ? "yes" : "no");
    Out << "\n";
    return true;
  }
  Out << "error: unknown command '" << Cmd << "' (type 'help')\n";
  return true;
}

int ServeSession::run(std::istream &In, std::ostream &Out) {
  Out << bannerText();
  Out.flush();

  if (Opts.QueueCapacity > 0)
    return runQueued(In, Out);

  std::string Line;
  for (;;) {
    LineStatus LS = readLineBounded(In, Line, Opts.MaxLineBytes);
    if (LS == LineStatus::Eof)
      return 0;
    if (LS == LineStatus::TooLong) {
      noteOversizedLine();
      Out << "error: line too long (max " << Opts.MaxLineBytes << " bytes)\n";
      continue;
    }
    if (!handleLine(Line, Out))
      return 0;
  }
}

int ServeSession::runQueued(std::istream &In, std::ostream &Out) {
  using Clock = std::chrono::steady_clock;
  struct Request {
    std::string Line;
    Clock::time_point Enqueued;
  };

  std::mutex QMu;
  std::condition_variable QCv;
  std::deque<Request> Queue;
  bool InputDone = false;
  bool Quit = false;

  // Replies are written whole under one lock so worker replies and
  // reader-side shed errors never interleave mid-line.
  std::mutex OutMu;
  auto Reply = [&](const std::string &Text) {
    std::lock_guard<std::mutex> Lock(OutMu);
    Out << Text;
    Out.flush();
  };

  std::thread Worker([&] {
    for (;;) {
      Request Req;
      bool Draining = false;
      {
        std::unique_lock<std::mutex> Lock(QMu);
        QCv.wait(Lock, [&] { return !Queue.empty() || InputDone; });
        if (Queue.empty())
          return; // Input done and fully drained.
        Req = std::move(Queue.front());
        Queue.pop_front();
        Draining = Quit;
      }
      if (Draining) {
        // Admitted after quit: still gets exactly one (structured) reply.
        std::string Text = "ERR shutdown: session closing\n";
        Reply(Text);
        noteDroppedRequest(DropKind::Shutdown, Req.Line, Text,
                           /*WaitedNanos=*/0);
        continue;
      }
      if (Opts.DeadlineSeconds > 0) {
        auto WaitedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - Req.Enqueued)
                            .count();
        auto LimitMs =
            static_cast<long long>(Opts.DeadlineSeconds * 1000.0);
        if (WaitedMs > LimitMs) {
          obs::flight("serve_deadline_drop",
                      static_cast<uint64_t>(WaitedMs));
          std::ostringstream Oss;
          Oss << "ERR deadline: waited " << WaitedMs << " ms (limit "
              << LimitMs << " ms)\n";
          std::string Text = Oss.str();
          Reply(Text);
          noteDroppedRequest(DropKind::Deadline, Req.Line, Text,
                             uint64_t(WaitedMs) * 1000000ull);
          continue;
        }
      }
      std::ostringstream Oss;
      bool Continue = handleLine(Req.Line, Oss);
      Reply(Oss.str());
      if (!Continue) {
        std::lock_guard<std::mutex> Lock(QMu);
        Quit = true;
      }
    }
  });

  std::string Line;
  for (;;) {
    {
      std::lock_guard<std::mutex> Lock(QMu);
      if (Quit)
        break;
    }
    LineStatus LS = readLineBounded(In, Line, Opts.MaxLineBytes);
    if (LS == LineStatus::Eof)
      break;
    if (LS == LineStatus::TooLong) {
      noteOversizedLine();
      std::ostringstream Oss;
      Oss << "error: line too long (max " << Opts.MaxLineBytes << " bytes)\n";
      Reply(Oss.str());
      continue;
    }
    std::unique_lock<std::mutex> Lock(QMu);
    if (Quit)
      break;
    if (Queue.size() >= Opts.QueueCapacity) {
      size_t Pending = Queue.size();
      Lock.unlock();
      obs::flight("serve_overload_shed", Pending);
      std::ostringstream Oss;
      Oss << "ERR overloaded: queue full (" << Pending << " pending)\n";
      std::string Text = Oss.str();
      Reply(Text);
      noteDroppedRequest(DropKind::Overloaded, Line, Text, /*WaitedNanos=*/0);
      continue;
    }
    noteAdmitted();
    Queue.push_back(Request{std::move(Line), Clock::now()});
    Line = std::string();
    Lock.unlock();
    QCv.notify_one();
  }

  {
    std::lock_guard<std::mutex> Lock(QMu);
    InputDone = true;
  }
  QCv.notify_all();
  Worker.join();
  return 0;
}
