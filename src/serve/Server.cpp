//===- Server.cpp - Concurrent line-protocol front-end --------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ag;

using Clock = std::chrono::steady_clock;

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

/// Per-client state. Field ownership is split three ways and each group is
/// touched by exactly one locking discipline:
///  * read side (InBuf/Discarding/PeerClosed): poll thread only, no lock;
///  * scheduling (Pending/Busy): Server::QMu;
///  * write side: WriteMu serializes whole replies; Dead/CloseAfterReply/
///    LastActiveNs are atomics so the poll thread's reaper can read them
///    without taking a worker's lock.
struct Server::Connection {
  int Fd = -1;
  uint64_t Id = 0;

  // --- poll thread only ---
  std::string InBuf;      ///< Partial line being assembled.
  bool Discarding = false; ///< Swallowing an oversized line until '\n'.
  bool PeerClosed = false; ///< recv() saw EOF.

  // --- guarded by Server::QMu ---
  /// One unit of pipelined work: a line to execute (the deadline clock
  /// starts at its admission time), or a pre-rendered reply the poll
  /// thread handed off via queueReply (IsReply).
  struct PendingItem {
    std::string Text;
    Clock::time_point Enqueued;
    bool IsReply = false;
  };
  /// Work waiting behind this connection's in-flight request.
  std::deque<PendingItem> Pending;
  bool Busy = false; ///< A worker is executing (or flushing) a line.
  /// Pre-rendered reply bytes queued but not yet taken by a worker;
  /// bounded so a client flooding errors without reading cannot grow
  /// memory.
  size_t PendingReplyBytes = 0;

  // --- atomics, written by workers / read by the poll thread ---
  std::atomic<bool> CloseAfterReply{false}; ///< `quit` was executed.
  std::atomic<bool> Dead{false}; ///< Send failed/stalled; reap when drained.
  std::atomic<int64_t> LastActiveNs{0};

  std::mutex WriteMu; ///< Serializes whole replies onto the socket.
};

Server::Server(ServeSession &Session, ServerOptions Opts)
    : Session(Session), Opts(std::move(Opts)) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
  if (this->Opts.MaxConns == 0)
    this->Opts.MaxConns = 1;
}

Server::~Server() {
  stop();
  for (int &Fd : WakeFds)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
}

std::string Server::endpoint() const {
  if (!Opts.UnixSocketPath.empty())
    return "unix:" + Opts.UnixSocketPath;
  return "127.0.0.1:" + std::to_string(BoundPort);
}

ServerCounters Server::counters() const {
  ServerCounters R;
  R.Accepted = C.Accepted.load(std::memory_order_relaxed);
  R.Rejected = C.Rejected.load(std::memory_order_relaxed);
  R.IdleClosed = C.IdleClosed.load(std::memory_order_relaxed);
  R.Active = C.Active.load(std::memory_order_relaxed);
  return R;
}

Status Server::listenTcp() {
  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Status::ioError("serve: socket() failed");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Loopback-only, like
  Addr.sin_port = htons(Opts.Port);              // the metrics endpoint.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("serve: cannot bind 127.0.0.1:" +
                           std::to_string(Opts.Port));
  }
  if (::listen(ListenFd, 64) < 0 || !setNonBlocking(ListenFd)) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("serve: listen() failed");
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    BoundPort = ntohs(Addr.sin_port);
  return Status::okStatus();
}

Status Server::listenUnix() {
  sockaddr_un Addr = {};
  if (Opts.UnixSocketPath.size() >= sizeof(Addr.sun_path))
    return Status::invalidArgument("serve: unix socket path too long");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Status::ioError("serve: socket() failed");
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Opts.UnixSocketPath.c_str(),
              Opts.UnixSocketPath.size() + 1);
  // Reclaim the path only when nothing answers on it: unconditionally
  // unlinking would silently steal the endpoint from a live server. A
  // connect() that succeeds means someone is serving; ECONNREFUSED means
  // a stale socket from a crash (ENOENT: no socket at all, nothing to
  // reclaim). Any other probe failure leaves the path alone and lets
  // bind() report the conflict.
  if (int Probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      Probe >= 0) {
    int RC = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                       sizeof(Addr));
    int Err = errno;
    ::close(Probe);
    if (RC == 0) {
      ::close(ListenFd);
      ListenFd = -1;
      return Status::ioError("serve: unix socket " + Opts.UnixSocketPath +
                             " is in use by a live server");
    }
    if (Err == ECONNREFUSED)
      ::unlink(Opts.UnixSocketPath.c_str());
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("serve: cannot bind unix socket " +
                           Opts.UnixSocketPath);
  }
  if (::listen(ListenFd, 64) < 0 || !setNonBlocking(ListenFd)) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("serve: listen() failed");
  }
  return Status::okStatus();
}

Status Server::start() {
  if (Started)
    return Status::invalidArgument("serve: server already started");
  Status St =
      Opts.UnixSocketPath.empty() ? listenTcp() : listenUnix();
  if (!St.ok())
    return St;
  if (::pipe2(WakeFds, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("serve: pipe2() failed");
  }
  StopFlag.store(false, std::memory_order_release);
  WorkersExit = false;
  WorkerThreads.reserve(Opts.Workers);
  for (unsigned I = 0; I != Opts.Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  PollThread = std::thread([this] { pollLoop(); });
  Started = true;
  return Status::okStatus();
}

void Server::requestStop() {
  // Async-signal-safe: one relaxed-ish atomic store plus one write(2) to
  // the self-pipe. Never takes a lock and never allocates.
  StopFlag.store(true, std::memory_order_release);
  char B = 1;
  ssize_t R = ::write(WakeFds[1], &B, 1);
  (void)R; // A full pipe still wakes the poller; EBADF means not started.
}

void Server::wait() {
  if (!Started || Joined)
    return;
  if (PollThread.joinable())
    PollThread.join();
  Joined = true;
}

void Server::stop() {
  if (!Started)
    return;
  requestStop();
  wait();
}

void Server::wakePoll() {
  char B = 1;
  ssize_t R = ::write(WakeFds[1], &B, 1);
  (void)R;
}

//===----------------------------------------------------------------------===//
// Poll thread: accept, read, shed, reap.
//===----------------------------------------------------------------------===//

void Server::pollLoop() {
  std::vector<pollfd> Pfds;
  std::vector<size_t> PfdConn; // Pfds[i] -> Conns index, parallel array.
  for (;;) {
    bool Stopping = StopFlag.load(std::memory_order_acquire);
    if (Stopping && ListenFd >= 0) {
      ::close(ListenFd); // Refuse new connections the moment a drain
      ListenFd = -1;     // begins; admitted work still completes.
    }
    if (Stopping) {
      std::lock_guard<std::mutex> Lock(QMu);
      bool Drained = Queue.empty() && BusyWorkers == 0;
      for (const auto &Conn : Conns)
        Drained = Drained && Conn->Pending.empty() && !Conn->Busy;
      if (Drained)
        break;
    }

    Pfds.clear();
    PfdConn.clear();
    Pfds.push_back({WakeFds[0], POLLIN, 0});
    PfdConn.push_back(size_t(-1));
    if (ListenFd >= 0) {
      Pfds.push_back({ListenFd, POLLIN, 0});
      PfdConn.push_back(size_t(-1));
    }
    for (size_t I = 0; I != Conns.size(); ++I) {
      const auto &Conn = Conns[I];
      if (Stopping || Conn->PeerClosed ||
          Conn->Dead.load(std::memory_order_acquire) ||
          Conn->CloseAfterReply.load(std::memory_order_acquire))
        continue; // Stop reading from quitting/dying connections.
      Pfds.push_back({Conn->Fd, POLLIN, 0});
      PfdConn.push_back(I);
    }

    int R = ::poll(Pfds.data(), nfds_t(Pfds.size()), /*timeout_ms=*/100);
    if (R < 0 && errno != EINTR)
      break; // EBADF etc. — unrecoverable for a poller.
    if (R > 0) {
      if (Pfds[0].revents & POLLIN) { // Drain the self-pipe.
        char Buf[64];
        while (::read(WakeFds[0], Buf, sizeof(Buf)) > 0) {
        }
      }
      for (size_t I = 1; I != Pfds.size(); ++I) {
        if (!(Pfds[I].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        if (PfdConn[I] == size_t(-1))
          acceptPending();
        else
          readConnection(Conns[PfdConn[I]]);
      }
    }
    reapConnections();
  }

  // Drained: retire the workers, then the sockets.
  {
    std::lock_guard<std::mutex> Lock(QMu);
    WorkersExit = true;
  }
  QCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();
  for (const auto &Conn : Conns)
    closeConnection(Conn, "shutdown");
  Conns.clear();
  C.Active.store(0, std::memory_order_relaxed);
  if (obs::metricsEnabled())
    obs::MetricsRegistry::instance().setGauge(obs::Gauge::ServeConnsActive, 0);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!Opts.UnixSocketPath.empty())
    ::unlink(Opts.UnixSocketPath.c_str());
}

void Server::acceptPending() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN: backlog drained.
    }
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    ::fcntl(Fd, F_SETFD, FD_CLOEXEC);
    if (Conns.size() >= Opts.MaxConns) {
      C.Rejected.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeConnsRejected);
      obs::flight("serve_conn_reject", Conns.size());
      std::string Msg = "ERR overloaded: too many connections (max " +
                        std::to_string(Opts.MaxConns) + ")\n";
      // Best-effort: the socket buffer of a fresh connection is empty, so
      // this cannot stall the poll thread.
      ssize_t N = ::send(Fd, Msg.data(), Msg.size(), MSG_NOSIGNAL);
      (void)N;
      ::close(Fd);
      continue;
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conn->Id = NextConnId++;
    Conn->LastActiveNs.store(nowNs(), std::memory_order_relaxed);
    Conns.push_back(Conn);
    C.Accepted.fetch_add(1, std::memory_order_relaxed);
    C.Active.store(Conns.size(), std::memory_order_relaxed);
    if (obs::metricsEnabled()) {
      obs::count(obs::Counter::ServeConnsAccepted);
      obs::MetricsRegistry::instance().setGauge(obs::Gauge::ServeConnsActive,
                                                Conns.size());
    }
    obs::flight("serve_conn_accept", Conn->Id);
    // A worker sends the banner; it is queued before any line can be
    // admitted, so it still precedes the first reply.
    queueReply(Conn, Session.bannerText());
  }
}

void Server::readConnection(const std::shared_ptr<Connection> &Conn) {
  char Buf[4096];
  // Bounded work per wakeup: a client pumping bytes faster than we drain
  // them must not pin the poll thread in this loop while other sockets
  // wait. poll() is level-triggered, so leftover bytes re-signal on the
  // next iteration and the reader resumes after everyone else got a turn.
  for (int Rounds = 0; Rounds != 16;) {
    ssize_t N = ::recv(Conn->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      ++Rounds;
      Conn->LastActiveNs.store(nowNs(), std::memory_order_relaxed);
      ingestBytes(Conn, Buf, size_t(N));
      if (Conn->Dead.load(std::memory_order_acquire))
        return; // Flood-killed by the reply cap; stop ingesting.
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    // EOF or error: flush the final unterminated line, exactly as the
    // stdin REPL treats input that ends without a newline.
    Conn->PeerClosed = true;
    if (Conn->Discarding) {
      Conn->Discarding = false;
      Session.noteOversizedLine();
      queueReply(Conn,
                 "error: line too long (max " +
                     std::to_string(Session.options().MaxLineBytes) +
                     " bytes)\n");
    } else if (!Conn->InBuf.empty()) {
      std::string Line;
      Line.swap(Conn->InBuf);
      admitLine(Conn, std::move(Line));
    }
    return;
  }
}

void Server::ingestBytes(const std::shared_ptr<Connection> &Conn,
                         const char *Data, size_t Len) {
  const size_t Max = Session.options().MaxLineBytes;
  for (size_t I = 0; I != Len; ++I) {
    char Ch = Data[I];
    if (Ch == '\n') {
      if (Conn->Discarding) {
        // The oversized line ends here; one structured error per line,
        // identical to the REPL's bounded reader.
        Conn->Discarding = false;
        Session.noteOversizedLine();
        queueReply(Conn, "error: line too long (max " + std::to_string(Max) +
                             " bytes)\n");
      } else {
        std::string Line;
        Line.swap(Conn->InBuf);
        admitLine(Conn, std::move(Line));
      }
      continue;
    }
    if (Conn->Discarding)
      continue; // O(1) memory while swallowing the rest of the line.
    if (Conn->InBuf.size() >= Max) {
      Conn->Discarding = true;
      Conn->InBuf.clear();
      continue;
    }
    Conn->InBuf.push_back(Ch);
  }
}

void Server::admitLine(const std::shared_ptr<Connection> &Conn,
                       std::string Line) {
  ServeSession::DropKind Kind = ServeSession::DropKind::Overloaded;
  std::string Reply;
  size_t Backlog = 0;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    if (Conn->CloseAfterReply.load(std::memory_order_relaxed)) {
      // Lines pipelined behind a `quit` get the same answer the REPL's
      // queue gives requests admitted after shutdown began.
      Kind = ServeSession::DropKind::Shutdown;
      Reply = "ERR shutdown: session closing\n";
    } else if (Conn->Busy || !Conn->Pending.empty()) {
      if (Opts.QueueCapacity != 0 &&
          Conn->Pending.size() >= Opts.QueueCapacity) {
        Backlog = Conn->Pending.size();
        Reply = "ERR overloaded: queue full (" + std::to_string(Backlog) +
                " pending)\n";
      } else {
        Session.noteAdmitted();
        Conn->Pending.push_back({std::move(Line), Clock::now(), false});
        return;
      }
    } else {
      if (Opts.QueueCapacity != 0 && Queue.size() >= Opts.QueueCapacity) {
        Backlog = Queue.size();
        Reply = "ERR overloaded: queue full (" + std::to_string(Backlog) +
                " pending)\n";
      } else {
        Session.noteAdmitted();
        Conn->Busy = true;
        Queue.push_back(Task{Conn, std::move(Line), Clock::now()});
        QCv.notify_one();
        return;
      }
    }
  }
  // Shed/shutdown path: the drop is recorded here, but the reply bytes
  // are handed to a worker — a blocking send from the poll thread would
  // stall admission for everyone else, and the client that earned this
  // reply is exactly the kind that may have stopped reading.
  if (Kind == ServeSession::DropKind::Overloaded)
    obs::flight("serve_overload_shed", Backlog);
  Session.noteDroppedRequest(Kind, Line, Reply, /*WaitedNanos=*/0, Conn->Id);
  queueReply(Conn, std::move(Reply));
}

void Server::queueReply(const std::shared_ptr<Connection> &Conn,
                        std::string Reply) {
  // Pre-rendered replies ride the same per-connection pipeline as
  // executed lines, so their bytes interleave with request replies in
  // admission order — byte-identical to the serial REPL's transcript.
  constexpr size_t MaxPendingReplyBytes = 64u << 10;
  if (Conn->Dead.load(std::memory_order_acquire))
    return; // Replies to a dead connection have nowhere to go.
  bool Promote = false;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    if (Conn->PendingReplyBytes + Reply.size() > MaxPendingReplyBytes) {
      // The client piles up error replies faster than it reads them;
      // reap it instead of buffering without bound.
      Conn->Dead.store(true, std::memory_order_release);
      return;
    }
    Conn->PendingReplyBytes += Reply.size();
    if (Conn->Busy || !Conn->Pending.empty()) {
      Conn->Pending.push_back({std::move(Reply), Clock::now(), true});
    } else {
      Conn->Busy = true;
      Queue.push_back(Task{Conn, std::move(Reply), Clock::now(), true});
      Promote = true;
    }
  }
  if (Promote)
    QCv.notify_one();
}

void Server::closeConnection(const std::shared_ptr<Connection> &Conn,
                             const char *Reason) {
  obs::flight("serve_conn_close", Conn->Id);
  (void)Reason;
  Conn->Dead.store(true, std::memory_order_release);
  ::shutdown(Conn->Fd, SHUT_RDWR);
  ::close(Conn->Fd);
  Conn->Fd = -1;
}

void Server::reapConnections() {
  const int64_t Now = nowNs();
  const int64_t IdleNs = int64_t(Opts.IdleTimeoutSeconds * 1e9);
  bool Changed = false;
  for (size_t I = 0; I < Conns.size();) {
    const auto &Conn = Conns[I];
    bool Quiesced;
    {
      std::lock_guard<std::mutex> Lock(QMu);
      Quiesced = !Conn->Busy && Conn->Pending.empty();
    }
    const char *Reason = nullptr;
    if (Quiesced) {
      if (Conn->Dead.load(std::memory_order_acquire))
        Reason = "dead";
      else if (Conn->CloseAfterReply.load(std::memory_order_acquire))
        Reason = "quit";
      else if (Conn->PeerClosed)
        Reason = "eof";
      else if (IdleNs > 0 && Conn->InBuf.empty() &&
               Now - Conn->LastActiveNs.load(std::memory_order_relaxed) >
                   IdleNs) {
        Reason = "idle";
        C.IdleClosed.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::ServeConnsIdleClosed);
      }
    }
    if (!Reason) {
      ++I;
      continue;
    }
    closeConnection(Conn, Reason);
    Conns.erase(Conns.begin() + ptrdiff_t(I));
    Changed = true;
  }
  if (Changed) {
    C.Active.store(Conns.size(), std::memory_order_relaxed);
    if (obs::metricsEnabled())
      obs::MetricsRegistry::instance().setGauge(obs::Gauge::ServeConnsActive,
                                                Conns.size());
  }
}

//===----------------------------------------------------------------------===//
// Worker pool: execute, reply, promote.
//===----------------------------------------------------------------------===//

void Server::workerLoop() {
  // A connection's pipelined lines are drained in-worker in bounded
  // batches, with replies coalesced into one send per batch: promoting
  // every line through the global queue costs a condvar handoff (often
  // to a different, cache-cold worker) plus a poll-thread wakeup per
  // request, which caps aggregate throughput far below what the workers
  // can actually serve. The batch cap keeps rotation fair when there
  // are more active connections than workers, and per-line enqueue
  // timestamps ride along so deadline accounting is unchanged.
  constexpr unsigned BatchLimit = 32;
  constexpr size_t FlushBytes = 32u << 10;
  std::string Replies;
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> Lock(QMu);
      QCv.wait(Lock, [this] { return !Queue.empty() || WorkersExit; });
      if (Queue.empty())
        return; // WorkersExit with a drained queue.
      T = std::move(Queue.front());
      Queue.pop_front();
      if (T.IsReply)
        T.Conn->PendingReplyBytes -= T.Line.size();
      ++BusyWorkers;
    }
    Replies.clear();
    for (unsigned Batch = 1;; ++Batch) {
      if (T.IsReply) {
        // A pre-rendered reply from the poll thread (banner, oversized/
        // shed error); the drop telemetry was recorded at admit time.
        Replies += T.Line;
      } else if (T.Conn->CloseAfterReply.load(std::memory_order_acquire)) {
        // Lines pipelined behind a `quit` get the same answer the REPL's
        // queue gives requests admitted after shutdown began.
        std::string Reply = "ERR shutdown: session closing\n";
        Replies += Reply;
        Session.noteDroppedRequest(ServeSession::DropKind::Shutdown, T.Line,
                                   Reply, /*WaitedNanos=*/0, T.Conn->Id);
      } else {
        executeTask(T, Replies);
      }
      if (Batch >= BatchLimit || T.Conn->Dead.load(std::memory_order_acquire))
        break;
      if (Replies.size() >= FlushBytes) {
        if (!sendToConnection(T.Conn, Replies))
          break;
        Replies.clear();
      }
      {
        std::lock_guard<std::mutex> Lock(QMu);
        if (T.Conn->Pending.empty())
          break;
        auto P = std::move(T.Conn->Pending.front());
        T.Conn->Pending.pop_front();
        T.Line = std::move(P.Text);
        T.Enqueued = P.Enqueued;
        T.IsReply = P.IsReply;
        if (T.IsReply)
          T.Conn->PendingReplyBytes -= T.Line.size();
      }
    }
    if (!Replies.empty())
      sendToConnection(T.Conn, Replies);
    finishTask(T.Conn);
  }
}

void Server::executeTask(Task &T, std::string &Replies) {
  if (Opts.DeadlineSeconds > 0) {
    auto Waited = Clock::now() - T.Enqueued;
    int64_t WaitedMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(Waited).count();
    int64_t LimitMs = int64_t(Opts.DeadlineSeconds * 1000.0);
    if (WaitedMs > LimitMs) {
      obs::flight("serve_deadline_drop", uint64_t(WaitedMs));
      std::string Reply = "ERR deadline: waited " + std::to_string(WaitedMs) +
                          " ms (limit " + std::to_string(LimitMs) + " ms)\n";
      Replies += Reply;
      Session.noteDroppedRequest(
          ServeSession::DropKind::Deadline, T.Line, Reply,
          uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(Waited)
                       .count()),
          T.Conn->Id);
      return;
    }
  }
  std::ostringstream Reply;
  bool Continue = Session.handleLine(T.Line, Reply, T.Conn->Id);
  Replies += Reply.str();
  T.Conn->LastActiveNs.store(nowNs(), std::memory_order_relaxed);
  if (!Continue)
    T.Conn->CloseAfterReply.store(true, std::memory_order_release);
}

void Server::finishTask(const std::shared_ptr<Connection> &Conn) {
  bool Promoted = false;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    if (Conn->Dead.load(std::memory_order_acquire)) {
      // Nothing queued can reach a dead socket; drop the pipeline whole
      // so the poller reaps without cycling each item through a worker.
      Conn->Pending.clear();
      Conn->PendingReplyBytes = 0;
      Conn->Busy = false;
    } else if (!Conn->Pending.empty()) {
      // The connection stays Busy: at most one in-flight item per client
      // keeps its transcript byte-identical to the serial REPL's. (Lines
      // pipelined behind a `quit` stay queued too — the batch loop turns
      // them into shutdown errors.) Reply items keep their byte budget
      // until a worker pops them from the global queue.
      auto P = std::move(Conn->Pending.front());
      Conn->Pending.pop_front();
      Queue.push_back(Task{Conn, std::move(P.Text), P.Enqueued, P.IsReply});
      Promoted = true;
    } else {
      // Busy clears only with an empty pipeline, under the same lock
      // admitLine/queueReply append under, so no item can be stranded
      // with nobody scheduled to send it.
      Conn->Busy = false;
    }
    --BusyWorkers;
  }
  if (Promoted)
    QCv.notify_one();
  // Wake the poller only when it has something due: a quitting/dead
  // connection to reap, or a drain check during shutdown. On the steady
  // path it is already watching this connection's fd, and a per-request
  // wakeup (pipe write + pollfd rebuild) serializes the whole pool.
  if (Conn->CloseAfterReply.load(std::memory_order_acquire) ||
      Conn->Dead.load(std::memory_order_acquire) ||
      StopFlag.load(std::memory_order_acquire))
    wakePoll();
}

bool Server::sendToConnection(const std::shared_ptr<Connection> &Conn,
                              const std::string &Data) {
  if (Data.empty())
    return true;
  if (Conn->Dead.load(std::memory_order_acquire))
    return false;
  std::lock_guard<std::mutex> Lock(Conn->WriteMu);
  auto Deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             Opts.WriteTimeoutSeconds > 0
                                 ? Opts.WriteTimeoutSeconds
                                 : 10.0));
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        ::send(Conn->Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Conn->Dead.load(std::memory_order_acquire))
        break; // Flood-killed under us; no point finishing the flush.
      if (Clock::now() >= Deadline)
        break; // Client stopped reading; drop it, don't wedge a worker.
      pollfd Pfd = {Conn->Fd, POLLOUT, 0};
      ::poll(&Pfd, 1, /*timeout_ms=*/50);
      continue;
    }
    break; // EPIPE/ECONNRESET: mid-request disconnect.
  }
  if (Off == Data.size())
    return true;
  Conn->Dead.store(true, std::memory_order_release);
  wakePoll();
  return false;
}
