//===- BddDomain.cpp - Finite-domain encoding over BDD variables ----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "bdd/BddDomain.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace ag;

BddDomains::BddDomains(BddManager &Mgr, const std::vector<uint64_t> &Sizes)
    : Mgr(Mgr) {
  assert(!Sizes.empty() && "need at least one domain");
  unsigned NumDoms = static_cast<unsigned>(Sizes.size());
  uint32_t MaxBits = 0;
  for (uint64_t Size : Sizes) {
    assert(Size >= 1 && "domain must be non-empty");
    uint32_t Bits = Size <= 1 ? 1 : std::bit_width(Size - 1);
    MaxBits = std::max(MaxBits, Bits);
  }
  Mgr.setNumVars(MaxBits * NumDoms);

  for (unsigned D = 0; D != NumDoms; ++D) {
    Domain Dom;
    Dom.Size = Sizes[D];
    Dom.NumBits = Sizes[D] <= 1 ? 1 : std::bit_width(Sizes[D] - 1);
    // Interleave: bit j (MSB first) of domain D sits at level j*NumDoms+D.
    for (uint32_t J = 0; J != Dom.NumBits; ++J)
      Dom.Levels.push_back(J * NumDoms + D);
    Doms.push_back(std::move(Dom));
  }
  CachedVarSets.assign(NumDoms, -1);
  CachedPairings.assign(size_t(NumDoms) * NumDoms, -1);
}

Bdd BddDomains::element(unsigned D, uint64_t Value) {
  const Domain &Dom = Doms[D];
  assert(Value < Dom.Size && "value outside domain");
  std::vector<std::pair<uint32_t, bool>> Literals;
  Literals.reserve(Dom.NumBits);
  for (uint32_t J = 0; J != Dom.NumBits; ++J) {
    bool Bit = (Value >> (Dom.NumBits - 1 - J)) & 1;
    Literals.emplace_back(Dom.Levels[J], Bit);
  }
  return Mgr.cube(Literals);
}

Bdd BddDomains::rangeConstraint(unsigned D) {
  // OR of all valid elements would be quadratic; instead build the
  // comparison Value < Size directly: walk bits MSB->LSB of (Size-1).
  const Domain &Dom = Doms[D];
  uint64_t Max = Dom.Size - 1;
  // f_j = "bits j.. form a value <= suffix of Max". Build bottom-up.
  Bdd Acc = Mgr.trueBdd();
  for (int J = static_cast<int>(Dom.NumBits) - 1; J >= 0; --J) {
    bool Bit = (Max >> (Dom.NumBits - 1 - J)) & 1;
    Bdd V = Mgr.var(Dom.Levels[J]);
    if (Bit) {
      // This bit of Max is 1: value bit 0 -> anything below is fine (true);
      // value bit 1 -> remaining bits must satisfy Acc.
      Acc = Mgr.bddIte(V, Acc, Mgr.trueBdd());
    } else {
      // This bit of Max is 0: value bit 1 -> too big (false).
      Acc = Mgr.bddIte(V, Mgr.falseBdd(), Acc);
    }
  }
  return Acc;
}

BddVarSetId BddDomains::varSet(unsigned D) {
  if (CachedVarSets[D] < 0)
    CachedVarSets[D] = Mgr.makeVarSet(Doms[D].Levels);
  return static_cast<BddVarSetId>(CachedVarSets[D]);
}

BddPairingId BddDomains::pairing(unsigned From, unsigned To) {
  size_t Key = size_t(From) * Doms.size() + To;
  if (CachedPairings[Key] < 0) {
    assert(Doms[From].NumBits == Doms[To].NumBits &&
           "pairing requires equal bit widths");
    std::vector<std::pair<uint32_t, uint32_t>> Pairs;
    for (uint32_t J = 0; J != Doms[From].NumBits; ++J)
      Pairs.emplace_back(Doms[From].Levels[J], Doms[To].Levels[J]);
    CachedPairings[Key] = Mgr.makePairing(std::move(Pairs));
  }
  return static_cast<BddPairingId>(CachedPairings[Key]);
}

uint64_t BddDomains::decode(unsigned D, const std::vector<bool> &Assign) const {
  const Domain &Dom = Doms[D];
  assert(Assign.size() == Dom.NumBits && "assignment width mismatch");
  uint64_t Value = 0;
  for (uint32_t J = 0; J != Dom.NumBits; ++J)
    Value = (Value << 1) | (Assign[J] ? 1 : 0);
  return Value;
}

void BddDomains::forEachElement(const Bdd &Set, unsigned D,
                                const std::function<void(uint64_t)> &Fn) {
  const Domain &Dom = Doms[D];
  Mgr.forEachSat(Set, Dom.Levels, [&](const std::vector<bool> &Assign) {
    Fn(decode(D, Assign));
  });
}

void BddDomains::forEachPair(
    const Bdd &Rel, unsigned DA, unsigned DB,
    const std::function<void(uint64_t, uint64_t)> &Fn) {
  const Domain &A = Doms[DA];
  const Domain &B = Doms[DB];
  // Merge the two level lists (each ascending) and remember which domain
  // each position belongs to.
  std::vector<uint32_t> Levels;
  std::vector<bool> IsA;
  size_t IA = 0, IB = 0;
  while (IA < A.Levels.size() || IB < B.Levels.size()) {
    bool TakeA = IB == B.Levels.size() ||
                 (IA < A.Levels.size() && A.Levels[IA] < B.Levels[IB]);
    if (TakeA) {
      Levels.push_back(A.Levels[IA++]);
      IsA.push_back(true);
    } else {
      Levels.push_back(B.Levels[IB++]);
      IsA.push_back(false);
    }
  }
  Mgr.forEachSat(Rel, Levels, [&](const std::vector<bool> &Assign) {
    uint64_t VA = 0, VB = 0;
    for (size_t I = 0; I != Assign.size(); ++I) {
      if (IsA[I])
        VA = (VA << 1) | (Assign[I] ? 1 : 0);
      else
        VB = (VB << 1) | (Assign[I] ? 1 : 0);
    }
    Fn(VA, VB);
  });
}

uint64_t BddDomains::countElements(const Bdd &Set, unsigned D) {
  return static_cast<uint64_t>(Mgr.satCount(Set, Doms[D].Levels) + 0.5);
}

uint64_t BddDomains::countPairs(const Bdd &Rel, unsigned DA, unsigned DB) {
  std::vector<uint32_t> Levels = Doms[DA].Levels;
  Levels.insert(Levels.end(), Doms[DB].Levels.begin(),
                Doms[DB].Levels.end());
  std::sort(Levels.begin(), Levels.end());
  return static_cast<uint64_t>(Mgr.satCount(Rel, Levels) + 0.5);
}
