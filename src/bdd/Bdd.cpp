//===- Bdd.cpp - Reduced ordered binary decision diagrams -----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "bdd/Bdd.h"

#include "obs/MetricsRegistry.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace ag;

//===----------------------------------------------------------------------===//
// Bdd handle
//===----------------------------------------------------------------------===//

Bdd::Bdd(BddManager *Mgr, BddNodeRef Ref) : Mgr(Mgr), Ref(Ref) {
  if (Mgr)
    Mgr->externalRef(Ref);
}

Bdd::Bdd(const Bdd &RHS) : Mgr(RHS.Mgr), Ref(RHS.Ref) {
  if (Mgr)
    Mgr->externalRef(Ref);
}

Bdd &Bdd::operator=(const Bdd &RHS) {
  if (this == &RHS)
    return *this;
  if (RHS.Mgr)
    RHS.Mgr->externalRef(RHS.Ref);
  if (Mgr)
    Mgr->externalUnref(Ref);
  Mgr = RHS.Mgr;
  Ref = RHS.Ref;
  return *this;
}

Bdd &Bdd::operator=(Bdd &&RHS) noexcept {
  if (this == &RHS)
    return *this;
  if (Mgr)
    Mgr->externalUnref(Ref);
  Mgr = RHS.Mgr;
  Ref = RHS.Ref;
  RHS.Mgr = nullptr;
  RHS.Ref = BddFalse;
  return *this;
}

Bdd::~Bdd() {
  if (Mgr)
    Mgr->externalUnref(Ref);
}

//===----------------------------------------------------------------------===//
// BddManager: table management
//===----------------------------------------------------------------------===//

BddManager::BddManager(uint32_t InitialCapacity) {
  uint32_t Cap = std::max<uint32_t>(InitialCapacity, 1024);
  Cap = std::bit_ceil(Cap);
  CapLimit = Cap;
  Nodes.reserve(Cap);
  Buckets.assign(Cap, 0);
  BucketMask = Cap - 1;
  OpCache.assign(Cap, CacheEntry());
  OpCacheMask = Cap - 1;

  // Terminals. ExtRef keeps them permanently alive; their Var level sorts
  // below every real variable.
  Nodes.push_back(Node{LevelTerminal, 0, 0, 0, 1}); // False
  Nodes.push_back(Node{LevelTerminal, 1, 1, 0, 1}); // True
  updateTrackedBytes();
}

BddManager::~BddManager() {
  memRelease(MemCategory::BddTable, TrackedBytes);
}

void BddManager::updateTrackedBytes() {
  uint64_t Bytes = Nodes.capacity() * sizeof(Node) +
                   Buckets.capacity() * sizeof(BddNodeRef) +
                   OpCache.capacity() * sizeof(CacheEntry);
  if (Bytes > TrackedBytes)
    memAllocate(MemCategory::BddTable, Bytes - TrackedBytes);
  else if (Bytes < TrackedBytes)
    memRelease(MemCategory::BddTable, TrackedBytes - Bytes);
  TrackedBytes = Bytes;
}

void BddManager::setNumVars(uint32_t N) {
  assert(N < LevelTerminal && "too many variables");
  assert(N >= NumVars && "cannot shrink the variable universe");
  NumVars = N;
}

BddNodeRef BddManager::mk(uint32_t Var, BddNodeRef Low, BddNodeRef High) {
  assert(Var < NumVars && "mk with undeclared variable");
  assert(level(Low) > Var && level(High) > Var &&
         "mk would violate variable ordering");
  if (Low == High)
    return Low;
  uint32_t H = hashTriple(Var, Low, High);
  for (BddNodeRef R = Buckets[H]; R != 0; R = Nodes[R].NextInBucket) {
    const Node &N = Nodes[R];
    if (N.Var == Var && N.Low == Low && N.High == High)
      return R;
  }
  BddNodeRef R = allocateNode();
  // allocateNode may rehash; recompute the bucket.
  H = hashTriple(Var, Low, High);
  Node &N = Nodes[R];
  N.Var = Var;
  N.Low = Low;
  N.High = High;
  N.ExtRef = 0;
  N.NextInBucket = Buckets[H];
  Buckets[H] = R;
  return R;
}

BddNodeRef BddManager::allocateNode() {
  if (FreeList != 0) {
    BddNodeRef R = FreeList;
    FreeList = Nodes[R].Low;
    --NumFree;
    return R;
  }
  if (Nodes.size() >= CapLimit)
    growTable();
  Nodes.push_back(Node{});
  return static_cast<BddNodeRef>(Nodes.size() - 1);
}

void BddManager::growTable() {
  // Double capacity, bucket array, and cache; rehash live nodes.
  assert(CapLimit < (1u << 27) && "BDD node table exhausted the key space");
  CapLimit *= 2;
  Nodes.reserve(CapLimit);
  Buckets.assign(CapLimit, 0);
  BucketMask = CapLimit - 1;
  OpCache.assign(CapLimit, CacheEntry());
  OpCacheMask = CapLimit - 1;
  rehash();
  updateTrackedBytes();
}

void BddManager::rehash() {
  std::fill(Buckets.begin(), Buckets.end(), 0);
  for (BddNodeRef R = 2; R < Nodes.size(); ++R) {
    Node &N = Nodes[R];
    if (N.Var & FreeBit)
      continue;
    uint32_t H = hashTriple(N.Var & LevelMask, N.Low, N.High);
    N.NextInBucket = Buckets[H];
    Buckets[H] = R;
  }
}

void BddManager::clearCaches() {
  std::fill(OpCache.begin(), OpCache.end(), CacheEntry());
}

void BddManager::gc() {
  ++NumGcRuns;
  // Mark phase: roots are nodes with a positive external reference count.
  std::vector<BddNodeRef> Stack;
  for (BddNodeRef R = 2; R < Nodes.size(); ++R)
    if (!(Nodes[R].Var & FreeBit) && Nodes[R].ExtRef > 0)
      Stack.push_back(R);
  while (!Stack.empty()) {
    BddNodeRef R = Stack.back();
    Stack.pop_back();
    Node &N = Nodes[R];
    if (N.Var & MarkBit)
      continue;
    N.Var |= MarkBit;
    if (N.Low > BddTrue)
      Stack.push_back(N.Low);
    if (N.High > BddTrue)
      Stack.push_back(N.High);
  }
  // Sweep phase: unmarked nodes go to the free list.
  FreeList = 0;
  NumFree = 0;
  for (BddNodeRef R = 2; R < Nodes.size(); ++R) {
    Node &N = Nodes[R];
    if (N.Var & MarkBit) {
      N.Var &= ~MarkBit;
      continue;
    }
    if (!(N.Var & FreeBit)) {
      N.Var = FreeBit;
      N.ExtRef = 0;
    }
    N.Low = FreeList;
    FreeList = R;
    ++NumFree;
  }
  rehash();
  clearCaches();
}

void BddManager::maybeGcOrGrow() {
  // Only called between operations, when every live node is covered by an
  // external root.
  if (Nodes.size() + 64 < CapLimit || NumFree > Nodes.size() / 4)
    return;
  gc();
  // Grow when collection recovered less than half the table: repeated
  // near-full GCs each clear the operation caches, which thrashes badly.
  size_t Live = Nodes.size() - NumFree;
  if (Live > size_t(CapLimit) / 2)
    growTable();
}

uint32_t BddManager::countLiveNodes() {
  gc();
  return static_cast<uint32_t>(Nodes.size() - NumFree);
}

size_t BddManager::memoryBytes() const { return TrackedBytes; }

//===----------------------------------------------------------------------===//
// BddManager: operation cache
//===----------------------------------------------------------------------===//

bool BddManager::cacheLookup(uint64_t Key, uint32_t Extra,
                             BddNodeRef &Result) const {
  const CacheEntry &E = OpCache[Key & OpCacheMask];
  if (E.Key == Key && E.Extra == Extra) {
    Result = E.Result;
    obs::count(obs::Counter::BddCacheHits);
    return true;
  }
  obs::count(obs::Counter::BddCacheMisses);
  return false;
}

void BddManager::cacheStore(uint64_t Key, uint32_t Extra, BddNodeRef Result) {
  CacheEntry &E = OpCache[Key & OpCacheMask];
  E.Key = Key;
  E.Extra = Extra;
  E.Result = Result;
}

//===----------------------------------------------------------------------===//
// BddManager: core operations
//===----------------------------------------------------------------------===//

Bdd BddManager::var(uint32_t Var) {
  assert(Var < NumVars && "undeclared variable");
  return Bdd(this, mk(Var, BddFalse, BddTrue));
}

Bdd BddManager::nvar(uint32_t Var) {
  assert(Var < NumVars && "undeclared variable");
  return Bdd(this, mk(Var, BddTrue, BddFalse));
}

Bdd BddManager::cube(const std::vector<std::pair<uint32_t, bool>> &Literals) {
  maybeGcOrGrow();
  BddNodeRef R = BddTrue;
  // Build bottom-up so each mk sees already-ordered children.
  for (auto It = Literals.rbegin(); It != Literals.rend(); ++It) {
    auto [Level, Phase] = *It;
    R = Phase ? mk(Level, BddFalse, R) : mk(Level, R, BddFalse);
  }
  return Bdd(this, R);
}

BddNodeRef BddManager::applyRec(uint32_t Op, BddNodeRef A, BddNodeRef B) {
  // Terminal and shortcut cases.
  switch (Op) {
  case OpAnd:
    if (A == BddFalse || B == BddFalse)
      return BddFalse;
    if (A == BddTrue)
      return B;
    if (B == BddTrue || A == B)
      return A;
    break;
  case OpOr:
    if (A == BddTrue || B == BddTrue)
      return BddTrue;
    if (A == BddFalse)
      return B;
    if (B == BddFalse || A == B)
      return A;
    break;
  case OpDiff:
    if (A == BddFalse || B == BddTrue || A == B)
      return BddFalse;
    if (B == BddFalse)
      return A;
    break;
  case OpXor:
    if (A == B)
      return BddFalse;
    if (A == BddFalse)
      return B;
    if (B == BddFalse)
      return A;
    break;
  default:
    assert(false && "not a binary op");
  }
  // Normalize commutative operand order for better cache hit rates.
  if ((Op == OpAnd || Op == OpOr || Op == OpXor) && A > B)
    std::swap(A, B);

  uint64_t Key = cacheKey(Op, A, B);
  BddNodeRef Cached;
  if (cacheLookup(Key, 0, Cached))
    return Cached;

  uint32_t Top = std::min(level(A), level(B));
  BddNodeRef A0 = level(A) == Top ? low(A) : A;
  BddNodeRef A1 = level(A) == Top ? high(A) : A;
  BddNodeRef B0 = level(B) == Top ? low(B) : B;
  BddNodeRef B1 = level(B) == Top ? high(B) : B;

  BddNodeRef R0 = applyRec(Op, A0, B0);
  BddNodeRef R1 = applyRec(Op, A1, B1);
  BddNodeRef R = mk(Top, R0, R1);
  cacheStore(Key, 0, R);
  return R;
}

BddNodeRef BddManager::iteRec(BddNodeRef F, BddNodeRef G, BddNodeRef H) {
  if (F == BddTrue)
    return G;
  if (F == BddFalse)
    return H;
  if (G == H)
    return G;
  if (G == BddTrue && H == BddFalse)
    return F;

  uint64_t Key = cacheKey(OpIte, F, G);
  BddNodeRef Cached;
  if (cacheLookup(Key, H, Cached))
    return Cached;

  uint32_t Top = std::min(level(F), std::min(level(G), level(H)));
  BddNodeRef F0 = level(F) == Top ? low(F) : F;
  BddNodeRef F1 = level(F) == Top ? high(F) : F;
  BddNodeRef G0 = level(G) == Top ? low(G) : G;
  BddNodeRef G1 = level(G) == Top ? high(G) : G;
  BddNodeRef H0 = level(H) == Top ? low(H) : H;
  BddNodeRef H1 = level(H) == Top ? high(H) : H;

  BddNodeRef R0 = iteRec(F0, G0, H0);
  BddNodeRef R1 = iteRec(F1, G1, H1);
  BddNodeRef R = mk(Top, R0, R1);
  cacheStore(Key, H, R);
  return R;
}

Bdd BddManager::bddAnd(const Bdd &A, const Bdd &B) {
  assert(A.manager() == this && B.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, applyRec(OpAnd, A.ref(), B.ref()));
}

Bdd BddManager::bddOr(const Bdd &A, const Bdd &B) {
  assert(A.manager() == this && B.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, applyRec(OpOr, A.ref(), B.ref()));
}

Bdd BddManager::bddDiff(const Bdd &A, const Bdd &B) {
  assert(A.manager() == this && B.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, applyRec(OpDiff, A.ref(), B.ref()));
}

Bdd BddManager::bddXor(const Bdd &A, const Bdd &B) {
  assert(A.manager() == this && B.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, applyRec(OpXor, A.ref(), B.ref()));
}

Bdd BddManager::bddNot(const Bdd &A) {
  assert(A.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, iteRec(A.ref(), BddFalse, BddTrue));
}

Bdd BddManager::bddIte(const Bdd &F, const Bdd &G, const Bdd &H) {
  assert(F.manager() == this && G.manager() == this && H.manager() == this);
  maybeGcOrGrow();
  return Bdd(this, iteRec(F.ref(), G.ref(), H.ref()));
}

//===----------------------------------------------------------------------===//
// BddManager: quantification, replacement, relational product
//===----------------------------------------------------------------------===//

BddVarSetId BddManager::makeVarSet(std::vector<uint32_t> Vars) {
  assert(std::is_sorted(Vars.begin(), Vars.end()) &&
         "variable sets must be sorted ascending");
  assert(VarSets.size() < 64 && "too many variable sets");
  VarSet S;
  S.Vars = std::move(Vars);
  S.MaxVar = S.Vars.empty() ? 0 : S.Vars.back();
  S.Member.assign(NumVars, false);
  for (uint32_t V : S.Vars) {
    assert(V < NumVars && "undeclared variable in set");
    S.Member[V] = true;
  }
  VarSets.push_back(std::move(S));
  return static_cast<BddVarSetId>(VarSets.size() - 1);
}

BddNodeRef BddManager::existRec(BddNodeRef A, BddVarSetId Set) {
  const VarSet &S = VarSets[Set];
  if (level(A) > S.MaxVar)
    return A; // Also covers terminals.

  uint64_t Key = cacheKey(OpExistBase + Set, A, 0);
  BddNodeRef Cached;
  if (cacheLookup(Key, 0, Cached))
    return Cached;

  BddNodeRef R0 = existRec(low(A), Set);
  BddNodeRef R1 = existRec(high(A), Set);
  BddNodeRef R;
  if (S.Member[level(A)])
    R = applyRec(OpOr, R0, R1);
  else
    R = mk(level(A), R0, R1);
  cacheStore(Key, 0, R);
  return R;
}

Bdd BddManager::exist(const Bdd &A, BddVarSetId Set) {
  assert(A.manager() == this && Set < VarSets.size());
  maybeGcOrGrow();
  return Bdd(this, existRec(A.ref(), Set));
}

BddNodeRef BddManager::relProdRec(BddNodeRef A, BddNodeRef B,
                                  BddVarSetId Set) {
  if (A == BddFalse || B == BddFalse)
    return BddFalse;
  const VarSet &S = VarSets[Set];
  uint32_t Top = std::min(level(A), level(B));
  if (Top > S.MaxVar)
    return applyRec(OpAnd, A, B); // Past every quantified variable.

  if (A > B)
    std::swap(A, B); // AND is commutative.
  uint64_t Key = cacheKey(OpRelProdBase + Set, A, B);
  BddNodeRef Cached;
  if (cacheLookup(Key, 0, Cached))
    return Cached;

  BddNodeRef A0 = level(A) == Top ? low(A) : A;
  BddNodeRef A1 = level(A) == Top ? high(A) : A;
  BddNodeRef B0 = level(B) == Top ? low(B) : B;
  BddNodeRef B1 = level(B) == Top ? high(B) : B;

  BddNodeRef R;
  if (S.Member[Top]) {
    BddNodeRef R0 = relProdRec(A0, B0, Set);
    // Short-circuit: x or 1 == 1.
    if (R0 == BddTrue)
      R = BddTrue;
    else
      R = applyRec(OpOr, R0, relProdRec(A1, B1, Set));
  } else {
    R = mk(Top, relProdRec(A0, B0, Set), relProdRec(A1, B1, Set));
  }
  cacheStore(Key, 0, R);
  return R;
}

Bdd BddManager::relProd(const Bdd &A, const Bdd &B, BddVarSetId Set) {
  assert(A.manager() == this && B.manager() == this && Set < VarSets.size());
  maybeGcOrGrow();
  return Bdd(this, relProdRec(A.ref(), B.ref(), Set));
}

BddPairingId
BddManager::makePairing(std::vector<std::pair<uint32_t, uint32_t>> Pairs) {
  assert(Pairings.size() < 64 && "too many pairings");
  Pairing P;
  P.Map.resize(NumVars);
  for (uint32_t V = 0; V != NumVars; ++V)
    P.Map[V] = V;
  for (const auto &[From, To] : Pairs) {
    assert(From < NumVars && To < NumVars && "undeclared variable in pair");
    P.Map[From] = To;
  }
#ifndef NDEBUG
  // Order preservation: renamed levels must keep their relative order.
  std::sort(Pairs.begin(), Pairs.end());
  for (size_t I = 1; I < Pairs.size(); ++I)
    assert(Pairs[I - 1].second < Pairs[I].second &&
           "pairing must be order-preserving");
#endif
  Pairings.push_back(std::move(P));
  return static_cast<BddPairingId>(Pairings.size() - 1);
}

BddNodeRef BddManager::replaceRec(BddNodeRef A, BddPairingId Pairing) {
  if (A <= BddTrue)
    return A;
  uint64_t Key = cacheKey(OpReplaceBase + Pairing, A, 0);
  BddNodeRef Cached;
  if (cacheLookup(Key, 0, Cached))
    return Cached;

  BddNodeRef R0 = replaceRec(low(A), Pairing);
  BddNodeRef R1 = replaceRec(high(A), Pairing);
  uint32_t NewVar = Pairings[Pairing].Map[level(A)];
  // The renaming must not push this variable below its children; this is
  // what restricts replace() to inter-domain renamings.
  assert(level(R0) > NewVar && level(R1) > NewVar &&
         "replace would violate variable ordering");
  BddNodeRef R = mk(NewVar, R0, R1);
  cacheStore(Key, 0, R);
  return R;
}

Bdd BddManager::replace(const Bdd &A, BddPairingId Pairing) {
  assert(A.manager() == this && Pairing < Pairings.size());
  maybeGcOrGrow();
  return Bdd(this, replaceRec(A.ref(), Pairing));
}

//===----------------------------------------------------------------------===//
// BddManager: counting and enumeration
//===----------------------------------------------------------------------===//

double BddManager::satCount(const Bdd &A, const std::vector<uint32_t> &Vars) {
  assert(A.manager() == this);
  // Position of each level within Vars; terminals map to Vars.size().
  std::vector<uint32_t> Pos(NumVars + 1, ~0u);
  for (uint32_t I = 0; I != Vars.size(); ++I)
    Pos[Vars[I]] = I;
  auto posOf = [&](BddNodeRef R) -> uint32_t {
    uint32_t L = level(R);
    if (L == LevelTerminal)
      return static_cast<uint32_t>(Vars.size());
    assert(Pos[L] != ~0u && "support variable missing from universe");
    return Pos[L];
  };

  std::vector<double> Memo(Nodes.size(), -1.0);
  // Iterative post-order to avoid recursion here (counts can touch many
  // nodes).
  std::vector<BddNodeRef> Stack = {A.ref()};
  Memo[BddFalse] = 0.0;
  Memo[BddTrue] = 1.0;
  while (!Stack.empty()) {
    BddNodeRef R = Stack.back();
    if (Memo[R] >= 0.0) {
      Stack.pop_back();
      continue;
    }
    BddNodeRef L = low(R), H = high(R);
    if (Memo[L] < 0.0 || Memo[H] < 0.0) {
      if (Memo[L] < 0.0)
        Stack.push_back(L);
      if (Memo[H] < 0.0)
        Stack.push_back(H);
      continue;
    }
    Stack.pop_back();
    double CL = Memo[L] * std::exp2(double(posOf(L)) - posOf(R) - 1);
    double CH = Memo[H] * std::exp2(double(posOf(H)) - posOf(R) - 1);
    Memo[R] = CL + CH;
  }
  return Memo[A.ref()] * std::exp2(double(posOf(A.ref())));
}

void BddManager::forEachSat(
    const Bdd &A, const std::vector<uint32_t> &Vars,
    const std::function<void(const std::vector<bool> &)> &Fn) {
  assert(A.manager() == this);
  std::vector<bool> Assign(Vars.size(), false);

  // Recursive lambda over (node, position in Vars).
  std::function<void(BddNodeRef, uint32_t)> Walk = [&](BddNodeRef R,
                                                       uint32_t P) {
    if (R == BddFalse)
      return;
    if (P == Vars.size()) {
      assert(R == BddTrue && "support variable missing from universe");
      Fn(Assign);
      return;
    }
    if (level(R) == Vars[P]) {
      Assign[P] = false;
      Walk(low(R), P + 1);
      Assign[P] = true;
      Walk(high(R), P + 1);
    } else {
      // Var at P is unconstrained: enumerate both values.
      assert(level(R) > Vars[P] && "support variable missing from universe");
      Assign[P] = false;
      Walk(R, P + 1);
      Assign[P] = true;
      Walk(R, P + 1);
    }
  };
  Walk(A.ref(), 0);
}
