//===- Bdd.h - Reduced ordered binary decision diagrams ---------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch ROBDD package standing in for the BuDDy library the paper
/// uses: hash-consed node table, binary apply and ITE with operation caches,
/// existential quantification, variable replacement, fused relational
/// product, satisfying-assignment counting and enumeration, and mark-and-
/// sweep garbage collection rooted at externally held handles.
///
/// Conventions:
///  * Node references are dense indices; 0 is the False terminal and 1 the
///    True terminal.
///  * Variables are identified by their level (0 = topmost). There is no
///    dynamic reordering; clients choose orderings via BddDomain.
///  * Garbage collection only runs at public-operation entry, so results of
///    in-flight recursions never need protection.
///
//===----------------------------------------------------------------------===//

#ifndef AG_BDD_BDD_H
#define AG_BDD_BDD_H

#include "adt/MemTracker.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ag {

class BddManager;

/// Raw index of a BDD node within its manager.
using BddNodeRef = uint32_t;

constexpr BddNodeRef BddFalse = 0;
constexpr BddNodeRef BddTrue = 1;

/// RAII handle that keeps a BDD node (and everything it reaches) alive
/// across garbage collections.
class Bdd {
public:
  Bdd() = default;
  Bdd(BddManager *Mgr, BddNodeRef Ref);
  Bdd(const Bdd &RHS);
  Bdd(Bdd &&RHS) noexcept : Mgr(RHS.Mgr), Ref(RHS.Ref) {
    RHS.Mgr = nullptr;
    RHS.Ref = BddFalse;
  }
  Bdd &operator=(const Bdd &RHS);
  Bdd &operator=(Bdd &&RHS) noexcept;
  ~Bdd();

  /// The raw node index. Valid only while this handle (or another root
  /// covering the node) is alive.
  BddNodeRef ref() const { return Ref; }

  /// The owning manager (null for a default-constructed handle).
  BddManager *manager() const { return Mgr; }

  bool isFalse() const { return Ref == BddFalse; }
  bool isTrue() const { return Ref == BddTrue; }

  /// Hash-consing makes structural equality pointer equality.
  bool operator==(const Bdd &RHS) const {
    return Mgr == RHS.Mgr && Ref == RHS.Ref;
  }
  bool operator!=(const Bdd &RHS) const { return !(*this == RHS); }

private:
  BddManager *Mgr = nullptr;
  BddNodeRef Ref = BddFalse;
};

/// Identifier of a registered variable set (for quantification).
using BddVarSetId = uint32_t;
/// Identifier of a registered variable pairing (for replace).
using BddPairingId = uint32_t;

/// The BDD node store and operation engine.
class BddManager {
public:
  /// Creates a manager with \p InitialCapacity node slots (rounded up to a
  /// power of two, minimum 1024).
  explicit BddManager(uint32_t InitialCapacity = 1u << 16);
  ~BddManager();

  BddManager(const BddManager &) = delete;
  BddManager &operator=(const BddManager &) = delete;

  /// Declares variables so levels [0, NumVars) are usable.
  void setNumVars(uint32_t NumVars);

  /// Number of declared variables.
  uint32_t numVars() const { return NumVars; }

  /// Returns the single-variable BDD for level \p Var.
  Bdd var(uint32_t Var);
  /// Returns the negated single-variable BDD for level \p Var.
  Bdd nvar(uint32_t Var);

  Bdd falseBdd() { return Bdd(this, BddFalse); }
  Bdd trueBdd() { return Bdd(this, BddTrue); }

  /// Builds the conjunction of single-variable literals. \p Literals must
  /// be sorted by ascending level; each entry is (level, phase) where phase
  /// true means the positive literal. O(|Literals|) node constructions.
  Bdd cube(const std::vector<std::pair<uint32_t, bool>> &Literals);

  Bdd bddAnd(const Bdd &A, const Bdd &B);
  Bdd bddOr(const Bdd &A, const Bdd &B);
  /// A and not B.
  Bdd bddDiff(const Bdd &A, const Bdd &B);
  Bdd bddXor(const Bdd &A, const Bdd &B);
  Bdd bddNot(const Bdd &A);
  Bdd bddIte(const Bdd &F, const Bdd &G, const Bdd &H);

  /// Registers the variable set \p Vars (ascending levels) for use with
  /// exist() and relProd(). A small number of distinct sets is expected.
  BddVarSetId makeVarSet(std::vector<uint32_t> Vars);

  /// Existentially quantifies the variables of \p Set out of \p A.
  Bdd exist(const Bdd &A, BddVarSetId Set);

  /// Fused relational product: exist(Set, A and B).
  Bdd relProd(const Bdd &A, const Bdd &B, BddVarSetId Set);

  /// Registers a variable renaming given as (from, to) level pairs. The
  /// pairing must be order-preserving: if from1 < from2 then to1 < to2, and
  /// renamed levels must not collide with unrenamed support variables of
  /// the argument BDDs (guaranteed when renaming between interleaved
  /// domains; asserted during replace()).
  BddPairingId makePairing(std::vector<std::pair<uint32_t, uint32_t>> Pairs);

  /// Renames variables of \p A according to \p Pairing.
  Bdd replace(const Bdd &A, BddPairingId Pairing);

  /// Counts satisfying assignments of \p A over the variable universe
  /// \p Vars (ascending levels; must cover A's support).
  double satCount(const Bdd &A, const std::vector<uint32_t> &Vars);

  /// Invokes \p Fn for every satisfying assignment of \p A restricted to
  /// \p Vars (which must cover A's support). The assignment is passed as a
  /// bit vector aligned with \p Vars. This is the bdd_allsat equivalent
  /// the paper discusses when iterating points-to sets.
  void forEachSat(const Bdd &A, const std::vector<uint32_t> &Vars,
                  const std::function<void(const std::vector<bool> &)> &Fn);

  /// Number of live (reachable-from-roots) nodes, counting terminals.
  uint32_t countLiveNodes();

  /// Current node-table capacity in nodes.
  uint32_t capacity() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Bytes held by the node table and operation caches.
  size_t memoryBytes() const;

  /// Runs a mark-and-sweep collection now. Normally automatic.
  void gc();

  /// Statistics: how many GCs have run.
  uint32_t gcCount() const { return NumGcRuns; }

  /// The level of the root variable of \p Ref (LevelTerminal for leaves).
  uint32_t level(BddNodeRef Ref) const { return Nodes[Ref].Var & LevelMask; }
  /// Low (else) child. \p Ref must not be a terminal.
  BddNodeRef low(BddNodeRef Ref) const { return Nodes[Ref].Low; }
  /// High (then) child. \p Ref must not be a terminal.
  BddNodeRef high(BddNodeRef Ref) const { return Nodes[Ref].High; }

  /// Level value reported for terminals; larger than any real level.
  static constexpr uint32_t LevelTerminal = 0x3fffffff;

private:
  friend class Bdd;

  static constexpr uint32_t LevelMask = 0x3fffffff;
  static constexpr uint32_t MarkBit = 0x80000000;
  static constexpr uint32_t FreeBit = 0x40000000;

  struct Node {
    uint32_t Var;  ///< Level plus Mark/Free flag bits.
    BddNodeRef Low;
    BddNodeRef High;
    BddNodeRef NextInBucket;
    uint32_t ExtRef; ///< External root count (from Bdd handles).
  };

  enum : uint32_t {
    OpAnd = 0,
    OpOr,
    OpDiff,
    OpXor,
    OpIte,
    // Parameterized ops encode their varset/pairing id in the op word:
    // op = OpBase + Id.
    OpExistBase = 16,
    OpRelProdBase = 16 + 64,
    OpReplaceBase = 16 + 128,
  };

  struct CacheEntry {
    uint64_t Key = ~0ull;
    uint32_t Extra = 0; ///< Third operand (ITE) — part of the key.
    BddNodeRef Result = 0;
  };

  BddNodeRef mk(uint32_t Var, BddNodeRef Low, BddNodeRef High);
  BddNodeRef allocateNode();
  void growTable();
  void rehash();
  void clearCaches();
  void maybeGcOrGrow();

  BddNodeRef applyRec(uint32_t Op, BddNodeRef A, BddNodeRef B);
  BddNodeRef iteRec(BddNodeRef F, BddNodeRef G, BddNodeRef H);
  BddNodeRef existRec(BddNodeRef A, BddVarSetId Set);
  BddNodeRef relProdRec(BddNodeRef A, BddNodeRef B, BddVarSetId Set);
  BddNodeRef replaceRec(BddNodeRef A, BddPairingId Pairing);

  bool cacheLookup(uint64_t Key, uint32_t Extra, BddNodeRef &Result) const;
  void cacheStore(uint64_t Key, uint32_t Extra, BddNodeRef Result);
  static uint64_t cacheKey(uint32_t Op, BddNodeRef A, BddNodeRef B) {
    return (uint64_t(Op) << 56) ^ (uint64_t(A) << 28) ^ uint64_t(B);
  }

  void externalRef(BddNodeRef Ref) {
    if (Ref > BddTrue)
      ++Nodes[Ref].ExtRef;
  }
  void externalUnref(BddNodeRef Ref) {
    if (Ref > BddTrue) {
      assert(Nodes[Ref].ExtRef > 0 && "unbalanced external unref");
      --Nodes[Ref].ExtRef;
    }
  }

  uint32_t hashTriple(uint32_t Var, BddNodeRef Low, BddNodeRef High) const {
    uint64_t H = (uint64_t(Var) * 0x9e3779b97f4a7c15ull) ^
                 (uint64_t(Low) * 0xc2b2ae3d27d4eb4full) ^
                 (uint64_t(High) * 0x165667b19e3779f9ull);
    return static_cast<uint32_t>(H >> 32) & BucketMask;
  }

  std::vector<Node> Nodes;
  std::vector<BddNodeRef> Buckets;
  uint32_t BucketMask = 0;
  BddNodeRef FreeList = 0; ///< Chained through Low; 0 = empty.
  uint32_t NumFree = 0;
  uint32_t NumVars = 0;
  uint32_t NumGcRuns = 0;
  uint32_t CapLimit = 0; ///< Node-table size that triggers growth.
  uint64_t TrackedBytes = 0; ///< Last value reported to MemTracker.

  std::vector<CacheEntry> OpCache;
  uint32_t OpCacheMask = 0;

  /// Registered variable sets: per set, a sorted level list plus a dense
  /// membership bitmap for O(1) "is this level quantified" checks.
  struct VarSet {
    std::vector<uint32_t> Vars;
    std::vector<bool> Member;
    uint32_t MaxVar = 0;
  };
  std::vector<VarSet> VarSets;

  /// Registered pairings: dense old-level -> new-level maps (identity
  /// default).
  struct Pairing {
    std::vector<uint32_t> Map;
  };
  std::vector<Pairing> Pairings;

  void updateTrackedBytes();
};

} // namespace ag

#endif // AG_BDD_BDD_H
