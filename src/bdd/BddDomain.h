//===- BddDomain.h - Finite-domain encoding over BDD variables --*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BuDDy-style finite domains (fdd): each domain encodes integers
/// [0, Size) in binary over a block of BDD variables. Domains created
/// together are bit-interleaved — bit j of every domain sits at adjacent
/// levels — which is the ordering Berndl et al. identify as crucial for
/// compact points-to relations.
///
//===----------------------------------------------------------------------===//

#ifndef AG_BDD_BDDDOMAIN_H
#define AG_BDD_BDDDOMAIN_H

#include "bdd/Bdd.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace ag {

/// A group of interleaved finite domains sharing one BddManager.
class BddDomains {
public:
  /// Creates \p Sizes.size() interleaved domains; domain d encodes values
  /// [0, Sizes[d]). Declares the manager's variables; create domains before
  /// any other use of the manager's variable space.
  BddDomains(BddManager &Mgr, const std::vector<uint64_t> &Sizes);

  BddManager &manager() { return Mgr; }

  /// Number of domains.
  unsigned numDomains() const { return static_cast<unsigned>(Doms.size()); }

  /// The requested size of domain \p D (values [0, size) are encodable).
  uint64_t size(unsigned D) const { return Doms[D].Size; }

  /// BDD variable levels of domain \p D, MSB first (ascending levels).
  const std::vector<uint32_t> &levels(unsigned D) const {
    return Doms[D].Levels;
  }

  /// The BDD encoding exactly the value \p Value in domain \p D.
  Bdd element(unsigned D, uint64_t Value);

  /// The BDD constraining domain \p D to values < Size (needed because the
  /// binary encoding can represent up to the next power of two).
  Bdd rangeConstraint(unsigned D);

  /// Varset id quantifying all of domain \p D's variables (cached).
  BddVarSetId varSet(unsigned D);

  /// Pairing id renaming domain \p From's bits to domain \p To's (cached).
  /// Domains must have the same bit width.
  BddPairingId pairing(unsigned From, unsigned To);

  /// Decodes domain \p D's value from a satisfying assignment over exactly
  /// this domain's levels (as produced by forEachElement's plumbing).
  uint64_t decode(unsigned D, const std::vector<bool> &Assign) const;

  /// Enumerates the elements of a set-valued BDD whose support is within
  /// domain \p D.
  void forEachElement(const Bdd &Set, unsigned D,
                      const std::function<void(uint64_t)> &Fn);

  /// Enumerates the (a, b) pairs of a relation whose support is within
  /// domains \p DA and \p DB.
  void forEachPair(const Bdd &Rel, unsigned DA, unsigned DB,
                   const std::function<void(uint64_t, uint64_t)> &Fn);

  /// Number of elements in a set over domain \p D.
  uint64_t countElements(const Bdd &Set, unsigned D);

  /// Number of pairs in a relation over domains \p DA, \p DB.
  uint64_t countPairs(const Bdd &Rel, unsigned DA, unsigned DB);

private:
  struct Domain {
    uint64_t Size;
    uint32_t NumBits;
    std::vector<uint32_t> Levels; ///< MSB first; strictly ascending.
  };

  BddManager &Mgr;
  std::vector<Domain> Doms;
  std::vector<int64_t> CachedVarSets;  ///< -1 = not yet created.
  std::vector<int64_t> CachedPairings; ///< Indexed From*N+To; -1 unset.
};

} // namespace ag

#endif // AG_BDD_BDDDOMAIN_H
