//===- SolutionChecker.h - Independent fixed-point verification -*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent verifier that certifies a PointsToSolution against its
/// ConstraintSystem, without trusting any solver machinery (no worklists,
/// no union-find, no difference propagation — just the declarative closure
/// rules of the paper's Table 1 evaluated against the final sets):
///
///   AddressOf a = &b :  b ∈ pts(a)
///   Copy      a = b  :  pts(b) ⊆ pts(a)
///   Load      a = *(b+k) :  ∀v ∈ pts(b), t = v+k valid:  pts(t) ⊆ pts(a)
///   Store     *(a+k) = b :  ∀v ∈ pts(a), t = v+k valid:  pts(b) ⊆ pts(t)
///
/// plus structural invariants on the representative table (in range,
/// idempotent). A solution passing all rules is a (not necessarily least)
/// fixed point of the system — i.e. a *sound* answer: every precise solve,
/// and every sound over-approximation (Steensgaard fallback, seeded warm
/// starts), must pass; a budget-truncated partial solution generally must
/// not. checkSuperset additionally verifies a per-node containment between
/// two solutions of the same system (fallback ⊇ precise, differential
/// comparisons).
///
/// Cost: one pass over the constraints with two-pointer subset merges —
/// O(Σ set sizes) per constraint, no solver state. This is the oracle the
/// differential harness (Differential.h) and `ptatool check` build on.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CHECK_SOLUTIONCHECKER_H
#define AG_CHECK_SOLUTIONCHECKER_H

#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ag {

/// One violated invariant.
struct CheckViolation {
  enum class Kind : uint8_t {
    RepRange,      ///< Rep table entry out of the node id space.
    RepIdempotent, ///< rep(rep(v)) != rep(v).
    AddressOf,     ///< b missing from pts(a) for a = &b.
    Copy,          ///< pts(src) not contained in pts(dst).
    Load,          ///< pts(v+k) not contained in pts(dst) for v in pts(src).
    Store,         ///< pts(src) not contained in pts(v+k) for v in pts(dst).
    Superset,      ///< checkSuperset: an element of Small missing in Big.
  };

  Kind What;
  /// Index into ConstraintSystem::constraints() for the closure kinds;
  /// unused (0) for structural and superset violations.
  size_t ConstraintIndex = 0;
  /// The node whose set is deficient (or whose rep entry is broken).
  NodeId Node = InvalidNode;
  /// A witness: the object id that should be present but is not (closure,
  /// superset), or the bogus rep value (structural).
  NodeId Witness = InvalidNode;

  /// Human-readable one-liner, e.g.
  /// "copy #12 (n7 = n3): pts(n7) is missing object 5".
  std::string toString(const ConstraintSystem &CS) const;
};

/// Verification outcome plus work counters.
struct CheckReport {
  std::vector<CheckViolation> Violations;
  uint64_t ConstraintsChecked = 0;
  /// Subset containments evaluated (copy, and per-pointee load/store).
  uint64_t SubsetChecks = 0;

  bool ok() const { return Violations.empty(); }

  /// "certified: N constraints, M subset checks" or
  /// "FAILED: K violations (first: ...)".
  std::string summary(const ConstraintSystem &CS) const;
};

struct CheckOptions {
  /// Stop collecting after this many violations (the pass still visits
  /// every constraint; this only bounds report size). 0 means unbounded.
  size_t MaxViolations = 16;
};

/// Certifies \p Sol as a fixed point of \p CS (see file comment).
CheckReport checkSolution(const ConstraintSystem &CS,
                          const PointsToSolution &Sol,
                          const CheckOptions &Opts = CheckOptions());

/// Verifies pts_Big(v) ⊇ pts_Small(v) for every node — the soundness
/// contract between a fallback/over-approximate solution and a precise
/// one. Both solutions must cover the same node count.
CheckReport checkSuperset(const PointsToSolution &Big,
                          const PointsToSolution &Small,
                          const CheckOptions &Opts = CheckOptions());

} // namespace ag

#endif // AG_CHECK_SOLUTIONCHECKER_H
