//===- SolutionChecker.cpp - Independent fixed-point verification ---------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "check/SolutionChecker.h"

#include "obs/TraceRecorder.h"

using namespace ag;

namespace {

/// Two-pointer subset probe over ascending element streams. On failure
/// \p MissingOut names the first element of \p Small absent from \p Big.
bool isSubset(const SparseBitVector &Small, const SparseBitVector &Big,
              uint32_t &MissingOut) {
  auto BI = Big.begin(), BE = Big.end();
  for (uint32_t V : Small) {
    while (BI != BE && *BI < V)
      ++BI;
    if (BI == BE || *BI != V) {
      MissingOut = V;
      return false;
    }
  }
  return true;
}

class Collector {
public:
  Collector(CheckReport &Report, const CheckOptions &Opts)
      : Report(Report), Opts(Opts) {}

  void add(CheckViolation V) {
    if (Opts.MaxViolations == 0 ||
        Report.Violations.size() < Opts.MaxViolations)
      Report.Violations.push_back(V);
    else
      ++Dropped;
  }

private:
  CheckReport &Report;
  const CheckOptions &Opts;
  uint64_t Dropped = 0;
};

} // namespace

std::string CheckViolation::toString(const ConstraintSystem &CS) const {
  auto NodeStr = [&](NodeId N) {
    std::string S = "n" + std::to_string(N);
    if (N < CS.numNodes() && !CS.nameOf(N).empty())
      S += "(" + CS.nameOf(N) + ")";
    return S;
  };
  switch (What) {
  case Kind::RepRange:
    return "rep table: rep(" + NodeStr(Node) + ") = " +
           std::to_string(Witness) + " is out of range";
  case Kind::RepIdempotent:
    return "rep table: rep(" + NodeStr(Node) + ") = " + NodeStr(Witness) +
           " is not itself a representative";
  case Kind::AddressOf:
  case Kind::Copy:
  case Kind::Load:
  case Kind::Store: {
    const Constraint &C = CS.constraints()[ConstraintIndex];
    return std::string(constraintKindName(C.Kind)) + " #" +
           std::to_string(ConstraintIndex) + " (" + NodeStr(C.Dst) +
           " <- " + NodeStr(C.Src) +
           (C.Offset ? " +" + std::to_string(C.Offset) : "") +
           "): pts(" + NodeStr(Node) + ") is missing object " +
           NodeStr(Witness);
  }
  case Kind::Superset:
    return "superset: pts(" + NodeStr(Node) + ") lost object " +
           NodeStr(Witness);
  }
  return "?";
}

std::string CheckReport::summary(const ConstraintSystem &CS) const {
  if (ok())
    return "certified: " + std::to_string(ConstraintsChecked) +
           " constraints, " + std::to_string(SubsetChecks) +
           " subset checks";
  std::string Out =
      "FAILED: " + std::to_string(Violations.size()) + " violation" +
      (Violations.size() == 1 ? "" : "s") +
      " (first: " + Violations.front().toString(CS) + ")";
  return Out;
}

CheckReport ag::checkSolution(const ConstraintSystem &CS,
                              const PointsToSolution &Sol,
                              const CheckOptions &Opts) {
  obs::TraceSpan Span("check_solution", "check");
  CheckReport Report;
  Collector Out(Report, Opts);
  const uint32_t N = CS.numNodes();

  if (Sol.numNodes() != N) {
    Out.add({CheckViolation::Kind::RepRange, 0, InvalidNode,
             Sol.numNodes()});
    return Report;
  }

  // Structural pass: the rep table must map into range and be idempotent
  // (every query routes through it, so a broken table poisons everything).
  for (NodeId V = 0; V != N; ++V) {
    NodeId R = Sol.repOf(V);
    if (R >= N) {
      Out.add({CheckViolation::Kind::RepRange, 0, V, R});
      continue;
    }
    if (Sol.repOf(R) != R)
      Out.add({CheckViolation::Kind::RepIdempotent, 0, V, R});
  }
  if (!Report.ok())
    return Report; // Closure rules assume a sane rep table.

  // Closure pass: one visit per constraint, subset merges against the
  // final sets only.
  const std::vector<Constraint> &Cons = CS.constraints();
  for (size_t I = 0; I != Cons.size(); ++I) {
    const Constraint &C = Cons[I];
    ++Report.ConstraintsChecked;
    uint32_t Missing = 0;
    switch (C.Kind) {
    case ConstraintKind::AddressOf:
      if (!Sol.pointsTo(C.Dst).test(C.Src))
        Out.add({CheckViolation::Kind::AddressOf, I, C.Dst, C.Src});
      break;
    case ConstraintKind::Copy:
      ++Report.SubsetChecks;
      if (!isSubset(Sol.pointsTo(C.Src), Sol.pointsTo(C.Dst), Missing))
        Out.add({CheckViolation::Kind::Copy, I, C.Dst, Missing});
      break;
    case ConstraintKind::Load:
      // a = *(b+k): every slot reachable through pts(b) must flow into a.
      for (uint32_t V : Sol.pointsTo(C.Src)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T == InvalidNode)
          continue;
        ++Report.SubsetChecks;
        if (!isSubset(Sol.pointsTo(T), Sol.pointsTo(C.Dst), Missing))
          Out.add({CheckViolation::Kind::Load, I, C.Dst, Missing});
      }
      break;
    case ConstraintKind::Store:
      // *(a+k) = b: b must flow into every slot reachable through pts(a).
      for (uint32_t V : Sol.pointsTo(C.Dst)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T == InvalidNode)
          continue;
        ++Report.SubsetChecks;
        if (!isSubset(Sol.pointsTo(C.Src), Sol.pointsTo(T), Missing))
          Out.add({CheckViolation::Kind::Store, I, T, Missing});
      }
      break;
    }
  }
  return Report;
}

CheckReport ag::checkSuperset(const PointsToSolution &Big,
                              const PointsToSolution &Small,
                              const CheckOptions &Opts) {
  CheckReport Report;
  Collector Out(Report, Opts);
  const uint32_t N = Small.numNodes();
  if (Big.numNodes() != N) {
    Out.add({CheckViolation::Kind::RepRange, 0, InvalidNode,
             Big.numNodes()});
    return Report;
  }
  for (NodeId V = 0; V != N; ++V) {
    ++Report.SubsetChecks;
    uint32_t Missing = 0;
    if (!isSubset(Small.pointsTo(V), Big.pointsTo(V), Missing))
      Out.add({CheckViolation::Kind::Superset, 0, V, Missing});
  }
  return Report;
}
