//===- Differential.h - Cross-solver differential testing ------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A differential harness over the solver matrix: run two solver
/// configurations (kind x representation x thread count) on the same
/// constraint system and compare solutions element-for-element. Inclusion-
/// based analysis has a unique least fixpoint, so any divergence between
/// two precise solvers is a bug in one of them — the strongest oracle this
/// codebase has, and the one the paper's own evaluation implicitly relies
/// on when it reports identical precision across algorithms.
///
/// When a mismatch is found, a greedy delta-debugging reducer shrinks the
/// constraint list to a (1-minimal) reproducer: it repeatedly tries
/// dropping chunks of constraints, keeping any removal that preserves the
/// mismatch, halving the chunk size until single constraints. Reduced
/// systems keep the full node table (cloneNodeTable), so node ids in the
/// reproducer match the original — the usual last mile of debugging a
/// solver divergence is exactly this loop, done by hand.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CHECK_DIFFERENTIAL_H
#define AG_CHECK_DIFFERENTIAL_H

#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"
#include "core/Solver.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ag {

/// A solver under differential test: any function from a constraint
/// system to a solution (typically solveFnFor, or a deliberately broken
/// wrapper in the harness's own tests).
using SolveFn = std::function<PointsToSolution(const ConstraintSystem &)>;

/// The canonical pipeline under test: OVS-reduce, then solve \p Kind /
/// \p Repr with the substitution seeds (exactly what ptatool solve and
/// snapshot do). \p Threads routes LCD kinds through the parallel solver.
SolveFn solveFnFor(SolverKind Kind, PtsRepr Repr, unsigned Threads = 0);

/// First divergence between two solutions of the same system.
struct DiffResult {
  bool Mismatch = false;
  NodeId Node = InvalidNode;          ///< First differing node.
  std::vector<NodeId> OnlyInA, OnlyInB; ///< Set difference at Node (capped).

  std::string toString() const;
};

/// Element-wise comparison (routed through each solution's rep table, so
/// different collapse histories with equal sets compare equal).
DiffResult diffSolutions(const PointsToSolution &A,
                         const PointsToSolution &B);

struct ReduceOptions {
  /// Ceiling on solver invocations the reducer may spend. The greedy pass
  /// re-runs both solvers per candidate removal; 0 disables reduction.
  uint32_t MaxSolves = 4000;
};

/// Differential run outcome.
struct DifferentialReport {
  DiffResult Diff;               ///< Mismatch info on the *original* system.
  ConstraintSystem Reduced;      ///< Minimal reproducer (when Diff.Mismatch).
  DiffResult ReducedDiff;        ///< Divergence on the reproducer.
  uint32_t SolverRuns = 0;       ///< Total solve invocations spent.
  bool ReductionComplete = false; ///< False if MaxSolves stopped the shrink.
};

/// Runs \p A and \p B on \p CS; on divergence shrinks the constraint list
/// with greedy delta debugging (see file comment).
DifferentialReport runDifferential(const ConstraintSystem &CS,
                                   const SolveFn &A, const SolveFn &B,
                                   const ReduceOptions &Opts =
                                       ReduceOptions());

} // namespace ag

#endif // AG_CHECK_DIFFERENTIAL_H
