//===- Differential.cpp - Cross-solver differential testing --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "check/Differential.h"

#include "constraints/OfflineVariableSubstitution.h"
#include "obs/FlightRecorder.h"
#include "solvers/Solve.h"

#include <algorithm>

using namespace ag;

SolveFn ag::solveFnFor(SolverKind Kind, PtsRepr Repr, unsigned Threads) {
  return [Kind, Repr, Threads](const ConstraintSystem &CS) {
    OvsResult Ovs = runOfflineVariableSubstitution(CS);
    SolverOptions Opts;
    Opts.Threads = Threads;
    return solve(Ovs.Reduced, Kind, Repr, nullptr, Opts, &Ovs.Rep);
  };
}

std::string DiffResult::toString() const {
  if (!Mismatch)
    return "solutions agree";
  std::string Out = "mismatch at node " + std::to_string(Node) + ":";
  auto Append = [&](const char *Tag, const std::vector<NodeId> &Ids) {
    if (Ids.empty())
      return;
    Out += std::string(" ") + Tag + " {";
    for (size_t I = 0; I != Ids.size(); ++I)
      Out += (I ? "," : "") + std::to_string(Ids[I]);
    Out += "}";
  };
  Append("only-A", OnlyInA);
  Append("only-B", OnlyInB);
  return Out;
}

DiffResult ag::diffSolutions(const PointsToSolution &A,
                             const PointsToSolution &B) {
  DiffResult R;
  const uint32_t N = A.numNodes();
  if (B.numNodes() != N) {
    R.Mismatch = true;
    R.Node = std::min(N, B.numNodes());
    return R;
  }
  constexpr size_t MaxListed = 8;
  for (NodeId V = 0; V != N; ++V) {
    const SparseBitVector &SA = A.pointsTo(V);
    const SparseBitVector &SB = B.pointsTo(V);
    if (SA == SB)
      continue;
    R.Mismatch = true;
    R.Node = V;
    // Two-pointer walk to report the symmetric difference (capped).
    auto IA = SA.begin(), EA = SA.end();
    auto IB = SB.begin(), EB = SB.end();
    while ((IA != EA || IB != EB) &&
           R.OnlyInA.size() + R.OnlyInB.size() < MaxListed) {
      if (IB == EB || (IA != EA && *IA < *IB))
        R.OnlyInA.push_back(*IA++);
      else if (IA == EA || *IB < *IA)
        R.OnlyInB.push_back(*IB++);
      else {
        ++IA;
        ++IB;
      }
    }
    return R;
  }
  return R;
}

namespace {

/// Rebuilds a system with the original node table and \p Keep's subset of
/// \p Cons, preserving order (constraint order is solver-visible through
/// worklist scheduling, so the reproducer must not permute it).
ConstraintSystem subsetSystem(const ConstraintSystem &Full,
                              const std::vector<Constraint> &Cons,
                              const std::vector<bool> &Keep) {
  ConstraintSystem Out = Full.cloneNodeTable();
  for (size_t I = 0; I != Cons.size(); ++I)
    if (Keep[I])
      Out.add(Cons[I]);
  return Out;
}

} // namespace

DifferentialReport ag::runDifferential(const ConstraintSystem &CS,
                                       const SolveFn &A, const SolveFn &B,
                                       const ReduceOptions &Opts) {
  DifferentialReport Report;
  auto Mismatches = [&](const ConstraintSystem &Sys) {
    Report.SolverRuns += 2;
    return diffSolutions(A(Sys), B(Sys)).Mismatch;
  };

  Report.Diff = diffSolutions(A(CS), B(CS));
  Report.SolverRuns = 2;
  if (!Report.Diff.Mismatch) {
    Report.ReductionComplete = true;
    return Report;
  }
  obs::flight("differential_mismatch", Report.Diff.Node);

  const std::vector<Constraint> &Cons = CS.constraints();
  std::vector<bool> Keep(Cons.size(), true);
  size_t Alive = Cons.size();

  if (Opts.MaxSolves == 0) {
    Report.Reduced = subsetSystem(CS, Cons, Keep);
    Report.ReducedDiff = Report.Diff;
    return Report;
  }

  // Greedy ddmin: try removing chunks, keep removals that preserve the
  // mismatch, halve the chunk until single constraints survive a full
  // sweep untouched.
  size_t Chunk = std::max<size_t>(1, (Alive + 1) / 2);
  bool Budgeted = true;
  while (Budgeted) {
    bool AnyRemoved = false;
    for (size_t Start = 0; Start < Cons.size() && Budgeted;) {
      // Collect the next Chunk alive constraints from Start.
      std::vector<size_t> Candidate;
      size_t I = Start;
      for (; I < Cons.size() && Candidate.size() < Chunk; ++I)
        if (Keep[I])
          Candidate.push_back(I);
      Start = I;
      if (Candidate.empty())
        break;
      if (Report.SolverRuns + 2 > Opts.MaxSolves) {
        Budgeted = false;
        break;
      }
      for (size_t J : Candidate)
        Keep[J] = false;
      if (Mismatches(subsetSystem(CS, Cons, Keep))) {
        Alive -= Candidate.size();
        AnyRemoved = true;
      } else {
        for (size_t J : Candidate)
          Keep[J] = true;
      }
    }
    if (Chunk > 1)
      Chunk = (Chunk + 1) / 2;
    else if (!AnyRemoved)
      break; // 1-minimal: no single constraint can be dropped.
  }
  Report.ReductionComplete = Budgeted;

  Report.Reduced = subsetSystem(CS, Cons, Keep);
  Report.ReducedDiff = diffSolutions(A(Report.Reduced), B(Report.Reduced));
  Report.SolverRuns += 2;
  obs::flight("differential_reduced", Alive, Report.SolverRuns);
  return Report;
}
