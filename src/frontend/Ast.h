//===- Ast.h - Mini-C abstract syntax ---------------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the mini-C subset. The pointer analysis is flow-insensitive and
/// field-insensitive, so the AST keeps only what constraint generation
/// needs: declarations with pointer depth, assignment structure, address-of
/// and dereference shapes, and calls (direct and through pointers).
///
//===----------------------------------------------------------------------===//

#ifndef AG_FRONTEND_AST_H
#define AG_FRONTEND_AST_H

#include "frontend/Token.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ag {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression forms.
enum class ExprKind : uint8_t {
  Identifier, ///< Name reference.
  Number,     ///< Integer literal (value irrelevant).
  StringLit,  ///< String literal (a distinct memory object).
  Null,       ///< NULL.
  AddressOf,  ///< &lhs.
  Deref,      ///< *lhs.
  Member,     ///< lhs.Field (field-insensitive: same as lhs).
  Arrow,      ///< lhs->Field (field-insensitive: same as *lhs).
  Index,      ///< lhs[rhs] (treated as *lhs).
  Assign,     ///< lhs = rhs.
  Call,       ///< Callee(Args...). Callee is an expression.
  Binary,     ///< lhs op rhs (only pointer flow matters: merge).
  Unary,      ///< op lhs (!, -, ++, --, sizeof): no pointer value.
  Ternary,    ///< Cond ? lhs : rhs.
  Comma,      ///< lhs, rhs.
};

struct Expr {
  ExprKind Kind;
  uint32_t Line = 0;
  TokenKind Op = TokenKind::Eof; ///< Operator for Binary expressions.
  std::string Name;  ///< Identifier / member field name.
  ExprPtr Lhs;       ///< First operand (also Callee for Call).
  ExprPtr Rhs;       ///< Second operand.
  ExprPtr Cond;      ///< Ternary condition.
  std::vector<ExprPtr> Args; ///< Call arguments.

  explicit Expr(ExprKind Kind, uint32_t Line = 0)
      : Kind(Kind), Line(Line) {}
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Variable declaration: pointer depth counts '*'s; IsArray marks `x[N]`.
struct VarDecl {
  std::string Name;
  uint32_t PointerDepth = 0;
  bool IsArray = false;
  ExprPtr Init; ///< Optional initializer expression.
  uint32_t Line = 0;
};

/// Statement forms.
enum class StmtKind : uint8_t {
  ExprStmt, ///< E;
  Decl,     ///< Local declarations.
  Block,    ///< { ... }
  If,       ///< if (Cond) Then [else Else]
  While,    ///< while (Cond) Body
  For,      ///< for (Init; Cond; Step) Body
  Return,   ///< return [E];
};

struct Stmt {
  StmtKind Kind;
  uint32_t Line = 0;
  ExprPtr E;          ///< ExprStmt / Return value / If-While cond.
  ExprPtr E2;         ///< For step.
  StmtPtr Body;       ///< Loop body / If then.
  StmtPtr Else;       ///< If else.
  StmtPtr InitStmt;   ///< For init.
  std::vector<StmtPtr> Stmts;    ///< Block members.
  std::vector<VarDecl> Decls;    ///< Decl members.

  explicit Stmt(StmtKind Kind, uint32_t Line = 0)
      : Kind(Kind), Line(Line) {}
};

/// Function definition or extern declaration.
struct FunctionDecl {
  std::string Name;
  std::vector<VarDecl> Params;
  StmtPtr Body; ///< Null for a prototype.
  uint32_t Line = 0;
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<VarDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace ag

#endif // AG_FRONTEND_AST_H
