//===- ConstraintGen.h - Mini-C to inclusion constraints --------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed mini-C translation unit to inclusion constraints: the
/// stand-in for the paper's CIL-based constraint generator. Flow- and
/// field-insensitive: control flow is ignored; `x.f` is treated as `x` and
/// `p->f` as `*p`. Nested dereferences are flattened through fresh
/// temporaries so each constraint has at most one dereference (Table 1).
/// Each variable is one node (its storage is its object identity); malloc
/// family calls make one heap object per call site; string literals make
/// one object per literal. External library calls are summarized with
/// hand-crafted stubs (malloc/calloc/realloc/strdup, memcpy/strcpy/strncpy,
/// free, and a coarse catch-all for unknown externs), following the paper.
///
//===----------------------------------------------------------------------===//

#ifndef AG_FRONTEND_CONSTRAINTGEN_H
#define AG_FRONTEND_CONSTRAINTGEN_H

#include "constraints/ConstraintSystem.h"
#include "frontend/Ast.h"

#include <map>
#include <string>

namespace ag {

/// Frontend modes.
struct FrontendOptions {
  /// Field-based analysis (paper footnote 2): assignments to x.f, y.f and
  /// (*z).f are all treated as assignments to one variable `f`. This
  /// shrinks the input and the number of dereferenced variables — and is
  /// UNSOUND for C, which is why the paper's evaluation uses the
  /// field-insensitive mode (the default here).
  bool FieldBased = false;
};

/// Output of constraint generation.
struct GeneratedConstraints {
  ConstraintSystem CS;
  /// Variable nodes by name: globals as "name", locals and parameters as
  /// "function::name". Lets clients (alias queries, tests) find nodes.
  std::map<std::string, NodeId> Variables;
  /// Function object nodes by name.
  std::map<std::string, NodeId> Functions;
  /// Heap objects by allocation site label ("function:line").
  std::map<std::string, NodeId> HeapObjects;
};

/// Generates constraints for \p TU. \returns false and fills \p Error on
/// semantic errors (undeclared identifiers, unassignable left-hand sides).
bool generateConstraints(const TranslationUnit &TU,
                         GeneratedConstraints &Out, std::string &Error,
                         const FrontendOptions &Options = FrontendOptions());

/// Convenience: lex + parse + generate from source text.
bool generateConstraintsFromSource(const std::string &Source,
                                   GeneratedConstraints &Out,
                                   std::string &Error,
                                   const FrontendOptions &Options =
                                       FrontendOptions());

} // namespace ag

#endif // AG_FRONTEND_CONSTRAINTGEN_H
