//===- Lexer.cpp - Mini-C lexer -------------------------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace ag;

const char *ag::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwLong:
    return "'long'";
  case TokenKind::KwUnsigned:
    return "'unsigned'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwNull:
    return "'NULL'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  }
  return "?";
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t StartLine = Line;
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Error = "line " + std::to_string(StartLine) +
                  ": unterminated block comment";
          return false;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    // Preprocessor lines are skipped wholesale (the subset has no macros).
    if (C == '#' && Column == 1) {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    return true;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Line = Line;
  T.Column = Column;
  return T;
}

bool Lexer::lexOne(Token &Out) {
  if (!skipWhitespaceAndComments())
    return false;
  uint32_t TokLine = Line, TokCol = Column;
  auto finish = [&](TokenKind Kind, std::string Text = "") {
    Out.Kind = Kind;
    Out.Text = std::move(Text);
    Out.Line = TokLine;
    Out.Column = TokCol;
    return true;
  };

  char C = peek();
  if (C == '\0')
    return finish(TokenKind::Eof);

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Word;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_')
      Word += advance();
    static const std::unordered_map<std::string, TokenKind> Keywords = {
        {"int", TokenKind::KwInt},       {"char", TokenKind::KwChar},
        {"void", TokenKind::KwVoid},     {"long", TokenKind::KwLong},
        {"unsigned", TokenKind::KwUnsigned},
        {"struct", TokenKind::KwStruct}, {"if", TokenKind::KwIf},
        {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
        {"for", TokenKind::KwFor},       {"return", TokenKind::KwReturn},
        {"sizeof", TokenKind::KwSizeof}, {"NULL", TokenKind::KwNull},
        {"extern", TokenKind::KwExtern}, {"static", TokenKind::KwStatic},
    };
    auto It = Keywords.find(Word);
    if (It != Keywords.end())
      return finish(It->second, std::move(Word));
    return finish(TokenKind::Identifier, std::move(Word));
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    std::string Num;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '.')
      Num += advance(); // Accept suffixes/hex loosely; value is unused.
    return finish(TokenKind::Number, std::move(Num));
  }

  if (C == '"' || C == '\'') {
    char Quote = advance();
    std::string Body;
    while (peek() != Quote) {
      if (peek() == '\0') {
        Error = "line " + std::to_string(TokLine) +
                ": unterminated literal";
        return false;
      }
      if (peek() == '\\')
        Body += advance();
      Body += advance();
    }
    advance();
    return finish(TokenKind::String, std::move(Body));
  }

  advance();
  switch (C) {
  case '(':
    return finish(TokenKind::LParen);
  case ')':
    return finish(TokenKind::RParen);
  case '{':
    return finish(TokenKind::LBrace);
  case '}':
    return finish(TokenKind::RBrace);
  case '[':
    return finish(TokenKind::LBracket);
  case ']':
    return finish(TokenKind::RBracket);
  case ';':
    return finish(TokenKind::Semicolon);
  case ',':
    return finish(TokenKind::Comma);
  case '*':
    return finish(TokenKind::Star);
  case '%':
    return finish(TokenKind::Percent);
  case '.':
    return finish(TokenKind::Dot);
  case '?':
    return finish(TokenKind::Question);
  case ':':
    return finish(TokenKind::Colon);
  case '/':
    return finish(TokenKind::Slash);
  case '&':
    if (peek() == '&') {
      advance();
      return finish(TokenKind::AmpAmp);
    }
    return finish(TokenKind::Amp);
  case '|':
    if (peek() == '|') {
      advance();
      return finish(TokenKind::PipePipe);
    }
    Error = "line " + std::to_string(TokLine) + ": unsupported '|'";
    return false;
  case '=':
    if (peek() == '=') {
      advance();
      return finish(TokenKind::EqEq);
    }
    return finish(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      advance();
      return finish(TokenKind::NotEq);
    }
    return finish(TokenKind::Not);
  case '<':
    if (peek() == '=') {
      advance();
      return finish(TokenKind::LessEq);
    }
    return finish(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      advance();
      return finish(TokenKind::GreaterEq);
    }
    return finish(TokenKind::Greater);
  case '+':
    if (peek() == '+') {
      advance();
      return finish(TokenKind::PlusPlus);
    }
    return finish(TokenKind::Plus);
  case '-':
    if (peek() == '>') {
      advance();
      return finish(TokenKind::Arrow);
    }
    if (peek() == '-') {
      advance();
      return finish(TokenKind::MinusMinus);
    }
    return finish(TokenKind::Minus);
  default:
    Error = "line " + std::to_string(TokLine) + ": unexpected character '" +
            std::string(1, C) + "'";
    return false;
  }
}

bool Lexer::lexAll(std::vector<Token> &Out) {
  for (;;) {
    Token T;
    if (!lexOne(T))
      return false;
    Out.push_back(T);
    if (T.Kind == TokenKind::Eof)
      return true;
  }
}
