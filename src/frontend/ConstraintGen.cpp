//===- ConstraintGen.cpp - Mini-C to inclusion constraints ----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintGen.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include <cassert>
#include <set>
#include <vector>

using namespace ag;

namespace {

/// Walks the AST and emits constraints.
class Generator {
public:
  Generator(const TranslationUnit &TU, GeneratedConstraints &Out,
            const FrontendOptions &Options)
      : TU(TU), Out(Out), CS(Out.CS), Options(Options) {}

  bool run(std::string &Error);

private:
  /// An lvalue is either a variable node or one dereference of a value.
  struct LValue {
    NodeId Base = InvalidNode;
    bool Deref = false;
  };

  bool declareTopLevel();
  bool genFunctionBody(const FunctionDecl &F);
  bool genStmt(const Stmt &S);
  bool genDecl(const VarDecl &D, bool IsGlobal);

  /// Evaluates \p E for its pointer value; returns the node holding it,
  /// or InvalidNode after setting Error.
  NodeId genExpr(const Expr &E);
  /// Resolves \p E as an assignable location.
  bool genLValue(const Expr &E, LValue &Out);
  NodeId genCall(const Expr &E);

  NodeId freshTemp(const char *Tag) {
    return CS.addNode(std::string("tmp.") + Tag);
  }

  bool fail(uint32_t Line, const std::string &Message) {
    if (ErrorOut && ErrorOut->empty())
      *ErrorOut = "line " + std::to_string(Line) + ": " + Message;
    return false;
  }

  /// Field-based mode: one global variable per field name.
  NodeId fieldVar(const std::string &Name) {
    auto [It, New] = FieldVars.try_emplace(Name, InvalidNode);
    if (New) {
      It->second = CS.addNode("field." + Name);
      Out.Variables.try_emplace("field::" + Name, It->second);
    }
    return It->second;
  }

  NodeId lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return InvalidNode;
  }

  void define(const std::string &Name, NodeId Node) {
    Scopes.back()[Name] = Node;
    std::string Qualified =
        CurrentFunction.empty() ? Name : CurrentFunction + "::" + Name;
    // First definition wins in the client-facing map (shadowing in inner
    // scopes keeps the outer entry).
    Out.Variables.try_emplace(Qualified, Node);
  }

  /// Built-in summaries for library functions. \returns true if handled,
  /// storing the call's value in \p Value.
  bool genBuiltinCall(const Expr &E, const std::string &Callee,
                      NodeId &Value);

  /// Coarse summary node pair for an unknown extern function.
  NodeId externBlobVar(const std::string &Callee);

  const TranslationUnit &TU;
  GeneratedConstraints &Out;
  ConstraintSystem &CS;
  FrontendOptions Options;
  std::string *ErrorOut = nullptr;
  std::map<std::string, NodeId> FieldVars; ///< Field-based mode only.

  std::vector<std::map<std::string, NodeId>> Scopes;
  std::string CurrentFunction;
  NodeId CurrentFunctionObj = InvalidNode;
  NodeId ZeroNode = InvalidNode; ///< Shared empty value (NULL, ints).
  std::map<std::string, NodeId> ExternBlobs;
  std::set<NodeId> ArrayNodes; ///< Array variables decay to &node.
  unsigned StringCount = 0;
};

bool Generator::declareTopLevel() {
  Scopes.emplace_back(); // Global scope.

  // Functions first so globals' initializers and all bodies can reference
  // them; duplicates (prototype then definition) share one object.
  for (const FunctionDecl &F : TU.Functions) {
    if (Out.Functions.count(F.Name))
      continue;
    NodeId Obj = CS.addFunction(
        F.Name, static_cast<uint32_t>(F.Params.size()));
    Out.Functions[F.Name] = Obj;
  }
  for (const VarDecl &G : TU.Globals)
    if (!genDecl(G, /*IsGlobal=*/true))
      return false;
  return true;
}

bool Generator::genDecl(const VarDecl &D, bool IsGlobal) {
  NodeId Node = CS.addNode(
      (CurrentFunction.empty() ? "" : CurrentFunction + "::") + D.Name);
  define(D.Name, Node);
  if (D.IsArray)
    ArrayNodes.insert(Node);
  if (D.Init) {
    NodeId V = genExpr(*D.Init);
    if (V == InvalidNode)
      return false;
    CS.addCopy(Node, V);
  }
  (void)IsGlobal;
  return true;
}

bool Generator::run(std::string &Error) {
  ErrorOut = &Error;
  ZeroNode = CS.addNode("zero");
  if (!declareTopLevel())
    return false;
  for (const FunctionDecl &F : TU.Functions)
    if (F.Body && !genFunctionBody(F))
      return false;
  return true;
}

bool Generator::genFunctionBody(const FunctionDecl &F) {
  CurrentFunction = F.Name;
  CurrentFunctionObj = Out.Functions.at(F.Name);
  Scopes.emplace_back(); // Parameter scope.
  for (uint32_t I = 0; I != F.Params.size(); ++I)
    if (!F.Params[I].Name.empty())
      define(F.Params[I].Name,
             CurrentFunctionObj + ConstraintSystem::FunctionParamOffset +
                 I);
  bool Ok = genStmt(*F.Body);
  Scopes.pop_back();
  CurrentFunction.clear();
  CurrentFunctionObj = InvalidNode;
  return Ok;
}

bool Generator::genStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::ExprStmt:
    return genExpr(*S.E) != InvalidNode;
  case StmtKind::Decl:
    for (const VarDecl &D : S.Decls)
      if (!genDecl(D, /*IsGlobal=*/false))
        return false;
    return true;
  case StmtKind::Block: {
    Scopes.emplace_back();
    for (const StmtPtr &Sub : S.Stmts)
      if (!genStmt(*Sub)) {
        Scopes.pop_back();
        return false;
      }
    Scopes.pop_back();
    return true;
  }
  case StmtKind::If:
    if (genExpr(*S.E) == InvalidNode)
      return false;
    if (!genStmt(*S.Body))
      return false;
    if (S.Else && !genStmt(*S.Else))
      return false;
    return true;
  case StmtKind::While:
    if (genExpr(*S.E) == InvalidNode)
      return false;
    return genStmt(*S.Body);
  case StmtKind::For:
    if (S.InitStmt && !genStmt(*S.InitStmt))
      return false;
    if (S.E && genExpr(*S.E) == InvalidNode)
      return false;
    if (S.E2 && genExpr(*S.E2) == InvalidNode)
      return false;
    return genStmt(*S.Body);
  case StmtKind::Return:
    if (S.E) {
      NodeId V = genExpr(*S.E);
      if (V == InvalidNode)
        return false;
      assert(CurrentFunctionObj != InvalidNode && "return outside function");
      CS.addCopy(CurrentFunctionObj +
                     ConstraintSystem::FunctionReturnOffset,
                 V);
    }
    return true;
  }
  assert(false && "unhandled statement kind");
  return false;
}

bool Generator::genLValue(const Expr &E, LValue &LV) {
  switch (E.Kind) {
  case ExprKind::Identifier: {
    NodeId N = lookup(E.Name);
    if (N == InvalidNode)
      return fail(E.Line, "use of undeclared identifier '" + E.Name + "'");
    LV = LValue{N, false};
    return true;
  }
  case ExprKind::Deref: {
    NodeId Base = genExpr(*E.Lhs);
    if (Base == InvalidNode)
      return false;
    LV = LValue{Base, true};
    return true;
  }
  case ExprKind::Member:
    if (Options.FieldBased) {
      // Field-based: x.f is the one global variable `f` (unsound for C).
      if (genExpr(*E.Lhs) == InvalidNode)
        return false;
      LV = LValue{fieldVar(E.Name), false};
      return true;
    }
    // x.f is x, field-insensitively.
    return genLValue(*E.Lhs, LV);
  case ExprKind::Arrow:
    if (Options.FieldBased) {
      // (*z).f is also just `f` in field-based mode.
      if (genExpr(*E.Lhs) == InvalidNode)
        return false;
      LV = LValue{fieldVar(E.Name), false};
      return true;
    }
    [[fallthrough]];
  case ExprKind::Index: {
    // p->f and p[i] are *p. Index side expressions still evaluate.
    if (E.Kind == ExprKind::Index && E.Rhs &&
        genExpr(*E.Rhs) == InvalidNode)
      return false;
    NodeId Base = genExpr(*E.Lhs);
    if (Base == InvalidNode)
      return false;
    LV = LValue{Base, true};
    return true;
  }
  default:
    return fail(E.Line, "expression is not assignable");
  }
}

NodeId Generator::externBlobVar(const std::string &Callee) {
  auto It = ExternBlobs.find(Callee);
  if (It != ExternBlobs.end())
    return It->second;
  // blobvar points at a blob object; everything passed to the extern is
  // merged into the blob and anything may come back out.
  NodeId BlobObj = CS.addNode("extern." + Callee + ".obj");
  NodeId BlobVar = CS.addNode("extern." + Callee);
  CS.addAddressOf(BlobVar, BlobObj);
  CS.addStore(BlobVar, BlobVar); // The blob may point to itself.
  ExternBlobs[Callee] = BlobVar;
  return BlobVar;
}

bool Generator::genBuiltinCall(const Expr &E, const std::string &Callee,
                               NodeId &Value) {
  auto argValue = [&](size_t I) -> NodeId {
    if (I >= E.Args.size())
      return ZeroNode;
    return genExpr(*E.Args[I]);
  };

  if (Callee == "malloc" || Callee == "calloc" || Callee == "realloc" ||
      Callee == "strdup" || Callee == "alloca") {
    // One abstract heap object per allocation site.
    for (const ExprPtr &Arg : E.Args)
      if (genExpr(*Arg) == InvalidNode)
        return true; // Error already set; Value stays invalid.
    std::string Site = (CurrentFunction.empty() ? "<global>"
                                                : CurrentFunction) +
                       ":" + std::to_string(E.Line);
    NodeId Heap = CS.addNode("heap." + Site);
    Out.HeapObjects.try_emplace(Site, Heap);
    NodeId Tmp = freshTemp("malloc");
    CS.addAddressOf(Tmp, Heap);
    if (Callee == "realloc" && !E.Args.empty()) {
      // realloc may return its argument.
      NodeId Old = argValue(0);
      if (Old == InvalidNode)
        return true;
      CS.addCopy(Tmp, Old);
    }
    Value = Tmp;
    return true;
  }

  if (Callee == "free" || Callee == "assert" || Callee == "printf" ||
      Callee == "abort" || Callee == "exit") {
    // Pointer-effect-free (printf's varargs are unanalyzed reads).
    for (const ExprPtr &Arg : E.Args)
      if (genExpr(*Arg) == InvalidNode)
        return true;
    Value = ZeroNode;
    return true;
  }

  if (Callee == "memcpy" || Callee == "strcpy" || Callee == "strncpy" ||
      Callee == "memmove") {
    // *dst gets *src's pointers; returns dst.
    NodeId Dst = argValue(0);
    NodeId Src = argValue(1);
    if (Dst == InvalidNode || Src == InvalidNode)
      return true;
    for (size_t I = 2; I < E.Args.size(); ++I)
      if (genExpr(*E.Args[I]) == InvalidNode)
        return true;
    NodeId Tmp = freshTemp("memcpy");
    CS.addLoad(Tmp, Src);
    CS.addStore(Dst, Tmp);
    Value = Dst;
    return true;
  }

  return false; // Not a builtin.
}

NodeId Generator::genCall(const Expr &E) {
  // Resolve the callee: a direct call to a known function yields parameter
  // copies; anything else goes through offset dereferences on the callee's
  // points-to set (Pearce-style indirect call handling).
  const Expr &CalleeExpr = *E.Lhs;
  if (CalleeExpr.Kind == ExprKind::Identifier) {
    const std::string &Name = CalleeExpr.Name;
    // Builtins are checked before user functions only when undeclared —
    // defining your own malloc() overrides the stub.
    bool IsUserFunction = Out.Functions.count(Name) > 0;
    if (!IsUserFunction && lookup(Name) == InvalidNode) {
      NodeId Value = InvalidNode;
      if (genBuiltinCall(E, Name, Value))
        return Value;
      // Unknown extern: coarse blob summary.
      NodeId Blob = externBlobVar(Name);
      for (const ExprPtr &Arg : E.Args) {
        NodeId V = genExpr(*Arg);
        if (V == InvalidNode)
          return InvalidNode;
        CS.addCopy(Blob, V);
        CS.addStore(Blob, V);
      }
      return Blob;
    }
    if (IsUserFunction) {
      NodeId F = Out.Functions.at(Name);
      uint32_t NumParams =
          CS.sizeOf(F) - ConstraintSystem::FunctionParamOffset;
      for (uint32_t I = 0; I != E.Args.size(); ++I) {
        NodeId V = genExpr(*E.Args[I]);
        if (V == InvalidNode)
          return InvalidNode;
        if (I < NumParams)
          CS.addCopy(F + ConstraintSystem::FunctionParamOffset + I, V);
      }
      NodeId Ret = freshTemp("ret");
      CS.addCopy(Ret, F + ConstraintSystem::FunctionReturnOffset);
      return Ret;
    }
    // A local/global variable called as a function: indirect call below.
  }

  // Indirect call: evaluate the callee to a function-pointer value.
  NodeId Fp = genExpr(CalleeExpr);
  if (Fp == InvalidNode)
    return InvalidNode;
  for (uint32_t I = 0; I != E.Args.size(); ++I) {
    NodeId V = genExpr(*E.Args[I]);
    if (V == InvalidNode)
      return InvalidNode;
    CS.addStore(Fp, V, ConstraintSystem::FunctionParamOffset + I);
  }
  NodeId Ret = freshTemp("iret");
  CS.addLoad(Ret, Fp, ConstraintSystem::FunctionReturnOffset);
  return Ret;
}

NodeId Generator::genExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Identifier: {
    // Function designators and arrays decay to pointers.
    auto FIt = Out.Functions.find(E.Name);
    if (FIt != Out.Functions.end() && lookup(E.Name) == InvalidNode) {
      NodeId Tmp = freshTemp("fnaddr");
      CS.addAddressOf(Tmp, FIt->second);
      return Tmp;
    }
    NodeId N = lookup(E.Name);
    if (N == InvalidNode) {
      fail(E.Line, "use of undeclared identifier '" + E.Name + "'");
      return InvalidNode;
    }
    if (ArrayNodes.count(N)) {
      // Array-to-pointer decay: the value of `a` is &a.
      NodeId Tmp = freshTemp("decay");
      CS.addAddressOf(Tmp, N);
      return Tmp;
    }
    return N;
  }
  case ExprKind::Number:
  case ExprKind::Null:
    return ZeroNode;
  case ExprKind::StringLit: {
    NodeId Obj = CS.addNode("str." + std::to_string(StringCount++));
    NodeId Tmp = freshTemp("str");
    CS.addAddressOf(Tmp, Obj);
    return Tmp;
  }
  case ExprKind::AddressOf: {
    LValue LV;
    if (!genLValue(*E.Lhs, LV))
      return InvalidNode;
    if (LV.Deref)
      return LV.Base; // &*p == p.
    NodeId Tmp = freshTemp("addr");
    CS.addAddressOf(Tmp, LV.Base);
    return Tmp;
  }
  case ExprKind::Arrow:
    if (Options.FieldBased) {
      if (genExpr(*E.Lhs) == InvalidNode)
        return InvalidNode;
      return fieldVar(E.Name);
    }
    [[fallthrough]];
  case ExprKind::Deref:
  case ExprKind::Index: {
    if (E.Kind == ExprKind::Index && E.Rhs &&
        genExpr(*E.Rhs) == InvalidNode)
      return InvalidNode;
    NodeId Base = genExpr(*E.Lhs);
    if (Base == InvalidNode)
      return InvalidNode;
    NodeId Tmp = freshTemp("load");
    CS.addLoad(Tmp, Base);
    return Tmp;
  }
  case ExprKind::Member:
    if (Options.FieldBased) {
      if (genExpr(*E.Lhs) == InvalidNode)
        return InvalidNode;
      return fieldVar(E.Name);
    }
    return genExpr(*E.Lhs); // x.f is x.
  case ExprKind::Assign: {
    NodeId V = genExpr(*E.Rhs);
    if (V == InvalidNode)
      return InvalidNode;
    LValue LV;
    if (!genLValue(*E.Lhs, LV))
      return InvalidNode;
    if (LV.Deref)
      CS.addStore(LV.Base, V);
    else
      CS.addCopy(LV.Base, V);
    return V;
  }
  case ExprKind::Call:
    return genCall(E);
  case ExprKind::Binary: {
    NodeId L = genExpr(*E.Lhs);
    if (L == InvalidNode)
      return InvalidNode;
    NodeId R = genExpr(*E.Rhs);
    if (R == InvalidNode)
      return InvalidNode;
    // Pointer arithmetic keeps pointing at the same objects
    // (field-insensitive); comparisons and logic yield integers.
    if (E.Op == TokenKind::Plus || E.Op == TokenKind::Minus) {
      NodeId Tmp = freshTemp("arith");
      CS.addCopy(Tmp, L);
      CS.addCopy(Tmp, R);
      return Tmp;
    }
    return ZeroNode;
  }
  case ExprKind::Unary:
    // ++p, -x, !x: the pointer value (if any) is the operand's.
    return genExpr(*E.Lhs);
  case ExprKind::Ternary: {
    if (genExpr(*E.Cond) == InvalidNode)
      return InvalidNode;
    NodeId L = genExpr(*E.Lhs);
    if (L == InvalidNode)
      return InvalidNode;
    NodeId R = genExpr(*E.Rhs);
    if (R == InvalidNode)
      return InvalidNode;
    NodeId Tmp = freshTemp("sel");
    CS.addCopy(Tmp, L);
    CS.addCopy(Tmp, R);
    return Tmp;
  }
  case ExprKind::Comma: {
    if (genExpr(*E.Lhs) == InvalidNode)
      return InvalidNode;
    return genExpr(*E.Rhs);
  }
  }
  assert(false && "unhandled expression kind");
  return InvalidNode;
}

} // namespace

bool ag::generateConstraints(const TranslationUnit &TU,
                             GeneratedConstraints &Out, std::string &Error,
                             const FrontendOptions &Options) {
  Generator G(TU, Out, Options);
  return G.run(Error);
}

bool ag::generateConstraintsFromSource(const std::string &Source,
                                       GeneratedConstraints &Out,
                                       std::string &Error,
                                       const FrontendOptions &Options) {
  Lexer Lex(Source);
  std::vector<Token> Tokens;
  if (!Lex.lexAll(Tokens)) {
    Error = Lex.error();
    return false;
  }
  Parser P(std::move(Tokens));
  TranslationUnit TU;
  if (!P.parseUnit(TU)) {
    Error = P.error();
    return false;
  }
  return generateConstraints(TU, Out, Error, Options);
}
