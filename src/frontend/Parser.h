//===- Parser.h - Mini-C recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#ifndef AG_FRONTEND_PARSER_H
#define AG_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"

#include <string>
#include <vector>

namespace ag {

/// Recursive-descent parser for the mini-C subset:
///
///   unit     := (struct-def | global-decl | function)*
///   function := type stars IDENT '(' params ')' (';' | block)
///   stmt     := decl ';' | expr ';' | block | if | while | for | return
///   expr     := C expression subset (assignment right-associative, calls,
///               unary * & ! - ++ --, member/./->, [], ternary, comma in
///               for-steps, binary arithmetic/comparison)
///
/// Struct definitions are recorded but fields are not tracked (the
/// analysis is field-insensitive).
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens);

  /// Parses a whole translation unit. \returns false and sets error() on
  /// the first syntax error.
  bool parseUnit(TranslationUnit &Out);

  const std::string &error() const { return Error; }

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  bool fail(const std::string &Message);

  /// True if the upcoming tokens start a type (declaration).
  bool atTypeStart() const;
  /// Consumes type keywords (struct tag included). \returns false on error.
  bool parseTypePrefix();

  bool parseGlobalOrFunction(TranslationUnit &Out);
  bool parseDeclarators(std::vector<VarDecl> &Out);
  bool parseBlock(StmtPtr &Out);
  bool parseStmt(StmtPtr &Out);
  ExprPtr parseExpr();           // Comma-free assignment expression.
  ExprPtr parseAssignment();
  ExprPtr parseTernary();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string Error;
};

} // namespace ag

#endif // AG_FRONTEND_PARSER_H
