//===- Parser.cpp - Mini-C recursive-descent parser -----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace ag;

Parser::Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {
  // Token streams normally end with Eof (the lexer guarantees it), but a
  // caller handing us a raw vector may not know that. Synthesize the
  // terminator so peek()/advance() stay in bounds, and record a parse
  // error rather than asserting on the malformed stream.
  if (this->Tokens.empty() || !this->Tokens.back().is(TokenKind::Eof)) {
    Token Eof;
    Eof.Kind = TokenKind::Eof;
    if (!this->Tokens.empty()) {
      Eof.Line = this->Tokens.back().Line;
      Eof.Column = this->Tokens.back().Column;
    }
    this->Tokens.push_back(std::move(Eof));
    fail("token stream did not end with Eof");
  }
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof.
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::fail(const std::string &Message) {
  if (Error.empty())
    Error = "line " + std::to_string(peek().Line) + ": " + Message;
  return false;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  return fail(std::string("expected ") + tokenKindName(Kind) + " " +
              Context + ", found " + tokenKindName(peek().Kind));
}

bool Parser::atTypeStart() const {
  switch (peek().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwChar:
  case TokenKind::KwVoid:
  case TokenKind::KwLong:
  case TokenKind::KwUnsigned:
  case TokenKind::KwStruct:
  case TokenKind::KwExtern:
  case TokenKind::KwStatic:
    return true;
  default:
    return false;
  }
}

bool Parser::parseTypePrefix() {
  // Storage classes.
  while (accept(TokenKind::KwExtern) || accept(TokenKind::KwStatic)) {
  }
  if (accept(TokenKind::KwStruct)) {
    if (!expect(TokenKind::Identifier, "after 'struct'"))
      return false;
    return true;
  }
  bool SawBase = false;
  while (accept(TokenKind::KwInt) || accept(TokenKind::KwChar) ||
         accept(TokenKind::KwVoid) || accept(TokenKind::KwLong) ||
         accept(TokenKind::KwUnsigned))
    SawBase = true;
  if (!SawBase)
    return fail("expected a type");
  return true;
}

bool Parser::parseDeclarators(std::vector<VarDecl> &Out) {
  do {
    VarDecl D;
    D.Line = peek().Line;
    while (accept(TokenKind::Star))
      ++D.PointerDepth;
    if (!check(TokenKind::Identifier))
      return fail("expected identifier in declaration");
    D.Name = advance().Text;
    if (accept(TokenKind::LBracket)) {
      D.IsArray = true;
      accept(TokenKind::Number); // Optional size.
      if (!expect(TokenKind::RBracket, "after array size"))
        return false;
    }
    if (accept(TokenKind::Assign)) {
      D.Init = parseAssignment();
      if (!D.Init)
        return false;
    }
    Out.push_back(std::move(D));
  } while (accept(TokenKind::Comma));
  return true;
}

bool Parser::parseGlobalOrFunction(TranslationUnit &Out) {
  if (accept(TokenKind::KwStruct)) {
    // struct-definition: struct Name { decls... };  (fields ignored) or a
    // struct-typed variable declaration.
    if (!expect(TokenKind::Identifier, "after 'struct'"))
      return false;
    if (accept(TokenKind::LBrace)) {
      // Skip the member list: the analysis is field-insensitive.
      int Depth = 1;
      while (Depth > 0) {
        if (check(TokenKind::Eof))
          return fail("unterminated struct definition");
        if (accept(TokenKind::LBrace))
          ++Depth;
        else if (accept(TokenKind::RBrace))
          --Depth;
        else
          advance();
      }
      if (!expect(TokenKind::Semicolon, "after struct definition"))
        return false;
      return true;
    }
    // Fall through to declarators of a struct-typed variable.
  } else if (!parseTypePrefix()) {
    return false;
  }

  // Distinguish function definitions/prototypes from globals: stars, an
  // identifier, then '('.
  size_t Save = Pos;
  uint32_t Stars = 0;
  while (accept(TokenKind::Star))
    ++Stars;
  if (check(TokenKind::Identifier) &&
      peek(1).is(TokenKind::LParen)) {
    FunctionDecl F;
    F.Line = peek().Line;
    F.Name = advance().Text;
    advance(); // '('
    if (!check(TokenKind::RParen)) {
      do {
        if (accept(TokenKind::KwVoid) && check(TokenKind::RParen))
          break; // (void)
        if (atTypeStart()) {
          if (!parseTypePrefix())
            return false;
        }
        VarDecl P;
        P.Line = peek().Line;
        while (accept(TokenKind::Star))
          ++P.PointerDepth;
        if (check(TokenKind::Identifier))
          P.Name = advance().Text;
        if (accept(TokenKind::LBracket)) {
          P.IsArray = true;
          accept(TokenKind::Number);
          if (!expect(TokenKind::RBracket, "in parameter"))
            return false;
        }
        F.Params.push_back(std::move(P));
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "after parameters"))
      return false;
    if (accept(TokenKind::Semicolon)) {
      Out.Functions.push_back(std::move(F)); // Prototype.
      return true;
    }
    if (!parseBlock(F.Body))
      return false;
    Out.Functions.push_back(std::move(F));
    return true;
  }

  // Global variable declaration(s).
  Pos = Save;
  std::vector<VarDecl> Decls;
  if (!parseDeclarators(Decls))
    return false;
  if (!expect(TokenKind::Semicolon, "after global declaration"))
    return false;
  for (VarDecl &D : Decls)
    Out.Globals.push_back(std::move(D));
  return true;
}

bool Parser::parseUnit(TranslationUnit &Out) {
  // A malformed token stream is diagnosed in the constructor; report it
  // instead of parsing what is known to be truncated input.
  if (!Error.empty())
    return false;
  while (!check(TokenKind::Eof))
    if (!parseGlobalOrFunction(Out))
      return false;
  return true;
}

bool Parser::parseBlock(StmtPtr &Out) {
  if (!expect(TokenKind::LBrace, "to open a block"))
    return false;
  auto Block = std::make_unique<Stmt>(StmtKind::Block, peek().Line);
  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::Eof))
      return fail("unterminated block");
    StmtPtr S;
    if (!parseStmt(S))
      return false;
    Block->Stmts.push_back(std::move(S));
  }
  advance(); // '}'
  Out = std::move(Block);
  return true;
}

bool Parser::parseStmt(StmtPtr &Out) {
  uint32_t Line = peek().Line;
  if (check(TokenKind::LBrace))
    return parseBlock(Out);

  if (atTypeStart() || (check(TokenKind::KwStruct))) {
    auto Decl = std::make_unique<Stmt>(StmtKind::Decl, Line);
    if (!parseTypePrefix())
      return false;
    if (!parseDeclarators(Decl->Decls))
      return false;
    if (!expect(TokenKind::Semicolon, "after declaration"))
      return false;
    Out = std::move(Decl);
    return true;
  }

  if (accept(TokenKind::KwIf)) {
    auto If = std::make_unique<Stmt>(StmtKind::If, Line);
    if (!expect(TokenKind::LParen, "after 'if'"))
      return false;
    If->E = parseExpr();
    if (!If->E)
      return false;
    if (!expect(TokenKind::RParen, "after condition"))
      return false;
    if (!parseStmt(If->Body))
      return false;
    if (accept(TokenKind::KwElse))
      if (!parseStmt(If->Else))
        return false;
    Out = std::move(If);
    return true;
  }

  if (accept(TokenKind::KwWhile)) {
    auto While = std::make_unique<Stmt>(StmtKind::While, Line);
    if (!expect(TokenKind::LParen, "after 'while'"))
      return false;
    While->E = parseExpr();
    if (!While->E)
      return false;
    if (!expect(TokenKind::RParen, "after condition"))
      return false;
    if (!parseStmt(While->Body))
      return false;
    Out = std::move(While);
    return true;
  }

  if (accept(TokenKind::KwFor)) {
    auto For = std::make_unique<Stmt>(StmtKind::For, Line);
    if (!expect(TokenKind::LParen, "after 'for'"))
      return false;
    if (!check(TokenKind::Semicolon)) {
      if (atTypeStart()) {
        auto Decl = std::make_unique<Stmt>(StmtKind::Decl, Line);
        if (!parseTypePrefix() || !parseDeclarators(Decl->Decls))
          return false;
        For->InitStmt = std::move(Decl);
      } else {
        auto ES = std::make_unique<Stmt>(StmtKind::ExprStmt, Line);
        ES->E = parseExpr();
        if (!ES->E)
          return false;
        For->InitStmt = std::move(ES);
      }
    }
    if (!expect(TokenKind::Semicolon, "after for-init"))
      return false;
    if (!check(TokenKind::Semicolon)) {
      For->E = parseExpr();
      if (!For->E)
        return false;
    }
    if (!expect(TokenKind::Semicolon, "after for-condition"))
      return false;
    if (!check(TokenKind::RParen)) {
      For->E2 = parseExpr();
      if (!For->E2)
        return false;
    }
    if (!expect(TokenKind::RParen, "after for-step"))
      return false;
    if (!parseStmt(For->Body))
      return false;
    Out = std::move(For);
    return true;
  }

  if (accept(TokenKind::KwReturn)) {
    auto Ret = std::make_unique<Stmt>(StmtKind::Return, Line);
    if (!check(TokenKind::Semicolon)) {
      Ret->E = parseExpr();
      if (!Ret->E)
        return false;
    }
    if (!expect(TokenKind::Semicolon, "after return"))
      return false;
    Out = std::move(Ret);
    return true;
  }

  if (accept(TokenKind::Semicolon)) {
    Out = std::make_unique<Stmt>(StmtKind::Block, Line); // Empty.
    return true;
  }

  auto ES = std::make_unique<Stmt>(StmtKind::ExprStmt, Line);
  ES->E = parseExpr();
  if (!ES->E)
    return false;
  if (!expect(TokenKind::Semicolon, "after expression"))
    return false;
  Out = std::move(ES);
  return true;
}

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseTernary();
  if (!Lhs)
    return nullptr;
  if (accept(TokenKind::Assign)) {
    auto E = std::make_unique<Expr>(ExprKind::Assign, Lhs->Line);
    E->Lhs = std::move(Lhs);
    E->Rhs = parseAssignment(); // Right-associative.
    if (!E->Rhs)
      return nullptr;
    return E;
  }
  return Lhs;
}

ExprPtr Parser::parseTernary() {
  ExprPtr Cond = parseBinary(0);
  if (!Cond)
    return nullptr;
  if (!accept(TokenKind::Question))
    return Cond;
  auto E = std::make_unique<Expr>(ExprKind::Ternary, Cond->Line);
  E->Cond = std::move(Cond);
  E->Lhs = parseAssignment();
  if (!E->Lhs)
    return nullptr;
  if (!expect(TokenKind::Colon, "in ternary"))
    return nullptr;
  E->Rhs = parseTernary();
  if (!E->Rhs)
    return nullptr;
  return E;
}

static int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEq:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  for (;;) {
    int Prec = binaryPrecedence(peek().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return Lhs;
    TokenKind Op = advance().Kind;
    ExprPtr Rhs = parseBinary(Prec + 1);
    if (!Rhs)
      return nullptr;
    auto E = std::make_unique<Expr>(ExprKind::Binary, Lhs->Line);
    E->Op = Op;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseUnary() {
  uint32_t Line = peek().Line;
  if (accept(TokenKind::Star)) {
    auto E = std::make_unique<Expr>(ExprKind::Deref, Line);
    E->Lhs = parseUnary();
    return E->Lhs ? std::move(E) : nullptr;
  }
  if (accept(TokenKind::Amp)) {
    auto E = std::make_unique<Expr>(ExprKind::AddressOf, Line);
    E->Lhs = parseUnary();
    return E->Lhs ? std::move(E) : nullptr;
  }
  if (accept(TokenKind::Not) || accept(TokenKind::Minus) ||
      accept(TokenKind::Plus) || accept(TokenKind::PlusPlus) ||
      accept(TokenKind::MinusMinus)) {
    auto E = std::make_unique<Expr>(ExprKind::Unary, Line);
    E->Lhs = parseUnary();
    return E->Lhs ? std::move(E) : nullptr;
  }
  if (accept(TokenKind::KwSizeof)) {
    // sizeof(type) or sizeof expr — value is an integer either way.
    if (accept(TokenKind::LParen)) {
      int Depth = 1;
      while (Depth > 0 && !check(TokenKind::Eof)) {
        if (accept(TokenKind::LParen))
          ++Depth;
        else if (accept(TokenKind::RParen))
          --Depth;
        else
          advance();
      }
    } else if (!parseUnary()) {
      return nullptr;
    }
    return std::make_unique<Expr>(ExprKind::Number, Line);
  }
  // Casts: '(' type ... ')' unary.
  if (check(TokenKind::LParen)) {
    TokenKind Next = peek(1).Kind;
    if (Next == TokenKind::KwInt || Next == TokenKind::KwChar ||
        Next == TokenKind::KwVoid || Next == TokenKind::KwLong ||
        Next == TokenKind::KwUnsigned || Next == TokenKind::KwStruct) {
      advance(); // '('
      if (!parseTypePrefix())
        return nullptr;
      while (accept(TokenKind::Star)) {
      }
      if (!expect(TokenKind::RParen, "after cast"))
        return nullptr;
      return parseUnary(); // The cast is a no-op for pointer flow.
    }
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  for (;;) {
    uint32_t Line = peek().Line;
    if (accept(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        fail("expected field name after '.'");
        return nullptr;
      }
      auto M = std::make_unique<Expr>(ExprKind::Member, Line);
      M->Name = advance().Text;
      M->Lhs = std::move(E);
      E = std::move(M);
      continue;
    }
    if (accept(TokenKind::Arrow)) {
      if (!check(TokenKind::Identifier)) {
        fail("expected field name after '->'");
        return nullptr;
      }
      auto M = std::make_unique<Expr>(ExprKind::Arrow, Line);
      M->Name = advance().Text;
      M->Lhs = std::move(E);
      E = std::move(M);
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      auto Ix = std::make_unique<Expr>(ExprKind::Index, Line);
      Ix->Lhs = std::move(E);
      Ix->Rhs = parseExpr();
      if (!Ix->Rhs || !expect(TokenKind::RBracket, "after index"))
        return nullptr;
      E = std::move(Ix);
      continue;
    }
    if (accept(TokenKind::LParen)) {
      auto Call = std::make_unique<Expr>(ExprKind::Call, Line);
      Call->Lhs = std::move(E);
      if (!check(TokenKind::RParen)) {
        do {
          ExprPtr Arg = parseAssignment();
          if (!Arg)
            return nullptr;
          Call->Args.push_back(std::move(Arg));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      E = std::move(Call);
      continue;
    }
    if (accept(TokenKind::PlusPlus) || accept(TokenKind::MinusMinus)) {
      auto U = std::make_unique<Expr>(ExprKind::Unary, Line);
      U->Lhs = std::move(E);
      E = std::move(U);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  uint32_t Line = peek().Line;
  if (check(TokenKind::Identifier)) {
    auto E = std::make_unique<Expr>(ExprKind::Identifier, Line);
    E->Name = advance().Text;
    return E;
  }
  if (check(TokenKind::Number)) {
    advance();
    return std::make_unique<Expr>(ExprKind::Number, Line);
  }
  if (check(TokenKind::String)) {
    auto E = std::make_unique<Expr>(ExprKind::StringLit, Line);
    E->Name = advance().Text;
    return E;
  }
  if (accept(TokenKind::KwNull))
    return std::make_unique<Expr>(ExprKind::Null, Line);
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::RParen, "after parenthesized expression"))
      return nullptr;
    return E;
  }
  fail(std::string("unexpected ") + tokenKindName(peek().Kind) +
       " in expression");
  return nullptr;
}
