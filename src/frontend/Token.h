//===- Token.h - Mini-C token definitions -----------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens for the mini-C frontend that stands in for the paper's CIL-based
/// constraint generator.
///
//===----------------------------------------------------------------------===//

#ifndef AG_FRONTEND_TOKEN_H
#define AG_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace ag {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  Number,
  String,
  // Keywords.
  KwInt,
  KwChar,
  KwVoid,
  KwLong,
  KwUnsigned,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwSizeof,
  KwNull,
  KwExtern,
  KwStatic,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Star,
  Amp,
  Assign,
  Plus,
  Minus,
  Slash,
  Percent,
  Dot,
  Arrow,
  EqEq,
  NotEq,
  Less,
  Greater,
  LessEq,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Not,
  Question,
  Colon,
  PlusPlus,
  MinusMinus,
};

/// Returns a printable name for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token with source position (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text; ///< Identifier spelling / number text / string body.
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace ag

#endif // AG_FRONTEND_TOKEN_H
