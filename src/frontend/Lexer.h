//===- Lexer.h - Mini-C lexer -----------------------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#ifndef AG_FRONTEND_LEXER_H
#define AG_FRONTEND_LEXER_H

#include "frontend/Token.h"

#include <string>
#include <vector>

namespace ag {

/// Hand-written lexer for the mini-C subset. Handles identifiers, integer
/// literals, string/char literals, `//` and `/* */` comments, and the
/// operator set in TokenKind. Unknown characters produce an error.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes the whole input. \returns false and sets error() on failure;
  /// on success \p Out ends with an Eof token.
  bool lexAll(std::vector<Token> &Out);

  const std::string &error() const { return Error; }

private:
  Token makeToken(TokenKind Kind, std::string Text = "");
  bool lexOne(Token &Out);
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool skipWhitespaceAndComments();

  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  std::string Error;
};

} // namespace ag

#endif // AG_FRONTEND_LEXER_H
