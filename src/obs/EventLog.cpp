//===- EventLog.cpp - Bounded async wide-event writer ---------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"

#include "obs/MetricsRegistry.h"

#include <chrono>

using namespace ag;
using namespace ag::obs;

namespace {

size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

} // namespace

EventLog::EventLog(std::ostream &OutStream, Options O)
    : EventLog(OutStream, nullptr, O) {}

EventLog::EventLog(std::ostream &OutStream,
                   std::unique_ptr<std::ofstream> Owned, Options O)
    : OwnedOut(std::move(Owned)), Out(OutStream), Opts(O) {
  size_t Cap = roundUpPow2(Opts.Capacity < 2 ? 2 : Opts.Capacity);
  Mask = Cap - 1;
  Cells.reset(new Cell[Cap]);
  for (size_t I = 0; I != Cap; ++I)
    Cells[I].Seq.store(I, std::memory_order_relaxed);
  if (!Opts.ManualDrain)
    Writer = std::thread([this] { writerLoop(); });
}

std::unique_ptr<EventLog> EventLog::open(const std::string &Path, Options O,
                                         Status &Err) {
  auto Owned = std::make_unique<std::ofstream>(
      Path, std::ios::out | std::ios::app);
  if (!*Owned) {
    Err = Status::ioError("cannot open event log '" + Path + "'");
    return nullptr;
  }
  std::ofstream &Ref = *Owned;
  Err = Status::okStatus();
  return std::unique_ptr<EventLog>(new EventLog(Ref, std::move(Owned), O));
}

EventLog::~EventLog() { close(); }

bool EventLog::publish(std::string &&Line) {
  Cell *C;
  size_t Pos = EnqueuePos.load(std::memory_order_relaxed);
  for (;;) {
    C = &Cells[Pos & Mask];
    size_t Seq = C->Seq.load(std::memory_order_acquire);
    intptr_t Dif = intptr_t(Seq) - intptr_t(Pos);
    if (Dif == 0) {
      if (EnqueuePos.compare_exchange_weak(Pos, Pos + 1,
                                           std::memory_order_relaxed))
        break;
    } else if (Dif < 0) {
      // Ring full: drop, never block.
      Dropped.fetch_add(1, std::memory_order_relaxed);
      count(Counter::ServeEventsDropped);
      return false;
    } else {
      Pos = EnqueuePos.load(std::memory_order_relaxed);
    }
  }
  C->Line = std::move(Line);
  C->Seq.store(Pos + 1, std::memory_order_release);
  Published.fetch_add(1, std::memory_order_relaxed);
  count(Counter::ServeEventsEmitted);
  return true;
}

bool EventLog::tryPop(std::string &Line) {
  Cell *C;
  size_t Pos = DequeuePos.load(std::memory_order_relaxed);
  for (;;) {
    C = &Cells[Pos & Mask];
    size_t Seq = C->Seq.load(std::memory_order_acquire);
    intptr_t Dif = intptr_t(Seq) - intptr_t(Pos + 1);
    if (Dif == 0) {
      if (DequeuePos.compare_exchange_weak(Pos, Pos + 1,
                                           std::memory_order_relaxed))
        break;
    } else if (Dif < 0) {
      return false; // Empty.
    } else {
      Pos = DequeuePos.load(std::memory_order_relaxed);
    }
  }
  Line = std::move(C->Line);
  C->Line.clear();
  C->Seq.store(Pos + Mask + 1, std::memory_order_release);
  return true;
}

size_t EventLog::drain() {
  std::string Line;
  size_t N = 0;
  while (tryPop(Line)) {
    Out << Line << '\n';
    ++N;
  }
  if (N) {
    Out.flush();
    Written.fetch_add(N, std::memory_order_relaxed);
  }
  return N;
}

void EventLog::writerLoop() {
  std::string Line;
  size_t SinceFlush = 0;
  for (;;) {
    bool Got = tryPop(Line);
    if (Got) {
      Out << Line << '\n';
      Written.fetch_add(1, std::memory_order_relaxed);
      if (++SinceFlush >= Opts.FlushEveryLines) {
        Out.flush();
        SinceFlush = 0;
      }
      continue;
    }
    if (SinceFlush) {
      Out.flush();
      SinceFlush = 0;
    }
    if (Stopping.load(std::memory_order_acquire))
      return;
    // Producers never signal (publish must stay lock-free); a short nap
    // bounds the idle wake-up cost at ~500 Hz.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void EventLog::close() {
  if (Closed)
    return;
  Closed = true;
  Stopping.store(true, std::memory_order_release);
  if (Writer.joinable())
    Writer.join();
  drain();
  Out.flush();
}
