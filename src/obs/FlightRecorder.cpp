//===- FlightRecorder.cpp - Recent-event ring buffer ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/TraceRecorder.h"

#include <cstdio>

using namespace ag;
using namespace ag::obs;

FlightRecorder &FlightRecorder::instance() {
  static FlightRecorder R;
  return R;
}

void FlightRecorder::record(const char *What, uint64_t A, uint64_t B) {
  uint64_t Ts = nowNanos();
  uint32_t Tid = trackId();
  std::lock_guard<std::mutex> Lock(Mu);
  Event &E = Ring[NextSeq % Capacity];
  E.Seq = NextSeq++;
  E.TsNanos = Ts;
  E.What = What;
  E.A = A;
  E.B = B;
  E.Tid = Tid;
}

std::string FlightRecorder::dumpText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  // One absolute anchor line: every +sss.mmm offset below is relative to
  // this wall-clock epoch (milliseconds since the Unix epoch, the same
  // anchor wide-event ts_ms fields use), so ring snapshots can be
  // time-correlated with event-log lines.
  Out += "  epoch_ms=";
  Out += std::to_string(epochWallMillis());
  Out += '\n';
  if (NextSeq == 0) {
    Out += "  (flight ring empty)\n";
    return Out;
  }
  uint64_t First = NextSeq > Capacity ? NextSeq - Capacity : 0;
  char Buf[96];
  for (uint64_t Seq = First; Seq != NextSeq; ++Seq) {
    const Event &E = Ring[Seq % Capacity];
    std::snprintf(Buf, sizeof(Buf), "  [%llu] +%llu.%03llu s tid=%u ",
                  static_cast<unsigned long long>(E.Seq),
                  static_cast<unsigned long long>(E.TsNanos / 1000000000),
                  static_cast<unsigned long long>((E.TsNanos / 1000000) %
                                                  1000),
                  E.Tid);
    Out += Buf;
    Out += E.What ? E.What : "?";
    Out += " a=";
    Out += std::to_string(E.A);
    Out += " b=";
    Out += std::to_string(E.B);
    Out += '\n';
  }
  return Out;
}

uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return NextSeq;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  NextSeq = 0;
  Ring.fill(Event{});
}
