//===- FlightRecorder.h - Recent-event ring buffer --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small ring buffer of recent coarse events (phase starts, rounds,
/// snapshot loads, governor trips) kept even when full tracing is off —
/// the black box a production service wants when a solve dies. The
/// governor dumps the ring to stderr on budget trips and fault-injection
/// aborts when dump-on-trip is armed (ptatool arms it whenever trace or
/// metrics output was requested), and `ptatool serve` exposes the ring
/// through its `trace` REPL command.
///
/// Event payloads are a static-string label plus two integers; recording
/// is a mutex-guarded ring write, cheap at the per-phase cadence the
/// instrumentation points use (never per-operation).
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_FLIGHTRECORDER_H
#define AG_OBS_FLIGHTRECORDER_H

#include "obs/Obs.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace ag {
namespace obs {

/// Fixed-capacity ring of recent events.
class FlightRecorder {
public:
  static constexpr size_t Capacity = 1024;

  static FlightRecorder &instance();

  /// Appends one event. \p What must be a string literal.
  void record(const char *What, uint64_t A = 0, uint64_t B = 0);

  /// Renders the ring oldest-to-newest, one line per event:
  /// "  [seq] +sss.mmm s tid=T what a=A b=B".
  std::string dumpText() const;

  /// Events recorded since process start (not capped by Capacity).
  uint64_t totalRecorded() const;

  void clear();

  /// When armed, obs::onGovernorTrip dumps the ring to stderr.
  void setDumpOnTrip(bool On) {
    DumpOnTrip.store(On, std::memory_order_relaxed);
  }
  bool dumpOnTrip() const {
    return DumpOnTrip.load(std::memory_order_relaxed);
  }

private:
  FlightRecorder() = default;

  struct Event {
    uint64_t Seq = 0;
    uint64_t TsNanos = 0;
    const char *What = nullptr;
    uint64_t A = 0;
    uint64_t B = 0;
    uint32_t Tid = 0;
  };

  mutable std::mutex Mu;
  std::array<Event, Capacity> Ring;
  uint64_t NextSeq = 0;
  std::atomic<bool> DumpOnTrip{false};
};

/// Hot-path helper: records only when the flight channel is on.
inline void flight(const char *What, uint64_t A = 0, uint64_t B = 0) {
  if (flightEnabled())
    FlightRecorder::instance().record(What, A, B);
}

} // namespace obs
} // namespace ag

#endif // AG_OBS_FLIGHTRECORDER_H
