//===- Obs.cpp - Cross-channel observability hooks ------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "adt/ElementArena.h"
#include "adt/MemTracker.h"
#include "adt/Status.h"
#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/RequestContext.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cstdio>

using namespace ag;
using namespace ag::obs;

void ag::obs::onGovernorTrip(const Status &St) {
  if (!CompiledIn)
    return;
  count(Counter::GovernorTrips);
  noteGovernorTrip(uint8_t(St.code()));
  if (traceEnabled())
    TraceRecorder::instance().instant("governor_trip", "governor", "code",
                                      uint64_t(St.code()));
  flight("governor_trip", uint64_t(St.code()));
  FlightRecorder &FR = FlightRecorder::instance();
  if (FR.dumpOnTrip()) {
    std::string Dump = FR.dumpText();
    std::fprintf(stderr,
                 "governor trip (%s); flight recorder (last %llu of %llu "
                 "events):\n%s",
                 St.toString().c_str(),
                 static_cast<unsigned long long>(
                     std::min<uint64_t>(FR.totalRecorded(),
                                        FlightRecorder::Capacity)),
                 static_cast<unsigned long long>(FR.totalRecorded()),
                 Dump.c_str());
  }
}

void ag::obs::publishMemPeaks() {
  if (!metricsEnabled() && !traceEnabled())
    return;
  MemTracker &MT = MemTracker::instance();
  uint64_t Bitmap = MT.peakBytes(MemCategory::Bitmap);
  uint64_t Bdd = MT.peakBytes(MemCategory::BddTable);
  uint64_t Other = MT.peakBytes(MemCategory::Other);
  uint64_t Joint = MT.peakBytesJoint();
  ArenaStats &AS = ArenaStats::instance();
  uint64_t ArenaReserved = AS.peakReservedBytes();
  uint64_t ArenaSlabs = AS.peakSlabs();
  if (metricsEnabled()) {
    MetricsRegistry &R = MetricsRegistry::instance();
    R.maxGauge(Gauge::MemPeakBitmapBytes, Bitmap);
    R.maxGauge(Gauge::MemPeakBddBytes, Bdd);
    R.maxGauge(Gauge::MemPeakOtherBytes, Other);
    R.maxGauge(Gauge::MemPeakJointBytes, Joint);
    R.maxGauge(Gauge::MemArenaReservedBytes, ArenaReserved);
    R.maxGauge(Gauge::MemArenaSlabs, ArenaSlabs);
  }
  if (traceEnabled()) {
    TraceRecorder &T = TraceRecorder::instance();
    T.counter("mem.peak_bitmap_bytes", Bitmap);
    T.counter("mem.peak_bdd_bytes", Bdd);
    T.counter("mem.peak_joint_bytes", Joint);
    T.counter("mem.arena_reserved_bytes", ArenaReserved);
  }
}
