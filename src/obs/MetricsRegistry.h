//===- MetricsRegistry.h - Process-wide metrics -----------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: a fixed universe of named
/// counters (lock-free, sharded per thread to avoid cache-line ping-pong),
/// gauges (monotone high-water marks), and log2-bucket histograms. The
/// registry absorbs each run's SolverStats (superseding ad-hoc plumbing of
/// individual fields through bench/tool code) and additionally collects
/// signals the flat struct never carried: points-to diff sizes, worklist
/// depth, LRU hit/miss, collapsed cycle sizes, and BDD operation-cache hit
/// rates.
///
/// Rendering is deterministic: renderJson() emits every counter, gauge and
/// histogram in enum order with a schema tag ("ag.metrics.v5"), so two runs
/// at the same seed produce bit-identical files and CI can validate the
/// key set against tests/metrics_schema.json (schema stability rules in
/// DESIGN.md §11; v1 -> v2 added the set-interning counters and the
/// arena gauges; v2 -> v3 added the demand.* counters and the demand
/// frontier histogram; v3 -> v4 added the serve request/tier/event
/// counters, the serve.latency.* quantile gauges and the request-latency
/// histogram; v4 -> v5 added the serve.conns_* connection counters and
/// the serve.conns_active gauge for the TCP front-end).
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_METRICSREGISTRY_H
#define AG_OBS_METRICSREGISTRY_H

#include "adt/Statistics.h"
#include "obs/Obs.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ag {
namespace obs {

/// Counter universe. The first SolverStats::NumFields entries mirror
/// SolverStats in field order — absorb() relies on that correspondence.
enum class Counter : unsigned {
  // --- absorbed from SolverStats (declaration order must match) ---
  SolverNodesCollapsed,
  SolverNodesSearched,
  SolverPropagations,
  SolverChangedPropagations,
  SolverCycleDetectAttempts,
  SolverEdgesAdded,
  SolverWorklistPops,
  SolverHcdCollapses,
  SolverLcdTriggerProbes,
  SolverParallelRounds,
  SolverParallelEpochs,
  SolverDiffElementsResolved,
  SolverWarmSeededNodes,
  SolverWarmNewConstraints,
  // --- incremented directly at instrumentation points ---
  SolverRuns,           ///< solve() completions (any kind).
  SolverFallbacks,      ///< Steensgaard degradations substituted.
  GovernorTrips,        ///< Budget trips (any reason).
  BddCacheHits,         ///< BDD operation-cache hits.
  BddCacheMisses,       ///< BDD operation-cache misses.
  ServeQueries,         ///< Queries answered by QueryEngine.
  ServeLruHits,         ///< Result-cache hits across both caches.
  ServeLruMisses,       ///< Result-cache misses across both caches.
  ServeSnapshotLoads,   ///< Snapshot files read successfully.
  ServeWarmStarts,      ///< Warm-start re-solves attempted.
  SolverInternedHits,   ///< Extracted sets deduplicated onto a canonical
                        ///< set (hash-consing hits).
  SolverInternedMisses, ///< Extracted sets that became a new canonical set.
  DemandQueries,        ///< Queries answered by the demand tier.
  DemandMemoHits,       ///< Demand queries answered from the certified memo.
  DemandMemoMisses,     ///< Demand queries that ran a deduction fixpoint.
  DemandSteps,          ///< Deduction steps charged by the demand solver.
  DemandEscalations,    ///< Demand queries escalated to an exhaustive solve.
  DemandInvalidations,  ///< Memo entries invalidated by constraint deltas.
  ServeRequests,        ///< REPL requests handled by ServeSession.
  ServeTierLru,         ///< Requests that probed the LRU result caches.
  ServeTierMemo,        ///< Requests that probed the demand memo.
  ServeTierDemand,      ///< Requests that ran a governed demand deduction.
  ServeTierEscalation,  ///< Requests escalated to an exhaustive solve.
  ServeTierSnapshot,    ///< Requests that scanned the snapshot solution.
  ServeTierWarmStart,   ///< Requests that ran a warm-start re-solve.
  ServeSlowQueries,     ///< Requests captured by the slow-query log.
  ServeEventsEmitted,   ///< Wide events enqueued to the event log.
  ServeEventsDropped,   ///< Wide events dropped by the bounded queue.
  ServeConnsAccepted,   ///< TCP/unix connections accepted by the Server.
  ServeConnsRejected,   ///< Connections refused at the --max-conns cap.
  ServeConnsIdleClosed, ///< Connections closed by the idle timeout.
  NumCounters,
};

/// Gauge universe. The mem.* gauges are monotone high-water marks
/// (maxGauge); the serve.latency.* gauges are last-published quantile
/// snapshots (setGauge) refreshed by LatencyTracker::publishGauges at
/// observation points — class-major, quantile-minor order, which
/// publishGauges indexes arithmetically.
enum class Gauge : unsigned {
  MemPeakBitmapBytes,
  MemPeakBddBytes,
  MemPeakOtherBytes,
  MemPeakJointBytes,
  MemArenaReservedBytes, ///< Peak slab bytes reserved by element arenas.
  MemArenaSlabs,         ///< Peak live arena slab count.
  ServeLatencyP50Query,  ///< Sliding-window latency quantiles (micros)
  ServeLatencyP90Query,  ///< per command class; see QuantileWindow.h.
  ServeLatencyP99Query,
  ServeLatencyP50Mutate,
  ServeLatencyP90Mutate,
  ServeLatencyP99Mutate,
  ServeLatencyP50Admin,
  ServeLatencyP90Admin,
  ServeLatencyP99Admin,
  ServeConnsActive, ///< Live Server connections (setGauge on accept/close).
  NumGauges,
};

/// Histogram universe (log2 buckets: value v lands in bucket bit_width(v),
/// i.e. bucket k holds values in [2^(k-1), 2^k), bucket 0 holds zero).
enum class Hist : unsigned {
  PtsDiffSize,   ///< New elements per complex-resolution frontier pass.
  CycleSize,     ///< Members per collapsed SCC (size >= 2).
  WorklistDepth, ///< Worklist depth sampled every 1024 pops / per round.
  QueryBatch,    ///< aliasBatch sizes.
  DemandFrontier, ///< Demanded nodes per demand-solver fixpoint.
  ServeRequestMicros, ///< End-to-end serve request latency (micros).
  NumHists,
};

/// Stable machine-readable names ("solver.propagations", ...).
const char *counterName(Counter C);
const char *gaugeName(Gauge G);
const char *histName(Hist H);

/// True if the counter's value is independent of parallel-worker
/// scheduling (identical across repeated runs at any thread count, given
/// the same seed). Scheduling-sensitive counters — e.g. propagations,
/// whose per-round totals depend on which edges a worker's snapshot saw —
/// are only run-to-run stable single-threaded. Tests and downstream
/// tooling use this to pick the comparison set (DESIGN.md §11).
bool counterIsSchedulingInvariant(Counter C);

/// Process-wide metrics store. All mutators are thread-safe; counters are
/// sharded so concurrent workers do not contend on one cache line.
class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  static constexpr unsigned NumShards = 8;
  /// log2 buckets 0..64 (bit_width of a uint64_t value).
  static constexpr unsigned NumBuckets = 65;

  void add(Counter C, uint64_t N = 1) {
    Shards[shardIndex()].Counts[unsigned(C)].fetch_add(
        N, std::memory_order_relaxed);
  }

  /// Raises the gauge to \p V if above its current value.
  void maxGauge(Gauge G, uint64_t V) {
    std::atomic<uint64_t> &Slot = Gauges[unsigned(G)];
    uint64_t Prev = Slot.load(std::memory_order_relaxed);
    while (V > Prev &&
           !Slot.compare_exchange_weak(Prev, V, std::memory_order_relaxed)) {
    }
  }

  /// Overwrites the gauge (non-monotone; the serve.latency.* quantile
  /// snapshots move both directions as the window slides).
  void setGauge(Gauge G, uint64_t V) {
    Gauges[unsigned(G)].store(V, std::memory_order_relaxed);
  }

  void observe(Hist H, uint64_t V) {
    HistData &D = Hists[unsigned(H)];
    D.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    D.Count.fetch_add(1, std::memory_order_relaxed);
    D.Sum.fetch_add(V, std::memory_order_relaxed);
  }

  uint64_t counterValue(Counter C) const {
    uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.Counts[unsigned(C)].load(std::memory_order_relaxed);
    return Sum;
  }

  uint64_t gaugeValue(Gauge G) const {
    return Gauges[unsigned(G)].load(std::memory_order_relaxed);
  }

  uint64_t histCount(Hist H) const {
    return Hists[unsigned(H)].Count.load(std::memory_order_relaxed);
  }
  uint64_t histSum(Hist H) const {
    return Hists[unsigned(H)].Sum.load(std::memory_order_relaxed);
  }
  uint64_t histBucket(Hist H, unsigned B) const {
    return Hists[unsigned(H)].Buckets[B].load(std::memory_order_relaxed);
  }

  /// Folds one run's SolverStats into the solver.* counters. Called by
  /// solve()/solveGoverned() on completion; the struct stays the per-run
  /// carrier, the registry the cross-run aggregate.
  void absorb(const SolverStats &S);

  /// Zeroes every counter, gauge and histogram (tests and per-run bench
  /// windows).
  void reset();

  /// One "name: value" line per counter/gauge plus histogram summaries —
  /// the human rendering (ptatool serve's `stats` command).
  std::string renderText() const;

  /// The stable machine-readable schema (see file header). \p Compact
  /// omits newlines/indentation for embedding into other JSON documents.
  std::string renderJson(bool Compact = false) const;

  static unsigned bucketOf(uint64_t V) {
    unsigned W = 0;
    while (V != 0) {
      ++W;
      V >>= 1;
    }
    return W; // bit_width; 0 for V == 0.
  }

private:
  MetricsRegistry() = default;

  static unsigned shardIndex() {
    thread_local unsigned Idx = NextShard.fetch_add(
                                    1, std::memory_order_relaxed) %
                                NumShards;
    return Idx;
  }

  struct alignas(64) Shard {
    std::atomic<uint64_t> Counts[unsigned(Counter::NumCounters)] = {};
  };
  struct HistData {
    std::array<std::atomic<uint64_t>, NumBuckets> Buckets = {};
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
  };

  static inline std::atomic<unsigned> NextShard{0};
  std::array<Shard, NumShards> Shards;
  std::array<std::atomic<uint64_t>, unsigned(Gauge::NumGauges)> Gauges = {};
  std::array<HistData, unsigned(Hist::NumHists)> Hists;
};

/// Hot-path helpers: one relaxed load + branch when the channel is off.
inline void count(Counter C, uint64_t N = 1) {
  if (metricsEnabled())
    MetricsRegistry::instance().add(C, N);
}
inline void observe(Hist H, uint64_t V) {
  if (metricsEnabled())
    MetricsRegistry::instance().observe(H, V);
}

} // namespace obs
} // namespace ag

#endif // AG_OBS_METRICSREGISTRY_H
