//===- RequestContext.h - Request-scoped telemetry --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped telemetry for the serve path. A RequestContext is created
/// per REPL request by ServeSession and made visible to the layers beneath
/// it (QueryEngine, DemandTier, IncrementalSolver, governor charge points)
/// through a thread-local pointer — each request executes wholly on one
/// thread, so no locking is needed and the instrumentation sites stay
/// allocation-free. When no request is active every helper below is a
/// single thread-local load plus a branch, so solver-only workloads pay
/// nothing.
///
/// The context accumulates the request's full tier path: which tiers were
/// entered (LRU cache, demand memo, governed demand deduction, escalation,
/// snapshot scan, warm-start re-solve), which of them produced the answer,
/// how many microseconds each cost, and what the governor charged
/// (propagations, edges, trips). ServeSession renders the finished context
/// as one "ag.events.v1" wide-event JSON line (renderWideEvent) and feeds
/// its latency into the per-command-class quantile windows.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_REQUESTCONTEXT_H
#define AG_OBS_REQUESTCONTEXT_H

#include "obs/TraceRecorder.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace ag {
namespace obs {

/// Serving tiers a request can traverse, cheapest first. Mirrors the
/// escalation ladder documented in DESIGN.md §13/§14.
enum class ReqTier : unsigned {
  Lru,        ///< QueryEngine's sharded result caches.
  Memo,       ///< DemandTier's certified memo table.
  Demand,     ///< Governed demand deduction fixpoint.
  Escalation, ///< Exhaustive solve after a demand budget trip.
  Snapshot,   ///< Direct scan of the snapshot solution.
  WarmStart,  ///< Incremental warm-start re-solve.
  NumTiers,
};

/// Coarse command classes for latency quantiles: reads, mutations of the
/// served system, and administrative commands.
enum class CommandClass : unsigned {
  Query,  ///< pts / pointedby / alias / aliasbatch / callees / callgraph.
  Mutate, ///< resolve (constraint deltas + warm re-solve).
  Admin,  ///< stats / trace / check / help and everything else.
  NumClasses,
};

const char *reqTierName(ReqTier T);
const char *commandClassName(CommandClass C);

/// Everything one request learns about itself. Plain data; zero-initialised
/// members are the "didn't happen" encoding throughout.
struct RequestContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t ConnId = 0;   ///< Originating connection (TCP Server); 0 = none.
  char Command[24] = {}; ///< Sanitised first token of the request line.
  CommandClass Class = CommandClass::Admin;
  uint64_t StartNanos = 0;    ///< obs clock (nowNanos) at admission.
  uint64_t EndNanos = 0;      ///< obs clock when finished; 0 while live.
  uint64_t DeadlineNanos = 0; ///< Absolute obs-clock deadline; 0 = none.

  uint32_t TierEntered[unsigned(ReqTier::NumTiers)] = {};
  uint32_t TierHits[unsigned(ReqTier::NumTiers)] = {};
  uint64_t TierMicros[unsigned(ReqTier::NumTiers)] = {};

  uint64_t BudgetPropagations = 0; ///< Governor-charged propagations.
  uint64_t BudgetEdges = 0;        ///< Governor-charged edge inserts.
  uint32_t GovernorTrips = 0;
  uint8_t TripCode = 0; ///< StatusCode of the last trip, if any.

  uint64_t ResultSize = 0; ///< Elements in the answer (set size, pairs...).
  uint64_t ReplyBytes = 0;
  const char *StatusStr = "ok"; ///< Static string; "ok", "error", ...

  /// Copies \p Cmd into Command, keeping only [A-Za-z0-9_.-] so the wide
  /// event can embed it without JSON escaping.
  void setCommand(const char *Cmd);

  /// Wall-clock milliseconds of EndNanos (or StartNanos while live),
  /// anchored on the shared observability epoch.
  uint64_t wallMillis() const;
};

/// The thread's active request, or nullptr. Set by RequestScope only.
inline thread_local RequestContext *CurrentRequest = nullptr;

inline RequestContext *currentRequest() { return CurrentRequest; }
inline bool requestActive() { return CurrentRequest != nullptr; }

/// Allocates a fresh process-unique trace id (never 0).
uint64_t nextTraceId();

/// RAII: installs a RequestContext as the thread's current request for the
/// duration of one ServeSession request. Stamps trace/span ids and the
/// start timestamp; restores the previous context on destruction (nesting
/// is harmless, inner requests simply shadow).
class RequestScope {
public:
  RequestScope(const char *Cmd, CommandClass Class,
               uint64_t DeadlineNanos = 0) {
    Ctx.TraceId = nextTraceId();
    Ctx.SpanId = Ctx.TraceId ^ 0x9e3779b97f4a7c15ull;
    Ctx.setCommand(Cmd);
    Ctx.Class = Class;
    Ctx.StartNanos = nowNanos();
    Ctx.DeadlineNanos = DeadlineNanos;
    Prev = CurrentRequest;
    CurrentRequest = &Ctx;
  }
  ~RequestScope() { CurrentRequest = Prev; }
  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

  RequestContext &ctx() { return Ctx; }

  /// Stamps EndNanos and returns the request's latency in microseconds,
  /// clamped to >= 1 so sub-microsecond cache hits still register.
  uint64_t finish() {
    Ctx.EndNanos = nowNanos();
    uint64_t Micros = (Ctx.EndNanos - Ctx.StartNanos) / 1000;
    return Micros ? Micros : 1;
  }

private:
  RequestContext Ctx;
  RequestContext *Prev = nullptr;
};

/// RAII tier attribution: counts entry on construction, accumulates the
/// section's microseconds on destruction, and records a hit when the tier
/// produced the answer. No-op without an active request.
class TierSpan {
public:
  explicit TierSpan(ReqTier T) : T(T), Req(CurrentRequest) {
    if (Req) {
      Start = nowNanos();
      ++Req->TierEntered[unsigned(T)];
    }
  }
  ~TierSpan() {
    if (Req) {
      Req->TierMicros[unsigned(T)] += (nowNanos() - Start) / 1000;
      if (Hit)
        ++Req->TierHits[unsigned(T)];
    }
  }
  TierSpan(const TierSpan &) = delete;
  TierSpan &operator=(const TierSpan &) = delete;

  /// Marks the tier as having produced the answer.
  void markHit() { Hit = true; }

private:
  ReqTier T;
  RequestContext *Req;
  uint64_t Start = 0;
  bool Hit = false;
};

/// Instant-probe attribution (cache/memo lookups too cheap to time):
/// counts an entry and, when \p Hit, a hit.
inline void noteTierProbe(ReqTier T, bool Hit) {
  if (RequestContext *Req = CurrentRequest) {
    ++Req->TierEntered[unsigned(T)];
    if (Hit)
      ++Req->TierHits[unsigned(T)];
  }
}

inline void noteResultSize(uint64_t N) {
  if (RequestContext *Req = CurrentRequest)
    Req->ResultSize += N;
}

/// Governor charge publication (called from ~SolveGovernor): folds the
/// governor's propagation/edge totals into the active request.
inline void noteGovernorCharges(uint64_t Propagations, uint64_t Edges) {
  if (RequestContext *Req = CurrentRequest) {
    Req->BudgetPropagations += Propagations;
    Req->BudgetEdges += Edges;
  }
}

/// Trip attribution (called from obs::onGovernorTrip).
inline void noteGovernorTrip(uint8_t Code) {
  if (RequestContext *Req = CurrentRequest) {
    ++Req->GovernorTrips;
    Req->TripCode = Code;
  }
}

/// Renders \p Ctx as one "ag.events.v1" wide-event JSON line (no trailing
/// newline). Only tiers that were entered appear in the "tiers" object;
/// "trip_code" appears only after a governor trip and "conn" only for
/// requests that arrived over a network connection. See DESIGN.md §15 for
/// the field reference.
std::string renderWideEvent(const RequestContext &Ctx);

/// Formats a trace/span id the way renderWideEvent does (16 hex digits).
std::string formatTraceId(uint64_t Id);

} // namespace obs
} // namespace ag

#endif // AG_OBS_REQUESTCONTEXT_H
