//===- MetricsHttp.cpp - Embedded metrics exposition endpoint -------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHttp.h"

#include "obs/OpenMetrics.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ag;
using namespace ag::obs;

namespace {

/// Writes the whole buffer, retrying on short writes / EINTR.
void sendAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += size_t(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return; // Peer gone; a scrape client retries.
  }
}

void sendResponse(int Fd, const char *StatusLine, const char *ContentType,
                  const std::string &Body) {
  std::string Head;
  Head.reserve(160);
  Head += StatusLine;
  Head += "\r\nContent-Type: ";
  Head += ContentType;
  Head += "\r\nContent-Length: ";
  Head += std::to_string(Body.size());
  Head += "\r\nConnection: close\r\n\r\n";
  sendAll(Fd, Head.data(), Head.size());
  sendAll(Fd, Body.data(), Body.size());
}

} // namespace

MetricsHttpServer::MetricsHttpServer(std::function<std::string()> Render)
    : Render(std::move(Render)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

Status MetricsHttpServer::start(uint16_t Port) {
  if (ListenFd >= 0)
    return Status::invalidArgument("metrics endpoint already started");
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::ioError("metrics endpoint: socket() failed");
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("metrics endpoint: cannot bind 127.0.0.1:" +
                           std::to_string(Port));
  }
  if (::listen(ListenFd, 16) < 0) {
    ::close(ListenFd);
    ListenFd = -1;
    return Status::ioError("metrics endpoint: listen() failed");
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) ==
      0)
    BoundPort = ntohs(Addr.sin_port);

  Stopping.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(ReadyMu);
    Ready = false;
  }
  Thread = std::thread([this] { acceptLoop(); });
  // Do not return until the accept thread is live: the listener already
  // queues connections, but a caller that scrapes right after start()
  // must not race thread startup on a loaded runner.
  std::unique_lock<std::mutex> Lock(ReadyMu);
  ReadyCv.wait(Lock, [this] { return Ready; });
  return Status::okStatus();
}

void MetricsHttpServer::acceptLoop() {
  {
    std::lock_guard<std::mutex> Lock(ReadyMu);
    Ready = true;
  }
  ReadyCv.notify_all();
  while (!Stopping.load(std::memory_order_acquire)) {
    pollfd Pfd = {ListenFd, POLLIN, 0};
    int R = ::poll(&Pfd, 1, /*timeout_ms=*/100);
    if (R <= 0)
      continue; // Timeout (stop-flag check) or EINTR.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    handleConnection(Fd);
    ::close(Fd);
  }
}

void MetricsHttpServer::handleConnection(int Fd) {
  // Read until the header terminator or a small fixed cap; scrape
  // requests are one GET line plus a few headers.
  char Buf[4096];
  size_t Got = 0;
  while (Got < sizeof(Buf) - 1) {
    pollfd Pfd = {Fd, POLLIN, 0};
    if (::poll(&Pfd, 1, /*timeout_ms=*/500) <= 0)
      break;
    ssize_t N = ::recv(Fd, Buf + Got, sizeof(Buf) - 1 - Got, 0);
    if (N <= 0)
      break;
    Got += size_t(N);
    Buf[Got] = '\0';
    if (std::strstr(Buf, "\r\n\r\n") || std::strstr(Buf, "\n\n"))
      break;
  }
  Buf[Got] = '\0';
  Served.fetch_add(1, std::memory_order_relaxed);

  // Parse "GET <path> HTTP/1.x".
  char Method[8] = {};
  char Path[64] = {};
  if (std::sscanf(Buf, "%7s %63s", Method, Path) != 2 ||
      std::strcmp(Method, "GET") != 0) {
    sendResponse(Fd, "HTTP/1.1 405 Method Not Allowed", "text/plain",
                 "method not allowed\n");
    return;
  }
  if (std::strcmp(Path, "/metrics") != 0) {
    sendResponse(Fd, "HTTP/1.1 404 Not Found", "text/plain",
                 "only /metrics is served\n");
    return;
  }
  std::string Body = Render ? Render() : std::string("# EOF\n");
  sendResponse(Fd, "HTTP/1.1 200 OK", openMetricsContentType(), Body);
}

void MetricsHttpServer::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  ::close(ListenFd);
  ListenFd = -1;
}
