//===- RequestContext.cpp - Request-scoped telemetry ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/RequestContext.h"

#include "adt/Status.h"

#include <atomic>
#include <cstdio>

using namespace ag;
using namespace ag::obs;

namespace {

constexpr const char *TierNames[] = {
    "lru", "memo", "demand", "escalation", "snapshot", "warm_start",
};
static_assert(sizeof(TierNames) / sizeof(TierNames[0]) ==
                  unsigned(ReqTier::NumTiers),
              "tier name table out of sync");

constexpr const char *ClassNames[] = {"query", "mutate", "admin"};
static_assert(sizeof(ClassNames) / sizeof(ClassNames[0]) ==
                  unsigned(CommandClass::NumClasses),
              "command class name table out of sync");

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

void appendKv(std::string &Out, const char *Key, uint64_t V,
              bool Comma = true) {
  if (Comma)
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

} // namespace

const char *ag::obs::reqTierName(ReqTier T) { return TierNames[unsigned(T)]; }
const char *ag::obs::commandClassName(CommandClass C) {
  return ClassNames[unsigned(C)];
}

void RequestContext::setCommand(const char *Cmd) {
  size_t N = 0;
  for (const char *P = Cmd; *P && N + 1 < sizeof(Command); ++P) {
    char C = *P;
    bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '-';
    Command[N++] = Safe ? C : '?';
  }
  Command[N] = '\0';
}

uint64_t RequestContext::wallMillis() const {
  uint64_t Nanos = EndNanos ? EndNanos : StartNanos;
  return epochWallMillis() + Nanos / 1000000;
}

uint64_t ag::obs::nextTraceId() {
  // Seeded from the wall clock once so concurrent server runs do not hand
  // out colliding ids; the counter keeps ids unique within the process.
  static const uint64_t Seed = splitmix64(ObsEpoch::instance().WallMillis);
  static std::atomic<uint64_t> Next{1};
  uint64_t Id =
      splitmix64(Seed ^ Next.fetch_add(1, std::memory_order_relaxed));
  return Id ? Id : 1;
}

std::string ag::obs::formatTraceId(uint64_t Id) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Id));
  return Buf;
}

std::string ag::obs::renderWideEvent(const RequestContext &Ctx) {
  std::string Out;
  Out.reserve(384);
  Out += "{\"schema\":\"ag.events.v1\"";
  appendKv(Out, "ts_ms", Ctx.wallMillis());
  Out += ",\"trace\":\"";
  Out += formatTraceId(Ctx.TraceId);
  Out += "\",\"span\":\"";
  Out += formatTraceId(Ctx.SpanId);
  Out += '"';
  if (Ctx.ConnId)
    appendKv(Out, "conn", Ctx.ConnId);
  Out += ",\"cmd\":\"";
  Out += Ctx.Command;
  Out += "\",\"class\":\"";
  Out += ClassNames[unsigned(Ctx.Class)];
  Out += "\",\"status\":\"";
  Out += Ctx.StatusStr;
  Out += '"';
  uint64_t Micros =
      Ctx.EndNanos >= Ctx.StartNanos ? (Ctx.EndNanos - Ctx.StartNanos) / 1000
                                     : 0;
  appendKv(Out, "micros", Micros);
  appendKv(Out, "result_size", Ctx.ResultSize);
  appendKv(Out, "reply_bytes", Ctx.ReplyBytes);
  bool CacheHit = Ctx.TierHits[unsigned(ReqTier::Lru)] != 0;
  bool MemoHit = Ctx.TierHits[unsigned(ReqTier::Memo)] != 0;
  Out += ",\"cache_hit\":";
  Out += CacheHit ? "true" : "false";
  Out += ",\"memo_hit\":";
  Out += MemoHit ? "true" : "false";

  Out += ",\"tiers\":{";
  bool First = true;
  for (unsigned I = 0; I != unsigned(ReqTier::NumTiers); ++I) {
    if (!Ctx.TierEntered[I])
      continue;
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += TierNames[I];
    Out += "\":{\"entered\":";
    Out += std::to_string(Ctx.TierEntered[I]);
    Out += ",\"hits\":";
    Out += std::to_string(Ctx.TierHits[I]);
    Out += ",\"micros\":";
    Out += std::to_string(Ctx.TierMicros[I]);
    Out += '}';
  }
  Out += '}';

  Out += ",\"budget\":{\"props\":";
  Out += std::to_string(Ctx.BudgetPropagations);
  Out += ",\"edges\":";
  Out += std::to_string(Ctx.BudgetEdges);
  Out += ",\"trips\":";
  Out += std::to_string(Ctx.GovernorTrips);
  if (Ctx.GovernorTrips) {
    Out += ",\"trip_code\":\"";
    Out += statusCodeName(static_cast<StatusCode>(Ctx.TripCode));
    Out += '"';
  }
  Out += "}}";
  return Out;
}
