//===- Obs.h - Observability master switches --------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's master switches. Every instrumentation point
/// in the solvers, the serve layer and the BDD engine is guarded by one of
/// the enabled() checks below; each check is an inline relaxed atomic load
/// plus a branch, and compiling with -DAG_OBS_DISABLED turns every check
/// into `constexpr false` so the optimizer removes the slow paths entirely.
/// That branch is the whole overhead contract (DESIGN.md §11): with the
/// bits clear, a solve must run within noise of a build that has no
/// observability layer at all — bench_solvers records the ratio as a
/// guardrail.
///
/// Three independent channels:
///  * trace   — TraceRecorder: Chrome trace_event spans/instants/counters.
///  * metrics — MetricsRegistry: sharded counters + log-scale histograms.
///  * flight  — FlightRecorder: a small ring of recent coarse events the
///              governor dumps when a budget trips. On by default: its
///              events are per-phase, not per-operation, so the steady-
///              state cost is a handful of mutex acquisitions per solve.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_OBS_H
#define AG_OBS_OBS_H

#include <atomic>
#include <cstdint>

namespace ag {

class Status;

namespace obs {

#ifdef AG_OBS_DISABLED
/// Compile-time kill switch: every enabled() check folds to false and the
/// instrumentation bodies become dead code.
inline constexpr bool CompiledIn = false;
#else
inline constexpr bool CompiledIn = true;
#endif

enum : uint32_t {
  TraceBit = 1u << 0,
  MetricsBit = 1u << 1,
  FlightBit = 1u << 2,
};

/// Process-wide channel bits. Flight recording defaults on (coarse events
/// only); trace and metrics default off.
inline std::atomic<uint32_t> ChannelBits{FlightBit};

/// True when span/instant/counter events should be recorded.
inline bool traceEnabled() {
  return CompiledIn &&
         (ChannelBits.load(std::memory_order_relaxed) & TraceBit) != 0;
}

/// True when registry counters and histograms should be updated.
inline bool metricsEnabled() {
  return CompiledIn &&
         (ChannelBits.load(std::memory_order_relaxed) & MetricsBit) != 0;
}

/// True when coarse events should be appended to the flight ring.
inline bool flightEnabled() {
  return CompiledIn &&
         (ChannelBits.load(std::memory_order_relaxed) & FlightBit) != 0;
}

inline void setChannel(uint32_t Bit, bool On) {
  if (On)
    ChannelBits.fetch_or(Bit, std::memory_order_relaxed);
  else
    ChannelBits.fetch_and(~Bit, std::memory_order_relaxed);
}

inline void setTraceEnabled(bool On) { setChannel(TraceBit, On); }
inline void setMetricsEnabled(bool On) { setChannel(MetricsBit, On); }
inline void setFlightEnabled(bool On) { setChannel(FlightBit, On); }

/// Governor hook (called from SolveGovernor::trip before the throw):
/// counts the trip, records an instant event and a flight event, and —
/// when FlightRecorder::setDumpOnTrip(true) was requested — dumps the
/// flight ring to stderr so an unexpected production trip leaves a
/// breadcrumb trail. Defined in Obs.cpp to keep this header dependency-
/// free for the hot paths.
void onGovernorTrip(const Status &St);

/// Publishes MemTracker's current high-water marks into the
/// MetricsRegistry gauges and (when tracing) emits matching counter
/// events. Called at phase boundaries so the trace's memory track and the
/// final metrics JSON agree — previously peak bytes were only readable at
/// process end.
void publishMemPeaks();

} // namespace obs
} // namespace ag

#endif // AG_OBS_OBS_H
