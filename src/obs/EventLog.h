//===- EventLog.h - Bounded async wide-event writer -------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wide-event sink: one JSON line per serve request ("ag.events.v1",
/// see RequestContext.h), written through a bounded lock-free queue so the
/// serving hot path never blocks on the filesystem. Producers publish with
/// a Vyukov-style MPMC ring (one CAS on the uncontended path); a dedicated
/// writer thread drains lines to the output stream and flushes in batches.
/// When the ring is full the line is DROPPED and counted — backpressure
/// must never turn telemetry into a latency source. Drop totals surface
/// both on the instance (dropped()) and as the serve.events_dropped
/// counter, so a scrape can alarm on loss.
///
/// Tests construct the log in ManualDrain mode (no thread; drain() pumps
/// the ring synchronously), which also makes the overflow behaviour
/// deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_EVENTLOG_H
#define AG_OBS_EVENTLOG_H

#include "adt/Status.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

namespace ag {
namespace obs {

/// Bounded, non-blocking, multi-producer event line writer.
class EventLog {
public:
  struct Options {
    size_t Capacity = 1024;     ///< Ring slots; rounded up to a power of 2.
    size_t FlushEveryLines = 64; ///< Writer flushes at least this often.
    bool ManualDrain = false;   ///< No writer thread; tests call drain().
  };

  /// Writes to \p Out, which must outlive the log.
  explicit EventLog(std::ostream &Out) : EventLog(Out, Options()) {}
  EventLog(std::ostream &Out, Options O);

  /// Opens \p Path for appending and returns a log that owns the stream,
  /// or a Status on I/O failure.
  static std::unique_ptr<EventLog> open(const std::string &Path, Options O,
                                        Status &Err);

  ~EventLog();
  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  /// Enqueues one event line (newline appended by the writer). Never
  /// blocks: returns false and counts a drop when the ring is full.
  bool publish(std::string &&Line);

  /// Stops the writer thread (if any), drains everything still queued,
  /// and flushes. Idempotent; the destructor calls it.
  void close();

  /// ManualDrain pump: writes all currently queued lines, returns how
  /// many. Also usable after close() returned.
  size_t drain();

  uint64_t published() const {
    return Published.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }
  uint64_t written() const { return Written.load(std::memory_order_relaxed); }

private:
  EventLog(std::ostream &Out, std::unique_ptr<std::ofstream> Owned,
           Options O);

  bool tryPop(std::string &Line);
  void writerLoop();

  struct Cell {
    std::atomic<size_t> Seq{0};
    std::string Line;
  };

  std::unique_ptr<std::ofstream> OwnedOut; ///< Set by open().
  std::ostream &Out;
  Options Opts;
  size_t Mask = 0;
  std::unique_ptr<Cell[]> Cells;
  alignas(64) std::atomic<size_t> EnqueuePos{0};
  alignas(64) std::atomic<size_t> DequeuePos{0};
  std::atomic<uint64_t> Published{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> Written{0};
  std::atomic<bool> Stopping{false};
  bool Closed = false;
  std::thread Writer;
};

} // namespace obs
} // namespace ag

#endif // AG_OBS_EVENTLOG_H
