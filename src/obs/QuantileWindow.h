//===- QuantileWindow.h - Sliding-window latency quantiles ------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live latency quantiles for the serve path. A QuantileWindow is a
/// sliding window of fixed-size log-linear histograms (HdrHistogram-style:
/// values below 2^SubBits are exact, above that each power-of-two octave
/// is split into 2^SubBits sub-buckets, so a reported quantile over-
/// estimates the true value by at most 2^-SubBits = 12.5% relative error
/// with SubBits = 3). Recording is two relaxed atomic increments plus a
/// bucket computation — no locks, no allocation, TSan-clean — and the
/// window slides by rotating through NumSlots time slots, each covering
/// SlotNanos; readers merge the slots that still fall inside the window.
///
/// Slot rotation is optimistic: the first recorder to enter a new epoch
/// CASes the slot's epoch tag and zeroes it. A straggler that was still
/// writing into the old epoch can leak a handful of samples into the fresh
/// slot; that statistical bleed is bounded by the number of concurrently
/// recording threads and is irrelevant at quantile granularity.
///
/// LatencyTracker aggregates one window per CommandClass and publishes
/// serve.latency.{p50,p90,p99}.{query,mutate,admin} gauges on demand (the
/// `stats` command, the OpenMetrics endpoint, session teardown) — never on
/// the per-request hot path.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_QUANTILEWINDOW_H
#define AG_OBS_QUANTILEWINDOW_H

#include "obs/RequestContext.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace ag {
namespace obs {

/// Sliding window of log-linear histograms. All methods are thread-safe.
class QuantileWindow {
public:
  static constexpr unsigned SubBits = 3;
  static constexpr unsigned NumBuckets =
      ((64 - SubBits) << SubBits) + (1u << SubBits); // 496
  static constexpr unsigned NumSlots = 8;

  /// \p SlotNanos is the width of one rotation slot; the window covers the
  /// last NumSlots * SlotNanos of wall time (default ~16 s).
  explicit QuantileWindow(uint64_t SlotNanos = 2000000000ull);

  /// Records one sample at the current time. Lock- and allocation-free.
  void record(uint64_t V);

  /// The \p Q quantile (0 < Q <= 1) over the live window, as the upper
  /// bound of the selected bucket (<= 12.5% above the true value), or 0
  /// when the window is empty.
  uint64_t quantile(double Q) const;

  /// Samples currently inside the window.
  uint64_t count() const;

  /// Forgets all samples (tests).
  void reset();

  /// Maps a value to its bucket index: exact below 2^SubBits, then
  /// (octave, sub-bucket).
  static unsigned bucketOf(uint64_t V) {
    if (V < (1ull << SubBits))
      return unsigned(V);
    unsigned Msb = 63u - unsigned(__builtin_clzll(V));
    unsigned Shift = Msb - SubBits;
    unsigned Low = unsigned((V >> Shift) & ((1u << SubBits) - 1));
    return ((Shift + 1) << SubBits) + Low;
  }

  /// Largest value mapping to bucket \p B (what quantile() reports).
  static uint64_t bucketUpper(unsigned B) {
    if (B < (1u << SubBits))
      return B;
    unsigned Shift = (B >> SubBits) - 1;
    uint64_t Low = B & ((1u << SubBits) - 1);
    return (((1ull << SubBits) + Low + 1) << Shift) - 1;
  }

private:
  struct Slot {
    std::atomic<uint64_t> Epoch{UINT64_MAX}; ///< UINT64_MAX = never used.
    std::atomic<uint32_t> Buckets[NumBuckets] = {};
    std::atomic<uint64_t> Count{0};
  };

  uint64_t SlotNs;
  std::unique_ptr<Slot[]> Slots;
};

/// Per-command-class latency windows plus gauge publication.
class LatencyTracker {
public:
  static LatencyTracker &instance();

  /// Records one request latency. Hot path: bucket increment only.
  void record(CommandClass C, uint64_t Micros);

  /// Computes p50/p90/p99 per class and stores them into the
  /// serve.latency.* gauges. Called at observation points only.
  void publishGauges();

  uint64_t quantileMicros(CommandClass C, double Q) const;
  uint64_t count(CommandClass C) const;

  /// Forgets all samples and zeroes the latency gauges (tests).
  void reset();

private:
  LatencyTracker();

  QuantileWindow Windows[unsigned(CommandClass::NumClasses)];
};

} // namespace obs
} // namespace ag

#endif // AG_OBS_QUANTILEWINDOW_H
