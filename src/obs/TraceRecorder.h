//===- TraceRecorder.h - Chrome trace_event recording -----------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: an in-memory event log
/// rendered as Chrome trace_event JSON (loadable in chrome://tracing or
/// https://ui.perfetto.dev). Three event shapes:
///
///  * spans    — B/E duration pairs; must nest properly per track. Emitted
///               for offline passes (OVS, HCD), whole solves, Tarjan
///               searches, parallel rounds and collapse epochs (per-thread
///               worker tracks), snapshot loads, warm re-solves, and
///               individual serve queries.
///  * instants — point events (LCD triggers, governor trips).
///  * counters — sampled values ("C" phase) such as worklist depth over
///               time and tracked memory per category.
///
/// Tracks: each OS thread gets a small stable integer track id on first
/// use (the coordinator usually 0, pool workers 1..N), so parallel rounds
/// render as one lane per worker.
///
/// Names and categories must be string literals (the recorder stores the
/// pointers); every instrumentation point in this codebase complies, which
/// keeps recording allocation-free apart from the event vector itself.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_TRACERECORDER_H
#define AG_OBS_TRACERECORDER_H

#include "adt/Status.h"
#include "obs/Obs.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ag {
namespace obs {

/// The process's observability epoch: a steady-clock anchor for all
/// relative timestamps plus the wall-clock instant it was captured, taken
/// together on first use so `wall time = WallMillis + nanos/1e6` holds for
/// every obs timestamp. FlightRecorder dumps and wide-event lines both
/// derive absolute times from this one anchor, which is what makes them
/// time-correlatable.
struct ObsEpoch {
  std::chrono::steady_clock::time_point Steady;
  uint64_t WallMillis;

  static const ObsEpoch &instance() {
    static const ObsEpoch E = [] {
      ObsEpoch R;
      R.Steady = std::chrono::steady_clock::now();
      R.WallMillis = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count());
      return R;
    }();
    return E;
  }
};

/// Nanoseconds since the process's observability epoch (first call).
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ObsEpoch::instance().Steady)
          .count());
}

/// Wall-clock epoch-milliseconds at the moment the observability epoch was
/// captured; add nowNanos()/1e6 to get an absolute wall timestamp.
inline uint64_t epochWallMillis() { return ObsEpoch::instance().WallMillis; }

/// Stable small integer identifying the calling thread's track.
inline uint32_t trackId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

/// One recorded trace event (16-byte strings by pointer; see file header).
struct TraceEvent {
  uint64_t TsNanos = 0;
  const char *Name = nullptr;
  const char *Cat = nullptr;
  const char *ArgKey = nullptr; ///< Optional single argument.
  uint64_t ArgVal = 0;
  uint32_t Tid = 0;
  char Phase = 'i'; ///< 'B', 'E', 'i', or 'C'.
};

/// Process-wide trace buffer. Mutators append under one mutex — every
/// instrumentation point is phase/round/query granularity, never
/// per-propagation, so contention is negligible; the disabled path never
/// reaches the recorder at all (see Obs.h).
class TraceRecorder {
public:
  static TraceRecorder &instance();

  void begin(const char *Name, const char *Cat) {
    append(Name, Cat, 'B', nullptr, 0);
  }
  void end(const char *Name, const char *Cat) {
    append(Name, Cat, 'E', nullptr, 0);
  }
  void instant(const char *Name, const char *Cat, const char *ArgKey = nullptr,
               uint64_t ArgVal = 0) {
    append(Name, Cat, 'i', ArgKey, ArgVal);
  }
  /// A counter sample: renders as a value-over-time track.
  void counter(const char *Name, uint64_t Value) {
    append(Name, "counter", 'C', "value", Value);
  }

  /// Events recorded so far (tests; racy but monotone).
  size_t eventCount() const;

  /// Snapshot of the buffer (tests).
  std::vector<TraceEvent> events() const;

  /// Drops all recorded events.
  void clear();

  /// Renders the Chrome trace_event JSON document.
  std::string renderJson() const;

  /// Writes renderJson() to \p Path.
  Status writeJson(const std::string &Path) const;

private:
  TraceRecorder() = default;

  void append(const char *Name, const char *Cat, char Phase,
              const char *ArgKey, uint64_t ArgVal);

  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
};

/// RAII span: begins on construction when tracing is enabled, and ends on
/// destruction if (and only if) it began — so B/E pairs stay balanced even
/// if tracing is toggled mid-span.
class TraceSpan {
public:
  TraceSpan(const char *Name, const char *Cat) : Name(Name), Cat(Cat) {
    if (traceEnabled()) {
      Began = true;
      TraceRecorder::instance().begin(Name, Cat);
    }
  }
  ~TraceSpan() {
    if (Began)
      TraceRecorder::instance().end(Name, Cat);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name;
  const char *Cat;
  bool Began = false;
};

/// A TraceSpan that marks a phase boundary: on destruction it additionally
/// publishes MemTracker high-water marks into the MetricsRegistry gauges
/// and the trace's memory counter tracks (see obs::publishMemPeaks).
class PhaseSpan {
public:
  PhaseSpan(const char *Name, const char *Cat) : Span(Name, Cat) {}
  ~PhaseSpan() { publishMemPeaks(); }

private:
  TraceSpan Span;
};

} // namespace obs
} // namespace ag

#endif // AG_OBS_TRACERECORDER_H
