//===- QuantileWindow.cpp - Sliding-window latency quantiles --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/QuantileWindow.h"

#include "obs/MetricsRegistry.h"

#include <cmath>

using namespace ag;
using namespace ag::obs;

QuantileWindow::QuantileWindow(uint64_t SlotNanos)
    : SlotNs(SlotNanos ? SlotNanos : 1), Slots(new Slot[NumSlots]) {}

void QuantileWindow::record(uint64_t V) {
  uint64_t Epoch = nowNanos() / SlotNs;
  Slot &S = Slots[Epoch % NumSlots];
  uint64_t Tag = S.Epoch.load(std::memory_order_acquire);
  if (Tag != Epoch) {
    // First recorder of a new epoch claims and zeroes the slot; losers of
    // the CAS fall through and record into the freshly cleared slot.
    if (S.Epoch.compare_exchange_strong(Tag, Epoch,
                                        std::memory_order_acq_rel)) {
      for (auto &B : S.Buckets)
        B.store(0, std::memory_order_relaxed);
      S.Count.store(0, std::memory_order_relaxed);
    }
  }
  S.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
  S.Count.fetch_add(1, std::memory_order_relaxed);
}

uint64_t QuantileWindow::quantile(double Q) const {
  uint64_t CurEpoch = nowNanos() / SlotNs;
  uint64_t MinEpoch =
      CurEpoch >= NumSlots - 1 ? CurEpoch - (NumSlots - 1) : 0;
  uint64_t Merged[NumBuckets] = {};
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumSlots; ++I) {
    const Slot &S = Slots[I];
    uint64_t E = S.Epoch.load(std::memory_order_acquire);
    if (E == UINT64_MAX || E < MinEpoch || E > CurEpoch)
      continue;
    for (unsigned B = 0; B != NumBuckets; ++B) {
      uint64_t N = S.Buckets[B].load(std::memory_order_relaxed);
      Merged[B] += N;
      Total += N;
    }
  }
  if (!Total)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  uint64_t Rank = uint64_t(std::ceil(Q * double(Total)));
  if (Rank == 0)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Acc = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Acc += Merged[B];
    if (Acc >= Rank)
      return bucketUpper(B);
  }
  return bucketUpper(NumBuckets - 1);
}

uint64_t QuantileWindow::count() const {
  uint64_t CurEpoch = nowNanos() / SlotNs;
  uint64_t MinEpoch =
      CurEpoch >= NumSlots - 1 ? CurEpoch - (NumSlots - 1) : 0;
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumSlots; ++I) {
    const Slot &S = Slots[I];
    uint64_t E = S.Epoch.load(std::memory_order_acquire);
    if (E == UINT64_MAX || E < MinEpoch || E > CurEpoch)
      continue;
    Total += S.Count.load(std::memory_order_relaxed);
  }
  return Total;
}

void QuantileWindow::reset() {
  for (unsigned I = 0; I != NumSlots; ++I) {
    Slot &S = Slots[I];
    S.Epoch.store(UINT64_MAX, std::memory_order_relaxed);
    for (auto &B : S.Buckets)
      B.store(0, std::memory_order_relaxed);
    S.Count.store(0, std::memory_order_relaxed);
  }
}

LatencyTracker &LatencyTracker::instance() {
  static LatencyTracker T;
  return T;
}

LatencyTracker::LatencyTracker() = default;

void LatencyTracker::record(CommandClass C, uint64_t Micros) {
  Windows[unsigned(C)].record(Micros);
}

uint64_t LatencyTracker::quantileMicros(CommandClass C, double Q) const {
  return Windows[unsigned(C)].quantile(Q);
}

uint64_t LatencyTracker::count(CommandClass C) const {
  return Windows[unsigned(C)].count();
}

void LatencyTracker::publishGauges() {
  // Gauge enum layout is class-major, quantile-minor — see Gauge in
  // MetricsRegistry.h. setGauge (not maxGauge): quantiles move both ways.
  static constexpr double Quantiles[] = {0.50, 0.90, 0.99};
  MetricsRegistry &R = MetricsRegistry::instance();
  unsigned Base = unsigned(Gauge::ServeLatencyP50Query);
  for (unsigned C = 0; C != unsigned(CommandClass::NumClasses); ++C)
    for (unsigned Qi = 0; Qi != 3; ++Qi)
      R.setGauge(static_cast<Gauge>(Base + C * 3 + Qi),
                 Windows[C].quantile(Quantiles[Qi]));
}

void LatencyTracker::reset() {
  for (auto &W : Windows)
    W.reset();
  MetricsRegistry &R = MetricsRegistry::instance();
  unsigned Base = unsigned(Gauge::ServeLatencyP50Query);
  for (unsigned I = 0; I != 9; ++I)
    R.setGauge(static_cast<Gauge>(Base + I), 0);
}
