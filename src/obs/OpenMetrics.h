//===- OpenMetrics.h - OpenMetrics text exposition --------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the MetricsRegistry in OpenMetrics text format (the Prometheus
/// exposition format, https://openmetrics.io) so a live server can be
/// scraped. Mapping from the registry's universe:
///
///  * counters    — `ag_<name>_total` samples with `# TYPE ... counter`;
///                  dots in registry names become underscores.
///  * gauges      — `ag_<name>` with `# TYPE ... gauge`.
///  * histograms  — `ag_<name>_bucket{le="..."}` cumulative buckets (the
///                  registry's log2 bucket k holds values in
///                  [2^(k-1), 2^k), so its inclusive upper bound is
///                  2^k - 1), plus `_sum`/`_count`, with trailing empty
///                  buckets collapsed into the mandatory `+Inf` bucket.
///
/// The document ends with the mandatory `# EOF` terminator. Rendering is
/// deterministic (enum order), mirroring renderJson().
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_OPENMETRICS_H
#define AG_OBS_OPENMETRICS_H

#include <string>

namespace ag {
namespace obs {

class MetricsRegistry;

/// Renders \p R as a complete OpenMetrics text document.
std::string renderOpenMetrics(const MetricsRegistry &R);

/// The Content-Type a scrape response should carry.
const char *openMetricsContentType();

} // namespace obs
} // namespace ag

#endif // AG_OBS_OPENMETRICS_H
