//===- MetricsHttp.h - Embedded metrics exposition endpoint -----*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal, dependency-free HTTP/1.1 endpoint serving `GET /metrics` so
/// Prometheus can scrape a live `ptatool serve` process. One blocking
/// accept thread over raw POSIX sockets; each connection is read with a
/// short poll timeout, answered, and closed (Connection: close) — a scrape
/// every few seconds is the design load, not a web server.
///
/// Security posture (DESIGN.md §15): the listener binds 127.0.0.1 only,
/// serves a single read-only path, never reads more than a small fixed
/// request buffer, and carries no auth — anyone who can reach the
/// loopback can read process metrics, so exposing it beyond localhost is
/// the operator's deliberate choice (e.g. an SSH tunnel or a sidecar).
///
/// Port 0 binds an ephemeral port (tests); port() reports the actual one.
///
//===----------------------------------------------------------------------===//

#ifndef AG_OBS_METRICSHTTP_H
#define AG_OBS_METRICSHTTP_H

#include "adt/Status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace ag {
namespace obs {

/// Blocking-accept exposition server for one render callback.
class MetricsHttpServer {
public:
  /// \p Render produces the OpenMetrics document for each scrape; it runs
  /// on the accept thread and must be thread-safe.
  explicit MetricsHttpServer(std::function<std::string()> Render);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer &) = delete;
  MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 = ephemeral) and starts the accept
  /// thread. Returns a Status on bind/listen failure. Only returns once
  /// the listener is bound, the port published, and the accept thread is
  /// actually polling — a scrape issued immediately after start() can
  /// never race the thread's startup (it would sit in the listen backlog
  /// unanswered until the first poll otherwise, which on slow runners
  /// pushed it past short client timeouts).
  Status start(uint16_t Port);

  /// The bound port (valid after a successful start()).
  uint16_t port() const { return BoundPort; }

  /// Stops the accept thread and closes the listener. Idempotent; the
  /// destructor calls it.
  void stop();

  /// Requests answered so far (any status).
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  void acceptLoop();
  void handleConnection(int Fd);

  std::function<std::string()> Render;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Served{0};
  std::thread Thread;
  /// start()/acceptLoop() ready handshake (see start()).
  std::mutex ReadyMu;
  std::condition_variable ReadyCv;
  bool Ready = false;
};

} // namespace obs
} // namespace ag

#endif // AG_OBS_METRICSHTTP_H
