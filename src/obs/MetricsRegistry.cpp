//===- MetricsRegistry.cpp - Process-wide metrics -------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include <cassert>

using namespace ag;
using namespace ag::obs;

namespace {

// Names in enum order. Solver.* entries must match SolverStats field order
// (absorb() pairs them by index).
constexpr const char *CounterNames[] = {
    "solver.nodes_collapsed",
    "solver.nodes_searched",
    "solver.propagations",
    "solver.changed_propagations",
    "solver.cycle_detect_attempts",
    "solver.edges_added",
    "solver.worklist_pops",
    "solver.hcd_collapses",
    "solver.lcd_trigger_probes",
    "solver.parallel_rounds",
    "solver.parallel_epochs",
    "solver.diff_elements_resolved",
    "solver.warm_seeded_nodes",
    "solver.warm_new_constraints",
    "solver.runs",
    "solver.fallbacks",
    "governor.trips",
    "bdd.cache_hits",
    "bdd.cache_misses",
    "serve.queries",
    "serve.lru_hits",
    "serve.lru_misses",
    "serve.snapshot_loads",
    "serve.warm_starts",
    "solver.interned_hits",
    "solver.interned_misses",
    "demand.queries",
    "demand.memo_hits",
    "demand.memo_misses",
    "demand.steps",
    "demand.escalations",
    "demand.invalidations",
    "serve.requests",
    "serve.tier.lru",
    "serve.tier.memo",
    "serve.tier.demand",
    "serve.tier.escalation",
    "serve.tier.snapshot",
    "serve.tier.warm_start",
    "serve.slow_queries",
    "serve.events_emitted",
    "serve.events_dropped",
    "serve.conns_accepted",
    "serve.conns_rejected",
    "serve.conns_idle_closed",
};
static_assert(sizeof(CounterNames) / sizeof(CounterNames[0]) ==
                  unsigned(Counter::NumCounters),
              "counter name table out of sync");
static_assert(unsigned(Counter::SolverRuns) == SolverStats::NumFields,
              "solver.* counter block out of sync with SolverStats");

constexpr const char *GaugeNames[] = {
    "mem.peak_bitmap_bytes",
    "mem.peak_bdd_bytes",
    "mem.peak_other_bytes",
    "mem.peak_joint_bytes",
    "mem.arena_reserved_bytes",
    "mem.arena_slabs",
    "serve.latency.p50.query",
    "serve.latency.p90.query",
    "serve.latency.p99.query",
    "serve.latency.p50.mutate",
    "serve.latency.p90.mutate",
    "serve.latency.p99.mutate",
    "serve.latency.p50.admin",
    "serve.latency.p90.admin",
    "serve.latency.p99.admin",
    "serve.conns_active",
};
static_assert(sizeof(GaugeNames) / sizeof(GaugeNames[0]) ==
                  unsigned(Gauge::NumGauges),
              "gauge name table out of sync");

constexpr const char *HistNames[] = {
    "solver.pts_diff_size",
    "solver.cycle_size",
    "solver.worklist_depth",
    "serve.query_batch",
    "demand.frontier",
    "serve.request_micros",
};
static_assert(sizeof(HistNames) / sizeof(HistNames[0]) ==
                  unsigned(Hist::NumHists),
              "histogram name table out of sync");

} // namespace

const char *ag::obs::counterName(Counter C) {
  return CounterNames[unsigned(C)];
}
const char *ag::obs::gaugeName(Gauge G) { return GaugeNames[unsigned(G)]; }
const char *ag::obs::histName(Hist H) { return HistNames[unsigned(H)]; }

bool ag::obs::counterIsSchedulingInvariant(Counter C) {
  switch (C) {
  // Totals fixed by the input (HCD's offline-dictated merges, warm-start
  // seeding, count-of-run events) are stable across worker schedules.
  case Counter::SolverHcdCollapses:
  case Counter::SolverWarmSeededNodes:
  case Counter::SolverWarmNewConstraints:
  case Counter::SolverRuns:
  case Counter::SolverFallbacks:
  case Counter::ServeQueries:
  case Counter::ServeSnapshotLoads:
  case Counter::ServeWarmStarts:
  case Counter::BddCacheHits:   // BDD runs are single-threaded.
  case Counter::BddCacheMisses:
  // The number of demand queries issued is fixed by the workload; what
  // each one costs (memo hits, steps, escalations) depends on the order
  // concurrent queries warmed the memo, so those stay variant. Likewise
  // serve.requests is fixed by the REPL input while the tier path each
  // request takes (and whether its event line fits the ring) is not.
  case Counter::DemandQueries:
  case Counter::ServeRequests:
    return true;
  // Connection accounting is timing-driven (how fast clients connect,
  // whether the idle reaper fires first), so none of serve.conns_* joins
  // the invariant set even though accepted counts are workload-fixed in
  // well-behaved runs.
  // Propagation totals, search visits, trigger probes, pop counts, round
  // counts and trip counts all depend on which interleaving the workers
  // happened to take. So do edges_added and nodes_collapsed: the parallel
  // solver's lazy cycle trigger compares points-to sets at propagation
  // time, so which cycles it catches — and therefore which canonical
  // (rep, rep) edges count as distinct inserts — varies with preemption,
  // even though the points-to solution at fixpoint is identical. The
  // interning tallies vary the same way: the *routed* per-node solution
  // is thread-count-invariant, but which node ends up the representative
  // (and therefore how many rep sets exist to dedup) is not.
  default:
    return false;
  }
}

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry R;
  return R;
}

void MetricsRegistry::absorb(const SolverStats &S) {
  size_t I = 0;
  S.forEachField([&](const char *, uint64_t V) {
    if (V)
      add(static_cast<Counter>(I), V);
    ++I;
  });
  assert(I == SolverStats::NumFields && "absorb out of sync");
}

void MetricsRegistry::reset() {
  for (Shard &S : Shards)
    for (auto &C : S.Counts)
      C.store(0, std::memory_order_relaxed);
  for (auto &G : Gauges)
    G.store(0, std::memory_order_relaxed);
  for (HistData &H : Hists) {
    for (auto &B : H.Buckets)
      B.store(0, std::memory_order_relaxed);
    H.Count.store(0, std::memory_order_relaxed);
    H.Sum.store(0, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::renderText() const {
  std::string Out;
  for (unsigned I = 0; I != unsigned(Counter::NumCounters); ++I) {
    Out += CounterNames[I];
    Out += ": ";
    Out += std::to_string(counterValue(static_cast<Counter>(I)));
    Out += '\n';
  }
  for (unsigned I = 0; I != unsigned(Gauge::NumGauges); ++I) {
    Out += GaugeNames[I];
    Out += ": ";
    Out += std::to_string(gaugeValue(static_cast<Gauge>(I)));
    Out += '\n';
  }
  for (unsigned I = 0; I != unsigned(Hist::NumHists); ++I) {
    Hist H = static_cast<Hist>(I);
    uint64_t N = histCount(H);
    Out += HistNames[I];
    Out += ": count ";
    Out += std::to_string(N);
    Out += ", sum ";
    Out += std::to_string(histSum(H));
    if (N) {
      Out += ", mean ";
      Out += std::to_string(histSum(H) / N);
    }
    Out += '\n';
  }
  return Out;
}

std::string MetricsRegistry::renderJson(bool Compact) const {
  const char *Nl = Compact ? "" : "\n";
  const char *In1 = Compact ? "" : "  ";
  const char *In2 = Compact ? "" : "    ";
  std::string Out = "{";
  Out += Nl;
  Out += In1;
  Out += "\"schema\": \"ag.metrics.v5\",";
  Out += Nl;

  Out += In1;
  Out += "\"counters\": {";
  Out += Nl;
  for (unsigned I = 0; I != unsigned(Counter::NumCounters); ++I) {
    Out += In2;
    Out += '"';
    Out += CounterNames[I];
    Out += "\": ";
    Out += std::to_string(counterValue(static_cast<Counter>(I)));
    if (I + 1 != unsigned(Counter::NumCounters))
      Out += ',';
    Out += Nl;
  }
  Out += In1;
  Out += "},";
  Out += Nl;

  Out += In1;
  Out += "\"gauges\": {";
  Out += Nl;
  for (unsigned I = 0; I != unsigned(Gauge::NumGauges); ++I) {
    Out += In2;
    Out += '"';
    Out += GaugeNames[I];
    Out += "\": ";
    Out += std::to_string(gaugeValue(static_cast<Gauge>(I)));
    if (I + 1 != unsigned(Gauge::NumGauges))
      Out += ',';
    Out += Nl;
  }
  Out += In1;
  Out += "},";
  Out += Nl;

  Out += In1;
  Out += "\"histograms\": {";
  Out += Nl;
  for (unsigned I = 0; I != unsigned(Hist::NumHists); ++I) {
    Hist H = static_cast<Hist>(I);
    Out += In2;
    Out += '"';
    Out += HistNames[I];
    Out += "\": {\"count\": ";
    Out += std::to_string(histCount(H));
    Out += ", \"sum\": ";
    Out += std::to_string(histSum(H));
    Out += ", \"buckets\": [";
    // Trailing zero buckets are trimmed for size; bucket k covers values
    // in [2^(k-1), 2^k) and the array length is part of the payload, not
    // the schema.
    unsigned Last = NumBuckets;
    while (Last > 0 && histBucket(H, Last - 1) == 0)
      --Last;
    for (unsigned B = 0; B != Last; ++B) {
      if (B)
        Out += ", ";
      Out += std::to_string(histBucket(H, B));
    }
    Out += "]}";
    if (I + 1 != unsigned(Hist::NumHists))
      Out += ',';
    Out += Nl;
  }
  Out += In1;
  Out += "}";
  Out += Nl;
  Out += "}";
  Out += Nl;
  return Out;
}
