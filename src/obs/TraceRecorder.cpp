//===- TraceRecorder.cpp - Chrome trace_event recording -------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"

#include <cstdio>
#include <fstream>

using namespace ag;
using namespace ag::obs;

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder R;
  return R;
}

void TraceRecorder::append(const char *Name, const char *Cat, char Phase,
                           const char *ArgKey, uint64_t ArgVal) {
  TraceEvent E;
  E.TsNanos = nowNanos();
  E.Name = Name;
  E.Cat = Cat;
  E.ArgKey = ArgKey;
  E.ArgVal = ArgVal;
  E.Tid = trackId();
  E.Phase = Phase;
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(E);
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.clear();
}

std::string TraceRecorder::renderJson() const {
  std::vector<TraceEvent> Snapshot = events();
  std::string Out = "{\"traceEvents\":[\n";
  char Buf[64];
  for (size_t I = 0; I != Snapshot.size(); ++I) {
    const TraceEvent &E = Snapshot[I];
    Out += "{\"name\":\"";
    Out += E.Name;
    Out += "\",\"cat\":\"";
    Out += E.Cat;
    Out += "\",\"ph\":\"";
    Out += E.Phase;
    // trace_event timestamps are microseconds; keep sub-microsecond
    // precision as a decimal fraction.
    std::snprintf(Buf, sizeof(Buf), "\",\"ts\":%llu.%03u,",
                  static_cast<unsigned long long>(E.TsNanos / 1000),
                  static_cast<unsigned>(E.TsNanos % 1000));
    Out += Buf;
    Out += "\"pid\":1,\"tid\":";
    Out += std::to_string(E.Tid);
    if (E.ArgKey) {
      Out += ",\"args\":{\"";
      Out += E.ArgKey;
      Out += "\":";
      Out += std::to_string(E.ArgVal);
      Out += "}";
    } else if (E.Phase == 'i') {
      // Instants want a scope; "t" (thread) keeps them on their track.
      Out += ",\"s\":\"t\"";
    }
    Out += "}";
    if (I + 1 != Snapshot.size())
      Out += ',';
    Out += '\n';
  }
  Out += "],\"displayTimeUnit\":\"ms\",";
  Out += "\"metadata\":{\"schema\":\"ag.trace.v1\"}}\n";
  return Out;
}

Status TraceRecorder::writeJson(const std::string &Path) const {
  std::ofstream Os(Path, std::ios::binary);
  if (!Os)
    return Status::ioError("cannot open trace output '" + Path + "'");
  std::string Json = renderJson();
  Os.write(Json.data(), static_cast<std::streamsize>(Json.size()));
  if (!Os)
    return Status::ioError("short write to trace output '" + Path + "'");
  return Status::okStatus();
}
