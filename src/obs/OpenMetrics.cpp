//===- OpenMetrics.cpp - OpenMetrics text exposition ----------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "obs/OpenMetrics.h"

#include "obs/MetricsRegistry.h"

using namespace ag;
using namespace ag::obs;

namespace {

/// "serve.latency.p99.query" -> "ag_serve_latency_p99_query".
std::string mangled(const char *Name) {
  std::string Out = "ag_";
  for (const char *P = Name; *P; ++P)
    Out += *P == '.' ? '_' : *P;
  return Out;
}

void appendSample(std::string &Out, const std::string &Name, uint64_t V) {
  Out += Name;
  Out += ' ';
  Out += std::to_string(V);
  Out += '\n';
}

} // namespace

const char *ag::obs::openMetricsContentType() {
  return "application/openmetrics-text; version=1.0.0; charset=utf-8";
}

std::string ag::obs::renderOpenMetrics(const MetricsRegistry &R) {
  std::string Out;
  Out.reserve(8192);

  for (unsigned I = 0; I != unsigned(Counter::NumCounters); ++I) {
    Counter C = static_cast<Counter>(I);
    std::string Name = mangled(counterName(C));
    Out += "# TYPE ";
    Out += Name;
    Out += " counter\n";
    appendSample(Out, Name + "_total", R.counterValue(C));
  }

  for (unsigned I = 0; I != unsigned(Gauge::NumGauges); ++I) {
    Gauge G = static_cast<Gauge>(I);
    std::string Name = mangled(gaugeName(G));
    Out += "# TYPE ";
    Out += Name;
    Out += " gauge\n";
    appendSample(Out, Name, R.gaugeValue(G));
  }

  for (unsigned I = 0; I != unsigned(Hist::NumHists); ++I) {
    Hist H = static_cast<Hist>(I);
    std::string Name = mangled(histName(H));
    Out += "# TYPE ";
    Out += Name;
    Out += " histogram\n";
    unsigned Last = MetricsRegistry::NumBuckets;
    while (Last > 0 && R.histBucket(H, Last - 1) == 0)
      --Last;
    uint64_t Cum = 0;
    for (unsigned B = 0; B != Last; ++B) {
      Cum += R.histBucket(H, B);
      // Registry bucket k holds [2^(k-1), 2^k); inclusive bound 2^k - 1.
      // Bucket 64 (top bit set) saturates at the uint64_t maximum.
      uint64_t Le =
          B == 0 ? 0 : B >= 64 ? UINT64_MAX : (uint64_t(1) << B) - 1;
      Out += Name;
      Out += "_bucket{le=\"";
      Out += std::to_string(Le);
      Out += "\"} ";
      Out += std::to_string(Cum);
      Out += '\n';
    }
    Out += Name;
    Out += "_bucket{le=\"+Inf\"} ";
    Out += std::to_string(R.histCount(H));
    Out += '\n';
    appendSample(Out, Name + "_sum", R.histSum(H));
    appendSample(Out, Name + "_count", R.histCount(H));
  }

  Out += "# EOF\n";
  return Out;
}
