//===- Constraint.h - Inclusion constraint representation -------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three inclusion-constraint types of the paper's Table 1, extended
/// with the function-call offsets of Pearce et al. that the paper uses to
/// resolve indirect calls ("function parameters are numbered contiguously
/// starting immediately after their corresponding function variable, and
/// when resolving indirect calls they are accessed as offsets to that
/// function variable").
///
/// | Kind      | Program code | Constraint | Meaning                       |
/// |-----------|--------------|------------|-------------------------------|
/// | AddressOf | a = &b       | a ⊇ {b}    | loc(b) ∈ pts(a)               |
/// | Copy      | a = b        | a ⊇ b      | pts(a) ⊇ pts(b)               |
/// | Load      | a = *b       | a ⊇ *(b+k) | ∀v ∈ pts(b): pts(a) ⊇ pts(v+k)|
/// | Store     | *a = b       | *(a+k) ⊇ b | ∀v ∈ pts(a): pts(v+k) ⊇ pts(b)|
///
//===----------------------------------------------------------------------===//

#ifndef AG_CONSTRAINTS_CONSTRAINT_H
#define AG_CONSTRAINTS_CONSTRAINT_H

#include <cassert>
#include <cstdint>

namespace ag {

/// Dense id of a constraint-graph node. Variables and memory objects share
/// one id space; an id's role is determined by where it appears.
using NodeId = uint32_t;

/// Sentinel for "no node".
constexpr NodeId InvalidNode = ~NodeId(0);

/// The constraint forms of Table 1 (plus call offsets).
enum class ConstraintKind : uint8_t {
  AddressOf, ///< Base constraint: a = &b.
  Copy,      ///< Simple constraint: a = b.
  Load,      ///< Complex constraint 1: a = *(b + Offset).
  Store,     ///< Complex constraint 2: *(a + Offset) = b.
};

/// Returns a short mnemonic for \p K ("addr", "copy", "load", "store").
inline const char *constraintKindName(ConstraintKind K) {
  switch (K) {
  case ConstraintKind::AddressOf:
    return "addr";
  case ConstraintKind::Copy:
    return "copy";
  case ConstraintKind::Load:
    return "load";
  case ConstraintKind::Store:
    return "store";
  }
  assert(false && "invalid constraint kind");
  return "?";
}

/// One inclusion constraint.
///
/// \c Dst is always the left-hand side: the node whose points-to set (or
/// pointee's points-to set, for Store) grows. \c Offset is only meaningful
/// for Load and Store and selects a slot within the pointed-to object
/// (used for indirect-call parameter passing); it must be zero otherwise.
struct Constraint {
  ConstraintKind Kind;
  NodeId Dst;
  NodeId Src;
  uint32_t Offset;

  Constraint(ConstraintKind Kind, NodeId Dst, NodeId Src,
             uint32_t Offset = 0)
      : Kind(Kind), Dst(Dst), Src(Src), Offset(Offset) {
    assert((Offset == 0 || Kind == ConstraintKind::Load ||
            Kind == ConstraintKind::Store) &&
           "offsets only apply to complex constraints");
  }

  bool operator==(const Constraint &RHS) const {
    return Kind == RHS.Kind && Dst == RHS.Dst && Src == RHS.Src &&
           Offset == RHS.Offset;
  }
};

} // namespace ag

#endif // AG_CONSTRAINTS_CONSTRAINT_H
