//===- ConstraintSystem.cpp - A complete set-constraint problem -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "constraints/ConstraintSystem.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ag;

NodeId ConstraintSystem::addNode(std::string Name, uint32_t Size) {
  assert(Size >= 1 && "nodes occupy at least one slot");
  NodeId Id = numNodes();
  Sizes.push_back(Size);
  Names.push_back(std::move(Name));
  IsFunction.push_back(false);
  // Interior slots are ordinary size-1 nodes.
  for (uint32_t I = 1; I < Size; ++I) {
    Sizes.push_back(1);
    Names.push_back(Names[Id] + "[" + std::to_string(I) + "]");
    IsFunction.push_back(false);
  }
  return Id;
}

NodeId ConstraintSystem::addFunction(std::string Name, uint32_t NumParams) {
  NodeId Id = addNode(Name, FunctionParamOffset + NumParams);
  IsFunction[Id] = true;
  Names[Id + FunctionReturnOffset] = Names[Id] + ".ret";
  for (uint32_t I = 0; I < NumParams; ++I)
    Names[Id + FunctionParamOffset + I] =
        Names[Id] + ".arg" + std::to_string(I);
  return Id;
}

uint64_t ConstraintSystem::hashKey(const Constraint &C) {
  assert(C.Dst < (1u << 23) && C.Src < (1u << 23) &&
         "node id exceeds dedup-key capacity");
  assert(C.Offset < (1u << 16) && "offset exceeds dedup-key capacity");
  return (uint64_t(C.Kind) << 62) | (uint64_t(C.Offset) << 46) |
         (uint64_t(C.Dst) << 23) | uint64_t(C.Src);
}

void ConstraintSystem::add(const Constraint &C) {
  assert(C.Dst < numNodes() && C.Src < numNodes() &&
         "constraint references unknown node");
  // A copy of a node into itself can never add information.
  if (C.Kind == ConstraintKind::Copy && C.Dst == C.Src)
    return;
  if (!Seen.insert(hashKey(C)).second)
    return;
  Constraints.push_back(C);
}

uint64_t ConstraintSystem::countKind(ConstraintKind K) const {
  uint64_t N = 0;
  for (const Constraint &C : Constraints)
    N += (C.Kind == K);
  return N;
}

std::string ConstraintSystem::serialize() const {
  std::ostringstream Out;
  Out << "# grasshopper constraint file\n";
  Out << "numnodes " << numNodes() << "\n";
  for (NodeId N = 0; N != numNodes(); ++N) {
    // Interior slots of sized nodes are implied by their head's size.
    Out << "node " << N << " " << Sizes[N];
    if (!Names[N].empty())
      Out << " " << Names[N];
    Out << "\n";
    if (IsFunction[N])
      Out << "fun " << N << "\n";
  }
  for (const Constraint &C : Constraints) {
    Out << constraintKindName(C.Kind) << " " << C.Dst << " " << C.Src;
    if (C.Kind == ConstraintKind::Load || C.Kind == ConstraintKind::Store)
      Out << " " << C.Offset;
    Out << "\n";
  }
  return Out.str();
}

Status ConstraintSystem::parseText(const std::string &Text,
                                   ConstraintSystem &Out) {
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto fail = [&](const std::string &Msg) {
    return Status::parseError("line " + std::to_string(LineNo) + ": " + Msg);
  };

  // Node declarations can carry explicit sizes; ids must be declared in
  // order so addNode reproduces them. Sized nodes implicitly declare their
  // interior slots, which the file also lists (harmlessly) — we skip ids we
  // already know.
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream Tok(Line);
    std::string Kind;
    Tok >> Kind;
    if (Kind == "numnodes") {
      uint64_t N;
      if (!(Tok >> N))
        return fail("numnodes expects a count");
      if (N > MaxNodes)
        return fail("numnodes " + std::to_string(N) + " exceeds the " +
                    std::to_string(MaxNodes) + "-node capacity");
      continue; // Informational; nodes are created by 'node' records.
    }
    if (Kind == "node") {
      uint64_t Id, Size;
      if (!(Tok >> Id >> Size))
        return fail("node expects <id> <size> [name]");
      std::string Name;
      std::getline(Tok, Name);
      // Strip the single leading separator space, keep interior spaces.
      if (!Name.empty() && Name[0] == ' ')
        Name.erase(0, 1);
      if (Id < Out.numNodes()) {
        // Interior slot already created by its head; allow a name refresh.
        if (!Name.empty())
          Out.Names[Id] = Name;
        continue;
      }
      if (Id != Out.numNodes())
        return fail("node ids must be declared densely in order");
      if (Size == 0 || Size > MaxNodeSize)
        return fail("node size out of range");
      if (Id + Size > MaxNodes)
        return fail("node table exceeds the " + std::to_string(MaxNodes) +
                    "-node capacity");
      Out.addNode(Name, static_cast<uint32_t>(Size));
      continue;
    }
    if (Kind == "fun") {
      uint64_t Id;
      if (!(Tok >> Id))
        return fail("fun expects <id>");
      if (Id >= Out.numNodes())
        return fail("fun references unknown node");
      Out.IsFunction[Id] = true;
      continue;
    }
    uint64_t Dst, Src, Offset = 0;
    if (!(Tok >> Dst >> Src))
      return fail("constraint expects <dst> <src>");
    if (Kind == "load" || Kind == "store")
      Tok >> Offset; // Optional; defaults to 0.
    if (Dst >= Out.numNodes() || Src >= Out.numNodes())
      return fail("constraint references unknown node");
    if (Offset > MaxOffset)
      return fail("offset " + std::to_string(Offset) + " exceeds the " +
                  std::to_string(MaxOffset) + " maximum");
    if (Kind == "addr")
      Out.addAddressOf(static_cast<NodeId>(Dst), static_cast<NodeId>(Src));
    else if (Kind == "copy")
      Out.addCopy(static_cast<NodeId>(Dst), static_cast<NodeId>(Src));
    else if (Kind == "load")
      Out.addLoad(static_cast<NodeId>(Dst), static_cast<NodeId>(Src),
                  static_cast<uint32_t>(Offset));
    else if (Kind == "store")
      Out.addStore(static_cast<NodeId>(Dst), static_cast<NodeId>(Src),
                   static_cast<uint32_t>(Offset));
    else
      return fail("unknown record kind '" + Kind + "'");
  }
  return Status();
}

bool ConstraintSystem::parse(const std::string &Text, ConstraintSystem &Out,
                             std::string &Error) {
  Status St = parseText(Text, Out);
  if (St.ok())
    return true;
  Error = St.message();
  return false;
}

bool ConstraintSystem::writeToFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << serialize();
  return static_cast<bool>(Out);
}

Status ConstraintSystem::loadFromFile(const std::string &Path,
                                      ConstraintSystem &Out) {
  std::ifstream In(Path);
  if (!In)
    return Status::ioError("cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return Status::ioError("read error on '" + Path + "'");
  Status St = parseText(Buf.str(), Out);
  if (!St.ok())
    return Status(St.code(), Path + ": " + St.message());
  return St;
}

bool ConstraintSystem::readFromFile(const std::string &Path,
                                    ConstraintSystem &Out,
                                    std::string &Error) {
  Status St = loadFromFile(Path, Out);
  if (St.ok())
    return true;
  Error = St.message();
  return false;
}
