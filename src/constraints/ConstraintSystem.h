//===- ConstraintSystem.h - A complete set-constraint problem ---*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ConstraintSystem is the input to every solver: a set of nodes (program
/// variables and abstract memory objects in one id space) plus the inclusion
/// constraints over them. It also carries the per-node metadata the solvers
/// need to resolve field-insensitive call offsets (object sizes), and a text
/// serialization so benchmark suites can be stored and re-loaded the way the
/// paper's constraint files produced by CIL were.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CONSTRAINTS_CONSTRAINTSYSTEM_H
#define AG_CONSTRAINTS_CONSTRAINTSYSTEM_H

#include "adt/Status.h"
#include "constraints/Constraint.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace ag {

/// Container for one pointer-analysis problem instance.
class ConstraintSystem {
public:
  ConstraintSystem() = default;

  /// Creates a node named \p Name occupying \p Size consecutive slots.
  ///
  /// A size-N node reserves ids [id, id+N): dereferences with offset k < N
  /// resolve to id+k. Function objects use this for return/parameter slots;
  /// plain variables and objects have size 1. \returns the first id.
  NodeId addNode(std::string Name = "", uint32_t Size = 1);

  /// Creates a function object with \p NumParams parameters.
  ///
  /// Layout follows the paper: slot 0 is the function itself, slot 1 the
  /// return value, slots 2..NumParams+1 the parameters (so parameter i is
  /// accessed as offset 2+i). \returns the function's node id.
  NodeId addFunction(std::string Name, uint32_t NumParams);

  /// Slot offset of a function's return value.
  static constexpr uint32_t FunctionReturnOffset = 1;
  /// Slot offset of a function's first parameter.
  static constexpr uint32_t FunctionParamOffset = 2;

  /// Hard capacity limits, set by the constraint dedup key's bit layout
  /// (23 bits per node id, 16 bits per offset — see hashKey). parseText
  /// rejects files exceeding them with a structured error.
  static constexpr uint32_t MaxNodes = 1u << 23;
  static constexpr uint32_t MaxOffset = (1u << 16) - 1;
  static constexpr uint32_t MaxNodeSize = 1u << 16;

  /// Number of node ids in use (including interior slots of sized nodes).
  uint32_t numNodes() const { return static_cast<uint32_t>(Sizes.size()); }

  /// Number of slots of node \p N; interior slots report 1.
  uint32_t sizeOf(NodeId N) const { return Sizes[N]; }

  /// Name of node \p N (may be empty).
  const std::string &nameOf(NodeId N) const { return Names[N]; }

  /// Renames node \p N.
  void setName(NodeId N, std::string Name) { Names[N] = std::move(Name); }

  /// True if \p N is a function object created by addFunction.
  bool isFunction(NodeId N) const { return IsFunction[N]; }

  /// Returns a system with this one's node table (ids, sizes, names,
  /// function flags) but no constraints. Used by rewriting passes.
  ConstraintSystem cloneNodeTable() const {
    ConstraintSystem Out;
    Out.Sizes = Sizes;
    Out.Names = Names;
    Out.IsFunction = IsFunction;
    return Out;
  }

  /// Adds a = &b.
  void addAddressOf(NodeId A, NodeId B) {
    add(Constraint(ConstraintKind::AddressOf, A, B));
  }
  /// Adds a = b.
  void addCopy(NodeId A, NodeId B) {
    add(Constraint(ConstraintKind::Copy, A, B));
  }
  /// Adds a = *(b + Offset).
  void addLoad(NodeId A, NodeId B, uint32_t Offset = 0) {
    add(Constraint(ConstraintKind::Load, A, B, Offset));
  }
  /// Adds *(a + Offset) = b.
  void addStore(NodeId A, NodeId B, uint32_t Offset = 0) {
    add(Constraint(ConstraintKind::Store, A, B, Offset));
  }

  /// Adds \p C, silently dropping exact duplicates and no-op copies.
  void add(const Constraint &C);

  /// All constraints, in insertion order.
  const std::vector<Constraint> &constraints() const { return Constraints; }

  /// Counts constraints of kind \p K.
  uint64_t countKind(ConstraintKind K) const;

  /// Resolves the node a dereference of object \p Obj at \p Offset targets,
  /// or InvalidNode if the offset is out of bounds for that object. This is
  /// the validity check indirect-call resolution relies on.
  NodeId offsetTarget(NodeId Obj, uint32_t Offset) const {
    if (Offset == 0)
      return Obj;
    if (Offset >= Sizes[Obj])
      return InvalidNode;
    return Obj + Offset;
  }

  /// Serializes to the text constraint-file format.
  ///
  /// Format: one record per line. `node <id> <size> <name>` declares nodes
  /// (in id order); `fun <id>` marks function objects; `addr|copy <dst>
  /// <src>` and `load|store <dst> <src> <off>` declare constraints. Lines
  /// starting with '#' are comments.
  std::string serialize() const;

  /// Parses the text format produced by serialize(). Every record is
  /// validated (ids dense and within MaxNodes, sizes within MaxNodeSize,
  /// offsets within MaxOffset), so arbitrary untrusted input yields a
  /// ParseError Status — never an assert or out-of-range write. On error
  /// \p Out may hold a partially-built system and must be discarded.
  static Status parseText(const std::string &Text, ConstraintSystem &Out);

  /// Legacy bool-and-string wrapper around parseText().
  static bool parse(const std::string &Text, ConstraintSystem &Out,
                    std::string &Error);

  /// Writes serialize() output to \p Path. \returns false on I/O error.
  bool writeToFile(const std::string &Path) const;

  /// Reads and parses a constraint file with the guarantees of parseText().
  static Status loadFromFile(const std::string &Path, ConstraintSystem &Out);

  /// Legacy bool-and-string wrapper around loadFromFile().
  static bool readFromFile(const std::string &Path, ConstraintSystem &Out,
                           std::string &Error);

private:
  static uint64_t hashKey(const Constraint &C);

  std::vector<uint32_t> Sizes;
  std::vector<std::string> Names;
  std::vector<bool> IsFunction;
  std::vector<Constraint> Constraints;
  std::unordered_set<uint64_t> Seen; ///< Dedup keys for constraints.
};

} // namespace ag

#endif // AG_CONSTRAINTS_CONSTRAINTSYSTEM_H
