//===- OfflineVariableSubstitution.h - OVS preprocessing --------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A variant of Rountev & Chandra's Offline Variable Substitution, the
/// preprocessing pass the paper applies to every constraint file ("reduces
/// the number of constraints by 60-77%"). The implementation follows the
/// hash-based value numbering (HVN) formulation: a linear offline pass
/// assigns pointer-equivalence labels to variables; variables with equal
/// labels provably have equal points-to sets in every solution, so the
/// constraint system can be rewritten in terms of one representative per
/// label and deduplicated.
///
/// Soundness notes:
///  * Address-taken nodes (and every interior slot of a sized address-taken
///    object) are "indirect": they can receive points-to information
///    through store constraints invisible to the offline graph, so each
///    copy-SCC containing one receives a fresh, unshared label.
///  * Copy-cycle members are always mutually equivalent and are merged
///    regardless of indirectness.
///  * Label 0 (bottom) marks variables whose points-to set is provably
///    empty; constraints that only read from bottom variables are dropped.
///
//===----------------------------------------------------------------------===//

#ifndef AG_CONSTRAINTS_OFFLINEVARIABLESUBSTITUTION_H
#define AG_CONSTRAINTS_OFFLINEVARIABLESUBSTITUTION_H

#include "constraints/ConstraintSystem.h"

#include <vector>

namespace ag {

/// Output of the OVS pass.
struct OvsResult {
  /// The rewritten, deduplicated system. Shares the original node id space
  /// (no renumbering), so object identities in points-to sets are stable.
  ConstraintSystem Reduced;

  /// Maps each original node to the representative whose solution entry
  /// holds its points-to set: pts_original(v) == pts_reduced(Rep[v]).
  std::vector<NodeId> Rep;

  /// Nodes proven to have empty points-to sets (label bottom).
  std::vector<bool> IsBottom;

  /// Number of variables merged away (original nodes with Rep[v] != v).
  uint64_t NumMerged = 0;
};

/// Runs offline variable substitution over \p CS.
OvsResult runOfflineVariableSubstitution(const ConstraintSystem &CS);

} // namespace ag

#endif // AG_CONSTRAINTS_OFFLINEVARIABLESUBSTITUTION_H
