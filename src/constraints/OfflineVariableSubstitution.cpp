//===- OfflineVariableSubstitution.cpp - OVS preprocessing ----------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"

#include "adt/Scc.h"
#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ag;

namespace {

/// Hash of a sorted label vector, for hash-consing label sets.
struct LabelSetHash {
  size_t operator()(const std::vector<uint32_t> &V) const {
    uint64_t H = 0xcbf29ce484222325ull;
    for (uint32_t X : V) {
      H ^= X;
      H *= 0x100000001b3ull;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace

OvsResult ag::runOfflineVariableSubstitution(const ConstraintSystem &CS) {
  obs::PhaseSpan Span("ovs_offline", "offline");
  const uint32_t N = CS.numNodes();
  constexpr uint32_t BottomLabel = 0;

  // --- Step 1: mark indirect nodes. A node is indirect when its points-to
  // set can change through store constraints, i.e. when it can appear in
  // somebody's points-to set: every slot of an address-taken object.
  std::vector<bool> Indirect(N, false);
  for (const Constraint &C : CS.constraints()) {
    if (C.Kind != ConstraintKind::AddressOf)
      continue;
    for (uint32_t I = 0, E = CS.sizeOf(C.Src); I != E; ++I)
      Indirect[C.Src + I] = true;
  }

  // --- Step 2: SCCs over copy edges. Members of a copy cycle always have
  // equal points-to sets and can be merged outright.
  std::vector<std::vector<uint32_t>> CopySuccs(N);
  for (const Constraint &C : CS.constraints())
    if (C.Kind == ConstraintKind::Copy)
      CopySuccs[C.Src].push_back(C.Dst);
  SccResult Scc = computeSccs(N, CopySuccs);
  const uint32_t NumComps = static_cast<uint32_t>(Scc.Members.size());

  // A component is indirect if any member is.
  std::vector<bool> CompIndirect(NumComps, false);
  for (uint32_t V = 0; V != N; ++V)
    if (Indirect[V])
      CompIndirect[Scc.Comp[V]] = true;

  // --- Step 3: collect per-component label contributions that don't come
  // from copy edges: address-of labels and load (ref) labels.
  uint32_t NextLabel = 1;
  std::unordered_map<uint32_t, uint32_t> AdrLabels; // location -> label
  // Ref labels keyed by (base component, offset).
  std::unordered_map<uint64_t, uint32_t> RefLabels;
  std::vector<std::vector<uint32_t>> CompSeed(NumComps);
  for (const Constraint &C : CS.constraints()) {
    if (C.Kind == ConstraintKind::AddressOf) {
      auto [It, New] = AdrLabels.try_emplace(C.Src, NextLabel);
      if (New)
        ++NextLabel;
      CompSeed[Scc.Comp[C.Dst]].push_back(It->second);
    } else if (C.Kind == ConstraintKind::Load) {
      uint64_t Key = (uint64_t(Scc.Comp[C.Src]) << 16) | C.Offset;
      auto [It, New] = RefLabels.try_emplace(Key, NextLabel);
      if (New)
        ++NextLabel;
      CompSeed[Scc.Comp[C.Dst]].push_back(It->second);
    }
  }

  // --- Step 4: assign labels in topological order (Tarjan emits reverse
  // topological order, so walk components from the last emitted down).
  std::vector<uint32_t> CompLabel(NumComps, BottomLabel);
  std::unordered_map<std::vector<uint32_t>, uint32_t, LabelSetHash>
      LabelSets;
  std::vector<std::vector<uint32_t>> CompPreds(NumComps);
  for (const Constraint &C : CS.constraints())
    if (C.Kind == ConstraintKind::Copy &&
        Scc.Comp[C.Src] != Scc.Comp[C.Dst])
      CompPreds[Scc.Comp[C.Dst]].push_back(Scc.Comp[C.Src]);

  for (uint32_t CompId = NumComps; CompId-- != 0;) {
    if (CompIndirect[CompId]) {
      CompLabel[CompId] = NextLabel++;
      continue;
    }
    std::vector<uint32_t> Labels = std::move(CompSeed[CompId]);
    for (uint32_t Pred : CompPreds[CompId]) {
      assert(Pred > CompId && "copy predecessor not yet labeled");
      if (CompLabel[Pred] != BottomLabel)
        Labels.push_back(CompLabel[Pred]);
    }
    std::sort(Labels.begin(), Labels.end());
    Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());
    if (Labels.empty()) {
      CompLabel[CompId] = BottomLabel;
    } else if (Labels.size() == 1) {
      CompLabel[CompId] = Labels[0];
    } else {
      auto [It, New] = LabelSets.try_emplace(Labels, NextLabel);
      if (New)
        ++NextLabel;
      CompLabel[CompId] = It->second;
    }
  }

  // --- Step 5: pick one representative node per label and build Rep.
  OvsResult Result;
  Result.Rep.resize(N);
  Result.IsBottom.assign(N, false);
  std::unordered_map<uint32_t, NodeId> LabelRep;
  for (uint32_t V = 0; V != N; ++V) {
    uint32_t L = CompLabel[Scc.Comp[V]];
    if (L == BottomLabel)
      Result.IsBottom[V] = true;
    auto [It, New] = LabelRep.try_emplace(L, V);
    Result.Rep[V] = It->second;
    if (!New)
      ++Result.NumMerged;
  }

  // --- Step 6: rewrite the constraints over representatives, dropping
  // reads from bottom variables and duplicates. The reduced system keeps
  // the original node table so object identities are stable.
  Result.Reduced = CS.cloneNodeTable();

  const std::vector<NodeId> &Rep = Result.Rep;
  const std::vector<bool> &Bot = Result.IsBottom;
  for (const Constraint &C : CS.constraints()) {
    switch (C.Kind) {
    case ConstraintKind::AddressOf:
      // Keep the location identity; rewrite only the destination.
      Result.Reduced.addAddressOf(Rep[C.Dst], C.Src);
      break;
    case ConstraintKind::Copy:
      if (Bot[C.Src])
        break; // Nothing ever flows.
      Result.Reduced.addCopy(Rep[C.Dst], Rep[C.Src]);
      break;
    case ConstraintKind::Load:
      if (Bot[C.Src])
        break; // *src never resolves.
      Result.Reduced.addLoad(Rep[C.Dst], Rep[C.Src], C.Offset);
      break;
    case ConstraintKind::Store:
      if (Bot[C.Dst] || Bot[C.Src])
        break; // Target set empty, or stored value set empty.
      Result.Reduced.addStore(Rep[C.Dst], Rep[C.Src], C.Offset);
      break;
    }
  }
  return Result;
}
