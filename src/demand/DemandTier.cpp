//===- DemandTier.cpp - Demand-first query tier ---------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "demand/DemandTier.h"

#include "obs/MetricsRegistry.h"
#include "obs/RequestContext.h"
#include "obs/TraceRecorder.h"

#include <algorithm>

using namespace ag;

DemandTier::DemandTier(ConstraintSystem System, const Options &O)
    : Opts(O), CS(std::move(System)),
      Demand(std::make_unique<DemandSolver>(CS)),
      Cache(Opts.CacheCapacity / 2, Opts.CacheShards),
      AliasCache(Opts.CacheCapacity - Opts.CacheCapacity / 2,
                 Opts.CacheShards) {}

DemandTier::IdList DemandTier::materialize(const SparseBitVector &Bits) {
  std::vector<NodeId> Ids;
  for (uint32_t V : Bits)
    Ids.push_back(V);
  // SparseBitVector iterates ascending; no sort needed.
  return std::make_shared<const std::vector<NodeId>>(std::move(Ids));
}

DemandTier::IdList DemandTier::solutionPointsTo(NodeId V) {
  return std::make_shared<const std::vector<NodeId>>(
      Escalation->pointsToVector(V));
}

DemandTier::IdList DemandTier::solutionPointedBy(NodeId Obj) {
  if (!EscReverseBuilt) {
    const uint32_t N = CS.numNodes();
    EscReverse.assign(N, {});
    // Ascending scan over all nodes (class members included) keeps every
    // per-object list sorted without a sort pass.
    for (NodeId V = 0; V != N; ++V)
      for (uint32_t O : Escalation->pointsTo(V))
        EscReverse[O].push_back(V);
    EscReverseBuilt = true;
  }
  return std::make_shared<const std::vector<NodeId>>(EscReverse[Obj]);
}

Status DemandTier::escalateLocked(const Status &TripSt) {
  if (Escalation)
    return Status::okStatus();
  if (!Opts.AllowEscalation)
    return TripSt;
  obs::TierSpan Tier(obs::ReqTier::Escalation);
  Tier.markHit();
  obs::TraceSpan Span("demand.escalate", "demand");
  obs::count(obs::Counter::DemandEscalations);
  SolveResult R = solveGoverned(CS, Opts.EscalationKind,
                                Opts.EscalationBudget, PtsRepr::Bitmap,
                                nullptr, Opts.EscalationOpts);
  if (R.Outcome == SolveOutcome::Failed)
    return R.St;
  if (!R.Sound) {
    // Partial exhaustive state is unsound; the tier never adopts it. The
    // caller sees why no answer exists: the demand trip if there was one,
    // else the escalation's own trip.
    return TripSt.ok() ? R.St : TripSt;
  }
  Escalation = std::make_shared<PointsToSolution>(std::move(R.Solution));
  EscOutcome = R.Outcome;
  EscSt = R.St;
  // Cached demand answers are exact; a Fallback solution over-approximates.
  // Drop everything so one source answers from here on.
  Cache.clear();
  AliasCache.clear();
  return Status::okStatus();
}

Status DemandTier::escalateNow() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Escalation)
    return Status::okStatus();
  bool Saved = Opts.AllowEscalation;
  Opts.AllowEscalation = true;
  Status St = escalateLocked(Status::okStatus());
  Opts.AllowEscalation = Saved;
  return St;
}

Status DemandTier::pointsTo(NodeId V, IdList &Out) {
  if (!validNode(V))
    return Status::invalidArgument("pointsTo query for unknown node " +
                                   std::to_string(V));
  const uint64_t Key = listKey(TagPts, V);
  if (auto Hit = Cache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    Out = *Hit;
    return Status::okStatus();
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);

  std::lock_guard<std::mutex> Lock(Mu);
  if (Escalation) {
    obs::noteTierProbe(obs::ReqTier::Escalation, /*Hit=*/true);
    Out = solutionPointsTo(V);
    Cache.put(Key, Out);
    return Status::okStatus();
  }
  SparseBitVector Bits;
  Status St;
  {
    obs::TierSpan Tier(obs::ReqTier::Demand);
    SolveGovernor Gov(Opts.QueryBudget);
    St = Demand->pointsTo(V, &Gov, Bits);
    if (St.ok())
      Tier.markHit();
  }
  if (St.ok()) {
    Out = materialize(Bits);
    Cache.put(Key, Out);
    return St;
  }
  if (!St.isBudgetTrip())
    return St;
  if (Status Esc = escalateLocked(St); !Esc.ok())
    return Esc;
  Out = solutionPointsTo(V);
  Cache.put(Key, Out);
  return Status::okStatus();
}

Status DemandTier::alias(NodeId A, NodeId B, bool &Out) {
  if (!validNode(A) || !validNode(B))
    return Status::invalidArgument("alias query for unknown node");
  NodeId Lo = A, Hi = B;
  if (Lo > Hi)
    std::swap(Lo, Hi);
  const uint64_t Key = (uint64_t(Lo) << 32) | Hi;
  if (auto Hit = AliasCache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    Out = *Hit;
    return Status::okStatus();
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);

  std::lock_guard<std::mutex> Lock(Mu);
  if (Escalation) {
    obs::noteTierProbe(obs::ReqTier::Escalation, /*Hit=*/true);
    Out = Escalation->mayAlias(A, B);
    AliasCache.put(Key, Out);
    return Status::okStatus();
  }
  Status St;
  {
    obs::TierSpan Tier(obs::ReqTier::Demand);
    SolveGovernor Gov(Opts.QueryBudget);
    St = Demand->alias(A, B, &Gov, Out);
    if (St.ok())
      Tier.markHit();
  }
  if (St.ok()) {
    AliasCache.put(Key, Out);
    return St;
  }
  if (!St.isBudgetTrip())
    return St;
  if (Status Esc = escalateLocked(St); !Esc.ok())
    return Esc;
  Out = Escalation->mayAlias(A, B);
  AliasCache.put(Key, Out);
  return Status::okStatus();
}

Status DemandTier::pointedBy(NodeId Obj, IdList &Out) {
  if (!validNode(Obj))
    return Status::invalidArgument("pointedBy query for unknown node " +
                                   std::to_string(Obj));
  const uint64_t Key = listKey(TagPointedBy, Obj);
  if (auto Hit = Cache.get(Key)) {
    obs::count(obs::Counter::ServeLruHits);
    obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/true);
    Out = *Hit;
    return Status::okStatus();
  }
  obs::count(obs::Counter::ServeLruMisses);
  obs::noteTierProbe(obs::ReqTier::Lru, /*Hit=*/false);

  std::lock_guard<std::mutex> Lock(Mu);
  if (Escalation) {
    obs::noteTierProbe(obs::ReqTier::Escalation, /*Hit=*/true);
    Out = solutionPointedBy(Obj);
    Cache.put(Key, Out);
    return Status::okStatus();
  }
  SparseBitVector Bits;
  Status St;
  {
    obs::TierSpan Tier(obs::ReqTier::Demand);
    SolveGovernor Gov(Opts.QueryBudget);
    St = Demand->pointedBy(Obj, &Gov, Bits);
    if (St.ok())
      Tier.markHit();
  }
  if (St.ok()) {
    Out = materialize(Bits);
    Cache.put(Key, Out);
    return St;
  }
  if (!St.isBudgetTrip())
    return St;
  if (Status Esc = escalateLocked(St); !Esc.ok())
    return Esc;
  Out = solutionPointedBy(Obj);
  Cache.put(Key, Out);
  return Status::okStatus();
}

bool DemandTier::tryMemoPointsTo(NodeId V, IdList &Out) {
  if (!validNode(V))
    return false;
  // Certified classes stay exact even after escalation (same system,
  // same least fixpoint); resolveDelta invalidates them before the
  // system changes. So the memo keeps answering for the engine tier.
  std::lock_guard<std::mutex> Lock(Mu);
  SparseBitVector Bits;
  if (!Demand->memoPointsTo(V, Bits)) {
    obs::noteTierProbe(obs::ReqTier::Memo, /*Hit=*/false);
    return false;
  }
  Out = materialize(Bits);
  return true;
}

bool DemandTier::tryMemoAlias(NodeId A, NodeId B, bool &Out) {
  if (!validNode(A) || !validNode(B))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  bool Hit = Demand->memoAlias(A, B, Out);
  if (!Hit)
    obs::noteTierProbe(obs::ReqTier::Memo, /*Hit=*/false);
  return Hit;
}

Status DemandTier::resolveDelta(const ConstraintSystem &DeltaCS) {
  std::lock_guard<std::mutex> Lock(Mu);
  const uint32_t N = CS.numNodes();
  if (DeltaCS.numNodes() < N)
    return Status::invalidArgument(
        "delta system has fewer nodes than the served system (" +
        std::to_string(DeltaCS.numNodes()) + " < " + std::to_string(N) +
        ")");
  for (NodeId V = 0; V != N; ++V)
    if (DeltaCS.sizeOf(V) != CS.sizeOf(V) ||
        DeltaCS.isFunction(V) != CS.isFunction(V))
      return Status::invalidArgument(
          "delta node table diverges from the served system at node " +
          std::to_string(V) +
          " (deltas may only extend the id space, not remap it)");
  for (const Constraint &C : DeltaCS.constraints()) {
    if (C.Offset != 0 && C.Kind != ConstraintKind::Load &&
        C.Kind != ConstraintKind::Store)
      return Status::invalidArgument(
          "delta offset on a non-complex constraint");
    if (C.Offset > ConstraintSystem::MaxOffset)
      return Status::invalidArgument("delta offset out of range");
  }

  // Adopt new nodes head-to-head, exactly as the warm-start path does (a
  // sized head implies its interior slots, whose sizeOf reports 1).
  NodeId V = N;
  while (V < DeltaCS.numNodes()) {
    uint32_t Size = DeltaCS.sizeOf(V);
    if (DeltaCS.isFunction(V)) {
      if (Size < ConstraintSystem::FunctionParamOffset)
        return Status::invalidArgument(
            "delta declares a function node too small for its slots");
      CS.addFunction(DeltaCS.nameOf(V),
                     Size - ConstraintSystem::FunctionParamOffset);
    } else {
      CS.addNode(DeltaCS.nameOf(V), Size);
    }
    for (uint32_t I = 1; I < Size; ++I)
      CS.setName(V + I, DeltaCS.nameOf(V + I));
    V += Size;
  }
  for (const Constraint &C : DeltaCS.constraints()) {
    if (C.Dst >= CS.numNodes() || C.Src >= CS.numNodes())
      return Status::invalidArgument(
          "delta constraint references unknown node");
    CS.add(C); // Dedups against the base; genuinely new facts invalidate
               // memo entries via refresh() below.
  }

  Demand->refresh();
  Cache.clear();
  AliasCache.clear();
  // The escalated solution (if any) no longer matches the system; the
  // demand path resumes with its warm partial state.
  Escalation.reset();
  EscReverse.clear();
  EscReverseBuilt = false;
  EscSt = Status::okStatus();
  EscOutcome = SolveOutcome::Precise;
  return Status::okStatus();
}

uint64_t DemandTier::memoCompleteCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Demand->memoCompleteCount();
}
