//===- DemandSolver.h - Demand-driven points-to deduction -------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers pointsTo/alias/pointedBy queries over the *unsolved* constraint
/// system: instead of closing the whole graph first, a query demands only
/// the nodes its answer can depend on and runs a local fixpoint over that
/// frontier (DESIGN.md §14). The deduction rules are the Heintze-Tardieu
/// pre-transitive rules of HtSolver restricted to the demanded set:
///
///   pts(v) = orig(v) ∪ ⋃ pts(copy-pred)
///          ∪ ⋃_{v = *(b+k)} ⋃_{o ∈ pts(b)} pts(o+k)              [loads]
///          ∪ ⋃_{*(a+k) = s, v = o+k valid, o ∈ pts(a)} pts(s)    [stores]
///
/// The demanded set is closed under every rule's references (copy preds,
/// load bases and their slot expansions, store bases for the membership
/// test and store sources once membership holds), so at the local fixpoint
/// every demanded node's set equals the global least-fixpoint value — the
/// memo-completeness invariant. Converged nodes are marked Complete and
/// become constants later queries stop at; reachability walks are
/// HtSolver-style iterative Tarjan over predecessor edges, collapsing
/// cycles into the shared UnionFind as a side effect.
///
/// A per-query SolveGovernor bounds deduction; a budget trip unwinds as a
/// structured Status. Unwound state stays sound: every recorded edge and
/// merge is a true derivation, and Complete is only set at a converged
/// fixpoint, so a later (or escalated) query resumes the partial work.
///
/// Thread-compatibility: queries mutate shared memo state and must be
/// externally serialized (DemandTier holds the mutex).
///
//===----------------------------------------------------------------------===//

#ifndef AG_DEMAND_DEMANDSOLVER_H
#define AG_DEMAND_DEMANDSOLVER_H

#include "adt/SparseBitVector.h"
#include "adt/Status.h"
#include "adt/UnionFind.h"
#include "constraints/ConstraintSystem.h"
#include "core/SolveBudget.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace ag {

/// Memoized demand-driven solver over one (growing) constraint system.
/// Holds a reference to the system; the owner may append nodes and
/// constraints and must then call refresh() before the next query.
class DemandSolver {
public:
  explicit DemandSolver(const ConstraintSystem &System);

  DemandSolver(const DemandSolver &) = delete;
  DemandSolver &operator=(const DemandSolver &) = delete;

  /// Exact points-to set of \p V (bit-equal to the exhaustive solution).
  /// \p Gov may be null for unbudgeted deduction. On a budget trip the
  /// returned status is the trip; \p Out is untouched.
  Status pointsTo(NodeId V, SolveGovernor *Gov, SparseBitVector &Out);

  /// May-alias verdict: do pts(A) and pts(B) intersect?
  Status alias(NodeId A, NodeId B, SolveGovernor *Gov, bool &Out);

  /// All nodes whose points-to set contains object \p Obj, computed by a
  /// forward worklist from Obj's address-takers with demand sub-queries
  /// for the complex rules.
  Status pointedBy(NodeId Obj, SolveGovernor *Gov, SparseBitVector &Out);

  /// True if \p V's class carries a certified-complete memo entry (its
  /// next pointsTo is a pure memo read).
  bool isMemoComplete(NodeId V) const {
    return V < NumNodes && Complete[Reps.find(V)];
  }

  /// Memo-only probe: copies the certified set (counting a query and a
  /// memo hit) iff \p V's class is Complete. Never deduces.
  bool memoPointsTo(NodeId V, SparseBitVector &Out);

  /// Memo-only alias probe: answers iff both classes are Complete.
  bool memoAlias(NodeId A, NodeId B, bool &Out);

  /// Number of representative classes with certified-complete results.
  uint64_t memoCompleteCount() const;

  uint32_t numNodes() const { return NumNodes; }

  /// Re-reads the bound system: adopts nodes and constraints appended
  /// since construction (or the last refresh) and invalidates the memo
  /// entries the additions may affect. New AddressOf/Copy/Load facts
  /// invalidate the dependency-forward closure of their target; a new
  /// Store invalidates every memo entry (any slot's membership test may
  /// newly pass). Points-to state is kept — it is a sound
  /// under-approximation that re-certification grows monotonically.
  void refresh();

private:
  struct LoadRef {
    NodeId Base;
    uint32_t Offset;
  };
  struct OffsetStore {
    NodeId Ptr; ///< a in *(a+k) = s.
    NodeId Src; ///< s.
  };
  /// All stores sharing one offset, with the inverted-expansion state
  /// that keeps the store rule off the hot path: each store's pointer
  /// closure is expanded into SlotWriters exactly once per object
  /// (Done), and demanded slots drain that index instead of scanning
  /// every store each round.
  struct StoreBucket {
    uint32_t Offset;
    std::vector<OffsetStore> Stores;
    /// Per store: objects of pts(Ptr) already expanded into SlotWriters.
    std::vector<SparseBitVector> Done;
    /// Per store: Done covers the pointer's certified (final) set, so
    /// the store can be skipped without re-deriving the closure.
    std::vector<uint8_t> DoneFull;
    /// Last fixpoint id whose demanded set contained a valid slot for
    /// this offset; only such buckets expand during that fixpoint.
    uint32_t ActiveFixpoint = 0;
    /// Ever activated: invalidateFrom must assume this bucket's writer
    /// index can be stale when one of its pointers' sets regrows.
    bool EverActive = false;
  };
  struct OffsetLoad {
    NodeId Dst;  ///< d in d = *(b+k).
    NodeId Base; ///< b.
  };
  struct SrcStore {
    NodeId Ptr; ///< a in *(a+k) = s (s implied by index).
    uint32_t Offset;
  };

  NodeId find(NodeId V) const { return Reps.find(V); }
  void growTo(uint32_t N);
  void indexConstraint(const Constraint &C, bool Invalidate);
  void invalidateFrom(NodeId Rep);
  void invalidateAll();
  NodeId merge(NodeId A, NodeId B);

  /// Runs the demanded-set local fixpoint rooted at \p Root and certifies
  /// every demanded class Complete. Throws BudgetExceededError.
  void demandFixpoint(NodeId Root, SolveGovernor *Gov);
  /// Applies \p U's deduction rules once against the current caches.
  /// \returns true if an edge or demanded node was added.
  bool processNode(NodeId U, SolveGovernor *Gov);
  /// HT-style cached reachability closure of \p Root for this epoch;
  /// collapses cycles and demands every visited node.
  void tarjanQuery(NodeId Root, SolveGovernor *Gov);
  /// Expands store \p I of \p B: demands its pointer, closes it, and
  /// records slot writers for objects not yet in Done.
  void expandStore(StoreBucket &B, size_t I, SolveGovernor *Gov);
  /// Adds the not-yet-drained SlotWriters edges of slot \p W.
  /// \returns true if a new edge was recorded.
  bool drainSlotWriters(NodeId W, SolveGovernor *Gov);
  /// The closed points-to set of rep \p R, valid after tarjanQuery(R)
  /// this epoch (or forever if Complete).
  const SparseBitVector &closureOf(NodeId R) const {
    return Complete[R] ? Pts[R] : CachePts[R];
  }
  bool addDemand(NodeId Rep);
  /// Records the derived predecessor edge \p From -> \p To (pts(From)
  /// flows into To) and demands From. \returns true if new.
  bool addPredEdge(NodeId To, NodeId From, SolveGovernor *Gov);
  void chargeStep(SolveGovernor *Gov) {
    ++StepsThisQuery;
    if (Gov)
      Gov->onStep();
  }

  const ConstraintSystem &CS;
  uint32_t NumNodes = 0;
  size_t IndexedConstraints = 0;

  mutable UnionFind Reps;

  // --- persistent per-representative state (merged on union) ---
  /// Base facts for incomplete classes (AddressOf objects plus any
  /// partial closure persisted by an unwound query); the certified full
  /// set for Complete classes.
  std::vector<SparseBitVector> Pts;
  /// Predecessor copy edges (original + derived), the direction the
  /// reachability walks traverse.
  std::vector<SparseBitVector> Preds;
  /// Forward copy edges (original + derived) — pointedBy's walk
  /// direction and half the invalidation graph.
  std::vector<SparseBitVector> Fwd;
  /// Dependency edges base -> dependent recorded when a load/store rule
  /// read pts(base); the other half of the invalidation graph.
  std::vector<SparseBitVector> BaseDeps;
  /// Loads with a destination in this class.
  std::vector<std::vector<LoadRef>> Loads;
  /// Original members of this class (slot candidacies are per original
  /// node id; merging never loses them).
  std::vector<std::vector<NodeId>> Members;
  std::vector<uint8_t> Complete;

  // --- constraint indexes over original node ids ---
  /// Stores bucketed by offset, with inverted-expansion state: a
  /// demanded slot w walks only the offsets that actually occur, and an
  /// activated bucket expands each pointer closure once per object.
  std::vector<StoreBucket> StoreBuckets;
  /// Slot w -> sources s of stores proven to write w (o = w-k ∈ pts(a)
  /// held during some expansion). Persistent, append-only; entries past
  /// SlotDrained[w] are not yet edges.
  std::vector<std::vector<NodeId>> SlotWriters;
  /// Per slot: drained prefix of SlotWriters (edges already recorded).
  std::vector<uint32_t> SlotDrained;
  /// Loads bucketed by offset (pointedBy's slot-pull rule).
  std::vector<std::pair<uint32_t, std::vector<OffsetLoad>>> LoadsByOff;
  /// Stores indexed by source node (pointedBy's source rule).
  std::vector<std::vector<SrcStore>> StoresBySrc;
  /// AddressOf takers per object (pointedBy's seeds).
  std::vector<std::vector<NodeId>> AddrTakers;
  /// Every AddressOf source. Points-to sets are seeded exclusively from
  /// AddressOf constraints and only unioned after that, so membership
  /// tests o ∈ pts(a) can pass only for o in this set — which lets the
  /// store/load slot rules skip members w where w-k was never
  /// address-taken without demanding the store pointer at all. This is
  /// what keeps the demanded set proportional to the query instead of
  /// every store pointer's backward closure.
  SparseBitVector AddrTaken;

  // --- per-epoch reachability caches (HtSolver's discipline) ---
  std::vector<SparseBitVector> CachePts;
  std::vector<uint32_t> CacheEpoch;
  std::vector<uint32_t> VisitEpoch;
  std::vector<uint32_t> DfsNum;
  std::vector<uint32_t> LowLink;
  std::vector<uint32_t> OnStackEpoch;
  uint32_t Epoch = 0;
  uint32_t NextDfsNum = 0;

  // --- per-fixpoint demanded set ---
  std::vector<NodeId> DemandList;
  SparseBitVector InDemand;
  /// Valid slots among demanded members this fixpoint (drain targets).
  std::vector<NodeId> DemandedSlotList;
  SparseBitVector DemandedSlots;
  uint32_t FixpointId = 0;

  uint64_t StepsThisQuery = 0;
};

} // namespace ag

#endif // AG_DEMAND_DEMANDSOLVER_H
