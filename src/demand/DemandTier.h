//===- DemandTier.h - Demand-first query tier -------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving tier over DemandSolver: per-query governor construction, an
/// LRU of materialized results, structured escalation to an exhaustive
/// governed solve when a query's deduction budget trips, and delta
/// adoption mirroring IncrementalSolver::resolveSystem. Layering: this
/// class deliberately knows nothing about the serve library — QueryEngine
/// and ServeSession consult *it* (the demand memo is the first tier,
/// snapshot solutions the second), never the other way around.
///
/// Escalation policy ("sound fallback preserved"): a Precise or Fallback
/// exhaustive solution is adopted and serves every later query; a Partial
/// one (budget tripped with fallback disallowed) is discarded and the
/// query reports its budget-trip Status — the tier never serves unsound
/// answers.
///
/// Thread-safe: one mutex serializes queries (the demand solver mutates
/// shared memo state); the LRU probe in front of it is sharded and
/// lock-cheap.
///
//===----------------------------------------------------------------------===//

#ifndef AG_DEMAND_DEMANDTIER_H
#define AG_DEMAND_DEMANDTIER_H

#include "adt/LruCache.h"
#include "constraints/ConstraintSystem.h"
#include "core/PointsToSolution.h"
#include "demand/DemandSolver.h"
#include "solvers/Solve.h"

#include <memory>
#include <mutex>
#include <vector>

namespace ag {

/// Demand-first query tier over one constraint system (see file comment).
class DemandTier {
public:
  struct Options {
    /// Budget for one demand deduction; unlimited() never escalates.
    SolveBudget QueryBudget;
    /// Budget for the escalation solve (default unlimited: escalation
    /// always lands a precise exhaustive solution).
    SolveBudget EscalationBudget;
    SolverOptions EscalationOpts;
    SolverKind EscalationKind = SolverKind::LCDHCD;
    /// Escalate on a demand budget trip. When false a tripped query
    /// reports its trip Status instead.
    bool AllowEscalation = true;
    size_t CacheCapacity = size_t(1) << 16;
    size_t CacheShards = 8;
  };

  /// Shared sorted id list (the QueryEngine result convention).
  using IdList = std::shared_ptr<const std::vector<NodeId>>;

  explicit DemandTier(ConstraintSystem System)
      : DemandTier(std::move(System), Options()) {}
  DemandTier(ConstraintSystem System, const Options &Opts);

  DemandTier(const DemandTier &) = delete;
  DemandTier &operator=(const DemandTier &) = delete;

  const ConstraintSystem &system() const { return CS; }
  uint32_t numNodes() const { return CS.numNodes(); }
  bool validNode(NodeId V) const { return V < CS.numNodes(); }

  /// Sorted points-to set of \p V: demand memo first, deduction under the
  /// query budget, escalation on a trip.
  Status pointsTo(NodeId V, IdList &Out);

  /// May-alias verdict through the same tiers.
  Status alias(NodeId A, NodeId B, bool &Out);

  /// Sorted list of nodes whose set contains \p Obj.
  Status pointedBy(NodeId Obj, IdList &Out);

  /// Memo-only probes: answer (and count a memo hit) iff the class is
  /// certified-complete — never deduce. QueryEngine consults these
  /// before its snapshot solution; certified answers remain exact after
  /// escalation (same system, same least fixpoint), and resolveDelta
  /// invalidates them before the system changes.
  bool tryMemoPointsTo(NodeId V, IdList &Out);
  bool tryMemoAlias(NodeId A, NodeId B, bool &Out);

  /// Forces the escalation solve now (idempotent). Used by callers that
  /// need the whole solution (call graphs, self-checks).
  Status escalateNow();

  /// Adopts \p DeltaCS (full node table + base and new constraints, the
  /// `ptatool resolve` file shape): validates and extends the node table
  /// exactly as IncrementalSolver::resolveSystem does, appends the new
  /// constraints, invalidates affected memo entries, drops the result
  /// cache and any escalated solution.
  Status resolveDelta(const ConstraintSystem &DeltaCS);

  bool escalated() const { return Escalation != nullptr; }
  SolveOutcome escalationOutcome() const { return EscOutcome; }
  const Status &escalationStatus() const { return EscSt; }
  SolverKind escalationKind() const { return Opts.EscalationKind; }
  /// The adopted exhaustive solution (null until escalated()).
  std::shared_ptr<const PointsToSolution> escalationSolution() const {
    return Escalation;
  }

  uint64_t memoCompleteCount() const;
  CacheStats cacheStats() const { return Cache.stats(); }

private:
  enum ListTag : uint64_t { TagPts = 0, TagPointedBy = 1 };
  static uint64_t listKey(ListTag Tag, NodeId Id) {
    return (uint64_t(Tag) << 32) | Id;
  }

  static IdList materialize(const SparseBitVector &Bits);

  /// Runs the escalation solve if not yet run. Mu held. Returns the
  /// query-visible status: ok after adopting a sound solution, the
  /// original \p TripSt when escalation is off or landed Partial.
  Status escalateLocked(const Status &TripSt);

  /// pointsTo/pointedBy against the adopted exhaustive solution. Mu held.
  IdList solutionPointsTo(NodeId V);
  IdList solutionPointedBy(NodeId Obj);

  Options Opts;
  ConstraintSystem CS;

  mutable std::mutex Mu;
  std::unique_ptr<DemandSolver> Demand;

  /// Adopted escalation solution (sound: Precise or Fallback), null while
  /// the demand path serves.
  std::shared_ptr<const PointsToSolution> Escalation;
  SolveOutcome EscOutcome = SolveOutcome::Precise;
  Status EscSt;

  /// Reverse index over the escalated solution, built on first
  /// post-escalation pointedBy. Mu held for build and reads.
  std::vector<std::vector<NodeId>> EscReverse;
  bool EscReverseBuilt = false;

  ShardedLruCache<uint64_t, IdList> Cache;
  ShardedLruCache<uint64_t, bool> AliasCache;
};

} // namespace ag

#endif // AG_DEMAND_DEMANDTIER_H
