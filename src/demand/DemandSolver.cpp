//===- DemandSolver.cpp - Demand-driven points-to deduction ---------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "demand/DemandSolver.h"

#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

#include <cassert>

using namespace ag;

namespace {

/// Appends to (creating on first use) the bucket for \p Offset. Offsets in
/// real workloads are few (function slots), so a linear scan beats a map.
template <typename Entry>
std::vector<Entry> &
bucketFor(std::vector<std::pair<uint32_t, std::vector<Entry>>> &Buckets,
          uint32_t Offset) {
  for (auto &B : Buckets)
    if (B.first == Offset)
      return B.second;
  Buckets.emplace_back(Offset, std::vector<Entry>());
  return Buckets.back().second;
}

} // namespace

DemandSolver::DemandSolver(const ConstraintSystem &System) : CS(System) {
  growTo(CS.numNodes());
  for (const Constraint &C : CS.constraints())
    indexConstraint(C, /*Invalidate=*/false);
  IndexedConstraints = CS.constraints().size();
}

void DemandSolver::growTo(uint32_t N) {
  if (N <= NumNodes)
    return;
  Reps.grow(N);
  Pts.resize(N);
  Preds.resize(N);
  Fwd.resize(N);
  BaseDeps.resize(N);
  Loads.resize(N);
  Members.resize(N);
  for (uint32_t V = NumNodes; V != N; ++V)
    Members[V].push_back(V);
  Complete.resize(N, 0);
  StoresBySrc.resize(N);
  AddrTakers.resize(N);
  SlotWriters.resize(N);
  SlotDrained.resize(N, 0);
  CachePts.resize(N);
  CacheEpoch.resize(N, 0);
  VisitEpoch.resize(N, 0);
  DfsNum.resize(N, 0);
  LowLink.resize(N, 0);
  OnStackEpoch.resize(N, 0);
  NumNodes = N;
}

void DemandSolver::indexConstraint(const Constraint &C, bool Invalidate) {
  switch (C.Kind) {
  case ConstraintKind::AddressOf: {
    NodeId D = find(C.Dst);
    bool New = Pts[D].set(C.Src);
    AddrTakers[C.Src].push_back(C.Dst);
    bool NewObj = AddrTaken.set(C.Src);
    if (Invalidate) {
      // A brand-new object identity can unlock store/load slot rules the
      // AddrTaken pruning skipped everywhere, with no dependency edges
      // recorded to route a targeted invalidation — drop everything.
      if (NewObj)
        invalidateAll();
      else if (New)
        invalidateFrom(D);
    }
    break;
  }
  case ConstraintKind::Copy: {
    NodeId D = find(C.Dst);
    NodeId S = find(C.Src);
    bool New = D != S && Preds[D].set(S);
    if (D != S)
      Fwd[S].set(D);
    if (Invalidate && New)
      invalidateFrom(D);
    break;
  }
  case ConstraintKind::Load: {
    NodeId D = find(C.Dst);
    Loads[D].push_back({C.Src, C.Offset});
    bucketFor(LoadsByOff, C.Offset).push_back({C.Dst, C.Src});
    // A new load grows only its destination (and downstream).
    if (Invalidate)
      invalidateFrom(D);
    break;
  }
  case ConstraintKind::Store: {
    StoreBucket *Bucket = nullptr;
    for (StoreBucket &B : StoreBuckets)
      if (B.Offset == C.Offset) {
        Bucket = &B;
        break;
      }
    if (!Bucket) {
      StoreBuckets.emplace_back();
      Bucket = &StoreBuckets.back();
      Bucket->Offset = C.Offset;
    }
    Bucket->Stores.push_back({C.Dst, C.Src});
    Bucket->Done.emplace_back();
    Bucket->DoneFull.push_back(0);
    StoresBySrc[C.Src].push_back({C.Dst, C.Offset});
    // A new store can feed any slot whose membership test passes against
    // pts of the store's pointer — which slots is unknown without solving,
    // so conservatively drop every certificate (DESIGN.md §14).
    if (Invalidate)
      invalidateAll();
    break;
  }
  }
}

void DemandSolver::refresh() {
  growTo(CS.numNodes());
  const std::vector<Constraint> &Cons = CS.constraints();
  for (size_t I = IndexedConstraints; I < Cons.size(); ++I)
    indexConstraint(Cons[I], /*Invalidate=*/true);
  IndexedConstraints = Cons.size();
}

void DemandSolver::invalidateFrom(NodeId R) {
  // Everything whose value can observe R's growth: the forward copy
  // closure plus the recorded load/store base dependencies. The walk
  // continues through already-incomplete nodes — their downstream may
  // still hold certificates from an earlier fixpoint.
  std::vector<NodeId> Stack{find(R)};
  SparseBitVector Seen;
  uint64_t Cleared = 0;
  while (!Stack.empty()) {
    NodeId U = find(Stack.back());
    Stack.pop_back();
    if (!Seen.set(U))
      continue;
    if (Complete[U]) {
      Complete[U] = 0;
      ++Cleared;
    }
    for (uint32_t V : Fwd[U])
      Stack.push_back(V);
    for (uint32_t V : BaseDeps[U])
      Stack.push_back(V);
  }
  if (Cleared)
    obs::count(obs::Counter::DemandInvalidations, Cleared);
  // If the growth can reach an expanded store pointer, SlotWriters may be
  // missing edges into slots whose certificates this walk cannot name
  // (the failed membership tests were never recorded) — drop everything.
  for (const StoreBucket &B : StoreBuckets) {
    if (!B.EverActive)
      continue;
    for (const OffsetStore &St : B.Stores)
      if (Seen.test(find(St.Ptr))) {
        invalidateAll();
        return;
      }
  }
}

void DemandSolver::invalidateAll() {
  uint64_t Cleared = 0;
  for (uint32_t V = 0; V != NumNodes; ++V) {
    Cleared += Complete[V];
    Complete[V] = 0;
  }
  // DoneFull certified that Done covers a pointer's final set; with the
  // certificates gone the sets may regrow, so expansions must re-run
  // (Done still dedups the objects already indexed).
  for (StoreBucket &B : StoreBuckets)
    std::fill(B.DoneFull.begin(), B.DoneFull.end(), 0);
  if (Cleared)
    obs::count(obs::Counter::DemandInvalidations, Cleared);
}

NodeId DemandSolver::merge(NodeId A, NodeId B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return A;
  NodeId S = Reps.unite(A, B);
  NodeId L = S == A ? B : A;
  Pts[S].unionWith(Pts[L]);
  Pts[L].clear();
  Preds[S].unionWith(Preds[L]);
  Preds[L].clear();
  Fwd[S].unionWith(Fwd[L]);
  Fwd[L].clear();
  BaseDeps[S].unionWith(BaseDeps[L]);
  BaseDeps[L].clear();
  if (!Loads[L].empty()) {
    Loads[S].insert(Loads[S].end(), Loads[L].begin(), Loads[L].end());
    std::vector<LoadRef>().swap(Loads[L]);
  }
  Members[S].insert(Members[S].end(), Members[L].begin(), Members[L].end());
  std::vector<NodeId>().swap(Members[L]);
  // Merges happen only inside Tarjan folds, whose stacks never hold a
  // certified class.
  assert(!Complete[A] && !Complete[B] && "merge of a certified class");
  return S;
}

bool DemandSolver::addDemand(NodeId Rep) {
  Rep = find(Rep);
  if (!InDemand.set(Rep))
    return false;
  DemandList.push_back(Rep);
  return true;
}

bool DemandSolver::addPredEdge(NodeId To, NodeId From, SolveGovernor *Gov) {
  To = find(To);
  NodeId F = find(From);
  if (F == To)
    return false;
  if (!Preds[To].set(F))
    return false;
  Fwd[F].set(To);
  if (!Complete[F])
    addDemand(F);
  if (Gov)
    Gov->onEdgeAdded();
  return true;
}

void DemandSolver::tarjanQuery(NodeId Root, SolveGovernor *Gov) {
  Root = find(Root);
  if (Complete[Root] || CacheEpoch[Root] == Epoch)
    return;

  // The iterative Tarjan of HtSolver::query over predecessor edges, with
  // two demand twists: certified classes are constants the walk stops at,
  // and every visited node joins the demanded set.
  struct Frame {
    NodeId U;
    SparseBitVector::iterator It;
    SparseBitVector::iterator End;
    NodeId PendingChild;
  };
  std::vector<Frame> Dfs;
  std::vector<NodeId> SccStack;

  auto push = [&](NodeId U) {
    VisitEpoch[U] = Epoch;
    DfsNum[U] = NextDfsNum++;
    LowLink[U] = DfsNum[U];
    OnStackEpoch[U] = Epoch;
    SccStack.push_back(U);
    CachePts[U] = Pts[U];
    Dfs.push_back(Frame{U, Preds[U].begin(), Preds[U].end(), InvalidNode});
    addDemand(U);
    chargeStep(Gov);
  };
  push(Root);

  while (!Dfs.empty()) {
    Frame &F = Dfs.back();
    NodeId U = F.U;
    if (F.PendingChild != InvalidNode) {
      NodeId C = find(F.PendingChild);
      F.PendingChild = InvalidNode;
      if (CacheEpoch[C] == Epoch && C != U) {
        if (Gov)
          Gov->onPropagation();
        CachePts[U].unionWith(CachePts[C]);
      }
    }
    if (F.It != F.End) {
      NodeId P = find(*F.It);
      ++F.It;
      if (P == U)
        continue;
      if (Complete[P]) {
        if (Gov)
          Gov->onPropagation();
        CachePts[U].unionWith(Pts[P]);
        continue;
      }
      if (CacheEpoch[P] == Epoch) {
        if (Gov)
          Gov->onPropagation();
        CachePts[U].unionWith(CachePts[P]);
        continue;
      }
      if (VisitEpoch[P] == Epoch) {
        assert(OnStackEpoch[P] == Epoch &&
               "finished node must have a valid cache");
        if (DfsNum[P] < LowLink[U])
          LowLink[U] = DfsNum[P];
        continue;
      }
      push(P);
      continue;
    }
    Dfs.pop_back();
    if (!Dfs.empty()) {
      Frame &Parent = Dfs.back();
      if (LowLink[U] < LowLink[Parent.U])
        LowLink[Parent.U] = LowLink[U];
      Parent.PendingChild = U;
    }
    if (LowLink[U] == DfsNum[U]) {
      // U roots an SCC: fold member caches and collapse through the
      // shared union-find (the side-effect cycle detection of HT).
      for (;;) {
        NodeId W = SccStack.back();
        SccStack.pop_back();
        OnStackEpoch[W] = 0;
        if (W == U)
          break;
        CachePts[U].unionWith(CachePts[W]);
        CachePts[W].clear();
        merge(U, W);
      }
      NodeId R = find(U);
      if (R != U) {
        CachePts[R] = std::move(CachePts[U]);
        CachePts[U] = SparseBitVector();
      }
      CacheEpoch[R] = Epoch;
      VisitEpoch[R] = Epoch;
      OnStackEpoch[R] = 0;
    }
  }
}

bool DemandSolver::processNode(NodeId U, SolveGovernor *Gov) {
  bool Changed = false;
  chargeStep(Gov);
  tarjanQuery(U, Gov);

  // Loads with a destination in this class: every object in the base's
  // closure opens a predecessor edge from its slot. Snapshot the list —
  // a base's tarjanQuery below may merge another class (and its loads)
  // into U mid-iteration; the merged-in loads run when that class's
  // entry is processed this round.
  NodeId UR = find(U);
  std::vector<LoadRef> LoadSnap = Loads[UR];
  for (const LoadRef &L : LoadSnap) {
    chargeStep(Gov);
    NodeId B = find(L.Base);
    if (!Complete[B]) {
      addDemand(B);
      tarjanQuery(B, Gov);
      B = find(B);
    }
    BaseDeps[B].set(find(UR));
    for (uint32_t O : closureOf(B)) {
      NodeId T = CS.offsetTarget(O, L.Offset);
      if (T != InvalidNode && addPredEdge(UR, T, Gov))
        Changed = true;
    }
  }

  // Stores whose slot may be a member of this class: for member w and
  // store *(a+k) = s, w receives pts(s) iff the object o = w-k is valid
  // and o ∈ pts(a). Membership is answered by the inverted SlotWriters
  // index: here the member only activates its offset bucket and joins
  // the drain list; the round body expands pointers and drains writers.
  UR = find(UR);
  std::vector<NodeId> MemberSnap = Members[UR];
  for (NodeId W : MemberSnap) {
    for (StoreBucket &B : StoreBuckets) {
      uint32_t K = B.Offset;
      if (K > W)
        continue;
      NodeId O = W - K;
      if (!AddrTaken.test(O) || CS.offsetTarget(O, K) != W)
        continue;
      if (B.ActiveFixpoint != FixpointId) {
        B.ActiveFixpoint = FixpointId;
        B.EverActive = true;
      }
      if (DemandedSlots.set(W))
        DemandedSlotList.push_back(W);
    }
  }
  return Changed;
}

void DemandSolver::expandStore(StoreBucket &B, size_t I, SolveGovernor *Gov) {
  const OffsetStore &St = B.Stores[I];
  NodeId A = find(St.Ptr);
  bool Certified = Complete[A] != 0;
  if (Certified && B.DoneFull[I])
    return;
  chargeStep(Gov);
  if (!Certified) {
    addDemand(A);
    tarjanQuery(A, Gov);
    A = find(A);
    Certified = Complete[A] != 0;
  }
  SparseBitVector &Done = B.Done[I];
  for (uint32_t O : closureOf(A)) {
    if (!Done.set(O))
      continue;
    NodeId T = CS.offsetTarget(O, B.Offset);
    if (T != InvalidNode)
      SlotWriters[T].push_back(St.Src);
  }
  if (Certified)
    B.DoneFull[I] = 1;
}

bool DemandSolver::drainSlotWriters(NodeId W, SolveGovernor *Gov) {
  std::vector<NodeId> &Writers = SlotWriters[W];
  uint32_t &Cursor = SlotDrained[W];
  bool Added = false;
  while (Cursor != Writers.size()) {
    chargeStep(Gov);
    if (addPredEdge(W, Writers[Cursor], Gov))
      Added = true;
    ++Cursor;
  }
  return Added;
}

void DemandSolver::demandFixpoint(NodeId Root, SolveGovernor *Gov) {
  DemandList.clear();
  InDemand.clear();
  DemandedSlotList.clear();
  DemandedSlots.clear();
  ++FixpointId;
  addDemand(find(Root));

  // Rounds with fresh query epochs until no rule adds an edge (HT's
  // "unavoidable redundant work", bounded by the demanded frontier
  // instead of the whole graph). The demanded list grows during the
  // loop; additions are processed within the same round, and the
  // store rule runs inverted after it: activated buckets expand each
  // pointer's closure growth into SlotWriters, then the demanded slots
  // drain their writer lists into predecessor edges.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Epoch;
    NextDfsNum = 0;
    for (size_t I = 0; I != DemandList.size(); ++I) {
      NodeId U = DemandList[I];
      if (find(U) != U || Complete[U])
        continue;
      Changed |= processNode(U, Gov);
    }
    // Everything on DemandList so far was processed by the loop above
    // (it re-reads the size). The expansion below can demand store
    // pointers without recording a writer yet — their rules have not
    // run, so growth past this mark is progress even with no new edge.
    size_t Processed = DemandList.size();
    for (StoreBucket &B : StoreBuckets) {
      if (B.ActiveFixpoint != FixpointId)
        continue;
      for (size_t I = 0; I != B.Stores.size(); ++I)
        expandStore(B, I, Gov);
    }
    for (NodeId W : DemandedSlotList)
      Changed |= drainSlotWriters(W, Gov);
    if (DemandList.size() != Processed)
      Changed = true;
  }

  // Certification: the final round recomputed every closure against the
  // final edge set and changed nothing, so its epoch caches already hold
  // exact values. Every demanded contributor is itself demanded (the
  // rules close the set), so each class's result equals the global least
  // fixpoint — persist it and certify.
  for (size_t I = 0; I != DemandList.size(); ++I) {
    NodeId U = find(DemandList[I]);
    if (Complete[U])
      continue;
    assert(CacheEpoch[U] == Epoch && "certification closure missing");
    Pts[U] = CachePts[U];
    Complete[U] = 1;
  }
  obs::observe(obs::Hist::DemandFrontier, DemandList.size());
}

uint64_t DemandSolver::memoCompleteCount() const {
  uint64_t N = 0;
  for (uint32_t V = 0; V != NumNodes; ++V)
    N += (Complete[V] && Reps.find(V) == V);
  return N;
}

bool DemandSolver::memoPointsTo(NodeId V, SparseBitVector &Out) {
  if (V >= NumNodes)
    return false;
  NodeId R = find(V);
  if (!Complete[R])
    return false;
  obs::count(obs::Counter::DemandQueries);
  obs::count(obs::Counter::DemandMemoHits);
  Out = Pts[R];
  return true;
}

bool DemandSolver::memoAlias(NodeId A, NodeId B, bool &Out) {
  if (A >= NumNodes || B >= NumNodes)
    return false;
  NodeId RA = find(A), RB = find(B);
  if (!Complete[RA] || !Complete[RB])
    return false;
  obs::count(obs::Counter::DemandQueries);
  obs::count(obs::Counter::DemandMemoHits);
  Out = Pts[RA].intersects(Pts[RB]);
  return true;
}

Status DemandSolver::pointsTo(NodeId V, SolveGovernor *Gov,
                              SparseBitVector &Out) {
  if (V >= NumNodes)
    return Status::invalidArgument("pointsTo query for unknown node " +
                                   std::to_string(V));
  obs::TraceSpan Span("demand.points_to", "demand");
  obs::count(obs::Counter::DemandQueries);
  NodeId R = find(V);
  if (Complete[R]) {
    obs::count(obs::Counter::DemandMemoHits);
    Out = Pts[R];
    return Status::okStatus();
  }
  obs::count(obs::Counter::DemandMemoMisses);
  StepsThisQuery = 0;
  Status St = Status::okStatus();
  try {
    demandFixpoint(R, Gov);
    Out = Pts[find(V)];
  } catch (BudgetExceededError &E) {
    St = E.status();
  }
  obs::count(obs::Counter::DemandSteps, StepsThisQuery);
  return St;
}

Status DemandSolver::alias(NodeId A, NodeId B, SolveGovernor *Gov,
                           bool &Out) {
  if (A >= NumNodes || B >= NumNodes)
    return Status::invalidArgument("alias query for unknown node");
  obs::TraceSpan Span("demand.alias", "demand");
  obs::count(obs::Counter::DemandQueries);
  if (Complete[find(A)] && Complete[find(B)]) {
    obs::count(obs::Counter::DemandMemoHits);
    Out = Pts[find(A)].intersects(Pts[find(B)]);
    return Status::okStatus();
  }
  obs::count(obs::Counter::DemandMemoMisses);
  StepsThisQuery = 0;
  Status St = Status::okStatus();
  try {
    if (!Complete[find(A)])
      demandFixpoint(find(A), Gov);
    if (!Complete[find(B)])
      demandFixpoint(find(B), Gov);
    Out = Pts[find(A)].intersects(Pts[find(B)]);
  } catch (BudgetExceededError &E) {
    St = E.status();
  }
  obs::count(obs::Counter::DemandSteps, StepsThisQuery);
  return St;
}

Status DemandSolver::pointedBy(NodeId Obj, SolveGovernor *Gov,
                               SparseBitVector &Out) {
  if (Obj >= NumNodes)
    return Status::invalidArgument("pointedBy query for unknown node " +
                                   std::to_string(Obj));
  obs::TraceSpan Span("demand.pointed_by", "demand");
  obs::count(obs::Counter::DemandQueries);
  obs::count(obs::Counter::DemandMemoMisses);
  StepsThisQuery = 0;
  Status St = Status::okStatus();

  // Certifies pts(V)'s class and returns its representative.
  auto EnsureComplete = [&](NodeId V) {
    NodeId R = find(V);
    if (!Complete[R])
      demandFixpoint(R, Gov);
    return find(V);
  };

  try {
    // Forward worklist over "class contains Obj": seeded at the
    // address-takers, closed under forward copy flow and the complex
    // rules (answered with certified demand sub-queries). This computes
    // the least fixpoint of the same containment rules the exhaustive
    // solution satisfies, so the result is bit-equal to scanning it.
    SparseBitVector S;    // reps whose class's set contains Obj
    SparseBitVector Done; // reps already expanded
    std::vector<NodeId> WL;
    auto Add = [&](NodeId V) {
      NodeId R = find(V);
      if (S.set(R))
        WL.push_back(R);
    };
    for (NodeId A : AddrTakers[Obj])
      Add(A);

    while (!WL.empty()) {
      NodeId U = find(WL.back());
      WL.pop_back();
      if (!Done.set(U))
        continue;
      chargeStep(Gov);

      // 1. Forward copy flow (original + derived edges). Safe to iterate
      // in place: Add() only touches S/WL.
      for (uint32_t W : Fwd[U])
        Add(W);

      // Sub-queries below can merge classes and grow Members[U]; late
      // joiners are cycle members with identical sets, reached through
      // the copy closure, so a snapshot loses nothing.
      std::vector<NodeId> MemberSnap = Members[U];

      // 2. Loads pulling from a slot of this class: d = *(b+k) receives
      // Obj if some member w = o+k with o ∈ pts(b).
      for (NodeId W : MemberSnap) {
        for (const auto &Bucket : LoadsByOff) {
          uint32_t K = Bucket.first;
          if (K > W)
            continue;
          NodeId O = W - K;
          if (!AddrTaken.test(O) || CS.offsetTarget(O, K) != W)
            continue;
          for (const OffsetLoad &L : Bucket.second) {
            chargeStep(Gov);
            NodeId B = EnsureComplete(L.Base);
            if (Pts[B].test(O))
              Add(L.Dst);
          }
        }
      }

      // 3. Stores with a member as source: *(a+k) = s forwards Obj into
      // every valid slot o+k for o ∈ pts(a).
      for (NodeId W : MemberSnap) {
        for (const SrcStore &St2 : StoresBySrc[W]) {
          chargeStep(Gov);
          NodeId A = EnsureComplete(St2.Ptr);
          for (uint32_t O : Pts[A]) {
            NodeId T = CS.offsetTarget(O, St2.Offset);
            if (T != InvalidNode)
              Add(T);
          }
        }
      }
    }

    // Expand classes to original node ids.
    Out.clear();
    for (uint32_t R : S)
      for (NodeId W : Members[find(R)])
        Out.set(W);
  } catch (BudgetExceededError &E) {
    St = E.status();
  }
  obs::count(obs::Counter::DemandSteps, StepsThisQuery);
  return St;
}
