# Empty dependencies file for ag_bench_harness.
# This may be replaced when dependencies are built.
