file(REMOVE_RECURSE
  "libag_bench_harness.a"
)
