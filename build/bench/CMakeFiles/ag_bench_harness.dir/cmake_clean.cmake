file(REMOVE_RECURSE
  "CMakeFiles/ag_bench_harness.dir/BenchHarness.cpp.o"
  "CMakeFiles/ag_bench_harness.dir/BenchHarness.cpp.o.d"
  "libag_bench_harness.a"
  "libag_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
