file(REMOVE_RECURSE
  "CMakeFiles/bench_adt.dir/bench_adt.cpp.o"
  "CMakeFiles/bench_adt.dir/bench_adt.cpp.o.d"
  "bench_adt"
  "bench_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
