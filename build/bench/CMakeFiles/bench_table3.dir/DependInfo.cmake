
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3.cpp" "bench/CMakeFiles/bench_table3.dir/bench_table3.cpp.o" "gcc" "bench/CMakeFiles/bench_table3.dir/bench_table3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ag_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/ag_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ag_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ag_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/ag_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/adt/CMakeFiles/ag_adt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
