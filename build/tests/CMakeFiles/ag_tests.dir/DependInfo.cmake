
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AdtTest.cpp" "tests/CMakeFiles/ag_tests.dir/AdtTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/AdtTest.cpp.o.d"
  "/root/repo/tests/BddDomainTest.cpp" "tests/CMakeFiles/ag_tests.dir/BddDomainTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/BddDomainTest.cpp.o.d"
  "/root/repo/tests/BddTest.cpp" "tests/CMakeFiles/ag_tests.dir/BddTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/BddTest.cpp.o.d"
  "/root/repo/tests/ConstraintSystemTest.cpp" "tests/CMakeFiles/ag_tests.dir/ConstraintSystemTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/ConstraintSystemTest.cpp.o.d"
  "/root/repo/tests/FieldBasedTest.cpp" "tests/CMakeFiles/ag_tests.dir/FieldBasedTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/FieldBasedTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/ag_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/FuzzTest.cpp" "tests/CMakeFiles/ag_tests.dir/FuzzTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/FuzzTest.cpp.o.d"
  "/root/repo/tests/HcdOfflineTest.cpp" "tests/CMakeFiles/ag_tests.dir/HcdOfflineTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/HcdOfflineTest.cpp.o.d"
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/ag_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/OvsTest.cpp" "tests/CMakeFiles/ag_tests.dir/OvsTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/OvsTest.cpp.o.d"
  "/root/repo/tests/Pkh03Test.cpp" "tests/CMakeFiles/ag_tests.dir/Pkh03Test.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/Pkh03Test.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/ag_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/PtsSetTest.cpp" "tests/CMakeFiles/ag_tests.dir/PtsSetTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/PtsSetTest.cpp.o.d"
  "/root/repo/tests/SolutionTest.cpp" "tests/CMakeFiles/ag_tests.dir/SolutionTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/SolutionTest.cpp.o.d"
  "/root/repo/tests/SolverBasicTest.cpp" "tests/CMakeFiles/ag_tests.dir/SolverBasicTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/SolverBasicTest.cpp.o.d"
  "/root/repo/tests/SolverEquivalenceTest.cpp" "tests/CMakeFiles/ag_tests.dir/SolverEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/SolverEquivalenceTest.cpp.o.d"
  "/root/repo/tests/SparseBitVectorTest.cpp" "tests/CMakeFiles/ag_tests.dir/SparseBitVectorTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/SparseBitVectorTest.cpp.o.d"
  "/root/repo/tests/SteensgaardTest.cpp" "tests/CMakeFiles/ag_tests.dir/SteensgaardTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/SteensgaardTest.cpp.o.d"
  "/root/repo/tests/WorkloadGenTest.cpp" "tests/CMakeFiles/ag_tests.dir/WorkloadGenTest.cpp.o" "gcc" "tests/CMakeFiles/ag_tests.dir/WorkloadGenTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/ag_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ag_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ag_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ag_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/ag_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/adt/CMakeFiles/ag_adt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
