file(REMOVE_RECURSE
  "CMakeFiles/solver_race.dir/solver_race.cpp.o"
  "CMakeFiles/solver_race.dir/solver_race.cpp.o.d"
  "solver_race"
  "solver_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
