file(REMOVE_RECURSE
  "CMakeFiles/callgraph.dir/callgraph.cpp.o"
  "CMakeFiles/callgraph.dir/callgraph.cpp.o.d"
  "callgraph"
  "callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
