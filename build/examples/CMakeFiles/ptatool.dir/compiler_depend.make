# Empty compiler generated dependencies file for ptatool.
# This may be replaced when dependencies are built.
