file(REMOVE_RECURSE
  "CMakeFiles/ptatool.dir/ptatool.cpp.o"
  "CMakeFiles/ptatool.dir/ptatool.cpp.o.d"
  "ptatool"
  "ptatool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptatool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
