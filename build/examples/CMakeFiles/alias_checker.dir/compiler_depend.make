# Empty compiler generated dependencies file for alias_checker.
# This may be replaced when dependencies are built.
