file(REMOVE_RECURSE
  "CMakeFiles/alias_checker.dir/alias_checker.cpp.o"
  "CMakeFiles/alias_checker.dir/alias_checker.cpp.o.d"
  "alias_checker"
  "alias_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
