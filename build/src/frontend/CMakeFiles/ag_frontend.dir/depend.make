# Empty dependencies file for ag_frontend.
# This may be replaced when dependencies are built.
