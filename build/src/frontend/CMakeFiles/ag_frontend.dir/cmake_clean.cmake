file(REMOVE_RECURSE
  "CMakeFiles/ag_frontend.dir/ConstraintGen.cpp.o"
  "CMakeFiles/ag_frontend.dir/ConstraintGen.cpp.o.d"
  "CMakeFiles/ag_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/ag_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/ag_frontend.dir/Parser.cpp.o"
  "CMakeFiles/ag_frontend.dir/Parser.cpp.o.d"
  "libag_frontend.a"
  "libag_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
