file(REMOVE_RECURSE
  "libag_frontend.a"
)
