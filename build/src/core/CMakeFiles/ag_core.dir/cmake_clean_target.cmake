file(REMOVE_RECURSE
  "libag_core.a"
)
