file(REMOVE_RECURSE
  "CMakeFiles/ag_core.dir/HcdOffline.cpp.o"
  "CMakeFiles/ag_core.dir/HcdOffline.cpp.o.d"
  "libag_core.a"
  "libag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
