file(REMOVE_RECURSE
  "CMakeFiles/ag_adt.dir/SparseBitVector.cpp.o"
  "CMakeFiles/ag_adt.dir/SparseBitVector.cpp.o.d"
  "libag_adt.a"
  "libag_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
