file(REMOVE_RECURSE
  "libag_adt.a"
)
