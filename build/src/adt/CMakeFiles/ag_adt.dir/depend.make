# Empty dependencies file for ag_adt.
# This may be replaced when dependencies are built.
