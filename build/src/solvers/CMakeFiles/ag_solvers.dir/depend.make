# Empty dependencies file for ag_solvers.
# This may be replaced when dependencies are built.
