file(REMOVE_RECURSE
  "libag_solvers.a"
)
