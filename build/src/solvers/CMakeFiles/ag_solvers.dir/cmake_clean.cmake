file(REMOVE_RECURSE
  "CMakeFiles/ag_solvers.dir/BlqSolver.cpp.o"
  "CMakeFiles/ag_solvers.dir/BlqSolver.cpp.o.d"
  "CMakeFiles/ag_solvers.dir/Solve.cpp.o"
  "CMakeFiles/ag_solvers.dir/Solve.cpp.o.d"
  "CMakeFiles/ag_solvers.dir/SteensgaardSolver.cpp.o"
  "CMakeFiles/ag_solvers.dir/SteensgaardSolver.cpp.o.d"
  "libag_solvers.a"
  "libag_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
