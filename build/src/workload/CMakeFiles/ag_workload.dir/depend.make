# Empty dependencies file for ag_workload.
# This may be replaced when dependencies are built.
