file(REMOVE_RECURSE
  "libag_workload.a"
)
