file(REMOVE_RECURSE
  "CMakeFiles/ag_workload.dir/WorkloadGen.cpp.o"
  "CMakeFiles/ag_workload.dir/WorkloadGen.cpp.o.d"
  "libag_workload.a"
  "libag_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
