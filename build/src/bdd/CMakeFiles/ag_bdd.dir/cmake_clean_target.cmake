file(REMOVE_RECURSE
  "libag_bdd.a"
)
