# Empty compiler generated dependencies file for ag_bdd.
# This may be replaced when dependencies are built.
