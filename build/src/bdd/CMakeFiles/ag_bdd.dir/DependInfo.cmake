
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/Bdd.cpp" "src/bdd/CMakeFiles/ag_bdd.dir/Bdd.cpp.o" "gcc" "src/bdd/CMakeFiles/ag_bdd.dir/Bdd.cpp.o.d"
  "/root/repo/src/bdd/BddDomain.cpp" "src/bdd/CMakeFiles/ag_bdd.dir/BddDomain.cpp.o" "gcc" "src/bdd/CMakeFiles/ag_bdd.dir/BddDomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adt/CMakeFiles/ag_adt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
