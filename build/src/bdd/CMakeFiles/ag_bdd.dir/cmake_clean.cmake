file(REMOVE_RECURSE
  "CMakeFiles/ag_bdd.dir/Bdd.cpp.o"
  "CMakeFiles/ag_bdd.dir/Bdd.cpp.o.d"
  "CMakeFiles/ag_bdd.dir/BddDomain.cpp.o"
  "CMakeFiles/ag_bdd.dir/BddDomain.cpp.o.d"
  "libag_bdd.a"
  "libag_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
