file(REMOVE_RECURSE
  "libag_constraints.a"
)
