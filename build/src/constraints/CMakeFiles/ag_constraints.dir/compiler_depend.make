# Empty compiler generated dependencies file for ag_constraints.
# This may be replaced when dependencies are built.
