file(REMOVE_RECURSE
  "CMakeFiles/ag_constraints.dir/ConstraintSystem.cpp.o"
  "CMakeFiles/ag_constraints.dir/ConstraintSystem.cpp.o.d"
  "CMakeFiles/ag_constraints.dir/OfflineVariableSubstitution.cpp.o"
  "CMakeFiles/ag_constraints.dir/OfflineVariableSubstitution.cpp.o.d"
  "libag_constraints.a"
  "libag_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
