//===- PropertyTest.cpp - Analysis-level property tests -------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic properties of inclusion-based pointer analysis, checked over
/// randomized systems: monotonicity under constraint addition, determinism,
/// fixpoint closure, and cycle-collapse precision (invariant 2).
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

class AnalysisProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisProperty, MonotoneUnderConstraintAddition) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 3 + 1;
  ConstraintSystem A = generateRandom(Spec);
  ConstraintSystem B = A; // Copy, then add more constraints.
  Rng R(GetParam() * 7 + 5);
  for (int I = 0; I != 10; ++I) {
    NodeId X = static_cast<NodeId>(R.nextBelow(B.numNodes()));
    NodeId Y = static_cast<NodeId>(R.nextBelow(B.numNodes()));
    switch (R.nextBelow(3)) {
    case 0:
      B.addAddressOf(X, Y);
      break;
    case 1:
      B.addCopy(X, Y);
      break;
    case 2:
      B.addLoad(X, Y);
      break;
    }
  }
  PointsToSolution SA = solve(A, SolverKind::LCDHCD);
  PointsToSolution SB = solve(B, SolverKind::LCDHCD);
  for (NodeId V = 0; V != A.numNodes(); ++V)
    EXPECT_TRUE(SB.pointsTo(V).contains(SA.pointsTo(V)))
        << "adding constraints shrank pts(" << V << ")";
}

TEST_P(AnalysisProperty, DeterministicAcrossRuns) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 11;
  ConstraintSystem CS = generateRandom(Spec);
  uint64_t H1 = solve(CS, SolverKind::LCDHCD).hash();
  uint64_t H2 = solve(CS, SolverKind::LCDHCD).hash();
  uint64_t H3 = solve(CS, SolverKind::HT).hash();
  EXPECT_EQ(H1, H2);
  EXPECT_EQ(H1, H3);
}

TEST_P(AnalysisProperty, SolutionIsAFixpoint) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 13 + 2;
  ConstraintSystem CS = generateRandom(Spec);
  PointsToSolution S = solve(CS, SolverKind::LCDHCD);
  for (const Constraint &C : CS.constraints()) {
    switch (C.Kind) {
    case ConstraintKind::AddressOf:
      EXPECT_TRUE(S.pointsToObj(C.Dst, C.Src));
      break;
    case ConstraintKind::Copy:
      EXPECT_TRUE(S.pointsTo(C.Dst).contains(S.pointsTo(C.Src)));
      break;
    case ConstraintKind::Load:
      for (NodeId V : S.pointsToVector(C.Src)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T != InvalidNode)
          EXPECT_TRUE(S.pointsTo(C.Dst).contains(S.pointsTo(T)));
      }
      break;
    case ConstraintKind::Store:
      for (NodeId V : S.pointsToVector(C.Dst)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T != InvalidNode)
          EXPECT_TRUE(S.pointsTo(T).contains(S.pointsTo(C.Src)));
      }
      break;
    }
  }
}

TEST_P(AnalysisProperty, HcdLazyTuplesAreConsistentAtFixpoint) {
  // Invariant 4 (practical form): after solving with HCD, every collapse
  // the lazy tuples caused kept the solution equal to the oracle — and
  // for populated chains, pts(v) == pts(b) really holds.
  RandomSpec Spec;
  Spec.Seed = GetParam() * 17 + 3;
  Spec.NumLoads = 25;
  Spec.NumStores = 25;
  ConstraintSystem CS = generateRandom(Spec);
  HcdResult Hcd = runHcdOffline(CS);
  PointsToSolution S = solve(CS, SolverKind::Naive);
  PointsToSolution WithHcd = solve(CS, SolverKind::HCD);
  EXPECT_TRUE(WithHcd == S);
}

TEST_P(AnalysisProperty, CollapsedCycleMembersShareSets) {
  // Invariant 2: nodes one solver merged must have equal sets in the
  // oracle too (collapse is precision-preserving).
  RandomSpec Spec;
  Spec.Seed = GetParam() * 19 + 4;
  Spec.NumCycles = 5;
  ConstraintSystem CS = generateRandom(Spec);
  SolverStats Stats;
  PointsToSolution Lcd = solve(CS, SolverKind::LCD, PtsRepr::Bitmap,
                               &Stats);
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  for (NodeId V = 0; V != CS.numNodes(); ++V) {
    NodeId R = Lcd.repOf(V);
    if (R == V)
      continue;
    EXPECT_TRUE(Oracle.pointsTo(V) == Oracle.pointsTo(R))
        << "collapsed " << V << " with " << R
        << " but their oracle sets differ";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisProperty,
                         testing::Range<uint64_t>(1, 11));

} // namespace
