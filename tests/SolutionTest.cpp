//===- SolutionTest.cpp - PointsToSolution and MemTracker tests -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "adt/MemTracker.h"
#include "core/PointsToSolution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(PointsToSolution, EmptyDefaults) {
  PointsToSolution S(4);
  EXPECT_EQ(S.numNodes(), 4u);
  for (NodeId V = 0; V != 4; ++V) {
    EXPECT_EQ(S.repOf(V), V);
    EXPECT_TRUE(S.pointsTo(V).empty());
  }
  EXPECT_EQ(S.totalPointsToSize(), 0u);
}

TEST(PointsToSolution, RepSharing) {
  PointsToSolution S(5);
  S.mutableSet(0).set(3);
  S.mutableSet(0).set(4);
  S.setRep(1, 0);
  S.setRep(2, 0);
  EXPECT_TRUE(S.pointsTo(1) == S.pointsTo(0));
  EXPECT_TRUE(S.pointsToObj(2, 3));
  EXPECT_EQ(S.pointsToVector(1), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(S.totalPointsToSize(), 6u) << "three nodes x two targets";
}

TEST(PointsToSolution, MayAlias) {
  PointsToSolution S(4);
  S.mutableSet(0).set(2);
  S.mutableSet(1).set(3);
  EXPECT_FALSE(S.mayAlias(0, 1));
  S.mutableSet(1).set(2);
  EXPECT_TRUE(S.mayAlias(0, 1));
  EXPECT_FALSE(S.mayAlias(2, 3)) << "empty sets alias nothing";
}

TEST(PointsToSolution, EqualityComparesPerNode) {
  PointsToSolution A(3), B(3);
  A.mutableSet(0).set(2);
  EXPECT_FALSE(A == B);
  B.mutableSet(0).set(2);
  EXPECT_TRUE(A == B);

  // Same logical solution through different rep structure.
  PointsToSolution C(3), D(3);
  C.mutableSet(0).set(2);
  C.setRep(1, 0);
  D.mutableSet(0).set(2);
  D.mutableSet(1).set(2);
  EXPECT_TRUE(C == D)
      << "representative choice must not affect equality";

  PointsToSolution E(2);
  EXPECT_FALSE(A == E) << "different node counts differ";
}

TEST(PointsToSolution, HashDiscriminates) {
  PointsToSolution A(3), B(3);
  EXPECT_EQ(A.hash(), B.hash());
  A.mutableSet(1).set(2);
  EXPECT_NE(A.hash(), B.hash());
  B.mutableSet(1).set(2);
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(MemTracker, PeaksAndResets) {
  MemTracker &T = MemTracker::instance();
  uint64_t Base = T.currentBytes(MemCategory::Other);
  T.resetPeaks();
  uint64_t PeakBase = T.peakBytes(MemCategory::Other);

  T.allocate(MemCategory::Other, 1000);
  EXPECT_EQ(T.currentBytes(MemCategory::Other), Base + 1000);
  EXPECT_GE(T.peakBytes(MemCategory::Other), PeakBase + 1000);
  T.release(MemCategory::Other, 400);
  EXPECT_EQ(T.currentBytes(MemCategory::Other), Base + 600);
  EXPECT_GE(T.peakBytes(MemCategory::Other), PeakBase + 1000)
      << "peak survives releases";
  T.resetPeaks();
  EXPECT_EQ(T.peakBytes(MemCategory::Other), Base + 600)
      << "reset snaps peak to current";
  T.release(MemCategory::Other, 600);
}

TEST(MemTracker, TotalSumsCategories) {
  MemTracker &T = MemTracker::instance();
  uint64_t Before = T.currentBytesTotal();
  T.allocate(MemCategory::Other, 128);
  T.allocate(MemCategory::Bitmap, 64);
  EXPECT_EQ(T.currentBytesTotal(), Before + 192);
  T.release(MemCategory::Other, 128);
  T.release(MemCategory::Bitmap, 64);
  EXPECT_EQ(T.currentBytesTotal(), Before);
}

TEST(PointsToSolution, DumpTextFormat) {
  PointsToSolution S(3);
  S.mutableSet(0).set(2);
  S.mutableSet(0).set(1);
  S.setRep(1, 0);
  EXPECT_EQ(S.dumpText(), "0: 1 2\n1: 1 2\n2:\n")
      << "nodes in id order, elements ascending, rep-shared sets expanded";
}

TEST(PointsToSolution, DumpTextStableAcrossSolversAndThreads) {
  // The snapshot layer's determinism guarantee: the same solution dumps
  // the same bytes no matter which solver kind or thread count produced
  // it — representative structure must never leak into the dump.
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  ConstraintSystem CS = generateBenchmark(Spec);

  const std::string Ref = solve(CS, SolverKind::Naive).dumpText();
  ASSERT_FALSE(Ref.empty());
  for (SolverKind K : AllSolverKinds) {
    EXPECT_EQ(solve(CS, K, PtsRepr::Bitmap).dumpText(), Ref)
        << solverKindName(K) << " bitmap";
    if (K != SolverKind::BLQ && K != SolverKind::BLQHCD)
      EXPECT_EQ(solve(CS, K, PtsRepr::Bdd).dumpText(), Ref)
          << solverKindName(K) << " bdd";
  }
  for (unsigned Threads : {1u, 2u, 4u}) {
    SolverOptions Opts;
    Opts.Threads = Threads;
    EXPECT_EQ(solve(CS, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr, Opts)
                  .dumpText(),
              Ref)
        << "parallel wavefront with " << Threads << " threads";
  }
}

} // namespace
