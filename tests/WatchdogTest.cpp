//===- WatchdogTest.cpp - Stall watchdog for the parallel solver ----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stall watchdog must convert a hung parallel solve (driven by the
/// WorkerStall fault-injection site, which parks one worker mid-round)
/// into a governed cancellation: StatusCode::Stalled, a Steensgaard
/// fallback (or a flagged partial when fallback is disallowed), a flight
/// ring dump — and exit code 5 from ptatool. A healthy parallel solve
/// under a generous timeout must be byte-identical to the sequential
/// answer.
///
//===----------------------------------------------------------------------===//

#include "solvers/Solve.h"

#include "adt/FaultInjector.h"
#include "check/SolutionChecker.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "obs/FlightRecorder.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace ag;

namespace {

ConstraintSystem watchdogBench() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 12;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  Spec.Seed = 41;
  return generateBenchmark(Spec);
}

SolverOptions parallelOpts(double StallTimeoutSeconds) {
  SolverOptions Opts;
  Opts.Threads = 4;
  Opts.StallTimeoutSeconds = StallTimeoutSeconds;
  return Opts;
}

TEST(Watchdog, InjectedStallDegradesToSoundFallback) {
  FaultInjector::instance().disarmAll();
  ConstraintSystem CS = watchdogBench();
  PointsToSolution Precise = solve(CS, SolverKind::LCD);

  FaultInjector::instance().armAfter(FaultSite::WorkerStall, 0);
  SolveResult R = solveGoverned(CS, SolverKind::LCD, SolveBudget(),
                                PtsRepr::Bitmap, nullptr,
                                parallelOpts(0.2));
  FaultInjector::instance().disarmAll();

  EXPECT_EQ(R.Outcome, SolveOutcome::Fallback)
      << "a stalled solve must degrade, not hang: " << R.St.toString();
  EXPECT_EQ(R.St.code(), StatusCode::Stalled) << R.St.toString();
  EXPECT_TRUE(R.Sound);
  EXPECT_TRUE(checkSuperset(R.Solution, Precise).ok())
      << "the stall fallback must over-approximate the precise answer";
}

TEST(Watchdog, InjectedStallWithoutFallbackIsFlaggedPartial) {
  FaultInjector::instance().disarmAll();
  ConstraintSystem CS = watchdogBench();
  SolveBudget Budget;
  Budget.AllowFallback = false;

  FaultInjector::instance().armAfter(FaultSite::WorkerStall, 0);
  SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr,
                                parallelOpts(0.2));
  FaultInjector::instance().disarmAll();

  EXPECT_EQ(R.Outcome, SolveOutcome::Partial) << R.St.toString();
  EXPECT_EQ(R.St.code(), StatusCode::Stalled);
  EXPECT_FALSE(R.Sound) << "a truncated parallel solve is not sound";
}

TEST(Watchdog, HealthyParallelSolveIsUnaffectedByWatchdog) {
  FaultInjector::instance().disarmAll();
  ConstraintSystem CS = watchdogBench();
  PointsToSolution Sequential = solve(CS, SolverKind::LCD);

  // Generous timeout: the watchdog arms, monitors, and never fires.
  SolveResult R = solveGoverned(CS, SolverKind::LCD, SolveBudget(),
                                PtsRepr::Bitmap, nullptr,
                                parallelOpts(30.0));
  EXPECT_EQ(R.Outcome, SolveOutcome::Precise) << R.St.toString();
  EXPECT_EQ(R.Solution.hash(), Sequential.hash())
      << "the watchdog must not perturb a healthy solve";
}

TEST(Watchdog, FlightRingRecordsStallDiagnostics) {
  FaultInjector::instance().disarmAll();
  ConstraintSystem CS = watchdogBench();

  FaultInjector::instance().armAfter(FaultSite::WorkerStall, 0);
  SolveResult R = solveGoverned(CS, SolverKind::LCD, SolveBudget(),
                                PtsRepr::Bitmap, nullptr,
                                parallelOpts(0.2));
  FaultInjector::instance().disarmAll();
  ASSERT_EQ(R.St.code(), StatusCode::Stalled);

  // Flight recording defaults on; the ring must hold both the injection
  // marker and the watchdog verdict for post-mortem triage.
  std::string Ring = obs::FlightRecorder::instance().dumpText();
  EXPECT_NE(Ring.find("stall_detected"), std::string::npos) << Ring;
  EXPECT_NE(Ring.find("worker_stall_injected"), std::string::npos) << Ring;
}

#ifdef AG_PTATOOL_PATH

TEST(WatchdogE2e, StalledSolveExitsWithCodeFive) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "watchdog_e2e.cons";
  ASSERT_TRUE(watchdogBench().writeToFile(Cons));

  std::string Base = std::string(AG_PTATOOL_PATH) + " solve " + Cons +
                     " LCD --threads 4 --stall-timeout 0.2 "
                     "--inject-fault worker_stall:0";
  int Raw = std::system((Base + " > /dev/null 2> /dev/null").c_str());
  EXPECT_EQ(WEXITSTATUS(Raw), 5)
      << "a stall must map to the dedicated exit code even when the "
         "fallback is served";
  Raw = std::system(
      (Base + " --no-fallback > /dev/null 2> /dev/null").c_str());
  EXPECT_EQ(WEXITSTATUS(Raw), 5);
}

#endif // AG_PTATOOL_PATH

} // namespace
