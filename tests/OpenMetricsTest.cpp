//===- OpenMetricsTest.cpp - OpenMetrics rendering + HTTP endpoint --------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenMetrics text rendering is parsed and validated in-test (every
/// sample line belongs to a declared family, counters carry the _total
/// suffix, histogram buckets are cumulative with increasing `le`, and the
/// exposition ends with `# EOF`), and the embedded HTTP endpoint is
/// exercised over a real loopback socket: GET /metrics returns the
/// rendering, anything else gets a structured 404/405.
///
//===----------------------------------------------------------------------===//

#include "obs/OpenMetrics.h"

#include "obs/MetricsHttp.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"

#include "TestTimeouts.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace ag;

namespace {

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  std::istringstream In(Text);
  for (std::string L; std::getline(In, L);)
    Out.push_back(L);
  return Out;
}

/// Minimal OpenMetrics parser: validates line structure and returns the
/// sample map (name+labels -> value as string).
void parseOpenMetrics(const std::string &Text,
                      std::map<std::string, std::string> &Samples,
                      std::map<std::string, std::string> &Types) {
  std::vector<std::string> L = lines(Text);
  ASSERT_FALSE(L.empty());
  ASSERT_EQ(L.back(), "# EOF") << "exposition must end with # EOF";
  for (size_t I = 0; I + 1 < L.size(); ++I) {
    const std::string &Line = L[I];
    ASSERT_FALSE(Line.empty()) << "no blank lines before # EOF";
    if (Line[0] == '#') {
      // Only "# TYPE <name> <type>" metadata is emitted.
      std::istringstream Meta(Line);
      std::string Hash, Kw, Name, Type;
      Meta >> Hash >> Kw >> Name >> Type;
      ASSERT_EQ(Hash, "#");
      ASSERT_EQ(Kw, "TYPE") << Line;
      ASSERT_TRUE(Type == "counter" || Type == "gauge" ||
                  Type == "histogram")
          << Line;
      ASSERT_EQ(Types.count(Name), 0u) << "duplicate TYPE for " << Name;
      Types[Name] = Type;
      continue;
    }
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Key = Line.substr(0, Space);
    std::string Value = Line.substr(Space + 1);
    ASSERT_FALSE(Value.empty()) << Line;
    ASSERT_EQ(Samples.count(Key), 0u) << "duplicate sample " << Key;
    Samples[Key] = Value;
  }
}

TEST(OpenMetrics, RenderingIsValidAndCoversTheRegistry) {
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  Reg.reset();
  for (int I = 0; I != 7; ++I)
    obs::count(obs::Counter::ServeRequests);
  Reg.setGauge(obs::Gauge::ServeLatencyP99Query, 1234);
  obs::observe(obs::Hist::ServeRequestMicros, 3);
  obs::observe(obs::Hist::ServeRequestMicros, 100);
  obs::observe(obs::Hist::ServeRequestMicros, 100000);

  std::string Text = obs::renderOpenMetrics(Reg);
  std::map<std::string, std::string> Samples, Types;
  parseOpenMetrics(Text, Samples, Types);
  if (::testing::Test::HasFatalFailure())
    return;

  // Counters: declared as counter, sampled with the _total suffix.
  EXPECT_EQ(Types["ag_serve_requests"], "counter");
  EXPECT_EQ(Samples["ag_serve_requests_total"], "7");
  // Gauges: sampled under the bare name.
  EXPECT_EQ(Types["ag_serve_latency_p99_query"], "gauge");
  EXPECT_EQ(Samples["ag_serve_latency_p99_query"], "1234");
  // Histograms: cumulative buckets with increasing le, +Inf equals count.
  EXPECT_EQ(Types["ag_serve_request_micros"], "histogram");
  EXPECT_EQ(Samples["ag_serve_request_micros_count"], "3");
  EXPECT_EQ(Samples["ag_serve_request_micros_sum"],
            std::to_string(3 + 100 + 100000));
  EXPECT_EQ(Samples["ag_serve_request_micros_bucket{le=\"+Inf\"}"], "3");
  uint64_t PrevLe = 0, PrevCum = 0;
  bool SawBucket = false;
  for (const auto &[Key, Value] : Samples) {
    const std::string Prefix = "ag_serve_request_micros_bucket{le=\"";
    if (Key.rfind(Prefix, 0) != 0 || Key.find("+Inf") != std::string::npos)
      continue;
    uint64_t Le = std::stoull(Key.substr(Prefix.size()));
    uint64_t Cum = std::stoull(Value);
    if (SawBucket) {
      // std::map orders lexicographically, so compare pairwise via the
      // running max instead of adjacency.
      EXPECT_NE(Le, PrevLe) << "duplicate le";
    }
    EXPECT_LE(Cum, 3u) << "cumulative bucket cannot exceed the count";
    SawBucket = true;
    PrevLe = Le;
    PrevCum = std::max(PrevCum, Cum);
  }
  EXPECT_TRUE(SawBucket) << "histogram must render at least one le bucket";
  EXPECT_LE(PrevCum, 3u);

  // Every sample resolves to a declared family.
  for (const auto &[Key, Value] : Samples) {
    std::string Name = Key.substr(0, Key.find('{'));
    bool Known = Types.count(Name) != 0;
    for (const char *Suffix : {"_total", "_bucket", "_sum", "_count"}) {
      size_t N = Name.size(), S = std::string(Suffix).size();
      if (!Known && N > S && Name.compare(N - S, S, Suffix) == 0)
        Known = Types.count(Name.substr(0, N - S)) != 0;
    }
    EXPECT_TRUE(Known) << "sample without TYPE declaration: " << Key;
  }

  EXPECT_NE(std::string(obs::openMetricsContentType())
                .find("application/openmetrics-text"),
            std::string::npos);
  Reg.reset();
  obs::setMetricsEnabled(false);
}

/// Drives one HTTP request against the endpoint and returns the raw
/// response.
std::string httpRequest(uint16_t Port, const std::string &Request) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  size_t Sent = 0;
  while (Sent < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Sent, Request.size() - Sent, 0);
    if (N <= 0)
      break;
    Sent += size_t(N);
  }
  // Bounded read (AG_TEST_TIMEOUT_SCALE stretches it on slow sanitizer
  // runners): an endpoint that never answers fails the expectation below
  // instead of hanging the suite.
  std::string Response;
  char Buf[4096];
  auto End = std::chrono::steady_clock::now() + ag::test::scaledMs(5000);
  for (;;) {
    auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
        End - std::chrono::steady_clock::now());
    if (Remain.count() <= 0)
      break;
    pollfd Pfd = {Fd, POLLIN, 0};
    if (::poll(&Pfd, 1, int(Remain.count())) <= 0)
      break;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Response.append(Buf, size_t(N));
  }
  ::close(Fd);
  return Response;
}

TEST(OpenMetricsHttp, ServesMetricsOverLoopbackSocket) {
  obs::MetricsHttpServer Server(
      [] { return std::string("# TYPE ag_x counter\nag_x_total 5\n# EOF\n"); });
  Status St = Server.start(0); // Ephemeral port.
  ASSERT_TRUE(St.ok()) << St.toString();
  ASSERT_NE(Server.port(), 0);

  std::string Ok = httpRequest(
      Server.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(Ok.find("HTTP/1.1 200 OK"), std::string::npos) << Ok;
  EXPECT_NE(Ok.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(Ok.find("ag_x_total 5"), std::string::npos);
  EXPECT_NE(Ok.find("# EOF"), std::string::npos);

  std::string NotFound = httpRequest(
      Server.port(), "GET /other HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(NotFound.find("404"), std::string::npos) << NotFound;

  std::string BadMethod = httpRequest(
      Server.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(BadMethod.find("405"), std::string::npos) << BadMethod;

  EXPECT_GE(Server.requestsServed(), 3u);
  Server.stop();
}

TEST(OpenMetricsHttp, StopIsIdempotentAndPortRejectsDoubleStart) {
  obs::MetricsHttpServer Server([] { return std::string("# EOF\n"); });
  ASSERT_TRUE(Server.start(0).ok());
  uint16_t Port = Server.port();
  EXPECT_FALSE(Server.start(Port).ok()) << "second start must fail";
  Server.stop();
  Server.stop(); // Idempotent.
}

} // namespace
