//===- HcdOfflineTest.cpp - Tests for HCD's offline analysis --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "core/HcdOffline.h"

#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(HcdOffline, PaperFigure3BuildsLazyTuple) {
  // a = &c; d = c; b = *a; *a = b;
  // Offline graph: {*a, b} form an SCC; expect tuple (a, b).
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         D = CS.addNode("d");
  CS.addAddressOf(A, C);
  CS.addCopy(D, C);
  CS.addLoad(B, A);
  CS.addStore(A, B);
  HcdResult R = runHcdOffline(CS);
  ASSERT_EQ(R.Lazy.size(), 1u);
  EXPECT_EQ(R.Lazy[0].first, A);
  EXPECT_EQ(R.Lazy[0].second, B);
  EXPECT_EQ(R.NumRefSccs, 1u);
  EXPECT_EQ(R.NumPreMerged, 0u);
}

TEST(HcdOffline, VarOnlySccsPreMerge) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c");
  CS.addCopy(B, A);
  CS.addCopy(C, B);
  CS.addCopy(A, C);
  HcdResult R = runHcdOffline(CS);
  EXPECT_EQ(R.NumPreMerged, 2u);
  EXPECT_EQ(R.PreMerge[A], R.PreMerge[B]);
  EXPECT_EQ(R.PreMerge[B], R.PreMerge[C]);
  EXPECT_TRUE(R.Lazy.empty());
}

TEST(HcdOffline, NoCyclesNoWork) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), O = CS.addNode("o");
  CS.addAddressOf(A, O);
  CS.addCopy(B, A);
  CS.addLoad(B, A);
  HcdResult R = runHcdOffline(CS);
  EXPECT_EQ(R.NumPreMerged, 0u);
  EXPECT_TRUE(R.Lazy.empty());
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    EXPECT_EQ(R.PreMerge[V], V);
}

TEST(HcdOffline, MixedSccPicksNonRefTarget) {
  // x -> *m -> y -> x  (store *m = x; y = *m; x = y).
  ConstraintSystem CS;
  NodeId X = CS.addNode("x"), Y = CS.addNode("y"), M = CS.addNode("m");
  CS.addStore(M, X); // VAR(x) -> REF(m)
  CS.addLoad(Y, M);  // REF(m) -> VAR(y)
  CS.addCopy(X, Y);  // VAR(y) -> VAR(x)
  HcdResult R = runHcdOffline(CS);
  ASSERT_EQ(R.Lazy.size(), 1u);
  EXPECT_EQ(R.Lazy[0].first, M);
  // The target must be a VAR member of the SCC (x or y).
  EXPECT_TRUE(R.Lazy[0].second == X || R.Lazy[0].second == Y);
  // Var members of ref-SCCs are not pre-merged (paper's formulation).
  EXPECT_EQ(R.PreMerge[X], X);
  EXPECT_EQ(R.PreMerge[Y], Y);
}

TEST(HcdOffline, OffsetDerefsAreExcluded) {
  // The cycle runs through an offset dereference: conservatively ignored.
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId X = CS.addNode("x"), Y = CS.addNode("y");
  CS.addStore(X, Y, ConstraintSystem::FunctionParamOffset);
  CS.addLoad(Y, X, ConstraintSystem::FunctionParamOffset);
  (void)F;
  HcdResult R = runHcdOffline(CS);
  EXPECT_TRUE(R.Lazy.empty());
  EXPECT_EQ(R.NumPreMerged, 0u);
}

TEST(HcdOffline, LazyTuplesAreSoundOnline) {
  // Invariant 4: in the final solution, for each (n, b) in L, every member
  // v of pts(n) has pts(v) == pts(b) whenever the chain is populated. Here
  // we check the weaker, always-required property: collapsing guided by L
  // reproduces the oracle solution (exercised over random systems).
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    RandomSpec Spec;
    Spec.Seed = Seed * 7;
    Spec.NumStores = 30;
    Spec.NumLoads = 30;
    ConstraintSystem CS = generateRandom(Spec);
    PointsToSolution Oracle = solve(CS, SolverKind::Naive);
    PointsToSolution Hcd = solve(CS, SolverKind::HCD);
    EXPECT_TRUE(Hcd == Oracle) << "seed " << Seed;
  }
}

TEST(HcdOffline, ComposeRepsStacksCorrectly) {
  std::vector<NodeId> Inner = {0, 0, 2, 2}; // 1->0, 3->2.
  std::vector<NodeId> Outer = {0, 1, 0, 3}; // 2->0.
  std::vector<NodeId> Out = composeReps(Inner, Outer);
  EXPECT_EQ(Out, (std::vector<NodeId>{0, 0, 0, 0}));
}

TEST(HcdOffline, PreMergeFeedsSolversViaSeeds) {
  // A var-only cycle pre-merged offline must still solve correctly when
  // passed through the seed path (this is what solve() does internally).
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), O = CS.addNode("o"),
         P = CS.addNode("p");
  CS.addCopy(B, A);
  CS.addCopy(A, B);
  CS.addAddressOf(A, O);
  CS.addAddressOf(P, A); // a is also an object.
  CS.addStore(P, P);     // writes pts(p) into a through the pointer.
  PointsToSolution Oracle = solve(CS, SolverKind::Naive);
  PointsToSolution S = solve(CS, SolverKind::HCD);
  EXPECT_TRUE(S == Oracle);
  EXPECT_TRUE(S.pointsToObj(B, A))
      << "store through p reaches a; cycle forwards it to b";
}

} // namespace
