//===- SparseBitVectorTest.cpp - Tests for the GCC-style bitmap -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace ag;

namespace {

std::vector<uint32_t> toVector(const SparseBitVector &V) {
  std::vector<uint32_t> Out;
  for (uint32_t X : V)
    Out.push_back(X);
  return Out;
}

TEST(SparseBitVector, EmptyBasics) {
  SparseBitVector V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_FALSE(V.test(0));
  EXPECT_FALSE(V.test(12345));
  EXPECT_EQ(V.begin(), V.end());
  EXPECT_EQ(V.memoryBytes(), 0u);
}

TEST(SparseBitVector, SetAndTest) {
  SparseBitVector V;
  EXPECT_TRUE(V.set(5));
  EXPECT_FALSE(V.set(5)) << "second set of same bit reports no change";
  EXPECT_TRUE(V.test(5));
  EXPECT_FALSE(V.test(4));
  EXPECT_FALSE(V.test(6));
  EXPECT_EQ(V.count(), 1u);
  EXPECT_FALSE(V.empty());
}

TEST(SparseBitVector, SetAcrossElementBoundaries) {
  SparseBitVector V;
  // 128-bit elements: exercise bits around the boundaries.
  for (uint32_t Bit : {0u, 63u, 64u, 127u, 128u, 129u, 255u, 256u, 1000000u})
    EXPECT_TRUE(V.set(Bit));
  for (uint32_t Bit : {0u, 63u, 64u, 127u, 128u, 129u, 255u, 256u, 1000000u})
    EXPECT_TRUE(V.test(Bit));
  for (uint32_t Bit : {1u, 62u, 65u, 126u, 130u, 254u, 257u, 999999u})
    EXPECT_FALSE(V.test(Bit));
  EXPECT_EQ(V.count(), 9u);
}

TEST(SparseBitVector, OutOfOrderInsertionIteratesSorted) {
  SparseBitVector V;
  V.set(500);
  V.set(3);
  V.set(250);
  V.set(90);
  EXPECT_EQ(toVector(V), (std::vector<uint32_t>{3, 90, 250, 500}));
}

TEST(SparseBitVector, ForEachDiffWalksBothListsWithoutAllocating) {
  SparseBitVector V, Exclude;
  // Elements interleave every which way: V-only elements before, between
  // and after Exclude's, a shared element with partial overlap in both
  // words, and an Exclude-only element V must skip past.
  for (uint32_t Bit : {3u, 64u, 127u, 300u, 310u, 901u, 5000u})
    V.set(Bit);
  for (uint32_t Bit : {200u, 300u, 640u, 901u, 6000u})
    Exclude.set(Bit);
  std::vector<uint32_t> Seen;
  V.forEachDiff(Exclude, [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_EQ(Seen, (std::vector<uint32_t>{3, 64, 127, 310, 5000}));

  // Against an empty exclusion it degenerates to plain iteration.
  Seen.clear();
  V.forEachDiff(SparseBitVector(), [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_EQ(Seen, toVector(V));

  // Excluding a superset yields nothing.
  SparseBitVector Super = Exclude;
  Super.unionWith(V);
  Seen.clear();
  V.forEachDiff(Super, [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_TRUE(Seen.empty());
}

TEST(SparseBitVector, ForEachDiffMatchesSubtractRandomized) {
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    Rng R(Seed * 77);
    SparseBitVector A, B;
    for (int I = 0; I != 200; ++I)
      A.set(static_cast<uint32_t>(R.next() % 2048));
    for (int I = 0; I != 200; ++I)
      B.set(static_cast<uint32_t>(R.next() % 2048));
    SparseBitVector D = A;
    D.subtract(B);
    std::vector<uint32_t> Seen;
    A.forEachDiff(B, [&](uint32_t Bit) { Seen.push_back(Bit); });
    EXPECT_EQ(Seen, toVector(D)) << "seed " << Seed;
  }
}

TEST(SparseBitVector, Reset) {
  SparseBitVector V;
  V.set(10);
  V.set(200);
  EXPECT_TRUE(V.reset(10));
  EXPECT_FALSE(V.reset(10)) << "resetting a clear bit reports no change";
  EXPECT_FALSE(V.test(10));
  EXPECT_TRUE(V.test(200));
  EXPECT_TRUE(V.reset(200));
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.memoryBytes(), 0u) << "empty elements must be freed";
}

TEST(SparseBitVector, FindFirst) {
  SparseBitVector V;
  V.set(700);
  EXPECT_EQ(V.findFirst(), 700u);
  V.set(65);
  EXPECT_EQ(V.findFirst(), 65u);
  V.set(64);
  EXPECT_EQ(V.findFirst(), 64u);
  V.set(3);
  EXPECT_EQ(V.findFirst(), 3u);
}

TEST(SparseBitVector, UnionWith) {
  SparseBitVector A, B;
  A.set(1);
  A.set(300);
  B.set(1);
  B.set(200);
  B.set(100000);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 200, 300, 100000}));
  EXPECT_FALSE(A.unionWith(B)) << "second union is a no-op";
  SparseBitVector Empty;
  EXPECT_FALSE(A.unionWith(Empty));
  EXPECT_TRUE(Empty.unionWith(A));
  EXPECT_TRUE(Empty == A);
}

TEST(SparseBitVector, IntersectWith) {
  SparseBitVector A, B;
  for (uint32_t X : {1u, 5u, 130u, 260u, 1000u})
    A.set(X);
  for (uint32_t X : {5u, 130u, 999u, 2000u})
    B.set(X);
  EXPECT_TRUE(A.intersectWith(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{5, 130}));
  EXPECT_FALSE(A.intersectWith(B));
  SparseBitVector Empty;
  EXPECT_TRUE(A.intersectWith(Empty));
  EXPECT_TRUE(A.empty());
}

TEST(SparseBitVector, Subtract) {
  SparseBitVector A, B;
  for (uint32_t X : {1u, 5u, 130u, 260u})
    A.set(X);
  B.set(5);
  B.set(260);
  B.set(7777);
  EXPECT_TRUE(A.subtract(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 130}));
  EXPECT_FALSE(A.subtract(B));
}

TEST(SparseBitVector, UnionWithMinus) {
  SparseBitVector A, B, X;
  A.set(1);
  B.set(1);
  B.set(2);
  B.set(300);
  B.set(400);
  X.set(300);
  X.set(1);
  EXPECT_TRUE(A.unionWithMinus(B, X));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 2, 400}));
  EXPECT_FALSE(A.unionWithMinus(B, X));
}

TEST(SparseBitVector, IntersectsAndContains) {
  SparseBitVector A, B;
  A.set(10);
  A.set(500);
  B.set(500);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(A.contains(B));
  EXPECT_FALSE(B.contains(A));
  B.set(11);
  EXPECT_FALSE(A.contains(B));
  SparseBitVector C;
  C.set(999);
  EXPECT_FALSE(A.intersects(C));
  SparseBitVector Empty;
  EXPECT_FALSE(A.intersects(Empty));
  EXPECT_TRUE(A.contains(Empty));
}

TEST(SparseBitVector, EqualityAndCopies) {
  SparseBitVector A;
  for (uint32_t X : {7u, 70u, 700u, 7000u})
    A.set(X);
  SparseBitVector B(A);
  EXPECT_TRUE(A == B);
  B.reset(70);
  EXPECT_TRUE(A != B);
  B = A;
  EXPECT_TRUE(A == B);
  SparseBitVector C(std::move(B));
  EXPECT_TRUE(A == C);
  EXPECT_TRUE(B.empty()); // NOLINT: moved-from is specified empty here.
}

TEST(SparseBitVector, SelfAssignment) {
  SparseBitVector A;
  A.set(42);
  A = *&A;
  EXPECT_TRUE(A.test(42));
  EXPECT_EQ(A.count(), 1u);
}

TEST(SparseBitVector, MemoryAccounting) {
  uint64_t Before =
      MemTracker::instance().currentBytes(MemCategory::Bitmap);
  {
    SparseBitVector V;
    for (uint32_t I = 0; I != 1000; ++I)
      V.set(I * 1000);
    EXPECT_GT(MemTracker::instance().currentBytes(MemCategory::Bitmap),
              Before);
    EXPECT_GT(V.memoryBytes(), 0u);
  }
  EXPECT_EQ(MemTracker::instance().currentBytes(MemCategory::Bitmap),
            Before)
      << "destructor must return all bytes";
}

/// Property test: a SparseBitVector behaves exactly like std::set under a
/// random operation sequence (invariant 6 in DESIGN.md).
class SparseBitVectorProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SparseBitVectorProperty, MatchesStdSet) {
  Rng R(GetParam());
  SparseBitVector V;
  std::set<uint32_t> Oracle;
  constexpr uint32_t Universe = 2000;

  for (int Step = 0; Step != 2000; ++Step) {
    uint32_t X = static_cast<uint32_t>(R.nextBelow(Universe));
    switch (R.nextBelow(6)) {
    case 0:
    case 1: // set (biased: sets are usually grown)
      EXPECT_EQ(V.set(X), Oracle.insert(X).second);
      break;
    case 2:
      EXPECT_EQ(V.reset(X), Oracle.erase(X) > 0);
      break;
    case 3:
      EXPECT_EQ(V.test(X), Oracle.count(X) > 0);
      break;
    case 4: { // bulk union with a small random set
      SparseBitVector Other;
      std::set<uint32_t> OtherOracle;
      for (int I = 0; I != 8; ++I) {
        uint32_t Y = static_cast<uint32_t>(R.nextBelow(Universe));
        Other.set(Y);
        OtherOracle.insert(Y);
      }
      size_t OldSize = Oracle.size();
      Oracle.insert(OtherOracle.begin(), OtherOracle.end());
      EXPECT_EQ(V.unionWith(Other), Oracle.size() != OldSize);
      break;
    }
    case 5:
      EXPECT_EQ(V.count(), Oracle.size());
      break;
    }
  }
  EXPECT_EQ(toVector(V),
            std::vector<uint32_t>(Oracle.begin(), Oracle.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitVectorProperty,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Property: bulk operations agree with element-wise set algebra.
class SparseBitVectorAlgebra : public testing::TestWithParam<uint64_t> {};

TEST_P(SparseBitVectorAlgebra, BulkOpsMatchSetAlgebra) {
  Rng R(GetParam() * 977);
  auto randomSet = [&](std::set<uint32_t> &S, SparseBitVector &V) {
    int N = 1 + static_cast<int>(R.nextBelow(60));
    for (int I = 0; I != N; ++I) {
      uint32_t X = static_cast<uint32_t>(R.nextBelow(500));
      S.insert(X);
      V.set(X);
    }
  };
  std::set<uint32_t> SA, SB;
  SparseBitVector A, B;
  randomSet(SA, A);
  randomSet(SB, B);

  // Union.
  {
    SparseBitVector U = A;
    U.unionWith(B);
    std::set<uint32_t> SU = SA;
    SU.insert(SB.begin(), SB.end());
    EXPECT_EQ(toVector(U), std::vector<uint32_t>(SU.begin(), SU.end()));
  }
  // Intersection.
  {
    SparseBitVector I = A;
    I.intersectWith(B);
    std::vector<uint32_t> SI;
    for (uint32_t X : SA)
      if (SB.count(X))
        SI.push_back(X);
    EXPECT_EQ(toVector(I), SI);
  }
  // Difference.
  {
    SparseBitVector D = A;
    D.subtract(B);
    std::vector<uint32_t> SD;
    for (uint32_t X : SA)
      if (!SB.count(X))
        SD.push_back(X);
    EXPECT_EQ(toVector(D), SD);
  }
  // unionWithMinus == union of (B - A-as-exclusion).
  {
    SparseBitVector M = A;
    M.unionWithMinus(B, A);
    SparseBitVector U = A;
    U.unionWith(B);
    EXPECT_TRUE(M == U) << "excluding existing bits can't change result";
  }
  // intersects/contains consistency.
  {
    SparseBitVector I = A;
    I.intersectWith(B);
    EXPECT_EQ(A.intersects(B), !I.empty());
    SparseBitVector U = A;
    bool Grew = U.unionWith(B);
    EXPECT_EQ(A.contains(B), !Grew) << "B ⊆ A iff A ∪ B == A";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitVectorAlgebra,
                         testing::Range<uint64_t>(1, 17));

// --- Fused kernels (unionWithStatus / unionWithVisitNew) -----------------

TEST(SparseBitVector, UnionWithStatusReportsEqualityAndChange) {
  SparseBitVector A, B;
  for (uint32_t X : {1u, 128u, 5000u}) {
    A.set(X);
    B.set(X);
  }
  // Equal operands: no change, equality observed.
  SparseBitVector::UnionResult R = A.unionWithStatus(B);
  EXPECT_FALSE(R.Changed);
  EXPECT_TRUE(R.WasEqual);
  // Self-union is the degenerate equal case.
  R = A.unionWithStatus(A);
  EXPECT_FALSE(R.Changed);
  EXPECT_TRUE(R.WasEqual);
  // Strict superset destination: nothing new, but not equal.
  A.set(70);
  R = A.unionWithStatus(B);
  EXPECT_FALSE(R.Changed);
  EXPECT_FALSE(R.WasEqual);
  // Strict subset destination: grows, not equal.
  R = B.unionWithStatus(A);
  EXPECT_TRUE(R.Changed);
  EXPECT_FALSE(R.WasEqual);
  EXPECT_TRUE(A == B);
  // Empty RHS against non-empty LHS: union no-op but not equal.
  SparseBitVector Empty;
  R = A.unionWithStatus(Empty);
  EXPECT_FALSE(R.Changed);
  EXPECT_FALSE(R.WasEqual);
  // Both empty: equal.
  SparseBitVector Empty2;
  R = Empty2.unionWithStatus(Empty);
  EXPECT_FALSE(R.Changed);
  EXPECT_TRUE(R.WasEqual);
  // Disjoint element lists (RHS-only elements before and after LHS's).
  SparseBitVector Lo, Mid;
  Mid.set(200);
  Lo.set(3);
  Lo.set(100000);
  R = Mid.unionWithStatus(Lo);
  EXPECT_TRUE(R.Changed);
  EXPECT_FALSE(R.WasEqual);
  EXPECT_EQ(toVector(Mid), (std::vector<uint32_t>{3, 200, 100000}));
}

TEST(SparseBitVector, UnionWithVisitNewVisitsExactlyTheNewBitsAscending) {
  // Alternating elements: A holds elements 0/2/4, B holds 1/3/5 plus a
  // partial overlap inside element 2, with bits on both 64-bit words and
  // the 127/128 boundaries.
  SparseBitVector A, B;
  for (uint32_t X : {0u, 127u, 300u, 310u, 600u})
    A.set(X);
  for (uint32_t X : {128u, 255u, 300u, 311u, 449u, 700u})
    B.set(X);
  SparseBitVector Expected = A;
  std::vector<uint32_t> ExpectedNew;
  B.forEachDiff(A, [&](uint32_t Bit) { ExpectedNew.push_back(Bit); });
  Expected.unionWith(B);

  std::vector<uint32_t> Seen;
  EXPECT_TRUE(A.unionWithVisitNew(B, [&](uint32_t Bit) { Seen.push_back(Bit); }));
  EXPECT_EQ(Seen, ExpectedNew) << "one merge pass must report B \\ A ascending";
  EXPECT_TRUE(A == Expected);

  // Re-union: nothing new, callback never fires.
  Seen.clear();
  EXPECT_FALSE(A.unionWithVisitNew(B, [&](uint32_t Bit) { Seen.push_back(Bit); }));
  EXPECT_TRUE(Seen.empty());

  // Self-union and empty RHS are no-ops that must not visit.
  EXPECT_FALSE(A.unionWithVisitNew(A, [&](uint32_t) { FAIL(); }));
  EXPECT_FALSE(A.unionWithVisitNew(SparseBitVector(),
                                   [&](uint32_t) { FAIL(); }));

  // Empty LHS: every RHS bit is new.
  SparseBitVector Fresh;
  Seen.clear();
  EXPECT_TRUE(Fresh.unionWithVisitNew(B,
                                      [&](uint32_t Bit) { Seen.push_back(Bit); }));
  EXPECT_EQ(Seen, toVector(B));
  EXPECT_TRUE(Fresh == B);
}

TEST(SparseBitVector, FusedKernelsMatchOracleRandomized) {
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    Rng R(Seed * 31337);
    SparseBitVector A, B;
    std::set<uint32_t> SA, SB;
    // Clustered draws so element lists interleave adversarially: long
    // shared runs, single-bit elements, and full-word boundaries.
    uint32_t Base = 0;
    for (int I = 0; I != 300; ++I) {
      if (R.nextBelow(16) == 0)
        Base = static_cast<uint32_t>(R.nextBelow(1u << 20));
      uint32_t X = Base + static_cast<uint32_t>(R.nextBelow(260));
      if (R.nextBelow(2)) {
        A.set(X);
        SA.insert(X);
      } else {
        B.set(X);
        SB.insert(X);
      }
      if (R.nextBelow(4) == 0) { // Shared bits.
        A.set(X);
        SA.insert(X);
        B.set(X);
        SB.insert(X);
      }
    }
    // Oracle: union and new-bit list from std::set.
    std::set<uint32_t> SU = SA;
    SU.insert(SB.begin(), SB.end());
    std::vector<uint32_t> OracleNew;
    for (uint32_t X : SB)
      if (!SA.count(X))
        OracleNew.push_back(X);

    SparseBitVector U1 = A;
    SparseBitVector::UnionResult St = U1.unionWithStatus(B);
    EXPECT_EQ(St.Changed, !OracleNew.empty()) << "seed " << Seed;
    EXPECT_EQ(St.WasEqual, SA == SB) << "seed " << Seed;
    EXPECT_EQ(toVector(U1), std::vector<uint32_t>(SU.begin(), SU.end()))
        << "seed " << Seed;

    SparseBitVector U2 = A;
    std::vector<uint32_t> Seen;
    EXPECT_EQ(U2.unionWithVisitNew(B,
                                   [&](uint32_t Bit) { Seen.push_back(Bit); }),
              !OracleNew.empty())
        << "seed " << Seed;
    EXPECT_EQ(Seen, OracleNew) << "seed " << Seed;
    EXPECT_TRUE(U1 == U2) << "seed " << Seed;
    EXPECT_EQ(U1.contentHash(), U2.contentHash()) << "seed " << Seed;
  }
}

TEST(SparseBitVector, UnionWithDeltaAccumulatesExactlyTheNewBits) {
  // A and B share element 2 partially (one word each side of the 64-bit
  // split), and each owns elements the other lacks, including the 127/128
  // element boundary.
  SparseBitVector A, B;
  for (uint32_t X : {0u, 127u, 300u, 310u, 600u})
    A.set(X);
  for (uint32_t X : {128u, 255u, 300u, 311u, 449u, 700u})
    B.set(X);
  std::vector<uint32_t> ExpectedNew;
  B.forEachDiff(A, [&](uint32_t Bit) { ExpectedNew.push_back(Bit); });
  SparseBitVector Expected = A;
  Expected.unionWith(B);

  SparseBitVector Delta;
  EXPECT_TRUE(A.unionWithDelta(B, Delta));
  EXPECT_TRUE(A == Expected);
  EXPECT_EQ(toVector(Delta), ExpectedNew)
      << "delta must hold exactly B \\ A(before)";

  // Re-union: nothing new, delta untouched.
  EXPECT_FALSE(A.unionWithDelta(B, Delta));
  EXPECT_EQ(toVector(Delta), ExpectedNew);

  // Accumulation: a second source ORs its new bits on top of the
  // existing delta contents (including into an already-present element).
  SparseBitVector C;
  C.set(1);   // Element 0: A already has bit 0, delta gains 1.
  C.set(310); // Already in A: must NOT re-enter the delta.
  C.set(9000);
  EXPECT_TRUE(A.unionWithDelta(C, Delta));
  std::vector<uint32_t> ExpectedAccum = ExpectedNew;
  ExpectedAccum.push_back(1);
  ExpectedAccum.push_back(9000);
  std::sort(ExpectedAccum.begin(), ExpectedAccum.end());
  EXPECT_EQ(toVector(Delta), ExpectedAccum);

  // Self-union and empty RHS: no change, delta untouched.
  EXPECT_FALSE(A.unionWithDelta(A, Delta));
  EXPECT_FALSE(A.unionWithDelta(SparseBitVector(), Delta));
  EXPECT_EQ(toVector(Delta), ExpectedAccum);

  // Empty LHS: everything is new.
  SparseBitVector Fresh, FreshDelta;
  EXPECT_TRUE(Fresh.unionWithDelta(B, FreshDelta));
  EXPECT_TRUE(Fresh == B);
  EXPECT_TRUE(FreshDelta == B);
}

TEST(SparseBitVector, UnionWithDeltaMatchesOracleRandomized) {
  for (uint64_t Seed = 1; Seed != 13; ++Seed) {
    Rng R(Seed * 977);
    SparseBitVector A, B, Delta;
    std::set<uint32_t> SA, SB, SD;
    uint32_t Base = 0;
    for (int I = 0; I != 300; ++I) {
      if (R.nextBelow(16) == 0)
        Base = static_cast<uint32_t>(R.nextBelow(1u << 20));
      uint32_t X = Base + static_cast<uint32_t>(R.nextBelow(260));
      switch (R.nextBelow(4)) {
      case 0:
        A.set(X);
        SA.insert(X);
        break;
      case 1:
        B.set(X);
        SB.insert(X);
        break;
      case 2: // Shared bits.
        A.set(X);
        SA.insert(X);
        B.set(X);
        SB.insert(X);
        break;
      default: // Pre-existing delta contents that must survive the merge.
        Delta.set(X);
        SD.insert(X);
        break;
      }
    }
    // Oracle: destination becomes A ∪ B; delta gains B \ A.
    std::set<uint32_t> SU = SA;
    SU.insert(SB.begin(), SB.end());
    std::set<uint32_t> SDAfter = SD;
    bool OracleChanged = false;
    for (uint32_t X : SB)
      if (!SA.count(X)) {
        SDAfter.insert(X);
        OracleChanged = true;
      }

    EXPECT_EQ(A.unionWithDelta(B, Delta), OracleChanged) << "seed " << Seed;
    EXPECT_EQ(toVector(A), std::vector<uint32_t>(SU.begin(), SU.end()))
        << "seed " << Seed;
    EXPECT_EQ(toVector(Delta),
              std::vector<uint32_t>(SDAfter.begin(), SDAfter.end()))
        << "seed " << Seed;
  }
}

TEST(SparseBitVector, ContentHashAgreesWithEquality) {
  SparseBitVector A, B;
  for (uint32_t X : {5u, 64u, 129u, 4096u}) {
    A.set(X);
    B.set(X);
  }
  EXPECT_EQ(A.contentHash(), B.contentHash());
  B.set(130);
  EXPECT_NE(A.contentHash(), B.contentHash());
  B.reset(130);
  EXPECT_EQ(A.contentHash(), B.contentHash());
  EXPECT_EQ(SparseBitVector().contentHash(),
            SparseBitVector().contentHash());
}

// --- Arena-backed element allocation -------------------------------------

TEST(SparseBitVector, ArenaBoundSetsBehaveIdentically) {
  ElementArena Arena(SparseBitVector::elementBytes());
  SparseBitVector V;
  V.setArena(&Arena);
  SparseBitVector Plain;
  Rng R(99);
  for (int I = 0; I != 500; ++I) {
    uint32_t X = static_cast<uint32_t>(R.nextBelow(4096));
    V.set(X);
    Plain.set(X);
  }
  EXPECT_TRUE(V == Plain);
  EXPECT_GT(Arena.liveBlocks(), 0u);
  EXPECT_GE(Arena.reservedBytes(),
            Arena.liveBlocks() * SparseBitVector::elementBytes());
  V.clear();
  EXPECT_EQ(Arena.liveBlocks(), 0u) << "clear() returns blocks to the arena";
  // Freed blocks are recycled, not re-reserved.
  uint64_t Reserved = Arena.reservedBytes();
  V.set(7);
  V.set(700);
  EXPECT_EQ(Arena.reservedBytes(), Reserved);
}

TEST(SparseBitVector, CrossArenaMoveAssignCopies) {
  ElementArena A1(SparseBitVector::elementBytes());
  ElementArena A2(SparseBitVector::elementBytes());
  SparseBitVector X, Y;
  X.setArena(&A1);
  Y.setArena(&A2);
  for (uint32_t Bit : {1u, 200u, 4000u})
    X.set(Bit);
  SparseBitVector Expected = X;
  Y = std::move(X);
  EXPECT_TRUE(Y == Expected);
  EXPECT_TRUE(X.empty()); // NOLINT: moved-from is specified empty here.
  EXPECT_EQ(Y.arena(), &A2) << "cross-arena move must not migrate elements";
  // Same-arena move steals the list wholesale.
  SparseBitVector Z;
  Z.setArena(&A2);
  Z = std::move(Y);
  EXPECT_TRUE(Z == Expected);
  // Move construction transfers the arena binding with the elements.
  SparseBitVector W(std::move(Z));
  EXPECT_EQ(W.arena(), &A2);
  EXPECT_TRUE(W == Expected);
}

} // namespace
