//===- SparseBitVectorTest.cpp - Tests for the GCC-style bitmap -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "adt/SparseBitVector.h"

#include "adt/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ag;

namespace {

std::vector<uint32_t> toVector(const SparseBitVector &V) {
  std::vector<uint32_t> Out;
  for (uint32_t X : V)
    Out.push_back(X);
  return Out;
}

TEST(SparseBitVector, EmptyBasics) {
  SparseBitVector V;
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_FALSE(V.test(0));
  EXPECT_FALSE(V.test(12345));
  EXPECT_EQ(V.begin(), V.end());
  EXPECT_EQ(V.memoryBytes(), 0u);
}

TEST(SparseBitVector, SetAndTest) {
  SparseBitVector V;
  EXPECT_TRUE(V.set(5));
  EXPECT_FALSE(V.set(5)) << "second set of same bit reports no change";
  EXPECT_TRUE(V.test(5));
  EXPECT_FALSE(V.test(4));
  EXPECT_FALSE(V.test(6));
  EXPECT_EQ(V.count(), 1u);
  EXPECT_FALSE(V.empty());
}

TEST(SparseBitVector, SetAcrossElementBoundaries) {
  SparseBitVector V;
  // 128-bit elements: exercise bits around the boundaries.
  for (uint32_t Bit : {0u, 63u, 64u, 127u, 128u, 129u, 255u, 256u, 1000000u})
    EXPECT_TRUE(V.set(Bit));
  for (uint32_t Bit : {0u, 63u, 64u, 127u, 128u, 129u, 255u, 256u, 1000000u})
    EXPECT_TRUE(V.test(Bit));
  for (uint32_t Bit : {1u, 62u, 65u, 126u, 130u, 254u, 257u, 999999u})
    EXPECT_FALSE(V.test(Bit));
  EXPECT_EQ(V.count(), 9u);
}

TEST(SparseBitVector, OutOfOrderInsertionIteratesSorted) {
  SparseBitVector V;
  V.set(500);
  V.set(3);
  V.set(250);
  V.set(90);
  EXPECT_EQ(toVector(V), (std::vector<uint32_t>{3, 90, 250, 500}));
}

TEST(SparseBitVector, ForEachDiffWalksBothListsWithoutAllocating) {
  SparseBitVector V, Exclude;
  // Elements interleave every which way: V-only elements before, between
  // and after Exclude's, a shared element with partial overlap in both
  // words, and an Exclude-only element V must skip past.
  for (uint32_t Bit : {3u, 64u, 127u, 300u, 310u, 901u, 5000u})
    V.set(Bit);
  for (uint32_t Bit : {200u, 300u, 640u, 901u, 6000u})
    Exclude.set(Bit);
  std::vector<uint32_t> Seen;
  V.forEachDiff(Exclude, [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_EQ(Seen, (std::vector<uint32_t>{3, 64, 127, 310, 5000}));

  // Against an empty exclusion it degenerates to plain iteration.
  Seen.clear();
  V.forEachDiff(SparseBitVector(), [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_EQ(Seen, toVector(V));

  // Excluding a superset yields nothing.
  SparseBitVector Super = Exclude;
  Super.unionWith(V);
  Seen.clear();
  V.forEachDiff(Super, [&](uint32_t Bit) { Seen.push_back(Bit); });
  EXPECT_TRUE(Seen.empty());
}

TEST(SparseBitVector, ForEachDiffMatchesSubtractRandomized) {
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    Rng R(Seed * 77);
    SparseBitVector A, B;
    for (int I = 0; I != 200; ++I)
      A.set(static_cast<uint32_t>(R.next() % 2048));
    for (int I = 0; I != 200; ++I)
      B.set(static_cast<uint32_t>(R.next() % 2048));
    SparseBitVector D = A;
    D.subtract(B);
    std::vector<uint32_t> Seen;
    A.forEachDiff(B, [&](uint32_t Bit) { Seen.push_back(Bit); });
    EXPECT_EQ(Seen, toVector(D)) << "seed " << Seed;
  }
}

TEST(SparseBitVector, Reset) {
  SparseBitVector V;
  V.set(10);
  V.set(200);
  EXPECT_TRUE(V.reset(10));
  EXPECT_FALSE(V.reset(10)) << "resetting a clear bit reports no change";
  EXPECT_FALSE(V.test(10));
  EXPECT_TRUE(V.test(200));
  EXPECT_TRUE(V.reset(200));
  EXPECT_TRUE(V.empty());
  EXPECT_EQ(V.memoryBytes(), 0u) << "empty elements must be freed";
}

TEST(SparseBitVector, FindFirst) {
  SparseBitVector V;
  V.set(700);
  EXPECT_EQ(V.findFirst(), 700u);
  V.set(65);
  EXPECT_EQ(V.findFirst(), 65u);
  V.set(64);
  EXPECT_EQ(V.findFirst(), 64u);
  V.set(3);
  EXPECT_EQ(V.findFirst(), 3u);
}

TEST(SparseBitVector, UnionWith) {
  SparseBitVector A, B;
  A.set(1);
  A.set(300);
  B.set(1);
  B.set(200);
  B.set(100000);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 200, 300, 100000}));
  EXPECT_FALSE(A.unionWith(B)) << "second union is a no-op";
  SparseBitVector Empty;
  EXPECT_FALSE(A.unionWith(Empty));
  EXPECT_TRUE(Empty.unionWith(A));
  EXPECT_TRUE(Empty == A);
}

TEST(SparseBitVector, IntersectWith) {
  SparseBitVector A, B;
  for (uint32_t X : {1u, 5u, 130u, 260u, 1000u})
    A.set(X);
  for (uint32_t X : {5u, 130u, 999u, 2000u})
    B.set(X);
  EXPECT_TRUE(A.intersectWith(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{5, 130}));
  EXPECT_FALSE(A.intersectWith(B));
  SparseBitVector Empty;
  EXPECT_TRUE(A.intersectWith(Empty));
  EXPECT_TRUE(A.empty());
}

TEST(SparseBitVector, Subtract) {
  SparseBitVector A, B;
  for (uint32_t X : {1u, 5u, 130u, 260u})
    A.set(X);
  B.set(5);
  B.set(260);
  B.set(7777);
  EXPECT_TRUE(A.subtract(B));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 130}));
  EXPECT_FALSE(A.subtract(B));
}

TEST(SparseBitVector, UnionWithMinus) {
  SparseBitVector A, B, X;
  A.set(1);
  B.set(1);
  B.set(2);
  B.set(300);
  B.set(400);
  X.set(300);
  X.set(1);
  EXPECT_TRUE(A.unionWithMinus(B, X));
  EXPECT_EQ(toVector(A), (std::vector<uint32_t>{1, 2, 400}));
  EXPECT_FALSE(A.unionWithMinus(B, X));
}

TEST(SparseBitVector, IntersectsAndContains) {
  SparseBitVector A, B;
  A.set(10);
  A.set(500);
  B.set(500);
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(A.contains(B));
  EXPECT_FALSE(B.contains(A));
  B.set(11);
  EXPECT_FALSE(A.contains(B));
  SparseBitVector C;
  C.set(999);
  EXPECT_FALSE(A.intersects(C));
  SparseBitVector Empty;
  EXPECT_FALSE(A.intersects(Empty));
  EXPECT_TRUE(A.contains(Empty));
}

TEST(SparseBitVector, EqualityAndCopies) {
  SparseBitVector A;
  for (uint32_t X : {7u, 70u, 700u, 7000u})
    A.set(X);
  SparseBitVector B(A);
  EXPECT_TRUE(A == B);
  B.reset(70);
  EXPECT_TRUE(A != B);
  B = A;
  EXPECT_TRUE(A == B);
  SparseBitVector C(std::move(B));
  EXPECT_TRUE(A == C);
  EXPECT_TRUE(B.empty()); // NOLINT: moved-from is specified empty here.
}

TEST(SparseBitVector, SelfAssignment) {
  SparseBitVector A;
  A.set(42);
  A = *&A;
  EXPECT_TRUE(A.test(42));
  EXPECT_EQ(A.count(), 1u);
}

TEST(SparseBitVector, MemoryAccounting) {
  uint64_t Before =
      MemTracker::instance().currentBytes(MemCategory::Bitmap);
  {
    SparseBitVector V;
    for (uint32_t I = 0; I != 1000; ++I)
      V.set(I * 1000);
    EXPECT_GT(MemTracker::instance().currentBytes(MemCategory::Bitmap),
              Before);
    EXPECT_GT(V.memoryBytes(), 0u);
  }
  EXPECT_EQ(MemTracker::instance().currentBytes(MemCategory::Bitmap),
            Before)
      << "destructor must return all bytes";
}

/// Property test: a SparseBitVector behaves exactly like std::set under a
/// random operation sequence (invariant 6 in DESIGN.md).
class SparseBitVectorProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SparseBitVectorProperty, MatchesStdSet) {
  Rng R(GetParam());
  SparseBitVector V;
  std::set<uint32_t> Oracle;
  constexpr uint32_t Universe = 2000;

  for (int Step = 0; Step != 2000; ++Step) {
    uint32_t X = static_cast<uint32_t>(R.nextBelow(Universe));
    switch (R.nextBelow(6)) {
    case 0:
    case 1: // set (biased: sets are usually grown)
      EXPECT_EQ(V.set(X), Oracle.insert(X).second);
      break;
    case 2:
      EXPECT_EQ(V.reset(X), Oracle.erase(X) > 0);
      break;
    case 3:
      EXPECT_EQ(V.test(X), Oracle.count(X) > 0);
      break;
    case 4: { // bulk union with a small random set
      SparseBitVector Other;
      std::set<uint32_t> OtherOracle;
      for (int I = 0; I != 8; ++I) {
        uint32_t Y = static_cast<uint32_t>(R.nextBelow(Universe));
        Other.set(Y);
        OtherOracle.insert(Y);
      }
      size_t OldSize = Oracle.size();
      Oracle.insert(OtherOracle.begin(), OtherOracle.end());
      EXPECT_EQ(V.unionWith(Other), Oracle.size() != OldSize);
      break;
    }
    case 5:
      EXPECT_EQ(V.count(), Oracle.size());
      break;
    }
  }
  EXPECT_EQ(toVector(V),
            std::vector<uint32_t>(Oracle.begin(), Oracle.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitVectorProperty,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// Property: bulk operations agree with element-wise set algebra.
class SparseBitVectorAlgebra : public testing::TestWithParam<uint64_t> {};

TEST_P(SparseBitVectorAlgebra, BulkOpsMatchSetAlgebra) {
  Rng R(GetParam() * 977);
  auto randomSet = [&](std::set<uint32_t> &S, SparseBitVector &V) {
    int N = 1 + static_cast<int>(R.nextBelow(60));
    for (int I = 0; I != N; ++I) {
      uint32_t X = static_cast<uint32_t>(R.nextBelow(500));
      S.insert(X);
      V.set(X);
    }
  };
  std::set<uint32_t> SA, SB;
  SparseBitVector A, B;
  randomSet(SA, A);
  randomSet(SB, B);

  // Union.
  {
    SparseBitVector U = A;
    U.unionWith(B);
    std::set<uint32_t> SU = SA;
    SU.insert(SB.begin(), SB.end());
    EXPECT_EQ(toVector(U), std::vector<uint32_t>(SU.begin(), SU.end()));
  }
  // Intersection.
  {
    SparseBitVector I = A;
    I.intersectWith(B);
    std::vector<uint32_t> SI;
    for (uint32_t X : SA)
      if (SB.count(X))
        SI.push_back(X);
    EXPECT_EQ(toVector(I), SI);
  }
  // Difference.
  {
    SparseBitVector D = A;
    D.subtract(B);
    std::vector<uint32_t> SD;
    for (uint32_t X : SA)
      if (!SB.count(X))
        SD.push_back(X);
    EXPECT_EQ(toVector(D), SD);
  }
  // unionWithMinus == union of (B - A-as-exclusion).
  {
    SparseBitVector M = A;
    M.unionWithMinus(B, A);
    SparseBitVector U = A;
    U.unionWith(B);
    EXPECT_TRUE(M == U) << "excluding existing bits can't change result";
  }
  // intersects/contains consistency.
  {
    SparseBitVector I = A;
    I.intersectWith(B);
    EXPECT_EQ(A.intersects(B), !I.empty());
    SparseBitVector U = A;
    bool Grew = U.unionWith(B);
    EXPECT_EQ(A.contains(B), !Grew) << "B ⊆ A iff A ∪ B == A";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBitVectorAlgebra,
                         testing::Range<uint64_t>(1, 17));

} // namespace
