//===- SolverBasicTest.cpp - Hand-built cases for every solver ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hand-constructed constraint systems with known exact solutions,
/// run through every (solver, representation) combination — including the
/// paper's own running example from Figures 3 and 4.
///
//===----------------------------------------------------------------------===//

#include "solvers/Solve.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace ag;

namespace {

struct Config {
  SolverKind Kind;
  PtsRepr Repr;
};

std::string configName(const testing::TestParamInfo<Config> &Info) {
  std::string Name = solverKindName(Info.param.Kind);
  for (char &C : Name)
    if (C == '+')
      C = '_';
  Name += Info.param.Repr == PtsRepr::Bitmap ? "_bitmap" : "_bdd";
  return Name;
}

std::vector<Config> allConfigs() {
  std::vector<Config> Out;
  Out.push_back({SolverKind::Naive, PtsRepr::Bitmap});
  for (SolverKind K : AllSolverKinds) {
    Out.push_back({K, PtsRepr::Bitmap});
    // BLQ is always BDD-relational; only add the per-variable-BDD variant
    // for the other solvers.
    if (K != SolverKind::BLQ && K != SolverKind::BLQHCD)
      Out.push_back({K, PtsRepr::Bdd});
  }
  return Out;
}

class EverySolver : public testing::TestWithParam<Config> {
protected:
  PointsToSolution run(const ConstraintSystem &CS) {
    return solve(CS, GetParam().Kind, GetParam().Repr, &Stats);
  }
  SolverStats Stats;
};

TEST_P(EverySolver, AddressOfOnly) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o");
  CS.addAddressOf(P, O);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(P), (std::vector<NodeId>{O}));
  EXPECT_TRUE(S.pointsTo(O).empty());
}

TEST_P(EverySolver, CopyChainPropagates) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         D = CS.addNode("d"), O = CS.addNode("o");
  CS.addAddressOf(A, O);
  CS.addCopy(B, A);
  CS.addCopy(C, B);
  CS.addCopy(D, C);
  PointsToSolution S = run(CS);
  for (NodeId V : {A, B, C, D})
    EXPECT_EQ(S.pointsToVector(V), (std::vector<NodeId>{O})) << V;
}

TEST_P(EverySolver, LoadResolves) {
  // b = &o; p = &b; a = *p  =>  a = b's pts = {o}.
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), P = CS.addNode("p"),
         O = CS.addNode("o");
  CS.addAddressOf(B, O);
  CS.addAddressOf(P, B);
  CS.addLoad(A, P);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(A), (std::vector<NodeId>{O}));
  EXPECT_EQ(S.pointsToVector(P), (std::vector<NodeId>{B}));
}

TEST_P(EverySolver, StoreResolves) {
  // p = &b; o = &x; *p = o  =>  b gets pts(o) = {x}.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), B = CS.addNode("b"), O = CS.addNode("o"),
         X = CS.addNode("x");
  CS.addAddressOf(P, B);
  CS.addAddressOf(O, X);
  CS.addStore(P, O);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(B), (std::vector<NodeId>{X}));
}

TEST_P(EverySolver, PaperFigure3Example) {
  // The paper's HCD running example:
  //   a = &c; d = c; b = *a; *a = b;
  // Offline: {*a, b} form an SCC; online c and b end up in a cycle.
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         D = CS.addNode("d");
  CS.addAddressOf(A, C);
  CS.addCopy(D, C);
  CS.addLoad(B, A);
  CS.addStore(A, B);
  // Give c something to point at so the cycle carries information.
  NodeId X = CS.addNode("x");
  CS.addAddressOf(C, X);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(A), (std::vector<NodeId>{C}));
  // b = *a reads pts(c) = {x}; *a = b writes pts(b) into c.
  EXPECT_EQ(S.pointsToVector(B), (std::vector<NodeId>{X}));
  EXPECT_EQ(S.pointsToVector(C), (std::vector<NodeId>{X}));
  EXPECT_EQ(S.pointsToVector(D), (std::vector<NodeId>{X}));
  // b and c are in one online cycle: identical points-to sets.
  EXPECT_TRUE(S.pointsTo(B) == S.pointsTo(C));
}

TEST_P(EverySolver, CopyCycleCollapses) {
  // a -> b -> c -> a plus one address-of: all three end identical.
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), B = CS.addNode("b"), C = CS.addNode("c"),
         O = CS.addNode("o"), O2 = CS.addNode("o2");
  CS.addCopy(B, A);
  CS.addCopy(C, B);
  CS.addCopy(A, C);
  CS.addAddressOf(A, O);
  CS.addAddressOf(B, O2);
  PointsToSolution S = run(CS);
  std::vector<NodeId> Expected = {O, O2};
  EXPECT_EQ(S.pointsToVector(A), Expected);
  EXPECT_EQ(S.pointsToVector(B), Expected);
  EXPECT_EQ(S.pointsToVector(C), Expected);
}

TEST_P(EverySolver, OnlineCycleThroughDeref) {
  // Cycle created only by complex-constraint resolution:
  //   p = &a; *p = b; b = *p;  => a and b in a cycle.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), A = CS.addNode("a"), B = CS.addNode("b"),
         O = CS.addNode("o");
  CS.addAddressOf(P, A);
  CS.addStore(P, B);
  CS.addLoad(B, P);
  CS.addAddressOf(B, O);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(A), (std::vector<NodeId>{O}));
  EXPECT_EQ(S.pointsToVector(B), (std::vector<NodeId>{O}));
}

TEST_P(EverySolver, IndirectCallThroughFunctionPointer) {
  // int f(int *x) { return x; }   (identity through param/ret)
  // fp = &f; *(fp+2) = arg; r = *(fp+1);
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId Fp = CS.addNode("fp"), Arg = CS.addNode("arg"),
         R = CS.addNode("r"), O = CS.addNode("o");
  // Body: return the parameter.
  CS.addCopy(F + ConstraintSystem::FunctionReturnOffset,
             F + ConstraintSystem::FunctionParamOffset);
  CS.addAddressOf(Fp, F);
  CS.addAddressOf(Arg, O);
  CS.addStore(Fp, Arg, ConstraintSystem::FunctionParamOffset);
  CS.addLoad(R, Fp, ConstraintSystem::FunctionReturnOffset);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(R), (std::vector<NodeId>{O}))
      << "argument must flow through the indirect call to the result";
}

TEST_P(EverySolver, IndirectCallSkipsInvalidOffsets) {
  // Two targets in pts(fp): a 1-param function and a plain object. The
  // dereference at param offset must skip the plain object.
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId Plain = CS.addNode("plain");
  NodeId Fp = CS.addNode("fp"), Arg = CS.addNode("arg"),
         O = CS.addNode("o");
  CS.addAddressOf(Fp, F);
  CS.addAddressOf(Fp, Plain);
  CS.addAddressOf(Arg, O);
  CS.addStore(Fp, Arg, ConstraintSystem::FunctionParamOffset);
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(F + ConstraintSystem::FunctionParamOffset),
            (std::vector<NodeId>{O}));
  EXPECT_TRUE(S.pointsTo(Plain).empty())
      << "invalid offset dereference must not corrupt plain objects";
}

TEST_P(EverySolver, MultiLevelPointers) {
  // ***ppp chain.
  ConstraintSystem CS;
  NodeId Ppp = CS.addNode("ppp"), Pp = CS.addNode("pp"),
         P = CS.addNode("p"), O = CS.addNode("o");
  NodeId T1 = CS.addNode("t1"), T2 = CS.addNode("t2");
  CS.addAddressOf(Ppp, Pp);
  CS.addAddressOf(Pp, P);
  CS.addAddressOf(P, O);
  CS.addLoad(T1, Ppp);  // t1 = *ppp = pp's pts = {p}
  CS.addLoad(T2, T1);   // t2 = *t1 = p's pts = {o}
  PointsToSolution S = run(CS);
  EXPECT_EQ(S.pointsToVector(T1), (std::vector<NodeId>{P}));
  EXPECT_EQ(S.pointsToVector(T2), (std::vector<NodeId>{O}));
}

TEST_P(EverySolver, EmptySystem) {
  ConstraintSystem CS;
  CS.addNode("lonely");
  PointsToSolution S = run(CS);
  EXPECT_TRUE(S.pointsTo(0).empty());
}

TEST_P(EverySolver, SelfLoopStore) {
  // p = &p-style self-reference: p points to an object that is p itself
  // (legal in the node model: objects and variables share the space).
  ConstraintSystem CS;
  NodeId P = CS.addNode("p");
  NodeId O = CS.addNode("o");
  CS.addAddressOf(P, P);
  CS.addAddressOf(O, O);
  CS.addStore(P, P); // *p = p: pts(p) |= pts(p) via member p.
  CS.addLoad(O, P);  // o = *p.
  PointsToSolution S = run(CS);
  EXPECT_TRUE(S.pointsToObj(P, P));
  EXPECT_TRUE(S.pointsToObj(O, P));
  EXPECT_TRUE(S.pointsToObj(O, O));
}

TEST_P(EverySolver, MayAliasQueries) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), Q = CS.addNode("q"), R = CS.addNode("r"),
         O1 = CS.addNode("o1"), O2 = CS.addNode("o2");
  CS.addAddressOf(P, O1);
  CS.addAddressOf(Q, O1);
  CS.addAddressOf(Q, O2);
  CS.addAddressOf(R, O2);
  PointsToSolution S = run(CS);
  EXPECT_TRUE(S.mayAlias(P, Q));
  EXPECT_TRUE(S.mayAlias(Q, R));
  EXPECT_FALSE(S.mayAlias(P, R));
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, EverySolver,
                         testing::ValuesIn(allConfigs()), configName);

} // namespace
