//===- ObsTest.cpp - Observability layer tests ----------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's contracts: trace spans are well-nested per
/// track and render as valid Chrome trace_event JSON; trace event counts
/// agree with the metrics registry's counters on the same run; metrics
/// JSON is bit-identical across repeated single-threaded runs of every
/// solver kind and stable on the scheduling-invariant counter subset at
/// four threads; disabled channels record nothing; the flight ring wraps;
/// the governor-trip hook counts, marks and records.
///
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/MetricsRegistry.h"
#include "obs/Obs.h"
#include "obs/TraceRecorder.h"

#include "adt/MemTracker.h"
#include "adt/Status.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "serve/QueryEngine.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <map>
#include <string>
#include <vector>

using namespace ag;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON validator
//===----------------------------------------------------------------------===//

/// Recursive-descent acceptor for the JSON grammar — no values built, just
/// "does the whole string parse". Enough to catch unbalanced braces, bad
/// escapes, trailing commas and truncation in the rendered documents.
class JsonCursor {
public:
  explicit JsonCursor(const std::string &S)
      : P(S.data()), End(S.data() + S.size()) {}

  bool acceptDocument() {
    skipWs();
    if (!acceptValue())
      return false;
    skipWs();
    return P == End;
  }

private:
  void skipWs() {
    while (P != End &&
           (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool acceptLiteral(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (size_t(End - P) < N || std::strncmp(P, Lit, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool acceptString() {
    if (P == End || *P != '"')
      return false;
    ++P;
    while (P != End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == End)
          return false;
      }
      ++P;
    }
    if (P == End)
      return false;
    ++P; // Closing quote.
    return true;
  }
  bool acceptNumber() {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    while (P != End && ((*P >= '0' && *P <= '9') || *P == '.' ||
                        *P == 'e' || *P == 'E' || *P == '+' || *P == '-'))
      ++P;
    return P != Start;
  }
  bool acceptValue() {
    skipWs();
    if (P == End)
      return false;
    switch (*P) {
    case '{':
      return acceptCompound('}', /*Keyed=*/true);
    case '[':
      return acceptCompound(']', /*Keyed=*/false);
    case '"':
      return acceptString();
    case 't':
      return acceptLiteral("true");
    case 'f':
      return acceptLiteral("false");
    case 'n':
      return acceptLiteral("null");
    default:
      return acceptNumber();
    }
  }
  bool acceptCompound(char Close, bool Keyed) {
    ++P; // Opening bracket.
    skipWs();
    if (P != End && *P == Close) {
      ++P;
      return true;
    }
    while (true) {
      if (Keyed) {
        skipWs();
        if (!acceptString())
          return false;
        skipWs();
        if (P == End || *P != ':')
          return false;
        ++P;
      }
      if (!acceptValue())
        return false;
      skipWs();
      if (P == End)
        return false;
      if (*P == Close) {
        ++P;
        return true;
      }
      if (*P != ',')
        return false;
      ++P;
    }
  }

  const char *P;
  const char *End;
};

bool isValidJson(const std::string &S) {
  return JsonCursor(S).acceptDocument();
}

//===----------------------------------------------------------------------===//
// Fixture and workload
//===----------------------------------------------------------------------===//

/// Saves the process-wide channel bits, silences every channel, and clears
/// the global stores around each test so tests compose in one binary.
class ObsTest : public testing::Test {
protected:
  void SetUp() override {
    Saved = obs::ChannelBits.load(std::memory_order_relaxed);
    obs::ChannelBits.store(0, std::memory_order_relaxed);
    obs::TraceRecorder::instance().clear();
    obs::MetricsRegistry::instance().reset();
    obs::FlightRecorder::instance().clear();
  }
  void TearDown() override {
    obs::TraceRecorder::instance().clear();
    obs::MetricsRegistry::instance().reset();
    obs::FlightRecorder::instance().clear();
    obs::ChannelBits.store(Saved, std::memory_order_relaxed);
  }

  uint32_t Saved = 0;
};

/// The deterministic test workload: the smallest paper suite at scale
/// 0.05, OVS-reduced exactly as the bench harness solves it.
struct ObsWorkload {
  ConstraintSystem Reduced;
  std::vector<NodeId> Rep;
};

const ObsWorkload &workload() {
  static const ObsWorkload W = [] {
    ObsWorkload Out;
    ConstraintSystem Raw = generateBenchmark(paperSuites(0.05).front());
    OvsResult Ovs = runOfflineVariableSubstitution(Raw);
    Out.Reduced = std::move(Ovs.Reduced);
    Out.Rep = std::move(Ovs.Rep);
    return Out;
  }();
  return W;
}

/// Per-track span nesting check over a recorded event snapshot: every 'E'
/// must match the innermost open 'B' on its track, and every track must
/// end with an empty stack.
void expectWellNested(const std::vector<obs::TraceEvent> &Events) {
  std::map<uint32_t, std::vector<const obs::TraceEvent *>> Stacks;
  for (const obs::TraceEvent &E : Events) {
    if (E.Phase == 'B') {
      Stacks[E.Tid].push_back(&E);
    } else if (E.Phase == 'E') {
      auto &Stack = Stacks[E.Tid];
      ASSERT_FALSE(Stack.empty())
          << "E \"" << E.Name << "\" with no open span on track " << E.Tid;
      EXPECT_STREQ(Stack.back()->Name, E.Name)
          << "mismatched span close on track " << E.Tid;
      Stack.pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty())
        << Stack.size() << " unclosed span(s) on track " << Tid;
}

size_t countBegins(const std::vector<obs::TraceEvent> &Events,
                   const char *Name) {
  size_t N = 0;
  for (const obs::TraceEvent &E : Events)
    if (E.Phase == 'B' && std::strcmp(E.Name, Name) == 0)
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, SpansWellNestedAndJsonValidSequential) {
  obs::setTraceEnabled(true);
  const ObsWorkload &W = workload();
  for (SolverKind Kind : AllSolverKinds)
    (void)solve(W.Reduced, Kind, PtsRepr::Bitmap, nullptr, SolverOptions(),
                &W.Rep);

  auto Events = obs::TraceRecorder::instance().events();
  ASSERT_FALSE(Events.empty());
  expectWellNested(Events);
  // One solve span per kind.
  size_t SolveSpans = 0;
  for (SolverKind Kind : AllSolverKinds)
    SolveSpans += countBegins(Events, solverKindName(Kind));
  EXPECT_EQ(SolveSpans, std::size(AllSolverKinds));

  std::string Json = obs::TraceRecorder::instance().renderJson();
  EXPECT_TRUE(isValidJson(Json)) << Json.substr(0, 400);
  EXPECT_NE(Json.find("\"ag.trace.v1\""), std::string::npos);
}

TEST_F(ObsTest, SpansWellNestedAcrossWorkerTracks) {
  obs::setTraceEnabled(true);
  const ObsWorkload &W = workload();
  SolverOptions Opts;
  Opts.Threads = 4;
  (void)solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr, Opts,
              &W.Rep);

  auto Events = obs::TraceRecorder::instance().events();
  expectWellNested(Events);
  // Worker rounds landed on more than one track.
  std::map<uint32_t, size_t> WorkerTracks;
  for (const obs::TraceEvent &E : Events)
    if (E.Phase == 'B' && std::strcmp(E.Name, "worker_round") == 0)
      ++WorkerTracks[E.Tid];
  EXPECT_GT(WorkerTracks.size(), 1u);
  EXPECT_TRUE(isValidJson(obs::TraceRecorder::instance().renderJson()));
}

TEST_F(ObsTest, TraceEventCountsMatchRegistryCounters) {
  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  const ObsWorkload &W = workload();

  // Sequential LCD: every cycle-detection attempt opens one tarjan span.
  (void)solve(W.Reduced, SolverKind::LCD, PtsRepr::Bitmap, nullptr,
              SolverOptions(), &W.Rep);
  auto Events = obs::TraceRecorder::instance().events();
  EXPECT_EQ(countBegins(Events, "tarjan"),
            Reg.counterValue(obs::Counter::SolverCycleDetectAttempts));
  EXPECT_EQ(Reg.counterValue(obs::Counter::SolverRuns), 1u);

  // Parallel LCD+HCD: one round span per counted wavefront round.
  obs::TraceRecorder::instance().clear();
  Reg.reset();
  SolverOptions Opts;
  Opts.Threads = 4;
  (void)solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr, Opts,
              &W.Rep);
  Events = obs::TraceRecorder::instance().events();
  EXPECT_EQ(countBegins(Events, "round"),
            Reg.counterValue(obs::Counter::SolverParallelRounds));
  EXPECT_EQ(countBegins(Events, "collapse_epoch"),
            Reg.counterValue(obs::Counter::SolverParallelEpochs));
}

TEST_F(ObsTest, QuerySpansMatchServeCounter) {
  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  const ObsWorkload &W = workload();

  Snapshot Snap;
  Snap.Solution = solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                        nullptr, SolverOptions(), &W.Rep);
  Snap.CS = W.Reduced;
  Snap.SeedReps = W.Rep;
  QueryEngine Engine(std::move(Snap));

  obs::TraceRecorder::instance().clear();
  Reg.reset();
  const uint32_t N = W.Reduced.numNodes();
  for (NodeId V = 0; V != 20 && V != N; ++V) {
    (void)Engine.pointsTo(V);
    (void)Engine.alias(V, (V + 1) % N);
    QueryEngine::IdList PB;
    (void)Engine.pointedBy(V, PB);
  }

  size_t QuerySpans = 0;
  for (const obs::TraceEvent &E : obs::TraceRecorder::instance().events())
    if (E.Phase == 'B' && std::strncmp(E.Name, "query.", 6) == 0)
      ++QuerySpans;
  EXPECT_EQ(QuerySpans, Reg.counterValue(obs::Counter::ServeQueries));
  EXPECT_EQ(Reg.counterValue(obs::Counter::ServeLruHits) +
                Reg.counterValue(obs::Counter::ServeLruMisses),
            Reg.counterValue(obs::Counter::ServeQueries));
}

//===----------------------------------------------------------------------===//
// Metrics determinism
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, MetricsJsonBitIdenticalSingleThreaded) {
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  const ObsWorkload &W = workload();

  for (SolverKind Kind : AllSolverKinds) {
    auto Capture = [&] {
      Reg.reset();
      MemTracker::instance().resetPeaks();
      { (void)solve(W.Reduced, Kind, PtsRepr::Bitmap, nullptr,
                    SolverOptions(), &W.Rep); }
      return Reg.renderJson();
    };
    std::string First = Capture();
    std::string Second = Capture();
    EXPECT_EQ(First, Second)
        << solverKindName(Kind) << " metrics not run-to-run identical";
    EXPECT_TRUE(isValidJson(First)) << solverKindName(Kind);
    EXPECT_NE(First.find("\"ag.metrics.v5\""), std::string::npos);
    // Compact rendering is the same document minus whitespace.
    std::string Compact = Reg.renderJson(/*Compact=*/true);
    EXPECT_TRUE(isValidJson(Compact));
  }
}

TEST_F(ObsTest, SchedulingInvariantCountersStableAtFourThreads) {
  obs::setMetricsEnabled(true);
  auto &Reg = obs::MetricsRegistry::instance();
  const ObsWorkload &W = workload();
  SolverOptions Opts;
  Opts.Threads = 4;

  auto Capture = [&] {
    Reg.reset();
    (void)solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
                Opts, &W.Rep);
    std::vector<uint64_t> Out;
    for (unsigned I = 0; I != unsigned(obs::Counter::NumCounters); ++I)
      Out.push_back(Reg.counterValue(static_cast<obs::Counter>(I)));
    return Out;
  };
  std::vector<uint64_t> First = Capture();
  std::vector<uint64_t> Second = Capture();
  for (unsigned I = 0; I != unsigned(obs::Counter::NumCounters); ++I) {
    auto C = static_cast<obs::Counter>(I);
    if (obs::counterIsSchedulingInvariant(C)) {
      EXPECT_EQ(First[I], Second[I])
          << obs::counterName(C) << " drifted across identical 4-thread runs";
    }
  }
}

//===----------------------------------------------------------------------===//
// Disabled-path contract, flight ring, governor hook
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, DisabledChannelsRecordNothing) {
  // Fixture left every channel off.
  const ObsWorkload &W = workload();
  uint64_t FlightBefore = obs::FlightRecorder::instance().totalRecorded();
  (void)solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr,
              SolverOptions(), &W.Rep);
  SolverOptions Opts;
  Opts.Threads = 2;
  (void)solve(W.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, nullptr, Opts,
              &W.Rep);

  EXPECT_EQ(obs::TraceRecorder::instance().eventCount(), 0u);
  EXPECT_EQ(obs::FlightRecorder::instance().totalRecorded(), FlightBefore);
  auto &Reg = obs::MetricsRegistry::instance();
  for (unsigned I = 0; I != unsigned(obs::Counter::NumCounters); ++I)
    EXPECT_EQ(Reg.counterValue(static_cast<obs::Counter>(I)), 0u)
        << obs::counterName(static_cast<obs::Counter>(I));
  for (unsigned I = 0; I != unsigned(obs::Hist::NumHists); ++I)
    EXPECT_EQ(Reg.histCount(static_cast<obs::Hist>(I)), 0u);
}

TEST_F(ObsTest, FlightRingWrapsAndDumps) {
  obs::setFlightEnabled(true);
  auto &FR = obs::FlightRecorder::instance();
  for (uint64_t I = 0; I != 2 * obs::FlightRecorder::Capacity; ++I)
    obs::flight("wrap_test", I);
  EXPECT_EQ(FR.totalRecorded(), 2 * obs::FlightRecorder::Capacity);
  std::string Dump = FR.dumpText();
  EXPECT_NE(Dump.find("wrap_test"), std::string::npos);
  // Oldest surviving event is Capacity entries back.
  EXPECT_EQ(Dump.find("a=0 "), std::string::npos);
  EXPECT_NE(Dump.find("a=" + std::to_string(obs::FlightRecorder::Capacity)),
            std::string::npos);
}

TEST_F(ObsTest, GovernorTripHookCountsAndMarks) {
  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  obs::setFlightEnabled(true);
  uint64_t Before = obs::FlightRecorder::instance().totalRecorded();
  obs::onGovernorTrip(Status::stepLimit("test trip"));

  auto &Reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(Reg.counterValue(obs::Counter::GovernorTrips), 1u);
  EXPECT_GT(obs::FlightRecorder::instance().totalRecorded(), Before);
  bool SawInstant = false;
  for (const obs::TraceEvent &E : obs::TraceRecorder::instance().events())
    if (E.Phase == 'i' && std::strcmp(E.Name, "governor_trip") == 0)
      SawInstant = true;
  EXPECT_TRUE(SawInstant);
}

} // namespace
