//===- IntegrationTest.cpp - Whole-pipeline end-to-end tests --------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end runs of the full pipeline — mini-C source, constraint
/// generation, serialization round trip, OVS, HCD offline, every solver —
/// on a realistic multi-function program, checking both concrete facts and
/// cross-solver agreement.
///
//===----------------------------------------------------------------------===//

#include "constraints/OfflineVariableSubstitution.h"
#include "frontend/ConstraintGen.h"
#include "solvers/Solve.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

const char *EventLoopProgram = R"(
// An event-loop program: registry of handlers, queue of events carrying
// payloads, a dispatcher that calls through function pointers.
struct event { struct event *next; int *payload; int kind; };
struct handler { int *state; };

struct event *queue_head;
struct handler read_handler;
struct handler write_handler;
int read_state;
int write_state;
int shared_buffer;

int *handlers[8];

int *on_read(int *payload) {
  read_handler.state = payload;
  return payload;
}

int *on_write(int *payload) {
  write_handler.state = &shared_buffer;
  return &write_state;
}

void register_handlers() {
  handlers[0] = on_read;
  handlers[1] = on_write;
  read_handler.state = &read_state;
}

void enqueue(int *payload, int kind) {
  struct event *e;
  e = malloc(24);
  e->payload = payload;
  e->kind = kind;
  e->next = queue_head;
  queue_head = e;
}

int *dispatch_one() {
  struct event *e;
  int *h;
  int *result;
  e = queue_head;
  if (!e)
    return NULL;
  queue_head = e->next;
  h = handlers[e->kind];
  result = h(e->payload);
  return result;
}

void main_loop() {
  int *r;
  enqueue(&shared_buffer, 0);
  enqueue(&write_state, 1);
  while (queue_head) {
    r = dispatch_one();
  }
}
)";

class Pipeline : public testing::Test {
protected:
  static void SetUpTestSuite() {
    Gen = new GeneratedConstraints();
    std::string Error;
    ASSERT_TRUE(
        generateConstraintsFromSource(EventLoopProgram, *Gen, Error))
        << Error;
    Oracle = new PointsToSolution(solve(Gen->CS, SolverKind::Naive));
  }
  static void TearDownTestSuite() {
    delete Gen;
    delete Oracle;
    Gen = nullptr;
    Oracle = nullptr;
  }

  static GeneratedConstraints *Gen;
  static PointsToSolution *Oracle;
};

GeneratedConstraints *Pipeline::Gen = nullptr;
PointsToSolution *Pipeline::Oracle = nullptr;

TEST_F(Pipeline, ProgramFactsHold) {
  const PointsToSolution &S = *Oracle;
  NodeId Queue = Gen->Variables.at("queue_head");
  ASSERT_EQ(Gen->HeapObjects.size(), 1u);
  NodeId Event = Gen->HeapObjects.begin()->second;
  EXPECT_TRUE(S.pointsToObj(Queue, Event)) << "queue holds heap events";

  // The handler table resolves to both handlers.
  NodeId Handlers = Gen->Variables.at("handlers");
  EXPECT_TRUE(S.pointsToObj(Handlers, Gen->Functions.at("on_read")));
  EXPECT_TRUE(S.pointsToObj(Handlers, Gen->Functions.at("on_write")));

  // The dispatch result can be any payload or handler return.
  NodeId R = Gen->Variables.at("main_loop::r");
  EXPECT_TRUE(S.pointsToObj(R, Gen->Variables.at("shared_buffer")));
  EXPECT_TRUE(S.pointsToObj(R, Gen->Variables.at("write_state")));

  // read_handler's state can be any enqueued payload (flow-insensitive).
  NodeId ReadHandler = Gen->Variables.at("read_handler");
  EXPECT_TRUE(S.pointsToObj(ReadHandler, Gen->Variables.at("read_state")));
  EXPECT_TRUE(
      S.pointsToObj(ReadHandler, Gen->Variables.at("shared_buffer")));
}

TEST_F(Pipeline, EverySolverAgreesOnTheProgram) {
  for (SolverKind K : AllSolverKinds) {
    EXPECT_TRUE(solve(Gen->CS, K, PtsRepr::Bitmap) == *Oracle)
        << solverKindName(K) << "/bitmap";
    if (K != SolverKind::BLQ && K != SolverKind::BLQHCD)
      EXPECT_TRUE(solve(Gen->CS, K, PtsRepr::Bdd) == *Oracle)
          << solverKindName(K) << "/bdd";
  }
}

TEST_F(Pipeline, SerializationPreservesTheSolution) {
  std::string Text = Gen->CS.serialize();
  ConstraintSystem Back;
  std::string Error;
  ASSERT_TRUE(ConstraintSystem::parse(Text, Back, Error)) << Error;
  EXPECT_TRUE(solve(Back, SolverKind::LCDHCD) == *Oracle);
}

TEST_F(Pipeline, OvsPlusHcdPipelineMatches) {
  OvsResult Ovs = runOfflineVariableSubstitution(Gen->CS);
  HcdResult Hcd = runHcdOffline(Ovs.Reduced);
  SolverStats Stats;
  PointsToSolution S =
      solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap, &Stats,
            SolverOptions(), &Ovs.Rep, &Hcd);
  EXPECT_TRUE(S == *Oracle);
}

TEST_F(Pipeline, SolutionIsSoundForDirectAssignments) {
  // Every `a = &b` in the constraint system must be reflected.
  for (const Constraint &C : Gen->CS.constraints())
    if (C.Kind == ConstraintKind::AddressOf)
      EXPECT_TRUE(Oracle->pointsToObj(C.Dst, C.Src));
  // Every copy a = b implies pts(a) ⊇ pts(b).
  for (const Constraint &C : Gen->CS.constraints())
    if (C.Kind == ConstraintKind::Copy)
      EXPECT_TRUE(Oracle->pointsTo(C.Dst).contains(Oracle->pointsTo(C.Src)))
          << "copy " << C.Dst << " <- " << C.Src;
}

TEST_F(Pipeline, SolutionIsClosedUnderComplexConstraints) {
  // Fixpoint check: loads/stores fully resolved (invariant of any sound
  // and complete solver).
  const ConstraintSystem &CS = Gen->CS;
  for (const Constraint &C : CS.constraints()) {
    if (C.Kind == ConstraintKind::Load) {
      for (NodeId V : Oracle->pointsToVector(C.Src)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T != InvalidNode)
          EXPECT_TRUE(Oracle->pointsTo(C.Dst).contains(Oracle->pointsTo(T)))
              << "unresolved load";
      }
    } else if (C.Kind == ConstraintKind::Store) {
      for (NodeId V : Oracle->pointsToVector(C.Dst)) {
        NodeId T = CS.offsetTarget(V, C.Offset);
        if (T != InvalidNode)
          EXPECT_TRUE(Oracle->pointsTo(T).contains(Oracle->pointsTo(C.Src)))
              << "unresolved store";
      }
    }
  }
}

} // namespace
