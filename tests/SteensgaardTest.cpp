//===- SteensgaardTest.cpp - Unification analysis tests -------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "solvers/SteensgaardSolver.h"

#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

TEST(Steensgaard, SimpleAddressOf) {
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), O = CS.addNode("o");
  CS.addAddressOf(P, O);
  PointsToSolution S = solveSteensgaard(CS);
  EXPECT_EQ(S.pointsToVector(P), (std::vector<NodeId>{O}));
}

TEST(Steensgaard, UnificationMergesBothDirections) {
  // The textbook imprecision: p = &x; q = &y; p = q;
  // Andersen: pts(p) = {x, y}, pts(q) = {y}.
  // Steensgaard: unifying pointees makes pts(q) = {x, y} too.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), Q = CS.addNode("q"), X = CS.addNode("x"),
         Y = CS.addNode("y");
  CS.addAddressOf(P, X);
  CS.addAddressOf(Q, Y);
  CS.addCopy(P, Q);
  PointsToSolution Steens = solveSteensgaard(CS);
  PointsToSolution Andersen = solve(CS, SolverKind::LCDHCD);

  EXPECT_EQ(Andersen.pointsToVector(Q), (std::vector<NodeId>{Y}));
  EXPECT_EQ(Steens.pointsToVector(Q), (std::vector<NodeId>{X, Y}))
      << "unification must have merged the pointee classes";
  EXPECT_TRUE(Steens.pointsTo(P).contains(Andersen.pointsTo(P)));
}

TEST(Steensgaard, LoadsAndStores) {
  // p = &b; o = &x; *p = o; a = *p.
  ConstraintSystem CS;
  NodeId P = CS.addNode("p"), B = CS.addNode("b"), O = CS.addNode("o"),
         X = CS.addNode("x"), A = CS.addNode("a");
  CS.addAddressOf(P, B);
  CS.addAddressOf(O, X);
  CS.addStore(P, O);
  CS.addLoad(A, P);
  PointsToSolution S = solveSteensgaard(CS);
  EXPECT_TRUE(S.pointsToObj(B, X));
  EXPECT_TRUE(S.pointsToObj(A, X));
}

TEST(Steensgaard, OffsetSlotsAreFolded) {
  // Unification can't track offsets, so function slots fold together —
  // coarse but sound: whatever Andersen derives must be included.
  ConstraintSystem CS;
  NodeId F = CS.addFunction("f", 1);
  NodeId Fp = CS.addNode("fp"), Arg = CS.addNode("arg"),
         R = CS.addNode("r"), O = CS.addNode("o");
  CS.addCopy(F + ConstraintSystem::FunctionReturnOffset,
             F + ConstraintSystem::FunctionParamOffset);
  CS.addAddressOf(Fp, F);
  CS.addAddressOf(Arg, O);
  CS.addStore(Fp, Arg, ConstraintSystem::FunctionParamOffset);
  CS.addLoad(R, Fp, ConstraintSystem::FunctionReturnOffset);
  PointsToSolution Steens = solveSteensgaard(CS);
  PointsToSolution Andersen = solve(CS, SolverKind::LCDHCD);
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    EXPECT_TRUE(Steens.pointsTo(V).contains(Andersen.pointsTo(V))) << V;
  EXPECT_TRUE(Steens.pointsToObj(R, O));
}

class SteensgaardProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SteensgaardProperty, IsASoundSupersetOfAndersen) {
  RandomSpec Spec;
  Spec.Seed = GetParam() * 23 + 1;
  Spec.NumLoads = 20;
  Spec.NumStores = 20;
  ConstraintSystem CS = generateRandom(Spec);
  SteensgaardStats Stats;
  PointsToSolution Steens = solveSteensgaard(CS, &Stats);
  PointsToSolution Andersen = solve(CS, SolverKind::Naive);
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    EXPECT_TRUE(Steens.pointsTo(V).contains(Andersen.pointsTo(V)))
        << "Steensgaard dropped facts for node " << V << " (seed "
        << GetParam() << ")";
  EXPECT_GT(Stats.Passes, 0u);
}

TEST_P(SteensgaardProperty, CoarserThanAndersenOnBenchmarks) {
  BenchmarkSpec Spec;
  Spec.Seed = GetParam();
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  ConstraintSystem CS = generateBenchmark(Spec);
  PointsToSolution Steens = solveSteensgaard(CS);
  PointsToSolution Andersen = solve(CS, SolverKind::LCDHCD);
  EXPECT_GE(Steens.totalPointsToSize(), Andersen.totalPointsToSize())
      << "unification can only lose precision";
  for (NodeId V = 0; V != CS.numNodes(); ++V)
    ASSERT_TRUE(Steens.pointsTo(V).contains(Andersen.pointsTo(V))) << V;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteensgaardProperty,
                         testing::Range<uint64_t>(1, 9));

} // namespace
