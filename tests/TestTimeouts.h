//===- TestTimeouts.h - Scaled test deadlines -------------------*- C++ -*-===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One knob for every wall-clock deadline a test takes: AG_TEST_TIMEOUT_SCALE
/// multiplies them all. Sanitizer CI legs (TSan runs 5-20x slower) export a
/// scale instead of each test hand-tuning its own sleeps; locally the
/// default scale of 1 keeps the suite fast. Deadlines guard against hangs —
/// a test must pass with arbitrary extra slowness, never depend on a sleep
/// being "long enough" on its own.
///
//===----------------------------------------------------------------------===//

#ifndef AG_TESTS_TESTTIMEOUTS_H
#define AG_TESTS_TESTTIMEOUTS_H

#include <chrono>
#include <cstdlib>

namespace ag {
namespace test {

/// The AG_TEST_TIMEOUT_SCALE multiplier (>= 1; silently clamped to
/// [1, 1000], default 1 when unset or unparsable).
inline unsigned timeoutScale() {
  static const unsigned Scale = [] {
    const char *Env = std::getenv("AG_TEST_TIMEOUT_SCALE");
    if (!Env)
      return 1u;
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End == Env || V < 1)
      return 1u;
    return V > 1000 ? 1000u : unsigned(V);
  }();
  return Scale;
}

/// \p Ms milliseconds scaled by AG_TEST_TIMEOUT_SCALE.
inline std::chrono::milliseconds scaledMs(unsigned Ms) {
  return std::chrono::milliseconds(uint64_t(Ms) * timeoutScale());
}

} // namespace test
} // namespace ag

#endif // AG_TESTS_TESTTIMEOUTS_H
