//===- FrontendTest.cpp - Mini-C frontend tests ---------------------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"

#include "solvers/Solve.h"

#include <gtest/gtest.h>

using namespace ag;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

std::vector<Token> lexOk(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Tokens;
  EXPECT_TRUE(L.lexAll(Tokens)) << L.error();
  return Tokens;
}

TEST(Lexer, BasicTokens) {
  std::vector<Token> T = lexOk("int *p = &x;");
  ASSERT_EQ(T.size(), 8u); // incl. Eof.
  EXPECT_TRUE(T[0].is(TokenKind::KwInt));
  EXPECT_TRUE(T[1].is(TokenKind::Star));
  EXPECT_TRUE(T[2].is(TokenKind::Identifier));
  EXPECT_EQ(T[2].Text, "p");
  EXPECT_TRUE(T[3].is(TokenKind::Assign));
  EXPECT_TRUE(T[4].is(TokenKind::Amp));
  EXPECT_TRUE(T[5].is(TokenKind::Identifier));
  EXPECT_TRUE(T[6].is(TokenKind::Semicolon));
  EXPECT_TRUE(T[7].is(TokenKind::Eof));
}

TEST(Lexer, CommentsAndPreprocessorLines) {
  std::vector<Token> T = lexOk(
      "#include <stdio.h>\n// line comment\n/* block\ncomment */int x;");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_TRUE(T[0].is(TokenKind::KwInt));
}

TEST(Lexer, MultiCharOperators) {
  std::vector<Token> T =
      lexOk("a -> b == c != d && e || f <= g >= h ++ --");
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : T)
    if (!Tok.is(TokenKind::Identifier))
      Kinds.push_back(Tok.Kind);
  EXPECT_EQ(Kinds,
            (std::vector<TokenKind>{
                TokenKind::Arrow, TokenKind::EqEq, TokenKind::NotEq,
                TokenKind::AmpAmp, TokenKind::PipePipe, TokenKind::LessEq,
                TokenKind::GreaterEq, TokenKind::PlusPlus,
                TokenKind::MinusMinus, TokenKind::Eof}));
}

TEST(Lexer, TracksLineNumbers) {
  std::vector<Token> T = lexOk("int\nx\n;\n");
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[1].Line, 2u);
  EXPECT_EQ(T[2].Line, 3u);
}

TEST(Lexer, RejectsUnterminatedLiterals) {
  Lexer L("char *s = \"oops");
  std::vector<Token> Tokens;
  EXPECT_FALSE(L.lexAll(Tokens));
  EXPECT_NE(L.error().find("unterminated"), std::string::npos);
}

TEST(Lexer, StringsAndChars) {
  std::vector<Token> T = lexOk("\"hello \\\" quoted\" 'c'");
  ASSERT_GE(T.size(), 2u);
  EXPECT_TRUE(T[0].is(TokenKind::String));
  EXPECT_TRUE(T[1].is(TokenKind::String));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TranslationUnit parseOk(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Tokens;
  EXPECT_TRUE(L.lexAll(Tokens)) << L.error();
  Parser P(std::move(Tokens));
  TranslationUnit TU;
  EXPECT_TRUE(P.parseUnit(TU)) << P.error();
  return TU;
}

std::string parseError(const std::string &Src) {
  Lexer L(Src);
  std::vector<Token> Tokens;
  if (!L.lexAll(Tokens))
    return L.error();
  Parser P(std::move(Tokens));
  TranslationUnit TU;
  EXPECT_FALSE(P.parseUnit(TU)) << "expected a parse failure";
  return P.error();
}

TEST(Parser, GlobalsAndPointerDepth) {
  TranslationUnit TU = parseOk("int x; int *p, **pp; char buf[16];");
  ASSERT_EQ(TU.Globals.size(), 4u);
  EXPECT_EQ(TU.Globals[0].PointerDepth, 0u);
  EXPECT_EQ(TU.Globals[1].PointerDepth, 1u);
  EXPECT_EQ(TU.Globals[2].PointerDepth, 2u);
  EXPECT_TRUE(TU.Globals[3].IsArray);
}

TEST(Parser, FunctionsAndParams) {
  TranslationUnit TU =
      parseOk("int *f(int *a, char **b) { return a; }\nvoid g(void);");
  ASSERT_EQ(TU.Functions.size(), 2u);
  EXPECT_EQ(TU.Functions[0].Name, "f");
  ASSERT_EQ(TU.Functions[0].Params.size(), 2u);
  EXPECT_EQ(TU.Functions[0].Params[1].PointerDepth, 2u);
  EXPECT_NE(TU.Functions[0].Body, nullptr);
  EXPECT_EQ(TU.Functions[1].Body, nullptr) << "prototype has no body";
  EXPECT_TRUE(TU.Functions[1].Params.empty());
}

TEST(Parser, StructDefinitionSkipsFields) {
  TranslationUnit TU = parseOk(
      "struct list { struct list *next; int v; };\nstruct list head;");
  ASSERT_EQ(TU.Globals.size(), 1u);
  EXPECT_EQ(TU.Globals[0].Name, "head");
}

TEST(Parser, ControlFlowStatements) {
  TranslationUnit TU = parseOk(
      "void f(int n) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i++) { if (i == 2) i = 3; else i = 4; }\n"
      "  while (n) n = n - 1;\n"
      "  return;\n"
      "}\n");
  ASSERT_EQ(TU.Functions.size(), 1u);
  const Stmt &Body = *TU.Functions[0].Body;
  ASSERT_EQ(Body.Stmts.size(), 4u);
  EXPECT_EQ(Body.Stmts[1]->Kind, StmtKind::For);
  EXPECT_EQ(Body.Stmts[2]->Kind, StmtKind::While);
  EXPECT_EQ(Body.Stmts[3]->Kind, StmtKind::Return);
}

TEST(Parser, ExpressionShapes) {
  TranslationUnit TU = parseOk(
      "void f(int **pp, int *p, int x) {\n"
      "  p = *pp;\n"
      "  *pp = p;\n"
      "  p = &x;\n"
      "  x = p ? x : *p;\n"
      "  p = (int *)pp;\n"
      "  x = p->v;\n"
      "  x = p[2];\n"
      "}\n");
  ASSERT_EQ(TU.Functions.size(), 1u);
  EXPECT_EQ(TU.Functions[0].Body->Stmts.size(), 7u);
}

TEST(Parser, CallsParseAsPostfix) {
  TranslationUnit TU = parseOk(
      "int g(int x);\n"
      "int h; // function pointers are plain vars in the subset\n"
      "void f() { g(1); h(2, 3); }\n");
  ASSERT_EQ(TU.Functions.size(), 2u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  std::string E = parseError("int x;\nint f( {\n");
  EXPECT_NE(E.find("line 2"), std::string::npos) << E;
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(parseError("int x = ;").empty());
  EXPECT_FALSE(parseError("void f() { return 1 }").empty());
  EXPECT_FALSE(parseError("void f() { x = ( ; }").empty());
}

//===----------------------------------------------------------------------===//
// Constraint generation
//===----------------------------------------------------------------------===//

GeneratedConstraints genOk(const std::string &Src) {
  GeneratedConstraints Out;
  std::string Error;
  EXPECT_TRUE(generateConstraintsFromSource(Src, Out, Error)) << Error;
  return Out;
}

PointsToSolution solveSource(const std::string &Src,
                             GeneratedConstraints &Gen) {
  Gen = genOk(Src);
  return solve(Gen.CS, SolverKind::LCDHCD);
}

TEST(ConstraintGen, AddressAndCopy) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int *p; int *q;\n"
      "void main() { p = &x; q = p; }\n",
      G);
  NodeId P = G.Variables.at("p"), Q = G.Variables.at("q"),
         X = G.Variables.at("x");
  EXPECT_TRUE(S.pointsToObj(P, X));
  EXPECT_TRUE(S.pointsToObj(Q, X));
}

TEST(ConstraintGen, LoadsAndStores) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int *p; int **pp; int *q;\n"
      "void main() { p = &x; pp = &p; q = *pp; *pp = q; }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("q"), G.Variables.at("x")));
  EXPECT_TRUE(
      S.pointsToObj(G.Variables.at("pp"), G.Variables.at("p")));
}

TEST(ConstraintGen, FieldInsensitivity) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "struct S { int *a; int *b; };\n"
      "struct S s; int x; int *out;\n"
      "void main() { s.a = &x; out = s.b; }\n",
      G);
  // Field-insensitive: s.a and s.b are both just s.
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("out"), G.Variables.at("x")));
}

TEST(ConstraintGen, ArrowIsDeref) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "struct S { int *f; };\n"
      "struct S s; struct S *ps; int x; int *out;\n"
      "void main() { ps = &s; ps->f = &x; out = ps->f; }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("out"), G.Variables.at("x")));
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("s"), G.Variables.at("x")))
      << "the store lands in s itself (field-insensitive)";
}

TEST(ConstraintGen, DirectCallsFlowThroughParams) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int *id(int *a) { return a; }\n"
      "int x; int *r;\n"
      "void main() { r = id(&x); }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("r"), G.Variables.at("x")));
}

TEST(ConstraintGen, IndirectCallsResolveMultipleTargets) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int y;\n"
      "int *fx(int *a) { return a; }\n"
      "int *fy(int *a) { return &y; }\n"
      "int *fp; int *r;\n"
      "void main(int pick) {\n"
      "  if (pick) fp = fx; else fp = fy;\n"
      "  r = fp(&x);\n"
      "}\n",
      G);
  NodeId R = G.Variables.at("r");
  EXPECT_TRUE(S.pointsToObj(R, G.Variables.at("x"))) << "via fx";
  EXPECT_TRUE(S.pointsToObj(R, G.Variables.at("y"))) << "via fy";
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("fp"), G.Functions.at("fx")));
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("fp"), G.Functions.at("fy")));
}

TEST(ConstraintGen, FunctionPointerViaVariable) {
  // The subset models function pointers as plain variables assigned a
  // function name; calls through them are indirect.
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x;\n"
      "int *get(int *a) { return a; }\n"
      "int *fp; int *r;\n"
      "void main() { fp = get; r = fp(&x); }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("fp"), G.Functions.at("get")));
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("r"), G.Variables.at("x")));
}

TEST(ConstraintGen, MallocMakesPerSiteHeapObjects) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int *a; int *b;\n"
      "void main() {\n"
      "  a = malloc(4);\n"
      "  b = malloc(4);\n"
      "}\n",
      G);
  NodeId A = G.Variables.at("a"), B = G.Variables.at("b");
  EXPECT_EQ(S.pointsTo(A).count(), 1u);
  EXPECT_EQ(S.pointsTo(B).count(), 1u);
  EXPECT_FALSE(S.mayAlias(A, B))
      << "distinct malloc sites are distinct objects";
  EXPECT_EQ(G.HeapObjects.size(), 2u);
}

TEST(ConstraintGen, MemcpySummaryTransfersPointees) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int *p; int *q; int **sp; int **dp;\n"
      "void main() { p = &x; sp = &p; dp = &q; memcpy(dp, sp, 8); }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("q"), G.Variables.at("x")))
      << "memcpy must move *src pointers into *dst";
}

TEST(ConstraintGen, UnknownExternIsConservative) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int *p; int *r;\n"
      "void main() { p = &x; r = mystery(p); }\n",
      G);
  // The blob summary must at least let the argument flow back out.
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("r"), G.Variables.at("x")));
}

TEST(ConstraintGen, ArraysDecayToAddresses) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int buf[8]; int *p;\n"
      "void main() { p = buf; }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("p"), G.Variables.at("buf")));
}

TEST(ConstraintGen, StringLiteralsAreObjects) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "char *s; char *t;\n"
      "void main() { s = \"alpha\"; t = \"beta\"; }\n",
      G);
  EXPECT_EQ(S.pointsTo(G.Variables.at("s")).count(), 1u);
  EXPECT_FALSE(S.mayAlias(G.Variables.at("s"), G.Variables.at("t")));
}

TEST(ConstraintGen, ScopingAndShadowing) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int g; int *p;\n"
      "void main() {\n"
      "  int x;\n"
      "  { int *p2; p2 = &x; p = p2; }\n"
      "  p = &g;\n"
      "}\n",
      G);
  NodeId P = G.Variables.at("p");
  EXPECT_TRUE(S.pointsToObj(P, G.Variables.at("g")));
  EXPECT_TRUE(S.pointsToObj(P, G.Variables.at("main::x")));
}

TEST(ConstraintGen, UndeclaredIdentifierIsAnError) {
  GeneratedConstraints Out;
  std::string Error;
  EXPECT_FALSE(generateConstraintsFromSource(
      "void main() { ghost = 1; }", Out, Error));
  EXPECT_NE(Error.find("undeclared"), std::string::npos) << Error;
}

TEST(ConstraintGen, UnassignableLhsIsAnError) {
  GeneratedConstraints Out;
  std::string Error;
  EXPECT_FALSE(generateConstraintsFromSource(
      "void f(int a, int b) { (a + b) = 3; }", Out, Error));
  EXPECT_NE(Error.find("not assignable"), std::string::npos) << Error;
}

TEST(ConstraintGen, TernaryMergesBothArms) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int x; int y; int *p;\n"
      "void main(int c) { p = c ? &x : &y; }\n",
      G);
  NodeId P = G.Variables.at("p");
  EXPECT_TRUE(S.pointsToObj(P, G.Variables.at("x")));
  EXPECT_TRUE(S.pointsToObj(P, G.Variables.at("y")));
}

TEST(ConstraintGen, PointerArithmeticPreservesTargets) {
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "int buf[8]; int *p; int *q;\n"
      "void main() { p = buf; q = p + 3; }\n",
      G);
  EXPECT_TRUE(S.pointsToObj(G.Variables.at("q"), G.Variables.at("buf")));
}

TEST(ConstraintGen, RecursiveListProgram) {
  // A linked-list builder: classic pointer-analysis smoke test.
  GeneratedConstraints G;
  PointsToSolution S = solveSource(
      "struct node { struct node *next; };\n"
      "struct node *head;\n"
      "void push() {\n"
      "  struct node *n;\n"
      "  n = malloc(8);\n"
      "  n->next = head;\n"
      "  head = n;\n"
      "}\n"
      "struct node *pop() {\n"
      "  struct node *n;\n"
      "  n = head;\n"
      "  head = n->next;\n"
      "  return n;\n"
      "}\n",
      G);
  NodeId Head = G.Variables.at("head");
  ASSERT_EQ(G.HeapObjects.size(), 1u);
  NodeId Heap = G.HeapObjects.begin()->second;
  EXPECT_TRUE(S.pointsToObj(Head, Heap));
  // The heap node's next field (the heap node itself, field-insensitively)
  // may point back to another list cell.
  EXPECT_TRUE(S.pointsToObj(Heap, Heap));
}

TEST(ConstraintGen, AllSolversAgreeOnRealProgram) {
  GeneratedConstraints G = genOk(
      "struct node { struct node *next; int *data; };\n"
      "struct node *head; int g1; int g2;\n"
      "int *pick(int *a, int *b) { return a ? a : b; }\n"
      "void build() {\n"
      "  struct node *n;\n"
      "  int i;\n"
      "  for (i = 0; i < 10; i++) {\n"
      "    n = malloc(16);\n"
      "    n->data = pick(&g1, &g2);\n"
      "    n->next = head;\n"
      "    head = n;\n"
      "  }\n"
      "}\n"
      "int *sum() {\n"
      "  struct node *n; int *acc;\n"
      "  acc = NULL;\n"
      "  for (n = head; n; n = n->next)\n"
      "    acc = n->data;\n"
      "  return acc;\n"
      "}\n");
  PointsToSolution Oracle = solve(G.CS, SolverKind::Naive);
  for (SolverKind K : AllSolverKinds)
    EXPECT_TRUE(solve(G.CS, K) == Oracle) << solverKindName(K);
}

} // namespace
