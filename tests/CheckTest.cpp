//===- CheckTest.cpp - Fixed-point checker and differential harness -------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SolutionChecker certification across the full solver matrix (every
/// kind, both set representations, sequential and parallel), detection of
/// seeded corruptions and budget-truncated partial solutions, the
/// fallback-superset contract, and the cross-solver differential harness
/// including automatic reproducer reduction.
///
//===----------------------------------------------------------------------===//

#include "check/Differential.h"
#include "check/SolutionChecker.h"

#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ag;

namespace {

ConstraintSystem checkBench() {
  BenchmarkSpec Spec;
  Spec.NumFunctions = 10;
  Spec.VarsPerFunction = 8;
  Spec.NumGlobals = 16;
  Spec.Seed = 11;
  return generateBenchmark(Spec);
}

TEST(SolutionChecker, CertifiesEverySolverKindAndRepr) {
  ConstraintSystem CS = checkBench();
  for (SolverKind Kind : AllSolverKinds) {
    for (unsigned Threads : {0u, 4u}) {
      PointsToSolution Sol = solveFnFor(Kind, PtsRepr::Bitmap, Threads)(CS);
      CheckReport R = checkSolution(CS, Sol);
      EXPECT_TRUE(R.ok()) << solverKindName(Kind) << " threads " << Threads
                          << ": " << R.summary(CS);
      EXPECT_EQ(R.ConstraintsChecked, CS.constraints().size());
    }
    PointsToSolution Sol = solveFnFor(Kind, PtsRepr::Bdd, 0)(CS);
    CheckReport R = checkSolution(CS, Sol);
    EXPECT_TRUE(R.ok()) << solverKindName(Kind) << " (BDD): "
                        << R.summary(CS);
  }
}

TEST(SolutionChecker, DetectsSeededCorruption) {
  ConstraintSystem CS = checkBench();
  PointsToSolution Sol = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);
  ASSERT_TRUE(checkSolution(CS, Sol).ok());

  // Empty the destination set of the first address-of constraint: the
  // checker must pin the exact rule, constraint, and missing witness.
  const std::vector<Constraint> &Cons = CS.constraints();
  size_t Idx = 0;
  while (Idx != Cons.size() && Cons[Idx].Kind != ConstraintKind::AddressOf)
    ++Idx;
  ASSERT_NE(Idx, Cons.size());
  Sol.mutableSet(Sol.repOf(Cons[Idx].Dst)) = SparseBitVector();

  CheckReport R = checkSolution(CS, Sol);
  ASSERT_FALSE(R.ok());
  bool FoundAddr = false;
  for (const CheckViolation &V : R.Violations)
    if (V.What == CheckViolation::Kind::AddressOf &&
        V.ConstraintIndex == Idx && V.Witness == Cons[Idx].Src)
      FoundAddr = true;
  EXPECT_TRUE(FoundAddr) << R.summary(CS);
  EXPECT_NE(R.summary(CS).find("FAILED"), std::string::npos);
  // toString names the rule and the missing object.
  EXPECT_NE(R.Violations.front().toString(CS).find("missing"),
            std::string::npos);
}

TEST(SolutionChecker, RejectsBudgetTruncatedPartialSolution) {
  ConstraintSystem CS = checkBench();
  SolveBudget Budget;
  Budget.MaxPropagations = 1;
  Budget.AllowFallback = false;
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  SolveResult R = solveGoverned(Ovs.Reduced, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr, SolverOptions(),
                                &Ovs.Rep);
  ASSERT_EQ(R.Outcome, SolveOutcome::Partial);
  EXPECT_FALSE(checkSolution(CS, R.Solution).ok())
      << "a solution truncated after one propagation must not certify";
}

TEST(SolutionChecker, FallbackCertifiesAndIsStrictSuperset) {
  // a = &o1; b = &o2; c = a; c = b: the precise answer keeps pts(a)={o1},
  // while unification merges a, b and c — a sound strict superset.
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), O1 = CS.addNode("o1"), B = CS.addNode("b");
  NodeId O2 = CS.addNode("o2"), Cv = CS.addNode("c");
  CS.addAddressOf(A, O1);
  CS.addAddressOf(B, O2);
  CS.addCopy(Cv, A);
  CS.addCopy(Cv, B);

  PointsToSolution Precise =
      solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap)(CS);
  PointsToSolution Fb = steensgaardFallback(CS);

  EXPECT_TRUE(checkSolution(CS, Precise).ok());
  EXPECT_TRUE(checkSolution(CS, Fb).ok())
      << "the fallback is a fixed point too (a coarser one)";
  EXPECT_TRUE(checkSuperset(Fb, Precise).ok());

  // Unification pollutes pts(a) with o2, so the reverse containment must
  // fail, with a as the deficient node.
  CheckReport Rev = checkSuperset(Precise, Fb);
  ASSERT_FALSE(Rev.ok());
  EXPECT_EQ(Rev.Violations.front().What, CheckViolation::Kind::Superset);
  EXPECT_TRUE(Precise.pointsToObj(A, O1));
  EXPECT_FALSE(Precise.pointsToObj(A, O2));
  EXPECT_TRUE(Fb.pointsToObj(A, O2));
}

TEST(Differential, AgreeingSolversReportNoMismatch) {
  ConstraintSystem CS = checkBench();
  DifferentialReport R = runDifferential(
      CS, solveFnFor(SolverKind::HT, PtsRepr::Bitmap),
      solveFnFor(SolverKind::PKHHCD, PtsRepr::Bitmap));
  EXPECT_FALSE(R.Diff.Mismatch) << R.Diff.toString();
  EXPECT_EQ(R.SolverRuns, 2u);
  EXPECT_TRUE(R.ReductionComplete);
}

TEST(Differential, ReducerShrinksSeededBugToMinimalReproducer) {
  RandomSpec Spec;
  Spec.Seed = 23;
  Spec.NumVars = 40;
  Spec.NumObjs = 12;
  Spec.NumAddressOf = 30;
  Spec.NumCopies = 50;
  Spec.NumLoads = 10;
  Spec.NumStores = 10;
  ConstraintSystem CS = generateRandom(Spec);

  // Seeded bug: solver B silently ignores one specific copy constraint —
  // the classic shape of a lost-propagation defect. Pick a copy whose
  // removal actually changes the solution; random systems contain dead
  // copies whose loss other paths mask.
  SolveFn Good = solveFnFor(SolverKind::LCDHCD, PtsRepr::Bitmap);
  const uint64_t GoodHash = Good(CS).hash();
  const std::vector<Constraint> &Cons = CS.constraints();
  size_t BugIdx = Cons.size();
  for (size_t I = 0; I != Cons.size() && BugIdx == Cons.size(); ++I) {
    if (Cons[I].Kind != ConstraintKind::Copy)
      continue;
    ConstraintSystem Pruned = CS.cloneNodeTable();
    for (size_t J = 0; J != Cons.size(); ++J)
      if (J != I)
        Pruned.add(Cons[J]);
    if (Good(Pruned).hash() != GoodHash)
      BugIdx = I;
  }
  ASSERT_NE(BugIdx, Cons.size()) << "no live copy constraint in workload";
  const Constraint Dropped = Cons[BugIdx];

  SolveFn Bad = [&, Good](const ConstraintSystem &Sys) {
    ConstraintSystem Pruned = Sys.cloneNodeTable();
    for (const Constraint &C : Sys.constraints())
      if (!(C.Kind == Dropped.Kind && C.Dst == Dropped.Dst &&
            C.Src == Dropped.Src && C.Offset == Dropped.Offset))
        Pruned.add(C);
    return Good(Pruned);
  };

  DifferentialReport R = runDifferential(CS, Good, Bad);
  ASSERT_TRUE(R.Diff.Mismatch)
      << "dropping a live copy constraint must change the solution";
  EXPECT_TRUE(R.ReductionComplete);
  EXPECT_TRUE(R.ReducedDiff.Mismatch)
      << "the reproducer must preserve the divergence";
  EXPECT_LT(R.Reduced.constraints().size(), CS.constraints().size())
      << "the reducer removed nothing";
  // The buggy constraint itself must survive reduction — without it the
  // two solvers agree.
  bool Survives = false;
  for (const Constraint &C : R.Reduced.constraints())
    if (C.Kind == Dropped.Kind && C.Dst == Dropped.Dst &&
        C.Src == Dropped.Src && C.Offset == Dropped.Offset)
      Survives = true;
  EXPECT_TRUE(Survives);
  // A reproducer this shape typically collapses to a handful of
  // constraints; assert a loose bound so regressions in the reducer show.
  EXPECT_LE(R.Reduced.constraints().size(), 12u)
      << "reduction quality regressed";
}

TEST(Differential, DiffReportsSymmetricDifference) {
  ConstraintSystem CS;
  NodeId A = CS.addNode("a"), O1 = CS.addNode("o1"), O2 = CS.addNode("o2");
  CS.addAddressOf(A, O1);
  (void)O2;
  PointsToSolution X = solveFnFor(SolverKind::HT, PtsRepr::Bitmap)(CS);
  PointsToSolution Y = X;
  Y.mutableSet(Y.repOf(A)).set(O2);
  DiffResult D = diffSolutions(X, Y);
  ASSERT_TRUE(D.Mismatch);
  EXPECT_EQ(D.Node, A);
  ASSERT_EQ(D.OnlyInB.size(), 1u);
  EXPECT_EQ(D.OnlyInB.front(), O2);
  EXPECT_NE(D.toString().find("only-B"), std::string::npos);
}

#ifdef AG_PTATOOL_PATH

int runPtatoolCheck(const std::string &Args) {
  std::string Cmd = std::string(AG_PTATOOL_PATH) + " " + Args;
  int Raw = std::system(Cmd.c_str());
  return WEXITSTATUS(Raw);
}

TEST(PtatoolCheck, CertifiesConsAndSnapshotInputs) {
  std::string Dir = ::testing::TempDir();
  std::string Cons = Dir + "check_e2e.cons";
  std::string Snap = Dir + "check_e2e.snap";
  ConstraintSystem CS = checkBench();
  ASSERT_TRUE(CS.writeToFile(Cons));

  EXPECT_EQ(runPtatoolCheck("check " + Cons + " > /dev/null"), 0);
  EXPECT_EQ(runPtatoolCheck("check " + Cons + " PKH > /dev/null"), 0);
  // The differential-CI shape: every kind, cross-compared, at 1 and 4
  // threads.
  EXPECT_EQ(runPtatoolCheck("check " + Cons + " --all > /dev/null"), 0);
  EXPECT_EQ(
      runPtatoolCheck("check " + Cons + " --all --threads 4 > /dev/null"),
      0);

  ASSERT_EQ(runPtatoolCheck("snapshot " + Cons + " " + Snap + " > /dev/null"),
            0);
  EXPECT_EQ(runPtatoolCheck("check " + Snap + " > /dev/null"), 0);

  EXPECT_EQ(runPtatoolCheck("check /nonexistent/nope.cons > /dev/null "
                            "2> /dev/null"),
            1);
}

#endif // AG_PTATOOL_PATH

} // namespace
