//===- SnapshotStoreTest.cpp - Crash-safe snapshot persistence ------------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safety of the generational snapshot store: a FaultInjector-driven
/// crash at every stage of the durable write sequence (torn payload,
/// skipped fsync, skipped rename) must never lose the previously durable
/// generation; recovery skips corrupt newest generations and cleans temp
/// litter; pruning retains exactly KeepGenerations; and a fuzz pass of
/// random truncations/bit-flips over the newest file always recovers the
/// older intact generation.
///
//===----------------------------------------------------------------------===//

#include "serve/SnapshotStore.h"

#include "adt/FaultInjector.h"
#include "adt/Rng.h"
#include "constraints/OfflineVariableSubstitution.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace ag;

namespace {

Snapshot makeSnapshot(uint64_t Seed) {
  RandomSpec Spec;
  Spec.Seed = Seed;
  Spec.NumVars = 48;
  Spec.NumObjs = 12;
  ConstraintSystem CS = generateRandom(Spec);
  OvsResult Ovs = runOfflineVariableSubstitution(CS);
  Snapshot Snap;
  Snap.Solution = solve(Ovs.Reduced, SolverKind::LCDHCD, PtsRepr::Bitmap,
                        nullptr, SolverOptions(), &Ovs.Rep);
  Snap.CS = std::move(Ovs.Reduced);
  Snap.SeedReps = std::move(Ovs.Rep);
  return Snap;
}

/// Unique store directory per test (tests in one binary run sequentially,
/// but ctest shards run concurrently in the same TempDir).
std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "snapstore_" + Tag;
  std::string Cleanup = "rm -rf " + Dir;
  (void)std::system(Cleanup.c_str());
  ::mkdir(Dir.c_str(), 0755);
  return Dir;
}

TEST(SnapshotStore, WriteRecoverRoundTripAndGenerationNumbers) {
  std::string Dir = freshDir("roundtrip");
  SnapshotStore Store(Dir);
  Snapshot First = makeSnapshot(1);
  Snapshot Second = makeSnapshot(2);

  uint64_t Gen = 0;
  ASSERT_TRUE(Store.write(First, &Gen).ok());
  EXPECT_EQ(Gen, 1u);
  ASSERT_TRUE(Store.write(Second, &Gen).ok());
  EXPECT_EQ(Gen, 2u);

  Snapshot Recovered;
  SnapshotStore::RecoveryInfo Info;
  ASSERT_TRUE(Store.recover(Recovered, &Info).ok());
  EXPECT_EQ(Info.Generation, 2u);
  EXPECT_EQ(Info.CorruptSkipped, 0u);
  EXPECT_EQ(Recovered.Solution.hash(), Second.Solution.hash());
  EXPECT_EQ(Recovered.CS.numNodes(), Second.CS.numNodes());
}

TEST(SnapshotStore, CrashAtEveryWriteStageKeepsDurableGeneration) {
  const FaultSite Stages[] = {FaultSite::SnapshotWrite,
                              FaultSite::SnapshotFsync,
                              FaultSite::SnapshotRename};
  for (FaultSite Stage : Stages) {
    std::string Dir = freshDir(std::string("crash_") + faultSiteName(Stage));
    SnapshotStore Store(Dir);
    Snapshot Durable = makeSnapshot(3);
    ASSERT_TRUE(Store.write(Durable).ok());

    Snapshot Next = makeSnapshot(4);
    FaultInjector::instance().armAfter(Stage, 0);
    Status St = Store.write(Next);
    FaultInjector::instance().disarmAll();
    EXPECT_FALSE(St.ok()) << faultSiteName(Stage)
                          << ": injected crash must surface as an error";

    // Whatever the crash stage left behind (torn temp, unsynced temp,
    // unpublished temp), recovery must adopt the durable generation.
    Snapshot Recovered;
    SnapshotStore::RecoveryInfo Info;
    ASSERT_TRUE(Store.recover(Recovered, &Info).ok())
        << faultSiteName(Stage);
    EXPECT_EQ(Info.Generation, 1u) << faultSiteName(Stage);
    EXPECT_EQ(Recovered.Solution.hash(), Durable.Solution.hash())
        << faultSiteName(Stage);

    // After the crash, a clean write must succeed and become newest.
    uint64_t Gen = 0;
    ASSERT_TRUE(Store.write(Next, &Gen).ok()) << faultSiteName(Stage);
    EXPECT_EQ(Gen, 2u);
    ASSERT_TRUE(Store.recover(Recovered, &Info).ok());
    EXPECT_EQ(Info.Generation, 2u);
    EXPECT_EQ(Recovered.Solution.hash(), Next.Solution.hash());
  }
}

TEST(SnapshotStore, RepeatedCrashSequencesNeverLoseDurableState) {
  // Drive a crash at every stage back-to-back without repair in between:
  // the store accumulates litter yet gen-1 stays recoverable throughout.
  std::string Dir = freshDir("crashseq");
  SnapshotStore Store(Dir);
  Snapshot Durable = makeSnapshot(5);
  ASSERT_TRUE(Store.write(Durable).ok());

  Snapshot Next = makeSnapshot(6);
  for (FaultSite Stage : {FaultSite::SnapshotWrite, FaultSite::SnapshotFsync,
                          FaultSite::SnapshotRename}) {
    FaultInjector::instance().armAfter(Stage, 0);
    EXPECT_FALSE(Store.write(Next).ok());
    FaultInjector::instance().disarmAll();

    Snapshot Recovered;
    SnapshotStore::RecoveryInfo Info;
    ASSERT_TRUE(Store.recover(Recovered, &Info).ok());
    EXPECT_EQ(Info.Generation, 1u);
    EXPECT_EQ(Recovered.Solution.hash(), Durable.Solution.hash());
  }
}

TEST(SnapshotStore, PruneRetainsNewestKeepGenerations) {
  std::string Dir = freshDir("prune");
  SnapshotStore::Options Opts;
  Opts.KeepGenerations = 2;
  SnapshotStore Store(Dir, Opts);
  Snapshot Snap = makeSnapshot(7);
  for (int I = 0; I != 4; ++I)
    ASSERT_TRUE(Store.write(Snap).ok());

  std::vector<uint64_t> Gens;
  ASSERT_TRUE(Store.listGenerations(Gens).ok());
  EXPECT_EQ(Gens, (std::vector<uint64_t>{3, 4}));
}

TEST(SnapshotStore, CorruptNewestFallsBackToOlderGeneration) {
  std::string Dir = freshDir("corrupt");
  SnapshotStore Store(Dir);
  Snapshot Old = makeSnapshot(8);
  Snapshot New = makeSnapshot(9);
  ASSERT_TRUE(Store.write(Old).ok());
  ASSERT_TRUE(Store.write(New).ok());

  // Flip one payload byte in the newest file: the FNV-1a checksum must
  // reject it and recovery fall back.
  std::string Newest = Dir + "/gen-2.snap";
  {
    std::fstream F(Newest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    F.seekg(0, std::ios::end);
    std::streamoff Size = F.tellg();
    ASSERT_GT(Size, 40);
    F.seekp(Size / 2);
    char Byte = 0;
    F.seekg(Size / 2);
    F.read(&Byte, 1);
    Byte ^= 0x5a;
    F.seekp(Size / 2);
    F.write(&Byte, 1);
  }

  Snapshot Recovered;
  SnapshotStore::RecoveryInfo Info;
  ASSERT_TRUE(Store.recover(Recovered, &Info).ok());
  EXPECT_EQ(Info.Generation, 1u);
  EXPECT_EQ(Info.CorruptSkipped, 1u);
  EXPECT_EQ(Recovered.Solution.hash(), Old.Solution.hash());
}

TEST(SnapshotStore, FuzzedNewestGenerationAlwaysRecoversIntactOne) {
  std::string Dir = freshDir("fuzz");
  SnapshotStore Store(Dir);
  Snapshot Old = makeSnapshot(10);
  Snapshot New = makeSnapshot(11);
  ASSERT_TRUE(Store.write(Old).ok());
  ASSERT_TRUE(Store.write(New).ok());

  std::string Pristine;
  {
    std::ifstream In(Dir + "/gen-2.snap", std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Pristine = Buf.str();
  }
  ASSERT_FALSE(Pristine.empty());

  Rng R(123);
  for (int Iter = 0; Iter != 40; ++Iter) {
    std::string Bytes = Pristine;
    if (Iter % 2 == 0) {
      // Truncation (torn write shape).
      Bytes.resize(R.nextBelow(Bytes.size()));
    } else {
      // Bit flips anywhere, including header and checksum fields.
      for (int F = 0; F != 3; ++F) {
        size_t Pos = R.nextBelow(Bytes.size());
        Bytes[Pos] = static_cast<char>(Bytes[Pos] ^
                                       (1u << R.nextBelow(8)));
      }
    }
    {
      std::ofstream Out(Dir + "/gen-2.snap",
                        std::ios::binary | std::ios::trunc);
      Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    }
    Snapshot Recovered;
    SnapshotStore::RecoveryInfo Info;
    ASSERT_TRUE(Store.recover(Recovered, &Info).ok()) << "iter " << Iter;
    if (Info.Generation == 2) {
      // A flip can hit padding-free equal bytes (X ^ X); the adopted file
      // must then be byte-equivalent in meaning, i.e. same solution.
      EXPECT_EQ(Recovered.Solution.hash(), New.Solution.hash())
          << "iter " << Iter << ": corrupt gen-2 was trusted";
    } else {
      EXPECT_EQ(Info.Generation, 1u);
      EXPECT_EQ(Recovered.Solution.hash(), Old.Solution.hash())
          << "iter " << Iter;
    }
  }
}

TEST(SnapshotStore, RecoveryCleansTempLitterAndFailsOnEmptyStore) {
  std::string Dir = freshDir("litter");
  SnapshotStore Store(Dir);

  std::ofstream(Dir + "/gen-9.snap.tmp") << "torn";
  std::ofstream(Dir + "/junk.txt") << "not a generation";
  Snapshot Recovered;
  SnapshotStore::RecoveryInfo Info;
  Status St = Store.recover(Recovered, &Info);
  EXPECT_FALSE(St.ok()) << "no valid generation must be an error";
  EXPECT_EQ(Info.TempsRemoved, 1u);
  // The temp file is gone; the unrelated file is untouched.
  EXPECT_FALSE(std::ifstream(Dir + "/gen-9.snap.tmp").good());
  EXPECT_TRUE(std::ifstream(Dir + "/junk.txt").good());
}

TEST(SnapshotStore, WriteFileDurableReplacesExistingFileAtomically) {
  std::string Dir = freshDir("durable");
  std::string Path = Dir + "/blob.bin";
  ASSERT_TRUE(writeFileDurable(Path, "first contents").ok());
  ASSERT_TRUE(writeFileDurable(Path, "second contents").ok());
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), "second contents");

  // A failed replacement leaves the old contents readable.
  FaultInjector::instance().armAfter(FaultSite::SnapshotWrite, 0);
  EXPECT_FALSE(writeFileDurable(Path, "torn contents").ok());
  FaultInjector::instance().disarmAll();
  std::ifstream In2(Path, std::ios::binary);
  std::ostringstream Buf2;
  Buf2 << In2.rdbuf();
  EXPECT_EQ(Buf2.str(), "second contents");
}

} // namespace
