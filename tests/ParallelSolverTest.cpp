//===- ParallelSolverTest.cpp - Parallel wavefront solver tests -----------===//
//
// Part of the grasshopper project, reproducing Hardekopf & Lin, PLDI 2007.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the parallel solver's building blocks (ThreadPool,
/// ShardedWorklist) and for ParallelLcdSolver's behaviour under the
/// resource governor: budget trips must degrade exactly like the
/// sequential solvers (fallback superset / partial state), with the
/// exception thrown on the coordinator thread only.
///
//===----------------------------------------------------------------------===//

#include "adt/ShardedWorklist.h"
#include "adt/ThreadPool.h"
#include "solvers/Solve.h"
#include "workload/WorkloadGen.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

using namespace ag;

namespace {

TEST(ParallelThreadPool, RunsEveryWorkerOncePerRound) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::vector<std::atomic<int>> Counts(4);
  for (int Round = 0; Round != 3; ++Round)
    Pool.runOnWorkers([&](unsigned W) { ++Counts[W]; });
  for (unsigned W = 0; W != 4; ++W)
    EXPECT_EQ(Counts[W].load(), 3) << "worker " << W;
}

TEST(ParallelThreadPool, WorkersRunOnDistinctThreads) {
  ThreadPool Pool(4);
  std::mutex M;
  std::set<std::thread::id> Ids;
  Pool.runOnWorkers([&](unsigned) {
    std::lock_guard<std::mutex> Lock(M);
    Ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(Ids.size(), 4u);
  EXPECT_EQ(Ids.count(std::this_thread::get_id()), 0u)
      << "the coordinator must not double as a worker";
}

TEST(ParallelThreadPool, BarrierMakesWorkerWritesVisible) {
  ThreadPool Pool(3);
  std::vector<uint64_t> Sums(3, 0);
  Pool.runOnWorkers([&](unsigned W) {
    for (uint64_t I = 0; I != 10000; ++I)
      Sums[W] += I;
  });
  for (uint64_t S : Sums)
    EXPECT_EQ(S, 10000ull * 9999 / 2);
}

TEST(ParallelThreadPool, ZeroRequestedWorkersClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  std::atomic<int> Ran{0};
  Pool.runOnWorkers([&](unsigned) { ++Ran; });
  EXPECT_EQ(Ran.load(), 1);
}

TEST(ParallelShardedWorklist, DedupsAndShardsByOwner) {
  ShardedWorklist WL(4, 100);
  WL.pushRemote(5); // shard 1
  WL.pushRemote(5);
  WL.pushLocal(2, 6);
  WL.pushLocal(2, 6);
  WL.pushLocal(2, 10); // 10 % 4 == 2
  size_t Queued = WL.beginRound([](uint32_t Id) { return Id; });
  EXPECT_EQ(Queued, 3u);
  EXPECT_EQ(WL.current(1), (std::vector<uint32_t>{5}));
  EXPECT_EQ(WL.current(2), (std::vector<uint32_t>{6, 10}));
  EXPECT_TRUE(WL.current(0).empty());
  EXPECT_TRUE(WL.current(3).empty());
}

TEST(ParallelShardedWorklist, BeginRoundCanonicalizesAndRehomes) {
  ShardedWorklist WL(4, 100);
  // 7 and 11 both collapse to representative 8 (shard 0): one entry, in
  // shard 0's list, despite neither original id living there.
  WL.pushRemote(7);
  WL.pushRemote(11);
  size_t Queued = WL.beginRound([](uint32_t Id) {
    return (Id == 7 || Id == 11) ? 8u : Id;
  });
  EXPECT_EQ(Queued, 1u);
  EXPECT_EQ(WL.current(0), (std::vector<uint32_t>{8}));
}

TEST(ParallelShardedWorklist, ConcurrentRemotePushesAllArrive) {
  ShardedWorklist WL(4, 4096);
  ThreadPool Pool(4);
  Pool.runOnWorkers([&](unsigned W) {
    for (uint32_t I = 0; I != 1024; ++I)
      WL.pushRemote(W * 1024 + I);
  });
  size_t Queued = WL.beginRound([](uint32_t Id) { return Id; });
  EXPECT_EQ(Queued, 4096u);
}

ConstraintSystem governorWorkload() {
  BenchmarkSpec Spec;
  Spec.Name = "parallel-governor";
  Spec.NumFunctions = 20;
  Spec.VarsPerFunction = 12;
  Spec.NumGlobals = 30;
  return generateBenchmark(Spec);
}

TEST(ParallelGovernor, StepBudgetTripsAndFallsBackLikeSequential) {
  ConstraintSystem CS = governorWorkload();
  SolveBudget Budget;
  Budget.MaxPropagations = 10; // Far below what the workload needs.

  SolverOptions Par;
  Par.Threads = 4;
  SolveResult RP = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                 PtsRepr::Bitmap, nullptr, Par);
  EXPECT_EQ(RP.Outcome, SolveOutcome::Fallback);
  EXPECT_TRUE(RP.Sound);
  EXPECT_EQ(RP.St.code(), StatusCode::StepLimit);

  SolveResult RS = solveGoverned(CS, SolverKind::LCDHCD, Budget);
  EXPECT_EQ(RS.Outcome, SolveOutcome::Fallback);
  // Both degraded to the same (deterministic) Steensgaard solution.
  EXPECT_TRUE(RP.Solution == RS.Solution);
}

TEST(ParallelGovernor, CancelledTokenTripsCooperatively) {
  ConstraintSystem CS = governorWorkload();
  SolveBudget Budget;
  Budget.Cancel = CancelToken::create();
  Budget.Cancel.requestCancel(); // Pre-cancelled: trips at first check.
  SolverOptions Par;
  Par.Threads = 2;
  SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr, Par);
  EXPECT_EQ(R.Outcome, SolveOutcome::Fallback);
  EXPECT_EQ(R.St.code(), StatusCode::Cancelled);
}

TEST(ParallelGovernor, NoFallbackYieldsPartialUnsoundState) {
  ConstraintSystem CS = governorWorkload();
  SolveBudget Budget;
  Budget.MaxPropagations = 10;
  Budget.AllowFallback = false;
  SolverOptions Par;
  Par.Threads = 4;
  SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr, Par);
  EXPECT_EQ(R.Outcome, SolveOutcome::Partial);
  EXPECT_FALSE(R.Sound);
  EXPECT_EQ(R.Solution.numNodes(), CS.numNodes());
}

TEST(ParallelGovernor, GenerousBudgetStaysPrecise) {
  ConstraintSystem CS = governorWorkload();
  SolveBudget Budget;
  Budget.MaxPropagations = 50'000'000;
  SolverOptions Par;
  Par.Threads = 4;
  SolveResult R = solveGoverned(CS, SolverKind::LCDHCD, Budget,
                                PtsRepr::Bitmap, nullptr, Par);
  EXPECT_EQ(R.Outcome, SolveOutcome::Precise);
  EXPECT_TRUE(R.Solution == solve(CS, SolverKind::Naive));
}

TEST(ParallelStats, RoundAndWorkerCountersAreReported) {
  ConstraintSystem CS = governorWorkload();
  SolverStats Stats;
  SolverOptions Par;
  Par.Threads = 4;
  PointsToSolution S =
      solve(CS, SolverKind::LCDHCD, PtsRepr::Bitmap, &Stats, Par);
  EXPECT_GT(Stats.ParallelRounds, 0u);
  EXPECT_GT(Stats.WorklistPops, 0u);
  EXPECT_GT(Stats.Propagations, 0u);
  EXPECT_GT(Stats.LcdTriggerProbes, 0u);
  EXPECT_EQ(S, solve(CS, SolverKind::Naive));
}

} // namespace
